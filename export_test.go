package rootcause

import "context"

// WithExtractFunc substitutes the extraction engine for one call — a
// test-only seam used to assert ExtractAll's pool behavior (concurrency
// bound, cancellation) without running real mining.
func WithExtractFunc(fn func(ctx context.Context, a *Alarm) (*Result, error)) Option {
	return func(o *callOptions) { o.extractFn = fn }
}
