package rootcause_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/eval"
	"repro/internal/gen"
)

// fileStorm synthesizes the alarm storm one composite event raises: per
// truth entry, every detector reports it several times with a little
// start jitter. Returns the number of alarms filed.
func fileStorm(sys *rootcause.System, truth *gen.Truth) int {
	n := 0
	for i := range truth.Entries {
		base := eval.SynthesizeAlarm(&truth.Entries[i])
		for _, det := range []string{"histogram", "netreflex", "pca"} {
			for _, jitter := range []uint32{0, 40, 80, 120} {
				a := base
				a.Detector = det
				a.Interval.Start += jitter // same dedup bucket: < window/2
				sys.FileAlarm(a)
				n++
			}
		}
	}
	return n
}

// TestIncidentLifecycle drives the incident layer end to end on the
// catalog's portscan-ddos cascade: a 24-alarm storm correlates into one
// incident whose single extraction recovers both causes, with the
// lead-lag chain ordering the scan before the flood.
func TestIncidentLifecycle(t *testing.T) {
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	def, ok := gen.Lookup("portscan-ddos")
	if !ok {
		t.Fatal("portscan-ddos not in catalog")
	}
	sc := def.Scenario(42)
	truth, err := sc.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	if !truth.Composite {
		t.Fatal("portscan-ddos truth is not marked composite")
	}
	if truth.Entries[1].Interval.Start != truth.Entries[0].Interval.End {
		t.Fatalf("cascade not staggered: %v then %v",
			truth.Entries[0].Interval, truth.Entries[1].Interval)
	}

	stormSize := fileStorm(sys, truth)

	// Correlate: the storm collapses into one incident — the >= 5x
	// alarm-to-incident reduction the incident layer exists for.
	sum, err := sys.Correlate(t.Context(), truth.Span)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AlarmsConsidered != stormSize {
		t.Fatalf("considered %d alarms, want %d", sum.AlarmsConsidered, stormSize)
	}
	if len(sum.IncidentIDs) != 1 {
		t.Fatalf("incidents = %v, want exactly one", sum.IncidentIDs)
	}
	if reduction := stormSize / len(sum.IncidentIDs); reduction < 5 {
		t.Fatalf("reduction %dx < 5x", reduction)
	}
	incID := sum.IncidentIDs[0]

	entry, err := sys.Incident(incID)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Status != rootcause.IncidentOpen {
		t.Fatalf("fresh incident status = %q", entry.Status)
	}
	if got := len(entry.Incident.AlarmIDs); got != stormSize {
		t.Fatalf("incident holds %d member alarms, want %d", got, stormSize)
	}
	if !entry.Incident.Leads(detector.KindPortScan, detector.KindDDoS) {
		t.Fatalf("lead-lag chain %v does not order the scan before the flood", entry.Incident.Chain)
	}
	members, err := sys.IncidentAlarms(incID)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != stormSize {
		t.Fatalf("IncidentAlarms returned %d, want %d", len(members), stormSize)
	}

	// Re-correlating is idempotent: same member set, same ID, no new
	// incidents.
	sum2, err := sys.Correlate(t.Context(), truth.Span)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum2.IncidentIDs) != 1 || sum2.IncidentIDs[0] != incID {
		t.Fatalf("re-correlation produced %v, want [%s]", sum2.IncidentIDs, incID)
	}

	// Parity: the incident path extracts exactly the merged alarm, so
	// its result is byte-identical to a synchronous extraction of that
	// alarm.
	merged, err := sys.IncidentExtractionAlarm(incID)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Interval.Start != truth.Entries[0].Interval.Start {
		t.Fatalf("merged interval %v does not start at the scan bin", merged.Interval)
	}
	want, err := sys.ExtractAlarm(t.Context(), &merged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.ExtractIncident(t.Context(), incID)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("incident extraction differs from extracting the merged alarm:\n%s\n%s", wantJSON, gotJSON)
	}

	// One correlated extraction recovers BOTH causes in the top ranks.
	ts, err := eval.ScoreTruth(sys.Store(), merged.Interval, got, truth, eval.DefaultScoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ts.Entries {
		if !e.Attributed || e.Rank > 3 {
			t.Fatalf("cause %q not in top 3 (rank %d); itemsets:\n%s", e.Describe, e.Rank, got.Table())
		}
	}

	// Lifecycle: incident extracted, untouched members analyzed.
	entry, _ = sys.Incident(incID)
	if entry.Status != rootcause.IncidentExtracted {
		t.Fatalf("incident status after extraction = %q", entry.Status)
	}
	counts := sys.IncidentCounts()
	if counts[rootcause.IncidentExtracted] != 1 || counts[rootcause.IncidentOpen] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	members, _ = sys.IncidentAlarms(incID)
	for _, m := range members {
		if m.Status != "analyzed" || m.Note != "via incident "+incID {
			t.Fatalf("member %s = (%s, %q)", m.Alarm.ID, m.Status, m.Note)
		}
	}

	// The job path produces the same result under JobKindExtractIncident.
	jobID, err := sys.Submit(rootcause.JobRequest{IncidentID: incID}, rootcause.WithTransientJob())
	if err != nil {
		t.Fatal(err)
	}
	jr, err := sys.Wait(t.Context(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Status.Kind != rootcause.JobKindExtractIncident {
		t.Fatalf("job kind = %q", jr.Status.Kind)
	}
	jobJSON, _ := json.Marshal(jr.Result)
	if string(jobJSON) != string(wantJSON) {
		t.Fatal("job-path incident extraction differs from the synchronous result")
	}
}

// TestIncidentRequestValidation pins the JobRequest contract and the
// guard rails around merged/unknown incidents.
func TestIncidentRequestValidation(t *testing.T) {
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir: filepath.Join(t.TempDir(), "flows"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.Submit(rootcause.JobRequest{AlarmID: "1", IncidentID: "i1"}); err == nil {
		t.Fatal("two targets accepted")
	}
	if _, err := sys.Submit(rootcause.JobRequest{}); err == nil {
		t.Fatal("no target accepted")
	}
	if _, err := sys.ExtractIncident(t.Context(), "i404"); err == nil {
		t.Fatal("unknown incident accepted")
	}
	if _, err := sys.Incident("i404"); err == nil {
		t.Fatal("unknown incident lookup succeeded")
	}
}
