package rootcause_test

import (
	"path/filepath"
	"strings"
	"testing"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
)

// TestFigure1Architecture is the end-to-end integration test of the
// paper's Figure 1 (experiment E7 in DESIGN.md): synthetic traffic with a
// known anomaly flows into the store, a detector files alarms into the
// alarm DB, extraction summarizes the anomaly, and the operator drills
// down to raw flows and records a verdict.
func TestFigure1Architecture(t *testing.T) {
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// 1. Ingest: a labeled trace with a port scan in bin 20.
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 3, FlowsPerBin: 250},
		Bins:       30, StartTime: 1_300_000_200, Seed: 42,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 20},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}

	// 2. Detect: NetReflex files alarms into the DB.
	ids, err := sys.Detect(t.Context(), "netreflex", truth.Span)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("detector filed no alarms")
	}
	var alarmID string
	for _, id := range ids {
		entry, err := sys.Alarm(id)
		if err != nil {
			t.Fatal(err)
		}
		if entry.Alarm.Interval == truth.Entries[0].Interval {
			alarmID = id
		}
	}
	if alarmID == "" {
		t.Fatalf("no alarm on the scan bin; ids=%v", ids)
	}

	// 3. Extract: the itemsets must summarize the scan.
	res, err := sys.Extract(t.Context(), alarmID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) == 0 {
		t.Fatal("no itemsets")
	}
	table := res.Table().String()
	if !strings.Contains(table, scanner.String()) {
		t.Fatalf("table does not identify the scanner:\n%s", table)
	}

	// 4. Drill down: raw flows behind the top itemset are the scan flows.
	flows, err := sys.ItemsetFlows(t.Context(), res.Alarm.Interval, &res.Itemsets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("itemset drill-down returned no flows")
	}
	anomalous := 0
	for i := range flows {
		if flows[i].IsAnomalous() {
			anomalous++
		}
	}
	if float64(anomalous) < 0.8*float64(len(flows)) {
		t.Fatalf("drill-down purity %d/%d too low", anomalous, len(flows))
	}

	// 5. Textual filter drill-down (the GUI's free-form query).
	manual, err := sys.Flows(t.Context(), res.Alarm.Interval, "src ip "+scanner.String()+" and src port 55548")
	if err != nil {
		t.Fatal(err)
	}
	if len(manual) != 3000 {
		t.Fatalf("manual filter matched %d flows, want 3000", len(manual))
	}

	// 6. Verdict: the alarm moves through the operator workflow.
	entry, err := sys.Alarm(alarmID)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Status != "analyzed" {
		t.Fatalf("status after extraction = %q", entry.Status)
	}
	if err := sys.SetVerdict(alarmID, true, "confirmed port scan"); err != nil {
		t.Fatal(err)
	}

	// 7. Persistence: reopen and find the validated alarm.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := rootcause.Open(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	entry2, err := sys2.Alarm(alarmID)
	if err != nil {
		t.Fatal(err)
	}
	if entry2.Status != "validated" || entry2.Note != "confirmed port scan" {
		t.Fatalf("persisted entry = %+v", entry2)
	}
}

func TestFileExternalAlarm(t *testing.T) {
	// The paper's system "can be integrated with any anomaly detection
	// system": file an external alarm and extract.
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(dir, "flows")})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.9")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 7,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 1234,
				Ports: 1000, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	id := sys.FileAlarm(rootcause.Alarm{
		Detector: "external-ids",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	})
	res, err := sys.Extract(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) == 0 {
		t.Fatal("extraction of external alarm failed")
	}
}

func TestUnknownDetectorRejected(t *testing.T) {
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(t.TempDir(), "s")})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Detect(t.Context(), "frobnicator", rootcause.Interval{Start: 0, End: 300}); err == nil {
		t.Fatal("unknown detector must be rejected")
	}
}

func TestBadFilterExpression(t *testing.T) {
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(t.TempDir(), "s")})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Flows(t.Context(), rootcause.Interval{Start: 0, End: 300}, "bogus filter"); err == nil {
		t.Fatal("bad filter must be rejected")
	}
}

func TestAddFlows(t *testing.T) {
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(t.TempDir(), "s")})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	recs := []rootcause.Record{
		{Start: 100, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80,
			Proto: flow.ProtoTCP, Packets: 5, Bytes: 200},
	}
	if err := sys.AddFlows(recs); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Flows(t.Context(), rootcause.Interval{Start: 0, End: 300}, "dst port 80")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d flows", len(got))
	}
	if sys.Store().BinSeconds() != nfstore.DefaultBinSeconds {
		t.Fatal("default bin seconds not applied")
	}
}

func TestQueryParallelismAndStats(t *testing.T) {
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(t.TempDir(), "s")},
		rootcause.WithQueryParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := sys.Store().Parallelism(); got != 3 {
		t.Fatalf("WithQueryParallelism not applied: store parallelism = %d", got)
	}
	recs := []rootcause.Record{
		{Start: 100, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80,
			Proto: flow.ProtoTCP, Packets: 5, Bytes: 200},
		{Start: 700, SrcIP: 9, DstIP: 2, SrcPort: 3, DstPort: 443,
			Proto: flow.ProtoTCP, Packets: 5, Bytes: 200},
	}
	if err := sys.AddFlows(recs); err != nil {
		t.Fatal(err)
	}
	// A selective drill-down: zone maps prune the non-matching bin, and
	// the counters surface it through the public API.
	got, err := sys.Flows(t.Context(), rootcause.Interval{Start: 0, End: 900}, "src ip 0.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d flows, want 1", len(got))
	}
	st := sys.QueryStats()
	if st.SegmentsConsidered != 2 || st.SegmentsPruned != 1 || st.SegmentsScanned != 1 {
		t.Fatalf("QueryStats = %+v, want 2 considered / 1 pruned / 1 scanned", st)
	}
}
