// Udpflood demonstrates why the paper extended Apriori with packet-based
// support: a point-to-point UDP flood exports a handful of flow records
// carrying millions of packets. Classic flow-support Apriori cannot see
// it; the extended engine mines the packet dimension and surfaces it.
//
// Run with:
//
//	go run ./examples/udpflood
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	rootcause "repro"
	"repro/internal/flow"
	"repro/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "udpflood-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	src := flow.MustParseIP("10.55.55.55")
	dst := flow.MustParseIP("198.19.0.77")

	// Flow-only engine (classic IMC'09 Apriori).
	flowOnly := rootcause.DefaultExtractionOptions()
	flowOnly.PacketCoverageMin = 0

	for _, mode := range []struct {
		name string
		opts rootcause.ExtractionOptions
	}{
		{"classic Apriori (flow support only)", flowOnly},
		{"extended Apriori (flow + packet support)", rootcause.DefaultExtractionOptions()},
	} {
		opts := mode.opts
		sys, err := rootcause.Create(rootcause.Config{
			StoreDir:   fmt.Sprintf("%s/flows-%p", dir, &mode),
			Extraction: &opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		scenario := gen.Scenario{
			Background: gen.Background{NumPoPs: 2, FlowsPerBin: 400},
			Bins:       4, StartTime: 1_300_000_200, Seed: 5,
			Placements: []gen.Placement{
				// 4 flow records, 2M packets each: the GEANT-style
				// point-to-point UDP flood.
				{Anomaly: gen.UDPFlood{Src: src, Dst: dst, DstPort: 9999,
					Flows: 4, PacketsPerFlow: 2_000_000, Router: 1}, Bin: 2},
			},
		}
		truth, err := scenario.Generate(sys.Store())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.ExtractAlarm(context.Background(), &rootcause.Alarm{
			Detector: "example", Interval: truth.Entries[0].Interval,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", mode.name)
		fmt.Print(res.Table().String())
		found := false
		for _, rep := range res.Itemsets {
			if v, ok := rep.Items.Feature(flow.FeatSrcIP); ok && flow.IP(v) == src {
				found = true
			}
		}
		if found {
			fmt.Println("-> flood source extracted")
		} else {
			fmt.Println("-> flood source MISSED (4 flows are below any useful flow-support threshold)")
		}
		fmt.Println()
		sys.Close()
	}
}
