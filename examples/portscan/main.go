// Portscan reproduces the paper's Table 1 end to end: a NetReflex alarm
// names one scanner, and extraction additionally surfaces a second
// scanner on the same target plus two simultaneous TCP SYN DDoS itemsets
// against its port 80 — "particularly interesting cases" in the paper's
// words, because the detector missed them.
//
// Run with:
//
//	go run ./examples/portscan
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/eval"
)

func main() {
	dir, err := os.MkdirTemp("", "portscan-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("Reproducing Table 1 (this generates ~660K anomaly flows; a few seconds)...")
	res, err := eval.RunTable1(dir, eval.DefaultTable1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table().String())
	fmt.Println(`
Paper's Table 1 for comparison (addresses anonymized as X.*/Y.*):
  srcIP          dstIP          srcPort  dstPort   #flows
  X.191.64.165   Y.13.137.129   55548    *        312.59K   <- flagged scanner
  X.191.64.165*  Y.13.137.129   55548    *        270.74K   <- second scanner
  *              Y.13.137.129   3072     80        37.19K   <- DDoS 1
  *              Y.13.137.129   1024     80        37.28K   <- DDoS 2

The alarm's meta-data named only the first scanner; rows 2-4 are the
flows the detector missed and the miner recovered.`)

	for _, rep := range res.Itemsets {
		fmt.Printf("drill-down filter: %s\n", rep.Filter().String())
	}
}
