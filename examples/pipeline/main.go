// Pipeline runs the paper's full Figure 1 architecture: a multi-PoP trace
// with several co-occurring anomalies, the simulated NetReflex detector
// filing alarms into the alarm database, extraction per alarm, drill-down
// and operator verdicts — the complete NOC workflow the demo showed.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	rootcause "repro"
	"repro/internal/flow"
	"repro/internal/gen"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "pipeline-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    dir + "/flows",
		AlarmDBPath: dir + "/alarms.json",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A day-fragment of traffic over 4 PoPs with three anomalies:
	// a port scan, a DDoS and a point-to-point UDP flood.
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	floodSrc := flow.MustParseIP("10.66.66.66")
	floodDst := flow.MustParseIP("198.19.0.200")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 4, FlowsPerBin: 250},
		Bins:       30, StartTime: 1_300_000_200, Seed: 99,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 18},
			{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 800,
				FlowsPerSource: 3, SourceNet: flow.MustParsePrefix("172.16.0.0/12"),
				Router: 2}, Bin: 24},
			{Anomaly: gen.UDPFlood{Src: floodSrc, Dst: floodDst, DstPort: 9999,
				Flows: 4, PacketsPerFlow: 2_000_000, Router: 3}, Bin: 27},
		},
	}
	fmt.Println("1. generating trace (30 bins x 4 PoPs)...")
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d background flows, %d anomalies injected\n",
		truth.BackgroundFlows, len(truth.Entries))

	fmt.Println("2. running NetReflex over the trace...")
	ids, err := sys.Detect(ctx, "netreflex", truth.Span)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d alarm(s) filed\n", len(ids))

	// Batch extraction: fan the alarms across a bounded worker pool and
	// consume results as they complete.
	fmt.Println("3. extracting all alarms (2 workers):")
	for br := range sys.ExtractAll(ctx, ids, rootcause.WithConcurrency(2)) {
		id := br.AlarmID
		entry, err := sys.Alarm(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- alarm %s: %s\n", id, entry.Alarm.String())
		if br.Err != nil {
			fmt.Printf("    extraction failed: %v\n", br.Err)
			continue
		}
		res := br.Result
		fmt.Print(res.Table().String())

		// Operator verdict: validate when the itemsets identify a known
		// injected anomaly (in the NOC this is the human's call).
		validated := false
		for i := range res.Itemsets {
			flows, err := sys.ItemsetFlows(ctx, res.Alarm.Interval, &res.Itemsets[i])
			if err != nil {
				log.Fatal(err)
			}
			anomalous := 0
			for j := range flows {
				if flows[j].IsAnomalous() {
					anomalous++
				}
			}
			if len(flows) > 0 && float64(anomalous) > 0.8*float64(len(flows)) {
				validated = true
			}
		}
		if err := sys.SetVerdict(id, validated, "pipeline example verdict"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    verdict: validated=%v\n", validated)
	}

	fmt.Println("\n4. final alarm database state:")
	for _, e := range sys.Alarms(truth.Span) {
		fmt.Printf("   alarm %s [%s] %s %s\n", e.Alarm.ID, e.Status, e.Alarm.Kind, e.Alarm.Interval)
	}
}
