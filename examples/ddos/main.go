// Ddos drives a scenario-catalog DDoS end to end through the public API:
// generate the "dns-amplification" scenario (many reflectors answering
// spoofed queries from source port 53), run a registered detector over
// the trace, extract the flagged interval's ranked itemsets, and compare
// them against the scenario's ground-truth signature.
//
// Run with:
//
//	go run ./examples/ddos
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	rootcause "repro"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/itemset"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "ddos-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := rootcause.Create(rootcause.Config{StoreDir: dir + "/flows"})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 1. Generate: the catalog scenario is declarative — name + seed
	// fully determine the trace and its ground truth.
	def, ok := gen.Lookup("dns-amplification")
	if !ok {
		log.Fatal("scenario catalog misses dns-amplification")
	}
	fmt.Printf("scenario %q: %s\n", def.Name, def.Summary)
	scenario := def.Scenario(42)
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		log.Fatal(err)
	}
	primary := truth.Entry(1)
	fmt.Printf("injected: %s — %d flows / %d packets in %s\n\n",
		primary.Describe, primary.StoredFlows, primary.StoredPkts, primary.Interval)

	// 2. Detect: the PCA-based NetReflex stand-in flags the flood bin.
	ids, err := sys.Detect(ctx, "netreflex", truth.Span)
	if err != nil {
		log.Fatal(err)
	}
	alarmID := ""
	for _, id := range ids {
		entry, err := sys.Alarm(id)
		if err != nil {
			log.Fatal(err)
		}
		if entry.Alarm.Interval.Overlaps(primary.Interval) {
			alarmID = id
			fmt.Printf("detector alarm: %s\n", entry.Alarm.String())
			break
		}
	}
	if alarmID == "" {
		// The paper's pipeline starts from a given alarm either way.
		alarm := eval.SynthesizeAlarm(primary)
		alarmID = sys.FileAlarm(alarm)
		fmt.Printf("detector missed the bin; synthesized alarm: %s\n", alarm.String())
	}

	// 3. Extract: ranked itemsets for the alarm, Table-1 shape.
	res, err := sys.Extract(ctx, alarmID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table().String())

	// 4. Score against ground truth: the top itemset must contain the
	// scenario's root-cause signature (victim address + source port 53 +
	// udp).
	fmt.Println("\nground-truth signature:")
	for _, it := range primary.Signature {
		fmt.Printf("  %s\n", it)
	}
	rank := 0
	for i, rep := range res.Itemsets {
		covered := true
		for _, it := range primary.Signature {
			if !rep.Items.Contains(itemset.NewItem(it.Feature, it.Value)) {
				covered = false
				break
			}
		}
		if covered {
			rank = i + 1
			break
		}
	}
	if rank == 0 {
		fmt.Println("\n-> no reported itemset carries the full signature (MISSED)")
		os.Exit(1)
	}
	fmt.Printf("\n-> true cause ranked #%d; drill-down: %s\n",
		rank, res.Itemsets[rank-1].Filter().String())
}
