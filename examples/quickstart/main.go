// Quickstart: the minimal end-to-end use of the public API — generate a
// small labeled trace, file an alarm, extract the anomalous flows and
// print the Table-1-style summary.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Create a system: flow store + alarm DB + extraction engine.
	sys, err := rootcause.Create(rootcause.Config{StoreDir: dir + "/flows"})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 2. Ingest traffic. Here: a synthetic trace with a port scan in
	// bin 2 (in production this is the NetFlow feed).
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: 1_300_000_200, Seed: 1,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		log.Fatal(err)
	}

	// 3. File an alarm (any detector can provide it; here the meta-data
	// names only the scanner, as a detector would).
	id := sys.FileAlarm(rootcause.Alarm{
		Detector: "quickstart",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	})

	// 4. Extract: the itemsets summarize the anomalous flows.
	res, err := sys.Extract(context.Background(), id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table().String())

	// 5. Drill down to the raw flows behind the top itemset.
	flows, err := sys.ItemsetFlows(context.Background(), res.Alarm.Interval, &res.Itemsets[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop itemset matches %d raw flows; first three:\n", len(flows))
	for i := 0; i < 3 && i < len(flows); i++ {
		fmt.Println(" ", flows[i].String())
	}
}
