// Package rootcause is the public API of the anomaly root-cause analysis
// system reproduced from "Automating Root-Cause Analysis of Network
// Anomalies using Frequent Itemset Mining" (Paredes-Oliva et al.,
// SIGCOMM 2010).
//
// It wires together the components of the paper's Figure 1 architecture:
//
//	detectors ──▶ alarm DB ──▶ extraction engine ◀──▶ flow store (NfDump)
//	                               │
//	                               ▼
//	                     ranked itemsets (Table 1)
//
// A System owns a flow store (internal/nfstore, the NfDump substitute)
// and an alarm database. Detectors — the histogram/KL detector of Kind et
// al., the PCA subspace detector of Lakhina et al., or the simulated
// NetReflex — scan the store and file alarms; Extract runs the paper's
// extended Apriori (dual flow/packet support, self-tuning minimum
// support) for one alarm and returns the ranked itemsets summarizing the
// anomalous flows, each carrying a drill-down filter for the raw flows.
//
// # Contexts
//
// Every operation that touches the flow store takes a context.Context
// first. Cancellation is honored inside the hot paths — segment scans,
// the Apriori/FP-growth mining loops, and batch extraction workers — so
// a deadline or cancel aborts a long analysis promptly with ctx.Err().
//
// # Pluggable detectors
//
// Detectors live in a registry. The built-ins ("netreflex", "histogram",
// "pca") self-register; external detector implementations plug in via
// RegisterDetector and are then usable through System.Detect and listed
// by DetectorNames — the paper's system "can be integrated with any
// anomaly detection system that provides these data". Per-call
// configuration goes through functional options:
//
//	ids, err := sys.Detect(ctx, "histogram", span,
//	    rootcause.WithDetectorConfig(histogram.Config{...}))
//	res, err := sys.Extract(ctx, id,
//	    rootcause.WithExtractionOptions(opts))
//
// # Batch extraction
//
// ExtractAll fans extraction of many alarms across a bounded worker pool
// and streams results as they complete:
//
//	for r := range sys.ExtractAll(ctx, ids, rootcause.WithConcurrency(4)) {
//	    ...
//	}
//
// # Extraction jobs
//
// Extract holds the caller for the whole self-tuning mining run; the job
// API decouples the two. Submit enqueues an extraction (or a batch) on
// the system's job manager — a bounded worker pool with admission
// control — and returns immediately with a job ID:
//
//	id, err := sys.Submit(rootcause.JobRequest{AlarmID: alarmID},
//	    rootcause.WithProgress(func(p rootcause.ExtractionProgress) { ... }))
//	res, err := sys.Wait(ctx, id) // or poll sys.Job(id) / fetch sys.JobResult(id)
//
// Job, Jobs, CancelJob, WatchJob and JobResult observe and steer the
// lifecycle (queued → running → done | failed | canceled). A full queue
// rejects the submission with ErrJobQueueFull instead of blocking;
// terminal jobs are retained for JobResult until WithResultTTL expires
// them (or the retention cap evicts the least recently fetched).
// WithJobWorkers and WithJobQueueDepth size the manager at Create/Open.
//
// # Query engine
//
// The flow store plans every scan against per-segment zone-map sidecars:
// segments a filter provably cannot match are skipped unopened, the
// survivors are scanned by a bounded worker pool whose results merge back
// in bin order, and whole-segment aggregations are answered from the
// sidecars alone. WithQueryParallelism (at Create/Open) bounds the pool;
// QueryStats exposes the pruning counters. Stores written before the
// sidecar format existed upgrade themselves lazily as they are scanned.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// system inventory.
package rootcause

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/alarmdb"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/jobs"
	"repro/internal/miner"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
	"repro/internal/shardstore"

	// Built-in detectors self-register into the detector registry.
	_ "repro/internal/histogram"
	_ "repro/internal/netreflex"
	_ "repro/internal/pca"
)

// Re-exported types: the façade exposes the domain vocabulary without
// forcing users through internal package paths.
type (
	// Record is one NetFlow-style flow record.
	Record = flow.Record
	// Interval is a half-open time window in Unix seconds.
	Interval = flow.Interval
	// Alarm is a detector alarm with meta-data.
	Alarm = detector.Alarm
	// Detector is the pluggable detector contract of Figure 1.
	Detector = detector.Detector
	// DetectorFactory builds a detector from an optional configuration
	// value (nil = the detector's defaults).
	DetectorFactory = detector.Factory
	// Result is a full extraction outcome; Result.Table() renders the
	// paper's Table 1 shape.
	Result = core.Result
	// ItemsetReport is one ranked itemset row.
	ItemsetReport = core.ItemsetReport
	// ExtractionOptions configures the extended-Apriori engine.
	ExtractionOptions = core.Options
	// AlarmEntry is a stored alarm with its operator workflow status.
	AlarmEntry = alarmdb.Entry
	// ExtractionProgress is one sampled progress observation from the
	// extraction engine (phase, tuning round, streamed-flow and mined-
	// itemset counts). See WithProgress.
	ExtractionProgress = core.Progress
	// JobStatus is a point-in-time snapshot of an extraction job.
	JobStatus = jobs.Status
	// JobProgress is the job-level progress sample carried by JobStatus.
	JobProgress = jobs.Progress
	// JobState is a job lifecycle state.
	JobState = jobs.State
)

// Job lifecycle states: queued → running → done | failed | canceled.
const (
	JobQueued   = jobs.StateQueued
	JobRunning  = jobs.StateRunning
	JobDone     = jobs.StateDone
	JobFailed   = jobs.StateFailed
	JobCanceled = jobs.StateCanceled
)

// Job kinds as reported in JobStatus.Kind.
const (
	JobKindExtract      = "extract"
	JobKindExtractBatch = "extract-batch"
)

// Job manager sentinels, re-exported so callers (like the HTTP layer)
// can branch without importing internal packages.
var (
	// ErrJobQueueFull rejects a Submit when the admission queue is at
	// depth — map it to 429.
	ErrJobQueueFull = jobs.ErrQueueFull
	// ErrJobNotFound marks an unknown or already-evicted job ID.
	ErrJobNotFound = jobs.ErrNotFound
	// ErrJobNotDone marks a JobResult fetch on an unfinished job.
	ErrJobNotDone = jobs.ErrNotDone
	// ErrJobDone marks a CancelJob on an already-terminal job.
	ErrJobDone = jobs.ErrDone
)

// DefaultExtractionOptions returns the engine defaults used throughout
// the paper reproduction.
func DefaultExtractionOptions() ExtractionOptions { return core.DefaultOptions() }

// RegisterDetector adds a named detector factory to the registry, making
// it usable through System.Detect and visible in DetectorNames. Built-in
// detectors are pre-registered; registering an already-taken name is an
// error.
func RegisterDetector(name string, factory DetectorFactory) error {
	return detector.Register(name, factory)
}

// DetectorNames lists the registered detectors, sorted by name.
func DetectorNames() []string { return detector.Names() }

// Miner is the pluggable frequent-itemset-mining contract of the
// extraction engine. The built-ins ("apriori", "fpgrowth", "fda") are
// pre-registered and produce identical canonical results — except fda
// when its statistical pre-filter is enabled, which then returns a
// subset (see docs/mining.md); external miners plug in via
// RegisterMiner and are selectable through WithMiner,
// ExtractionOptions.Miner and the -miner CLI flags.
type Miner = miner.Miner

// MinerFactory builds a miner instance for the registry.
type MinerFactory = miner.Factory

// RegisterMiner adds a named miner factory to the registry, making it
// usable through WithMiner and visible in MinerNames. Registering an
// already-taken name is an error.
func RegisterMiner(name string, factory MinerFactory) error {
	return miner.Register(name, factory)
}

// MinerNames lists the registered miners, sorted by name.
func MinerNames() []string { return miner.Names() }

// Option configures one System call. Options not meaningful for a call
// are ignored.
type Option func(*callOptions)

// callOptions is the resolved per-call configuration.
type callOptions struct {
	extraction       *ExtractionOptions
	miner            string
	ranking          string
	detectorCfg      any
	concurrency      int
	queryParallelism int
	progress         core.ProgressFunc
	batchSink        func(ExtractResult)
	transientJob     bool
	jobWorkers       int
	jobQueueDepth    int
	resultTTL        time.Duration
	zmCacheEntries   int
	segmentFormat    uint16
	// Sharding / cluster-mode construction options (see WithShards,
	// WithPeers).
	shards         int
	shardPartition string
	peers          []string
	peerTimeout    time.Duration
	degradedReads  bool
	// Correlation tuning (see incidents.go).
	dedupWindow       uint32
	clusterGap        uint32
	leadLagConfidence float64
	// Live streaming construction (see live.go / WithLive).
	live *LiveConfig
	// extractFn substitutes the extraction engine; a test seam for
	// exercising ExtractAll's pool without real mining.
	extractFn func(ctx context.Context, a *Alarm) (*Result, error)
}

// WithExtractionOptions overrides the system's extraction engine options
// for one Extract/ExtractAlarm/ExtractAll call.
func WithExtractionOptions(opts ExtractionOptions) Option {
	return func(o *callOptions) { o.extraction = &opts }
}

// WithMiner selects the frequent-itemset miner (a name from MinerNames:
// "apriori", "fpgrowth", or an externally registered one) for one
// Extract/ExtractAlarm/ExtractAll call. It composes with
// WithExtractionOptions — the miner name wins over the options' Miner
// field. An unknown name fails the call with an error listing the
// registered miners.
func WithMiner(name string) Option {
	return func(o *callOptions) { o.miner = name }
}

// Ranking modes for WithRanking and ExtractionOptions.Ranking: the
// paper's support-share score (the default), pure lift, and share
// weighted by lift (the FDA scoring shape; see docs/mining.md).
const (
	RankingSupport  = core.RankSupport
	RankingLift     = core.RankLift
	RankingWeighted = core.RankWeighted
)

// WithRanking selects how one Extract/ExtractAlarm/ExtractAll call
// scores its final itemset list (RankingSupport, RankingLift or
// RankingWeighted). It composes with WithExtractionOptions — the ranking
// mode wins over the options' Ranking field. An unknown mode fails the
// call with an error listing the valid ones.
func WithRanking(mode string) Option {
	return func(o *callOptions) { o.ranking = mode }
}

// WithDetectorConfig passes a detector-specific configuration value
// (e.g. a histogram.Config) to the detector factory for one Detect call.
// Without it the factory builds the detector with its defaults.
func WithDetectorConfig(cfg any) Option {
	return func(o *callOptions) { o.detectorCfg = cfg }
}

// WithConcurrency bounds the ExtractAll worker pool to k concurrent
// extractions (default: GOMAXPROCS).
func WithConcurrency(k int) Option {
	return func(o *callOptions) { o.concurrency = k }
}

// WithQueryParallelism bounds how many flow-store segments one query scans
// concurrently: 1 forces serial scans, 0 (the default) picks
// min(GOMAXPROCS, 8). It is a construction option — pass it to Create or
// Open, where it configures the system's store; every candidate scan,
// drill-down and detector sweep then uses that bound.
func WithQueryParallelism(k int) Option {
	return func(o *callOptions) { o.queryParallelism = k }
}

// WithZoneMapCacheSize bounds the flow store's in-memory zone-map cache
// to n decoded sidecars (LRU eviction; 0 keeps the default). It is a
// construction option — pass it to Create or Open.
func WithZoneMapCacheSize(n int) Option {
	return func(o *callOptions) { o.zmCacheEntries = n }
}

// WithSegmentFormat selects the on-disk format for segments the store
// creates: nfstore.FormatV1 fixed rows or nfstore.FormatV2 compressed
// column blocks (the default for new stores). Construction option — at
// Create it is persisted in the store meta, at Open it overrides the
// persisted choice for this process. Existing segments keep their format
// either way; both formats read transparently.
func WithSegmentFormat(format uint16) Option {
	return func(o *callOptions) { o.segmentFormat = format }
}

// WithProgress attaches a progress observer to one
// Extract/ExtractAlarm/Submit call. The engine invokes fn with sampled
// observations (phase transitions, self-tuning rounds, streamed-flow
// counts) from the extraction goroutine — return quickly. Calls are
// never concurrent: batch jobs extract on several workers at once but
// serialize their observer invocations (the samples interleave across
// alarms). For jobs the same samples also feed the job's
// JobStatus.Progress, so fn is only needed for additional in-process
// observers.
func WithProgress(fn func(ExtractionProgress)) Option {
	return func(o *callOptions) { o.progress = fn }
}

// WithBatchResults attaches a per-alarm result sink to a batch Submit:
// fn is invoked from the job's worker goroutine as each alarm finishes,
// in completion order — the streaming seam the NDJSON batch endpoint is
// built on. The full result slice is still retained for JobResult.
func WithBatchResults(fn func(ExtractResult)) Option {
	return func(o *callOptions) { o.batchSink = fn }
}

// WithTransientJob marks one Submit as consume-on-wait: the job is
// dropped from the registry as soon as its outcome is read through
// Wait/JobResult instead of sitting in result retention for the full
// TTL. Use it when the submitter is the only consumer — the synchronous
// wrapper endpoints, for example — so finished results are not pinned
// with nobody left to fetch them. An abandoned transient job still
// expires through the normal TTL/LRU policy.
func WithTransientJob() Option {
	return func(o *callOptions) { o.transientJob = true }
}

// WithJobWorkers bounds how many jobs the system's job manager runs
// concurrently (default GOMAXPROCS). Construction option.
func WithJobWorkers(n int) Option {
	return func(o *callOptions) { o.jobWorkers = n }
}

// WithJobQueueDepth bounds how many submitted jobs may wait beyond the
// running ones before Submit rejects with ErrJobQueueFull (default 64).
// Construction option.
func WithJobQueueDepth(n int) Option {
	return func(o *callOptions) { o.jobQueueDepth = n }
}

// WithResultTTL bounds how long a finished job stays fetchable through
// JobResult (default 15 minutes). Construction option.
func WithResultTTL(d time.Duration) Option {
	return func(o *callOptions) { o.resultTTL = d }
}

// WithShards makes Create build a horizontally sharded store of n child
// stores under Config.StoreDir instead of a single directory (n <= 1
// keeps the single store). The sharded store answers the same query
// surface by scatter-gather and Open re-detects it from its manifest.
// Construction option.
func WithShards(n int) Option {
	return func(o *callOptions) { o.shards = n }
}

// WithShardPartition selects the sharding scheme for WithShards:
// shardstore.PartitionTime (the default — whole bins round-robin,
// byte-identical query order to a single store) or
// shardstore.PartitionHash (records spread by router ID, so one hot bin
// scans with full shard parallelism). Construction option for Create.
func WithShardPartition(p string) Option {
	return func(o *callOptions) { o.shardPartition = p }
}

// WithPeers makes Open assemble a read-only cluster-mode system whose
// shards are remote rcad nodes (their /api/v1/shard endpoints), one
// shard per peer URL, instead of opening Config.StoreDir. Queries,
// aggregations and extraction fan out over HTTP with per-peer timeouts
// and bounded retries; a dead peer fails loudly with its URL in the
// error unless WithDegradedReads opted into partial results.
// Construction option.
func WithPeers(urls []string) Option {
	return func(o *callOptions) { o.peers = urls }
}

// WithPeerTimeout bounds each unary call to a cluster peer (default
// 10 s). Streaming queries are bounded by their caller's context
// instead. Construction option, meaningful with WithPeers.
func WithPeerTimeout(d time.Duration) Option {
	return func(o *callOptions) { o.peerTimeout = d }
}

// WithDegradedReads opts a sharded or cluster-mode system into degraded
// reads: when some (not all) shards fail mid-read, the surviving
// shards' partial result is returned instead of an error. Off by
// default — the default contract names the dead shard and fails.
// Construction option.
func WithDegradedReads(on bool) Option {
	return func(o *callOptions) { o.degradedReads = on }
}

// resolveOptions folds the options into the call configuration.
func resolveOptions(opts []Option) callOptions {
	var o callOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Config configures Open/Create.
type Config struct {
	// StoreDir is the flow store directory.
	StoreDir string
	// BinSeconds is the measurement bin width for Create (default 300 s,
	// the 5-minute NetFlow bins of the paper's deployments).
	BinSeconds uint32
	// AlarmDBPath persists alarms as JSON; empty keeps alarms in memory.
	AlarmDBPath string
	// Extraction overrides the extraction engine options (nil = default).
	Extraction *ExtractionOptions
}

// System is the assembled root-cause analysis system of Figure 1.
type System struct {
	store  nfstore.Engine
	alarms *alarmdb.DB
	ex     *core.Extractor
	exOpts core.Options  // the system's base extraction options
	jobs   *jobs.Manager // the async extraction-job manager
	live   *liveState    // the streaming pipeline + watcher (nil: batch only)
}

// Create initializes a new system with a fresh flow store in
// cfg.StoreDir — a single directory, or (with WithShards) a
// horizontally sharded store. Construction options
// (WithQueryParallelism, WithSegmentFormat, WithShards) configure the
// assembled system; per-call options are ignored here.
func Create(cfg Config, opts ...Option) (*System, error) {
	o := resolveOptions(opts)
	format := o.segmentFormat
	if format == 0 {
		format = nfstore.DefaultSegmentFormat
	}
	var (
		store nfstore.Engine
		err   error
	)
	if o.shards > 1 {
		store, err = shardstore.Create(cfg.StoreDir, cfg.BinSeconds, o.shards, o.shardPartition, format)
	} else {
		store, err = nfstore.CreateFormat(cfg.StoreDir, cfg.BinSeconds, format)
	}
	if err != nil {
		return nil, err
	}
	return assemble(store, cfg, opts)
}

// Open opens a system over an existing flow store: cfg.StoreDir (a
// single directory or a sharded store, auto-detected from its shard
// manifest), or — with WithPeers — a read-only cluster of remote rcad
// shards, in which case cfg.StoreDir is ignored. Construction options
// (WithQueryParallelism) configure the assembled system.
func Open(cfg Config, opts ...Option) (*System, error) {
	o := resolveOptions(opts)
	var (
		store nfstore.Engine
		err   error
	)
	switch {
	case len(o.peers) > 0:
		store, err = shardstore.OpenRemote(context.Background(), o.peers,
			shardstore.RemoteOptions{Timeout: o.peerTimeout})
	case shardstore.IsShardedDir(cfg.StoreDir):
		store, err = shardstore.Open(cfg.StoreDir)
	default:
		store, err = nfstore.Open(cfg.StoreDir)
	}
	if err != nil {
		return nil, err
	}
	return assemble(store, cfg, opts)
}

func assemble(store nfstore.Engine, cfg Config, options []Option) (*System, error) {
	o := resolveOptions(options)
	if o.queryParallelism > 0 {
		store.SetParallelism(o.queryParallelism)
	}
	// Store-type-specific tuning goes through optional interfaces: a
	// sharded store fans these out, a remote cluster rejects writes.
	if o.zmCacheEntries > 0 {
		if zc, ok := store.(interface{ SetZoneMapCacheSize(int) }); ok {
			zc.SetZoneMapCacheSize(o.zmCacheEntries)
		}
	}
	if o.segmentFormat != 0 {
		if sf, ok := store.(interface{ SetSegmentFormat(uint16) error }); ok {
			if err := sf.SetSegmentFormat(o.segmentFormat); err != nil {
				store.Close()
				return nil, err
			}
		}
	}
	if o.degradedReads {
		if dg, ok := store.(interface{ SetDegraded(bool) }); ok {
			dg.SetDegraded(true)
		}
	}
	var db *alarmdb.DB
	if cfg.AlarmDBPath != "" {
		var err error
		db, err = alarmdb.Open(cfg.AlarmDBPath)
		if err != nil {
			store.Close()
			return nil, err
		}
	} else {
		db = alarmdb.New()
	}
	opts := core.DefaultOptions()
	if cfg.Extraction != nil {
		opts = *cfg.Extraction
	}
	ex, err := core.New(store, opts)
	if err != nil {
		store.Close()
		return nil, err
	}
	mgr := jobs.New(jobs.Config{
		Workers:    o.jobWorkers,
		QueueDepth: o.jobQueueDepth,
		ResultTTL:  o.resultTTL,
	})
	sys := &System{store: store, alarms: db, ex: ex, exOpts: opts, jobs: mgr}
	if o.live != nil {
		if err := sys.startLive(*o.live); err != nil {
			mgr.Close()
			store.Close()
			return nil, err
		}
	}
	return sys, nil
}

// Store exposes the underlying flow store engine for ingest and ad-hoc
// queries — a single *nfstore.Store, a sharded store, or a remote
// cluster, all behind the same query surface.
func (s *System) Store() nfstore.Engine { return s.store }

// ShardStat is one shard's observability snapshot (scan counters,
// segment census, and — for an unreachable peer — the error).
type ShardStat = shardstore.ShardStat

// ShardStats returns the per-shard observability breakdown of a sharded
// or cluster-mode system, nil for a single-store system.
func (s *System) ShardStats() []ShardStat {
	if st, ok := s.store.(*shardstore.ShardedStore); ok {
		return st.ShardStats()
	}
	return nil
}

// ShardNames lists the shard names of a sharded or cluster-mode system
// (directory names or peer URLs), nil for a single-store system.
func (s *System) ShardNames() []string {
	if st, ok := s.store.(*shardstore.ShardedStore); ok {
		return st.ShardNames()
	}
	return nil
}

// QueryStats is a snapshot of the flow store's scan counters: segments
// considered, pruned via zone-map sidecars, scanned, answered entirely
// from sidecars, records decoded, and sidecars built.
type QueryStats = nfstore.Stats

// QueryStats returns the store's cumulative scan counters. The pruning
// and pushdown fast paths are observable here: a selective workload on a
// well-indexed store shows SegmentsPruned close to SegmentsConsidered.
func (s *System) QueryStats() QueryStats { return s.store.Stats() }

// AddFlows ingests a batch of flow records.
func (s *System) AddFlows(records []Record) error {
	if err := s.store.AddAll(records); err != nil {
		return err
	}
	return s.store.Flush()
}

// Close cancels queued and running jobs, waits for the job workers to
// wind down, then flushes and closes the store and persists the alarm
// database. A live system is drained first: buffered records are
// consumed, open bins seal, and in-flight auto-extractions conclude.
func (s *System) Close() error {
	if s.live != nil {
		_ = s.DrainLive(context.Background())
	}
	s.jobs.Close()
	err := s.alarms.Save()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrDetectorSetup marks failures building the requested detector — an
// unknown name or a bad WithDetectorConfig value. Callers (like the HTTP
// layer) can branch on it to distinguish caller mistakes from runtime
// detection failures.
var ErrDetectorSetup = errors.New("detector setup")

// Detect builds the named detector from the registry ("" selects
// "netreflex"), runs it over the span, stores the alarms in the alarm
// database and returns their IDs. WithDetectorConfig supplies a
// detector-specific configuration to the factory.
func (s *System) Detect(ctx context.Context, detectorName string, span Interval, opts ...Option) ([]string, error) {
	o := resolveOptions(opts)
	if detectorName == "" {
		detectorName = "netreflex"
	}
	det, err := detector.New(detectorName, o.detectorCfg)
	if err != nil {
		return nil, fmt.Errorf("rootcause: %w: %w", ErrDetectorSetup, err)
	}
	alarms, err := det.Detect(ctx, s.store, span)
	if err != nil {
		return nil, err
	}
	return s.alarms.InsertAll(alarms), nil
}

// FileAlarm stores an externally produced alarm (the paper's system
// integrates "with any anomaly detection system that provides these
// data") and returns its ID.
func (s *System) FileAlarm(a Alarm) string { return s.alarms.Insert(a) }

// Alarms returns the stored alarms overlapping iv (all statuses).
func (s *System) Alarms(iv Interval) []AlarmEntry {
	return s.alarms.Query(iv, "")
}

// Alarm returns one stored alarm by ID.
func (s *System) Alarm(id string) (AlarmEntry, error) { return s.alarms.Get(id) }

// ErrNoUsefulItemsets is returned by Validate-style helpers; exported so
// operators can branch on it.
var ErrNoUsefulItemsets = errors.New("rootcause: extraction produced no itemsets")

// extractor returns the engine for one call: the system default, or a
// fresh one when WithExtractionOptions, WithMiner, WithRanking or
// WithProgress override the configuration.
func (s *System) extractor(o *callOptions) (*core.Extractor, error) {
	if o.extraction == nil && o.miner == "" && o.ranking == "" && o.progress == nil {
		return s.ex, nil
	}
	opts := s.exOpts
	if o.extraction != nil {
		opts = *o.extraction
	}
	if o.miner != "" {
		opts.Miner = o.miner
	}
	if o.ranking != "" {
		opts.Ranking = o.ranking
	}
	if o.progress != nil {
		opts.Progress = o.progress
	}
	return core.New(s.store, opts)
}

// extractFn returns the extraction function for one call (the test seam
// wins when set).
func (s *System) extractFn(o *callOptions) (func(ctx context.Context, a *Alarm) (*Result, error), error) {
	if o.extractFn != nil {
		return o.extractFn, nil
	}
	ex, err := s.extractor(o)
	if err != nil {
		return nil, err
	}
	return ex.Extract, nil
}

// Extract runs anomaly extraction for a stored alarm and marks it
// analyzed. The result's Table() renders the operator view.
func (s *System) Extract(ctx context.Context, alarmID string, opts ...Option) (*Result, error) {
	o := resolveOptions(opts)
	fn, err := s.extractFn(&o)
	if err != nil {
		return nil, err
	}
	return s.extractOne(ctx, alarmID, fn)
}

// extractOne is the shared single-alarm path of Extract and ExtractAll:
// look up the alarm, run extraction, record the workflow status.
func (s *System) extractOne(ctx context.Context, alarmID string, fn func(ctx context.Context, a *Alarm) (*Result, error)) (*Result, error) {
	entry, err := s.alarms.Get(alarmID)
	if err != nil {
		return nil, err
	}
	res, err := fn(ctx, &entry.Alarm)
	if err != nil {
		return nil, err
	}
	note := fmt.Sprintf("%d itemsets", len(res.Itemsets))
	if err := s.alarms.SetStatus(alarmID, alarmdb.StatusAnalyzed, note); err != nil {
		return nil, err
	}
	return res, nil
}

// ExtractAlarm runs extraction for an ad-hoc alarm without storing it.
func (s *System) ExtractAlarm(ctx context.Context, a *Alarm, opts ...Option) (*Result, error) {
	o := resolveOptions(opts)
	fn, err := s.extractFn(&o)
	if err != nil {
		return nil, err
	}
	return fn(ctx, a)
}

// ExtractResult is one streamed outcome of ExtractAll.
type ExtractResult struct {
	// AlarmID names the alarm this result belongs to.
	AlarmID string
	// Result is the extraction outcome; nil when Err is set.
	Result *Result
	// Err is the per-alarm failure (unknown ID, extraction error, or
	// ctx.Err() for alarms abandoned by cancellation).
	Err error
}

// ExtractAll runs extraction for many stored alarms concurrently on a
// bounded worker pool (WithConcurrency, default GOMAXPROCS) and streams
// one ExtractResult per alarm as extractions complete, in completion
// order. The channel is closed once the batch concludes. An uncancelled
// batch delivers exactly len(alarmIDs) results; cancelling ctx stops the
// pool within one worker iteration, closes the channel promptly, and
// discards results for alarms that were still pending — so a consumer
// that stops reading early must cancel ctx to release the pool.
// Successful extractions mark their alarm analyzed, exactly like
// Extract.
func (s *System) ExtractAll(ctx context.Context, alarmIDs []string, opts ...Option) <-chan ExtractResult {
	o := resolveOptions(opts)
	return s.extractAll(ctx, alarmIDs, &o)
}

// extractAll is ExtractAll over already-resolved options (shared with
// the batch job task).
func (s *System) extractAll(ctx context.Context, alarmIDs []string, o *callOptions) <-chan ExtractResult {
	workers := o.concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(alarmIDs) {
		workers = len(alarmIDs)
	}
	// Resolve the extraction function once per batch, not per alarm; a
	// bad WithExtractionOptions value fails every alarm identically.
	fn, fnErr := s.extractFn(o)

	out := make(chan ExtractResult)
	jobs := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				var r ExtractResult
				switch {
				case fnErr != nil:
					r = ExtractResult{AlarmID: id, Err: fnErr}
				default:
					res, err := s.extractOne(ctx, id, fn)
					r = ExtractResult{AlarmID: id, Result: res, Err: err}
				}
				// Never block forever on a consumer that went away: the
				// send races ctx so a cancelled batch always winds down.
				select {
				case out <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, id := range alarmIDs {
			select {
			case jobs <- id:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// JobRequest describes one extraction-job submission: exactly one of
// AlarmID (a single extraction, JobKindExtract), AlarmIDs (a batch,
// JobKindExtractBatch) or IncidentID (a per-incident extraction,
// JobKindExtractIncident) must be set.
type JobRequest struct {
	// AlarmID submits a single stored-alarm extraction.
	AlarmID string
	// AlarmIDs submits a batch extraction; per-alarm outcomes are
	// retained in submission order (and optionally streamed through
	// WithBatchResults).
	AlarmIDs []string
	// IncidentID submits the one extraction of a correlated incident
	// (its members merged into a single mining run, like
	// ExtractIncident).
	IncidentID string
}

// JobResult is the outcome of a finished (done) job.
type JobResult struct {
	// Status is the job's final status snapshot.
	Status JobStatus
	// Result is the extraction outcome of a JobKindExtract job.
	Result *Result
	// Batch holds the per-alarm outcomes of a JobKindExtractBatch job,
	// in submission order.
	Batch []ExtractResult
}

// Submit enqueues an extraction job on the system's job manager and
// returns its ID immediately. The same per-call options as Extract
// apply (WithMiner, WithExtractionOptions, WithProgress; batches also
// take WithConcurrency and WithBatchResults) and are validated up
// front — a bad miner name fails the submission, not the job. A full
// queue fails with ErrJobQueueFull instead of blocking: callers under
// admission control back off and retry.
//
// The job runs under the manager's lifecycle context, not a caller
// context — the submitter may disconnect and fetch the result later
// via Wait or JobResult. CancelJob aborts it.
func (s *System) Submit(req JobRequest, opts ...Option) (string, error) {
	o := resolveOptions(opts)
	targets := 0
	for _, set := range []bool{req.AlarmID != "", len(req.AlarmIDs) > 0, req.IncidentID != ""} {
		if set {
			targets++
		}
	}
	if targets != 1 {
		return "", errNoJobTarget
	}
	// Fail fast on configuration mistakes (unknown miner, invalid
	// extraction options) while the caller is still on the line.
	if o.extractFn == nil {
		if _, err := s.extractor(&o); err != nil {
			return "", err
		}
	}
	submit := s.jobs.Submit
	if o.transientJob {
		submit = s.jobs.SubmitTransient
	}
	switch {
	case req.AlarmID != "":
		return submit(JobKindExtract, s.extractTask(req.AlarmID, o))
	case req.IncidentID != "":
		return submit(JobKindExtractIncident, s.incidentTask(req.IncidentID, o))
	}
	return submit(JobKindExtractBatch, s.batchTask(req.AlarmIDs, o))
}

// extractTask builds the job task for one single-alarm extraction: the
// engine's sampled progress feeds the job status (and the caller's
// WithProgress observer, when set).
func (s *System) extractTask(alarmID string, o callOptions) jobs.Task {
	return func(ctx context.Context, report func(JobProgress)) (any, error) {
		ro := o
		user := o.progress
		ro.progress = func(p ExtractionProgress) {
			report(JobProgress{
				Phase:       p.Phase,
				TuningRound: p.TuningRound,
				Candidates:  p.CandidateFlows,
				Itemsets:    p.Itemsets,
			})
			if user != nil {
				user(p)
			}
		}
		fn, err := s.extractFn(&ro)
		if err != nil {
			return nil, err
		}
		return s.extractOne(ctx, alarmID, fn)
	}
}

// batchTask builds the job task for a batch extraction: it fans out over
// the ExtractAll pool (WithConcurrency applies within the one job slot),
// reports completed/total progress, streams each outcome to the
// WithBatchResults sink, and retains the outcomes in submission order.
func (s *System) batchTask(alarmIDs []string, o callOptions) jobs.Task {
	ids := append([]string(nil), alarmIDs...)
	return func(ctx context.Context, report func(JobProgress)) (any, error) {
		total := len(ids)
		report(JobProgress{Phase: "batch", Total: total})
		if o.progress != nil {
			// The pool's workers share one extractor, so the engine would
			// invoke the observer from every worker at once — serialize to
			// honor WithProgress's single-call-at-a-time contract.
			var pmu sync.Mutex
			user := o.progress
			o.progress = func(p ExtractionProgress) {
				pmu.Lock()
				defer pmu.Unlock()
				user(p)
			}
		}
		// Route completion-order results back to submission-order slots;
		// duplicate IDs take slots first-come, first-served (their
		// results are identical anyway — extraction is deterministic).
		slots := make(map[string][]int, total)
		for i, id := range ids {
			slots[id] = append(slots[id], i)
		}
		out := make([]ExtractResult, total)
		done := 0
		for r := range s.extractAll(ctx, ids, &o) {
			if idx := slots[r.AlarmID]; len(idx) > 0 {
				out[idx[0]] = r
				slots[r.AlarmID] = idx[1:]
			}
			if o.batchSink != nil {
				o.batchSink(r)
			}
			done++
			report(JobProgress{Phase: "batch", Completed: done, Total: total})
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// Job returns the status snapshot of one job.
func (s *System) Job(id string) (JobStatus, error) { return s.jobs.Get(id) }

// Jobs lists every known job — queued, running and retained terminal
// ones — newest submission first.
func (s *System) Jobs() []JobStatus { return s.jobs.List() }

// CancelJob requests cancellation: a queued job is canceled in place, a
// running one has its context canceled (the extraction engine aborts at
// its next cancellation point). Canceling a terminal job is ErrJobDone.
func (s *System) CancelJob(id string) error { return s.jobs.Cancel(id) }

// Wait blocks until the job finishes (in any terminal state) or ctx is
// canceled. A done job returns its JobResult; a failed or canceled job
// returns the underlying error (errors.Is-compatible with domain
// sentinels like the alarm database's not-found error). The outcome is
// read from the job record the waiter holds, so it cannot be lost to a
// concurrent TTL/LRU eviction of the job's ID.
func (s *System) Wait(ctx context.Context, id string) (*JobResult, error) {
	val, st, err := s.jobs.WaitResult(ctx, id)
	if err != nil {
		return nil, err
	}
	return toJobResult(val, st), nil
}

// toJobResult shapes a retained task value into the public JobResult.
func toJobResult(val any, st JobStatus) *JobResult {
	jr := &JobResult{Status: st}
	switch v := val.(type) {
	case *Result:
		jr.Result = v
	case []ExtractResult:
		jr.Batch = v
	}
	return jr
}

// JobResult fetches a finished job's outcome. Unfinished jobs return
// ErrJobNotDone, unknown (or TTL/LRU-evicted) ones ErrJobNotFound, and
// failed or canceled jobs their stored error alongside the final status
// in a nil JobResult.
func (s *System) JobResult(id string) (*JobResult, error) {
	val, st, err := s.jobs.Result(id)
	if err != nil {
		return nil, err
	}
	return toJobResult(val, st), nil
}

// WatchJob subscribes to a job's status stream: the current snapshot
// immediately, then one per state or progress change, closed after the
// terminal one. Always call the returned cancel function. This is the
// seam the HTTP layer's SSE endpoint streams from.
func (s *System) WatchJob(id string) (<-chan JobStatus, func(), error) {
	return s.jobs.Subscribe(id)
}

// SetVerdict records the operator's validation verdict for an alarm.
func (s *System) SetVerdict(alarmID string, validated bool, note string) error {
	status := alarmdb.StatusValidated
	if !validated {
		status = alarmdb.StatusRejected
	}
	return s.alarms.SetStatus(alarmID, status, note)
}

// Flows returns the raw flow records of an interval matching an
// nfdump-style filter expression ("src ip 10.0.0.1 and dst port 80");
// empty filter returns everything. This is the GUI's drill-down: the
// paper's operator can "investigate the flows of any returned itemset".
func (s *System) Flows(ctx context.Context, iv Interval, filterExpr string) ([]Record, error) {
	var f *nffilter.Filter
	if filterExpr != "" {
		var err error
		f, err = nffilter.Parse(filterExpr)
		if err != nil {
			return nil, err
		}
	}
	return s.store.Records(ctx, iv, f)
}

// ItemsetFlows returns the raw flows behind one extracted itemset row.
func (s *System) ItemsetFlows(ctx context.Context, iv Interval, rep *ItemsetReport) ([]Record, error) {
	return s.store.Records(ctx, iv, rep.Filter())
}
