// Package rootcause is the public API of the anomaly root-cause analysis
// system reproduced from "Automating Root-Cause Analysis of Network
// Anomalies using Frequent Itemset Mining" (Paredes-Oliva et al.,
// SIGCOMM 2010).
//
// It wires together the components of the paper's Figure 1 architecture:
//
//	detectors ──▶ alarm DB ──▶ extraction engine ◀──▶ flow store (NfDump)
//	                               │
//	                               ▼
//	                     ranked itemsets (Table 1)
//
// A System owns a flow store (internal/nfstore, the NfDump substitute)
// and an alarm database. Detectors — the histogram/KL detector of Kind et
// al., the PCA subspace detector of Lakhina et al., or the simulated
// NetReflex — scan the store and file alarms; Extract runs the paper's
// extended Apriori (dual flow/packet support, self-tuning minimum
// support) for one alarm and returns the ranked itemsets summarizing the
// anomalous flows, each carrying a drill-down filter for the raw flows.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// system inventory.
package rootcause

import (
	"errors"
	"fmt"

	"repro/internal/alarmdb"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/histogram"
	"repro/internal/netreflex"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
	"repro/internal/pca"
)

// Re-exported types: the façade exposes the domain vocabulary without
// forcing users through internal package paths.
type (
	// Record is one NetFlow-style flow record.
	Record = flow.Record
	// Interval is a half-open time window in Unix seconds.
	Interval = flow.Interval
	// Alarm is a detector alarm with meta-data.
	Alarm = detector.Alarm
	// Result is a full extraction outcome; Result.Table() renders the
	// paper's Table 1 shape.
	Result = core.Result
	// ItemsetReport is one ranked itemset row.
	ItemsetReport = core.ItemsetReport
	// ExtractionOptions configures the extended-Apriori engine.
	ExtractionOptions = core.Options
	// AlarmEntry is a stored alarm with its operator workflow status.
	AlarmEntry = alarmdb.Entry
)

// DefaultExtractionOptions returns the engine defaults used throughout
// the paper reproduction.
func DefaultExtractionOptions() ExtractionOptions { return core.DefaultOptions() }

// Config configures Open/Create.
type Config struct {
	// StoreDir is the flow store directory.
	StoreDir string
	// BinSeconds is the measurement bin width for Create (default 300 s,
	// the 5-minute NetFlow bins of the paper's deployments).
	BinSeconds uint32
	// AlarmDBPath persists alarms as JSON; empty keeps alarms in memory.
	AlarmDBPath string
	// Extraction overrides the extraction engine options (nil = default).
	Extraction *ExtractionOptions
}

// System is the assembled root-cause analysis system of Figure 1.
type System struct {
	store  *nfstore.Store
	alarms *alarmdb.DB
	ex     *core.Extractor
}

// Create initializes a new system with a fresh flow store in
// cfg.StoreDir.
func Create(cfg Config) (*System, error) {
	store, err := nfstore.Create(cfg.StoreDir, cfg.BinSeconds)
	if err != nil {
		return nil, err
	}
	return assemble(store, cfg)
}

// Open opens a system over an existing flow store.
func Open(cfg Config) (*System, error) {
	store, err := nfstore.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	return assemble(store, cfg)
}

func assemble(store *nfstore.Store, cfg Config) (*System, error) {
	var db *alarmdb.DB
	if cfg.AlarmDBPath != "" {
		var err error
		db, err = alarmdb.Open(cfg.AlarmDBPath)
		if err != nil {
			store.Close()
			return nil, err
		}
	} else {
		db = alarmdb.New()
	}
	opts := core.DefaultOptions()
	if cfg.Extraction != nil {
		opts = *cfg.Extraction
	}
	ex, err := core.New(store, opts)
	if err != nil {
		store.Close()
		return nil, err
	}
	return &System{store: store, alarms: db, ex: ex}, nil
}

// Store exposes the underlying flow store for ingest and ad-hoc queries.
func (s *System) Store() *nfstore.Store { return s.store }

// AddFlows ingests a batch of flow records.
func (s *System) AddFlows(records []Record) error {
	if err := s.store.AddAll(records); err != nil {
		return err
	}
	return s.store.Flush()
}

// Close flushes and closes the store and persists the alarm database.
func (s *System) Close() error {
	err := s.alarms.Save()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// DetectorNames lists the detectors Detect accepts.
func DetectorNames() []string { return []string{"netreflex", "histogram", "pca"} }

// newDetector builds a named detector with its default configuration.
func newDetector(name string) (detector.Detector, error) {
	switch name {
	case "netreflex", "":
		return netreflex.New(netreflex.DefaultConfig())
	case "histogram":
		return histogram.New(histogram.DefaultConfig())
	case "pca":
		return pca.New(pca.DefaultConfig())
	default:
		return nil, fmt.Errorf("rootcause: unknown detector %q (have %v)", name, DetectorNames())
	}
}

// Detect runs the named detector ("netreflex", "histogram" or "pca") over
// the span, stores the alarms in the alarm database and returns their
// IDs.
func (s *System) Detect(detectorName string, span Interval) ([]string, error) {
	det, err := newDetector(detectorName)
	if err != nil {
		return nil, err
	}
	alarms, err := det.Detect(s.store, span)
	if err != nil {
		return nil, err
	}
	return s.alarms.InsertAll(alarms), nil
}

// FileAlarm stores an externally produced alarm (the paper's system
// integrates "with any anomaly detection system that provides these
// data") and returns its ID.
func (s *System) FileAlarm(a Alarm) string { return s.alarms.Insert(a) }

// Alarms returns the stored alarms overlapping iv (all statuses).
func (s *System) Alarms(iv Interval) []AlarmEntry {
	return s.alarms.Query(iv, "")
}

// Alarm returns one stored alarm by ID.
func (s *System) Alarm(id string) (AlarmEntry, error) { return s.alarms.Get(id) }

// ErrNoUsefulItemsets is returned by Validate-style helpers; exported so
// operators can branch on it.
var ErrNoUsefulItemsets = errors.New("rootcause: extraction produced no itemsets")

// Extract runs anomaly extraction for a stored alarm and marks it
// analyzed. The result's Table() renders the operator view.
func (s *System) Extract(alarmID string) (*Result, error) {
	entry, err := s.alarms.Get(alarmID)
	if err != nil {
		return nil, err
	}
	res, err := s.ex.Extract(&entry.Alarm)
	if err != nil {
		return nil, err
	}
	note := fmt.Sprintf("%d itemsets", len(res.Itemsets))
	if err := s.alarms.SetStatus(alarmID, alarmdb.StatusAnalyzed, note); err != nil {
		return nil, err
	}
	return res, nil
}

// ExtractAlarm runs extraction for an ad-hoc alarm without storing it.
func (s *System) ExtractAlarm(a *Alarm) (*Result, error) {
	return s.ex.Extract(a)
}

// SetVerdict records the operator's validation verdict for an alarm.
func (s *System) SetVerdict(alarmID string, validated bool, note string) error {
	status := alarmdb.StatusValidated
	if !validated {
		status = alarmdb.StatusRejected
	}
	return s.alarms.SetStatus(alarmID, status, note)
}

// Flows returns the raw flow records of an interval matching an
// nfdump-style filter expression ("src ip 10.0.0.1 and dst port 80");
// empty filter returns everything. This is the GUI's drill-down: the
// paper's operator can "investigate the flows of any returned itemset".
func (s *System) Flows(iv Interval, filterExpr string) ([]Record, error) {
	var f *nffilter.Filter
	if filterExpr != "" {
		var err error
		f, err = nffilter.Parse(filterExpr)
		if err != nil {
			return nil, err
		}
	}
	return s.store.Records(iv, f)
}

// ItemsetFlows returns the raw flows behind one extracted itemset row.
func (s *System) ItemsetFlows(iv Interval, rep *ItemsetReport) ([]Record, error) {
	return s.store.Records(iv, rep.Filter())
}
