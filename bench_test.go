// Benchmark harness regenerating every table, figure and statistic of the
// paper's evaluation (experiment IDs from DESIGN.md §5), plus the miner
// scalability and ablation benches. Custom metrics carry the reproduced
// statistics: useful%, additional%, found-flags, so that
//
//	go test -bench=. -benchmem
//
// prints the full paper-vs-measured picture next to the timings. The
// cmd/benchreport tool renders the same data as labeled tables.
package rootcause_test

import (
	"context"
	"testing"

	rootcause "repro"
	"repro/internal/apriori"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/eval"
	"repro/internal/flow"
	"repro/internal/fpgrowth"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// BenchmarkTable1_PortScanItemsets (E1) regenerates the paper's Table 1:
// the flagged scanner, the second scanner and the two DDoS itemsets.
func BenchmarkTable1_PortScanItemsets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable1(b.TempDir(), eval.DefaultTable1())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Itemsets) < 4 {
			b.Fatalf("Table 1 has %d itemsets, want >= 4", len(res.Itemsets))
		}
		b.ReportMetric(float64(len(res.Itemsets)), "itemsets")
	}
}

// BenchmarkGEANT40_UsefulItemsets (E2) runs the 40-alarm GEANT evaluation
// (1/100 sampling) and reports the useful-extraction fraction — the
// paper's 94%.
func BenchmarkGEANT40_UsefulItemsets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite, err := eval.RunSuite("geant-40", eval.GEANTSpecs(1), eval.SuiteConfig{
			SeedBase: 1000, SampleRate: 100, WorkDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*suite.UsefulFraction(), "useful%")
		if suite.UsefulFraction() < 0.85 || suite.UsefulFraction() > 1 {
			b.Fatalf("useful fraction %.3f out of the paper's band (~0.94)", suite.UsefulFraction())
		}
	}
}

// BenchmarkGEANT40_AdditionalFlows (E3) reports the fraction of useful
// alarms where the miner evidenced flows the detector did not provide —
// the paper's 26-28%.
func BenchmarkGEANT40_AdditionalFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite, err := eval.RunSuite("geant-40", eval.GEANTSpecs(1), eval.SuiteConfig{
			SeedBase: 1000, SampleRate: 100, WorkDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*suite.AdditionalFraction(), "additional%")
		if suite.AdditionalFraction() < 0.15 || suite.AdditionalFraction() > 0.40 {
			b.Fatalf("additional fraction %.3f out of the paper's band (~0.26-0.28)",
				suite.AdditionalFraction())
		}
	}
}

// BenchmarkSWITCH31_Extraction (E4) runs the 31-anomaly SWITCH evaluation
// (unsampled, histogram/KL detector in the loop) — the paper extracted
// the anomalous flows in all 31 cases.
func BenchmarkSWITCH31_Extraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite, err := eval.RunSuite("switch-31", eval.SWITCHSpecs(2), eval.SuiteConfig{
			SeedBase: 2000, SampleRate: 1, WorkDir: b.TempDir(),
			UseDetector: true, Detector: "histogram",
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*suite.UsefulFraction(), "useful%")
		if suite.Useful() != len(suite.Evals) {
			b.Fatalf("extracted %d/%d, paper extracted all", suite.Useful(), len(suite.Evals))
		}
	}
}

// BenchmarkUDPFlood_SupportDimensions (E5) sweeps point-to-point UDP
// flood sizes: flow-only Apriori misses them at every size, the extended
// engine finds them all.
func BenchmarkUDPFlood_SupportDimensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunUDPFloodSweep(b.TempDir(), nil, 1_000_000, 3000)
		if err != nil {
			b.Fatal(err)
		}
		flowFound, dualFound := 0, 0
		for _, r := range rows {
			if r.FlowOnlyFound {
				flowFound++
				// The crossover where flow support starts seeing the flood
				// sits at a flow count comparable to background itemsets
				// (32-64 flows here, seed-dependent); below it the flood
				// must be invisible to flow-only mining — the paper's
				// motivating failure.
				if r.FloodFlows < 32 {
					b.Fatalf("flow-only support found a %d-flow flood", r.FloodFlows)
				}
			}
			if r.DualFound {
				dualFound++
			}
		}
		b.ReportMetric(float64(flowFound), "flow-only-found")
		b.ReportMetric(float64(dualFound), "dual-found")
		if dualFound != len(rows) {
			b.Fatalf("dual support found %d/%d floods", dualFound, len(rows))
		}
	}
}

// BenchmarkSelfTuning_Ablation (E6) compares the self-adjusting minimum
// support with a fixed threshold across anomaly intensities.
func BenchmarkSelfTuning_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTuningAblation(b.TempDir(), nil, 40)
		if err != nil {
			b.Fatal(err)
		}
		tuned, fixed := 0, 0
		for _, r := range rows {
			if r.SelfTunedUseful {
				tuned++
			}
			if r.FixedUseful {
				fixed++
			}
		}
		b.ReportMetric(float64(tuned), "self-tuned-found")
		b.ReportMetric(float64(fixed), "fixed-found")
		if tuned < len(rows) {
			b.Fatalf("self-tuning found %d/%d", tuned, len(rows))
		}
		if fixed >= tuned {
			b.Fatalf("fixed support (%d) should trail self-tuning (%d)", fixed, tuned)
		}
	}
}

// BenchmarkFigure1Pipeline (E7) measures the full architecture: detect
// over a 30-bin multi-PoP trace, then extract every alarm — the
// interactive NOC workload of the demo.
func BenchmarkFigure1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		sys, err := rootcause.Create(rootcause.Config{StoreDir: dir + "/flows"})
		if err != nil {
			b.Fatal(err)
		}
		scenario := gen.Scenario{
			Background: gen.Background{NumPoPs: 4, FlowsPerBin: 250},
			Bins:       30, StartTime: 1_300_000_200, Seed: 99,
			Placements: []gen.Placement{
				{Anomaly: gen.PortScan{Scanner: flow.MustParseIP("10.191.64.165"),
					Victim: flow.MustParseIP("198.19.137.129"), SrcPort: 55548,
					Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 20},
			},
		}
		truth, err := scenario.Generate(sys.Store())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		ids, err := sys.Detect(b.Context(), "netreflex", truth.Span)
		if err != nil {
			b.Fatal(err)
		}
		extracted := 0
		for _, id := range ids {
			if _, err := sys.Extract(b.Context(), id); err == nil {
				extracted++
			}
		}
		if extracted == 0 {
			b.Fatal("pipeline extracted nothing")
		}
		b.StopTimer()
		sys.Close()
		b.StartTimer()
	}
}

// minerDataset builds an aggregated transaction dataset of roughly n flow
// records with anomaly structure (a scan over background).
func minerDataset(b *testing.B, n int) *itemset.Dataset {
	b.Helper()
	dir := b.TempDir()
	store, err := nfstore.Create(dir, 300)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	scanFlows := n / 4
	bgPerBin := (n - scanFlows) / 2
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: bgPerBin / 2},
		Bins:       2, StartTime: 1_300_000_200, Seed: uint64(n),
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: flow.MustParseIP("10.9.9.9"),
				Victim: flow.MustParseIP("198.19.0.9"), SrcPort: 55548,
				Ports: scanFlows, FlowsPerPort: 1, Router: 0}, Bin: 1},
		},
	}
	truth, err := scenario.Generate(store)
	if err != nil {
		b.Fatal(err)
	}
	records, err := store.Records(b.Context(), truth.Span, nil)
	if err != nil {
		b.Fatal(err)
	}
	return itemset.FromRecords(records)
}

// benchMiner benchmarks one miner at one scale (E8).
func benchMiner(b *testing.B, n int, mine func(context.Context, *itemset.Dataset, apriori.Options) ([]itemset.Frequent, error)) {
	ds := minerDataset(b, n)
	minSup := uint64(ds.TotalFlows() / 20)
	if minSup == 0 {
		minSup = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mine(b.Context(), ds, apriori.Options{MinSupport: minSup})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no itemsets")
		}
	}
	b.ReportMetric(float64(ds.Len()), "transactions")
}

func BenchmarkApriori_10k(b *testing.B)  { benchMiner(b, 10_000, apriori.Mine) }
func BenchmarkApriori_100k(b *testing.B) { benchMiner(b, 100_000, apriori.Mine) }
func BenchmarkApriori_500k(b *testing.B) { benchMiner(b, 500_000, apriori.Mine) }

func BenchmarkFPGrowth_10k(b *testing.B)  { benchMiner(b, 10_000, fpgrowth.Mine) }
func BenchmarkFPGrowth_100k(b *testing.B) { benchMiner(b, 100_000, fpgrowth.Mine) }
func BenchmarkFPGrowth_500k(b *testing.B) { benchMiner(b, 500_000, fpgrowth.Mine) }

// extractionScenario prepares one store+alarm pair for extraction-option
// ablations.
func extractionScenario(b *testing.B, dir string) (*nfstore.Store, *detector.Alarm) {
	b.Helper()
	store, err := nfstore.Create(dir, 300)
	if err != nil {
		b.Fatal(err)
	}
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 2000},
		Bins:       4, StartTime: 1_300_000_200, Seed: 17,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 5000, FlowsPerPort: 2, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(store)
	if err != nil {
		b.Fatal(err)
	}
	alarm := &detector.Alarm{
		Interval: truth.Entries[0].Interval,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
			{Feature: flow.FeatDstIP, Value: uint32(victim)},
		},
	}
	return store, alarm
}

// BenchmarkPrefilter_Ablation measures extraction with the meta-data
// pre-filter on and off (the IMC'09 workflow vs whole-interval mining).
func BenchmarkPrefilter_Ablation(b *testing.B) {
	for _, mode := range []struct {
		name string
		pre  bool
	}{{"prefilter", true}, {"full-interval", false}} {
		b.Run(mode.name, func(b *testing.B) {
			store, alarm := extractionScenario(b, b.TempDir())
			defer store.Close()
			opts := core.DefaultOptions()
			opts.UsePrefilter = mode.pre
			ex, err := core.New(store, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Extract(b.Context(), alarm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaximalReduction_Ablation measures mining with and without the
// maximal-itemset reduction the operator view depends on.
func BenchmarkMaximalReduction_Ablation(b *testing.B) {
	ds := minerDataset(b, 100_000)
	minSup := uint64(ds.TotalFlows() / 20)
	b.Run("all-frequent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apriori.Mine(b.Context(), ds, apriori.Options{MinSupport: minSup}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("maximal-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apriori.MineMaximal(b.Context(), ds, apriori.Options{MinSupport: minSup}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractAlarm measures single-alarm extraction latency at NOC
// scale — the demo's interactive operation.
func BenchmarkExtractAlarm(b *testing.B) {
	store, alarm := extractionScenario(b, b.TempDir())
	defer store.Close()
	ex, err := core.New(store, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Extract(b.Context(), alarm)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Itemsets) == 0 {
			b.Fatal("no itemsets")
		}
	}
}

// BenchmarkStoreQuery measures raw filtered store scans (the NfDump
// substitute's core operation).
func BenchmarkStoreQuery(b *testing.B) {
	store, alarm := extractionScenario(b, b.TempDir())
	defer store.Close()
	filter := alarm.MetaFilter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := store.Query(b.Context(), alarm.Interval, filter, func(*flow.Record) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("query matched nothing")
		}
	}
}

// BenchmarkStoreScanFormats compares the v1 fixed-row and v2 columnar
// segment formats on the selective two-column extraction filter
// (`benchreport -exp scan` prints the same comparison as a table, and
// docs/evaluation.md records a captured run). The clustered workload is
// the paper's shape — matches concentrated in one anomaly burst, letting
// v2 reject whole background blocks after decoding only the two filter
// columns; uniform spreads matches evenly, v2's worst case.
func BenchmarkStoreScanFormats(b *testing.B) {
	filter := nffilter.MustParse(eval.ScanFilter)
	const records, bins = 200_000, 4
	span := flow.Interval{Start: 0, End: bins * 300}
	for _, tc := range []struct {
		name      string
		format    uint16
		clustered bool
	}{
		{"v1/clustered", nfstore.FormatV1, true},
		{"v2/clustered", nfstore.FormatV2, true},
		{"v1/uniform", nfstore.FormatV1, false},
		{"v2/uniform", nfstore.FormatV2, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			store, err := nfstore.CreateFormat(b.TempDir(), 300, tc.format)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			if err := eval.FillScanStore(store, tc.clustered, records, bins, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				err := store.Query(b.Context(), span, filter, func(*flow.Record) error {
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("filter matched nothing")
				}
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrec/s")
		})
	}
}

// prunedQueryStore builds a multi-segment archive for the query-engine
// benchmark: bins of uniform background traffic plus one bin that also
// holds flows from a distinctive source, so a "src ip" filter is
// selective across segments (one matching bin) but every segment still
// overlaps the queried span.
func prunedQueryStore(b *testing.B, bins, perBin int, needle flow.IP) *nfstore.Store {
	b.Helper()
	store, err := nfstore.Create(b.TempDir(), 300)
	if err != nil {
		b.Fatal(err)
	}
	for bin := 0; bin < bins; bin++ {
		for i := 0; i < perBin; i++ {
			r := flow.Record{
				Start: uint32(bin*300 + i%300), Dur: 1000,
				SrcIP: flow.IPFromOctets(10, 0, byte(i%4), byte(i%200)),
				DstIP: flow.MustParseIP("192.0.2.1"), SrcPort: 40000, DstPort: 80,
				Proto: flow.ProtoTCP, Router: 1, Packets: 3, Bytes: 120,
			}
			if err := store.Add(&r); err != nil {
				b.Fatal(err)
			}
		}
	}
	hot := flow.Record{
		Start: uint32((bins*2/3)*300 + 7), Dur: 1000,
		SrcIP: needle, DstIP: flow.MustParseIP("192.0.2.1"),
		SrcPort: 55548, DstPort: 80, Proto: flow.ProtoTCP, Router: 1,
		Packets: 3, Bytes: 120,
	}
	if err := store.Add(&hot); err != nil {
		b.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	return store
}

// BenchmarkStoreQueryPrunedParallel measures the query engine's
// multi-segment win for a selective filter: the serial unpruned scan
// (pre-index behavior) against the zone-map-pruned parallel engine. The
// segments-pruned/op metric makes the pruning observable — for this
// workload the engine opens one segment out of 24.
func BenchmarkStoreQueryPrunedParallel(b *testing.B) {
	const bins = 24
	needle := flow.MustParseIP("172.16.9.9")
	filter := nffilter.MustParse("src ip 172.16.9.9")
	span := flow.Interval{Start: 0, End: bins * 300}
	for _, mode := range []struct {
		name    string
		pruning bool
		par     int
	}{
		{"serial-unpruned", false, 1},
		{"parallel-unpruned", false, 0},
		{"pruned-parallel", true, 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			store := prunedQueryStore(b, bins, 4000, needle)
			defer store.Close()
			store.SetPruning(mode.pruning)
			store.SetParallelism(mode.par)
			store.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				err := store.Query(b.Context(), span, filter, func(*flow.Record) error {
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != 1 {
					b.Fatalf("query matched %d records, want 1", n)
				}
			}
			b.StopTimer()
			st := store.Stats()
			b.ReportMetric(float64(st.SegmentsPruned)/float64(b.N), "segments-pruned/op")
			b.ReportMetric(float64(st.SegmentsScanned)/float64(b.N), "segments-scanned/op")
		})
	}
}

// BenchmarkStoreCountPushdown measures the aggregation pushdown: an
// unfiltered Count over the full span answers from sidecars alone.
func BenchmarkStoreCountPushdown(b *testing.B) {
	const bins = 24
	needle := flow.MustParseIP("172.16.9.9")
	span := flow.Interval{Start: 0, End: bins * 300}
	for _, mode := range []struct {
		name    string
		pruning bool
		par     int
	}{
		{"scan", false, 0},
		{"pushdown", true, 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			store := prunedQueryStore(b, bins, 4000, needle)
			defer store.Close()
			store.SetPruning(mode.pruning)
			store.SetParallelism(mode.par)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flows, _, _, err := store.Count(b.Context(), span, nil)
				if err != nil {
					b.Fatal(err)
				}
				if flows != bins*4000+1 {
					b.Fatalf("Count = %d", flows)
				}
			}
		})
	}
}

// BenchmarkSamplingThroughput measures the 1/100 packet sampler (the
// substrate of the GEANT condition in E2).
func BenchmarkSamplingThroughput(b *testing.B) {
	ds := minerDataset(b, 10_000)
	recs := make([]flow.Record, 0, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		tx := ds.Tx(i)
		recs = append(recs, flow.Record{
			Start: 1_300_000_200, SrcIP: flow.IP(tx.Items[0].Value()),
			DstIP: flow.IP(tx.Items[1].Value()), SrcPort: uint16(tx.Items[2].Value()),
			DstPort: uint16(tx.Items[3].Value()), Proto: flow.Protocol(tx.Items[4].Value()),
			Packets: tx.Packets/tx.Flows + 1, Bytes: (tx.Packets/tx.Flows + 1) * 100,
		})
	}
	sampler := sampling.MustNew(100, stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := sampler.ApplyAll(recs)
		if len(out) > len(recs) {
			b.Fatal("sampling cannot grow the record set")
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}
