// Package alarmdb is the alarm database of the paper's architecture
// (Figure 1): detectors write alarms into it, the extraction GUI reads
// them back by time range and records the operator's verdict after
// analysis. It is an in-memory store with JSON file persistence — the
// paper's deployment used a SQL database for the same role; the contract
// (insert, query by interval, status workflow) is what matters to the
// rest of the system.
package alarmdb
