package alarmdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/detector"
	"repro/internal/flow"
)

// Status tracks an alarm through the operator workflow.
type Status string

// Alarm statuses: new (from the detector), analyzed (extraction ran),
// validated (operator confirmed a security incident), rejected (operator
// marked it a false positive).
const (
	StatusNew       Status = "new"
	StatusAnalyzed  Status = "analyzed"
	StatusValidated Status = "validated"
	StatusRejected  Status = "rejected"
)

// Entry is one stored alarm with its workflow state.
type Entry struct {
	Alarm  detector.Alarm `json:"alarm"`
	Status Status         `json:"status"`
	// Note is a free-form operator comment.
	Note string `json:"note,omitempty"`
}

// DB is the alarm database. Safe for concurrent use.
type DB struct {
	mu        sync.RWMutex
	entries   map[string]*Entry
	incidents map[string]*IncidentEntry
	nextID    int
	nextIncID int
	path      string // persistence file, "" = memory only
}

// New returns an empty in-memory database.
func New() *DB {
	return &DB{
		entries:   map[string]*Entry{},
		incidents: map[string]*IncidentEntry{},
		nextID:    1,
		nextIncID: 1,
	}
}

// fileV2 is the on-disk format: a versioned envelope holding alarms and
// incidents. Version 1 files were a bare JSON array of alarm entries;
// Open still reads those.
type fileV2 struct {
	Version   int              `json:"version"`
	Alarms    []*Entry         `json:"alarms"`
	Incidents []*IncidentEntry `json:"incidents,omitempty"`
}

// fileVersion is the format Save writes.
const fileVersion = 2

// Open loads a database from a JSON file, creating an empty one when the
// file does not exist yet. Save persists back to the same path.
func Open(path string) (*DB, error) {
	db := New()
	db.path = path
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return db, nil
	}
	if err != nil {
		return nil, fmt.Errorf("alarmdb: open %s: %w", path, err)
	}
	var f fileV2
	if isLegacyArray(raw) {
		if err := json.Unmarshal(raw, &f.Alarms); err != nil {
			return nil, fmt.Errorf("alarmdb: parse %s: %w", path, err)
		}
	} else if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("alarmdb: parse %s: %w", path, err)
	}
	maxID := 0
	for _, e := range f.Alarms {
		db.entries[e.Alarm.ID] = e
		if n, err := strconv.Atoi(e.Alarm.ID); err == nil && n > maxID {
			maxID = n
		}
	}
	db.nextID = maxID + 1
	maxInc := 0
	for _, e := range f.Incidents {
		db.incidents[e.Incident.ID] = e
		if n, err := strconv.Atoi(strings.TrimPrefix(e.Incident.ID, "i")); err == nil && n > maxInc {
			maxInc = n
		}
	}
	db.nextIncID = maxInc + 1
	return db, nil
}

// isLegacyArray reports whether raw is a version-1 file (a bare JSON
// array of alarm entries).
func isLegacyArray(raw []byte) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b == '['
	}
	return false
}

// Save persists the database to its file (no-op for memory-only DBs).
// The write is atomic — encode to a temp file in the same directory,
// then rename over the target — so a crash mid-save leaves the previous
// file intact instead of a truncated one.
func (db *DB) Save() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.path == "" {
		return nil
	}
	f := fileV2{
		Version:   fileVersion,
		Alarms:    db.sortedLocked(),
		Incidents: db.sortedIncidentsLocked(),
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("alarmdb: encode: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(db.path), filepath.Base(db.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("alarmdb: write %s: %w", db.path, err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("alarmdb: write %s: %w", db.path, werr)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("alarmdb: write %s: %w", db.path, err)
	}
	if err := os.Rename(tmp.Name(), db.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("alarmdb: write %s: %w", db.path, err)
	}
	return nil
}

// Insert stores an alarm, assigns it a fresh ID (returned and also set on
// the stored copy) and marks it new.
func (db *DB) Insert(a detector.Alarm) string {
	db.mu.Lock()
	defer db.mu.Unlock()
	id := strconv.Itoa(db.nextID)
	db.nextID++
	a.ID = id
	db.entries[id] = &Entry{Alarm: a, Status: StatusNew}
	return id
}

// InsertAll stores a batch of alarms, returning their IDs in order.
func (db *DB) InsertAll(alarms []detector.Alarm) []string {
	ids := make([]string, len(alarms))
	for i, a := range alarms {
		ids[i] = db.Insert(a)
	}
	return ids
}

// ErrNotFound is returned for unknown alarm IDs.
var ErrNotFound = errors.New("alarmdb: alarm not found")

// Get returns a copy of the entry with the given ID.
func (db *DB) Get(id string) (Entry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[id]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return *e, nil
}

// SetStatus updates an alarm's workflow status and note.
func (db *DB) SetStatus(id string, status Status, note string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch status {
	case StatusNew, StatusAnalyzed, StatusValidated, StatusRejected:
	default:
		return fmt.Errorf("alarmdb: invalid status %q", status)
	}
	e.Status = status
	if note != "" {
		e.Note = note
	}
	return nil
}

// Len returns the number of stored alarms.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// All returns every entry ordered by interval start, then ID.
func (db *DB) All() []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Entry, 0, len(db.entries))
	for _, e := range db.sortedLocked() {
		out = append(out, *e)
	}
	return out
}

// Query returns entries whose alarm interval overlaps iv, optionally
// restricted to one status ("" = all), ordered by interval start.
func (db *DB) Query(iv flow.Interval, status Status) []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Entry
	for _, e := range db.sortedLocked() {
		if !e.Alarm.Interval.Overlaps(iv) {
			continue
		}
		if status != "" && e.Status != status {
			continue
		}
		out = append(out, *e)
	}
	return out
}

// sortedLocked returns entries ordered by (interval start, numeric ID).
// Caller holds at least the read lock.
func (db *DB) sortedLocked() []*Entry {
	entries := make([]*Entry, 0, len(db.entries))
	for _, e := range db.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Alarm.Interval.Start != b.Alarm.Interval.Start {
			return a.Alarm.Interval.Start < b.Alarm.Interval.Start
		}
		ai, _ := strconv.Atoi(a.Alarm.ID)
		bi, _ := strconv.Atoi(b.Alarm.ID)
		return ai < bi
	})
	return entries
}
