package alarmdb

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/incident"
)

func mkIncident(start, end uint32, alarmIDs ...string) incident.Incident {
	rep := ""
	if len(alarmIDs) > 0 {
		rep = alarmIDs[0]
	}
	return incident.Incident{
		Interval:       flow.Interval{Start: start, End: end},
		Kinds:          []detector.Kind{detector.KindPortScan},
		AlarmIDs:       alarmIDs,
		Representative: rep,
		Score:          2,
	}
}

func TestReconcileIncidents(t *testing.T) {
	db := New()
	ids := db.ReconcileIncidents([]incident.Incident{
		mkIncident(1000, 1600, "1", "2"),
		mkIncident(5000, 5300, "3"),
	})
	if len(ids) != 2 || ids[0] != "i1" || ids[1] != "i2" {
		t.Fatalf("ids = %v, want [i1 i2]", ids)
	}
	e, err := db.Incident("i1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != IncidentOpen || e.Incident.ID != "i1" {
		t.Fatalf("entry = %+v", e)
	}

	// Re-running with the identical member set reuses the ID and keeps
	// lifecycle state.
	if err := db.SetIncidentStatus("i1", IncidentExtracted, "done"); err != nil {
		t.Fatal(err)
	}
	again := mkIncident(1000, 1900, "2", "1") // refreshed interval, same members
	ids = db.ReconcileIncidents([]incident.Incident{again})
	if ids[0] != "i1" {
		t.Fatalf("identical member set got new ID %q", ids[0])
	}
	e, _ = db.Incident("i1")
	if e.Status != IncidentExtracted || e.Incident.Interval.End != 1900 {
		t.Fatalf("reconcile lost state or update: %+v", e)
	}

	// A superset of an open incident's members absorbs it.
	ids = db.ReconcileIncidents([]incident.Incident{mkIncident(4800, 5600, "3", "4")})
	super := ids[0]
	e, _ = db.Incident("i2")
	if e.Status != IncidentMerged || !strings.Contains(e.Note, super) {
		t.Fatalf("subset incident not merged: %+v", e)
	}
	// The extracted i1 is not eligible for merging.
	ids = db.ReconcileIncidents([]incident.Incident{mkIncident(900, 2000, "1", "2", "9")})
	_ = ids
	e, _ = db.Incident("i1")
	if e.Status != IncidentExtracted {
		t.Fatalf("extracted incident was merged away: %+v", e)
	}
}

func TestIncidentQueryAndCounts(t *testing.T) {
	db := New()
	db.ReconcileIncidents([]incident.Incident{
		mkIncident(1000, 1600, "1"),
		mkIncident(5000, 5300, "2"),
	})
	db.SetIncidentStatus("i2", IncidentExtracted, "")

	all := db.Incidents(flow.Interval{}, "")
	if len(all) != 2 || all[0].Incident.ID != "i1" || all[1].Incident.ID != "i2" {
		t.Fatalf("all = %+v", all)
	}
	got := db.Incidents(flow.Interval{Start: 900, End: 1200}, "")
	if len(got) != 1 || got[0].Incident.ID != "i1" {
		t.Fatalf("interval query = %+v", got)
	}
	got = db.Incidents(flow.Interval{}, IncidentExtracted)
	if len(got) != 1 || got[0].Incident.ID != "i2" {
		t.Fatalf("status query = %+v", got)
	}
	counts := db.IncidentCounts()
	if counts[IncidentOpen] != 1 || counts[IncidentExtracted] != 1 || counts[IncidentMerged] != 0 {
		t.Fatalf("counts = %v", counts)
	}

	if _, err := db.Incident("i404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown incident: %v", err)
	}
	if err := db.SetIncidentStatus("i1", "bogus", ""); err == nil {
		t.Fatal("invalid incident status accepted")
	}
}

func TestIncidentPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alarms.json")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(mkAlarm(1000, detector.KindPortScan))
	db.ReconcileIncidents([]incident.Incident{mkIncident(1000, 1600, "1")})
	db.SetIncidentStatus("i1", IncidentExtracted, "4 itemsets")
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e, err := db2.Incident("i1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != IncidentExtracted || e.Note != "4 itemsets" {
		t.Fatalf("reloaded incident = %+v", e)
	}
	// Incident IDs continue after the reloaded maximum.
	ids := db2.ReconcileIncidents([]incident.Incident{mkIncident(5000, 5300, "2")})
	if ids[0] != "i2" {
		t.Fatalf("next incident ID = %q, want i2", ids[0])
	}
}

// TestOpenLegacyArray keeps version-1 files (a bare JSON array of alarm
// entries) readable.
func TestOpenLegacyArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.json")
	legacy := `[
  {"alarm": {"id": "7", "detector": "test", "interval": {"start": 1000, "end": 1300},
   "kind": "port scan", "score": 1.5}, "status": "validated", "note": "old format"}
]`
	if err := writeFile(path, legacy); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e, err := db.Get("7")
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != StatusValidated || e.Note != "old format" {
		t.Fatalf("legacy entry = %+v", e)
	}
	// IDs continue past the legacy maximum.
	if id := db.Insert(mkAlarm(2000, detector.KindDDoS)); id != "8" {
		t.Fatalf("next id = %q, want 8", id)
	}
	// Saving upgrades the file to the versioned envelope.
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), `"version": 2`) {
		t.Fatalf("save did not upgrade format:\n%s", raw)
	}
}

// TestSaveAtomic pins the crash-safety contract: a failed save never
// leaves a truncated database behind, and temp files do not accumulate.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alarms.json")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(mkAlarm(1000, detector.KindPortScan))
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Make the rename target directory read-only so the save fails
	// partway; the original file must survive byte-identical.
	db.Insert(mkAlarm(2000, detector.KindDDoS))
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := db.Save(); err == nil {
		t.Skip("running as privileged user; cannot simulate write failure")
	}
	os.Chmod(dir, 0o755)
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Fatal("failed save corrupted the database file")
	}

	// A successful save leaves exactly the database file behind.
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "alarms.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("stray files after save: %v", names)
	}
	// And the saved file reloads with both alarms.
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 2 {
		t.Fatalf("reloaded Len = %d, want 2", db2.Len())
	}
}
