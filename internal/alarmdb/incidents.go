package alarmdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/flow"
	"repro/internal/incident"
)

// IncidentStatus tracks a correlated incident through its lifecycle.
type IncidentStatus string

// Incident statuses: open (correlated, awaiting extraction), merged
// (absorbed into a larger incident by a later correlation pass),
// extracted (its one extraction job ran).
const (
	IncidentOpen      IncidentStatus = "open"
	IncidentMerged    IncidentStatus = "merged"
	IncidentExtracted IncidentStatus = "extracted"
)

// IncidentEntry is one stored incident with its lifecycle state.
type IncidentEntry struct {
	Incident incident.Incident `json:"incident"`
	Status   IncidentStatus    `json:"status"`
	// Note is a free-form comment ("merged into i3", extraction summary).
	Note string `json:"note,omitempty"`
}

// ReconcileIncidents stores the incidents of one correlation run and
// returns their IDs in input order. Reconciliation keeps repeated
// correlation idempotent:
//
//   - an incoming incident with exactly the member set of a stored one
//     reuses its ID, refreshing interval/chain/score in place (status
//     and note survive, so an extracted incident stays extracted);
//   - otherwise it is stored open under a fresh "i<N>" ID, and any
//     stored open incident whose members are a strict subset of it is
//     marked merged.
func (db *DB) ReconcileIncidents(incs []incident.Incident) []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Index stored incidents by their canonical member set.
	byMembers := make(map[string]*IncidentEntry, len(db.incidents))
	for _, e := range db.incidents {
		byMembers[memberSetKey(e.Incident.AlarmIDs)] = e
	}
	ids := make([]string, len(incs))
	for i, inc := range incs {
		key := memberSetKey(inc.AlarmIDs)
		if prev, ok := byMembers[key]; ok {
			inc.ID = prev.Incident.ID
			prev.Incident = inc
			ids[i] = inc.ID
			continue
		}
		inc.ID = "i" + strconv.Itoa(db.nextIncID)
		db.nextIncID++
		e := &IncidentEntry{Incident: inc, Status: IncidentOpen}
		db.incidents[inc.ID] = e
		byMembers[key] = e
		ids[i] = inc.ID
		// Absorb stored open incidents this one strictly contains.
		members := make(map[string]bool, len(inc.AlarmIDs))
		for _, id := range inc.AlarmIDs {
			members[id] = true
		}
		for _, prev := range db.incidents {
			if prev == e || prev.Status != IncidentOpen {
				continue
			}
			if len(prev.Incident.AlarmIDs) >= len(inc.AlarmIDs) || !subset(prev.Incident.AlarmIDs, members) {
				continue
			}
			prev.Status = IncidentMerged
			prev.Note = "merged into " + inc.ID
		}
	}
	return ids
}

// memberSetKey canonicalizes a member-alarm ID set.
func memberSetKey(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}

// subset reports whether every id is in members.
func subset(ids []string, members map[string]bool) bool {
	for _, id := range ids {
		if !members[id] {
			return false
		}
	}
	return true
}

// Incident returns a copy of the stored incident with the given ID.
func (db *DB) Incident(id string) (IncidentEntry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.incidents[id]
	if !ok {
		return IncidentEntry{}, fmt.Errorf("%w: incident %q", ErrNotFound, id)
	}
	return *e, nil
}

// Incidents returns stored incidents whose interval overlaps iv
// (zero interval = all), optionally restricted to one status ("" =
// all), ordered by interval start then ID.
func (db *DB) Incidents(iv flow.Interval, status IncidentStatus) []IncidentEntry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []IncidentEntry
	for _, e := range db.sortedIncidentsLocked() {
		if iv != (flow.Interval{}) && !e.Incident.Interval.Overlaps(iv) {
			continue
		}
		if status != "" && e.Status != status {
			continue
		}
		out = append(out, *e)
	}
	return out
}

// SetIncidentStatus updates an incident's lifecycle status and note.
func (db *DB) SetIncidentStatus(id string, status IncidentStatus, note string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.incidents[id]
	if !ok {
		return fmt.Errorf("%w: incident %q", ErrNotFound, id)
	}
	switch status {
	case IncidentOpen, IncidentMerged, IncidentExtracted:
	default:
		return fmt.Errorf("alarmdb: invalid incident status %q", status)
	}
	e.Status = status
	if note != "" {
		e.Note = note
	}
	return nil
}

// IncidentCounts reports how many incidents sit in each status.
func (db *DB) IncidentCounts() map[IncidentStatus]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := map[IncidentStatus]int{}
	for _, e := range db.incidents {
		out[e.Status]++
	}
	return out
}

// sortedIncidentsLocked returns incidents ordered by (interval start,
// numeric ID). Caller holds at least the read lock.
func (db *DB) sortedIncidentsLocked() []*IncidentEntry {
	entries := make([]*IncidentEntry, 0, len(db.incidents))
	for _, e := range db.incidents {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Incident.Interval.Start != b.Incident.Interval.Start {
			return a.Incident.Interval.Start < b.Incident.Interval.Start
		}
		ai, _ := strconv.Atoi(strings.TrimPrefix(a.Incident.ID, "i"))
		bi, _ := strconv.Atoi(strings.TrimPrefix(b.Incident.ID, "i"))
		return ai < bi
	})
	return entries
}
