package alarmdb

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"os"

	"repro/internal/detector"
	"repro/internal/flow"
)

func mkAlarm(start uint32, kind detector.Kind) detector.Alarm {
	return detector.Alarm{
		Detector: "test",
		Interval: flow.Interval{Start: start, End: start + 300},
		Kind:     kind,
		Score:    1.5,
		Meta:     []detector.MetaItem{{Feature: flow.FeatDstPort, Value: 80}},
	}
}

func TestInsertGet(t *testing.T) {
	db := New()
	id := db.Insert(mkAlarm(1000, detector.KindPortScan))
	if id == "" {
		t.Fatal("empty id")
	}
	e, err := db.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if e.Alarm.ID != id || e.Status != StatusNew || e.Alarm.Kind != detector.KindPortScan {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := db.Get("999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestIDsUniqueAndOrdered(t *testing.T) {
	db := New()
	ids := db.InsertAll([]detector.Alarm{
		mkAlarm(3000, detector.KindDDoS),
		mkAlarm(1000, detector.KindPortScan),
		mkAlarm(2000, detector.KindUDPFlood),
	})
	if len(ids) != 3 || ids[0] == ids[1] || ids[1] == ids[2] {
		t.Fatalf("ids = %v", ids)
	}
	all := db.All()
	if len(all) != 3 {
		t.Fatalf("All returned %d", len(all))
	}
	// Ordered by interval start.
	if all[0].Alarm.Interval.Start != 1000 || all[2].Alarm.Interval.Start != 3000 {
		t.Fatalf("order wrong: %v", all)
	}
}

func TestStatusWorkflow(t *testing.T) {
	db := New()
	id := db.Insert(mkAlarm(1000, detector.KindDDoS))
	if err := db.SetStatus(id, StatusAnalyzed, "mined 4 itemsets"); err != nil {
		t.Fatal(err)
	}
	e, _ := db.Get(id)
	if e.Status != StatusAnalyzed || e.Note != "mined 4 itemsets" {
		t.Fatalf("entry = %+v", e)
	}
	if err := db.SetStatus(id, "bogus", ""); err == nil {
		t.Fatal("invalid status accepted")
	}
	if err := db.SetStatus("404", StatusValidated, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
}

func TestQueryByIntervalAndStatus(t *testing.T) {
	db := New()
	id1 := db.Insert(mkAlarm(1000, detector.KindPortScan))
	db.Insert(mkAlarm(2000, detector.KindDDoS))
	db.SetStatus(id1, StatusValidated, "")

	got := db.Query(flow.Interval{Start: 900, End: 1400}, "")
	if len(got) != 1 || got[0].Alarm.ID != id1 {
		t.Fatalf("interval query = %v", got)
	}
	got = db.Query(flow.Interval{Start: 0, End: 10000}, StatusValidated)
	if len(got) != 1 || got[0].Alarm.ID != id1 {
		t.Fatalf("status query = %v", got)
	}
	got = db.Query(flow.Interval{Start: 5000, End: 6000}, "")
	if len(got) != 0 {
		t.Fatalf("empty window returned %v", got)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alarms.json")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	id1 := db.Insert(mkAlarm(1000, detector.KindPortScan))
	db.Insert(mkAlarm(2000, detector.KindUDPFlood))
	db.SetStatus(id1, StatusValidated, "confirmed scan")
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 2 {
		t.Fatalf("reloaded Len = %d", db2.Len())
	}
	e, err := db2.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != StatusValidated || e.Note != "confirmed scan" {
		t.Fatalf("reloaded entry = %+v", e)
	}
	if len(e.Alarm.Meta) != 1 || e.Alarm.Meta[0].Value != 80 {
		t.Fatalf("meta lost in round trip: %+v", e.Alarm.Meta)
	}
	// IDs continue after the reloaded maximum.
	id3 := db2.Insert(mkAlarm(3000, detector.KindDDoS))
	if id3 == id1 || id3 == "2" {
		t.Fatalf("id collision after reload: %q", id3)
	}
}

func TestOpenBadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt file must be rejected")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := db.Insert(mkAlarm(uint32(1000+n*100+j), detector.KindDDoS))
				db.Get(id)
				db.Query(flow.Interval{Start: 0, End: 1 << 30}, "")
			}
		}(i)
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Fatalf("Len = %d, want 800", db.Len())
	}
	// IDs must be unique.
	seen := map[string]bool{}
	for _, e := range db.All() {
		if seen[e.Alarm.ID] {
			t.Fatalf("duplicate id %q", e.Alarm.ID)
		}
		seen[e.Alarm.ID] = true
	}
}
