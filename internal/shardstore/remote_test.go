package shardstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/nfstore"
)

// serveShard mounts one store behind a test HTTP server the way a peer
// rcad node does, returning the peer URL.
func serveShard(t *testing.T, st *nfstore.Store) (*httptest.Server, string) {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/api/v1/shard/", http.StripPrefix("/api/v1/shard", Handler(st)))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, srv.URL
}

// buildPeers creates n local stores filled with recs routed by router
// hash (mirroring PartitionHash) and serves each over HTTP.
func buildPeers(t *testing.T, recs []flow.Record, n int) (locals []*nfstore.Store, servers []*httptest.Server, urls []string) {
	t.Helper()
	router, err := Create(filepath.Join(t.TempDir(), "route"), testBinSec, n, PartitionHash, nfstore.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	if err := router.AddAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := router.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, st := range router.LocalStores() {
		srv, url := serveShard(t, st)
		locals = append(locals, st)
		servers = append(servers, srv)
		urls = append(urls, url)
	}
	return locals, servers, urls
}

// TestRemoteRoundTrip drives the full read surface through the HTTP
// protocol and checks it agrees with the in-process sharded store over
// the same shards.
func TestRemoteRoundTrip(t *testing.T) {
	recs := genRecords(17, 1500, 3*testBinSec)
	_, _, urls := buildPeers(t, recs, 2)
	remote, err := OpenRemote(context.Background(), urls, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	ctx := context.Background()
	iv := flow.Interval{Start: 0, End: 3 * testBinSec}
	filter := mustFilter(t, "proto udp and dst port 53")

	flows, packets, bytes, err := remote.Count(ctx, iv, filter)
	if err != nil {
		t.Fatal(err)
	}
	var wantFlows, wantPackets, wantBytes uint64
	for i := range recs {
		r := &recs[i]
		if r.Proto == flow.ProtoUDP && r.DstPort == 53 {
			wantFlows++
			wantPackets += r.Packets
			wantBytes += r.Bytes
		}
	}
	if flows != wantFlows || packets != wantPackets || bytes != wantBytes {
		t.Fatalf("remote count (%d,%d,%d) != local (%d,%d,%d)",
			flows, packets, bytes, wantFlows, wantPackets, wantBytes)
	}

	var streamed []flow.Record
	if err := remote.Query(ctx, iv, filter, func(r *flow.Record) error {
		streamed = append(streamed, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if uint64(len(streamed)) != wantFlows {
		t.Fatalf("remote query streamed %d records, want %d", len(streamed), wantFlows)
	}

	sums, err := remote.Summaries(ctx, iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("remote summaries empty")
	}
	var sumFlows uint64
	for _, s := range sums {
		sumFlows += s.Flows
	}
	if sumFlows != uint64(len(recs)) {
		t.Fatalf("summaries cover %d flows, want %d", sumFlows, len(recs))
	}

	top, err := remote.TopN(ctx, iv, nil, flow.FeatDstPort, nfstore.ByFlows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("topn returned %d rows", len(top))
	}

	bins, err := remote.Bins()
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("remote bins empty")
	}
	span, ok, err := remote.Span()
	if err != nil || !ok {
		t.Fatalf("remote span: %v ok=%v", err, ok)
	}
	if span.Start != bins[0] {
		t.Fatalf("span %v does not start at first bin %d", span, bins[0])
	}

	formats, err := remote.SegmentFormats()
	if err != nil {
		t.Fatal(err)
	}
	if formats[nfstore.FormatV2] == 0 {
		t.Fatalf("segment formats = %v", formats)
	}

	remote.ResetStats()
	if _, _, _, err := remote.Count(ctx, iv, nil); err != nil {
		t.Fatal(err)
	}
	if st := remote.Stats(); st.SegmentsConsidered == 0 {
		t.Fatalf("remote stats after count: %+v", st)
	}
}

// TestRemoteQueryParity compares the HTTP-streamed query byte for byte
// with the in-process sharded read over the same shard directories.
func TestRemoteQueryParity(t *testing.T) {
	recs := genRecords(23, 2000, 3*testBinSec)
	locals, _, urls := buildPeers(t, recs, 3)
	remote, err := OpenRemote(context.Background(), urls, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	m := Manifest{Version: manifestVersion, Partition: PartitionHash, Shards: 3, BinSeconds: testBinSec}
	shards := make([]Shard, len(locals))
	for i, st := range locals {
		shards[i] = localShard{name: shardDirName(i), s: st}
	}
	inproc, err := NewFromShards(m, shards, locals)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	iv := flow.Interval{Start: 100, End: 2*testBinSec + 50}
	for _, expr := range []string{"", "proto tcp", "dst port 443 and packets > 100"} {
		filter := mustFilter(t, expr)
		want, err := inproc.Records(ctx, iv, filter)
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.Records(ctx, iv, filter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("filter %q: remote stream (%d records) != in-process (%d records)",
				expr, len(got), len(want))
		}
	}
}

// TestRemoteEarlyStop stops a streaming query from the callback: the
// client must end cleanly without draining the peer's whole stream.
func TestRemoteEarlyStop(t *testing.T) {
	recs := genRecords(29, 3000, 2*testBinSec)
	_, _, urls := buildPeers(t, recs, 2)
	remote, err := OpenRemote(context.Background(), urls, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	seen := 0
	err = remote.Query(context.Background(), flow.Interval{Start: 0, End: 2 * testBinSec}, nil,
		func(*flow.Record) error {
			seen++
			if seen == 5 {
				return nfstore.ErrStopIteration
			}
			return nil
		})
	if err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if seen != 5 {
		t.Fatalf("callback ran %d times, want 5", seen)
	}
}

// TestRemotePartialFailure kills one peer and verifies every read fails
// loudly with a ShardError naming it — and that degraded mode instead
// returns the survivors' partial result.
func TestRemotePartialFailure(t *testing.T) {
	recs := genRecords(31, 1000, 2*testBinSec)
	locals, servers, urls := buildPeers(t, recs, 2)
	remote, err := OpenRemote(context.Background(), urls, RemoteOptions{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctx := context.Background()
	iv := flow.Interval{Start: 0, End: 2 * testBinSec}

	servers[1].Close() // the peer dies after the cluster formed

	_, _, _, err = remote.Count(ctx, iv, nil)
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("count after peer death: %v (want ShardError)", err)
	}
	if se.Shard != urls[1] {
		t.Fatalf("ShardError names %q, want dead peer %q", se.Shard, urls[1])
	}

	err = remote.Query(ctx, iv, nil, func(*flow.Record) error { return nil })
	if !errors.As(err, &se) {
		t.Fatalf("query after peer death: %v (want ShardError)", err)
	}
	if se.Shard != urls[1] {
		t.Fatalf("query ShardError names %q, want %q", se.Shard, urls[1])
	}

	// Degraded: explicit opt-in to partial results from the survivor.
	remote.SetDegraded(true)
	flows, _, _, err := remote.Count(ctx, iv, nil)
	if err != nil {
		t.Fatalf("degraded count: %v", err)
	}
	wf, _, _, err := locals[0].Count(ctx, iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != wf {
		t.Fatalf("degraded count = %d, want survivor's %d", flows, wf)
	}
	got := 0
	if err := remote.Query(ctx, iv, nil, func(*flow.Record) error { got++; return nil }); err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if uint64(got) != wf {
		t.Fatalf("degraded query streamed %d records, want survivor's %d", got, wf)
	}

	// All shards dead must still fail, even degraded.
	servers[0].Close()
	if _, _, _, err := remote.Count(ctx, iv, nil); err == nil {
		t.Fatal("degraded count with every shard dead returned nil error")
	}
}

// TestRemoteErrorFrame verifies the client surfaces a peer's mid-stream
// error frame as an error, and that a stream cut without a terminator is
// a loud truncation error, never silent data loss.
func TestRemoteErrorFrame(t *testing.T) {
	meta := func(w http.ResponseWriter) {
		json.NewEncoder(w).Encode(map[string]any{"bin_seconds": testBinSec, "write_format": 2})
	}
	mkPeer := func(query http.HandlerFunc) string {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /api/v1/shard/meta", func(w http.ResponseWriter, _ *http.Request) { meta(w) })
		mux.HandleFunc("GET /api/v1/shard/query", query)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv.URL
	}

	// One good frame, then an error frame.
	errPeer := mkPeer(func(w http.ResponseWriter, _ *http.Request) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 1)
		w.Write(hdr[:])
		w.Write(make([]byte, nfstore.RecordSize))
		binary.LittleEndian.PutUint32(hdr[:], 0xFFFFFFFF)
		w.Write(hdr[:])
		msg := []byte("segment exploded")
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
		w.Write(hdr[:])
		w.Write(msg)
	})
	r, err := NewRemoteShard(context.Background(), errPeer, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = r.Query(context.Background(), flow.Interval{Start: 0, End: testBinSec}, nil,
		func(*flow.Record) error { n++; return nil })
	if err == nil || !strings.Contains(err.Error(), "segment exploded") {
		t.Fatalf("error frame surfaced as %v", err)
	}
	if n != 1 {
		t.Fatalf("callback saw %d records before the error frame, want 1", n)
	}

	// A stream that just ends (no terminator) is truncation.
	truncPeer := mkPeer(func(w http.ResponseWriter, _ *http.Request) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 2)
		w.Write(hdr[:])
		w.Write(make([]byte, 2*nfstore.RecordSize))
		// no terminator frame
	})
	r2, err := NewRemoteShard(context.Background(), truncPeer, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = r2.Query(context.Background(), flow.Interval{Start: 0, End: testBinSec}, nil,
		func(*flow.Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream surfaced as %v", err)
	}
}

// TestRemoteRejectsWrites pins the read-only contract of a peer-backed
// store.
func TestRemoteRejectsWrites(t *testing.T) {
	recs := genRecords(37, 100, testBinSec)
	_, _, urls := buildPeers(t, recs, 2)
	remote, err := OpenRemote(context.Background(), urls, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	r := recs[0]
	if err := remote.Add(&r); err == nil {
		t.Fatal("Add on a remote store must fail")
	}
	if err := remote.SetSegmentFormat(nfstore.FormatV1); err == nil {
		t.Fatal("SetSegmentFormat on a remote store must fail")
	}
}

// TestOpenRemoteValidation pins constructor failure modes: no peers,
// a dead peer, inconsistent bin widths.
func TestOpenRemoteValidation(t *testing.T) {
	if _, err := OpenRemote(context.Background(), nil, RemoteOptions{}); err == nil {
		t.Fatal("no peers must fail")
	}
	if _, err := OpenRemote(context.Background(), []string{"127.0.0.1:1"},
		RemoteOptions{Retries: -1, Timeout: 200 * 1e6}); err == nil {
		t.Fatal("dead peer must fail")
	}

	recs := genRecords(41, 100, testBinSec)
	_, _, urls := buildPeers(t, recs, 1)
	other, err := nfstore.CreateFormat(filepath.Join(t.TempDir(), "odd"), 600, nfstore.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { other.Close() })
	if err := other.Add(&recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := other.Flush(); err != nil {
		t.Fatal(err)
	}
	_, oddURL := serveShard(t, other)
	if _, err := OpenRemote(context.Background(), append(urls, oddURL), RemoteOptions{}); err == nil {
		t.Fatal("mismatched bin widths must fail")
	}
}
