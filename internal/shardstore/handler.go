package shardstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// The shard wire protocol: a small HTTP surface a peer rcad node mounts
// under /api/v1/shard/ so a coordinator can treat the peer's store as
// one shard. Aggregations (count, summaries, topn, stats) are plain
// JSON; /query streams records as length-framed binary so a result of
// millions of rows costs no JSON machinery:
//
//	frame := u32le count | count×42-byte v1-encoded records
//	count == 0          → clean end of stream
//	count == 0xFFFFFFFF → u32le length + UTF-8 error message, stream dead
//
// The explicit terminator and error frames are what make partial
// failure loud: a connection that dies mid-stream is distinguishable
// from a finished one, so a coordinator can never mistake a truncated
// stream for a complete result.

// queryErrFrame marks an error frame in the /query stream.
const queryErrFrame = 0xFFFFFFFF

// Handler serves eng's shard surface. Mount it stripped of its prefix:
//
//	mux.Handle("/api/v1/shard/", http.StripPrefix("/api/v1/shard", shardstore.Handler(store)))
func Handler(eng nfstore.Engine) http.Handler {
	h := &shardHandler{eng: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", h.meta)
	mux.HandleFunc("GET /bins", h.bins)
	mux.HandleFunc("GET /span", h.span)
	mux.HandleFunc("GET /query", h.query)
	mux.HandleFunc("GET /count", h.count)
	mux.HandleFunc("GET /summaries", h.summaries)
	mux.HandleFunc("GET /topn", h.topn)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("POST /stats/reset", h.statsReset)
	return mux
}

type shardHandler struct {
	eng nfstore.Engine
}

// Wire shapes shared by handler and client.

type metaWire struct {
	BinSeconds  uint32 `json:"bin_seconds"`
	WriteFormat uint16 `json:"write_format"`
}

type binsWire struct {
	Bins []uint32 `json:"bins"`
}

type spanWire struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
	OK    bool   `json:"ok"`
}

type countWire struct {
	Flows   uint64 `json:"flows"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
}

type summaryWire struct {
	BinStart uint32 `json:"bin_start"`
	BinEnd   uint32 `json:"bin_end"`
	Flows    uint64 `json:"flows"`
	Packets  uint64 `json:"packets"`
	Bytes    uint64 `json:"bytes"`
}

type summariesWire struct {
	Summaries []summaryWire `json:"summaries"`
}

type topnWire struct {
	Rows []nfstore.KeyCount `json:"rows"`
}

type statsWire struct {
	Stats          nfstore.Stats  `json:"stats"`
	SegmentFormats map[uint16]int `json:"segment_formats"`
	WriteFormat    uint16         `json:"write_format"`
}

type errWire struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errWire{Error: err.Error()})
}

// parseQueryArgs reads the span and filter every read endpoint takes.
func parseQueryArgs(r *http.Request) (flow.Interval, *nffilter.Filter, error) {
	q := r.URL.Query()
	start, err := strconv.ParseUint(q.Get("start"), 10, 32)
	if err != nil {
		return flow.Interval{}, nil, fmt.Errorf("bad start %q", q.Get("start"))
	}
	end, err := strconv.ParseUint(q.Get("end"), 10, 32)
	if err != nil {
		return flow.Interval{}, nil, fmt.Errorf("bad end %q", q.Get("end"))
	}
	iv := flow.Interval{Start: uint32(start), End: uint32(end)}
	var filter *nffilter.Filter
	if src := q.Get("filter"); src != "" {
		filter, err = nffilter.Parse(src)
		if err != nil {
			return flow.Interval{}, nil, fmt.Errorf("bad filter: %v", err)
		}
	}
	return iv, filter, nil
}

func (h *shardHandler) meta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metaWire{
		BinSeconds:  h.eng.BinSeconds(),
		WriteFormat: h.eng.SegmentFormat(),
	})
}

func (h *shardHandler) bins(w http.ResponseWriter, r *http.Request) {
	bins, err := h.eng.Bins()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, binsWire{Bins: bins})
}

func (h *shardHandler) span(w http.ResponseWriter, r *http.Request) {
	iv, ok, err := h.eng.Span()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, spanWire{Start: iv.Start, End: iv.End, OK: ok})
}

// query streams matching records in the framed binary protocol. Errors
// before the first frame are plain HTTP errors; errors mid-stream become
// an error frame (the status line is long gone by then).
func (h *shardHandler) query(w http.ResponseWriter, r *http.Request) {
	iv, filter, err := parseQueryArgs(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	const frameRecords = 512
	frame := make([]byte, 4, 4+frameRecords*nfstore.RecordSize)
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		binary.LittleEndian.PutUint32(frame[:4], uint32(n))
		if _, err := w.Write(frame); err != nil {
			return err
		}
		frame = frame[:4]
		n = 0
		return nil
	}
	var buf [nfstore.RecordSize]byte
	qerr := h.eng.Query(r.Context(), iv, filter, func(rec *flow.Record) error {
		nfstore.EncodeRecord(buf[:], rec)
		frame = append(frame, buf[:]...)
		if n++; n == frameRecords {
			return flush()
		}
		return nil
	})
	if qerr == nil {
		qerr = flush()
	}
	if qerr != nil {
		// Mid-stream failure: emit an error frame so the client sees a
		// named error, never a silently short result. If even that write
		// fails the connection drops, which the client also treats as an
		// error (no terminator seen).
		msg := []byte(qerr.Error())
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:4], queryErrFrame)
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(msg)))
		_, _ = w.Write(hdr[:])
		_, _ = w.Write(msg)
		return
	}
	var term [4]byte
	_, _ = w.Write(term[:]) // count 0: clean end of stream
}

func (h *shardHandler) count(w http.ResponseWriter, r *http.Request) {
	iv, filter, err := parseQueryArgs(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	flows, packets, bytes, err := h.eng.Count(r.Context(), iv, filter)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, countWire{Flows: flows, Packets: packets, Bytes: bytes})
}

func (h *shardHandler) summaries(w http.ResponseWriter, r *http.Request) {
	iv, filter, err := parseQueryArgs(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sums, err := h.eng.Summaries(r.Context(), iv, filter)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := summariesWire{Summaries: make([]summaryWire, len(sums))}
	for i, s := range sums {
		out.Summaries[i] = summaryWire{
			BinStart: s.Bin.Start, BinEnd: s.Bin.End,
			Flows: s.Flows, Packets: s.Packets, Bytes: s.Bytes,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *shardHandler) topn(w http.ResponseWriter, r *http.Request) {
	iv, filter, err := parseQueryArgs(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	feat, err := strconv.ParseUint(q.Get("feature"), 10, 8)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad feature %q", q.Get("feature")))
		return
	}
	weight, err := strconv.Atoi(q.Get("weight"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad weight %q", q.Get("weight")))
		return
	}
	k := 0
	if s := q.Get("k"); s != "" {
		if k, err = strconv.Atoi(s); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", s))
			return
		}
	}
	rows, err := h.eng.TopN(r.Context(), iv, filter, flow.Feature(feat), nfstore.Weight(weight), k)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, topnWire{Rows: rows})
}

func (h *shardHandler) stats(w http.ResponseWriter, r *http.Request) {
	formats, err := h.eng.SegmentFormats()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, statsWire{
		Stats:          h.eng.Stats(),
		SegmentFormats: formats,
		WriteFormat:    h.eng.SegmentFormat(),
	})
}

func (h *shardHandler) statsReset(w http.ResponseWriter, r *http.Request) {
	h.eng.ResetStats()
	w.WriteHeader(http.StatusNoContent)
}
