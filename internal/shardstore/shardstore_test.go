package shardstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

const testBinSec = 300

// genRecords builds a deterministic mixed trace: several routers (so
// hash partitioning spreads), several protocols and ports (so filters
// select real subsets), spread over span seconds.
func genRecords(seed int64, n, span int) []flow.Record {
	rng := rand.New(rand.NewSource(seed))
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}
	ports := []uint16{22, 53, 80, 443, 8080}
	recs := make([]flow.Record, n)
	for i := range recs {
		r := flow.Record{
			Start:   uint32(rng.Intn(span)),
			Dur:     uint32(rng.Intn(5000)),
			SrcIP:   flow.IPFromOctets(10, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(50))),
			DstIP:   flow.IPFromOctets(192, 0, 2, byte(rng.Intn(30))),
			SrcPort: ports[rng.Intn(len(ports))],
			DstPort: ports[rng.Intn(len(ports))],
			Proto:   protos[rng.Intn(len(protos))],
			Router:  uint16(rng.Intn(16)),
			Packets: uint64(1 + rng.Intn(500)),
		}
		r.Bytes = r.Packets * uint64(40+rng.Intn(1000))
		recs[i] = r
	}
	return recs
}

// buildPair fills a single store and a sharded store with the same
// records and returns both (closed via t.Cleanup).
func buildPair(t *testing.T, recs []flow.Record, shards int, partition string, format uint16) (*nfstore.Store, *ShardedStore) {
	t.Helper()
	single, err := nfstore.CreateFormat(filepath.Join(t.TempDir(), "single"), testBinSec, format)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	sharded, err := Create(filepath.Join(t.TempDir(), "sharded"), testBinSec, shards, partition, format)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	if err := single.AddAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := sharded.AddAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := single.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Flush(); err != nil {
		t.Fatal(err)
	}
	return single, sharded
}

func mustFilter(t *testing.T, expr string) *nffilter.Filter {
	t.Helper()
	if expr == "" {
		return nil
	}
	f, err := nffilter.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return f
}

// recordLess is a total order over records for multiset comparison.
func recordLess(a, b *flow.Record) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	if a.Router != b.Router {
		return a.Router < b.Router
	}
	if a.Packets != b.Packets {
		return a.Packets < b.Packets
	}
	return a.Bytes < b.Bytes
}

func sortedCopy(rs []flow.Record) []flow.Record {
	out := append([]flow.Record(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return recordLess(&out[i], &out[j]) })
	return out
}

// TestShardedParity is the property test of the scatter-gather engine:
// across shard counts, partition schemes, segment formats, filters and
// spans, every read of the sharded store must agree with the single
// merged store — Query exactly (byte-identical order for time
// partitioning, multiset-identical for hash), Count/Summaries/TopN and
// itemset support exactly in all cases.
func TestShardedParity(t *testing.T) {
	recs := genRecords(7, 4000, 6*testBinSec)
	span := flow.Interval{Start: 0, End: 6 * testBinSec}
	filters := []string{
		"",
		"proto udp",
		"proto tcp and dst port 80",
		"src net 10.0.0.0/8 and packets > 250",
		"dst port 53 or dst port 443",
	}
	spans := []flow.Interval{
		span,
		{Start: testBinSec, End: 2 * testBinSec},
		{Start: 150, End: 450},
		{Start: 2*testBinSec + 10, End: 5 * testBinSec},
		{Start: 5000, End: 5000}, // empty
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 7} {
		for _, partition := range []string{PartitionTime, PartitionHash} {
			for _, format := range []uint16{nfstore.FormatV1, nfstore.FormatV2} {
				t.Run(fmt.Sprintf("s%d-%s-v%d", shards, partition, format), func(t *testing.T) {
					single, sharded := buildPair(t, recs, shards, partition, format)
					// Force the parallel cell merge regardless of host core
					// count — the serial path is covered by the v1 runs.
					if format == nfstore.FormatV2 {
						sharded.SetParallelism(4)
					}
					for _, expr := range filters {
						filter := mustFilter(t, expr)
						for _, iv := range spans {
							label := fmt.Sprintf("filter %q span %v", expr, iv)
							wantRecs, err := single.Records(ctx, iv, filter)
							if err != nil {
								t.Fatal(err)
							}
							gotRecs, err := sharded.Records(ctx, iv, filter)
							if err != nil {
								t.Fatal(err)
							}
							if partition == PartitionTime {
								// Whole bins land on one shard: the cell merge
								// reproduces the single store's order exactly.
								if !reflect.DeepEqual(gotRecs, wantRecs) {
									t.Fatalf("%s: time-partitioned query order diverged (%d vs %d records)",
										label, len(gotRecs), len(wantRecs))
								}
							} else if !reflect.DeepEqual(sortedCopy(gotRecs), sortedCopy(wantRecs)) {
								t.Fatalf("%s: hash-partitioned query multiset diverged (%d vs %d records)",
									label, len(gotRecs), len(wantRecs))
							}

							wf, wp, wb, err := single.Count(ctx, iv, filter)
							if err != nil {
								t.Fatal(err)
							}
							gf, gp, gb, err := sharded.Count(ctx, iv, filter)
							if err != nil {
								t.Fatal(err)
							}
							if gf != wf || gp != wp || gb != wb {
								t.Fatalf("%s: count (%d,%d,%d) != (%d,%d,%d)", label, gf, gp, gb, wf, wp, wb)
							}

							wantSums, err := single.Summaries(ctx, iv, filter)
							if err != nil {
								t.Fatal(err)
							}
							gotSums, err := sharded.Summaries(ctx, iv, filter)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(gotSums, wantSums) {
								t.Fatalf("%s: summaries diverged:\n got %+v\nwant %+v", label, gotSums, wantSums)
							}

							wantTop, err := single.TopN(ctx, iv, filter, flow.FeatSrcIP, nfstore.ByFlows, 5)
							if err != nil {
								t.Fatal(err)
							}
							gotTop, err := sharded.TopN(ctx, iv, filter, flow.FeatSrcIP, nfstore.ByFlows, 5)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(gotTop, wantTop) {
								t.Fatalf("%s: topn diverged:\n got %+v\nwant %+v", label, gotTop, wantTop)
							}

							// Itemset support over the gathered records must be
							// identical — the miner sits right on this path.
							sets := []itemset.Set{
								itemset.NewSet(itemset.NewItem(flow.FeatDstPort, 80)),
								itemset.NewSet(itemset.NewItem(flow.FeatProto, uint32(flow.ProtoUDP))),
								itemset.NewSet(itemset.NewItem(flow.FeatDstPort, 53),
									itemset.NewItem(flow.FeatProto, uint32(flow.ProtoUDP))),
							}
							wantSup := itemset.FromRecords(wantRecs).SupportAll(sets, 2)
							gotSup := itemset.FromRecords(gotRecs).SupportAll(sets, 2)
							if !reflect.DeepEqual(gotSup, wantSup) {
								t.Fatalf("%s: SupportAll diverged:\n got %+v\nwant %+v", label, gotSup, wantSup)
							}
						}
					}

					// Whole-store geometry.
					wantBins, err := single.Bins()
					if err != nil {
						t.Fatal(err)
					}
					gotBins, err := sharded.Bins()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotBins, wantBins) {
						t.Fatalf("bins %v != %v", gotBins, wantBins)
					}
					wantSpan, wantOK, err := single.Span()
					if err != nil {
						t.Fatal(err)
					}
					gotSpan, gotOK, err := sharded.Span()
					if err != nil {
						t.Fatal(err)
					}
					if gotSpan != wantSpan || gotOK != wantOK {
						t.Fatalf("span %v/%v != %v/%v", gotSpan, gotOK, wantSpan, wantOK)
					}
				})
			}
		}
	}
}

// TestShardedOpenRoundTrip closes and reopens a sharded store from its
// manifest and checks the data survived, plus manifest validation.
func TestShardedOpenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	recs := genRecords(11, 500, 3*testBinSec)
	sh, err := Create(dir, testBinSec, 3, PartitionHash, nfstore.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AddAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	if !IsShardedDir(dir) {
		t.Fatal("IsShardedDir = false for a sharded store")
	}
	dirs, err := ShardDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 3 {
		t.Fatalf("ShardDirs = %v, want 3 entries", dirs)
	}

	sh2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if sh2.Manifest().Partition != PartitionHash || sh2.NumShards() != 3 {
		t.Fatalf("manifest round-trip = %+v", sh2.Manifest())
	}
	flows, _, _, err := sh2.Count(context.Background(), flow.Interval{Start: 0, End: ^uint32(0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != uint64(len(recs)) {
		t.Fatalf("reopened store holds %d flows, want %d", flows, len(recs))
	}
}

// TestShardedQueryEarlyStop verifies ErrStopIteration propagates through
// the cell merge: the query ends cleanly after the callback stops.
func TestShardedQueryEarlyStop(t *testing.T) {
	recs := genRecords(3, 1000, 4*testBinSec)
	_, sharded := buildPair(t, recs, 4, PartitionHash, nfstore.FormatV2)
	sharded.SetParallelism(4) // exercise the parallel merge path
	seen := 0
	err := sharded.Query(context.Background(), flow.Interval{Start: 0, End: 4 * testBinSec}, nil,
		func(*flow.Record) error {
			seen++
			if seen == 7 {
				return nfstore.ErrStopIteration
			}
			return nil
		})
	if err != nil {
		t.Fatalf("early stop surfaced as error: %v", err)
	}
	if seen != 7 {
		t.Fatalf("callback ran %d times, want 7", seen)
	}
}

// TestShardedQueryCallbackError verifies a real callback error comes
// back verbatim, not wrapped in a ShardError.
func TestShardedQueryCallbackError(t *testing.T) {
	recs := genRecords(5, 200, 2*testBinSec)
	_, sharded := buildPair(t, recs, 2, PartitionTime, nfstore.FormatV1)
	boom := errors.New("boom")
	err := sharded.Query(context.Background(), flow.Interval{Start: 0, End: 2 * testBinSec}, nil,
		func(*flow.Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var se *ShardError
	if errors.As(err, &se) {
		t.Fatalf("callback error wrapped in ShardError: %v", err)
	}
}

// TestShardFor pins the routing invariants: hash ignores time, time
// ignores router, and both are stable for identical inputs.
func TestShardFor(t *testing.T) {
	sh, err := Create(filepath.Join(t.TempDir(), "s"), testBinSec, 4, PartitionHash, nfstore.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	a := flow.Record{Router: 7, Start: 0, Packets: 1, Bytes: 1, SrcIP: 1, DstIP: 2}
	b := a
	b.Start = 5 * testBinSec
	if sh.shardFor(&a) != sh.shardFor(&b) {
		t.Error("hash partitioning must ignore time")
	}
	c := a
	c.Router = 8
	// Not a strict requirement that 7 and 8 differ, but identical inputs
	// must be stable.
	if sh.shardFor(&a) != sh.shardFor(&a) {
		t.Error("hash routing not deterministic")
	}
	_ = c

	tsh, err := Create(filepath.Join(t.TempDir(), "t"), testBinSec, 4, PartitionTime, nfstore.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	defer tsh.Close()
	for bin := 0; bin < 8; bin++ {
		r := flow.Record{Start: uint32(bin * testBinSec), Router: uint16(bin), Packets: 1, Bytes: 1, SrcIP: 1, DstIP: 2}
		if got, want := tsh.shardFor(&r), bin%4; got != want {
			t.Errorf("bin %d routed to shard %d, want %d", bin, got, want)
		}
		r2 := r
		r2.Router = 99
		if tsh.shardFor(&r2) != tsh.shardFor(&r) {
			t.Error("time partitioning must ignore router")
		}
	}
}

// TestShardedStats checks the stats rollup sums the shards and the
// per-shard breakdown names every shard.
func TestShardedStats(t *testing.T) {
	recs := genRecords(9, 800, 2*testBinSec)
	_, sharded := buildPair(t, recs, 3, PartitionHash, nfstore.FormatV2)
	ctx := context.Background()
	if _, _, _, err := sharded.Count(ctx, flow.Interval{Start: 0, End: 2 * testBinSec}, nil); err != nil {
		t.Fatal(err)
	}
	agg := sharded.Stats()
	var sum nfstore.Stats
	per := sharded.ShardStats()
	if len(per) != 3 {
		t.Fatalf("ShardStats returned %d rows, want 3", len(per))
	}
	names := map[string]bool{}
	for _, s := range per {
		if s.Err != "" {
			t.Fatalf("shard %s stats error: %s", s.Shard, s.Err)
		}
		names[s.Shard] = true
		sum.SegmentsConsidered += s.Stats.SegmentsConsidered
		sum.SegmentsScanned += s.Stats.SegmentsScanned
		sum.RecordsScanned += s.Stats.RecordsScanned
	}
	for i := 0; i < 3; i++ {
		if !names[shardDirName(i)] {
			t.Errorf("ShardStats missing %s", shardDirName(i))
		}
	}
	if agg.SegmentsConsidered != sum.SegmentsConsidered || agg.RecordsScanned != sum.RecordsScanned {
		t.Fatalf("rollup %+v != shard sum %+v", agg, sum)
	}
	sharded.ResetStats()
	if s := sharded.Stats(); s.SegmentsConsidered != 0 || s.RecordsScanned != 0 {
		t.Fatalf("stats after reset: %+v", s)
	}
}

// TestMigrateSharded migrates every shard of a sharded store between
// formats through the per-shard stores and verifies parity afterwards.
func TestMigrateSharded(t *testing.T) {
	recs := genRecords(21, 1200, 4*testBinSec)
	single, sharded := buildPair(t, recs, 4, PartitionHash, nfstore.FormatV1)
	ctx := context.Background()
	for _, st := range sharded.LocalStores() {
		if _, err := st.MigrateWorkers(ctx, nfstore.FormatV2, 2); err != nil {
			t.Fatal(err)
		}
	}
	formats, err := sharded.SegmentFormats()
	if err != nil {
		t.Fatal(err)
	}
	if formats[nfstore.FormatV1] != 0 || formats[nfstore.FormatV2] == 0 {
		t.Fatalf("formats after migrate: %v", formats)
	}
	iv := flow.Interval{Start: 0, End: 4 * testBinSec}
	wf, wp, wb, err := single.Count(ctx, iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	gf, gp, gb, err := sharded.Count(ctx, iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gf != wf || gp != wp || gb != wb {
		t.Fatalf("post-migrate count (%d,%d,%d) != (%d,%d,%d)", gf, gp, gb, wf, wp, wb)
	}
}
