package shardstore

import (
	"context"
	"errors"
	"sort"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// Query planning and the scatter-gather merge.
//
// A query shatters into (bin, shard) cells: one cell per measurement bin
// a shard actually holds. Cells execute on a bounded worker pool with
// the same lazy-start ordered-drain shape as the single store's
// execParallel — workers launch at most k ahead of the merge cursor and
// start order equals drain order, so the pool can never deadlock — and
// the merger emits cells in (bin asc, shard asc) order. Under time
// partitioning each bin is one cell, making the merged stream
// byte-identical to a single store's bin-ordered scan; under hash
// partitioning records within a bin arrive grouped by shard (still
// deterministic, and exact for every aggregation).
//
// Each cell's interval is its bin clipped to the query interval, so a
// shard-side scan touches exactly one segment, with the shard's own
// zone-map pruning, block pruning and vectorized filtering intact.

// queryBatchSize mirrors the single-store merge batch.
const queryBatchSize = 512

// cell is one (bin, shard) unit of scatter-gather work.
type cell struct {
	shard int
	iv    flow.Interval
}

// planCells lists the cells overlapping iv, in merge order. In degraded
// mode a shard that cannot even list its bins simply contributes no
// cells (fanShards ate its error); otherwise planning fails with its
// ShardError.
func (st *ShardedStore) planCells(ctx context.Context, iv flow.Interval) ([]cell, error) {
	per := make([][]uint32, len(st.shards))
	_, err := st.fanShards(ctx, func(_ context.Context, i int, sh Shard) error {
		bins, err := sh.Bins()
		per[i] = bins
		return err
	})
	if err != nil {
		return nil, err
	}
	binSec := st.manifest.BinSeconds
	type binShard struct {
		bin   uint32
		shard int
	}
	var pairs []binShard
	for i, bins := range per {
		for _, bin := range bins {
			seg := flow.Interval{Start: bin, End: bin + binSec}
			if seg.Overlaps(iv) {
				pairs = append(pairs, binShard{bin, i})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].bin != pairs[b].bin {
			return pairs[a].bin < pairs[b].bin
		}
		return pairs[a].shard < pairs[b].shard
	})
	cells := make([]cell, len(pairs))
	for i, p := range pairs {
		civ := flow.Interval{Start: max(p.bin, iv.Start), End: min(p.bin+binSec, iv.End)}
		cells[i] = cell{shard: p.shard, iv: civ}
	}
	return cells, nil
}

// Query streams every matching record to fn in (bin, shard) merge
// order, with the nfstore.Engine contract: the *flow.Record is reused,
// ErrStopIteration from fn ends the scan cleanly, cancellation aborts
// promptly. A failing shard aborts with a ShardError naming it — or,
// in degraded mode, drops out of the merge (its surviving peers' rows
// still stream; rows are never silently truncated outside that explicit
// opt-in).
func (st *ShardedStore) Query(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cells, err := st.planCells(ctx, iv)
	if err != nil {
		return err
	}
	err = st.execCells(ctx, cells, filter, fn, st.degraded.Load())
	if errors.Is(err, nfstore.ErrStopIteration) {
		return nil
	}
	return err
}

// cellResult carries one cell worker's output: batches of matched
// records, then (after the channel closes) the scan error, if any.
type cellResult struct {
	batches chan []flow.Record
	err     error
}

// execCells runs the planned cells with at most fanout() in flight and
// merges their streams in plan order.
func (st *ShardedStore) execCells(ctx context.Context, cells []cell, filter *nffilter.Filter, fn func(*flow.Record) error, degraded bool) error {
	if len(cells) == 0 {
		return nil
	}
	k := min(st.fanout(), len(cells))
	if k <= 1 {
		for _, c := range cells {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := st.shards[c.shard].Query(ctx, c.iv, filter, fn)
			if err != nil {
				if degraded && !callbackError(err, ctx) {
					continue
				}
				return st.cellError(c, err, ctx)
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*cellResult, len(cells))
	start := func(i int) {
		res := &cellResult{batches: make(chan []flow.Record, 4)}
		results[i] = res
		go func(c cell) {
			defer close(res.batches)
			res.err = st.scanCellBatches(ctx, c, filter, res.batches)
		}(cells[i])
	}
	next := 0
	for ; next < len(cells) && next < k; next++ {
		start(next)
	}

	// Merge in plan (= bin, shard) order; each finished cell admits the
	// next worker, keeping exactly k cells in flight. The record passed
	// to fn is reused, per the Query contract.
	var rec flow.Record
	for j := range cells {
		res := results[j]
		for batch := range res.batches {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := range batch {
				rec = batch[i]
				if err := fn(&rec); err != nil {
					return err
				}
			}
		}
		if res.err != nil {
			if !degraded || callbackError(res.err, ctx) {
				return st.cellError(cells[j], res.err, ctx)
			}
			// Degraded: this cell's shard failed mid-stream; its rows so
			// far stay, the rest of the merge continues without it.
		}
		if next < len(cells) {
			start(next)
			next++
		}
	}
	return nil
}

// callbackError reports whether a cell error originated in the merge
// callback (the errQueryStop marker shards wrap those in) or the
// caller's context rather than in the shard itself — those must
// propagate even in degraded mode.
func callbackError(err error, ctx context.Context) bool {
	var stop errQueryStop
	return errors.As(err, &stop) ||
		errors.Is(err, nfstore.ErrStopIteration) ||
		(ctx.Err() != nil && errors.Is(err, ctx.Err()))
}

// cellError attributes a cell failure to its shard unless it is really
// the caller's (a callback error — unwrapped back to the verbatim error
// — or the caller's own cancellation).
func (st *ShardedStore) cellError(c cell, err error, ctx context.Context) error {
	var stop errQueryStop
	if errors.As(err, &stop) {
		return stop.err
	}
	if callbackError(err, ctx) {
		return err
	}
	return &ShardError{Shard: st.shards[c.shard].Name(), Err: err}
}

// scanCellBatches queries one cell and sends matched records to out in
// batches of queryBatchSize.
func (st *ShardedStore) scanCellBatches(ctx context.Context, c cell, filter *nffilter.Filter, out chan<- []flow.Record) error {
	batch := make([]flow.Record, 0, queryBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		select {
		case out <- batch:
		case <-ctx.Done():
			return ctx.Err()
		}
		batch = make([]flow.Record, 0, queryBatchSize)
		return nil
	}
	err := st.shards[c.shard].Query(ctx, c.iv, filter, func(r *flow.Record) error {
		batch = append(batch, *r)
		if len(batch) == queryBatchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}
