// Package shardstore scales the flow store horizontally: a ShardedStore
// partitions records over N child stores (in-process directories or
// remote rcad peers) and answers the full nfstore.Engine query surface by
// scatter-gather — fan out over a bounded worker pool, merge with the
// same deterministic bin-order merge the single-store parallel engine
// uses. Zone-map pruning and aggregation pushdown run per shard, so a
// selective query touches only the shards (and segments, and blocks)
// that can hold matches.
//
// Two partitioning schemes are supported. "time" routes whole bins
// round-robin (bin index mod N): every bin lives in exactly one shard,
// so queries are byte-identical to a single merged store, including
// record order. "hash" routes by router ID (FNV-1a mod N): one hot bin's
// scan work splits across all shards — the scaling shape the clustered
// workload needs — at the cost of record order within a bin following
// (bin, shard) order instead of a single file's order; aggregations are
// still exact.
package shardstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestFile names the shard-map manifest inside a sharded store
// directory. Its presence is what distinguishes a sharded store from a
// plain single-directory store.
const ManifestFile = "shards.json"

// Partitioning schemes.
const (
	// PartitionTime routes records to shard (binIndex mod N): bins stay
	// whole, queries reproduce single-store byte order exactly.
	PartitionTime = "time"
	// PartitionHash routes records to shard (fnv1a(router) mod N): every
	// bin spreads over all shards, so even a single hot bin scans with
	// N-way parallelism.
	PartitionHash = "hash"
)

// manifestVersion is the current shard-map format version.
const manifestVersion = 1

// Manifest is the persisted shard map of a sharded store directory.
type Manifest struct {
	Version    int    `json:"version"`
	Partition  string `json:"partition"`
	Shards     int    `json:"shards"`
	BinSeconds uint32 `json:"bin_seconds"`
}

func validPartition(p string) bool {
	return p == PartitionTime || p == PartitionHash
}

// shardDirName names shard i's child directory.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// IsShardedDir reports whether dir holds a sharded store (a shard-map
// manifest), letting tools route between shardstore.Open and
// nfstore.Open.
func IsShardedDir(dir string) bool {
	fi, err := os.Stat(filepath.Join(dir, ManifestFile))
	return err == nil && fi.Mode().IsRegular()
}

// ShardDirs lists the child store directories of a sharded store in
// shard order, from its manifest.
func ShardDirs(dir string) ([]string, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	dirs := make([]string, m.Shards)
	for i := range dirs {
		dirs[i] = filepath.Join(dir, shardDirName(i))
	}
	return dirs, nil
}

func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestFile)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("shardstore: write manifest: %w", err)
	}
	return nil
}

func readManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("shardstore: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("shardstore: parse manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("shardstore: manifest version %d (want %d)", m.Version, manifestVersion)
	}
	if !validPartition(m.Partition) {
		return Manifest{}, fmt.Errorf("shardstore: unknown partition scheme %q", m.Partition)
	}
	if m.Shards < 1 {
		return Manifest{}, fmt.Errorf("shardstore: manifest shard count %d", m.Shards)
	}
	if m.BinSeconds == 0 {
		return Manifest{}, fmt.Errorf("shardstore: manifest bin_seconds 0")
	}
	return m, nil
}
