package shardstore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// maxAutoFanout caps the automatic shard fan-out, mirroring the
// single-store query engine's worker cap.
const maxAutoFanout = 8

// ShardError names the shard behind a scatter-gather failure, so a dead
// peer surfaces as "shard http://host:port: ..." rather than an anonymous
// transport error.
type ShardError struct {
	Shard string
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shardstore: shard %s: %v", e.Shard, e.Err) }
func (e *ShardError) Unwrap() error { return e.Err }

// Shard is one partition of a sharded store: a local *nfstore.Store or a
// remote rcad peer. Unlike nfstore.Engine's Query, a Shard's Query
// returns callback errors wrapped in errQueryStop (no ErrStopIteration
// swallowing, no loss) so the coordinator can tell the caller's errors
// from genuine shard failures — the coordinator owns the Engine
// contract.
type Shard interface {
	Name() string
	BinSeconds() uint32
	Bins() ([]uint32, error)
	Span() (flow.Interval, bool, error)
	Query(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error
	Count(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) (flows, packets, bytes uint64, err error)
	Summaries(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]nfstore.BinSummary, error)
	TopN(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, feat flow.Feature, weight nfstore.Weight, k int) ([]nfstore.KeyCount, error)
	Stats() (nfstore.Stats, error)
	ResetStats() error
	SegmentFormat() (uint16, error)
	SegmentFormats() (map[uint16]int, error)
	Close() error
}

// errQueryStop marks a Query-callback error: it passes through
// nfstore.Store.Query (which swallows ErrStopIteration) intact —
// deliberately no Unwrap, or the swallowing would see through it — and
// tells the coordinator the error is the caller's, not the shard's.
type errQueryStop struct{ err error }

func (e errQueryStop) Error() string { return e.err.Error() }

// localShard adapts one in-process *nfstore.Store to the Shard surface.
type localShard struct {
	name string
	s    *nfstore.Store
}

func (l localShard) Name() string                            { return l.name }
func (l localShard) BinSeconds() uint32                      { return l.s.BinSeconds() }
func (l localShard) Bins() ([]uint32, error)                 { return l.s.Bins() }
func (l localShard) Span() (flow.Interval, bool, error)      { return l.s.Span() }
func (l localShard) Stats() (nfstore.Stats, error)           { return l.s.Stats(), nil }
func (l localShard) ResetStats() error                       { l.s.ResetStats(); return nil }
func (l localShard) SegmentFormat() (uint16, error)          { return l.s.SegmentFormat(), nil }
func (l localShard) SegmentFormats() (map[uint16]int, error) { return l.s.SegmentFormats() }
func (l localShard) Close() error                            { return l.s.Close() }

func (l localShard) Query(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error {
	return l.s.Query(ctx, iv, filter, func(r *flow.Record) error {
		if err := fn(r); err != nil {
			return errQueryStop{err}
		}
		return nil
	})
}

func (l localShard) Count(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) (uint64, uint64, uint64, error) {
	return l.s.Count(ctx, iv, filter)
}

func (l localShard) Summaries(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]nfstore.BinSummary, error) {
	return l.s.Summaries(ctx, iv, filter)
}

func (l localShard) TopN(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, feat flow.Feature, weight nfstore.Weight, k int) ([]nfstore.KeyCount, error) {
	return l.s.TopN(ctx, iv, filter, feat, weight, k)
}

// ShardedStore is a horizontally partitioned flow store implementing
// nfstore.Engine by scatter-gather over its shards. Reads fan out over a
// bounded worker pool with per-shard pruning; Query merges in (bin,
// shard) order, so a time-partitioned store reproduces single-store
// byte order exactly. Writes route by the manifest's partition scheme
// and require local (in-process) shards; a store opened over remote
// peers is read-only.
type ShardedStore struct {
	manifest Manifest
	shards   []Shard
	// locals[i] is the in-process store behind shards[i], nil for remote
	// shards. Either all shards are local or all are remote.
	locals   []*nfstore.Store
	par      atomic.Int32
	degraded atomic.Bool

	sealMu sync.Mutex
	onSeal func(bin uint32) // fired once per coordinator-level Seal
}

// Create makes a sharded store of n empty child stores under dir,
// persisting the shard map. partition is PartitionTime or PartitionHash;
// format is the segment format new segments are written in.
func Create(dir string, binSeconds uint32, n int, partition string, format uint16) (*ShardedStore, error) {
	if n < 1 {
		return nil, fmt.Errorf("shardstore: shard count %d", n)
	}
	if partition == "" {
		partition = PartitionTime
	}
	if !validPartition(partition) {
		return nil, fmt.Errorf("shardstore: unknown partition scheme %q", partition)
	}
	if binSeconds == 0 {
		binSeconds = nfstore.DefaultBinSeconds
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardstore: create %s: %w", dir, err)
	}
	m := Manifest{Version: manifestVersion, Partition: partition, Shards: n, BinSeconds: binSeconds}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	st := &ShardedStore{manifest: m}
	for i := 0; i < n; i++ {
		sub := filepath.Join(dir, shardDirName(i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			st.Close()
			return nil, fmt.Errorf("shardstore: create shard %d: %w", i, err)
		}
		s, err := nfstore.CreateFormat(sub, binSeconds, format)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("shardstore: create shard %d: %w", i, err)
		}
		st.shards = append(st.shards, localShard{name: shardDirName(i), s: s})
		st.locals = append(st.locals, s)
	}
	return st, nil
}

// Open opens an existing sharded store directory from its manifest.
func Open(dir string) (*ShardedStore, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	st := &ShardedStore{manifest: m}
	for i := 0; i < m.Shards; i++ {
		s, err := nfstore.Open(filepath.Join(dir, shardDirName(i)))
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("shardstore: open shard %d: %w", i, err)
		}
		if s.BinSeconds() != m.BinSeconds {
			st.Close()
			return nil, fmt.Errorf("shardstore: shard %d bin width %d != manifest %d", i, s.BinSeconds(), m.BinSeconds)
		}
		st.shards = append(st.shards, localShard{name: shardDirName(i), s: s})
		st.locals = append(st.locals, s)
	}
	return st, nil
}

// NewFromShards assembles a sharded store over pre-built shards (the
// remote-peer constructor and the test seam). locals may be nil for
// read-only shard sets.
func NewFromShards(m Manifest, shards []Shard, locals []*nfstore.Store) (*ShardedStore, error) {
	if len(shards) == 0 {
		return nil, errors.New("shardstore: no shards")
	}
	if m.Shards != len(shards) {
		return nil, fmt.Errorf("shardstore: manifest says %d shards, got %d", m.Shards, len(shards))
	}
	return &ShardedStore{manifest: m, shards: shards, locals: locals}, nil
}

// Compile-time check: a sharded store is a drop-in engine.
var _ nfstore.Engine = (*ShardedStore)(nil)

// Manifest returns the store's shard map.
func (st *ShardedStore) Manifest() Manifest { return st.manifest }

// NumShards returns the shard count.
func (st *ShardedStore) NumShards() int { return len(st.shards) }

// ShardNames lists the shard names in shard order.
func (st *ShardedStore) ShardNames() []string {
	names := make([]string, len(st.shards))
	for i, sh := range st.shards {
		names[i] = sh.Name()
	}
	return names
}

// LocalStores returns the in-process stores behind the shards, in shard
// order, or nil when the shards are remote. Benchmarks use it to pin
// per-shard parallelism; tools use it for maintenance (migration).
func (st *ShardedStore) LocalStores() []*nfstore.Store { return st.locals }

// SetDegraded toggles degraded reads: when on, a scatter-gather read
// that loses some (but not all) shards returns the surviving shards'
// partial result instead of failing. Off by default — the default
// contract is fail-loud with the dead shard named in the error.
func (st *ShardedStore) SetDegraded(on bool) { st.degraded.Store(on) }

// Degraded reports whether degraded reads are enabled.
func (st *ShardedStore) Degraded() bool { return st.degraded.Load() }

// BinSeconds returns the measurement bin width shared by every shard.
func (st *ShardedStore) BinSeconds() uint32 { return st.manifest.BinSeconds }

// Bin returns the interval of the measurement bin containing t.
func (st *ShardedStore) Bin(t uint32) flow.Interval {
	start := t - t%st.manifest.BinSeconds
	return flow.Interval{Start: start, End: start + st.manifest.BinSeconds}
}

// fanout resolves the configured fan-out bound (SetParallelism) to a
// worker count.
func (st *ShardedStore) fanout() int {
	if k := st.par.Load(); k > 0 {
		return int(k)
	}
	return min(runtime.GOMAXPROCS(0), maxAutoFanout)
}

// SetParallelism bounds how many shards (for aggregations) or shard-bin
// cells (for Query) are in flight concurrently: 1 forces serial
// fan-out, 0 restores the automatic choice. Per-shard internal scan
// parallelism is the shards' own setting (LocalStores).
func (st *ShardedStore) SetParallelism(k int) {
	if k < 0 {
		k = 0
	}
	st.par.Store(int32(k))
}

// Parallelism returns the effective fan-out bound for the next read.
func (st *ShardedStore) Parallelism() int { return st.fanout() }

// shardFor routes a record to its shard index.
func (st *ShardedStore) shardFor(r *flow.Record) int {
	n := uint32(len(st.shards))
	if st.manifest.Partition == PartitionHash {
		h := fnv.New32a()
		h.Write([]byte{byte(r.Router >> 8), byte(r.Router)})
		return int(h.Sum32() % n)
	}
	return int((r.Start / st.manifest.BinSeconds) % n)
}

// Add routes one record to its shard. Remote shard sets are read-only.
func (st *ShardedStore) Add(r *flow.Record) error {
	if st.locals == nil {
		return errors.New("shardstore: store is read-only (remote shards)")
	}
	return st.locals[st.shardFor(r)].Add(r)
}

// AddAll routes a batch of records to their shards.
func (st *ShardedStore) AddAll(rs []flow.Record) error {
	for i := range rs {
		if err := st.Add(&rs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes every local shard. A remote shard set has nothing to
// flush.
func (st *ShardedStore) Flush() error {
	for i, s := range st.locals {
		if err := s.Flush(); err != nil {
			return &ShardError{Shard: st.shards[i].Name(), Err: err}
		}
	}
	return nil
}

// Close closes every shard, returning the first error.
func (st *ShardedStore) Close() error {
	var first error
	for _, sh := range st.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fanShards runs fn once per shard on a bounded worker pool and merges
// the per-shard errors: nil when every shard succeeded, nil with
// partial effects when degraded mode ate a minority of failures, and
// the first failing shard's ShardError otherwise. failed[i] reports
// whether shard i's result must be treated as missing.
func (st *ShardedStore) fanShards(ctx context.Context, fn func(ctx context.Context, i int, sh Shard) error) (failed []bool, err error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	k := min(st.fanout(), len(st.shards))
	degraded := st.degraded.Load()
	sem := make(chan struct{}, k)
	errs := make([]error, len(st.shards))
	var wg sync.WaitGroup
	for i, sh := range st.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sh Shard) {
			defer wg.Done()
			defer func() { <-sem }()
			if errs[i] = fn(ctx, i, sh); errs[i] != nil && !degraded {
				cancel() // fail fast: no point finishing the other shards
			}
		}(i, sh)
	}
	wg.Wait()
	failed = make([]bool, len(st.shards))
	nfail := 0
	var first error
	for i, e := range errs {
		if e != nil {
			failed[i] = true
			nfail++
			if first == nil {
				first = &ShardError{Shard: st.shards[i].Name(), Err: e}
			}
		}
	}
	if nfail == 0 {
		return failed, nil
	}
	if degraded && nfail < len(st.shards) {
		return failed, nil // partial result, by explicit opt-in
	}
	return failed, first
}

// Bins lists the union of the shards' bin start times, ascending.
func (st *ShardedStore) Bins() ([]uint32, error) {
	per := make([][]uint32, len(st.shards))
	_, err := st.fanShards(context.Background(), func(_ context.Context, i int, sh Shard) error {
		bins, err := sh.Bins()
		per[i] = bins
		return err
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[uint32]bool)
	var bins []uint32
	for _, p := range per {
		for _, b := range p {
			if !seen[b] {
				seen[b] = true
				bins = append(bins, b)
			}
		}
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	return bins, nil
}

// Span returns the interval covered by all shards' segments.
func (st *ShardedStore) Span() (flow.Interval, bool, error) {
	type span struct {
		iv flow.Interval
		ok bool
	}
	per := make([]span, len(st.shards))
	_, err := st.fanShards(context.Background(), func(_ context.Context, i int, sh Shard) error {
		iv, ok, err := sh.Span()
		per[i] = span{iv, ok}
		return err
	})
	if err != nil {
		return flow.Interval{}, false, err
	}
	var out flow.Interval
	any := false
	for _, p := range per {
		if !p.ok {
			continue
		}
		if !any {
			out = p.iv
			any = true
			continue
		}
		out.Start = min(out.Start, p.iv.Start)
		out.End = max(out.End, p.iv.End)
	}
	return out, any, nil
}

// Count sums the matching flow/packet/byte totals over all shards. The
// per-shard sidecar and block pushdowns apply unchanged, and uint64
// addition makes the merged totals exactly the single-store ones.
func (st *ShardedStore) Count(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) (uint64, uint64, uint64, error) {
	var flows, packets, bytes atomic.Uint64
	_, err := st.fanShards(ctx, func(ctx context.Context, _ int, sh Shard) error {
		f, p, b, err := sh.Count(ctx, iv, filter)
		if err != nil {
			return err
		}
		flows.Add(f)
		packets.Add(p)
		bytes.Add(b)
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return flows.Load(), packets.Load(), bytes.Load(), nil
}

// Summaries merges the shards' per-bin summaries by bin: a bin present
// in several shards (hash partitioning) sums, a bin in one shard (time
// partitioning) passes through, and the merged series is time-ordered —
// exactly the single-store series.
func (st *ShardedStore) Summaries(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]nfstore.BinSummary, error) {
	per := make([][]nfstore.BinSummary, len(st.shards))
	_, err := st.fanShards(ctx, func(ctx context.Context, i int, sh Shard) error {
		sums, err := sh.Summaries(ctx, iv, filter)
		per[i] = sums
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := make(map[uint32]nfstore.BinSummary)
	for _, sums := range per {
		for _, s := range sums {
			m := merged[s.Bin.Start]
			m.Bin = s.Bin
			m.Flows += s.Flows
			m.Packets += s.Packets
			m.Bytes += s.Bytes
			merged[s.Bin.Start] = m
		}
	}
	out := make([]nfstore.BinSummary, 0, len(merged))
	for _, s := range merged {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bin.Start < out[j].Bin.Start })
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// TopN fans the aggregation out with k=0 (every key, exact counts),
// sums per-key weights across shards, then re-sorts and truncates with
// the single-store comparator — the same merge shape SupportAll uses
// for itemset supports, so ranks match a single merged store exactly.
func (st *ShardedStore) TopN(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, feat flow.Feature, weight nfstore.Weight, k int) ([]nfstore.KeyCount, error) {
	per := make([][]nfstore.KeyCount, len(st.shards))
	_, err := st.fanShards(ctx, func(ctx context.Context, i int, sh Shard) error {
		rows, err := sh.TopN(ctx, iv, filter, feat, weight, 0)
		per[i] = rows
		return err
	})
	if err != nil {
		return nil, err
	}
	acc := make(map[uint32]uint64)
	for _, rows := range per {
		for _, r := range rows {
			acc[r.Value] += r.Count
		}
	}
	out := make([]nfstore.KeyCount, 0, len(acc))
	for v, c := range acc {
		out = append(out, nfstore.KeyCount{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Iter returns a range-over-func iterator over the merged matching
// records, with the same reuse and early-stop contract as
// nfstore.Store.Iter.
func (st *ShardedStore) Iter(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) iter.Seq2[*flow.Record, error] {
	return func(yield func(*flow.Record, error) bool) {
		err := st.Query(ctx, iv, filter, func(r *flow.Record) error {
			if !yield(r, nil) {
				return nfstore.ErrStopIteration
			}
			return nil
		})
		if err != nil {
			yield(nil, err)
		}
	}
}

// Records collects the merged matching records into a slice.
func (st *ShardedStore) Records(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]flow.Record, error) {
	var out []flow.Record
	err := st.Query(ctx, iv, filter, func(r *flow.Record) error {
		out = append(out, *r)
		return nil
	})
	return out, err
}

// SegmentFormat returns the format new segments are written in (the
// shards always share it; shard 0 answers).
func (st *ShardedStore) SegmentFormat() uint16 {
	f, err := st.shards[0].SegmentFormat()
	if err != nil {
		return 0
	}
	return f
}

// SetSegmentFormat changes the write format on every local shard.
func (st *ShardedStore) SetSegmentFormat(format uint16) error {
	if st.locals == nil {
		return errors.New("shardstore: store is read-only (remote shards)")
	}
	for _, s := range st.locals {
		if err := s.SetSegmentFormat(format); err != nil {
			return err
		}
	}
	return nil
}

// Compile-time check: a local sharded store supports bin sealing.
var _ nfstore.Sealer = (*ShardedStore)(nil)

// OnSeal registers fn to fire once per sealed bin. The hook lives on the
// coordinator, not the children: Seal fans out to every local shard
// (under hash partitioning a bin's records spread over all of them) and
// fires fn exactly once after they all committed.
func (st *ShardedStore) OnSeal(fn func(bin uint32)) {
	st.sealMu.Lock()
	st.onSeal = fn
	st.sealMu.Unlock()
}

// Seal finalizes the bin containing t on every local shard, then fires
// the registered on-seal hook once. Remote shard sets are read-only and
// cannot seal.
func (st *ShardedStore) Seal(t uint32) error {
	if st.locals == nil {
		return errors.New("shardstore: store is read-only (remote shards)")
	}
	for i, s := range st.locals {
		if err := s.Seal(t); err != nil {
			return &ShardError{Shard: st.shards[i].Name(), Err: err}
		}
	}
	st.sealMu.Lock()
	fn := st.onSeal
	st.sealMu.Unlock()
	if fn != nil {
		bin := t - t%st.manifest.BinSeconds
		fn(bin)
	}
	return nil
}

// SetZoneMapCacheSize bounds each local shard's zone-map cache. The
// per-shard cap is n split evenly (minimum 1 entry each), keeping total
// sidecar memory at the single-store budget.
func (st *ShardedStore) SetZoneMapCacheSize(n int) {
	if st.locals == nil || n <= 0 {
		for _, s := range st.locals {
			s.SetZoneMapCacheSize(n)
		}
		return
	}
	per := max(n/len(st.locals), 1)
	for _, s := range st.locals {
		s.SetZoneMapCacheSize(per)
	}
}

// SegmentFormats sums the per-format segment census over all shards.
func (st *ShardedStore) SegmentFormats() (map[uint16]int, error) {
	per := make([]map[uint16]int, len(st.shards))
	_, err := st.fanShards(context.Background(), func(_ context.Context, i int, sh Shard) error {
		counts, err := sh.SegmentFormats()
		per[i] = counts
		return err
	})
	if err != nil {
		return nil, err
	}
	total := map[uint16]int{}
	for _, counts := range per {
		for f, n := range counts {
			total[f] += n
		}
	}
	return total, nil
}

// Stats sums the scan counters over all shards (best effort: an
// unreachable remote shard contributes zeros — ShardStats exposes the
// per-shard view with errors).
func (st *ShardedStore) Stats() nfstore.Stats {
	var total nfstore.Stats
	for _, s := range st.ShardStats() {
		total.SegmentsConsidered += s.Stats.SegmentsConsidered
		total.SegmentsPruned += s.Stats.SegmentsPruned
		total.SegmentsScanned += s.Stats.SegmentsScanned
		total.SegmentsAggregated += s.Stats.SegmentsAggregated
		total.RecordsScanned += s.Stats.RecordsScanned
		total.SidecarsBuilt += s.Stats.SidecarsBuilt
		total.BlocksScanned += s.Stats.BlocksScanned
		total.BlocksPruned += s.Stats.BlocksPruned
		total.BlocksAggregated += s.Stats.BlocksAggregated
	}
	return total
}

// ResetStats zeroes the scan counters on every shard (best effort).
func (st *ShardedStore) ResetStats() {
	_, _ = st.fanShards(context.Background(), func(_ context.Context, _ int, sh Shard) error {
		return sh.ResetStats()
	})
}

// ShardStat is one shard's observability snapshot.
type ShardStat struct {
	Shard   string         `json:"shard"`
	Stats   nfstore.Stats  `json:"stats"`
	Formats map[uint16]int `json:"segment_formats,omitempty"`
	Err     string         `json:"error,omitempty"`
}

// ShardStats returns the per-shard scan counters and segment census, in
// shard order. Failures (an unreachable peer) land in the row's Err
// instead of failing the call, so health stays observable through a
// partial outage.
func (st *ShardedStore) ShardStats() []ShardStat {
	out := make([]ShardStat, len(st.shards))
	k := min(st.fanout(), len(st.shards))
	sem := make(chan struct{}, k)
	var wg sync.WaitGroup
	for i, sh := range st.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sh Shard) {
			defer wg.Done()
			defer func() { <-sem }()
			row := ShardStat{Shard: sh.Name()}
			stats, err := sh.Stats()
			if err == nil {
				row.Stats = stats
				row.Formats, err = sh.SegmentFormats()
			}
			if err != nil {
				row.Err = err.Error()
			}
			out[i] = row
		}(i, sh)
	}
	wg.Wait()
	return out
}
