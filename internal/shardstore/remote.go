package shardstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// shardPathPrefix is where peers mount Handler under their API root.
const shardPathPrefix = "/api/v1/shard"

// Remote-client defaults.
const (
	defaultPeerTimeout = 10 * time.Second
	defaultPeerRetries = 2
)

// RemoteOptions tunes the remote-shard client.
type RemoteOptions struct {
	// Timeout bounds each unary call (meta, bins, count, summaries,
	// topn, stats). 0 means 10 s. Query streams are bounded only by the
	// caller's context — a long scatter-gather scan is not a failure.
	Timeout time.Duration
	// Retries is how many times a failed unary call is retried (network
	// errors only, never HTTP-level errors). Negative means 0; default 2.
	Retries int
	// Client overrides the HTTP client (tests; custom transports).
	Client *http.Client
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout <= 0 {
		o.Timeout = defaultPeerTimeout
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = defaultPeerRetries
	}
	if o.Client == nil {
		// Deliberately no Client.Timeout: it would cap streaming query
		// reads. Unary calls get per-call context timeouts instead.
		o.Client = &http.Client{}
	}
	return o
}

// statusError is a non-2xx peer response; never retried (the peer is
// alive and said no).
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("peer status %d: %s", e.status, e.msg)
	}
	return fmt.Sprintf("peer status %d", e.status)
}

// RemoteShard is one shard living behind a peer rcad node's
// /api/v1/shard endpoints. It is read-only by construction — ingest
// happens on the peer that owns the shard.
type RemoteShard struct {
	name        string // the peer URL as configured (error messages, Name)
	base        string // name + shardPathPrefix, no trailing slash
	opts        RemoteOptions
	binSeconds  uint32
	writeFormat uint16
}

// NewRemoteShard builds a client for one peer and validates it by
// fetching its meta (bin width, write format) within one unary timeout.
func NewRemoteShard(ctx context.Context, peer string, opts RemoteOptions) (*RemoteShard, error) {
	peer = strings.TrimRight(peer, "/")
	if !strings.Contains(peer, "://") {
		peer = "http://" + peer
	}
	if _, err := url.Parse(peer); err != nil {
		return nil, fmt.Errorf("shardstore: peer %q: %w", peer, err)
	}
	r := &RemoteShard{name: peer, base: peer + shardPathPrefix, opts: opts.withDefaults()}
	var meta metaWire
	if err := r.getJSON(ctx, "/meta", nil, &meta); err != nil {
		return nil, fmt.Errorf("shardstore: peer %s: %w", peer, err)
	}
	if meta.BinSeconds == 0 {
		return nil, fmt.Errorf("shardstore: peer %s reports bin width 0", peer)
	}
	r.binSeconds = meta.BinSeconds
	r.writeFormat = meta.WriteFormat
	return r, nil
}

// OpenRemote assembles a read-only sharded store whose shards are peer
// rcad nodes, one shard per peer. Every peer must agree on the bin
// width; the resulting store answers the full Engine read surface by
// HTTP scatter-gather and rejects writes.
func OpenRemote(ctx context.Context, peers []string, opts RemoteOptions) (*ShardedStore, error) {
	if len(peers) == 0 {
		return nil, errors.New("shardstore: no peers")
	}
	shards := make([]Shard, len(peers))
	var binSeconds uint32
	for i, peer := range peers {
		r, err := NewRemoteShard(ctx, peer, opts)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			binSeconds = r.binSeconds
		} else if r.binSeconds != binSeconds {
			return nil, fmt.Errorf("shardstore: peer %s bin width %d != %d (peer %s)",
				r.name, r.binSeconds, binSeconds, peers[0])
		}
		shards[i] = r
	}
	m := Manifest{
		Version:    manifestVersion,
		Partition:  PartitionTime, // reads never consult it; writes are rejected
		Shards:     len(peers),
		BinSeconds: binSeconds,
	}
	return NewFromShards(m, shards, nil)
}

func (r *RemoteShard) Name() string                   { return r.name }
func (r *RemoteShard) BinSeconds() uint32             { return r.binSeconds }
func (r *RemoteShard) SegmentFormat() (uint16, error) { return r.writeFormat, nil }
func (r *RemoteShard) Close() error                   { return nil }

// spanParams encodes the common span+filter query string.
func spanParams(iv flow.Interval, filter *nffilter.Filter) url.Values {
	v := url.Values{}
	v.Set("start", strconv.FormatUint(uint64(iv.Start), 10))
	v.Set("end", strconv.FormatUint(uint64(iv.End), 10))
	if filter != nil {
		v.Set("filter", filter.String())
	}
	return v
}

// getJSON performs one unary GET with the per-peer timeout and bounded
// retries on transport errors. HTTP-level failures (a 4xx/5xx from a
// live peer) are returned immediately.
func (r *RemoteShard) getJSON(ctx context.Context, path string, params url.Values, into any) error {
	u := r.base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	var lastErr error
	for attempt := 0; attempt <= r.opts.Retries; attempt++ {
		cctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
		err := r.doJSON(cctx, http.MethodGet, u, into)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		var se *statusError
		if errors.As(err, &se) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// postUnary performs one POST (no response body expected) with the
// unary timeout, unretried.
func (r *RemoteShard) postUnary(ctx context.Context, path string) error {
	cctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	return r.doJSON(cctx, http.MethodPost, r.base+path, nil)
}

func (r *RemoteShard) doJSON(ctx context.Context, method, u string, into any) error {
	req, err := http.NewRequestWithContext(ctx, method, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &statusError{status: resp.StatusCode, msg: readErrBody(resp.Body)}
	}
	if into == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// readErrBody extracts the error message from a failed response,
// understanding the {"error": ...} convention with a plain-text
// fallback.
func readErrBody(body io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(body, 4096))
	var e errWire
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

func (r *RemoteShard) Bins() ([]uint32, error) {
	var out binsWire
	if err := r.getJSON(context.Background(), "/bins", nil, &out); err != nil {
		return nil, err
	}
	return out.Bins, nil
}

func (r *RemoteShard) Span() (flow.Interval, bool, error) {
	var out spanWire
	if err := r.getJSON(context.Background(), "/span", nil, &out); err != nil {
		return flow.Interval{}, false, err
	}
	return flow.Interval{Start: out.Start, End: out.End}, out.OK, nil
}

func (r *RemoteShard) Count(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) (uint64, uint64, uint64, error) {
	var out countWire
	if err := r.getJSON(ctx, "/count", spanParams(iv, filter), &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Flows, out.Packets, out.Bytes, nil
}

func (r *RemoteShard) Summaries(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]nfstore.BinSummary, error) {
	var out summariesWire
	if err := r.getJSON(ctx, "/summaries", spanParams(iv, filter), &out); err != nil {
		return nil, err
	}
	sums := make([]nfstore.BinSummary, len(out.Summaries))
	for i, s := range out.Summaries {
		sums[i] = nfstore.BinSummary{
			Bin:     flow.Interval{Start: s.BinStart, End: s.BinEnd},
			Flows:   s.Flows,
			Packets: s.Packets,
			Bytes:   s.Bytes,
		}
	}
	return sums, nil
}

func (r *RemoteShard) TopN(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, feat flow.Feature, weight nfstore.Weight, k int) ([]nfstore.KeyCount, error) {
	params := spanParams(iv, filter)
	params.Set("feature", strconv.Itoa(int(feat)))
	params.Set("weight", strconv.Itoa(int(weight)))
	params.Set("k", strconv.Itoa(k))
	var out topnWire
	if err := r.getJSON(ctx, "/topn", params, &out); err != nil {
		return nil, err
	}
	return out.Rows, nil
}

func (r *RemoteShard) Stats() (nfstore.Stats, error) {
	var out statsWire
	if err := r.getJSON(context.Background(), "/stats", nil, &out); err != nil {
		return nfstore.Stats{}, err
	}
	return out.Stats, nil
}

func (r *RemoteShard) ResetStats() error {
	return r.postUnary(context.Background(), "/stats/reset")
}

func (r *RemoteShard) SegmentFormats() (map[uint16]int, error) {
	var out statsWire
	if err := r.getJSON(context.Background(), "/stats", nil, &out); err != nil {
		return nil, err
	}
	return out.SegmentFormats, nil
}

// Query streams the peer's matching records through the framed binary
// protocol. The stream is bounded only by ctx: callback errors close
// the connection (the peer aborts its scan via the dropped request
// context), a missing terminator frame is a loud truncation error, and
// an error frame carries the peer's own message.
func (r *RemoteShard) Query(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error {
	u := r.base + "/query?" + spanParams(iv, filter).Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &statusError{status: resp.StatusCode, msg: readErrBody(resp.Body)}
	}
	var (
		hdr [4]byte
		rec flow.Record
		buf []byte
	)
	for {
		if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil {
			return fmt.Errorf("query stream truncated (no terminator): %w", err)
		}
		count := binary.LittleEndian.Uint32(hdr[:])
		switch {
		case count == 0:
			return nil // clean terminator
		case count == queryErrFrame:
			if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil {
				return fmt.Errorf("query stream truncated in error frame: %w", err)
			}
			msgLen := binary.LittleEndian.Uint32(hdr[:])
			if msgLen > 1<<20 {
				return fmt.Errorf("query error frame of %d bytes", msgLen)
			}
			msg := make([]byte, msgLen)
			if _, err := io.ReadFull(resp.Body, msg); err != nil {
				return fmt.Errorf("query stream truncated in error frame: %w", err)
			}
			return errors.New(string(msg))
		case count > 1<<20:
			return fmt.Errorf("query frame of %d records", count)
		}
		need := int(count) * nfstore.RecordSize
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return fmt.Errorf("query stream truncated mid-frame: %w", err)
		}
		for off := 0; off < need; off += nfstore.RecordSize {
			nfstore.DecodeRecord(buf[off:off+nfstore.RecordSize], &rec)
			if err := fn(&rec); err != nil {
				// Mark it as the caller's error, per the Shard contract
				// (closing the body aborts the peer-side scan).
				return errQueryStop{err}
			}
		}
	}
}

// Compile-time check: a remote peer is a shard.
var _ Shard = (*RemoteShard)(nil)
