package nfstore

import (
	"context"
	"runtime"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// The query engine plans a span scan in three steps: list the segments
// overlapping the interval, prune the ones whose zone map proves the
// filter cannot match, then scan the survivors — serially below the
// parallelism threshold, otherwise on a bounded worker pool whose results
// are merged back in deterministic bin order. The callback contract is
// identical to a serial scan: records arrive in bin order, file order
// within a bin, through a reused *flow.Record.

// queryBatchSize is how many matched records a parallel segment worker
// accumulates before handing them to the merger. It is kept below
// ctxCheckStride so cancellation observed between batches still lands
// within the documented one-stride bound.
const queryBatchSize = 512

// maxAutoParallelism caps the automatic worker count: segment scans are
// I/O-and-decode bound, and past a handful of workers the merger becomes
// the bottleneck.
const maxAutoParallelism = 8

// Stats is a snapshot of the store's cumulative scan counters. The
// counters make the pruning and pushdown fast paths observable: a
// selective filter over a well-indexed store shows SegmentsPruned close
// to SegmentsConsidered, and sidecar-answered aggregations count under
// SegmentsAggregated without touching RecordsScanned.
type Stats struct {
	// SegmentsConsidered counts segments whose bin overlapped a query span.
	SegmentsConsidered uint64 `json:"segments_considered"`
	// SegmentsPruned counts segments skipped because their zone map proved
	// the filter (or the span) could not match any record.
	SegmentsPruned uint64 `json:"segments_pruned"`
	// SegmentsScanned counts segment files actually opened and decoded.
	SegmentsScanned uint64 `json:"segments_scanned"`
	// SegmentsAggregated counts segments answered entirely from their
	// sidecar by an aggregation pushdown (Count, Summaries).
	SegmentsAggregated uint64 `json:"segments_aggregated"`
	// RecordsScanned counts records decoded from disk (for columnar
	// segments: records in blocks whose columns were decoded — rows in
	// pruned or aggregated blocks are never decoded and never counted).
	RecordsScanned uint64 `json:"records_scanned"`
	// SidecarsBuilt counts zone-map sidecars written (at flush time or
	// lazily while scanning an unindexed segment).
	SidecarsBuilt uint64 `json:"sidecars_built"`
	// BlocksScanned counts v2 column blocks whose columns were decoded.
	BlocksScanned uint64 `json:"blocks_scanned"`
	// BlocksPruned counts v2 column blocks skipped because their block
	// zone map proved the filter (or the span) could not match.
	BlocksPruned uint64 `json:"blocks_pruned"`
	// BlocksAggregated counts v2 column blocks answered entirely from
	// their block zone-map totals by an aggregation pushdown.
	BlocksAggregated uint64 `json:"blocks_aggregated"`
}

// storeStats holds the live atomic counters behind Stats.
type storeStats struct {
	segmentsConsidered atomic.Uint64
	segmentsPruned     atomic.Uint64
	segmentsScanned    atomic.Uint64
	segmentsAggregated atomic.Uint64
	recordsScanned     atomic.Uint64
	sidecarsBuilt      atomic.Uint64
	blocksScanned      atomic.Uint64
	blocksPruned       atomic.Uint64
	blocksAggregated   atomic.Uint64
}

// Stats returns a snapshot of the store's scan counters.
func (s *Store) Stats() Stats {
	return Stats{
		SegmentsConsidered: s.stats.segmentsConsidered.Load(),
		SegmentsPruned:     s.stats.segmentsPruned.Load(),
		SegmentsScanned:    s.stats.segmentsScanned.Load(),
		SegmentsAggregated: s.stats.segmentsAggregated.Load(),
		RecordsScanned:     s.stats.recordsScanned.Load(),
		SidecarsBuilt:      s.stats.sidecarsBuilt.Load(),
		BlocksScanned:      s.stats.blocksScanned.Load(),
		BlocksPruned:       s.stats.blocksPruned.Load(),
		BlocksAggregated:   s.stats.blocksAggregated.Load(),
	}
}

// ResetStats zeroes the scan counters (between benchmark phases, say).
func (s *Store) ResetStats() {
	s.stats.segmentsConsidered.Store(0)
	s.stats.segmentsPruned.Store(0)
	s.stats.segmentsScanned.Store(0)
	s.stats.segmentsAggregated.Store(0)
	s.stats.recordsScanned.Store(0)
	s.stats.sidecarsBuilt.Store(0)
	s.stats.blocksScanned.Store(0)
	s.stats.blocksPruned.Store(0)
	s.stats.blocksAggregated.Store(0)
}

// SetParallelism bounds the number of segments a query scans concurrently:
// 1 forces serial scans, 0 restores the automatic choice
// (min(GOMAXPROCS, 8)). Safe to call concurrently with queries; a running
// query keeps the value it started with.
func (s *Store) SetParallelism(k int) {
	if k < 0 {
		k = 0
	}
	s.par.Store(int32(k))
}

// Parallelism returns the effective worker bound for the next query.
func (s *Store) Parallelism() int { return s.queryParallelism() }

// queryParallelism resolves the configured parallelism to a worker count.
func (s *Store) queryParallelism() int {
	if k := s.par.Load(); k > 0 {
		return int(k)
	}
	return min(runtime.GOMAXPROCS(0), maxAutoParallelism)
}

// SetZoneMapCacheSize bounds the in-memory cache of decoded zone-map
// sidecars to n entries (LRU eviction, ~2.2 KB each; n <= 0 restores
// the default of 4096). Evicted entries only cost a sidecar re-read on
// their next query — correctness is unaffected.
func (s *Store) SetZoneMapCacheSize(n int) { s.zmc.setCap(n) }

// SetPruning toggles zone-map segment pruning and lazy sidecar builds
// (enabled by default). Disabling it forces every overlapping segment to
// be scanned — the pre-index behavior, kept reachable for benchmarks and
// correctness cross-checks.
func (s *Store) SetPruning(enabled bool) { s.pruneOff.Store(!enabled) }

// segPlan is one segment a query decided to touch.
type segPlan struct {
	bin uint32
	// zm is the segment's validated zone map (nil when absent/stale).
	zm *zoneMap
	// buildIdx asks the scan to rebuild the missing sidecar as it reads.
	buildIdx bool
}

// planSegments lists the segments overlapping iv that the filter may
// match, pruning provably-irrelevant ones via their zone maps.
func (s *Store) planSegments(iv flow.Interval, filter *nffilter.Filter) ([]segPlan, error) {
	bins, err := s.Bins()
	if err != nil {
		return nil, err
	}
	return s.planSegmentsIn(bins, iv, filter), nil
}

// planSegmentsIn is planSegments over an already-listed bin set, so
// callers iterating many spans (Summaries) list the store directory
// once instead of once per span.
func (s *Store) planSegmentsIn(bins []uint32, iv flow.Interval, filter *nffilter.Filter) []segPlan {
	pruning := !s.pruneOff.Load()
	var root nffilter.Node
	if filter != nil {
		root = filter.Root()
	}
	var plan []segPlan
	for _, bin := range bins {
		seg := flow.Interval{Start: bin, End: bin + s.binSeconds}
		if !seg.Overlaps(iv) {
			continue
		}
		s.stats.segmentsConsidered.Add(1)
		p := segPlan{bin: bin}
		if pruning {
			if z := s.loadZoneMap(bin); z != nil {
				if !z.overlapsStart(iv) || (root != nil && !z.canMatch(root)) {
					s.stats.segmentsPruned.Add(1)
					continue
				}
				p.zm = z
			} else {
				p.buildIdx = true
			}
		}
		plan = append(plan, p)
	}
	return plan
}

// execPlan scans the planned segments and streams matches to fn in bin
// order, choosing serial or parallel execution by the configured worker
// bound. Span and filter matching happen inside scanSegment (where the
// columnar path can prune blocks and evaluate vectorized); fn only
// consumes survivors.
func (s *Store) execPlan(ctx context.Context, plan []segPlan, opts scanOpts, fn func(*flow.Record) error) error {
	if len(plan) == 0 {
		return nil
	}
	k := s.queryParallelism()
	if k > len(plan) {
		k = len(plan)
	}
	if k <= 1 {
		return s.execSerial(ctx, plan, opts, fn)
	}
	return s.execParallel(ctx, k, plan, opts, fn)
}

// execSerial scans the plan one segment at a time on the caller's
// goroutine.
func (s *Store) execSerial(ctx context.Context, plan []segPlan, opts scanOpts, fn func(*flow.Record) error) error {
	for _, p := range plan {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.scanSegment(ctx, p, opts, fn); err != nil {
			return err
		}
	}
	return nil
}

// segResult carries one worker's output: batches of matched records, then
// (after the channel closes) the scan error, if any.
type segResult struct {
	batches chan []flow.Record
	err     error
}

// execParallel scans up to k segments concurrently. Workers push matched
// records in fixed-size batches; the merger drains workers strictly in bin
// order, so fn observes the exact serial-scan sequence. Workers launch
// lazily, at most k ahead of the merge cursor, so goroutine count and
// buffered-batch memory stay proportional to k rather than to the plan
// length (a warm-up sweep can plan tens of thousands of segments). An fn
// error or a context cancellation tears the pool down promptly: every
// worker send selects on ctx.
func (s *Store) execParallel(ctx context.Context, k int, plan []segPlan, opts scanOpts, fn func(*flow.Record) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*segResult, len(plan))
	start := func(i int) {
		res := &segResult{batches: make(chan []flow.Record, 4)}
		results[i] = res
		go func(p segPlan) {
			defer close(res.batches)
			res.err = s.scanSegmentBatches(ctx, p, opts, res.batches)
		}(plan[i])
	}
	next := 0
	for ; next < len(plan) && next < k; next++ {
		start(next)
	}

	// Merge in plan (= bin) order; each finished segment admits the next
	// worker, keeping exactly k scans in flight. The record passed to fn
	// is reused, per the Query contract.
	var rec flow.Record
	for j := range plan {
		res := results[j]
		for batch := range res.batches {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := range batch {
				rec = batch[i]
				if err := fn(&rec); err != nil {
					return err
				}
			}
		}
		if res.err != nil {
			return res.err
		}
		if next < len(plan) {
			start(next)
			next++
		}
	}
	return nil
}

// scanSegmentBatches scans one segment and sends matched records to out in
// batches of queryBatchSize.
func (s *Store) scanSegmentBatches(ctx context.Context, p segPlan, opts scanOpts, out chan<- []flow.Record) error {
	batch := make([]flow.Record, 0, queryBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		select {
		case out <- batch:
		case <-ctx.Done():
			return ctx.Err()
		}
		batch = make([]flow.Record, 0, queryBatchSize)
		return nil
	}
	err := s.scanSegment(ctx, p, opts, func(r *flow.Record) error {
		batch = append(batch, *r)
		if len(batch) == queryBatchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}
