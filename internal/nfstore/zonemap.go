package nfstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/flow"
)

// The zone-map sidecar ("nfcapd.<bin>.idx") summarizes one segment file so
// queries can prune segments a filter provably cannot match and answer
// whole-segment aggregations without scanning. The design follows the
// zone-map/small-materialized-aggregate tradition of analytic stores: per
// column min/max bounds, a protocol bitmap, TCP-flag AND/OR masks, volume
// totals and small Bloom filters over the endpoint addresses.
//
// A sidecar covers a byte prefix of its segment file (CoveredSize). A
// segment that has grown past its sidecar invalidates it implicitly — the
// reader compares CoveredSize against the live file size and falls back to
// a full scan (rebuilding the sidecar opportunistically) on mismatch, so
// stale sidecars can never cause wrong pruning.

// bloomBytes is the size of each endpoint Bloom filter. 8192 bits with
// bloomHashes probes keeps the false-positive rate around 10% at the
// typical per-segment address cardinality (a few thousand), and the range
// bounds catch most prunable cases before the Bloom is even consulted.
const bloomBytes = 1024

// bloomHashes is the number of Bloom probes per inserted address.
const bloomHashes = 3

// idxMagic starts every sidecar file ("NFIX" little-endian).
const idxMagic = 0x5849464e

// idxVersion is the current sidecar format version.
const idxVersion = 1

// idxSize is the fixed encoded size of a sidecar: a 24-byte header
// (magic, version, bin, width, covered size), the scalar summaries, two
// Bloom filters and a trailing FNV-1a checksum.
const idxSize = 160 + 2*bloomBytes + 4

// bloom is a fixed-size Bloom filter over 32-bit values (IP addresses).
type bloom [bloomBytes]byte

// add inserts v.
func (b *bloom) add(v uint32) {
	h1, h2 := bloomHash(v)
	for i := 0; i < bloomHashes; i++ {
		bit := (h1 + uint64(i)*h2) % (bloomBytes * 8)
		b[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether v may have been inserted (false positives
// possible, false negatives not).
func (b *bloom) mayContain(v uint32) bool {
	h1, h2 := bloomHash(v)
	for i := 0; i < bloomHashes; i++ {
		bit := (h1 + uint64(i)*h2) % (bloomBytes * 8)
		if b[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// bloomHash derives two independent 64-bit hashes from v (Kirsch-
// Mitzenmacher double hashing) via a SplitMix64 finalizer.
func bloomHash(v uint32) (h1, h2 uint64) {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x, x>>32 | x<<32 | 1 // h2 forced odd so probes spread
}

// zoneMap is the in-memory form of one segment's sidecar — and, with
// noBloom set, of one v2 column block's embedded zone map (blocks carry
// no Blooms; their IP pruning uses range bounds only).
type zoneMap struct {
	coveredSize int64  // segment bytes summarized (header + body)
	format      uint16 // segment body format the summary describes (0 = v1)
	noBloom     bool   // Blooms absent (block metas): IP pruning skips them

	count   uint64 // records
	packets uint64
	bytes   uint64

	minStart, maxStart     uint32
	minSrcIP, maxSrcIP     uint32
	minDstIP, maxDstIP     uint32
	minSrcPort, maxSrcPort uint16
	minDstPort, maxDstPort uint16
	minRouter, maxRouter   uint16
	minPackets, maxPackets uint64
	minBytes, maxBytes     uint64
	minDur, maxDur         uint32

	protoBitmap [32]byte // bit per IP protocol number seen
	flagsOr     uint8    // union of TCP flags seen
	flagsAnd    uint8    // intersection of TCP flags seen

	bloomSrc bloom
	bloomDst bloom
}

// newZoneMap returns an empty zone map (count 0, bounds unset).
func newZoneMap() *zoneMap { return &zoneMap{} }

// add folds one record into the summaries.
func (z *zoneMap) add(r *flow.Record) {
	if z.count == 0 {
		z.minStart, z.maxStart = r.Start, r.Start
		z.minSrcIP, z.maxSrcIP = uint32(r.SrcIP), uint32(r.SrcIP)
		z.minDstIP, z.maxDstIP = uint32(r.DstIP), uint32(r.DstIP)
		z.minSrcPort, z.maxSrcPort = r.SrcPort, r.SrcPort
		z.minDstPort, z.maxDstPort = r.DstPort, r.DstPort
		z.minRouter, z.maxRouter = r.Router, r.Router
		z.minPackets, z.maxPackets = r.Packets, r.Packets
		z.minBytes, z.maxBytes = r.Bytes, r.Bytes
		z.minDur, z.maxDur = r.Dur, r.Dur
		z.flagsAnd = r.Flags
	} else {
		z.minStart = min(z.minStart, r.Start)
		z.maxStart = max(z.maxStart, r.Start)
		z.minSrcIP = min(z.minSrcIP, uint32(r.SrcIP))
		z.maxSrcIP = max(z.maxSrcIP, uint32(r.SrcIP))
		z.minDstIP = min(z.minDstIP, uint32(r.DstIP))
		z.maxDstIP = max(z.maxDstIP, uint32(r.DstIP))
		z.minSrcPort = min(z.minSrcPort, r.SrcPort)
		z.maxSrcPort = max(z.maxSrcPort, r.SrcPort)
		z.minDstPort = min(z.minDstPort, r.DstPort)
		z.maxDstPort = max(z.maxDstPort, r.DstPort)
		z.minRouter = min(z.minRouter, r.Router)
		z.maxRouter = max(z.maxRouter, r.Router)
		z.minPackets = min(z.minPackets, r.Packets)
		z.maxPackets = max(z.maxPackets, r.Packets)
		z.minBytes = min(z.minBytes, r.Bytes)
		z.maxBytes = max(z.maxBytes, r.Bytes)
		z.minDur = min(z.minDur, r.Dur)
		z.maxDur = max(z.maxDur, r.Dur)
		z.flagsAnd &= r.Flags
	}
	z.count++
	z.packets += r.Packets
	z.bytes += r.Bytes
	z.protoBitmap[r.Proto/8] |= 1 << (r.Proto % 8)
	z.flagsOr |= r.Flags
	z.bloomSrc.add(uint32(r.SrcIP))
	z.bloomDst.add(uint32(r.DstIP))
	z.coveredSize = segHeaderSize + int64(z.count)*RecordSize
}

// merge folds another zone map's summaries into z — the two must
// summarize disjoint byte ranges of the same segment (the async seed
// scan's prefix and the writer's live delta). Bounds widen, totals add,
// bitmaps and Blooms union, and the covered size is recomputed from the
// combined record count.
func (z *zoneMap) merge(o *zoneMap) {
	if o == nil || o.count == 0 {
		return
	}
	if z.count == 0 {
		*z = *o
		return
	}
	z.minStart = min(z.minStart, o.minStart)
	z.maxStart = max(z.maxStart, o.maxStart)
	z.minSrcIP = min(z.minSrcIP, o.minSrcIP)
	z.maxSrcIP = max(z.maxSrcIP, o.maxSrcIP)
	z.minDstIP = min(z.minDstIP, o.minDstIP)
	z.maxDstIP = max(z.maxDstIP, o.maxDstIP)
	z.minSrcPort = min(z.minSrcPort, o.minSrcPort)
	z.maxSrcPort = max(z.maxSrcPort, o.maxSrcPort)
	z.minDstPort = min(z.minDstPort, o.minDstPort)
	z.maxDstPort = max(z.maxDstPort, o.maxDstPort)
	z.minRouter = min(z.minRouter, o.minRouter)
	z.maxRouter = max(z.maxRouter, o.maxRouter)
	z.minPackets = min(z.minPackets, o.minPackets)
	z.maxPackets = max(z.maxPackets, o.maxPackets)
	z.minBytes = min(z.minBytes, o.minBytes)
	z.maxBytes = max(z.maxBytes, o.maxBytes)
	z.minDur = min(z.minDur, o.minDur)
	z.maxDur = max(z.maxDur, o.maxDur)
	z.count += o.count
	z.packets += o.packets
	z.bytes += o.bytes
	for i := range z.protoBitmap {
		z.protoBitmap[i] |= o.protoBitmap[i]
	}
	z.flagsOr |= o.flagsOr
	z.flagsAnd &= o.flagsAnd
	for i := range z.bloomSrc {
		z.bloomSrc[i] |= o.bloomSrc[i]
		z.bloomDst[i] |= o.bloomDst[i]
	}
	z.coveredSize = segHeaderSize + int64(z.count)*RecordSize
}

// overlapsStart reports whether any summarized record start time can fall
// inside iv. An empty zone map overlaps nothing.
func (z *zoneMap) overlapsStart(iv flow.Interval) bool {
	return z.count > 0 && z.minStart < iv.End && z.maxStart >= iv.Start
}

// coversStarts reports whether iv contains every summarized record start,
// i.e. whether a time-windowed aggregation over iv may use the zone map's
// totals for the whole segment.
func (z *zoneMap) coversStarts(iv flow.Interval) bool {
	return z.count > 0 && iv.Start <= z.minStart && z.maxStart < iv.End
}

// protoCount returns how many distinct protocol numbers the bitmap holds.
func (z *zoneMap) protoCount() int {
	n := 0
	for _, b := range z.protoBitmap {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}

// hasProto reports whether protocol p appears in the segment.
func (z *zoneMap) hasProto(p flow.Protocol) bool {
	return z.protoBitmap[p/8]&(1<<(p%8)) != 0
}

// encodeZoneMap serializes the zone map (including the sidecar header for
// the given bin) into a fresh idxSize buffer.
func encodeZoneMap(z *zoneMap, binStart, binSeconds uint32) []byte {
	buf := make([]byte, idxSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], idxMagic)
	le.PutUint16(buf[4:], idxVersion)
	le.PutUint16(buf[6:], z.format)
	le.PutUint32(buf[8:], binStart)
	le.PutUint32(buf[12:], binSeconds)
	le.PutUint64(buf[16:], uint64(z.coveredSize))
	le.PutUint64(buf[24:], z.count)
	le.PutUint64(buf[32:], z.packets)
	le.PutUint64(buf[40:], z.bytes)
	le.PutUint32(buf[48:], z.minStart)
	le.PutUint32(buf[52:], z.maxStart)
	le.PutUint32(buf[56:], z.minSrcIP)
	le.PutUint32(buf[60:], z.maxSrcIP)
	le.PutUint32(buf[64:], z.minDstIP)
	le.PutUint32(buf[68:], z.maxDstIP)
	le.PutUint16(buf[72:], z.minSrcPort)
	le.PutUint16(buf[74:], z.maxSrcPort)
	le.PutUint16(buf[76:], z.minDstPort)
	le.PutUint16(buf[78:], z.maxDstPort)
	copy(buf[80:112], z.protoBitmap[:])
	buf[112] = z.flagsOr
	buf[113] = z.flagsAnd
	le.PutUint16(buf[114:], z.minRouter)
	le.PutUint16(buf[116:], z.maxRouter)
	le.PutUint64(buf[120:], z.minPackets)
	le.PutUint64(buf[128:], z.maxPackets)
	le.PutUint64(buf[136:], z.minBytes)
	le.PutUint64(buf[144:], z.maxBytes)
	le.PutUint32(buf[152:], z.minDur)
	le.PutUint32(buf[156:], z.maxDur)
	copy(buf[160:160+bloomBytes], z.bloomSrc[:])
	copy(buf[160+bloomBytes:160+2*bloomBytes], z.bloomDst[:])
	le.PutUint32(buf[idxSize-4:], idxChecksum(buf[:idxSize-4]))
	return buf
}

// decodeZoneMap validates and unpacks a sidecar for the expected bin.
func decodeZoneMap(buf []byte, binStart, binSeconds uint32) (*zoneMap, error) {
	if len(buf) != idxSize {
		return nil, fmt.Errorf("nfstore: sidecar size %d, want %d", len(buf), idxSize)
	}
	le := binary.LittleEndian
	if got := le.Uint32(buf[0:]); got != idxMagic {
		return nil, fmt.Errorf("nfstore: bad sidecar magic %#x", got)
	}
	if v := le.Uint16(buf[4:]); v != idxVersion {
		return nil, fmt.Errorf("nfstore: unsupported sidecar version %d", v)
	}
	if sum := le.Uint32(buf[idxSize-4:]); sum != idxChecksum(buf[:idxSize-4]) {
		return nil, fmt.Errorf("nfstore: sidecar checksum mismatch")
	}
	if gotBin, gotSec := le.Uint32(buf[8:]), le.Uint32(buf[12:]); gotBin != binStart || gotSec != binSeconds {
		return nil, fmt.Errorf("nfstore: sidecar is for bin %d width %d, want %d width %d",
			gotBin, gotSec, binStart, binSeconds)
	}
	z := &zoneMap{
		format:      le.Uint16(buf[6:]),
		coveredSize: int64(le.Uint64(buf[16:])),
		count:       le.Uint64(buf[24:]),
		packets:     le.Uint64(buf[32:]),
		bytes:       le.Uint64(buf[40:]),
		minStart:    le.Uint32(buf[48:]),
		maxStart:    le.Uint32(buf[52:]),
		minSrcIP:    le.Uint32(buf[56:]),
		maxSrcIP:    le.Uint32(buf[60:]),
		minDstIP:    le.Uint32(buf[64:]),
		maxDstIP:    le.Uint32(buf[68:]),
		minSrcPort:  le.Uint16(buf[72:]),
		maxSrcPort:  le.Uint16(buf[74:]),
		minDstPort:  le.Uint16(buf[76:]),
		maxDstPort:  le.Uint16(buf[78:]),
		flagsOr:     buf[112],
		flagsAnd:    buf[113],
		minRouter:   le.Uint16(buf[114:]),
		maxRouter:   le.Uint16(buf[116:]),
		minPackets:  le.Uint64(buf[120:]),
		maxPackets:  le.Uint64(buf[128:]),
		minBytes:    le.Uint64(buf[136:]),
		maxBytes:    le.Uint64(buf[144:]),
		minDur:      le.Uint32(buf[152:]),
		maxDur:      le.Uint32(buf[156:]),
	}
	copy(z.protoBitmap[:], buf[80:112])
	copy(z.bloomSrc[:], buf[160:160+bloomBytes])
	copy(z.bloomDst[:], buf[160+bloomBytes:160+2*bloomBytes])
	// Cross-check the covered size against the record count. Only the
	// fixed-row v1 format admits exact arithmetic (sidecars written before
	// the format field carry 0 there and are all v1); for columnar
	// segments the plausibility floor is one block.
	if z.format <= FormatV1 {
		if want := segHeaderSize + int64(z.count)*RecordSize; z.coveredSize != want {
			return nil, fmt.Errorf("nfstore: sidecar covers %d bytes but counts %d records", z.coveredSize, z.count)
		}
	} else if z.coveredSize < segHeaderSize+blockHeaderSize+blockMetaSize {
		return nil, fmt.Errorf("nfstore: sidecar covers %d bytes, too small for any %d-format segment", z.coveredSize, z.format)
	}
	return z, nil
}

// idxChecksum is the sidecar integrity checksum (FNV-1a over the payload).
func idxChecksum(payload []byte) uint32 {
	h := fnv.New32a()
	h.Write(payload)
	return h.Sum32()
}
