package nfstore

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// twinStores writes the same record stream into a v1 and a v2 store.
func twinStores(t *testing.T, rng *rand.Rand, n, bins int) (v1, v2 *Store) {
	t.Helper()
	mk := func(format uint16) *Store {
		s, err := CreateFormat(t.TempDir(), 300, format)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	v1, v2 = mk(FormatV1), mk(FormatV2)
	span := uint32(bins * 300)
	for i := 0; i < n; i++ {
		r := randRecord(rng, span)
		if err := v1.Add(&r); err != nil {
			t.Fatal(err)
		}
		if err := v2.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []*Store{v1, v2} {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return v1, v2
}

// TestCrossFormatEquivalence is the tentpole's pin: across random filters
// and spans, the v2 pruned parallel engine answers Query, Count, TopN and
// Summaries exactly like the v1 serial unpruned engine over the same
// records. Formats may never change what a query returns.
func TestCrossFormatEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	v1, v2 := twinStores(t, rng, 9000, 8)

	for trial := 0; trial < 100; trial++ {
		var f *nffilter.Filter
		if rng.Intn(8) != 0 {
			f = nffilter.FromNode(randFilterNode(rng, 3))
		}
		lo := uint32(rng.Intn(9 * 300))
		hi := lo + uint32(rng.Intn(5*300))
		iv := flow.Interval{Start: lo, End: hi}

		want := collectSerialUnpruned(t, v1, iv, f)

		v2.SetParallelism(4)
		got, err := v2.Records(t.Context(), iv, f)
		v2.SetParallelism(0)
		if err != nil {
			t.Fatalf("trial %d filter %v: %v", trial, f, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d filter %v iv %v: v2 returned %d records, v1 serial %d",
				trial, f, iv, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d filter %v: record %d differs:\n  v2 %+v\n  v1 %+v",
					trial, f, i, got[i], want[i])
			}
		}

		f1, p1, b1, err := v1.Count(t.Context(), iv, f)
		if err != nil {
			t.Fatal(err)
		}
		f2, p2, b2, err := v2.Count(t.Context(), iv, f)
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 || p1 != p2 || b1 != b2 {
			t.Fatalf("trial %d filter %v: Count v2 (%d,%d,%d) != v1 (%d,%d,%d)",
				trial, f, f2, p2, b2, f1, p1, b1)
		}

		if trial%5 == 0 {
			s1, err := v1.Summaries(t.Context(), iv, f)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := v2.Summaries(t.Context(), iv, f)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s1, s2) {
				t.Fatalf("trial %d filter %v: Summaries diverge:\n  v2 %+v\n  v1 %+v",
					trial, f, s2, s1)
			}
			top1, err := v1.TopN(t.Context(), iv, f, flow.FeatDstPort, ByPackets, 5)
			if err != nil {
				t.Fatal(err)
			}
			top2, err := v2.TopN(t.Context(), iv, f, flow.FeatDstPort, ByPackets, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(top1, top2) {
				t.Fatalf("trial %d filter %v: TopN diverge:\n  v2 %+v\n  v1 %+v",
					trial, f, top2, top1)
			}
		}
	}
}

// TestCrossFormatIter pins the streaming iterator: v2 yields the same
// sequence as v1, and early termination works on both.
func TestCrossFormatIter(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	v1, v2 := twinStores(t, rng, 3000, 4)
	iv := flow.Interval{Start: 150, End: 3 * 300}
	f, err := nffilter.Parse("proto tcp and flags S")
	if err != nil {
		t.Fatal(err)
	}

	collect := func(s *Store, limit int) []flow.Record {
		var out []flow.Record
		for r, err := range s.Iter(t.Context(), iv, f) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, *r)
			if limit > 0 && len(out) == limit {
				break
			}
		}
		return out
	}
	want := collect(v1, 0)
	got := collect(v2, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Iter sequences diverge: v2 %d records, v1 %d", len(got), len(want))
	}
	if len(want) > 10 {
		if early := collect(v2, 10); !reflect.DeepEqual(early, want[:10]) {
			t.Fatal("v2 early-terminated Iter diverges from v1 prefix")
		}
	}
}

// TestCrossFormatVectorFallback pins the per-row fallback: a filter the
// vectorized evaluator does not support (an unknown counter field) must
// flow through the scalar path and still match v1 exactly.
func TestCrossFormatVectorFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	v1, v2 := twinStores(t, rng, 2000, 3)
	iv := flow.Interval{Start: 0, End: 3 * 300}

	// Unknown counter field: value() reads 0, so "?" >= 0 matches all and
	// "?" > 0 matches none — both must agree across formats.
	for _, op := range []nffilter.CmpOp{nffilter.CmpGe, nffilter.CmpGt} {
		node := &nffilter.And{Kids: []nffilter.Node{
			&nffilter.ProtoMatch{Proto: flow.ProtoUDP},
			&nffilter.CounterMatch{Field: nffilter.CounterField(99), Op: op},
		}}
		f := nffilter.FromNode(node)
		want := collectSerialUnpruned(t, v1, iv, f)
		got, err := v2.Records(t.Context(), iv, f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("op %v: fallback path diverges: v2 %d records, v1 %d",
				op, len(got), len(want))
		}
	}
}

// TestBlockLevelStatsObservable: a time-ordered multi-block v2 segment
// under a partial-span unfiltered Count shows all three block outcomes —
// early blocks aggregated from their metas, the boundary block scanned,
// later blocks pruned.
func TestBlockLevelStatsObservable(t *testing.T) {
	s, err := CreateFormat(t.TempDir(), 300, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 4 * blockRecords
	for i := 0; i < n; i++ {
		r := flow.Record{
			Start:   uint32(i * 300 / n), // sorted: blocks cover disjoint start ranges
			SrcIP:   flow.IPFromOctets(10, 0, 0, byte(i%250)),
			DstIP:   flow.IPFromOctets(192, 0, 2, 1),
			Proto:   flow.ProtoUDP,
			DstPort: 53,
			Packets: 2,
			Bytes:   100,
		}
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s.ResetStats()
	iv := flow.Interval{Start: 0, End: 110} // partial bin: sidecar cannot answer alone
	flows, packets, bytes, err := s.Count(t.Context(), iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantFlows := uint64(0)
	for i := 0; i < n; i++ {
		if uint32(i*300/n) < 110 {
			wantFlows++
		}
	}
	if flows != wantFlows || packets != 2*wantFlows || bytes != 100*wantFlows {
		t.Fatalf("Count = (%d,%d,%d), want (%d,%d,%d)",
			flows, packets, bytes, wantFlows, 2*wantFlows, 100*wantFlows)
	}
	st := s.Stats()
	if st.BlocksAggregated == 0 {
		t.Errorf("no blocks aggregated from metas: %+v", st)
	}
	if st.BlocksPruned == 0 {
		t.Errorf("no blocks pruned: %+v", st)
	}
	if st.BlocksScanned == 0 {
		t.Errorf("no boundary block scanned: %+v", st)
	}
	// Aggregated blocks must not inflate RecordsScanned.
	if st.RecordsScanned >= n {
		t.Errorf("RecordsScanned = %d, want far fewer than %d", st.RecordsScanned, n)
	}
}

// TestMixedFormatStore: a store holding both v1 and v2 segments (the
// mid-migration state) queries seamlessly across the format boundary.
func TestMixedFormatStore(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateFormat(dir, 300, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	var all []flow.Record
	add := func(bin int) {
		for i := 0; i < 700; i++ {
			r := randRecord(rng, 300)
			r.Start += uint32(bin * 300)
			all = append(all, r)
			if err := s.Add(&r); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(0) // bin 0 in v1
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSegmentFormat(FormatV2); err != nil {
		t.Fatal(err)
	}
	add(1) // bin 1 in v2
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	counts, err := s.SegmentFormats()
	if err != nil {
		t.Fatal(err)
	}
	if counts[FormatV1] != 1 || counts[FormatV2] != 1 {
		t.Fatalf("SegmentFormats = %v, want one of each", counts)
	}

	iv := flow.Interval{Start: 0, End: 600}
	got, err := s.Records(t.Context(), iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("mixed store returned %d records, want %d", len(got), len(all))
	}

	// Appending to an existing segment keeps that segment's format, not
	// the store default.
	add(0)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	counts, err = s.SegmentFormats()
	if err != nil {
		t.Fatal(err)
	}
	if counts[FormatV1] != 1 || counts[FormatV2] != 1 {
		t.Fatalf("after append, SegmentFormats = %v, want still one of each", counts)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the mixed store reads back whole.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.Records(t.Context(), iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("reopened mixed store returned %d records, want %d", len(got), len(all))
	}
}
