package nfstore

import (
	"context"
	"math/rand"
	"os"
	"testing"

	"repro/internal/flow"
)

// stripSidecars deletes every sidecar file and clears the cache,
// simulating a pre-index archive.
func stripSidecars(t *testing.T, s *Store) {
	t.Helper()
	for _, p := range sidecarPaths(t, s.dir) {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	s.zmc = zmCache{}
}

// TestAsyncSeedOnPreIndexAppend: the first append to an existing
// unindexed segment no longer scans it synchronously — the seed runs in
// the background and the next flush writes a sidecar covering both the
// pre-existing records and the new appends.
func TestAsyncSeedOnPreIndexAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	const preExisting = 3000
	for i := 0; i < preExisting; i++ {
		r := randRecord(rng, 300)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen as a pre-index archive.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	stripSidecars(t, s2)

	// First append: must return without a sidecar for the bin (the seed
	// is asynchronous) and must not lose the record.
	extra := randRecord(rng, 300)
	if err := s2.Add(&extra); err != nil {
		t.Fatal(err)
	}
	// The seed is running (or done) in the background; wait it out, then
	// flush so the merged zone map lands on disk.
	s2.seedWG.Wait()
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	z := s2.loadZoneMap(0)
	if z == nil {
		t.Fatal("no valid sidecar after seed + flush")
	}
	if z.count != preExisting+1 {
		t.Fatalf("sidecar counts %d records, want %d", z.count, preExisting+1)
	}

	// The sidecar must agree byte-for-byte with a from-scratch scan of
	// the final segment (merge(seed, delta) == full-scan zone map).
	want, err := s2.buildZoneMap(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if *z != *want {
		t.Fatalf("merged zone map diverges from full scan:\n got %+v\nwant %+v", z, want)
	}
}

// TestAsyncSeedQueriesStayCorrect: queries racing the background seed
// see every record (flushed before the reopen) plus the new appends
// after their flush.
func TestAsyncSeedQueriesStayCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	const preExisting = 2000
	for i := 0; i < preExisting; i++ {
		r := randRecord(rng, 300)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	stripSidecars(t, s2)

	r := randRecord(rng, 300)
	if err := s2.Add(&r); err != nil {
		t.Fatal(err)
	}
	// Query while the seed may still be in flight: the flushed prefix is
	// all a reader may rely on.
	iv := flow.Interval{Start: 0, End: 300}
	flows, _, _, err := s2.Count(context.Background(), iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != preExisting {
		t.Fatalf("pre-flush count = %d, want %d", flows, preExisting)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	flows, _, _, err = s2.Count(context.Background(), iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != preExisting+1 {
		t.Fatalf("post-flush count = %d, want %d", flows, preExisting+1)
	}
}

// TestAsyncSeedCanceledByClose: Close while a seed scan runs cancels it
// and still closes cleanly; the segment simply stays scan-only.
func TestAsyncSeedCanceledByClose(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		r := randRecord(rng, 300)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stripSidecars(t, s2)
	r := randRecord(rng, 300)
	if err := s2.Add(&r); err != nil {
		t.Fatal(err)
	}
	// Close immediately: the seed may be mid-scan; Close must cancel it,
	// wait it out, and not corrupt anything.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// The store stays fully queryable (rebuilding sidecars lazily).
	flows, _, _, err := s2.Count(context.Background(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != 5001 {
		t.Fatalf("count after close = %d, want 5001", flows)
	}
}

// TestZoneMapMerge pins merge() against a from-scratch build over the
// concatenated record stream.
func TestZoneMapMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a, b, both := newZoneMap(), newZoneMap(), newZoneMap()
	for i := 0; i < 500; i++ {
		r := randRecord(rng, 300)
		a.add(&r)
		both.add(&r)
	}
	for i := 0; i < 300; i++ {
		r := randRecord(rng, 300)
		b.add(&r)
		both.add(&r)
	}
	a.merge(b)
	if *a != *both {
		t.Fatalf("merge diverges from sequential build:\n got %+v\nwant %+v", a, both)
	}
	// Merging nil and empty is a no-op; merging into empty copies.
	cp := *both
	cp.merge(nil)
	cp.merge(newZoneMap())
	if cp != *both {
		t.Fatal("nil/empty merge must not change the target")
	}
	empty := newZoneMap()
	empty.merge(both)
	if *empty != *both {
		t.Fatal("merge into empty must copy")
	}
}

// TestZoneMapCacheLRU: the cache holds at most its cap, evicting the
// least recently touched bin first.
func TestZoneMapCacheLRU(t *testing.T) {
	var c zmCache
	c.setCap(2)
	z1, z2, z3 := newZoneMap(), newZoneMap(), newZoneMap()
	c.put(100, z1)
	c.put(200, z2)
	if c.get(100) != z1 { // touch 100: 200 becomes LRU
		t.Fatal("get(100) missed")
	}
	c.put(300, z3)
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	if c.get(200) != nil {
		t.Fatal("LRU bin 200 not evicted")
	}
	if c.get(100) != z1 || c.get(300) != z3 {
		t.Fatal("recently used entries evicted")
	}
	// Re-putting an existing bin updates in place without eviction.
	z1b := newZoneMap()
	c.put(100, z1b)
	if c.len() != 2 || c.get(100) != z1b {
		t.Fatal("in-place update misbehaved")
	}
	// Shrinking the cap evicts immediately.
	c.setCap(1)
	if c.len() != 1 {
		t.Fatalf("post-shrink len = %d, want 1", c.len())
	}
}

// TestZoneMapCacheDefaultCap: with no explicit cap the default applies.
func TestZoneMapCacheDefaultCap(t *testing.T) {
	var c zmCache
	for bin := uint32(0); bin < defaultZoneMapCacheEntries+50; bin++ {
		c.put(bin*300, newZoneMap())
	}
	if c.len() != defaultZoneMapCacheEntries {
		t.Fatalf("cache len = %d, want default cap %d", c.len(), defaultZoneMapCacheEntries)
	}
}

// TestStoreZoneMapCacheBound: a sweep over more segments than the
// configured cap keeps the cache bounded while queries stay correct.
func TestStoreZoneMapCacheBound(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := randFilterStore(t, rng, 2000, 24) // 24 bins
	s.SetZoneMapCacheSize(4)
	span := flow.Interval{Start: 0, End: 24 * 300}
	wantFlows, _, _, err := s.Count(context.Background(), span, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wantFlows != 2000 {
		t.Fatalf("count = %d, want 2000", wantFlows)
	}
	// Sweep bin by bin (each loadZoneMap fills the cache) and verify the
	// bound holds.
	if _, err := s.Summaries(context.Background(), span, nil); err != nil {
		t.Fatal(err)
	}
	if n := s.zmc.len(); n > 4 {
		t.Fatalf("cache holds %d entries, cap 4", n)
	}
	// Evictions must not change results.
	again, _, _, err := s.Count(context.Background(), span, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again != wantFlows {
		t.Fatalf("post-eviction count = %d, want %d", again, wantFlows)
	}
}

// TestSummariesListsBinsOnce: one Summaries call over a many-bin store
// matches per-bin Counts, and per-bin planning goes through the shared
// bin listing (the segments-considered counter grows by exactly the
// overlapping bin count, as with Count, while ReadDir now happens once —
// pinned by the benchmark, asserted here via correctness).
func TestSummariesListsBinsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	s := randFilterStore(t, rng, 3000, 16)
	span := flow.Interval{Start: 0, End: 16 * 300}
	sums, err := s.Summaries(context.Background(), span, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 16 {
		t.Fatalf("%d summaries, want 16", len(sums))
	}
	var total uint64
	for _, bs := range sums {
		flows, packets, bytes, err := s.Count(context.Background(), bs.Bin, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bs.Flows != flows || bs.Packets != packets || bs.Bytes != bytes {
			t.Fatalf("bin %v summary %+v != count (%d,%d,%d)", bs.Bin, bs, flows, packets, bytes)
		}
		total += bs.Flows
	}
	if total != 3000 {
		t.Fatalf("summaries total %d flows, want 3000", total)
	}
}

// BenchmarkSummariesWarmup measures the warm-up sweep the satellite
// optimizes: Summaries over every bin of a store whose sidecars are all
// cached (the directory listing is the remaining per-bin cost).
func BenchmarkSummariesWarmup(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	s, err := Create(b.TempDir(), 300)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const bins = 96
	for i := 0; i < 4800; i++ {
		r := randRecord(rng, bins*300)
		if err := s.Add(&r); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	span := flow.Interval{Start: 0, End: bins * 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sums, err := s.Summaries(context.Background(), span, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(sums) != bins {
			b.Fatalf("%d summaries", len(sums))
		}
	}
}
