package nfstore

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

func testRecord(start uint32, srcLast byte, dstPort uint16, packets uint64) flow.Record {
	return flow.Record{
		Start:   start,
		Dur:     1000,
		SrcIP:   flow.IPFromOctets(10, 0, 0, srcLast),
		DstIP:   flow.MustParseIP("192.0.2.1"),
		SrcPort: 40000,
		DstPort: dstPort,
		Proto:   flow.ProtoTCP,
		Flags:   flow.TCPSyn,
		Router:  1,
		Packets: packets,
		Bytes:   packets * 40,
	}
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(start, dur, src, dst uint32, sp, dp, router, anno uint16, proto, flags uint8, pk, by uint64) bool {
		in := flow.Record{
			Start: start, Dur: dur,
			SrcIP: flow.IP(src), DstIP: flow.IP(dst),
			SrcPort: sp, DstPort: dp,
			Proto: flow.Protocol(proto), Flags: flags,
			Router: router, Anno: flow.Annotation(anno),
			Packets: pk, Bytes: by,
		}
		var buf [RecordSize]byte
		encodeRecord(buf[:], &in)
		var out flow.Record
		decodeRecord(buf[:], &out)
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 600)
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord(1200, 1, 80, 5)
	if err := s.Add(&r); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.BinSeconds() != 600 {
		t.Fatalf("BinSeconds = %d", s2.BinSeconds())
	}
	got, err := s2.Records(t.Context(), flow.Interval{Start: 0, End: 10000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != r {
		t.Fatalf("reopened store returned %+v", got)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, 300); err == nil {
		t.Fatal("second Create must fail")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of missing store must fail")
	}
}

func TestAddValidates(t *testing.T) {
	s := newTestStore(t)
	bad := testRecord(0, 1, 80, 0) // zero packets
	if err := s.Add(&bad); err == nil {
		t.Fatal("Add must reject invalid records")
	}
}

func TestBinRouting(t *testing.T) {
	s := newTestStore(t)
	// Three records across two 300 s bins.
	for _, start := range []uint32{100, 299, 300} {
		r := testRecord(start, 1, 80, 2)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bins, err := s.Bins()
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 || bins[0] != 0 || bins[1] != 300 {
		t.Fatalf("Bins = %v", bins)
	}
	span, ok, err := s.Span()
	if err != nil || !ok {
		t.Fatalf("Span: %v %v", ok, err)
	}
	if span.Start != 0 || span.End != 600 {
		t.Fatalf("Span = %+v", span)
	}
	// Interval query must honor record-level bounds, not only bins.
	got, err := s.Records(t.Context(), flow.Interval{Start: 200, End: 301}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("window query returned %d records, want 2", len(got))
	}
}

func TestQueryFilterPushdown(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 50; i++ {
		port := uint16(80)
		if i%2 == 1 {
			port = 443
		}
		r := testRecord(uint32(10+i), byte(i), port, 3)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	iv := flow.Interval{Start: 0, End: 1000}
	got, err := s.Records(t.Context(), iv, nffilter.MustParse("dst port 80"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("filtered query returned %d, want 25", len(got))
	}
	flows, packets, bytes, err := s.Count(t.Context(), iv, nffilter.MustParse("dst port 443"))
	if err != nil {
		t.Fatal(err)
	}
	if flows != 25 || packets != 75 || bytes != 75*40 {
		t.Fatalf("Count = %d flows %d packets %d bytes", flows, packets, bytes)
	}
}

func TestQueryEarlyStop(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 10; i++ {
		r := testRecord(uint32(i), byte(i), 80, 1)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	n := 0
	err := s.Query(t.Context(), flow.Interval{Start: 0, End: 100}, nil, func(*flow.Record) error {
		n++
		if n == 3 {
			return ErrStopIteration
		}
		return nil
	})
	if err != nil {
		t.Fatalf("early stop must not surface an error: %v", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times, want 3", n)
	}
}

func TestQueryReusesRecord(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 3; i++ {
		r := testRecord(uint32(i), byte(i), 80, 1)
		s.Add(&r)
	}
	s.Flush()
	var ptrs []*flow.Record
	s.Query(t.Context(), flow.Interval{Start: 0, End: 100}, nil, func(r *flow.Record) error {
		ptrs = append(ptrs, r)
		return nil
	})
	if len(ptrs) == 3 && !(ptrs[0] == ptrs[1] && ptrs[1] == ptrs[2]) {
		t.Fatal("documented contract: the record pointer is reused across calls")
	}
}

func TestTruncatedSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord(10, 1, 80, 1)
	s.Add(&r)
	s.Close()
	// Truncate the tail of the single segment.
	path := s.segPath(0)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	err = s.Query(t.Context(), flow.Interval{Start: 0, End: 100}, nil, func(*flow.Record) error { return nil })
	if err == nil {
		t.Fatal("truncated segment must be reported")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, segPrefix+"garbage"), []byte("hi"), 0o644)
	bins, err := s.Bins()
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 0 {
		t.Fatalf("Bins should ignore foreign files, got %v", bins)
	}
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Create(dir, 300)
	r1 := testRecord(10, 1, 80, 1)
	s.Add(&r1)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := testRecord(20, 2, 443, 2)
	if err := s2.Add(&r2); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	got, err := s2.Records(t.Context(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("after reopen+append, %d records, want 2", len(got))
	}
}

func TestTopN(t *testing.T) {
	s := newTestStore(t)
	// Port 80: 10 flows of 1 packet. Port 443: 2 flows of 100 packets.
	for i := 0; i < 10; i++ {
		r := testRecord(uint32(i), byte(i), 80, 1)
		s.Add(&r)
	}
	for i := 0; i < 2; i++ {
		r := testRecord(uint32(20+i), byte(100+i), 443, 100)
		s.Add(&r)
	}
	s.Flush()
	iv := flow.Interval{Start: 0, End: 300}

	byFlows, err := s.TopN(t.Context(), iv, nil, flow.FeatDstPort, ByFlows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(byFlows) != 1 || byFlows[0].Value != 80 || byFlows[0].Count != 10 {
		t.Fatalf("TopN by flows = %+v", byFlows)
	}

	byPackets, err := s.TopN(t.Context(), iv, nil, flow.FeatDstPort, ByPackets, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(byPackets) != 1 || byPackets[0].Value != 443 || byPackets[0].Count != 200 {
		t.Fatalf("TopN by packets = %+v", byPackets)
	}
}

func TestSummaries(t *testing.T) {
	s := newTestStore(t)
	for _, start := range []uint32{10, 20, 310} {
		r := testRecord(start, 1, 80, 5)
		s.Add(&r)
	}
	s.Flush()
	sums, err := s.Summaries(t.Context(), flow.Interval{Start: 0, End: 600}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Flows != 2 || sums[0].Packets != 10 {
		t.Fatalf("bin 0 summary = %+v", sums[0])
	}
	if sums[1].Flows != 1 {
		t.Fatalf("bin 1 summary = %+v", sums[1])
	}
}

func TestWeightOf(t *testing.T) {
	r := testRecord(0, 1, 80, 7)
	if ByFlows.Of(&r) != 1 || ByPackets.Of(&r) != 7 || ByBytes.Of(&r) != 280 {
		t.Fatal("Weight.Of wrong")
	}
	if ByFlows.String() != "flows" || ByPackets.String() != "packets" || ByBytes.String() != "bytes" {
		t.Fatal("Weight.String wrong")
	}
}
