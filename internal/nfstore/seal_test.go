package nfstore

import (
	"context"
	"testing"

	"repro/internal/flow"
)

// TestSealCommitsBin pins the streaming seal contract: Seal(t) flushes
// the bin containing t to disk, writes its sidecar, retires the open
// writer, and fires the OnSeal hook — without touching other open bins.
func TestSealCommitsBin(t *testing.T) {
	s := newTestStore(t)
	var sealed []uint32
	s.OnSeal(func(bin uint32) { sealed = append(sealed, bin) })

	for i := byte(0); i < 10; i++ {
		r := testRecord(100, i, 80, 5) // bin 0
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
		r = testRecord(400, i, 80, 5) // bin 300
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(100); err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 1 || sealed[0] != 0 {
		t.Fatalf("OnSeal fired with %v, want [0]", sealed)
	}

	// The sealed bin is durable and queryable with no Flush; bin 300
	// stays open.
	recs, err := s.Records(context.Background(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("sealed bin holds %d records, want 10", len(recs))
	}
	s.mu.RLock()
	_, bin0Open := s.open[0]
	_, bin300Open := s.open[300]
	s.mu.RUnlock()
	if bin0Open {
		t.Fatal("sealed bin 0 still has an open writer")
	}
	if !bin300Open {
		t.Fatal("untouched bin 300 lost its open writer")
	}

	// The seal produced the zone-map sidecar alongside the segment.
	if zm := s.loadZoneMap(0); zm == nil {
		t.Fatal("sealed bin has no readable sidecar")
	}
}

// TestSealEmptyBinFiresHook pins that sealing a bin with no open writer
// is a no-op that still notifies — the pipeline seals on clock
// boundaries whether or not records arrived.
func TestSealEmptyBinFiresHook(t *testing.T) {
	s := newTestStore(t)
	var sealed []uint32
	s.OnSeal(func(bin uint32) { sealed = append(sealed, bin) })
	if err := s.Seal(923); err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 1 || sealed[0] != 900 {
		t.Fatalf("OnSeal fired with %v, want [900]", sealed)
	}
}

// TestSealThenAppend pins that a late record after a seal reopens the
// bin's segment and both the sealed and the late records survive.
func TestSealThenAppend(t *testing.T) {
	s := newTestStore(t)
	r := testRecord(50, 1, 80, 3)
	if err := s.Add(&r); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(50); err != nil {
		t.Fatal(err)
	}
	late := testRecord(60, 2, 80, 3)
	if err := s.Add(&late); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(60); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Records(context.Background(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("bin holds %d records after seal+append+seal, want 2", len(recs))
	}
}
