package nfstore

import (
	"context"
	"errors"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// seedIterStore writes a few bins of records and flushes.
func seedIterStore(t *testing.T) (*Store, flow.Interval) {
	t.Helper()
	s := newTestStore(t)
	base := uint32(1_000_200)
	for bin := 0; bin < 3; bin++ {
		for i := 0; i < 40; i++ {
			r := testRecord(base+uint32(bin)*300+uint32(i), byte(i%7), uint16(80+bin), uint64(i+1))
			if err := s.Add(&r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s, flow.Interval{Start: base, End: base + 3*300}
}

func TestIterMatchesRecords(t *testing.T) {
	s, iv := seedIterStore(t)
	for _, expr := range []string{"", "src ip 10.0.0.1", "dst port 81"} {
		var f *nffilter.Filter
		if expr != "" {
			var err error
			f, err = nffilter.Parse(expr)
			if err != nil {
				t.Fatal(err)
			}
		}
		want, err := s.Records(t.Context(), iv, f)
		if err != nil {
			t.Fatal(err)
		}
		var got []flow.Record
		for r, err := range s.Iter(t.Context(), iv, f) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, *r) // the yielded record is reused; copy
		}
		if len(got) != len(want) {
			t.Fatalf("filter %q: Iter yielded %d records, Records %d", expr, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("filter %q: record %d differs: %v vs %v", expr, i, got[i], want[i])
			}
		}
	}
}

func TestIterEarlyBreak(t *testing.T) {
	s, iv := seedIterStore(t)
	n := 0
	for _, err := range s.Iter(t.Context(), iv, nil) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("broke at %d records, want 5", n)
	}
	// The store stays usable after an early break.
	if _, err := s.Records(t.Context(), iv, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterCancelled(t *testing.T) {
	s, iv := seedIterStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawErr := false
	for r, err := range s.Iter(ctx, iv, nil) {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got %v, want context.Canceled", err)
			}
			if r != nil {
				t.Fatal("terminal iteration must yield a nil record")
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("cancelled Iter must yield the context error")
	}
}
