package nfstore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// randRecord draws a record whose fields cluster enough for filters to
// select non-trivially: a few dozen hosts, a handful of ports and
// protocols, heavy-tailed counters.
func randRecord(rng *rand.Rand, span uint32) flow.Record {
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP, 47}
	ports := []uint16{22, 53, 80, 443, 8080, uint16(rng.Intn(65536))}
	r := flow.Record{
		Start:   uint32(rng.Intn(int(span))),
		Dur:     uint32(rng.Intn(10_000)),
		SrcIP:   flow.IPFromOctets(10, 0, byte(rng.Intn(4)), byte(rng.Intn(40))),
		DstIP:   flow.IPFromOctets(192, 0, 2, byte(rng.Intn(40))),
		SrcPort: ports[rng.Intn(len(ports))],
		DstPort: ports[rng.Intn(len(ports))],
		Proto:   protos[rng.Intn(len(protos))],
		Router:  uint16(rng.Intn(4)),
		Packets: uint64(1 + rng.Intn(1000)),
	}
	r.Bytes = r.Packets * uint64(40+rng.Intn(1400))
	if r.Proto == flow.ProtoTCP {
		r.Flags = uint8(rng.Intn(64))
	}
	return r
}

// randFilterStore fills a store with n random records over bins*300
// seconds and returns the records' span.
func randFilterStore(t *testing.T, rng *rand.Rand, n, bins int) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	span := uint32(bins * 300)
	for i := 0; i < n; i++ {
		r := randRecord(rng, span)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

// randPredicate builds one random leaf predicate.
func randPredicate(rng *rand.Rand) nffilter.Node {
	dir := nffilter.Dir(rng.Intn(3))
	op := nffilter.CmpOp(rng.Intn(6))
	switch rng.Intn(7) {
	case 0:
		return &nffilter.IPMatch{Dir: dir,
			Addr: flow.IPFromOctets(10, 0, byte(rng.Intn(4)), byte(rng.Intn(48)))}
	case 1:
		bits := 8 * (1 + rng.Intn(4))
		return &nffilter.NetMatch{Dir: dir,
			Prefix: flow.Prefix{Addr: flow.IPFromOctets(10, 0, byte(rng.Intn(4)), 0), Bits: bits}.Masked()}
	case 2:
		ports := []uint16{22, 53, 80, 443, 8080, uint16(rng.Intn(65536))}
		return &nffilter.PortMatch{Dir: dir, Op: op, Port: ports[rng.Intn(len(ports))]}
	case 3:
		protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP, 47, 50}
		return &nffilter.ProtoMatch{Proto: protos[rng.Intn(len(protos))]}
	case 4:
		fields := []nffilter.CounterField{nffilter.FieldPackets, nffilter.FieldBytes,
			nffilter.FieldDuration, nffilter.FieldRouter}
		return &nffilter.CounterMatch{Field: fields[rng.Intn(len(fields))], Op: op,
			Value: uint64(rng.Intn(2000))}
	case 5:
		return &nffilter.FlagsMatch{Mask: uint8(rng.Intn(64))}
	default:
		return nffilter.Any{}
	}
}

// randFilterNode builds a random AST of bounded depth.
func randFilterNode(rng *rand.Rand, depth int) nffilter.Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		return randPredicate(rng)
	}
	switch rng.Intn(3) {
	case 0:
		kids := make([]nffilter.Node, 1+rng.Intn(3))
		for i := range kids {
			kids[i] = randFilterNode(rng, depth-1)
		}
		return &nffilter.And{Kids: kids}
	case 1:
		kids := make([]nffilter.Node, 1+rng.Intn(3))
		for i := range kids {
			kids[i] = randFilterNode(rng, depth-1)
		}
		return &nffilter.Or{Kids: kids}
	default:
		return &nffilter.Not{Kid: randFilterNode(rng, depth-1)}
	}
}

// collectSerialUnpruned is the reference scan: pruning off, one worker.
func collectSerialUnpruned(t *testing.T, s *Store, iv flow.Interval, f *nffilter.Filter) []flow.Record {
	t.Helper()
	s.SetPruning(false)
	s.SetParallelism(1)
	defer func() {
		s.SetPruning(true)
		s.SetParallelism(0)
	}()
	recs, err := s.Records(t.Context(), iv, f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestQueryPrunedParallelEquivalence is the engine's core property: for
// random filters and spans, the pruned parallel scan returns exactly the
// serial unpruned scan's records, in the same order, and Count agrees.
func TestQueryPrunedParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randFilterStore(t, rng, 6000, 8)

	for trial := 0; trial < 120; trial++ {
		var f *nffilter.Filter
		if rng.Intn(8) != 0 { // occasionally a nil (match-all) filter
			f = nffilter.FromNode(randFilterNode(rng, 3))
		}
		lo := uint32(rng.Intn(9 * 300))
		hi := lo + uint32(rng.Intn(5*300))
		iv := flow.Interval{Start: lo, End: hi}

		want := collectSerialUnpruned(t, s, iv, f)

		s.SetParallelism(4)
		got, err := s.Records(t.Context(), iv, f)
		s.SetParallelism(0)
		if err != nil {
			t.Fatalf("trial %d filter %v: %v", trial, f, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d filter %v iv %v: pruned+parallel returned %d records, serial %d",
				trial, f, iv, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d filter %v: record %d differs:\n got %+v\nwant %+v",
					trial, f, i, got[i], want[i])
			}
		}

		// Count must agree with the materialized records even when it
		// answers some segments from sidecars alone.
		flows, packets, bytes, err := s.Count(t.Context(), iv, f)
		if err != nil {
			t.Fatalf("trial %d: Count: %v", trial, err)
		}
		var wantPk, wantBy uint64
		for i := range want {
			wantPk += want[i].Packets
			wantBy += want[i].Bytes
		}
		if flows != uint64(len(want)) || packets != wantPk || bytes != wantBy {
			t.Fatalf("trial %d filter %v: Count = (%d,%d,%d), want (%d,%d,%d)",
				trial, f, flows, packets, bytes, len(want), wantPk, wantBy)
		}
	}
}

// TestAggregationsEquivalence checks TopN and Summaries against the
// serial-unpruned engine across random filters.
func TestAggregationsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randFilterStore(t, rng, 3000, 6)
	iv := flow.Interval{Start: 0, End: 6 * 300}

	for trial := 0; trial < 40; trial++ {
		var f *nffilter.Filter
		if rng.Intn(6) != 0 {
			f = nffilter.FromNode(randFilterNode(rng, 2))
		}

		s.SetPruning(false)
		s.SetParallelism(1)
		wantTop, err := s.TopN(t.Context(), iv, f, flow.FeatDstPort, ByPackets, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantSums, err := s.Summaries(t.Context(), iv, f)
		if err != nil {
			t.Fatal(err)
		}
		s.SetPruning(true)
		s.SetParallelism(3)

		gotTop, err := s.TopN(t.Context(), iv, f, flow.FeatDstPort, ByPackets, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotSums, err := s.Summaries(t.Context(), iv, f)
		if err != nil {
			t.Fatal(err)
		}
		s.SetParallelism(0)

		if fmt.Sprint(gotTop) != fmt.Sprint(wantTop) {
			t.Fatalf("trial %d filter %v: TopN\n got %v\nwant %v", trial, f, gotTop, wantTop)
		}
		if fmt.Sprint(gotSums) != fmt.Sprint(wantSums) {
			t.Fatalf("trial %d filter %v: Summaries\n got %v\nwant %v", trial, f, gotSums, wantSums)
		}
	}
}

// TestPruningObservable asserts the scan-stats counters actually show
// segments being skipped for a selective filter and pushed down for an
// unfiltered Count.
func TestPruningObservable(t *testing.T) {
	s := newTestStore(t)
	// 10 bins of port-80 traffic from 10.0.0.x; one bin also holds flows
	// from a distinctive source.
	needle := flow.MustParseIP("172.16.9.9")
	for b := 0; b < 10; b++ {
		for i := 0; i < 50; i++ {
			r := testRecord(uint32(b*300+i), byte(i), 80, 2)
			if err := s.Add(&r); err != nil {
				t.Fatal(err)
			}
		}
	}
	hot := testRecord(5*300+7, 1, 80, 2)
	hot.SrcIP = needle
	if err := s.Add(&hot); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	iv := flow.Interval{Start: 0, End: 3000}

	s.ResetStats()
	got, err := s.Records(t.Context(), iv, nffilter.MustParse("src ip 172.16.9.9"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != hot {
		t.Fatalf("selective query returned %v", got)
	}
	st := s.Stats()
	if st.SegmentsConsidered != 10 {
		t.Fatalf("considered %d segments, want 10", st.SegmentsConsidered)
	}
	if st.SegmentsPruned != 9 {
		t.Fatalf("pruned %d segments, want 9 (stats %+v)", st.SegmentsPruned, st)
	}
	if st.SegmentsScanned != 1 {
		t.Fatalf("scanned %d segments, want 1", st.SegmentsScanned)
	}

	// Unfiltered Count over the full span: all sidecar, no scan.
	s.ResetStats()
	flows, _, _, err := s.Count(t.Context(), iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != 501 {
		t.Fatalf("Count = %d, want 501", flows)
	}
	st = s.Stats()
	if st.SegmentsAggregated != 10 || st.SegmentsScanned != 0 || st.RecordsScanned != 0 {
		t.Fatalf("unfiltered Count should be pure pushdown, stats %+v", st)
	}

	// Fully-covered filter ("proto tcp" when the store is all-TCP): still
	// pure pushdown.
	s.ResetStats()
	flows, _, _, err = s.Count(t.Context(), iv, nffilter.MustParse("proto tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if flows != 501 {
		t.Fatalf("proto tcp Count = %d, want 501", flows)
	}
	if st = s.Stats(); st.SegmentsAggregated != 10 || st.SegmentsScanned != 0 {
		t.Fatalf("covered-filter Count should push down, stats %+v", st)
	}
}

// TestParallelEarlyStopAndReuse checks ErrStopIteration semantics and the
// reused-record contract under the parallel merger.
func TestParallelEarlyStopAndReuse(t *testing.T) {
	s := cancelStore(t, 4, 2000)
	s.SetParallelism(4)
	defer s.SetParallelism(0)

	n := 0
	var ptrs map[*flow.Record]bool
	err := s.Query(t.Context(), flow.Interval{Start: 0, End: 1200}, nil, func(r *flow.Record) error {
		if ptrs == nil {
			ptrs = map[*flow.Record]bool{}
		}
		ptrs[r] = true
		n++
		if n == 700 {
			return ErrStopIteration
		}
		return nil
	})
	if err != nil {
		t.Fatalf("early stop surfaced error: %v", err)
	}
	if n != 700 {
		t.Fatalf("callback ran %d times, want 700", n)
	}
	if len(ptrs) != 1 {
		t.Fatalf("parallel merge used %d distinct record pointers, contract says 1", len(ptrs))
	}
}
