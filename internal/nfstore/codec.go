package nfstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/flow"
)

// RecordSize is the fixed on-disk size of one encoded flow record.
const RecordSize = 42

// segMagic starts every segment file ("NFSG" little-endian).
const segMagic = 0x4753464e

// segHeaderSize is the fixed segment header: magic(4) version(2)
// reserved(2) binStart(4) binSeconds(4). The version field declares the
// body format: FormatV1 fixed rows or FormatV2 column blocks.
const segHeaderSize = 16

// encodeRecord packs r into buf, which must be at least RecordSize bytes.
// The layout is little-endian and position-fixed so that segment files are
// seekable by record index.
func encodeRecord(buf []byte, r *flow.Record) {
	_ = buf[RecordSize-1] // bounds hint
	binary.LittleEndian.PutUint32(buf[0:], r.Start)
	binary.LittleEndian.PutUint32(buf[4:], r.Dur)
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.SrcIP))
	binary.LittleEndian.PutUint32(buf[12:], uint32(r.DstIP))
	binary.LittleEndian.PutUint16(buf[16:], r.SrcPort)
	binary.LittleEndian.PutUint16(buf[18:], r.DstPort)
	buf[20] = byte(r.Proto)
	buf[21] = r.Flags
	binary.LittleEndian.PutUint16(buf[22:], r.Router)
	binary.LittleEndian.PutUint16(buf[24:], uint16(r.Anno))
	binary.LittleEndian.PutUint64(buf[26:], r.Packets)
	binary.LittleEndian.PutUint64(buf[34:], r.Bytes)
}

// decodeRecord unpacks a record from buf (at least RecordSize bytes).
func decodeRecord(buf []byte, r *flow.Record) {
	_ = buf[RecordSize-1]
	r.Start = binary.LittleEndian.Uint32(buf[0:])
	r.Dur = binary.LittleEndian.Uint32(buf[4:])
	r.SrcIP = flow.IP(binary.LittleEndian.Uint32(buf[8:]))
	r.DstIP = flow.IP(binary.LittleEndian.Uint32(buf[12:]))
	r.SrcPort = binary.LittleEndian.Uint16(buf[16:])
	r.DstPort = binary.LittleEndian.Uint16(buf[18:])
	r.Proto = flow.Protocol(buf[20])
	r.Flags = buf[21]
	r.Router = binary.LittleEndian.Uint16(buf[22:])
	r.Anno = flow.Annotation(binary.LittleEndian.Uint16(buf[24:]))
	r.Packets = binary.LittleEndian.Uint64(buf[26:])
	r.Bytes = binary.LittleEndian.Uint64(buf[34:])
}

// encodeSegHeader writes a segment header for the bin starting at
// binStart, declaring the given body format version.
func encodeSegHeader(buf []byte, version uint16, binStart, binSeconds uint32) {
	_ = buf[segHeaderSize-1]
	binary.LittleEndian.PutUint32(buf[0:], segMagic)
	binary.LittleEndian.PutUint16(buf[4:], version)
	binary.LittleEndian.PutUint16(buf[6:], 0)
	binary.LittleEndian.PutUint32(buf[8:], binStart)
	binary.LittleEndian.PutUint32(buf[12:], binSeconds)
}

// decodeSegHeader validates and unpacks a segment header, returning the
// body format version alongside the bin coordinates. The error message
// distinguishes corruption (bad magic, impossible version 0) from a
// well-formed segment written in a format newer than this build reads,
// and says what to do about the latter.
func decodeSegHeader(buf []byte) (binStart, binSeconds uint32, version uint16, err error) {
	if len(buf) < segHeaderSize {
		return 0, 0, 0, fmt.Errorf("nfstore: short segment header (%d bytes, want %d): file is truncated or not a segment", len(buf), segHeaderSize)
	}
	if got := binary.LittleEndian.Uint32(buf[0:]); got != segMagic {
		return 0, 0, 0, fmt.Errorf("nfstore: bad segment magic %#x (want %#x): file is corrupt or not a segment", got, segMagic)
	}
	v := binary.LittleEndian.Uint16(buf[4:])
	switch {
	case v == 0:
		return 0, 0, 0, fmt.Errorf("nfstore: segment declares version 0, which was never a valid format: header is corrupt")
	case v > segVersionMax:
		return 0, 0, 0, fmt.Errorf("nfstore: segment format version %d is newer than this build reads (supported: %d-%d): upgrade the reader, or rewrite the store with a newer build's migrate tool", v, FormatV1, segVersionMax)
	}
	return binary.LittleEndian.Uint32(buf[8:]), binary.LittleEndian.Uint32(buf[12:]), v, nil
}
