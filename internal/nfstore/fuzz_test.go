package nfstore

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// fuzzBlockSeeds are the in-code seed inputs for FuzzDecodeBlock; the
// same bytes are committed under testdata/fuzz/ (see
// TestWriteFuzzCorpus) so `go test -fuzz` starts from structure-aware
// corpora even when run from a clean checkout.
func fuzzBlockSeeds() [][]byte {
	recs := goldenRecords()
	seeds := [][]byte{
		appendBlock(nil, recs[:1]),
		appendBlock(nil, recs[:300]),
		appendBlock(nil, recs),
		{},
		bytes.Repeat([]byte{0}, blockHeaderSize),
	}
	// A few structured mutants: flipped magic, inflated count, clipped tail.
	m := append([]byte(nil), seeds[1]...)
	m[0] ^= 0xff
	seeds = append(seeds, m)
	m = append([]byte(nil), seeds[1]...)
	m[4] = 0xff
	seeds = append(seeds, m, seeds[1][:len(seeds[1])/2])
	return seeds
}

// FuzzDecodeBlock drives the block decoder stack — header, zone-map
// meta, column sections, row materialization — over arbitrary bytes.
// Any input may error; none may panic or hang.
func FuzzDecodeBlock(f *testing.F) {
	for _, s := range fuzzBlockSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := blockReader{br: bufio.NewReader(bytes.NewReader(data))}
		count, payload, err := rd.next()
		if err != nil {
			return
		}
		var meta zoneMap
		if err := decodeBlockMeta(payload, count, &meta); err != nil {
			t.Fatalf("readBlock accepted a payload decodeBlockMeta rejects: %v", err)
		}
		var batch colBatch
		if err := decodeBlockColumns(payload[blockMetaSize:], count, nffilter.AllColumns, &batch); err != nil {
			return
		}
		var r flow.Record
		for i := 0; i < count; i++ {
			batch.fill(&r, i, nffilter.AllColumns)
		}
	})
}

// fuzzSegmentSeeds: whole segment files, both formats, valid and broken.
func fuzzSegmentSeeds(tb testing.TB) [][]byte {
	var seeds [][]byte
	for _, format := range []uint16{FormatV1, FormatV2} {
		var hdr [segHeaderSize]byte
		encodeSegHeader(hdr[:], format, 0, 300)
		seeds = append(seeds, hdr[:]) // header-only (empty segment)
		path, _ := writeGoldenSegment(tb, format)
		raw, err := os.ReadFile(path)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, raw, raw[:len(raw)-9])
	}
	var future [segHeaderSize]byte
	encodeSegHeader(future[:], segVersionMax+3, 0, 300)
	seeds = append(seeds, future[:], []byte("not a segment at all"))
	return seeds
}

// FuzzDecodeSegment plants arbitrary bytes as a bin-0 segment file and
// runs the full query path over them: header validation, per-format
// scan, lazy sidecar rebuild. Errors are expected; panics are bugs.
func FuzzDecodeSegment(f *testing.F) {
	for _, s := range fuzzSegmentSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := CreateFormat(dir, 300, FormatV2)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := os.WriteFile(s.segPath(0), data, 0o644); err != nil {
			t.Fatal(err)
		}
		iv := flow.Interval{Start: 0, End: 300}
		filter, err := nffilter.Parse("proto udp and dst port 53")
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		s.Query(ctx, iv, nil, func(*flow.Record) error { return nil })
		s.Query(ctx, iv, filter, func(*flow.Record) error { return nil })
		s.Count(ctx, iv, filter)
	})
}

// TestWriteFuzzCorpus materializes the in-code seeds as corpus files in
// `go test fuzz v1` encoding under testdata/fuzz/<Target>/, where the
// fuzzing engine picks them up. Gated: run with UPDATE_GOLDEN=1 after
// changing the seed sets; the files are committed.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") == "" {
		t.Skip("corpus committed; set UPDATE_GOLDEN=1 to regenerate")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus files to %s", len(seeds), dir)
	}
	write("FuzzDecodeBlock", fuzzBlockSeeds())
	write("FuzzDecodeSegment", fuzzSegmentSeeds(t))
}
