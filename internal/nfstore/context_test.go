package nfstore

import (
	"context"
	"errors"
	"testing"

	"repro/internal/flow"
)

// cancelStore builds a store with several segments of records.
func cancelStore(t *testing.T, bins, perBin int) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for b := 0; b < bins; b++ {
		for i := 0; i < perBin; i++ {
			r := flow.Record{
				Start: uint32(b*300 + i%300), SrcIP: flow.IP(i + 1), DstIP: 2,
				SrcPort: 1, DstPort: 80, Proto: flow.ProtoTCP, Packets: 1, Bytes: 40,
			}
			if err := s.Add(&r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQueryCancelledBeforeStart(t *testing.T) {
	s := cancelStore(t, 2, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seen := 0
	err := s.Query(ctx, flow.Interval{Start: 0, End: 600}, nil, func(*flow.Record) error {
		seen++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen != 0 {
		t.Fatalf("callback ran %d times on a cancelled context", seen)
	}
}

func TestQueryCancelMidScan(t *testing.T) {
	// Several full ctxCheckStride windows per segment, so cancellation
	// from inside the callback must be observed within one stride —
	// well before the scan would otherwise finish.
	perBin := 4 * ctxCheckStride
	s := cancelStore(t, 3, perBin)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	err := s.Query(ctx, flow.Interval{Start: 0, End: 900}, nil, func(*flow.Record) error {
		seen++
		if seen == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen > ctxCheckStride {
		t.Fatalf("scan processed %d records after cancellation, want <= %d (one stride)",
			seen, ctxCheckStride)
	}
}

func TestRecordsAndCountPropagateCancellation(t *testing.T) {
	s := cancelStore(t, 1, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Records(ctx, flow.Interval{Start: 0, End: 300}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Records err = %v", err)
	}
	if _, _, _, err := s.Count(ctx, flow.Interval{Start: 0, End: 300}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Count err = %v", err)
	}
	if _, err := s.TopN(ctx, flow.Interval{Start: 0, End: 300}, nil, flow.FeatDstPort, ByFlows, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopN err = %v", err)
	}
	if _, err := s.Summaries(ctx, flow.Interval{Start: 0, End: 300}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Summaries err = %v", err)
	}
}
