package nfstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/flow"
)

// goldenRecords builds the fixture record set deterministically — its own
// tiny LCG, no math/rand, so the fixtures never move when the standard
// library's generator changes. The set exercises both dictionary shapes
// (constant columns, small dictionaries, >256 distinct source ports
// forcing the raw fallback) and non-monotonic timestamps and counters.
func goldenRecords() []flow.Record {
	state := uint64(0x2545F4914F6CDD1D)
	next := func(mod uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % mod
	}
	recs := make([]flow.Record, 600)
	for i := range recs {
		recs[i] = flow.Record{
			Start:   uint32(next(300)),
			Dur:     uint32(next(10_000)),
			SrcIP:   flow.IPFromOctets(10, 0, byte(next(4)), byte(next(200))),
			DstIP:   flow.IPFromOctets(192, 0, 2, byte(next(30))),
			SrcPort: uint16(1024 + next(20_000)), // ~600 distinct: raw fallback
			DstPort: []uint16{22, 53, 80, 443}[next(4)],
			Proto:   []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}[next(3)],
			Router:  uint16(next(4)),
			Anno:    flow.Annotation(next(3)),
			Packets: 1 + next(1_000_000),
		}
		recs[i].Bytes = recs[i].Packets * (40 + next(1400))
		if recs[i].Proto == flow.ProtoTCP {
			recs[i].Flags = uint8(next(64))
		}
	}
	return recs
}

func goldenPath(format uint16) string {
	name := map[uint16]string{FormatV1: "segment_v1.golden", FormatV2: "segment_v2.golden"}[format]
	return filepath.Join("testdata", name)
}

// writeGoldenSegment encodes the fixture records as a bin-0 segment of
// the given format through the production writer.
func writeGoldenSegment(tb testing.TB, format uint16) (path string, recs []flow.Record) {
	tb.Helper()
	dir := tb.TempDir()
	s, err := CreateFormat(dir, 300, format)
	if err != nil {
		tb.Fatal(err)
	}
	defer s.Close()
	recs = goldenRecords()
	for i := range recs {
		if err := s.Add(&recs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		tb.Fatal(err)
	}
	return s.segPath(0), recs
}

// TestGoldenSegments pins the on-disk bytes of both formats. A fixture
// mismatch means the encoder output changed: that breaks every store
// already on disk and must come with a new format version, not a silent
// byte shift. Regenerate intentionally with UPDATE_GOLDEN=1.
func TestGoldenSegments(t *testing.T) {
	for _, format := range []uint16{FormatV1, FormatV2} {
		path, recs := writeGoldenSegment(t, format)
		enc, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		golden := goldenPath(format)

		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", golden, len(enc))
			continue
		}

		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing fixture (run with UPDATE_GOLDEN=1 to create): %v", err)
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("v%d encoder output diverges from %s (%d vs %d bytes): "+
				"on-disk format changed — bump the format version instead",
				format, golden, len(enc), len(want))
		}

		// The fixture also decodes exactly, through a store that never
		// saw the writer: copy it in as bin 0 and read it back.
		dir := t.TempDir()
		s, err := CreateFormat(dir, 300, format)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.segPath(0), want, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := s.Records(t.Context(), flow.Interval{Start: 0, End: 300}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs) {
			t.Fatalf("v%d fixture decoded %d records, want %d", format, len(got), len(recs))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("v%d fixture record %d:\n got %+v\nwant %+v", format, i, got[i], recs[i])
			}
		}
		s.Close()
	}
}
