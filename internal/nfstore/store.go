package nfstore

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// DefaultBinSeconds is the measurement bin used when none is configured:
// 300 s, the 5-minute NetFlow aggregation both GEANT and SWITCH used.
const DefaultBinSeconds = 300

// metaFile holds store-level metadata next to the segments.
const metaFile = "store.json"

// segPrefix names segment files "nfcapd.<binStart>" after nfdump's capture
// files.
const segPrefix = "nfcapd."

// storeMeta is the persisted store configuration.
type storeMeta struct {
	Version    int    `json:"version"`
	BinSeconds uint32 `json:"bin_seconds"`
}

// Store is a directory of time-binned flow segments. It is safe for
// concurrent use: one writer goroutine and any number of readers (reads
// observe everything flushed before the read began).
type Store struct {
	dir        string
	binSeconds uint32

	mu   sync.RWMutex
	open map[uint32]*segWriter // open segment writers by bin start
}

// segWriter is an append handle to one segment file.
type segWriter struct {
	f   *os.File
	buf *bufio.Writer
	n   int // records written
}

// Create initializes a new store in dir (created if missing; must not
// already contain a store) with the given bin width in seconds.
func Create(dir string, binSeconds uint32) (*Store, error) {
	if binSeconds == 0 {
		binSeconds = DefaultBinSeconds
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nfstore: create %s: %w", dir, err)
	}
	metaPath := filepath.Join(dir, metaFile)
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("nfstore: store already exists in %s", dir)
	}
	meta := storeMeta{Version: 1, BinSeconds: binSeconds}
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("nfstore: encode meta: %w", err)
	}
	if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
		return nil, fmt.Errorf("nfstore: write meta: %w", err)
	}
	return &Store{dir: dir, binSeconds: binSeconds, open: map[uint32]*segWriter{}}, nil
}

// Open opens an existing store directory.
func Open(dir string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("nfstore: open %s: %w", dir, err)
	}
	var meta storeMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("nfstore: parse meta: %w", err)
	}
	if meta.BinSeconds == 0 {
		return nil, errors.New("nfstore: meta has zero bin size")
	}
	return &Store{dir: dir, binSeconds: meta.BinSeconds, open: map[uint32]*segWriter{}}, nil
}

// BinSeconds returns the store's measurement bin width.
func (s *Store) BinSeconds() uint32 { return s.binSeconds }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// binStart returns the start of the bin containing t.
func (s *Store) binStart(t uint32) uint32 { return t - t%s.binSeconds }

// Bin returns the interval of the measurement bin containing t.
func (s *Store) Bin(t uint32) flow.Interval {
	start := s.binStart(t)
	return flow.Interval{Start: start, End: start + s.binSeconds}
}

// segPath returns the segment file path for a bin start.
func (s *Store) segPath(binStart uint32) string {
	return filepath.Join(s.dir, segPrefix+strconv.FormatUint(uint64(binStart), 10))
}

// Add appends a record, routing it to the segment of its start-time bin.
// Invalid records are rejected rather than silently stored.
func (s *Store) Add(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	bin := s.binStart(r.Start)
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.open[bin]
	if !ok {
		var err error
		w, err = s.openSegment(bin)
		if err != nil {
			return err
		}
		s.open[bin] = w
	}
	var buf [RecordSize]byte
	encodeRecord(buf[:], r)
	if _, err := w.buf.Write(buf[:]); err != nil {
		return fmt.Errorf("nfstore: append to bin %d: %w", bin, err)
	}
	w.n++
	return nil
}

// AddAll appends a batch of records, stopping at the first error.
func (s *Store) AddAll(rs []flow.Record) error {
	for i := range rs {
		if err := s.Add(&rs[i]); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return nil
}

// openSegment opens (creating or appending) the segment for a bin.
// Caller holds s.mu.
func (s *Store) openSegment(bin uint32) (*segWriter, error) {
	path := s.segPath(bin)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nfstore: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nfstore: stat segment: %w", err)
	}
	w := &segWriter{f: f, buf: bufio.NewWriterSize(f, 1<<16)}
	if st.Size() == 0 {
		var hdr [segHeaderSize]byte
		encodeSegHeader(hdr[:], bin, s.binSeconds)
		if _, err := w.buf.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("nfstore: write segment header: %w", err)
		}
	}
	return w, nil
}

// Flush forces buffered appends to disk so that subsequent queries see
// them. It keeps segments open for further appends.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for bin, w := range s.open {
		if err := w.buf.Flush(); err != nil {
			return fmt.Errorf("nfstore: flush bin %d: %w", bin, err)
		}
	}
	return nil
}

// Close flushes and closes all open segments. The store remains usable for
// queries and further appends (segments reopen on demand).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for bin, w := range s.open {
		if err := w.buf.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("nfstore: flush bin %d: %w", bin, err)
		}
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("nfstore: close bin %d: %w", bin, err)
		}
		delete(s.open, bin)
	}
	return firstErr
}

// Bins lists the bin start times present on disk, ascending.
func (s *Store) Bins() ([]uint32, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("nfstore: list %s: %w", s.dir, err)
	}
	var bins []uint32
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(name, segPrefix), 10, 32)
		if err != nil {
			continue // foreign file; ignore
		}
		bins = append(bins, uint32(v))
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	return bins, nil
}

// Span returns the interval covered by the segments on disk (from the
// first bin's start to the last bin's end). ok is false for an empty store.
func (s *Store) Span() (iv flow.Interval, ok bool, err error) {
	bins, err := s.Bins()
	if err != nil || len(bins) == 0 {
		return flow.Interval{}, false, err
	}
	return flow.Interval{Start: bins[0], End: bins[len(bins)-1] + s.binSeconds}, true, nil
}

// ErrStopIteration can be returned by a Query callback to end iteration
// early without reporting an error to the caller.
var ErrStopIteration = errors.New("nfstore: stop iteration")

// ctxCheckStride is how many records a segment scan processes between
// context checks: frequent enough that cancellation lands well within one
// segment, rare enough that Err()'s mutex never shows up in profiles.
const ctxCheckStride = 1024

// Query streams every record whose start time falls in iv and which
// matches filter (nil means all) to fn, in bin order. The *flow.Record
// passed to fn is reused between calls: copy it if it must outlive fn.
// Cancelling ctx aborts the scan within one record stride and returns
// ctx.Err().
func (s *Store) Query(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error {
	bins, err := s.Bins()
	if err != nil {
		return err
	}
	var rec flow.Record
	buf := make([]byte, RecordSize)
	for _, bin := range bins {
		if err := ctx.Err(); err != nil {
			return err
		}
		seg := flow.Interval{Start: bin, End: bin + s.binSeconds}
		if !seg.Overlaps(iv) {
			continue
		}
		if err := s.scanSegment(ctx, bin, buf, &rec, iv, filter, fn); err != nil {
			if errors.Is(err, ErrStopIteration) {
				return nil
			}
			return err
		}
	}
	return nil
}

// scanSegment streams one segment file through fn.
func (s *Store) scanSegment(ctx context.Context, bin uint32, buf []byte, rec *flow.Record, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error {
	f, err := os.Open(s.segPath(bin))
	if err != nil {
		return fmt.Errorf("nfstore: open segment %d: %w", bin, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return fmt.Errorf("nfstore: segment %d header: %w", bin, err)
	}
	gotBin, gotBinSec, err := decodeSegHeader(hdr)
	if err != nil {
		return fmt.Errorf("nfstore: segment %d: %w", bin, err)
	}
	if gotBin != bin || gotBinSec != s.binSeconds {
		return fmt.Errorf("nfstore: segment %d header mismatch (bin %d, width %d)", bin, gotBin, gotBinSec)
	}
	for n := 0; ; n++ {
		if n%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				return nil
			}
			if err == io.ErrUnexpectedEOF {
				return fmt.Errorf("nfstore: segment %d truncated", bin)
			}
			return fmt.Errorf("nfstore: segment %d read: %w", bin, err)
		}
		decodeRecord(buf, rec)
		if !iv.Contains(rec.Start) {
			continue
		}
		if filter != nil && !filter.Match(rec) {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Records collects matching records into a slice. Convenience wrapper over
// Query for callers (like the miner) that need random access.
func (s *Store) Records(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]flow.Record, error) {
	var out []flow.Record
	err := s.Query(ctx, iv, filter, func(r *flow.Record) error {
		out = append(out, *r)
		return nil
	})
	return out, err
}

// Count returns the number of matching flow records and their packet and
// byte totals — the three volume dimensions the paper's miner weights
// itemsets by.
func (s *Store) Count(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) (flows, packets, bytes uint64, err error) {
	err = s.Query(ctx, iv, filter, func(r *flow.Record) error {
		flows++
		packets += r.Packets
		bytes += r.Bytes
		return nil
	})
	return flows, packets, bytes, err
}
