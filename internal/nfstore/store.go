package nfstore

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// DefaultBinSeconds is the measurement bin used when none is configured:
// 300 s, the 5-minute NetFlow aggregation both GEANT and SWITCH used.
const DefaultBinSeconds = 300

// metaFile holds store-level metadata next to the segments.
const metaFile = "store.json"

// segPrefix names segment files "nfcapd.<binStart>" after nfdump's capture
// files.
const segPrefix = "nfcapd."

// storeMeta is the persisted store configuration.
type storeMeta struct {
	Version    int    `json:"version"`
	BinSeconds uint32 `json:"bin_seconds"`
	// SegmentFormat is the format new segments are written in. Absent
	// (zero) in metas written before the columnar format existed, which
	// read as FormatV1 so old stores keep appending the bytes their other
	// readers expect. Existing segments keep their own format either way —
	// a store may hold a mix.
	SegmentFormat uint16 `json:"segment_format,omitempty"`
}

// Store is a directory of time-binned flow segments. It is safe for
// concurrent use: one writer goroutine and any number of readers (reads
// observe everything flushed before the read began).
//
// Each segment carries a zone-map sidecar ("nfcapd.<bin>.idx", written at
// flush time and rebuilt lazily for pre-index stores) that queries use to
// prune segments a filter provably cannot match and to answer aggregations
// without scanning; surviving segments are scanned by a bounded worker
// pool (SetParallelism) whose results merge back in bin order. Stats
// exposes counters for all of it.
type Store struct {
	dir        string
	binSeconds uint32

	mu     sync.RWMutex
	open   map[uint32]*segWriter // open segment writers by bin start
	onSeal func(bin uint32)      // fired after each successful Seal (see seal.go)

	par       atomic.Int32  // query parallelism (0 = auto)
	pruneOff  atomic.Bool   // zone-map pruning disabled
	zmc       zmCache       // decoded sidecars by bin (bounded LRU)
	stats     storeStats    // scan counters
	segFormat atomic.Uint32 // format for newly created segments

	// bgCtx cancels background work (async zone-map seed scans) at
	// Close; seedWG tracks the outstanding goroutines.
	bgCtx    context.Context
	bgCancel context.CancelFunc
	seedWG   sync.WaitGroup
}

// newStore assembles a Store with its background-work context.
func newStore(dir string, binSeconds uint32, format uint16) *Store {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Store{
		dir:        dir,
		binSeconds: binSeconds,
		open:       map[uint32]*segWriter{},
		bgCtx:      ctx,
		bgCancel:   cancel,
	}
	s.segFormat.Store(uint32(format))
	return s
}

// segWriter is an append handle to one segment file.
type segWriter struct {
	f      *os.File
	buf    *bufio.Writer
	format uint16   // body format of this segment (fixed at segment creation)
	off    int64    // bytes the segment will hold once sealed and flushed
	n      int      // records written
	zm     *zoneMap // live zone map (nil while a seed is pending or after it failed)

	// pend holds records of the current unsealed column block (FormatV2
	// only); enc is the reusable block encode buffer.
	pend []flow.Record
	enc  []byte

	// seed delivers the async prefix scan of a reopened pre-index
	// segment (nil value = the scan failed or was canceled); delta
	// accumulates appends made while the seed is pending, to be merged
	// once it lands. Both are nil when no seed is in flight.
	seed  chan *zoneMap
	delta *zoneMap
}

// seal encodes the pending records as one column block and appends it to
// the segment's write buffer. Called when a block fills and before every
// flush, so on-disk bytes always end at a block boundary and sidecars
// never summarize unwritten rows. No-op for fixed-row segments.
func (w *segWriter) seal() error {
	if len(w.pend) == 0 {
		return nil
	}
	w.enc = appendBlock(w.enc[:0], w.pend)
	if _, err := w.buf.Write(w.enc); err != nil {
		return err
	}
	w.off += int64(len(w.enc))
	w.pend = w.pend[:0]
	return nil
}

// resolveSeed folds a completed async seed into the live zone map
// without ever blocking: if the seed scan is still running the writer
// simply stays sidecar-less for now (the next flush retries). Caller
// holds the store's mu.
func (w *segWriter) resolveSeed() {
	if w.seed == nil {
		return
	}
	select {
	case z := <-w.seed:
		w.seed = nil
		if z != nil {
			z.merge(w.delta)
			w.zm = z
		}
		w.delta = nil
	default:
	}
}

// Create initializes a new store in dir (created if missing; must not
// already contain a store) with the given bin width in seconds, writing
// new segments in the default (columnar) format.
func Create(dir string, binSeconds uint32) (*Store, error) {
	return CreateFormat(dir, binSeconds, DefaultSegmentFormat)
}

// CreateFormat is Create with an explicit segment format for new segments
// (FormatV1 fixed rows or FormatV2 column blocks).
func CreateFormat(dir string, binSeconds uint32, format uint16) (*Store, error) {
	if !validFormat(format) {
		return nil, fmt.Errorf("nfstore: unknown segment format %d (supported: %d-%d)", format, FormatV1, segVersionMax)
	}
	if binSeconds == 0 {
		binSeconds = DefaultBinSeconds
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nfstore: create %s: %w", dir, err)
	}
	metaPath := filepath.Join(dir, metaFile)
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("nfstore: store already exists in %s", dir)
	}
	meta := storeMeta{Version: 1, BinSeconds: binSeconds, SegmentFormat: format}
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("nfstore: encode meta: %w", err)
	}
	if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
		return nil, fmt.Errorf("nfstore: write meta: %w", err)
	}
	return newStore(dir, binSeconds, format), nil
}

// Open opens an existing store directory.
func Open(dir string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("nfstore: open %s: %w", dir, err)
	}
	var meta storeMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("nfstore: parse meta: %w", err)
	}
	if meta.BinSeconds == 0 {
		return nil, errors.New("nfstore: meta has zero bin size")
	}
	format := meta.SegmentFormat
	if format == 0 {
		format = FormatV1 // pre-columnar meta: keep appending v1 bytes
	}
	if !validFormat(format) {
		return nil, fmt.Errorf("nfstore: meta declares segment format %d, which this build does not write (supported: %d-%d)", format, FormatV1, segVersionMax)
	}
	return newStore(dir, meta.BinSeconds, format), nil
}

// SegmentFormat returns the format newly created segments are written in.
func (s *Store) SegmentFormat() uint16 { return uint16(s.segFormat.Load()) }

// SetSegmentFormat changes the format for segments created after the call
// (existing segments, including currently open writers, keep theirs). It
// does not rewrite the persisted meta — a transient override for tests and
// tools; use Migrate to convert data already on disk.
func (s *Store) SetSegmentFormat(format uint16) error {
	if !validFormat(format) {
		return fmt.Errorf("nfstore: unknown segment format %d (supported: %d-%d)", format, FormatV1, segVersionMax)
	}
	s.segFormat.Store(uint32(format))
	return nil
}

// BinSeconds returns the store's measurement bin width.
func (s *Store) BinSeconds() uint32 { return s.binSeconds }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// binStart returns the start of the bin containing t.
func (s *Store) binStart(t uint32) uint32 { return t - t%s.binSeconds }

// Bin returns the interval of the measurement bin containing t.
func (s *Store) Bin(t uint32) flow.Interval {
	start := s.binStart(t)
	return flow.Interval{Start: start, End: start + s.binSeconds}
}

// segPath returns the segment file path for a bin start.
func (s *Store) segPath(binStart uint32) string {
	return filepath.Join(s.dir, segPrefix+strconv.FormatUint(uint64(binStart), 10))
}

// Add appends a record, routing it to the segment of its start-time bin.
// Invalid records are rejected rather than silently stored.
func (s *Store) Add(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	bin := s.binStart(r.Start)
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.open[bin]
	if !ok {
		var err error
		w, err = s.openSegment(bin)
		if err != nil {
			return err
		}
		s.open[bin] = w
	}
	if w.format == FormatV2 {
		w.pend = append(w.pend, *r)
		if len(w.pend) >= blockRecords {
			if err := w.seal(); err != nil {
				return fmt.Errorf("nfstore: append to bin %d: %w", bin, err)
			}
		}
	} else {
		var buf [RecordSize]byte
		encodeRecord(buf[:], r)
		if _, err := w.buf.Write(buf[:]); err != nil {
			return fmt.Errorf("nfstore: append to bin %d: %w", bin, err)
		}
		w.off += RecordSize
	}
	w.n++
	switch {
	case w.zm != nil:
		w.zm.add(r)
	case w.delta != nil:
		// A seed scan is still running: track the new appends separately
		// and merge once it lands.
		w.delta.add(r)
	}
	return nil
}

// AddAll appends a batch of records, stopping at the first error.
func (s *Store) AddAll(rs []flow.Record) error {
	for i := range rs {
		if err := s.Add(&rs[i]); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return nil
}

// openSegment opens (creating or appending) the segment for a bin.
// Caller holds s.mu.
func (s *Store) openSegment(bin uint32) (*segWriter, error) {
	path := s.segPath(bin)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nfstore: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nfstore: stat segment: %w", err)
	}
	w := &segWriter{f: f, buf: bufio.NewWriterSize(f, 1<<16)}
	if st.Size() == 0 {
		w.format = uint16(s.segFormat.Load())
		var hdr [segHeaderSize]byte
		encodeSegHeader(hdr[:], w.format, bin, s.binSeconds)
		if _, err := w.buf.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("nfstore: write segment header: %w", err)
		}
		w.off = segHeaderSize
		w.zm = newZoneMap()
		return w, nil
	}
	// An existing segment keeps the format its header declares, whatever
	// the store's current default: formats are per-segment, fixed at
	// creation.
	version, err := s.segmentVersion(bin)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.format = version
	w.off = st.Size()
	// Appending to an existing segment: seed the live zone map from the
	// sidecar if it is current, else by scanning — asynchronously, so the
	// first append to a big pre-index archive segment is not an
	// uncancellable ingest stall under s.mu. While the seed scan runs,
	// new appends accumulate in a delta map that merges with the scanned
	// prefix when it lands (at the next flush); the store's Close cancels
	// a still-running scan. A failed seed only disables incremental
	// sidecar upkeep for this writer — readers rebuild lazily and a stale
	// sidecar is ignored by its size check.
	if z := s.loadZoneMap(bin); z != nil {
		cp := *z // private copy: the cached one is shared with readers
		w.zm = &cp
		return w, nil
	}
	w.seed = make(chan *zoneMap, 1)
	w.delta = newZoneMap()
	size := st.Size()
	bg := s.bgCtx // captured under s.mu: Close re-arms the field
	s.seedWG.Add(1)
	go func() {
		defer s.seedWG.Done()
		z, err := s.buildZoneMapPrefix(bg, bin, size)
		if err != nil {
			z = nil
		}
		w.seed <- z
	}()
	return w, nil
}

// Flush forces buffered appends to disk so that subsequent queries see
// them, and refreshes each flushed segment's zone-map sidecar. It keeps
// segments open for further appends.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for bin, w := range s.open {
		if err := w.seal(); err != nil {
			return fmt.Errorf("nfstore: flush bin %d: %w", bin, err)
		}
		if err := w.buf.Flush(); err != nil {
			return fmt.Errorf("nfstore: flush bin %d: %w", bin, err)
		}
		s.writeSidecar(bin, w)
	}
	return nil
}

// writeSidecar persists the writer's zone map for a flushed segment. The
// writer keeps mutating its map on later appends, so a private snapshot
// goes to disk and cache. A pending async seed is folded in first (non-
// blocking; a segment whose seed is still scanning stays sidecar-less
// until a later flush). Sidecars are accelerators: a write failure is
// deliberately swallowed (the segment merely stays scan-only until the
// next flush or a lazy rebuild succeeds).
func (s *Store) writeSidecar(bin uint32, w *segWriter) {
	w.resolveSeed()
	if w.zm == nil {
		return
	}
	cp := *w.zm
	// add()/merge() maintain the fixed-row covered-size formula; the
	// writer knows the real flushed byte count for either format, so it
	// stamps that (plus the segment's format) over the formula here.
	cp.coveredSize = w.off
	cp.format = w.format
	_ = s.writeZoneMap(bin, &cp)
}

// Close flushes and closes all open segments and cancels any background
// zone-map seed scans. The store remains usable for queries and further
// appends (segments reopen on demand).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Cancel background seed scans and wait them out under the lock —
	// the only seedWG.Add site (openSegment) also runs under s.mu, so
	// Add can never race the Wait, and the seed goroutines themselves
	// never take the lock (their results land in buffered channels).
	// The flush below picks up whichever seeds completed in time.
	s.bgCancel()
	s.seedWG.Wait()
	// Re-arm the background context: the store stays usable after Close
	// (segments reopen on demand), and so must future seed scans.
	s.bgCtx, s.bgCancel = context.WithCancel(context.Background())
	var firstErr error
	for bin, w := range s.open {
		err := w.seal()
		if err == nil {
			err = w.buf.Flush()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("nfstore: flush bin %d: %w", bin, err)
			}
		} else {
			s.writeSidecar(bin, w)
		}
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("nfstore: close bin %d: %w", bin, err)
		}
		delete(s.open, bin)
	}
	return firstErr
}

// Bins lists the bin start times present on disk, ascending.
func (s *Store) Bins() ([]uint32, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("nfstore: list %s: %w", s.dir, err)
	}
	var bins []uint32
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(name, segPrefix), 10, 32)
		if err != nil {
			continue // foreign file; ignore
		}
		bins = append(bins, uint32(v))
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	return bins, nil
}

// Span returns the interval covered by the segments on disk (from the
// first bin's start to the last bin's end). ok is false for an empty store.
func (s *Store) Span() (iv flow.Interval, ok bool, err error) {
	bins, err := s.Bins()
	if err != nil || len(bins) == 0 {
		return flow.Interval{}, false, err
	}
	return flow.Interval{Start: bins[0], End: bins[len(bins)-1] + s.binSeconds}, true, nil
}

// ErrStopIteration can be returned by a Query callback to end iteration
// early without reporting an error to the caller.
var ErrStopIteration = errors.New("nfstore: stop iteration")

// ctxCheckStride is how many records a segment scan processes between
// context checks: frequent enough that cancellation lands well within one
// segment, rare enough that Err()'s mutex never shows up in profiles.
const ctxCheckStride = 1024

// Query streams every record whose start time falls in iv and which
// matches filter (nil means all) to fn, in bin order. The *flow.Record
// passed to fn is reused between calls: copy it if it must outlive fn.
// Cancelling ctx aborts the scan within one record stride and returns
// ctx.Err().
//
// Segments whose zone-map sidecar proves the filter cannot match are
// skipped without being opened, and surviving segments are scanned
// concurrently (SetParallelism) with results merged back in bin order —
// fn observes exactly the sequence a serial scan would produce.
func (s *Store) Query(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	plan, err := s.planSegments(iv, filter)
	if err != nil {
		return err
	}
	opts := scanOpts{iv: iv, filter: filter, proj: nffilter.AllColumns}
	if err := s.execPlan(ctx, plan, opts, fn); err != nil {
		if errors.Is(err, ErrStopIteration) {
			return nil
		}
		return err
	}
	return nil
}

// Iter returns a range-over-func iterator over the matching records of an
// interval — the streaming counterpart of Records for callers (like the
// extraction engine's dataset builder) that aggregate incrementally and
// never need the materialized slice. The yielded *flow.Record is reused
// between iterations, per the Query contract; the terminal iteration
// yields (nil, err) if the underlying scan failed or ctx was cancelled.
// Breaking out of the loop stops the scan early.
func (s *Store) Iter(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) iter.Seq2[*flow.Record, error] {
	return func(yield func(*flow.Record, error) bool) {
		err := s.Query(ctx, iv, filter, func(r *flow.Record) error {
			if !yield(r, nil) {
				return ErrStopIteration
			}
			return nil
		})
		if err != nil {
			yield(nil, err)
		}
	}
}

// Records collects matching records into a slice. Convenience wrapper over
// Query for callers (like the miner) that need random access.
func (s *Store) Records(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]flow.Record, error) {
	var out []flow.Record
	err := s.Query(ctx, iv, filter, func(r *flow.Record) error {
		out = append(out, *r)
		return nil
	})
	return out, err
}

// Count returns the number of matching flow records and their packet and
// byte totals — the three volume dimensions the paper's miner weights
// itemsets by.
//
// Segments fully inside iv whose sidecar proves the filter matches every
// record are answered from the sidecar's totals without scanning
// (SegmentsAggregated in Stats); only the remainder is scanned, pruned and
// parallelized like Query.
func (s *Store) Count(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) (flows, packets, bytes uint64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, err
	}
	plan, err := s.planSegments(iv, filter)
	if err != nil {
		return 0, 0, 0, err
	}
	return s.countPlan(ctx, plan, iv, filter)
}

// countPlan answers a volume count over an already-planned segment set:
// segments whose sidecar proves full coverage are aggregated without
// scanning, the remainder goes through execPlan. Columnar segments push
// the same aggregation down another level — fully covered, fully matching
// blocks contribute their zone-map totals without decoding a row (the agg
// sink below, accumulated atomically because parallel workers call it).
// Shared by Count and Summaries.
func (s *Store) countPlan(ctx context.Context, plan []segPlan, iv flow.Interval, filter *nffilter.Filter) (flows, packets, bytes uint64, err error) {
	var root nffilter.Node
	if filter != nil {
		root = filter.Root()
	}
	scan := plan[:0]
	for _, p := range plan {
		if p.zm != nil && p.zm.coversStarts(iv) && (root == nil || p.zm.matchesAll(root)) {
			flows += p.zm.count
			packets += p.zm.packets
			bytes += p.zm.bytes
			s.stats.segmentsAggregated.Add(1)
			continue
		}
		scan = append(scan, p)
	}
	var aFlows, aPackets, aBytes atomic.Uint64
	opts := scanOpts{
		iv:     iv,
		filter: filter,
		proj:   nffilter.ColumnSet(0).With(nffilter.ColPackets).With(nffilter.ColBytes),
		agg: func(f, p, b uint64) {
			aFlows.Add(f)
			aPackets.Add(p)
			aBytes.Add(b)
		},
	}
	err = s.execPlan(ctx, scan, opts, func(r *flow.Record) error {
		flows++
		packets += r.Packets
		bytes += r.Bytes
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return flows + aFlows.Load(), packets + aPackets.Load(), bytes + aBytes.Load(), nil
}

// Migrate rewrites every segment not already in the target format,
// returning how many it converted. Each segment is rewritten atomically
// (temp file + rename) with a fresh sidecar, so readers between segments
// see a consistent mixed-format store and an interrupted migration loses
// nothing. Open writers for a migrated bin are flushed and closed first
// (they reopen on the next append, picking up the new format from the
// rewritten header). Segments rewrite serially; MigrateWorkers fans the
// same rewrites over a bounded pool.
func (s *Store) Migrate(ctx context.Context, target uint16) (migrated int, err error) {
	return s.MigrateWorkers(ctx, target, 1)
}

// MigrateWorkers is Migrate with the per-segment rewrites fanned over a
// bounded worker pool. workers <= 0 selects the automatic width (number
// of CPUs, capped the same way query parallelism is). The expensive part
// of each rewrite — decoding the old segment and encoding the new one —
// runs outside the writer lock; only the brief detach-writer and
// commit-rename steps serialize, so concurrent appends stay correct (a
// segment that changes under a rewrite is retried). On error the count
// of segments already migrated is still returned.
func (s *Store) MigrateWorkers(ctx context.Context, target uint16, workers int) (int, error) {
	if !validFormat(target) {
		return 0, fmt.Errorf("nfstore: unknown segment format %d (supported: %d-%d)", target, FormatV1, segVersionMax)
	}
	bins, err := s.Bins()
	if err != nil {
		return 0, err
	}
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), maxAutoParallelism)
	}
	workers = min(workers, len(bins))
	if workers <= 1 {
		migrated := 0
		for _, bin := range bins {
			if err := ctx.Err(); err != nil {
				return migrated, err
			}
			done, err := s.migrateSegment(ctx, bin, target)
			if err != nil {
				return migrated, err
			}
			if done {
				migrated++
			}
		}
		return migrated, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		migrated atomic.Int64
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	work := make(chan uint32)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bin := range work {
				done, err := s.migrateSegment(ctx, bin, target)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				if done {
					migrated.Add(1)
				}
			}
		}()
	}
feed:
	for _, bin := range bins {
		select {
		case work <- bin:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return int(migrated.Load()), firstErr
	}
	return int(migrated.Load()), ctx.Err()
}

// migrateAttempts bounds how often one segment rewrite is retried when
// concurrent appends land between its read and its commit.
const migrateAttempts = 4

// migrateSegment converts one segment to the target format, reporting
// whether a rewrite happened. Caller does NOT hold s.mu.
func (s *Store) migrateSegment(ctx context.Context, bin uint32, target uint16) (bool, error) {
	for attempt := 0; attempt < migrateAttempts; attempt++ {
		done, retry, err := s.tryMigrateSegment(ctx, bin, target)
		if err != nil || !retry {
			return done, err
		}
	}
	return false, fmt.Errorf("nfstore: migrate bin %d: segment kept changing under rewrite", bin)
}

// tryMigrateSegment is one rewrite attempt. It detaches any open writer
// and snapshots the segment size under the lock, decodes and re-encodes
// the segment into a temp file with the lock released, then commits the
// rename only if the segment is still exactly the bytes it read — an
// append that slipped in (a reopened writer, or a grown file) makes the
// attempt report retry instead of clobbering the new rows.
func (s *Store) tryMigrateSegment(ctx context.Context, bin uint32, target uint16) (done, retry bool, err error) {
	s.mu.Lock()
	if w, ok := s.open[bin]; ok {
		err := w.seal()
		if err == nil {
			err = w.buf.Flush()
		}
		cerr := w.f.Close()
		delete(s.open, bin)
		if err != nil {
			s.mu.Unlock()
			return false, false, fmt.Errorf("nfstore: migrate bin %d: flush: %w", bin, err)
		}
		if cerr != nil {
			s.mu.Unlock()
			return false, false, fmt.Errorf("nfstore: migrate bin %d: close: %w", bin, cerr)
		}
	}
	fi, err := os.Stat(s.segPath(bin))
	s.mu.Unlock()
	if err != nil {
		return false, false, fmt.Errorf("nfstore: migrate bin %d: stat: %w", bin, err)
	}
	readSize := fi.Size()
	version, err := s.segmentVersion(bin)
	if err != nil {
		return false, false, err
	}
	if version == target {
		return false, false, nil
	}
	recs, err := s.readSegmentAll(ctx, bin)
	if err != nil {
		return false, false, err
	}
	tmp, err := os.CreateTemp(s.dir, segPrefix+"mig-*")
	if err != nil {
		return false, false, fmt.Errorf("nfstore: migrate bin %d: temp: %w", bin, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriterSize(tmp, 1<<16)
	var hdr [segHeaderSize]byte
	encodeSegHeader(hdr[:], target, bin, s.binSeconds)
	off := int64(segHeaderSize)
	_, err = bw.Write(hdr[:])
	z := newZoneMap()
	if target == FormatV2 {
		var enc []byte
		for i := 0; i < len(recs) && err == nil; i += blockRecords {
			end := min(i+blockRecords, len(recs))
			enc = appendBlock(enc[:0], recs[i:end])
			_, err = bw.Write(enc)
			off += int64(len(enc))
		}
	} else {
		var buf [RecordSize]byte
		for i := range recs {
			encodeRecord(buf[:], &recs[i])
			if _, err = bw.Write(buf[:]); err != nil {
				break
			}
			off += RecordSize
		}
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return false, false, fmt.Errorf("nfstore: migrate bin %d: write: %w", bin, err)
	}
	for i := range recs {
		z.add(&recs[i])
	}
	z.coveredSize = off
	z.format = target
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.open[bin]; ok {
		return false, true, nil // writer reopened mid-rewrite: retry
	}
	fi, err = os.Stat(s.segPath(bin))
	if err != nil {
		return false, false, fmt.Errorf("nfstore: migrate bin %d: stat: %w", bin, err)
	}
	if fi.Size() != readSize {
		return false, true, nil // segment grew mid-rewrite: retry
	}
	if err := os.Rename(tmp.Name(), s.segPath(bin)); err != nil {
		return false, false, fmt.Errorf("nfstore: migrate bin %d: rename: %w", bin, err)
	}
	_ = s.writeZoneMap(bin, z) // accelerator only; scans rebuild if absent
	return true, false, nil
}

// readSegmentAll decodes every record of one segment in file order,
// whatever its format.
func (s *Store) readSegmentAll(ctx context.Context, bin uint32) ([]flow.Record, error) {
	var recs []flow.Record
	opts := scanOpts{all: true, proj: nffilter.AllColumns}
	err := s.scanSegment(ctx, segPlan{bin: bin}, opts, func(r *flow.Record) error {
		recs = append(recs, *r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// SegmentFormats counts the on-disk segments by format version — the
// mixed-store visibility surfaced by rcad's health endpoint and the
// migrate tool's dry run.
func (s *Store) SegmentFormats() (map[uint16]int, error) {
	bins, err := s.Bins()
	if err != nil {
		return nil, err
	}
	counts := map[uint16]int{}
	for _, bin := range bins {
		v, err := s.segmentVersion(bin)
		if err != nil {
			// A live-ingest bin whose header is still in the writer's
			// buffer has an unreadable (empty) file; report the format the
			// writer will flush. w.format is set once before the writer is
			// published, so the racy read is safe.
			s.mu.RLock()
			w, ok := s.open[bin]
			s.mu.RUnlock()
			if !ok {
				return nil, err
			}
			v = w.format
		}
		counts[v]++
	}
	return counts, nil
}
