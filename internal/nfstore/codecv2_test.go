package nfstore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// decodeBlockRecords decodes one encoded block (header + payload) back
// into records through the same entry points the scan path uses.
func decodeBlockRecords(t *testing.T, blk []byte, proj nffilter.ColumnSet) []flow.Record {
	t.Helper()
	rd := blockReader{br: bufio.NewReader(bytes.NewReader(blk))}
	count, payload, err := rd.next()
	if err != nil {
		t.Fatalf("readBlock: %v", err)
	}
	var meta zoneMap
	if err := decodeBlockMeta(payload, count, &meta); err != nil {
		t.Fatalf("decodeBlockMeta: %v", err)
	}
	var batch colBatch
	if err := decodeBlockColumns(payload[blockMetaSize:], count, proj, &batch); err != nil {
		t.Fatalf("decodeBlockColumns: %v", err)
	}
	out := make([]flow.Record, count)
	for i := range out {
		batch.fill(&out[i], i, proj)
	}
	return out
}

// TestBlockRoundTripProperty: random record blocks round-trip exactly
// through encode + full-projection decode, and the encoding is
// deterministic (identical input, identical bytes).
func TestBlockRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(600)
		recs := make([]flow.Record, n)
		for i := range recs {
			recs[i] = randRecord(rng, 10*300)
		}
		blk := appendBlock(nil, recs)
		if again := appendBlock(nil, recs); !bytes.Equal(blk, again) {
			t.Fatalf("trial %d: encoding is not deterministic", trial)
		}
		got := decodeBlockRecords(t, blk, nffilter.AllColumns)
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("trial %d row %d:\n got %+v\nwant %+v", trial, i, got[i], recs[i])
			}
		}
	}
}

// TestBlockRoundTripExtremes: the wrapping delta codecs and the
// dictionary fallbacks must survive the value extremes — zero and
// max-u32 starts back to back, max-varint u64 counters, single-row
// blocks, single-value columns, and a port column with more than 256
// distinct values (the raw fallback).
func TestBlockRoundTripExtremes(t *testing.T) {
	maxU32 := ^uint32(0)
	maxU64 := ^uint64(0)
	cases := map[string][]flow.Record{
		"single-row": {
			{Start: maxU32, Dur: maxU32, SrcIP: flow.IP(maxU32), DstIP: flow.IP(maxU32),
				SrcPort: 0xffff, DstPort: 0xffff, Proto: 0xff, Flags: 0xff,
				Router: 0xffff, Anno: flow.Annotation(0xffff), Packets: maxU64, Bytes: maxU64},
		},
		"alternating-extremes": {
			{Start: 0, Packets: 0, Bytes: maxU64},
			{Start: maxU32, Packets: maxU64, Bytes: 0},
			{Start: 0, Packets: 0, Bytes: maxU64},
			{Start: 1, Packets: 1, Bytes: 1},
		},
		"max-varint-counters": {
			{Packets: maxU64, Bytes: maxU64},
			{Packets: maxU64 - 1, Bytes: 1},
			{Packets: maxU64, Bytes: maxU64 / 2},
		},
		"all-zero": {
			{}, {}, {},
		},
	}
	// >256 distinct source ports forces the u16 raw fallback; distinct
	// annos stay under 256 so both dictionary shapes appear in one block.
	var wide []flow.Record
	for i := 0; i < 400; i++ {
		wide = append(wide, flow.Record{SrcPort: uint16(i * 7), DstPort: 53, Anno: flow.Annotation(i % 5)})
	}
	cases["u16-raw-fallback"] = wide

	for name, recs := range cases {
		got := decodeBlockRecords(t, appendBlock(nil, recs), nffilter.AllColumns)
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("%s row %d:\n got %+v\nwant %+v", name, i, got[i], recs[i])
			}
		}
	}
}

// TestBlockProjectionDecode: a projected decode returns exactly the
// requested columns and zeroes the rest, for every single-column
// projection.
func TestBlockProjectionDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]flow.Record, 100)
	for i := range recs {
		recs[i] = randRecord(rng, 3000)
	}
	blk := appendBlock(nil, recs)
	for c := nffilter.Column(0); c < nffilter.NumColumns; c++ {
		proj := nffilter.ColumnSet(0).With(c)
		got := decodeBlockRecords(t, blk, proj)
		for i := range recs {
			var want flow.Record
			masked := recs[i]
			// Zero via fill's own contract: only the projected column
			// survives.
			(&colBatch{
				n:       1,
				start:   []uint32{masked.Start},
				dur:     []uint32{masked.Dur},
				srcIP:   []uint32{uint32(masked.SrcIP)},
				dstIP:   []uint32{uint32(masked.DstIP)},
				srcPort: []uint16{masked.SrcPort},
				dstPort: []uint16{masked.DstPort},
				proto:   []uint8{uint8(masked.Proto)},
				flags:   []uint8{masked.Flags},
				router:  []uint16{masked.Router},
				anno:    []uint16{uint16(masked.Anno)},
				packets: []uint64{masked.Packets},
				bytes:   []uint64{masked.Bytes},
			}).fill(&want, 0, proj)
			if got[i] != want {
				t.Fatalf("column %v row %d:\n got %+v\nwant %+v", c, i, got[i], want)
			}
		}
	}
}

// TestBlockMetaMatchesZoneMap: the block meta round-trips the zone-map
// summary fields the pruning machinery reads.
func TestBlockMetaMatchesZoneMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := make([]flow.Record, 200)
	var want zoneMap
	for i := range recs {
		recs[i] = randRecord(rng, 3000)
		want.add(&recs[i])
	}
	blk := appendBlock(nil, recs)
	rd := blockReader{br: bufio.NewReader(bytes.NewReader(blk))}
	count, payload, err := rd.next()
	if err != nil {
		t.Fatal(err)
	}
	var got zoneMap
	if err := decodeBlockMeta(payload, count, &got); err != nil {
		t.Fatal(err)
	}
	// The block meta carries no Blooms and no covered size; align the
	// fields outside its scope, then the rest must match exactly.
	want.noBloom = true
	want.coveredSize = 0
	got.coveredSize = 0
	want.bloomSrc = bloom{}
	want.bloomDst = bloom{}
	if got != want {
		t.Fatalf("block meta diverges:\n got %+v\nwant %+v", got, want)
	}
}

// corruptCase mutates a valid encoded block and says what must happen.
type corruptCase struct {
	name   string
	mutate func([]byte) []byte
}

// TestBlockCorruptionDetected: every structural mutation of a block is an
// error — never a panic, never silently wrong rows.
func TestBlockCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	recs := make([]flow.Record, 300)
	for i := range recs {
		recs[i] = randRecord(rng, 3000)
	}
	valid := appendBlock(nil, recs)
	cases := []corruptCase{
		{"truncated-header", func(b []byte) []byte { return b[:blockHeaderSize-3] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"zero-count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 0)
			return b
		}},
		{"huge-count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], maxBlockRecords+1)
			return b
		}},
		{"huge-payload-len", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], maxBlockPayload+1)
			return b
		}},
		{"checksum-flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
	}
	for _, c := range cases {
		buf := c.mutate(append([]byte(nil), valid...))
		rd := blockReader{br: bufio.NewReader(bytes.NewReader(buf))}
		if _, _, err := rd.next(); err == nil || err == io.EOF {
			t.Errorf("%s: want error, got %v", c.name, err)
		}
	}
}

// TestBlockMangledSectionsDetected: corruption below the checksum — a
// decoder fed sections that lie about their own structure (the fuzzing
// surface) must error. The checksum is recomputed after each mutation so
// the section decoders themselves are what rejects the bytes.
func TestBlockMangledSectionsDetected(t *testing.T) {
	recs := []flow.Record{
		{Start: 1, SrcPort: 80, DstPort: 53, Proto: 6, Packets: 3, Bytes: 120},
		{Start: 2, SrcPort: 81, DstPort: 53, Proto: 17, Packets: 1, Bytes: 60},
		{Start: 3, SrcPort: 82, DstPort: 443, Proto: 6, Packets: 9, Bytes: 900},
	}
	valid := appendBlock(nil, recs)
	reseal := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], uint32(len(b)-blockHeaderSize))
		binary.LittleEndian.PutUint32(b[12:], blockChecksum(b[blockHeaderSize:]))
		return b
	}
	sectionsAt := blockHeaderSize + blockMetaSize
	cases := []corruptCase{
		{"section-length-past-end", func(b []byte) []byte {
			b[sectionsAt] = 0xf0 // claims a 240-byte Start section
			return reseal(b)
		}},
		{"truncated-sections", func(b []byte) []byte {
			return reseal(b[:len(b)-3])
		}},
		{"trailing-garbage", func(b []byte) []byte {
			return reseal(append(b, 0xaa, 0xbb))
		}},
		{"payload-shorter-than-meta", func(b []byte) []byte {
			return reseal(b[:blockHeaderSize+blockMetaSize-10])
		}},
	}
	// Mangled dictionary: cardinality byte of the SrcPort section bumped
	// past the declared section. Find the SrcPort section by walking the
	// length prefixes like the decoder does.
	cases = append(cases, corruptCase{"mangled-dictionary", func(b []byte) []byte {
		off := sectionsAt
		for c := nffilter.Column(0); c < nffilter.ColSrcPort; c++ {
			l, n := binary.Uvarint(b[off:])
			off += n + int(l)
		}
		_, n := binary.Uvarint(b[off:]) // section length prefix
		b[off+n] = 0xff                 // cardinality varint now nonsense vs payload
		return reseal(b)
	}})
	for _, c := range cases {
		buf := c.mutate(append([]byte(nil), valid...))
		rd := blockReader{br: bufio.NewReader(bytes.NewReader(buf))}
		count, payload, err := rd.next()
		if err != nil {
			continue // rejected even earlier — fine
		}
		if c.name == "payload-shorter-than-meta" {
			var meta zoneMap
			if err := decodeBlockMeta(payload, count, &meta); err == nil {
				t.Errorf("%s: zone-map decode accepted short payload", c.name)
			}
			continue
		}
		var batch colBatch
		if err := decodeBlockColumns(payload[blockMetaSize:], count, nffilter.AllColumns, &batch); err == nil {
			t.Errorf("%s: column decode accepted mangled sections", c.name)
		}
	}
}

// TestSegHeaderVersionErrors: decodeSegHeader must distinguish a segment
// from a future build (actionable "upgrade or migrate" message) from
// plain corruption, and reject both.
func TestSegHeaderVersionErrors(t *testing.T) {
	mk := func(version uint16) []byte {
		var hdr [segHeaderSize]byte
		encodeSegHeader(hdr[:], version, 300, 300)
		return hdr[:]
	}
	if _, _, v, err := decodeSegHeader(mk(FormatV1)); err != nil || v != FormatV1 {
		t.Fatalf("v1 header: version %d, err %v", v, err)
	}
	if _, _, v, err := decodeSegHeader(mk(FormatV2)); err != nil || v != FormatV2 {
		t.Fatalf("v2 header: version %d, err %v", v, err)
	}

	_, _, _, err := decodeSegHeader(mk(0))
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("version 0 must read as corruption, got: %v", err)
	}
	_, _, _, err = decodeSegHeader(mk(segVersionMax + 1))
	if err == nil || !strings.Contains(err.Error(), "newer than this build") ||
		!strings.Contains(err.Error(), "migrate") {
		t.Errorf("future version must say upgrade/migrate, got: %v", err)
	}
	_, _, _, err = decodeSegHeader(mk(FormatV1)[:segHeaderSize-1])
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("short header must say truncated, got: %v", err)
	}
	bad := mk(FormatV1)
	bad[0] ^= 0xff
	_, _, _, err = decodeSegHeader(bad)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic must be reported, got: %v", err)
	}
}

// TestV2SegmentCorruptionSurfacesInQuery: block corruption reaches the
// Query caller as an error (and never a panic), same as the v1 truncation
// contract.
func TestV2SegmentCorruptionSurfacesInQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateFormat(dir, 300, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		r := randRecord(rng, 300)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	// Seal (not just Flush) so the bin has no open writer: scans of open
	// bins deliberately tolerate a short tail as an in-flight append, and
	// this test is about corruption of closed, durable segments.
	if err := s.Seal(0); err != nil {
		t.Fatal(err)
	}
	path := s.segPath(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func([]byte) []byte{
		"truncated-block": func(b []byte) []byte { return b[:len(b)-7] },
		"flipped-byte":    func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"bad-block-magic": func(b []byte) []byte { b[segHeaderSize] ^= 0xff; return b },
	}
	iv := flow.Interval{Start: 0, End: 300}
	for name, mutate := range mutations {
		if err := os.WriteFile(path, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(s.idxPath(0))
		err := s.Query(context.Background(), iv, nil, func(*flow.Record) error { return nil })
		if err == nil {
			t.Errorf("%s: corruption not detected by Query", name)
		}
	}
}

// TestV2EmptySegmentScans: a v2 segment holding only its header (zero
// blocks — the zero-row case) reads back as zero records, cleanly.
func TestV2EmptySegmentScans(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateFormat(dir, 300, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var hdr [segHeaderSize]byte
	encodeSegHeader(hdr[:], FormatV2, 0, 300)
	if err := os.WriteFile(s.segPath(0), hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Records(context.Background(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatalf("scan of empty v2 segment: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty segment produced %d records", len(got))
	}
}
