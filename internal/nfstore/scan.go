package nfstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// scanOpts bundles what a segment scan applies beyond the plan entry.
type scanOpts struct {
	iv     flow.Interval
	filter *nffilter.Filter
	// proj is the set of columns emitted records must carry (the filter's
	// own columns are added internally; Start is decoded for the interval
	// mask except in blocks provably inside iv). v1 segments ignore it —
	// fixed rows decode whole.
	proj nffilter.ColumnSet
	// all disables the interval mask: every record of the segment is
	// emitted (Migrate's raw rewrite path).
	all bool
	// agg, when non-nil, consumes whole-block totals for v2 blocks whose
	// zone map proves them fully inside iv and fully matching, instead of
	// their rows (Count/Summaries pushdown below segment granularity). It
	// may be called from worker goroutines concurrently — implementations
	// must be safe for that.
	agg func(flows, packets, bytes uint64)
}

// scanSegment opens one planned segment, dispatches on the format version
// in its header and streams matching records to emit in file order. When
// the plan asks for it (buildIdx), a zone map of the whole segment is
// rebuilt as a side effect and persisted best-effort.
//
// A segment with a live writer may end mid-row or mid-block on disk —
// buffered appends reach the file in bufio-sized slices, not record
// units — so scans of open bins treat a short tail as the end of the
// flushed prefix instead of corruption: live-mode readers always observe
// a consistent prefix of the stream. The open check is repeated at error
// time because a writer can reopen a sealed bin while the scan is in
// flight; segments without a writer at either point keep the strict
// errors (a short closed segment really is corrupt).
func (s *Store) scanSegment(ctx context.Context, p segPlan, opts scanOpts, emit func(*flow.Record) error) error {
	s.stats.segmentsScanned.Add(1)
	openAtStart := s.binIsOpen(p.bin)
	lenient := func() bool { return openAtStart || s.binIsOpen(p.bin) }
	f, err := os.Open(s.segPath(p.bin))
	if err != nil {
		return fmt.Errorf("nfstore: open segment %d: %w", p.bin, err)
	}
	defer f.Close()
	br := segReaders.Get().(*bufio.Reader)
	br.Reset(f)
	defer segReaders.Put(br)
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if (err == io.EOF || err == io.ErrUnexpectedEOF) && lenient() {
			return nil // header still in the writer's buffer: empty prefix
		}
		return fmt.Errorf("nfstore: segment %d header: %w", p.bin, err)
	}
	gotBin, gotBinSec, version, err := decodeSegHeader(hdr)
	if err != nil {
		return fmt.Errorf("nfstore: segment %d: %w", p.bin, err)
	}
	if gotBin != p.bin || gotBinSec != s.binSeconds {
		return fmt.Errorf("nfstore: segment %d header mismatch (bin %d, width %d)", p.bin, gotBin, gotBinSec)
	}
	var zb *zoneMap
	if p.buildIdx && !openAtStart {
		// Never persist a sidecar built from a mid-write prefix: partial
		// coverage would only be invalidated and rebuilt again anyway.
		zb = newZoneMap()
	}
	if version == FormatV2 {
		return s.scanV2(ctx, br, p.bin, zb, opts, lenient, emit)
	}
	return s.scanV1(ctx, br, p.bin, zb, opts, lenient, emit)
}

// scanV1 streams a fixed-row segment body: decode every record, apply the
// interval mask and the filter per row. The context is checked every
// ctxCheckStride records.
func (s *Store) scanV1(ctx context.Context, br *bufio.Reader, bin uint32, zb *zoneMap, opts scanOpts, lenient func() bool, emit func(*flow.Record) error) error {
	var scanned uint64
	defer func() { s.stats.recordsScanned.Add(scanned) }()
	var rec flow.Record
	buf := make([]byte, RecordSize)
	for n := 0; ; n++ {
		if n%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				if zb != nil {
					// add() maintains the v1 covered-size formula, which at
					// a clean EOF equals the bytes consumed. Persisting the
					// rebuilt sidecar is an accelerator, not a correctness
					// requirement; a failed write only means the next query
					// scans again.
					zb.format = FormatV1
					_ = s.writeZoneMap(bin, zb)
				}
				return nil
			}
			if err == io.ErrUnexpectedEOF {
				if lenient() {
					return nil // partial tail row mid-append: end of the flushed prefix
				}
				return fmt.Errorf("nfstore: segment %d truncated", bin)
			}
			return fmt.Errorf("nfstore: segment %d read: %w", bin, err)
		}
		decodeRecord(buf, &rec)
		scanned++
		if zb != nil {
			zb.add(&rec)
		}
		if !opts.all && !opts.iv.Contains(rec.Start) {
			continue
		}
		if opts.filter != nil && !opts.filter.Match(&rec) {
			continue
		}
		if err := emit(&rec); err != nil {
			return err
		}
	}
}

// segReaders pools the buffered readers used for segment scans so
// concurrent queries do not re-allocate (and re-zero) a large buffer per
// segment. The buffer is sized to hold any block the writer emits, which
// keeps blockReader on its zero-copy path for well-formed segments.
var segReaders = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 1<<19) }}

// blockReader reads consecutive v2 column blocks from a buffered segment
// reader, validating each header and checksum. When a whole block fits
// in the reader's buffer, the payload is returned as a slice into that
// buffer, so the common path never copies block bytes; blocks larger
// than the buffer fall back to an owned scratch copy.
type blockReader struct {
	br      *bufio.Reader
	scratch []byte
}

// errBlockTruncated marks a segment that ends partway through a block —
// either corruption (closed segment) or a writer's in-flight buffered
// append (open segment); scanV2 tells the two apart.
var errBlockTruncated = errors.New("truncated block")

// next returns the next block's record count and payload. A clean end of
// the segment returns io.EOF; anything short or mangled is an error. The
// payload is valid only until the following next call — callers must
// finish decoding a block before advancing.
func (r *blockReader) next() (count int, payload []byte, err error) {
	hdr, err := r.br.Peek(blockHeaderSize)
	if err != nil {
		if len(hdr) == 0 && err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w header", errBlockTruncated)
	}
	count, plen, sum, err := decodeBlockHeader(hdr)
	if err != nil {
		return 0, nil, err
	}
	if full, perr := r.br.Peek(blockHeaderSize + plen); perr == nil {
		payload = full[blockHeaderSize:]
		if blockChecksum(payload) != sum {
			return 0, nil, fmt.Errorf("block checksum mismatch")
		}
		_, _ = r.br.Discard(blockHeaderSize + plen)
		return count, payload, nil
	} else if perr != bufio.ErrBufferFull {
		return 0, nil, fmt.Errorf("%w payload", errBlockTruncated)
	}
	_, _ = r.br.Discard(blockHeaderSize)
	r.scratch = growBytes(r.scratch, plen)
	if _, err := io.ReadFull(r.br, r.scratch); err != nil {
		return 0, nil, fmt.Errorf("%w payload", errBlockTruncated)
	}
	if blockChecksum(r.scratch) != sum {
		return 0, nil, fmt.Errorf("block checksum mismatch")
	}
	return count, r.scratch, nil
}

// scanV2 streams a columnar segment body block by block. Per block it
// first consults the block zone map: provably irrelevant blocks are
// skipped without decoding a single column, and (for aggregations) fully
// covered, fully matching blocks are consumed as totals. Surviving blocks
// decode only the columns the filter and the projection need, the filter
// runs vectorized over the column batch, and only the selected rows are
// materialized. Cancellation lands within one block header or one
// ctxCheckStride of emitted records, whichever is sooner.
func (s *Store) scanV2(ctx context.Context, br *bufio.Reader, bin uint32, zb *zoneMap, opts scanOpts, lenient func() bool, emit func(*flow.Record) error) error {
	var root nffilter.Node
	if opts.filter != nil {
		root = opts.filter.Root()
	}
	// An AST with nodes the vectorized evaluator does not know falls back
	// to per-row Eval over fully decoded records; nffilter.Requires is
	// conservative the same way, so the full decode is already implied.
	vec := root == nil || vecSupported(root)
	dec := opts.proj.With(nffilter.ColStart) | nffilter.Requires(root)
	// For blocks the zone map proves fully inside iv the per-row interval
	// mask is a tautology, so Start is decoded only if the projection or
	// the filter reads it.
	decCovered := opts.proj | nffilter.Requires(root)
	filterCols := nffilter.Requires(root)
	if !vec || zb != nil {
		dec = nffilter.AllColumns
		decCovered = nffilter.AllColumns
	}
	pruning := !s.pruneOff.Load() && zb == nil
	var scanned uint64
	defer func() { s.stats.recordsScanned.Add(scanned) }()
	var (
		rec      flow.Record
		batch    colBatch
		meta     zoneMap
		consumed = int64(segHeaderSize)
		emitted  int
	)
	rd := blockReader{br: br}
	ev := vecEvaluator{b: &batch}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		count, payload, err := rd.next()
		if err == io.EOF {
			if zb != nil {
				zb.coveredSize = consumed
				zb.format = FormatV2
				_ = s.writeZoneMap(bin, zb)
			}
			return nil
		}
		if err != nil {
			if errors.Is(err, errBlockTruncated) && lenient() {
				return nil // partial tail block mid-append: end of the flushed prefix
			}
			return fmt.Errorf("nfstore: segment %d: %w", bin, err)
		}
		consumed += blockHeaderSize + int64(len(payload))
		if err := decodeBlockMeta(payload, count, &meta); err != nil {
			return fmt.Errorf("nfstore: segment %d: %w", bin, err)
		}
		if pruning && !opts.all {
			if opts.agg != nil && meta.coversStarts(opts.iv) && (root == nil || meta.matchesAll(root)) {
				opts.agg(uint64(count), meta.packets, meta.bytes)
				s.stats.blocksAggregated.Add(1)
				continue
			}
			if !meta.overlapsStart(opts.iv) || (root != nil && !meta.canMatch(root)) {
				s.stats.blocksPruned.Add(1)
				continue
			}
		}
		s.stats.blocksScanned.Add(1)
		covered := !opts.all && meta.coversStarts(opts.iv)
		bdec := dec
		if covered {
			bdec = decCovered
		}
		sections := payload[blockMetaSize:]
		var sel []bool
		if vec && root != nil && zb == nil {
			// Two-phase decode: only the filter's columns first, then the
			// rest of the projection — and only when the mask selected
			// anything. Blocks the filter rejects wholesale (the common
			// case for a selective filter over background traffic) never
			// pay for their timestamp, counter and address columns.
			if err := decodeBlockColumns(sections, count, filterCols, &batch); err != nil {
				return fmt.Errorf("nfstore: segment %d: %w", bin, err)
			}
			sel = ev.eval(root)
			scanned += uint64(count)
			none := true
			for _, v := range sel {
				if v {
					none = false
					break
				}
			}
			if none {
				ev.release(sel)
				continue
			}
			if rest := bdec &^ filterCols; rest != 0 {
				if err := decodeBlockColumns(sections, count, rest, &batch); err != nil {
					ev.release(sel)
					return fmt.Errorf("nfstore: segment %d: %w", bin, err)
				}
			}
		} else {
			if err := decodeBlockColumns(sections, count, bdec, &batch); err != nil {
				return fmt.Errorf("nfstore: segment %d: %w", bin, err)
			}
			scanned += uint64(count)
			if vec && root != nil {
				sel = ev.eval(root)
			}
		}
		if zb != nil {
			for i := 0; i < count; i++ {
				batch.fill(&rec, i, nffilter.AllColumns)
				zb.add(&rec)
			}
		}
		err = func() error {
			for i := 0; i < count; i++ {
				if sel != nil && !sel[i] {
					continue
				}
				if !opts.all && !covered && !opts.iv.Contains(batch.start[i]) {
					continue
				}
				batch.fill(&rec, i, bdec)
				if !vec && opts.filter != nil && !opts.filter.Match(&rec) {
					continue
				}
				if emitted%ctxCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				emitted++
				if err := emit(&rec); err != nil {
					return err
				}
			}
			return nil
		}()
		if sel != nil {
			ev.release(sel)
		}
		if err != nil {
			return err
		}
	}
}

// segmentVersion reads one segment's format version from its header.
func (s *Store) segmentVersion(bin uint32) (uint16, error) {
	f, err := os.Open(s.segPath(bin))
	if err != nil {
		return 0, fmt.Errorf("nfstore: open segment %d: %w", bin, err)
	}
	defer f.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("nfstore: segment %d header: %w", bin, err)
	}
	_, _, version, err := decodeSegHeader(hdr)
	if err != nil {
		return 0, fmt.Errorf("nfstore: segment %d: %w", bin, err)
	}
	return version, nil
}
