package nfstore

import (
	"context"
	"iter"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// Engine is the full read/write surface of a flow store, satisfied by
// *Store and by shardstore.ShardedStore (the scatter-gather multi-store
// engine). Everything above the storage layer — detectors, the
// extraction engine, the evaluation pipeline, the HTTP backend — works
// against this interface, so a single-directory store and a sharded
// (or remote, HTTP-peer) store are interchangeable.
//
// The behavioral contracts are those documented on *Store: Query streams
// in bin order through a reused *flow.Record, Count/Summaries/TopN are
// exact aggregations, Stats exposes cumulative scan counters. Read-only
// engines (remote shard clients) reject Add/AddAll and treat Flush as a
// no-op.
type Engine interface {
	// Bin geometry and on-disk extent.
	BinSeconds() uint32
	Bin(t uint32) flow.Interval
	Bins() ([]uint32, error)
	Span() (iv flow.Interval, ok bool, err error)

	// Ingest.
	Add(r *flow.Record) error
	AddAll(rs []flow.Record) error
	Flush() error
	Close() error

	// Queries and aggregations.
	Query(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, fn func(*flow.Record) error) error
	Iter(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) iter.Seq2[*flow.Record, error]
	Records(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]flow.Record, error)
	Count(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) (flows, packets, bytes uint64, err error)
	Summaries(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]BinSummary, error)
	TopN(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, feat flow.Feature, weight Weight, k int) ([]KeyCount, error)

	// Observability and tuning.
	Stats() Stats
	ResetStats()
	SetParallelism(k int)
	Parallelism() int
	SegmentFormat() uint16
	SegmentFormats() (map[uint16]int, error)
}

// Compile-time check: the single-directory store is an Engine.
var _ Engine = (*Store)(nil)

// EncodeRecord packs r into buf (at least RecordSize bytes) in the fixed
// little-endian v1 row layout — the wire format remote shards stream
// query results in.
func EncodeRecord(buf []byte, r *flow.Record) { encodeRecord(buf, r) }

// DecodeRecord unpacks a record from buf (at least RecordSize bytes),
// the inverse of EncodeRecord.
func DecodeRecord(buf []byte, r *flow.Record) { decodeRecord(buf, r) }
