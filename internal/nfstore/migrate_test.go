package nfstore

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// TestMigrateRoundTrip: v1 -> v2 -> v1 preserves every record and every
// query answer; SegmentFormats tracks the rewrites.
func TestMigrateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const bins = 5
	s, err := CreateFormat(t.TempDir(), 300, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4000; i++ {
		r := randRecord(rng, bins*300)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	iv := flow.Interval{Start: 0, End: bins * 300}
	f, err := nffilter.Parse("proto udp or dst port 443")
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Records(t.Context(), iv, f)
	if err != nil {
		t.Fatal(err)
	}
	bf, bp, bb, err := s.Count(t.Context(), iv, nil)
	if err != nil {
		t.Fatal(err)
	}

	check := func(stage string, wantFormat uint16, wantSegs int) {
		t.Helper()
		counts, err := s.SegmentFormats()
		if err != nil {
			t.Fatal(err)
		}
		if counts[wantFormat] != wantSegs || len(counts) != 1 {
			t.Fatalf("%s: SegmentFormats = %v, want all %d segments at v%d",
				stage, counts, wantSegs, wantFormat)
		}
		got, err := s.Records(t.Context(), iv, f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, before) {
			t.Fatalf("%s: filtered records changed (%d vs %d)", stage, len(got), len(before))
		}
		gf, gp, gb, err := s.Count(t.Context(), iv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gf != bf || gp != bp || gb != bb {
			t.Fatalf("%s: Count changed: (%d,%d,%d) vs (%d,%d,%d)", stage, gf, gp, gb, bf, bp, bb)
		}
	}
	check("pre-migration", FormatV1, bins)

	n, err := s.Migrate(t.Context(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	if n != bins {
		t.Fatalf("Migrate to v2 rewrote %d segments, want %d", n, bins)
	}
	check("after v1->v2", FormatV2, bins)

	// Idempotent: everything already at the target.
	if n, err = s.Migrate(t.Context(), FormatV2); err != nil || n != 0 {
		t.Fatalf("repeat Migrate = (%d, %v), want (0, nil)", n, err)
	}

	n, err = s.Migrate(t.Context(), FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	if n != bins {
		t.Fatalf("Migrate back to v1 rewrote %d segments, want %d", n, bins)
	}
	check("after v2->v1", FormatV1, bins)

	if _, err := s.Migrate(t.Context(), 7); err == nil {
		t.Fatal("Migrate accepted an unknown target format")
	}
}

// TestMigrateWithOpenWriter: migrating while a segment still has an open
// (partially buffered) writer seals it first and loses nothing.
func TestMigrateWithOpenWriter(t *testing.T) {
	s, err := CreateFormat(t.TempDir(), 300, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 900; i++ {
		r := randRecord(rng, 300)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush: the writer for bin 0 is still open.
	if _, err := s.Migrate(t.Context(), FormatV2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Records(t.Context(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 900 {
		t.Fatalf("after migrate with open writer: %d records, want 900", len(got))
	}

	// Appends after migration go to the segment's (new) format.
	r := randRecord(rng, 300)
	if err := s.Add(&r); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	counts, err := s.SegmentFormats()
	if err != nil {
		t.Fatal(err)
	}
	if counts[FormatV2] != 1 || len(counts) != 1 {
		t.Fatalf("post-migration append changed formats: %v", counts)
	}
	got, err = s.Records(t.Context(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 901 {
		t.Fatalf("after post-migration append: %d records, want 901", len(got))
	}
}

// TestMigrateCanceled: a canceled context stops the migration between
// segments and leaves a valid mixed-format store.
func TestMigrateCanceled(t *testing.T) {
	s, err := CreateFormat(t.TempDir(), 300, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 2000; i++ {
		r := randRecord(rng, 4*300)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Migrate(ctx, FormatV2); err == nil {
		t.Fatal("Migrate ignored a canceled context")
	}
	// The store still answers queries whole.
	got, err := s.Records(t.Context(), flow.Interval{Start: 0, End: 4 * 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2000 {
		t.Fatalf("after canceled migrate: %d records, want 2000", len(got))
	}
}
