package nfstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// TestZoneMapCodecRoundTrip checks the sidecar binary codec.
func TestZoneMapCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := newZoneMap()
	for i := 0; i < 500; i++ {
		r := randRecord(rng, 300)
		z.add(&r)
	}
	buf := encodeZoneMap(z, 1200, 300)
	got, err := decodeZoneMap(buf, 1200, 300)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *z {
		t.Fatalf("zone map round trip mismatch:\n got %+v\nwant %+v", got, z)
	}
	if _, err := decodeZoneMap(buf, 1500, 300); err == nil {
		t.Fatal("decode must reject a sidecar for a different bin")
	}
	buf[50] ^= 0xff
	if _, err := decodeZoneMap(buf, 1200, 300); err == nil {
		t.Fatal("decode must reject a corrupted payload (checksum)")
	}
}

// sidecarPaths lists the sidecar files of a store directory.
func sidecarPaths(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), idxSuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestFlushWritesSidecars: every flushed segment gets a sidecar, and the
// sidecar answers queries identically to a scan.
func TestFlushWritesSidecars(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for b := 0; b < 3; b++ {
		r := testRecord(uint32(b*300+5), byte(b), 80, 2)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(sidecarPaths(t, dir)); got != 3 {
		t.Fatalf("flush wrote %d sidecars, want 3", got)
	}
}

// TestMissingSidecarFallbackAndLazyBuild: a pre-index store (sidecars
// deleted) still answers correctly, and the first scan rebuilds the
// sidecars so the second query can prune.
func TestMissingSidecarFallbackAndLazyBuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	needle := flow.MustParseIP("172.16.9.9")
	for b := 0; b < 5; b++ {
		for i := 0; i < 20; i++ {
			r := testRecord(uint32(b*300+i), byte(i), 80, 1)
			if err := s.Add(&r); err != nil {
				t.Fatal(err)
			}
		}
	}
	hot := testRecord(2*300+3, 9, 80, 1)
	hot.SrcIP = needle
	s.Add(&hot)
	s.Close()
	for _, p := range sidecarPaths(t, dir) {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	iv := flow.Interval{Start: 0, End: 1500}
	filter := nffilter.MustParse("src ip 172.16.9.9")

	// First query: no sidecars → full scan of every segment, sidecars
	// rebuilt as a side effect.
	got, err := s2.Records(t.Context(), iv, filter)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != hot {
		t.Fatalf("pre-index query returned %v", got)
	}
	st := s2.Stats()
	if st.SegmentsScanned != 5 || st.SidecarsBuilt != 5 {
		t.Fatalf("lazy build: scanned %d, built %d, want 5/5 (stats %+v)",
			st.SegmentsScanned, st.SidecarsBuilt, st)
	}

	// Second query: the rebuilt sidecars prune everything but the hot bin.
	s2.ResetStats()
	got, err = s2.Records(t.Context(), iv, filter)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != hot {
		t.Fatalf("post-rebuild query returned %v", got)
	}
	if st = s2.Stats(); st.SegmentsPruned != 4 || st.SegmentsScanned != 1 {
		t.Fatalf("post-rebuild: pruned %d scanned %d, want 4/1", st.SegmentsPruned, st.SegmentsScanned)
	}
}

// TestCorruptSidecarFallback: garbage sidecars are ignored (correct
// results from a scan) and replaced by the rebuild.
func TestCorruptSidecarFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		r := testRecord(uint32(b*300+1), byte(b), 443, 4)
		s.Add(&r)
	}
	s.Close()
	for _, p := range sidecarPaths(t, dir) {
		if err := os.WriteFile(p, []byte("not a sidecar"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Records(t.Context(), flow.Interval{Start: 0, End: 900}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("corrupt-sidecar query returned %d records, want 3", len(got))
	}
	if st := s2.Stats(); st.SidecarsBuilt != 3 {
		t.Fatalf("corrupt sidecars should be rebuilt, built %d (stats %+v)", st.SidecarsBuilt, st)
	}
	// The rebuilt files decode cleanly now.
	for _, p := range sidecarPaths(t, dir) {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) != idxSize {
			t.Fatalf("rebuilt sidecar %s has size %d, want %d", p, len(raw), idxSize)
		}
	}
}

// TestStaleSidecarAfterAppend: appending to a reopened segment invalidates
// its sidecar (size mismatch) until the next flush refreshes it; queries
// in between stay correct.
func TestStaleSidecarAfterAppend(t *testing.T) {
	dir := t.TempDir()
	s, _ := Create(dir, 300)
	r1 := testRecord(10, 1, 80, 1)
	s.Add(&r1)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r2 := testRecord(20, 2, 443, 2)
	if err := s2.Add(&r2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := s2.Records(t.Context(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("after append, %d records, want 2", len(got))
	}
	// The refreshed sidecar covers both records: an unfiltered Count is
	// pure pushdown and still sees both.
	s2.ResetStats()
	flows, _, _, err := s2.Count(t.Context(), flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != 2 {
		t.Fatalf("Count after append = %d, want 2", flows)
	}
	if st := s2.Stats(); st.SegmentsAggregated != 1 {
		t.Fatalf("refreshed sidecar should serve Count, stats %+v", st)
	}
}

// TestBuildIndexes: the eager bulk build indexes exactly the unindexed
// segments.
func TestBuildIndexes(t *testing.T) {
	dir := t.TempDir()
	s, _ := Create(dir, 300)
	for b := 0; b < 4; b++ {
		r := testRecord(uint32(b*300), byte(b), 80, 1)
		s.Add(&r)
	}
	s.Close()
	paths := sidecarPaths(t, dir)
	os.Remove(paths[0])
	os.Remove(paths[1])

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	built, err := s2.BuildIndexes(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if built != 2 {
		t.Fatalf("BuildIndexes built %d, want 2", built)
	}
	if got := len(sidecarPaths(t, dir)); got != 4 {
		t.Fatalf("store has %d sidecars after BuildIndexes, want 4", got)
	}
}
