package nfstore

import (
	"repro/internal/flow"
	"repro/internal/nffilter"
)

// Vectorized filter evaluation: a filter AST is evaluated over a whole
// decoded column block at once, producing a selection mask, before any
// row is materialized. Semantics are exactly Node.Eval applied per row —
// the cross-format property tests pin this. ASTs containing node types
// the evaluator does not know fall back to per-row Eval on fully decoded
// records (vecSupported gates the fast path; nffilter.Requires already
// forces a full decode for such ASTs).

// vecSupported reports whether the vectorized evaluator handles every
// node of the AST.
func vecSupported(n nffilter.Node) bool {
	switch t := n.(type) {
	case *nffilter.And:
		for _, k := range t.Kids {
			if !vecSupported(k) {
				return false
			}
		}
		return true
	case *nffilter.Or:
		for _, k := range t.Kids {
			if !vecSupported(k) {
				return false
			}
		}
		return true
	case *nffilter.Not:
		return vecSupported(t.Kid)
	case nffilter.Any, *nffilter.Any:
		return true
	case *nffilter.IPMatch, *nffilter.NetMatch, *nffilter.PortMatch,
		*nffilter.ProtoMatch, *nffilter.FlagsMatch:
		return true
	case *nffilter.CounterMatch:
		switch t.Field {
		case nffilter.FieldPackets, nffilter.FieldBytes,
			nffilter.FieldDuration, nffilter.FieldRouter:
			return true
		}
		return false
	default:
		return false
	}
}

// vecEvaluator evaluates a supported AST over one column batch, reusing
// mask buffers across blocks.
type vecEvaluator struct {
	b    *colBatch
	free [][]bool
}

// alloc returns a mask sized to the current batch.
func (e *vecEvaluator) alloc() []bool {
	if n := len(e.free); n > 0 {
		m := e.free[n-1]
		e.free = e.free[:n-1]
		if cap(m) >= e.b.n {
			return m[:e.b.n]
		}
	}
	return make([]bool, e.b.n)
}

// release returns a mask to the pool.
func (e *vecEvaluator) release(m []bool) { e.free = append(e.free, m) }

// eval returns the selection mask for n over the current batch. The
// caller owns the returned mask until it releases it. n must be
// vecSupported.
func (e *vecEvaluator) eval(n nffilter.Node) []bool {
	switch t := n.(type) {
	case *nffilter.And:
		if len(t.Kids) == 0 { // empty And matches everything
			m := e.alloc()
			for i := range m {
				m[i] = true
			}
			return m
		}
		m := e.eval(t.Kids[0]) // first kid writes the mask directly
		for _, kid := range t.Kids[1:] {
			e.andInto(kid, m)
		}
		return m
	case *nffilter.Or:
		if len(t.Kids) == 0 { // empty Or matches nothing
			m := e.alloc()
			for i := range m {
				m[i] = false
			}
			return m
		}
		m := e.eval(t.Kids[0])
		for _, kid := range t.Kids[1:] {
			k := e.eval(kid)
			for i := range m {
				m[i] = m[i] || k[i]
			}
			e.release(k)
		}
		return m
	case *nffilter.Not:
		m := e.eval(t.Kid)
		for i := range m {
			m[i] = !m[i]
		}
		return m
	case nffilter.Any, *nffilter.Any:
		m := e.alloc()
		for i := range m {
			m[i] = true
		}
		return m
	case *nffilter.IPMatch:
		return e.evalIP(t)
	case *nffilter.NetMatch:
		return e.evalNet(t)
	case *nffilter.PortMatch:
		return e.evalPort(t)
	case *nffilter.ProtoMatch:
		m := e.alloc()
		p := uint8(t.Proto)
		for i, v := range e.b.proto {
			m[i] = v == p
		}
		return m
	case *nffilter.CounterMatch:
		return e.evalCounter(t)
	case *nffilter.FlagsMatch:
		m := e.alloc()
		for i, v := range e.b.flags {
			m[i] = v&t.Mask == t.Mask
		}
		return m
	default:
		// vecSupported gates this path; reaching it is a programming error.
		panic("nfstore: vectorized eval on unsupported node")
	}
}

// andInto narrows m in place to the rows n also matches: afterwards
// m[i] == m[i] && Eval(n, row i). Leaf predicates skip rows the
// conjunction has already rejected — for a selective first conjunct that
// avoids most of the comparison work. Node types without a masked
// variant fall back to eval plus a combine pass, which computes the same
// thing.
func (e *vecEvaluator) andInto(n nffilter.Node, m []bool) {
	switch t := n.(type) {
	case *nffilter.And:
		for _, kid := range t.Kids {
			e.andInto(kid, m)
		}
	case nffilter.Any, *nffilter.Any:
		// conjunction with "any" is a no-op
	case *nffilter.ProtoMatch:
		p := uint8(t.Proto)
		for i, v := range e.b.proto {
			m[i] = m[i] && v == p
		}
	case *nffilter.FlagsMatch:
		for i, v := range e.b.flags {
			m[i] = m[i] && v&t.Mask == t.Mask
		}
	case *nffilter.IPMatch:
		a := uint32(t.Addr)
		switch t.Dir {
		case nffilter.DirSrc:
			for i, v := range e.b.srcIP {
				m[i] = m[i] && v == a
			}
		case nffilter.DirDst:
			for i, v := range e.b.dstIP {
				m[i] = m[i] && v == a
			}
		default:
			for i := range m {
				m[i] = m[i] && (e.b.srcIP[i] == a || e.b.dstIP[i] == a)
			}
		}
	case *nffilter.PortMatch:
		// Exact-port conjuncts ("dst port 53") are the common shape; the
		// specialized compare keeps the loop branch-free where the generic
		// cmpApply switch would not be.
		if t.Op == nffilter.CmpEq {
			pv := t.Port
			switch t.Dir {
			case nffilter.DirSrc:
				for i, v := range e.b.srcPort {
					m[i] = m[i] && v == pv
				}
			case nffilter.DirDst:
				for i, v := range e.b.dstPort {
					m[i] = m[i] && v == pv
				}
			default:
				for i := range m {
					m[i] = m[i] && (e.b.srcPort[i] == pv || e.b.dstPort[i] == pv)
				}
			}
			return
		}
		c := uint64(t.Port)
		switch t.Dir {
		case nffilter.DirSrc:
			for i, v := range e.b.srcPort {
				m[i] = m[i] && cmpApply(t.Op, uint64(v), c)
			}
		case nffilter.DirDst:
			for i, v := range e.b.dstPort {
				m[i] = m[i] && cmpApply(t.Op, uint64(v), c)
			}
		default:
			for i := range m {
				m[i] = m[i] && (cmpApply(t.Op, uint64(e.b.srcPort[i]), c) ||
					cmpApply(t.Op, uint64(e.b.dstPort[i]), c))
			}
		}
	default:
		k := e.eval(n)
		for i := range m {
			m[i] = m[i] && k[i]
		}
		e.release(k)
	}
}

// evalIP vectorizes an exact-address match.
func (e *vecEvaluator) evalIP(t *nffilter.IPMatch) []bool {
	m := e.alloc()
	a := uint32(t.Addr)
	switch t.Dir {
	case nffilter.DirSrc:
		for i, v := range e.b.srcIP {
			m[i] = v == a
		}
	case nffilter.DirDst:
		for i, v := range e.b.dstIP {
			m[i] = v == a
		}
	default:
		for i := range m {
			m[i] = e.b.srcIP[i] == a || e.b.dstIP[i] == a
		}
	}
	return m
}

// evalNet vectorizes a CIDR match.
func (e *vecEvaluator) evalNet(t *nffilter.NetMatch) []bool {
	m := e.alloc()
	switch t.Dir {
	case nffilter.DirSrc:
		for i, v := range e.b.srcIP {
			m[i] = t.Prefix.Contains(flow.IP(v))
		}
	case nffilter.DirDst:
		for i, v := range e.b.dstIP {
			m[i] = t.Prefix.Contains(flow.IP(v))
		}
	default:
		for i := range m {
			m[i] = t.Prefix.Contains(flow.IP(e.b.srcIP[i])) ||
				t.Prefix.Contains(flow.IP(e.b.dstIP[i]))
		}
	}
	return m
}

// evalPort vectorizes a port comparison (DirEither is a per-row
// disjunction, mirroring PortMatch.Eval).
func (e *vecEvaluator) evalPort(t *nffilter.PortMatch) []bool {
	m := e.alloc()
	c := uint64(t.Port)
	switch t.Dir {
	case nffilter.DirSrc:
		for i, v := range e.b.srcPort {
			m[i] = cmpApply(t.Op, uint64(v), c)
		}
	case nffilter.DirDst:
		for i, v := range e.b.dstPort {
			m[i] = cmpApply(t.Op, uint64(v), c)
		}
	default:
		for i := range m {
			m[i] = cmpApply(t.Op, uint64(e.b.srcPort[i]), c) ||
				cmpApply(t.Op, uint64(e.b.dstPort[i]), c)
		}
	}
	return m
}

// evalCounter vectorizes a counter comparison.
func (e *vecEvaluator) evalCounter(t *nffilter.CounterMatch) []bool {
	m := e.alloc()
	switch t.Field {
	case nffilter.FieldPackets:
		for i, v := range e.b.packets {
			m[i] = cmpApply(t.Op, v, t.Value)
		}
	case nffilter.FieldBytes:
		for i, v := range e.b.bytes {
			m[i] = cmpApply(t.Op, v, t.Value)
		}
	case nffilter.FieldDuration:
		for i, v := range e.b.dur {
			m[i] = cmpApply(t.Op, uint64(v), t.Value)
		}
	case nffilter.FieldRouter:
		for i, v := range e.b.router {
			m[i] = cmpApply(t.Op, uint64(v), t.Value)
		}
	}
	return m
}

// cmpApply mirrors nffilter's CmpOp semantics (unknown operators match
// nothing, like CmpOp.apply).
func cmpApply(op nffilter.CmpOp, a, b uint64) bool {
	switch op {
	case nffilter.CmpEq:
		return a == b
	case nffilter.CmpNe:
		return a != b
	case nffilter.CmpLt:
		return a < b
	case nffilter.CmpLe:
		return a <= b
	case nffilter.CmpGt:
		return a > b
	case nffilter.CmpGe:
		return a >= b
	default:
		return false
	}
}
