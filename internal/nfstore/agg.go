package nfstore

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// Weight selects the volume dimension an aggregation accumulates. The
// extended Apriori of the paper mines support in flows and in packets;
// byte weighting is provided for completeness (nfdump offers all three).
type Weight int

// Aggregation weights.
const (
	ByFlows Weight = iota
	ByPackets
	ByBytes
)

// String names the weight dimension ("flows", "packets", "bytes").
func (w Weight) String() string {
	switch w {
	case ByFlows:
		return "flows"
	case ByPackets:
		return "packets"
	case ByBytes:
		return "bytes"
	default:
		return fmt.Sprintf("weight-%d", int(w))
	}
}

// Of returns the record's value along the weight dimension.
func (w Weight) Of(r *flow.Record) uint64 {
	switch w {
	case ByFlows:
		return 1
	case ByPackets:
		return r.Packets
	case ByBytes:
		return r.Bytes
	default:
		return 0
	}
}

// KeyCount is one row of a TopN aggregation.
type KeyCount struct {
	Value uint32 // the feature value (IP, port or protocol, widened)
	Count uint64 // accumulated weight
}

// featColumn maps a mined traffic feature to the storage column holding
// it, so TopN over a columnar segment decodes only that column. Unknown
// features fall back to a full decode.
func featColumn(f flow.Feature) nffilter.ColumnSet {
	switch f {
	case flow.FeatSrcIP:
		return nffilter.ColumnSet(0).With(nffilter.ColSrcIP)
	case flow.FeatDstIP:
		return nffilter.ColumnSet(0).With(nffilter.ColDstIP)
	case flow.FeatSrcPort:
		return nffilter.ColumnSet(0).With(nffilter.ColSrcPort)
	case flow.FeatDstPort:
		return nffilter.ColumnSet(0).With(nffilter.ColDstPort)
	case flow.FeatProto:
		return nffilter.ColumnSet(0).With(nffilter.ColProto)
	default:
		return nffilter.AllColumns
	}
}

// weightColumns lists the columns a weight dimension reads (none for flow
// counting). Unknown weights fall back to a full decode.
func weightColumns(w Weight) nffilter.ColumnSet {
	switch w {
	case ByFlows:
		return 0
	case ByPackets:
		return nffilter.ColumnSet(0).With(nffilter.ColPackets)
	case ByBytes:
		return nffilter.ColumnSet(0).With(nffilter.ColBytes)
	default:
		return nffilter.AllColumns
	}
}

// TopN aggregates matching records by a single traffic feature and returns
// the k heaviest values — nfdump's "-s" statistic, which the paper's GUI
// surfaces next to extracted itemsets. The scan runs through the pruned,
// parallel query engine with the projection narrowed to the feature and
// weight columns; unlike Count and Summaries it cannot be answered from
// sidecars alone, because zone maps keep no per-value histograms.
func (s *Store) TopN(ctx context.Context, iv flow.Interval, filter *nffilter.Filter, feat flow.Feature, weight Weight, k int) ([]KeyCount, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := s.planSegments(iv, filter)
	if err != nil {
		return nil, err
	}
	opts := scanOpts{iv: iv, filter: filter, proj: featColumn(feat) | weightColumns(weight)}
	acc := make(map[uint32]uint64)
	err = s.execPlan(ctx, plan, opts, func(r *flow.Record) error {
		acc[feat.Value(r)] += weight.Of(r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]KeyCount, 0, len(acc))
	for v, c := range acc {
		rows = append(rows, KeyCount{Value: v, Count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Value < rows[j].Value
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows, nil
}

// BinSummary is the per-bin traffic volume triple used by detectors that
// track volume metrics alongside feature distributions.
type BinSummary struct {
	Bin     flow.Interval
	Flows   uint64
	Packets uint64
	Bytes   uint64
}

// Summaries returns one BinSummary per on-disk bin overlapping iv, in time
// order. Bins with no matching records still produce a (zero) summary so
// time series stay gap-free for the detectors.
//
// Bins whose sidecar proves the filter matches every record (or, for a
// filter that cannot match, no record) are answered from the sidecar's
// totals without opening the segment — the aggregation pushdown that makes
// detector warm-up sweeps over long archives nearly free. The store
// directory is listed once for the whole call — per-bin planning reuses
// the listing, so a warm-up sweep over B bins costs one ReadDir, not B.
func (s *Store) Summaries(ctx context.Context, iv flow.Interval, filter *nffilter.Filter) ([]BinSummary, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bins, err := s.Bins()
	if err != nil {
		return nil, err
	}
	var out []BinSummary
	for _, bin := range bins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seg := flow.Interval{Start: bin, End: bin + s.binSeconds}
		if !seg.Overlaps(iv) {
			continue
		}
		// countPlan carries the whole fast path: sidecar pushdown when
		// the filter provably covers the bin, zone-map pruning (a
		// gap-free zero summary, for free) when it provably cannot
		// match, a scan otherwise.
		one := [1]uint32{bin}
		flows, packets, bytes, err := s.countPlan(ctx, s.planSegmentsIn(one[:], seg, filter), seg, filter)
		if err != nil {
			return nil, err
		}
		out = append(out, BinSummary{Bin: seg, Flows: flows, Packets: packets, Bytes: bytes})
	}
	return out, nil
}
