package nfstore

import (
	"sync"
	"testing"

	"repro/internal/flow"
)

// TestConcurrentWriterAndReaders exercises the documented concurrency
// contract: one writer appending while readers query flushed data. Run
// with -race in CI.
func TestConcurrentWriterAndReaders(t *testing.T) {
	s := newTestStore(t)
	// Seed one flushed bin so readers always have data.
	for i := 0; i < 100; i++ {
		r := testRecord(uint32(i), byte(i), 80, 1)
		if err := s.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: keeps appending to later bins and flushing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			r := testRecord(uint32(1000+i), byte(i), 443, 2)
			if err := s.Add(&r); err != nil {
				t.Error(err)
				return
			}
			if i%50 == 0 {
				if err := s.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}
		close(stop)
	}()

	// Readers: query the stable first bin repeatedly.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				flows, _, _, err := s.Count(t.Context(), flow.Interval{Start: 0, End: 300}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if flows < 100 {
					t.Errorf("reader saw %d flows in the flushed bin, want >= 100", flows)
					return
				}
			}
		}()
	}
	wg.Wait()
}
