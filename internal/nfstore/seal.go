package nfstore

import "fmt"

// Sealer is the optional streaming interface over a flow store: engines
// that can finalize one bin at a time implement it, and the live ingest
// pipeline type-asserts for it instead of widening Engine (the idiom the
// facade already uses for SetZoneMapCacheSize and SetSegmentFormat).
//
// Seal finalizes the segment of the bin containing t: pending rows are
// encoded and flushed, the zone-map sidecar is written, the file handle
// closes, and the registered on-seal hook fires. The bin stays queryable
// and even appendable — a late record reopens the segment — but a sealed
// bin is the streaming pipeline's signal that the bin is complete enough
// to detect over.
type Sealer interface {
	Seal(t uint32) error
	OnSeal(fn func(bin uint32))
}

// Compile-time checks: both store flavors are sealers.
var _ Sealer = (*Store)(nil)

// OnSeal registers fn to run after every successful Seal, outside the
// store's locks, with the sealed bin's start time. One hook; a second
// call replaces the first; nil clears it.
func (s *Store) OnSeal(fn func(bin uint32)) {
	s.mu.Lock()
	s.onSeal = fn
	s.mu.Unlock()
}

// binIsOpen reports whether the bin currently has an open writer. Scans
// consult it to tell a mid-append short tail (tolerated: readers see the
// flushed prefix) from genuine corruption of a closed segment.
func (s *Store) binIsOpen(bin uint32) bool {
	s.mu.RLock()
	_, ok := s.open[bin]
	s.mu.RUnlock()
	return ok
}

// Seal finalizes the open segment of the bin containing t: the pending
// column block is encoded, buffers flush to disk, the zone-map sidecar
// is persisted, and the file handle closes (it reopens transparently if
// a late record arrives for the bin). Sealing a bin with no open writer
// is a no-op that still fires the on-seal hook — the bin's bytes were
// already durable. This is the streaming pipeline's bin-boundary commit:
// after Seal returns, queries over the bin see every record ingested
// before the call.
func (s *Store) Seal(t uint32) error {
	bin := s.binStart(t)
	s.mu.Lock()
	var err error
	if w, ok := s.open[bin]; ok {
		err = w.seal()
		if err == nil {
			err = w.buf.Flush()
		}
		if err == nil {
			s.writeSidecar(bin, w)
		}
		if cerr := w.f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		delete(s.open, bin)
	}
	hook := s.onSeal
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("nfstore: seal bin %d: %w", bin, err)
	}
	if hook != nil {
		hook(bin)
	}
	return nil
}
