package nfstore

import (
	"bufio"
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// idxSuffix is appended to a segment path to name its zone-map sidecar
// ("nfcapd.<bin>.idx"). The suffix keeps sidecars invisible to Bins(),
// which only accepts purely numeric segment names.
const idxSuffix = ".idx"

// idxPath returns the sidecar path for a bin start.
func (s *Store) idxPath(binStart uint32) string {
	return filepath.Join(s.dir, segPrefix+strconv.FormatUint(uint64(binStart), 10)+idxSuffix)
}

// defaultZoneMapCacheEntries bounds the zmCache when no explicit cap is
// configured: 4096 decoded sidecars ≈ 9 MB — two weeks of 5-minute bins
// stay hot, while a year-long sweep in a long-lived process no longer
// pins one zone map per segment forever.
const defaultZoneMapCacheEntries = 4096

// zmCache memoizes decoded sidecars by bin so repeated queries validate
// them with one stat() instead of re-reading the file. It is a bounded
// LRU: a sweep over more segments than the cap recycles the least
// recently touched entries (evicted ones simply re-read their ~2 KB
// sidecar file on the next query).
type zmCache struct {
	mu  sync.Mutex
	cap int // 0 = defaultZoneMapCacheEntries
	m   map[uint32]*list.Element
	ll  *list.List // front = most recently used
}

// zmEntry is one cache slot.
type zmEntry struct {
	bin uint32
	z   *zoneMap
}

// setCap bounds the cache to n entries (n <= 0 restores the default)
// and evicts down to the new cap immediately.
func (c *zmCache) setCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	c.cap = n
	c.evictLocked()
}

// limit resolves the effective entry cap. Caller holds c.mu.
func (c *zmCache) limit() int {
	if c.cap > 0 {
		return c.cap
	}
	return defaultZoneMapCacheEntries
}

// get returns the cached zone map for a bin, if any, refreshing its LRU
// position.
func (c *zmCache) get(bin uint32) *zoneMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[bin]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*zmEntry).z
}

// put replaces the cached zone map for a bin, evicting the least
// recently used entries beyond the cap.
func (c *zmCache) put(bin uint32, z *zoneMap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[uint32]*list.Element{}
		c.ll = list.New()
	}
	if el, ok := c.m[bin]; ok {
		el.Value.(*zmEntry).z = z
		c.ll.MoveToFront(el)
		return
	}
	c.m[bin] = c.ll.PushFront(&zmEntry{bin: bin, z: z})
	c.evictLocked()
}

// len reports the current entry count.
func (c *zmCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// evictLocked drops LRU entries until the cache fits its cap. Caller
// holds c.mu.
func (c *zmCache) evictLocked() {
	if c.ll == nil {
		return
	}
	for limit := c.limit(); len(c.m) > limit; {
		back := c.ll.Back()
		if back == nil {
			return
		}
		c.ll.Remove(back)
		delete(c.m, back.Value.(*zmEntry).bin)
	}
}

// loadZoneMap returns a zone map that exactly covers the segment's current
// on-disk size, or nil when no such sidecar exists (missing, corrupt, or
// stale after further appends). A nil return means the caller must scan.
func (s *Store) loadZoneMap(bin uint32) *zoneMap {
	st, err := os.Stat(s.segPath(bin))
	if err != nil {
		return nil
	}
	if z := s.zmc.get(bin); z != nil && z.coveredSize == st.Size() {
		return z
	}
	raw, err := os.ReadFile(s.idxPath(bin))
	if err != nil {
		return nil
	}
	z, err := decodeZoneMap(raw, bin, s.binSeconds)
	if err != nil || z.coveredSize != st.Size() {
		// Corrupt or stale sidecar: ignore it; a later scan rebuilds it.
		return nil
	}
	s.zmc.put(bin, z)
	return z
}

// writeZoneMap persists a sidecar atomically (temp file + rename) and
// updates the cache. Sidecar writes are best-effort accelerators: callers
// may ignore the error, queries stay correct without the file.
func (s *Store) writeZoneMap(bin uint32, z *zoneMap) error {
	if z == nil || z.count == 0 {
		return nil
	}
	raw := encodeZoneMap(z, bin, s.binSeconds)
	tmp, err := os.CreateTemp(s.dir, segPrefix+"idx-*")
	if err != nil {
		return fmt.Errorf("nfstore: sidecar temp: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("nfstore: sidecar write bin %d: %w", bin, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.idxPath(bin)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("nfstore: sidecar rename bin %d: %w", bin, err)
	}
	s.zmc.put(bin, z)
	s.stats.sidecarsBuilt.Add(1)
	return nil
}

// buildZoneMap scans one segment file from the start and returns its
// zone map. Used by BuildIndexes and (prefix-limited, on a background
// goroutine) to seed a writer reopening a pre-index segment.
func (s *Store) buildZoneMap(ctx context.Context, bin uint32) (*zoneMap, error) {
	return s.buildZoneMapPrefix(ctx, bin, -1)
}

// buildZoneMapPrefix is buildZoneMap over the first limit bytes of the
// segment file (limit < 0 scans everything). The async seed scan passes
// the file size observed at open time, so it never reads bytes a
// concurrent append may still be writing.
func (s *Store) buildZoneMapPrefix(ctx context.Context, bin uint32, limit int64) (*zoneMap, error) {
	f, err := os.Open(s.segPath(bin))
	if err != nil {
		return nil, fmt.Errorf("nfstore: open segment %d: %w", bin, err)
	}
	defer f.Close()
	var src io.Reader = f
	if limit >= 0 {
		src = io.LimitReader(f, limit)
	}
	br := bufio.NewReaderSize(src, 1<<16)
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("nfstore: segment %d header: %w", bin, err)
	}
	gotBin, gotBinSec, version, err := decodeSegHeader(hdr)
	if err != nil {
		return nil, fmt.Errorf("nfstore: segment %d: %w", bin, err)
	}
	if gotBin != bin || gotBinSec != s.binSeconds {
		// Same validation as a query scan: a file whose header disagrees
		// with its name must never be summarized under that name.
		return nil, fmt.Errorf("nfstore: segment %d header mismatch (bin %d, width %d)", bin, gotBin, gotBinSec)
	}
	z := newZoneMap()
	if version == FormatV2 {
		var (
			batch    colBatch
			rec      flow.Record
			consumed = int64(segHeaderSize)
		)
		rd := blockReader{br: br}
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			count, payload, err := rd.next()
			if err == io.EOF {
				z.coveredSize = consumed
				z.format = FormatV2
				return z, nil
			}
			if err != nil {
				return nil, fmt.Errorf("nfstore: segment %d: %w", bin, err)
			}
			consumed += blockHeaderSize + int64(len(payload))
			if err := decodeBlockColumns(payload[blockMetaSize:], count, nffilter.AllColumns, &batch); err != nil {
				return nil, fmt.Errorf("nfstore: segment %d: %w", bin, err)
			}
			for i := 0; i < count; i++ {
				batch.fill(&rec, i, nffilter.AllColumns)
				z.add(&rec)
			}
		}
	}
	buf := make([]byte, RecordSize)
	var rec flow.Record
	for n := 0; ; n++ {
		if n%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				// add() maintained coveredSize via the fixed-row formula,
				// which at a clean EOF equals the bytes consumed.
				z.format = FormatV1
				return z, nil
			}
			return nil, fmt.Errorf("nfstore: segment %d read: %w", bin, err)
		}
		decodeRecord(buf, &rec)
		z.add(&rec)
	}
}

// BuildIndexes eagerly builds (or refreshes) the zone-map sidecar of every
// segment whose sidecar is missing or stale, returning how many it wrote.
// Stores predating the sidecar format work without this call — queries
// build sidecars lazily as they scan — but a bulk build front-loads the
// cost, e.g. right after Open on an archival store.
func (s *Store) BuildIndexes(ctx context.Context) (built int, err error) {
	bins, err := s.Bins()
	if err != nil {
		return 0, err
	}
	for _, bin := range bins {
		if err := ctx.Err(); err != nil {
			return built, err
		}
		if s.loadZoneMap(bin) != nil {
			continue
		}
		z, err := s.buildZoneMap(ctx, bin)
		if err != nil {
			return built, err
		}
		if err := s.writeZoneMap(bin, z); err != nil {
			return built, err
		}
		built++
	}
	return built, nil
}
