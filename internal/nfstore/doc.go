// Package nfstore is the repository's NfDump substitute: a time-binned,
// append-only store of flow records in fixed-layout binary segment files.
// The paper's extraction system keeps its flow archive in NfDump and
// queries it per alarm interval with a filter expression; this package
// provides exactly that contract (plus the top-N aggregations the GUI
// shows), with one segment file per measurement bin, so an alarm's
// interval maps to a handful of sequential file scans.
package nfstore
