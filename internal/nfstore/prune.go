package nfstore

import (
	"repro/internal/flow"
	"repro/internal/nffilter"
)

// Segment pruning is a conservative two-sided analysis of a filter AST
// against a segment's zone map:
//
//   - canMatch: may ANY summarized record satisfy the node? False lets the
//     query skip the segment entirely. Must never report false for a
//     segment holding a matching record; reporting true too often only
//     costs a scan.
//   - matchesAll: does EVERY summarized record provably satisfy the node?
//     True lets aggregations (Count, Summaries) answer from the sidecar
//     totals without touching the segment. Must never report true unless
//     it holds; reporting false too often only costs a scan.
//
// Unknown node types degrade safely in both directions (canMatch true,
// matchesAll false).

// canMatch reports whether some record summarized by z may satisfy n.
func (z *zoneMap) canMatch(n nffilter.Node) bool {
	if z.count == 0 {
		return false
	}
	switch t := n.(type) {
	case *nffilter.And:
		// Each conjunct must be individually satisfiable; this is necessary
		// but not sufficient (different records may satisfy different
		// conjuncts), hence conservative in the safe direction.
		for _, k := range t.Kids {
			if !z.canMatch(k) {
				return false
			}
		}
		return true
	case *nffilter.Or:
		for _, k := range t.Kids {
			if z.canMatch(k) {
				return true
			}
		}
		return false
	case *nffilter.Not:
		// "not X" is unsatisfiable only when X provably matches everything.
		return !z.matchesAll(t.Kid)
	case nffilter.Any, *nffilter.Any:
		return true
	case *nffilter.IPMatch:
		return z.canMatchIP(t.Dir, t.Addr)
	case *nffilter.NetMatch:
		return z.canMatchNet(t.Dir, t.Prefix)
	case *nffilter.PortMatch:
		return z.canMatchPort(t.Dir, t.Op, t.Port)
	case *nffilter.ProtoMatch:
		return z.hasProto(t.Proto)
	case *nffilter.CounterMatch:
		lo, hi := z.counterBounds(t.Field)
		return rangeCanSatisfy(lo, hi, t.Op, t.Value)
	case *nffilter.FlagsMatch:
		// A record matches when it carries every bit of the mask; if some
		// bit was never seen in the segment, no record can.
		return z.flagsOr&t.Mask == t.Mask
	default:
		return true
	}
}

// matchesAll reports whether every record summarized by z satisfies n.
func (z *zoneMap) matchesAll(n nffilter.Node) bool {
	if z.count == 0 {
		return false
	}
	switch t := n.(type) {
	case *nffilter.And:
		for _, k := range t.Kids {
			if !z.matchesAll(k) {
				return false
			}
		}
		return true
	case *nffilter.Or:
		// Sufficient condition: one branch alone covers every record.
		for _, k := range t.Kids {
			if z.matchesAll(k) {
				return true
			}
		}
		return false
	case *nffilter.Not:
		return !z.canMatch(t.Kid)
	case nffilter.Any, *nffilter.Any:
		return true
	case *nffilter.IPMatch:
		return z.allMatchIP(t.Dir, t.Addr)
	case *nffilter.NetMatch:
		return z.allMatchNet(t.Dir, t.Prefix)
	case *nffilter.PortMatch:
		return z.allMatchPort(t.Dir, t.Op, t.Port)
	case *nffilter.ProtoMatch:
		return z.protoCount() == 1 && z.hasProto(t.Proto)
	case *nffilter.CounterMatch:
		lo, hi := z.counterBounds(t.Field)
		return rangeAllSatisfy(lo, hi, t.Op, t.Value)
	case *nffilter.FlagsMatch:
		return z.flagsAnd&t.Mask == t.Mask
	default:
		return false
	}
}

// canMatchIP checks an exact-address predicate against the IP range bounds
// and the Bloom filter of the relevant side(s). Block zone maps carry no
// Blooms (noBloom) and rely on the range bounds alone.
func (z *zoneMap) canMatchIP(dir nffilter.Dir, addr flow.IP) bool {
	a := uint32(addr)
	src := a >= z.minSrcIP && a <= z.maxSrcIP && (z.noBloom || z.bloomSrc.mayContain(a))
	dst := a >= z.minDstIP && a <= z.maxDstIP && (z.noBloom || z.bloomDst.mayContain(a))
	switch dir {
	case nffilter.DirSrc:
		return src
	case nffilter.DirDst:
		return dst
	default:
		return src || dst
	}
}

// allMatchIP: every record has the address on the required side only when
// that side's range has collapsed to the single address.
func (z *zoneMap) allMatchIP(dir nffilter.Dir, addr flow.IP) bool {
	a := uint32(addr)
	src := z.minSrcIP == a && z.maxSrcIP == a
	dst := z.minDstIP == a && z.maxDstIP == a
	switch dir {
	case nffilter.DirSrc:
		return src
	case nffilter.DirDst:
		return dst
	default:
		return src || dst
	}
}

// canMatchNet checks a CIDR predicate: the prefix's address range must
// overlap the observed range of the relevant side(s).
func (z *zoneMap) canMatchNet(dir nffilter.Dir, p flow.Prefix) bool {
	first, last := prefixRange(p)
	src := first <= z.maxSrcIP && last >= z.minSrcIP
	dst := first <= z.maxDstIP && last >= z.minDstIP
	switch dir {
	case nffilter.DirSrc:
		return src
	case nffilter.DirDst:
		return dst
	default:
		return src || dst
	}
}

// allMatchNet: the whole observed range of a side fits in the prefix.
func (z *zoneMap) allMatchNet(dir nffilter.Dir, p flow.Prefix) bool {
	src := p.Contains(flow.IP(z.minSrcIP)) && p.Contains(flow.IP(z.maxSrcIP))
	dst := p.Contains(flow.IP(z.minDstIP)) && p.Contains(flow.IP(z.maxDstIP))
	switch dir {
	case nffilter.DirSrc:
		return src
	case nffilter.DirDst:
		return dst
	default:
		return src || dst
	}
}

// prefixRange returns the first and last address covered by a CIDR prefix.
func prefixRange(p flow.Prefix) (first, last uint32) {
	m := p.Masked()
	first = uint32(m.Addr)
	if m.Bits >= 32 {
		return first, first
	}
	return first, first | (^uint32(0) >> uint(m.Bits))
}

// canMatchPort checks a port comparison against the observed port ranges.
func (z *zoneMap) canMatchPort(dir nffilter.Dir, op nffilter.CmpOp, port uint16) bool {
	src := rangeCanSatisfy(uint64(z.minSrcPort), uint64(z.maxSrcPort), op, uint64(port))
	dst := rangeCanSatisfy(uint64(z.minDstPort), uint64(z.maxDstPort), op, uint64(port))
	switch dir {
	case nffilter.DirSrc:
		return src
	case nffilter.DirDst:
		return dst
	default:
		return src || dst
	}
}

// allMatchPort: every value in the observed range of one side satisfies the
// comparison (either side suffices for DirEither, since the predicate is a
// per-record disjunction).
func (z *zoneMap) allMatchPort(dir nffilter.Dir, op nffilter.CmpOp, port uint16) bool {
	src := rangeAllSatisfy(uint64(z.minSrcPort), uint64(z.maxSrcPort), op, uint64(port))
	dst := rangeAllSatisfy(uint64(z.minDstPort), uint64(z.maxDstPort), op, uint64(port))
	switch dir {
	case nffilter.DirSrc:
		return src
	case nffilter.DirDst:
		return dst
	default:
		return src || dst
	}
}

// counterBounds returns the observed [min, max] of a counter field.
func (z *zoneMap) counterBounds(f nffilter.CounterField) (lo, hi uint64) {
	switch f {
	case nffilter.FieldPackets:
		return z.minPackets, z.maxPackets
	case nffilter.FieldBytes:
		return z.minBytes, z.maxBytes
	case nffilter.FieldDuration:
		return uint64(z.minDur), uint64(z.maxDur)
	case nffilter.FieldRouter:
		return uint64(z.minRouter), uint64(z.maxRouter)
	default:
		// Unknown field: a full-range answer keeps both analyses
		// conservative (canMatch true unless the op itself is impossible,
		// matchesAll false).
		return 0, ^uint64(0)
	}
}

// rangeCanSatisfy reports whether some v in [lo, hi] satisfies (v op c).
func rangeCanSatisfy(lo, hi uint64, op nffilter.CmpOp, c uint64) bool {
	switch op {
	case nffilter.CmpEq:
		return c >= lo && c <= hi
	case nffilter.CmpNe:
		return !(lo == hi && lo == c)
	case nffilter.CmpLt:
		return lo < c
	case nffilter.CmpLe:
		return lo <= c
	case nffilter.CmpGt:
		return hi > c
	case nffilter.CmpGe:
		return hi >= c
	default:
		return true
	}
}

// rangeAllSatisfy reports whether every v in [lo, hi] satisfies (v op c).
func rangeAllSatisfy(lo, hi uint64, op nffilter.CmpOp, c uint64) bool {
	switch op {
	case nffilter.CmpEq:
		return lo == hi && lo == c
	case nffilter.CmpNe:
		return c < lo || c > hi
	case nffilter.CmpLt:
		return hi < c
	case nffilter.CmpLe:
		return hi <= c
	case nffilter.CmpGt:
		return lo > c
	case nffilter.CmpGe:
		return lo >= c
	default:
		return false
	}
}
