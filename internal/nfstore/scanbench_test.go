package nfstore

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// Scan-path benchmarks comparing the v1 fixed-row and v2 columnar
// formats on the workload the root-cause loop actually issues: a
// selective two-column filter ("proto udp and dst port 53") over a trace
// where the matching flows are an anomaly concentrated in time —
// the paper's extraction query shape. The "uniform" variant spreads the
// matches evenly instead, the worst case for v2's block skipping;
// "clustered" is where late materialization pays. cmd/benchreport -exp
// scan prints the same comparison as a table; docs/evaluation.md records
// the numbers.

const (
	benchRecords = 200_000
	benchBins    = 4
)

// benchFill populates a store. clustered=false draws every record from
// the background mix with ~4% UDP:53; clustered=true keeps UDP:53 out of
// the background and injects the same volume of matches as one
// anomaly burst in the third bin.
func benchFill(b *testing.B, s *Store, clustered bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	span := uint32(benchBins * 300)
	bgPorts := []uint16{22, 80, 443, 8080}
	n := benchRecords
	if clustered {
		n = benchRecords * 96 / 100
	}
	for i := 0; i < n; i++ {
		r := randRecord(rng, span)
		if clustered && r.Proto == flow.ProtoUDP && r.DstPort == 53 {
			r.DstPort = bgPorts[rng.Intn(len(bgPorts))]
		}
		if err := s.Add(&r); err != nil {
			b.Fatal(err)
		}
	}
	if clustered {
		for i := 0; i < benchRecords-n; i++ {
			r := flow.Record{
				Start:   2*300 + uint32(rng.Intn(40)),
				SrcIP:   flow.IPFromOctets(10, 0, 3, byte(rng.Intn(200))),
				DstIP:   flow.IPFromOctets(192, 0, 2, 7),
				SrcPort: uint16(1024 + rng.Intn(60000)),
				DstPort: 53,
				Proto:   flow.ProtoUDP,
				Packets: uint64(1 + rng.Intn(10)),
			}
			r.Bytes = r.Packets * 120
			if err := s.Add(&r); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
}

func benchScanStore(b *testing.B, format uint16, clustered bool) *Store {
	b.Helper()
	s, err := CreateFormat(b.TempDir(), 300, format)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	benchFill(b, s, clustered)
	return s
}

func benchCases(b *testing.B, run func(b *testing.B, s *Store, f *nffilter.Filter, iv flow.Interval)) {
	f, err := nffilter.Parse("proto udp and dst port 53")
	if err != nil {
		b.Fatal(err)
	}
	iv := flow.Interval{Start: 0, End: benchBins * 300}
	for _, tc := range []struct {
		name      string
		format    uint16
		clustered bool
	}{
		{"v1/clustered", FormatV1, true},
		{"v2/clustered", FormatV2, true},
		{"v1/uniform", FormatV1, false},
		{"v2/uniform", FormatV2, false},
	} {
		s := benchScanStore(b, tc.format, tc.clustered)
		b.Run(tc.name, func(b *testing.B) {
			run(b, s, f, iv)
			b.ReportMetric(float64(benchRecords)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrec/s")
		})
	}
}

// BenchmarkStoreQuery measures filtered record materialization (the
// extraction scan feeding the miner).
func BenchmarkStoreQuery(b *testing.B) {
	benchCases(b, func(b *testing.B, s *Store, f *nffilter.Filter, iv flow.Interval) {
		for i := 0; i < b.N; i++ {
			got := 0
			err := s.Query(context.Background(), iv, f, func(*flow.Record) error {
				got++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if got == 0 {
				b.Fatal("filter matched nothing")
			}
		}
	})
}

// BenchmarkStoreCount measures the filtered Count aggregate (column
// projection plus block-level pushdown).
func BenchmarkStoreCount(b *testing.B) {
	benchCases(b, func(b *testing.B, s *Store, f *nffilter.Filter, iv flow.Interval) {
		for i := 0; i < b.N; i++ {
			flows, _, _, err := s.Count(context.Background(), iv, f)
			if err != nil {
				b.Fatal(err)
			}
			if flows == 0 {
				b.Fatal("filter matched nothing")
			}
		}
	})
}
