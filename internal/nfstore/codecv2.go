package nfstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/flow"
	"repro/internal/nffilter"
)

// Segment format v2 stores records as self-delimiting compressed column
// blocks instead of fixed rows. Each block holds up to blockRecords
// records and carries:
//
//	block header:  magic(4) count(4) payloadLen(4) checksum(4)
//	payload:       block zone map (fixed blockMetaSize bytes)
//	               12 column sections, each uvarint(length) + bytes
//
// Column sections appear in nffilter.Column order. The length prefix
// makes unprojected columns skippable without decoding; the per-block
// zone map lets scans prune or aggregate whole blocks inside a segment.
// Encodings per column:
//
//	Start, Dur                       delta varints (first value uvarint,
//	                                 then zigzag deltas, wrapping u32)
//	SrcIP, DstIP                     raw little-endian u32
//	SrcPort, DstPort, Router, Anno   u16 dictionary (uvarint cardinality,
//	                                 value list, 1-byte indexes; a single
//	                                 value omits the indexes; cardinality
//	                                 marker 0 = raw little-endian u16)
//	Proto, Flags                     u8 dictionary (same scheme, always
//	                                 dictionary — at most 256 values)
//	Packets, Bytes                   delta varints (wrapping u64)
//
// The checksum is CRC-32C (Castagnoli) over the payload — hardware
// accelerated on amd64/arm64, it costs a fraction of the scan — so a
// truncated or mangled block is an error, never silently wrong rows. All
// decoder limits are validated before allocation: a hostile block
// errors, it cannot panic or balloon memory.

// Segment formats selectable per store (and per segment: a store may mix
// formats, each segment declares its own in the header version field).
const (
	// FormatV1 is the fixed-row format: 42-byte little-endian records.
	FormatV1 uint16 = 1
	// FormatV2 is the columnar format: compressed column blocks with
	// per-block zone maps.
	FormatV2 uint16 = 2
)

// DefaultSegmentFormat is what new stores (and stores whose metadata
// predates the format field) write for new segments.
const DefaultSegmentFormat = FormatV2

// segVersionMax is the newest segment format this build reads.
const segVersionMax = FormatV2

// blockMagic starts every v2 column block ("NFBK" little-endian).
const blockMagic = 0x4b42464e

// blockHeaderSize is the fixed block header: magic(4) count(4)
// payloadLen(4) checksum(4).
const blockHeaderSize = 16

// blockRecords is the target record count per block: large enough to
// amortize per-block metadata, small enough that min/max zone maps stay
// selective within a segment.
const blockRecords = 4096

// maxBlockRecords bounds the record count a decoder accepts per block.
const maxBlockRecords = 1 << 16

// maxBlockPayload bounds the payload length a decoder accepts — far
// above any writer-produced block, low enough that a hostile header
// cannot demand a huge allocation.
const maxBlockPayload = 1 << 24

// blockMetaSize is the fixed encoded size of a block's zone map: bounds,
// protocol bitmap, flag masks and volume totals (no Blooms — a block is
// small enough that range bounds carry the pruning).
const blockMetaSize = 126

// validFormat reports whether f names a known segment format.
func validFormat(f uint16) bool { return f == FormatV1 || f == FormatV2 }

// blockCRC is the block checksum polynomial table. Castagnoli, not the
// sidecar's FNV: the block checksum runs over every scanned byte, and
// CRC-32C has hardware support where FNV's serial multiply chain would
// dominate the whole scan.
var blockCRC = crc32.MakeTable(crc32.Castagnoli)

// blockChecksum is the integrity checksum over a block payload.
func blockChecksum(payload []byte) uint32 { return crc32.Checksum(payload, blockCRC) }

// colBatch holds one decoded block as column slices. Slices for columns
// the projection skipped hold stale data and must not be read — row
// materialization consults the decoded-column set.
type colBatch struct {
	n       int
	start   []uint32
	dur     []uint32
	srcIP   []uint32
	dstIP   []uint32
	srcPort []uint16
	dstPort []uint16
	proto   []uint8
	flags   []uint8
	router  []uint16
	anno    []uint16
	packets []uint64
	bytes   []uint64
}

// fill materializes row i into r. Columns outside dec are zeroed — r is
// reused between rows and must not leak a previous row's fields.
func (b *colBatch) fill(r *flow.Record, i int, dec nffilter.ColumnSet) {
	*r = flow.Record{}
	if dec.Has(nffilter.ColStart) {
		r.Start = b.start[i]
	}
	if dec.Has(nffilter.ColDur) {
		r.Dur = b.dur[i]
	}
	if dec.Has(nffilter.ColSrcIP) {
		r.SrcIP = flow.IP(b.srcIP[i])
	}
	if dec.Has(nffilter.ColDstIP) {
		r.DstIP = flow.IP(b.dstIP[i])
	}
	if dec.Has(nffilter.ColSrcPort) {
		r.SrcPort = b.srcPort[i]
	}
	if dec.Has(nffilter.ColDstPort) {
		r.DstPort = b.dstPort[i]
	}
	if dec.Has(nffilter.ColProto) {
		r.Proto = flow.Protocol(b.proto[i])
	}
	if dec.Has(nffilter.ColFlags) {
		r.Flags = b.flags[i]
	}
	if dec.Has(nffilter.ColRouter) {
		r.Router = b.router[i]
	}
	if dec.Has(nffilter.ColAnno) {
		r.Anno = flow.Annotation(b.anno[i])
	}
	if dec.Has(nffilter.ColPackets) {
		r.Packets = b.packets[i]
	}
	if dec.Has(nffilter.ColBytes) {
		r.Bytes = b.bytes[i]
	}
}

// growU32/growU16/growU8/growU64 size a column slice to n reusing capacity.
func growU32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}

func growU16(s []uint16, n int) []uint16 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint16, n)
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint8, n)
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

// growBytes sizes a byte buffer to n reusing capacity.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// appendBlock encodes one block of records (1 ≤ len ≤ maxBlockRecords)
// onto dst: header, zone-map meta, then the column sections. The encoding
// is deterministic — dictionaries list values in first-occurrence order —
// so identical record sequences produce identical bytes.
func appendBlock(dst []byte, recs []flow.Record) []byte {
	headerAt := len(dst)
	dst = append(dst, make([]byte, blockHeaderSize)...)
	payloadAt := len(dst)

	var zm zoneMap
	for i := range recs {
		zm.add(&recs[i])
	}
	dst = appendBlockMeta(dst, &zm)

	var u32s []uint32
	var u16s []uint16
	var u8s []uint8
	var u64s []uint64
	n := len(recs)
	for c := nffilter.Column(0); c < nffilter.NumColumns; c++ {
		var sec []byte
		switch c {
		case nffilter.ColStart:
			u32s = growU32(u32s, n)
			for i := range recs {
				u32s[i] = recs[i].Start
			}
			sec = appendDeltaU32(nil, u32s)
		case nffilter.ColDur:
			u32s = growU32(u32s, n)
			for i := range recs {
				u32s[i] = recs[i].Dur
			}
			sec = appendDeltaU32(nil, u32s)
		case nffilter.ColSrcIP:
			u32s = growU32(u32s, n)
			for i := range recs {
				u32s[i] = uint32(recs[i].SrcIP)
			}
			sec = appendRawU32(nil, u32s)
		case nffilter.ColDstIP:
			u32s = growU32(u32s, n)
			for i := range recs {
				u32s[i] = uint32(recs[i].DstIP)
			}
			sec = appendRawU32(nil, u32s)
		case nffilter.ColSrcPort:
			u16s = growU16(u16s, n)
			for i := range recs {
				u16s[i] = recs[i].SrcPort
			}
			sec = appendDictU16(nil, u16s)
		case nffilter.ColDstPort:
			u16s = growU16(u16s, n)
			for i := range recs {
				u16s[i] = recs[i].DstPort
			}
			sec = appendDictU16(nil, u16s)
		case nffilter.ColProto:
			u8s = growU8(u8s, n)
			for i := range recs {
				u8s[i] = uint8(recs[i].Proto)
			}
			sec = appendDictU8(nil, u8s)
		case nffilter.ColFlags:
			u8s = growU8(u8s, n)
			for i := range recs {
				u8s[i] = recs[i].Flags
			}
			sec = appendDictU8(nil, u8s)
		case nffilter.ColRouter:
			u16s = growU16(u16s, n)
			for i := range recs {
				u16s[i] = recs[i].Router
			}
			sec = appendDictU16(nil, u16s)
		case nffilter.ColAnno:
			u16s = growU16(u16s, n)
			for i := range recs {
				u16s[i] = uint16(recs[i].Anno)
			}
			sec = appendDictU16(nil, u16s)
		case nffilter.ColPackets:
			u64s = growU64(u64s, n)
			for i := range recs {
				u64s[i] = recs[i].Packets
			}
			sec = appendDeltaU64(nil, u64s)
		case nffilter.ColBytes:
			u64s = growU64(u64s, n)
			for i := range recs {
				u64s[i] = recs[i].Bytes
			}
			sec = appendDeltaU64(nil, u64s)
		}
		dst = binary.AppendUvarint(dst, uint64(len(sec)))
		dst = append(dst, sec...)
	}

	payload := dst[payloadAt:]
	hdr := dst[headerAt:payloadAt]
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], blockMagic)
	le.PutUint32(hdr[4:], uint32(len(recs)))
	le.PutUint32(hdr[8:], uint32(len(payload)))
	le.PutUint32(hdr[12:], blockChecksum(payload))
	return dst
}

// decodeBlockHeader validates a block header and returns the record
// count, payload length and payload checksum.
func decodeBlockHeader(hdr []byte) (count, payloadLen int, checksum uint32, err error) {
	le := binary.LittleEndian
	if got := le.Uint32(hdr[0:]); got != blockMagic {
		return 0, 0, 0, fmt.Errorf("bad block magic %#x", got)
	}
	count = int(le.Uint32(hdr[4:]))
	payloadLen = int(le.Uint32(hdr[8:]))
	if count == 0 || count > maxBlockRecords {
		return 0, 0, 0, fmt.Errorf("block record count %d out of range [1, %d]", count, maxBlockRecords)
	}
	if payloadLen < blockMetaSize || payloadLen > maxBlockPayload {
		return 0, 0, 0, fmt.Errorf("block payload length %d out of range [%d, %d]",
			payloadLen, blockMetaSize, maxBlockPayload)
	}
	return count, payloadLen, le.Uint32(hdr[12:]), nil
}

// appendBlockMeta encodes a block's zone map (bounds, protocol bitmap,
// flag masks, volume totals — no Blooms, no covered size: a block's
// extent is delimited by its own header).
func appendBlockMeta(dst []byte, z *zoneMap) []byte {
	at := len(dst)
	dst = append(dst, make([]byte, blockMetaSize)...)
	buf := dst[at:]
	le := binary.LittleEndian
	le.PutUint32(buf[0:], z.minStart)
	le.PutUint32(buf[4:], z.maxStart)
	le.PutUint32(buf[8:], z.minSrcIP)
	le.PutUint32(buf[12:], z.maxSrcIP)
	le.PutUint32(buf[16:], z.minDstIP)
	le.PutUint32(buf[20:], z.maxDstIP)
	le.PutUint16(buf[24:], z.minSrcPort)
	le.PutUint16(buf[26:], z.maxSrcPort)
	le.PutUint16(buf[28:], z.minDstPort)
	le.PutUint16(buf[30:], z.maxDstPort)
	le.PutUint16(buf[32:], z.minRouter)
	le.PutUint16(buf[34:], z.maxRouter)
	le.PutUint32(buf[36:], z.minDur)
	le.PutUint32(buf[40:], z.maxDur)
	le.PutUint64(buf[44:], z.minPackets)
	le.PutUint64(buf[52:], z.maxPackets)
	le.PutUint64(buf[60:], z.minBytes)
	le.PutUint64(buf[68:], z.maxBytes)
	copy(buf[76:108], z.protoBitmap[:])
	buf[108] = z.flagsOr
	buf[109] = z.flagsAnd
	le.PutUint64(buf[110:], z.packets)
	le.PutUint64(buf[118:], z.bytes)
	return dst
}

// decodeBlockMeta unpacks a block zone map from the front of a payload
// into z (reused across blocks). The decoded map has noBloom set: block
// IP pruning uses range bounds only.
func decodeBlockMeta(payload []byte, count int, z *zoneMap) error {
	if len(payload) < blockMetaSize {
		return fmt.Errorf("block payload %d bytes, need %d for zone map", len(payload), blockMetaSize)
	}
	buf := payload[:blockMetaSize]
	le := binary.LittleEndian
	*z = zoneMap{
		noBloom:    true,
		count:      uint64(count),
		minStart:   le.Uint32(buf[0:]),
		maxStart:   le.Uint32(buf[4:]),
		minSrcIP:   le.Uint32(buf[8:]),
		maxSrcIP:   le.Uint32(buf[12:]),
		minDstIP:   le.Uint32(buf[16:]),
		maxDstIP:   le.Uint32(buf[20:]),
		minSrcPort: le.Uint16(buf[24:]),
		maxSrcPort: le.Uint16(buf[26:]),
		minDstPort: le.Uint16(buf[28:]),
		maxDstPort: le.Uint16(buf[30:]),
		minRouter:  le.Uint16(buf[32:]),
		maxRouter:  le.Uint16(buf[34:]),
		minDur:     le.Uint32(buf[36:]),
		maxDur:     le.Uint32(buf[40:]),
		minPackets: le.Uint64(buf[44:]),
		maxPackets: le.Uint64(buf[52:]),
		minBytes:   le.Uint64(buf[60:]),
		maxBytes:   le.Uint64(buf[68:]),
		flagsOr:    buf[108],
		flagsAnd:   buf[109],
		packets:    le.Uint64(buf[110:]),
		bytes:      le.Uint64(buf[118:]),
	}
	copy(z.protoBitmap[:], buf[76:108])
	return nil
}

// decodeBlockColumns decodes the column sections after the zone-map meta
// into b, touching only the columns in dec (others are skipped via their
// length prefix and left stale in b). Every structural invariant is
// checked; a malformed section is an error, never a panic.
func decodeBlockColumns(sections []byte, count int, dec nffilter.ColumnSet, b *colBatch) error {
	b.n = count
	off := 0
	for c := nffilter.Column(0); c < nffilter.NumColumns; c++ {
		secLen, n := binary.Uvarint(sections[off:])
		if n <= 0 || secLen > uint64(len(sections)-off-n) {
			return fmt.Errorf("column %s: bad section length", c)
		}
		off += n
		sec := sections[off : off+int(secLen)]
		off += int(secLen)
		if !dec.Has(c) {
			continue
		}
		var err error
		switch c {
		case nffilter.ColStart:
			b.start = growU32(b.start, count)
			err = decodeDeltaU32(sec, b.start)
		case nffilter.ColDur:
			b.dur = growU32(b.dur, count)
			err = decodeDeltaU32(sec, b.dur)
		case nffilter.ColSrcIP:
			b.srcIP = growU32(b.srcIP, count)
			err = decodeRawU32(sec, b.srcIP)
		case nffilter.ColDstIP:
			b.dstIP = growU32(b.dstIP, count)
			err = decodeRawU32(sec, b.dstIP)
		case nffilter.ColSrcPort:
			b.srcPort = growU16(b.srcPort, count)
			err = decodeDictU16(sec, b.srcPort)
		case nffilter.ColDstPort:
			b.dstPort = growU16(b.dstPort, count)
			err = decodeDictU16(sec, b.dstPort)
		case nffilter.ColProto:
			b.proto = growU8(b.proto, count)
			err = decodeDictU8(sec, b.proto)
		case nffilter.ColFlags:
			b.flags = growU8(b.flags, count)
			err = decodeDictU8(sec, b.flags)
		case nffilter.ColRouter:
			b.router = growU16(b.router, count)
			err = decodeDictU16(sec, b.router)
		case nffilter.ColAnno:
			b.anno = growU16(b.anno, count)
			err = decodeDictU16(sec, b.anno)
		case nffilter.ColPackets:
			b.packets = growU64(b.packets, count)
			err = decodeDeltaU64(sec, b.packets)
		case nffilter.ColBytes:
			b.bytes = growU64(b.bytes, count)
			err = decodeDeltaU64(sec, b.bytes)
		}
		if err != nil {
			return fmt.Errorf("column %s: %w", c, err)
		}
	}
	if off != len(sections) {
		return fmt.Errorf("%d trailing bytes after column sections", len(sections)-off)
	}
	return nil
}

// appendDeltaU32 encodes vals as uvarint(first) + zigzag varint deltas.
// Deltas wrap modulo 2³², so any value sequence round-trips.
func appendDeltaU32(dst []byte, vals []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(vals[0]))
	for i := 1; i < len(vals); i++ {
		dst = binary.AppendVarint(dst, int64(int32(vals[i]-vals[i-1])))
	}
	return dst
}

// deltaVarint decodes the zigzag varint at sec[off:] without the call
// overhead of binary.Varint — this loop runs once per record per delta
// column, squarely on the scan's hot path. One-byte deltas return
// immediately; the continuation loop rejects the same inputs
// binary.Uvarint does (truncation, >64-bit values). Returns the delta,
// the new offset, and ok=false on a malformed or missing varint.
func deltaVarint(sec []byte, off int) (d int64, _ int, ok bool) {
	if off >= len(sec) {
		return 0, off, false
	}
	b := sec[off]
	off++
	if b < 0x80 {
		u := uint64(b)
		return int64(u>>1) ^ -int64(u&1), off, true
	}
	u := uint64(b & 0x7f)
	for s := uint(7); off < len(sec); s += 7 {
		b = sec[off]
		off++
		if b < 0x80 {
			if s == 63 && b > 1 {
				return 0, off, false // overflows 64 bits
			}
			u |= uint64(b) << s
			return int64(u>>1) ^ -int64(u&1), off, true
		}
		if s == 63 {
			return 0, off, false // more than 10 bytes
		}
		u |= uint64(b&0x7f) << s
	}
	return 0, off, false // truncated
}

// decodeDeltaU32 reverses appendDeltaU32 into out (len = record count).
func decodeDeltaU32(sec []byte, out []uint32) error {
	first, n := binary.Uvarint(sec)
	if n <= 0 || first > 0xffffffff {
		return fmt.Errorf("bad first value")
	}
	out[0] = uint32(first)
	off := n
	prev := uint32(first)
	for i := 1; i < len(out); i++ {
		d, next, ok := deltaVarint(sec, off)
		if !ok {
			return fmt.Errorf("bad delta at row %d", i)
		}
		off = next
		prev += uint32(d)
		out[i] = prev
	}
	if off != len(sec) {
		return fmt.Errorf("%d trailing bytes", len(sec)-off)
	}
	return nil
}

// appendDeltaU64 is appendDeltaU32 for u64 values (deltas wrap modulo 2⁶⁴).
func appendDeltaU64(dst []byte, vals []uint64) []byte {
	dst = binary.AppendUvarint(dst, vals[0])
	for i := 1; i < len(vals); i++ {
		dst = binary.AppendVarint(dst, int64(vals[i]-vals[i-1]))
	}
	return dst
}

// decodeDeltaU64 reverses appendDeltaU64 into out.
func decodeDeltaU64(sec []byte, out []uint64) error {
	first, n := binary.Uvarint(sec)
	if n <= 0 {
		return fmt.Errorf("bad first value")
	}
	out[0] = first
	off := n
	prev := first
	for i := 1; i < len(out); i++ {
		d, next, ok := deltaVarint(sec, off)
		if !ok {
			return fmt.Errorf("bad delta at row %d", i)
		}
		off = next
		prev += uint64(d)
		out[i] = prev
	}
	if off != len(sec) {
		return fmt.Errorf("%d trailing bytes", len(sec)-off)
	}
	return nil
}

// appendRawU32 encodes vals as little-endian u32s (IP columns: high
// cardinality, no point dictionary- or delta-coding).
func appendRawU32(dst []byte, vals []uint32) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// decodeRawU32 reverses appendRawU32 into out.
func decodeRawU32(sec []byte, out []uint32) error {
	if len(sec) != 4*len(out) {
		return fmt.Errorf("section %d bytes, want %d", len(sec), 4*len(out))
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(sec[4*i:])
	}
	return nil
}

// appendDictU16 dictionary-encodes a u16 column: uvarint cardinality,
// the distinct values (first-occurrence order, uvarint each), then one
// index byte per row. A single-value column omits the indexes; past 256
// distinct values it falls back to raw little-endian u16s, marked by
// cardinality 0.
func appendDictU16(dst []byte, vals []uint16) []byte {
	var dict []uint16
	idx := make(map[uint16]uint8, 16)
	for _, v := range vals {
		if _, ok := idx[v]; !ok {
			if len(dict) == 256 {
				dict = nil
				break
			}
			idx[v] = uint8(len(dict))
			dict = append(dict, v)
		}
	}
	if dict == nil {
		dst = binary.AppendUvarint(dst, 0)
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint16(dst, v)
		}
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	for _, v := range dict {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	if len(dict) == 1 {
		return dst
	}
	for _, v := range vals {
		dst = append(dst, idx[v])
	}
	return dst
}

// decodeDictU16 reverses appendDictU16 into out.
func decodeDictU16(sec []byte, out []uint16) error {
	card, n := binary.Uvarint(sec)
	if n <= 0 || card > 256 {
		return fmt.Errorf("bad dictionary cardinality")
	}
	off := n
	if card == 0 { // raw fallback
		if len(sec)-off != 2*len(out) {
			return fmt.Errorf("raw section %d bytes, want %d", len(sec)-off, 2*len(out))
		}
		for i := range out {
			out[i] = binary.LittleEndian.Uint16(sec[off+2*i:])
		}
		return nil
	}
	dict := make([]uint16, card)
	for i := range dict {
		v, n := binary.Uvarint(sec[off:])
		if n <= 0 || v > 0xffff {
			return fmt.Errorf("bad dictionary value %d", i)
		}
		dict[i] = uint16(v)
		off += n
	}
	if card == 1 {
		if off != len(sec) {
			return fmt.Errorf("%d trailing bytes", len(sec)-off)
		}
		for i := range out {
			out[i] = dict[0]
		}
		return nil
	}
	if len(sec)-off != len(out) {
		return fmt.Errorf("index section %d bytes, want %d", len(sec)-off, len(out))
	}
	for i := range out {
		ix := sec[off+i]
		if uint64(ix) >= card {
			return fmt.Errorf("index %d out of dictionary range %d", ix, card)
		}
		out[i] = dict[ix]
	}
	return nil
}

// appendDictU8 dictionary-encodes a u8 column (Proto, Flags). At most 256
// distinct byte values exist, so there is no raw fallback.
func appendDictU8(dst []byte, vals []uint8) []byte {
	var seen [256]bool
	var dict []uint8
	var idx [256]uint8
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			idx[v] = uint8(len(dict))
			dict = append(dict, v)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	dst = append(dst, dict...)
	if len(dict) == 1 {
		return dst
	}
	for _, v := range vals {
		dst = append(dst, idx[v])
	}
	return dst
}

// decodeDictU8 reverses appendDictU8 into out.
func decodeDictU8(sec []byte, out []uint8) error {
	card, n := binary.Uvarint(sec)
	if n <= 0 || card == 0 || card > 256 {
		return fmt.Errorf("bad dictionary cardinality")
	}
	off := n
	if len(sec)-off < int(card) {
		return fmt.Errorf("dictionary truncated")
	}
	dict := sec[off : off+int(card)]
	off += int(card)
	if card == 1 {
		if off != len(sec) {
			return fmt.Errorf("%d trailing bytes", len(sec)-off)
		}
		for i := range out {
			out[i] = dict[0]
		}
		return nil
	}
	if len(sec)-off != len(out) {
		return fmt.Errorf("index section %d bytes, want %d", len(sec)-off, len(out))
	}
	for i := range out {
		ix := sec[off+i]
		if uint64(ix) >= card {
			return fmt.Errorf("index %d out of dictionary range %d", ix, card)
		}
		out[i] = dict[ix]
	}
	return nil
}
