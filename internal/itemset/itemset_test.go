package itemset

import (
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

func mkRecord(src, dst byte, sport, dport uint16, proto flow.Protocol, pkts uint64) flow.Record {
	return flow.Record{
		Start:   100,
		SrcIP:   flow.IPFromOctets(10, 0, 0, src),
		DstIP:   flow.IPFromOctets(192, 0, 2, dst),
		SrcPort: sport,
		DstPort: dport,
		Proto:   proto,
		Packets: pkts,
		Bytes:   pkts * 64,
	}
}

func TestItemPackUnpack(t *testing.T) {
	f := func(feat uint8, value uint32) bool {
		fe := flow.Feature(feat % flow.NumFeatures)
		it := NewItem(fe, value)
		return it.Feature() == fe && it.Value() == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestItemString(t *testing.T) {
	it := NewItem(flow.FeatSrcIP, uint32(flow.MustParseIP("10.191.64.165")))
	if it.String() != "srcIP=10.191.64.165" {
		t.Fatalf("Item.String = %q", it.String())
	}
	it2 := NewItem(flow.FeatDstPort, 80)
	if it2.String() != "dstPort=80" {
		t.Fatalf("Item.String = %q", it2.String())
	}
}

func TestItemOrderingByFeature(t *testing.T) {
	// Items sort by feature first because the feature occupies high bits.
	a := NewItem(flow.FeatSrcIP, 0xffffffff)
	b := NewItem(flow.FeatDstIP, 0)
	if a >= b {
		t.Fatal("srcIP item must sort before dstIP item regardless of value")
	}
}

func TestNewSetSortsAndDedups(t *testing.T) {
	i1 := NewItem(flow.FeatDstPort, 80)
	i2 := NewItem(flow.FeatSrcIP, 5)
	s := NewSet(i1, i2, i1)
	if s.Len() != 2 || s[0] != i2 || s[1] != i1 {
		t.Fatalf("NewSet = %v", s)
	}
}

func TestSetOps(t *testing.T) {
	i1 := NewItem(flow.FeatSrcIP, 1)
	i2 := NewItem(flow.FeatDstIP, 2)
	i3 := NewItem(flow.FeatDstPort, 80)
	s := NewSet(i1, i2)
	if !s.Contains(i1) || s.Contains(i3) {
		t.Fatal("Contains wrong")
	}
	if !s.SubsetOf(NewSet(i1, i2, i3)) {
		t.Fatal("SubsetOf wrong for proper subset")
	}
	if NewSet(i1, i3).SubsetOf(s) {
		t.Fatal("SubsetOf wrong for non-subset")
	}
	if !NewSet().SubsetOf(s) {
		t.Fatal("empty set must be subset of all")
	}
	u := NewSet(i1, i2).Union(NewSet(i2, i3))
	if !u.Equal(NewSet(i1, i2, i3)) {
		t.Fatalf("Union = %v", u)
	}
	if v, ok := s.Feature(flow.FeatDstIP); !ok || v != 2 {
		t.Fatalf("Feature lookup = %v %v", v, ok)
	}
	if _, ok := s.Feature(flow.FeatProto); ok {
		t.Fatal("Feature lookup must miss absent feature")
	}
}

func TestSetKeyEqualIffEqual(t *testing.T) {
	f := func(a, b []uint32) bool {
		mk := func(vals []uint32) Set {
			items := make([]Item, 0, len(vals))
			for i, v := range vals {
				items = append(items, NewItem(flow.Feature(i%flow.NumFeatures), v))
			}
			return NewSet(items...)
		}
		sa, sb := mk(a), mk(b)
		return (sa.Key() == sb.Key()) == sa.Equal(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(
		NewItem(flow.FeatDstPort, 80),
		NewItem(flow.FeatSrcIP, uint32(flow.MustParseIP("10.0.0.1"))),
	)
	if s.String() != "srcIP=10.0.0.1, dstPort=80" {
		t.Fatalf("Set.String = %q", s.String())
	}
	if NewSet().String() != "{}" {
		t.Fatal("empty set string")
	}
}

func TestFromRecordsAggregation(t *testing.T) {
	recs := []flow.Record{
		mkRecord(1, 1, 1000, 80, flow.ProtoTCP, 10),
		mkRecord(1, 1, 1000, 80, flow.ProtoTCP, 20), // same tuple
		mkRecord(2, 1, 1000, 80, flow.ProtoTCP, 5),
	}
	ds := FromRecords(recs)
	if ds.Len() != 2 {
		t.Fatalf("Len = %d, want 2 aggregated transactions", ds.Len())
	}
	if ds.TotalFlows() != 3 || ds.TotalPackets() != 35 {
		t.Fatalf("totals = %d flows %d packets", ds.TotalFlows(), ds.TotalPackets())
	}
	if ds.Total(false) != 3 || ds.Total(true) != 35 {
		t.Fatal("Total(dim) disagrees")
	}
	// The aggregated tuple has Flows=2, Packets=30.
	found := false
	for i := 0; i < ds.Len(); i++ {
		tx := ds.Tx(i)
		if tx.Flows == 2 {
			found = true
			if tx.Packets != 30 {
				t.Fatalf("aggregated packets = %d", tx.Packets)
			}
			if tx.Weight(false) != 2 || tx.Weight(true) != 30 {
				t.Fatal("Tx.Weight wrong")
			}
		}
	}
	if !found {
		t.Fatal("aggregated transaction missing")
	}
}

func TestSupportOracle(t *testing.T) {
	recs := []flow.Record{
		mkRecord(1, 1, 1000, 80, flow.ProtoTCP, 10),
		mkRecord(1, 2, 1001, 80, flow.ProtoTCP, 20),
		mkRecord(2, 2, 1002, 443, flow.ProtoTCP, 30),
	}
	ds := FromRecords(recs)
	port80 := NewSet(NewItem(flow.FeatDstPort, 80))
	if got := ds.Support(port80, false); got != 2 {
		t.Fatalf("flow support of dstPort=80 = %d", got)
	}
	if got := ds.Support(port80, true); got != 30 {
		t.Fatalf("packet support of dstPort=80 = %d", got)
	}
	src1port80 := NewSet(
		NewItem(flow.FeatSrcIP, uint32(flow.IPFromOctets(10, 0, 0, 1))),
		NewItem(flow.FeatDstPort, 80),
	)
	if got := ds.Support(src1port80, false); got != 2 {
		t.Fatalf("support of pair = %d", got)
	}
	empty := NewSet()
	if got := ds.Support(empty, false); got != 3 {
		t.Fatalf("empty itemset must match everything: %d", got)
	}
}

func TestItemsOfMatchesFeatures(t *testing.T) {
	r := mkRecord(9, 8, 1234, 80, flow.ProtoUDP, 1)
	items := ItemsOf(&r)
	for i, f := range flow.Features() {
		if items[i].Feature() != f || items[i].Value() != f.Value(&r) {
			t.Fatalf("ItemsOf[%d] = %v", i, items[i])
		}
	}
	// Match/txContains agrees with SubsetOf semantics.
	s := NewSet(items[0], items[3])
	if !Match(&items, s) {
		t.Fatal("Match must accept items drawn from the transaction")
	}
	other := NewSet(NewItem(flow.FeatSrcIP, 0xdeadbeef))
	if Match(&items, other) {
		t.Fatal("Match must reject foreign items")
	}
}

func TestSortFrequentAndMaximal(t *testing.T) {
	i1 := NewItem(flow.FeatSrcIP, 1)
	i2 := NewItem(flow.FeatDstIP, 2)
	i3 := NewItem(flow.FeatDstPort, 80)
	fs := []Frequent{
		{Items: NewSet(i1), Support: 10},
		{Items: NewSet(i1, i2), Support: 10},
		{Items: NewSet(i3), Support: 5},
		{Items: NewSet(i1, i2, i3), Support: 3},
	}
	SortFrequent(fs)
	if fs[0].Items.Len() != 2 || fs[0].Support != 10 {
		t.Fatalf("sort order wrong: first = %v", fs[0])
	}
	max := MaximalOnly(fs)
	// {i1} ⊂ {i1,i2} ⊂ {i1,i2,i3} and {i3} ⊂ {i1,i2,i3}: only the pair and
	// the triple survive... but {i1,i2} ⊂ {i1,i2,i3} too, so only the
	// triple and nothing else? No: maximality is about set inclusion only,
	// independent of support, so the only maximal set is {i1,i2,i3}.
	if len(max) != 1 || max[0].Items.Len() != 3 {
		t.Fatalf("MaximalOnly = %v", max)
	}
}

func TestFrequentString(t *testing.T) {
	fr := Frequent{Items: NewSet(NewItem(flow.FeatDstPort, 80)), Support: 42}
	if fr.String() != "dstPort=80 (support=42)" {
		t.Fatalf("Frequent.String = %q", fr.String())
	}
}

func TestFromTxs(t *testing.T) {
	r := mkRecord(1, 1, 1, 80, flow.ProtoTCP, 7)
	txs := []Tx{{Items: ItemsOf(&r), Flows: 3, Packets: 21}}
	ds := FromTxs(txs)
	if ds.TotalFlows() != 3 || ds.TotalPackets() != 21 || ds.Len() != 1 {
		t.Fatalf("FromTxs totals wrong: %d %d", ds.TotalFlows(), ds.TotalPackets())
	}
}
