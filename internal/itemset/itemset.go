package itemset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/flow"
)

// Item is one (feature, value) pair packed as feature<<32 | value.
// Because the feature occupies the high bits and each transaction has
// exactly one item per feature, a transaction's items are naturally sorted
// and itemsets over them can use plain integer ordering.
type Item uint64

// NewItem packs a feature and a value into an Item.
func NewItem(f flow.Feature, value uint32) Item {
	return Item(uint64(f)<<32 | uint64(value))
}

// Feature returns the item's traffic feature.
func (it Item) Feature() flow.Feature { return flow.Feature(it >> 32) }

// Value returns the item's raw 32-bit value.
func (it Item) Value() uint32 { return uint32(it) }

// String renders the item as "feature=value" with operator-friendly value
// formatting ("srcIP=10.191.64.165", "dstPort=80", "proto=tcp").
func (it Item) String() string {
	f := it.Feature()
	return f.String() + "=" + f.FormatValue(it.Value())
}

// Set is an itemset: a sorted slice of distinct items. The zero value is
// the empty itemset.
type Set []Item

// NewSet builds a Set from items in any order, deduplicating.
func NewSet(items ...Item) Set {
	s := make(Set, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Dedup in place.
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// Len returns the number of items.
func (s Set) Len() int { return len(s) }

// Contains reports whether the set includes item (binary search).
func (s Set) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// SubsetOf reports whether every item of s appears in t. Both sets are
// sorted, so this is a linear merge.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j >= len(t) || t[j] != it {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether two sets hold the same items.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Union returns the sorted union of s and t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Feature returns the value for feature f, with ok reporting presence.
// Itemsets never hold two values of one feature, so the lookup is unique.
func (s Set) Feature(f flow.Feature) (value uint32, ok bool) {
	for _, it := range s {
		if it.Feature() == f {
			return it.Value(), true
		}
	}
	return 0, false
}

// Key returns a compact string usable as a map key. Two sets have equal
// keys iff they are Equal.
func (s Set) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 8)
	for _, it := range s {
		var raw [8]byte
		for k := 0; k < 8; k++ {
			raw[k] = byte(it >> (8 * k))
		}
		b.Write(raw[:])
	}
	return b.String()
}

// String renders the itemset as a comma-separated item list in feature
// order, e.g. "srcIP=10.191.64.165, dstPort=80".
func (s Set) String() string {
	if len(s) == 0 {
		return "{}"
	}
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// TxItems is the fixed-size item array of one transaction: one item per
// mined traffic feature, in feature order (which is also sorted Item
// order).
type TxItems [flow.NumFeatures]Item

// Tx is one aggregated transaction: a distinct flow 5-tuple with its two
// support weights. The paper's extended Apriori computes itemset support
// both in flows and in packets; carrying both on the transaction lets one
// dataset serve both mining passes.
type Tx struct {
	Items   TxItems
	Flows   uint64
	Packets uint64
}

// Weight returns the transaction's weight in the given dimension.
func (t *Tx) Weight(byPackets bool) uint64 {
	if byPackets {
		return t.Packets
	}
	return t.Flows
}

// ItemsOf builds the transaction item array for a flow record.
func ItemsOf(r *flow.Record) TxItems {
	var items TxItems
	for i, f := range flow.Features() {
		items[i] = NewItem(f, f.Value(r))
	}
	return items
}

// Dataset is a transaction database built from flow records, with
// identical 5-tuples aggregated. It is immutable once built.
type Dataset struct {
	txs          []Tx
	totalFlows   uint64
	totalPackets uint64
}

// FromRecords aggregates flow records into a Dataset. Each distinct
// 5-tuple becomes one transaction whose Flows weight is the number of
// records and whose Packets weight is their packet sum.
func FromRecords(records []flow.Record) *Dataset {
	b := NewBuilder()
	for i := range records {
		b.Add(&records[i])
	}
	return b.Dataset()
}

// Builder aggregates streamed flow records into a Dataset incrementally,
// so candidate selection can ride a record iterator without ever
// materializing the raw []flow.Record. Identical 5-tuples fold into one
// weighted transaction as they arrive; the builder's memory is
// proportional to the number of distinct 5-tuples, not to the number of
// records. The zero value is not usable; start from NewBuilder.
type Builder struct {
	idx map[TxItems]int
	ds  Dataset
}

// NewBuilder returns an empty streaming dataset builder.
func NewBuilder() *Builder {
	return &Builder{idx: make(map[TxItems]int)}
}

// Add folds one flow record into the dataset under construction. The
// record is only read, never retained.
func (b *Builder) Add(r *flow.Record) {
	items := ItemsOf(r)
	j, ok := b.idx[items]
	if !ok {
		j = len(b.ds.txs)
		b.idx[items] = j
		b.ds.txs = append(b.ds.txs, Tx{Items: items})
	}
	b.ds.txs[j].Flows++
	b.ds.txs[j].Packets += r.Packets
	b.ds.totalFlows++
	b.ds.totalPackets += r.Packets
}

// Flows returns the number of records added so far (the flow total of the
// dataset under construction) — the candidate-count the engine checks
// against MinCandidates before committing to a prefiltered dataset.
func (b *Builder) Flows() uint64 { return b.ds.totalFlows }

// Len returns the number of distinct transactions aggregated so far.
func (b *Builder) Len() int { return len(b.ds.txs) }

// Reset discards everything added so far, keeping the builder usable —
// the full-interval fallback path reuses one builder after an
// insufficient prefiltered pass.
func (b *Builder) Reset() {
	clear(b.idx)
	b.ds.txs = b.ds.txs[:0]
	b.ds.totalFlows = 0
	b.ds.totalPackets = 0
}

// Dataset finalizes the builder and returns the aggregated dataset. The
// builder must not be used afterwards (the dataset takes ownership of the
// transaction storage); call Reset before Dataset to reuse a builder
// across passes instead.
func (b *Builder) Dataset() *Dataset {
	ds := b.ds
	b.ds = Dataset{}
	b.idx = nil
	return &ds
}

// FromTxs builds a Dataset directly from prepared transactions (used by
// tests and by miners' cross-checks). Transactions are not re-aggregated.
func FromTxs(txs []Tx) *Dataset {
	ds := &Dataset{txs: txs}
	for i := range txs {
		ds.totalFlows += txs[i].Flows
		ds.totalPackets += txs[i].Packets
	}
	return ds
}

// Len returns the number of distinct transactions.
func (ds *Dataset) Len() int { return len(ds.txs) }

// Tx returns the i-th transaction.
func (ds *Dataset) Tx(i int) *Tx { return &ds.txs[i] }

// TotalFlows returns the summed flow weight (the number of input records).
func (ds *Dataset) TotalFlows() uint64 { return ds.totalFlows }

// TotalPackets returns the summed packet weight.
func (ds *Dataset) TotalPackets() uint64 { return ds.totalPackets }

// Total returns the dataset total in the given dimension.
func (ds *Dataset) Total(byPackets bool) uint64 {
	if byPackets {
		return ds.totalPackets
	}
	return ds.totalFlows
}

// Support computes the support of an itemset by a full scan, in the given
// dimension. Miners keep their own counters; this exists as the oracle the
// property tests compare against, and for ad-hoc queries.
func (ds *Dataset) Support(s Set, byPackets bool) uint64 {
	var sup uint64
	for i := range ds.txs {
		tx := &ds.txs[i]
		if txContains(&tx.Items, s) {
			sup += tx.Weight(byPackets)
		}
	}
	return sup
}

// txContains reports whether a transaction's items include every item of s.
// Transactions hold one item per feature in feature order, so each itemset
// item can be checked by direct feature indexing.
func txContains(items *TxItems, s Set) bool {
	for _, it := range s {
		if items[int(it.Feature())] != it {
			return false
		}
	}
	return true
}

// Match reports whether transaction items contain itemset s (exported form
// of the containment predicate shared by the miners).
func Match(items *TxItems, s Set) bool { return txContains(items, s) }

// Frequent is a mined itemset with its support in the mining dimension.
type Frequent struct {
	Items   Set
	Support uint64
}

// String renders "itemset (support=N)".
func (f Frequent) String() string {
	return fmt.Sprintf("%s (support=%d)", f.Items, f.Support)
}

// SortFrequent orders mined itemsets canonically: by descending support,
// then by descending length (more specific first), then lexicographically.
// Both miners emit this order so results are directly comparable.
func SortFrequent(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Support != fs[j].Support {
			return fs[i].Support > fs[j].Support
		}
		if len(fs[i].Items) != len(fs[j].Items) {
			return len(fs[i].Items) > len(fs[j].Items)
		}
		a, b := fs[i].Items, fs[j].Items
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// MaximalOnly filters fs down to maximal itemsets: sets with no frequent
// proper superset in fs. The paper reports maximal itemsets to the
// operator — subsets restate the same flows with less detail. Input order
// is irrelevant; output is canonically sorted.
//
// Sets are bucketed by length and each set is tested only against the
// strictly longer buckets — a proper superset is necessarily longer — so
// the all-pairs scan the naive version runs (n² subset checks, most of
// them against equal-or-shorter sets that can never disqualify anything)
// collapses to the cross-length pairs only. A length-1 set in a typical
// mining result checks a handful of long sets instead of all n-1 others.
func MaximalOnly(fs []Frequent) []Frequent {
	maxLen := 0
	for i := range fs {
		if l := len(fs[i].Items); l > maxLen {
			maxLen = l
		}
	}
	// byLen[l] holds the indices of the length-l sets.
	byLen := make([][]int, maxLen+1)
	for i := range fs {
		l := len(fs[i].Items)
		byLen[l] = append(byLen[l], i)
	}
	out := make([]Frequent, 0, len(fs))
	for i := range fs {
		maximal := true
	scan:
		for l := len(fs[i].Items) + 1; l <= maxLen; l++ {
			for _, j := range byLen[l] {
				if fs[i].Items.SubsetOf(fs[j].Items) {
					maximal = false
					break scan
				}
			}
		}
		if maximal {
			out = append(out, fs[i])
		}
	}
	SortFrequent(out)
	return out
}
