// Package itemset models flows as transactions for frequent itemset mining,
// the representation at the heart of the paper's technique: every flow
// becomes a transaction of five (feature, value) items — srcIP, dstIP,
// srcPort, dstPort, proto — and an anomaly's flows, sharing a common
// root cause, share items.
//
// Items pack a feature tag and a 32-bit value into one uint64, so itemsets
// are tiny integer slices, transactions are fixed-size arrays, and support
// counting never allocates. Identical 5-tuples aggregate into one weighted
// transaction carrying both support dimensions the extended Apriori mines:
// flow count and packet count.
package itemset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/flow"
)

// Item is one (feature, value) pair packed as feature<<32 | value.
// Because the feature occupies the high bits and each transaction has
// exactly one item per feature, a transaction's items are naturally sorted
// and itemsets over them can use plain integer ordering.
type Item uint64

// NewItem packs a feature and a value into an Item.
func NewItem(f flow.Feature, value uint32) Item {
	return Item(uint64(f)<<32 | uint64(value))
}

// Feature returns the item's traffic feature.
func (it Item) Feature() flow.Feature { return flow.Feature(it >> 32) }

// Value returns the item's raw 32-bit value.
func (it Item) Value() uint32 { return uint32(it) }

// String renders the item as "feature=value" with operator-friendly value
// formatting ("srcIP=10.191.64.165", "dstPort=80", "proto=tcp").
func (it Item) String() string {
	f := it.Feature()
	return f.String() + "=" + f.FormatValue(it.Value())
}

// Set is an itemset: a sorted slice of distinct items. The zero value is
// the empty itemset.
type Set []Item

// NewSet builds a Set from items in any order, deduplicating.
func NewSet(items ...Item) Set {
	s := make(Set, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Dedup in place.
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// Len returns the number of items.
func (s Set) Len() int { return len(s) }

// Contains reports whether the set includes item (binary search).
func (s Set) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// SubsetOf reports whether every item of s appears in t. Both sets are
// sorted, so this is a linear merge.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j >= len(t) || t[j] != it {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether two sets hold the same items.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Union returns the sorted union of s and t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Feature returns the value for feature f, with ok reporting presence.
// Itemsets never hold two values of one feature, so the lookup is unique.
func (s Set) Feature(f flow.Feature) (value uint32, ok bool) {
	for _, it := range s {
		if it.Feature() == f {
			return it.Value(), true
		}
	}
	return 0, false
}

// Key returns a compact string usable as a map key. Two sets have equal
// keys iff they are Equal.
func (s Set) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 8)
	for _, it := range s {
		var raw [8]byte
		for k := 0; k < 8; k++ {
			raw[k] = byte(it >> (8 * k))
		}
		b.Write(raw[:])
	}
	return b.String()
}

// String renders the itemset as a comma-separated item list in feature
// order, e.g. "srcIP=10.191.64.165, dstPort=80".
func (s Set) String() string {
	if len(s) == 0 {
		return "{}"
	}
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// TxItems is the fixed-size item array of one transaction: one item per
// mined traffic feature, in feature order (which is also sorted Item
// order).
type TxItems [flow.NumFeatures]Item

// Tx is one aggregated transaction: a distinct flow 5-tuple with its two
// support weights. The paper's extended Apriori computes itemset support
// both in flows and in packets; carrying both on the transaction lets one
// dataset serve both mining passes.
type Tx struct {
	Items   TxItems
	Flows   uint64
	Packets uint64
}

// Weight returns the transaction's weight in the given dimension.
func (t *Tx) Weight(byPackets bool) uint64 {
	if byPackets {
		return t.Packets
	}
	return t.Flows
}

// ItemsOf builds the transaction item array for a flow record.
func ItemsOf(r *flow.Record) TxItems {
	var items TxItems
	for i, f := range flow.Features() {
		items[i] = NewItem(f, f.Value(r))
	}
	return items
}

// Dataset is a transaction database built from flow records, with
// identical 5-tuples aggregated. It is immutable once built.
type Dataset struct {
	txs          []Tx
	totalFlows   uint64
	totalPackets uint64
}

// FromRecords aggregates flow records into a Dataset. Each distinct
// 5-tuple becomes one transaction whose Flows weight is the number of
// records and whose Packets weight is their packet sum.
func FromRecords(records []flow.Record) *Dataset {
	idx := make(map[TxItems]int, len(records))
	ds := &Dataset{}
	for i := range records {
		r := &records[i]
		items := ItemsOf(r)
		j, ok := idx[items]
		if !ok {
			j = len(ds.txs)
			idx[items] = j
			ds.txs = append(ds.txs, Tx{Items: items})
		}
		ds.txs[j].Flows++
		ds.txs[j].Packets += r.Packets
		ds.totalFlows++
		ds.totalPackets += r.Packets
	}
	return ds
}

// FromTxs builds a Dataset directly from prepared transactions (used by
// tests and by miners' cross-checks). Transactions are not re-aggregated.
func FromTxs(txs []Tx) *Dataset {
	ds := &Dataset{txs: txs}
	for i := range txs {
		ds.totalFlows += txs[i].Flows
		ds.totalPackets += txs[i].Packets
	}
	return ds
}

// Len returns the number of distinct transactions.
func (ds *Dataset) Len() int { return len(ds.txs) }

// Tx returns the i-th transaction.
func (ds *Dataset) Tx(i int) *Tx { return &ds.txs[i] }

// TotalFlows returns the summed flow weight (the number of input records).
func (ds *Dataset) TotalFlows() uint64 { return ds.totalFlows }

// TotalPackets returns the summed packet weight.
func (ds *Dataset) TotalPackets() uint64 { return ds.totalPackets }

// Total returns the dataset total in the given dimension.
func (ds *Dataset) Total(byPackets bool) uint64 {
	if byPackets {
		return ds.totalPackets
	}
	return ds.totalFlows
}

// Support computes the support of an itemset by a full scan, in the given
// dimension. Miners keep their own counters; this exists as the oracle the
// property tests compare against, and for ad-hoc queries.
func (ds *Dataset) Support(s Set, byPackets bool) uint64 {
	var sup uint64
	for i := range ds.txs {
		tx := &ds.txs[i]
		if txContains(&tx.Items, s) {
			sup += tx.Weight(byPackets)
		}
	}
	return sup
}

// txContains reports whether a transaction's items include every item of s.
// Transactions hold one item per feature in feature order, so each itemset
// item can be checked by direct feature indexing.
func txContains(items *TxItems, s Set) bool {
	for _, it := range s {
		if items[int(it.Feature())] != it {
			return false
		}
	}
	return true
}

// Match reports whether transaction items contain itemset s (exported form
// of the containment predicate shared by the miners).
func Match(items *TxItems, s Set) bool { return txContains(items, s) }

// Frequent is a mined itemset with its support in the mining dimension.
type Frequent struct {
	Items   Set
	Support uint64
}

// String renders "itemset (support=N)".
func (f Frequent) String() string {
	return fmt.Sprintf("%s (support=%d)", f.Items, f.Support)
}

// SortFrequent orders mined itemsets canonically: by descending support,
// then by descending length (more specific first), then lexicographically.
// Both miners emit this order so results are directly comparable.
func SortFrequent(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Support != fs[j].Support {
			return fs[i].Support > fs[j].Support
		}
		if len(fs[i].Items) != len(fs[j].Items) {
			return len(fs[i].Items) > len(fs[j].Items)
		}
		a, b := fs[i].Items, fs[j].Items
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// MaximalOnly filters fs down to maximal itemsets: sets with no frequent
// proper superset in fs. The paper reports maximal itemsets to the
// operator — subsets restate the same flows with less detail. Input order
// is irrelevant; output is canonically sorted.
func MaximalOnly(fs []Frequent) []Frequent {
	out := make([]Frequent, 0, len(fs))
	for i := range fs {
		maximal := true
		for j := range fs {
			if i == j {
				continue
			}
			if len(fs[j].Items) > len(fs[i].Items) && fs[i].Items.SubsetOf(fs[j].Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, fs[i])
		}
	}
	SortFrequent(out)
	return out
}
