// Package itemset models flows as transactions for frequent itemset mining,
// the representation at the heart of the paper's technique: every flow
// becomes a transaction of five (feature, value) items — srcIP, dstIP,
// srcPort, dstPort, proto — and an anomaly's flows, sharing a common
// root cause, share items.
//
// Items pack a feature tag and a 32-bit value into one uint64, so itemsets
// are tiny integer slices, transactions are fixed-size arrays, and support
// counting never allocates. Identical 5-tuples aggregate into one weighted
// transaction carrying both support dimensions the extended Apriori mines:
// flow count and packet count.
package itemset
