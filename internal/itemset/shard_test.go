package itemset

import (
	"fmt"
	"testing"

	"repro/internal/flow"
	"repro/internal/stats"
)

// randomTxs builds n weighted transactions over a small value alphabet so
// sets overlap densely.
func randomTxs(seed uint64, n int) []Tx {
	rng := stats.NewRNG(seed)
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}
	txs := make([]Tx, n)
	for i := range txs {
		r := flow.Record{
			SrcIP:   flow.IP(rng.Intn(6)),
			DstIP:   flow.IP(rng.Intn(6)),
			SrcPort: uint16(rng.Intn(5)),
			DstPort: uint16(rng.Intn(5)),
			Proto:   protos[rng.Intn(3)],
		}
		txs[i] = Tx{
			Items:   ItemsOf(&r),
			Flows:   uint64(rng.Intn(100)),
			Packets: uint64(rng.Intn(10_000)),
		}
	}
	return txs
}

// randomSets derives k itemsets from the transactions (so most have
// non-zero support) plus a few misses.
func randomSets(seed uint64, txs []Tx, k int) []Set {
	rng := stats.NewRNG(seed)
	sets := make([]Set, 0, k)
	for i := 0; i < k; i++ {
		tx := txs[rng.Intn(len(txs))]
		l := 1 + rng.Intn(flow.NumFeatures)
		items := make([]Item, 0, l)
		for j := 0; j < l; j++ {
			items = append(items, tx.Items[rng.Intn(flow.NumFeatures)])
		}
		sets = append(sets, NewSet(items...))
	}
	// A guaranteed miss: a value outside the alphabet.
	sets = append(sets, NewSet(NewItem(flow.FeatSrcIP, 0xffff_fff0)))
	return sets
}

func TestSupportAllMatchesOracle(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		txs := randomTxs(seed, 500)
		ds := FromTxs(txs)
		sets := randomSets(seed+100, txs, 25)
		for _, workers := range []int{0, 1, 3, 16} {
			got := ds.SupportAll(sets, workers)
			if len(got) != len(sets) {
				t.Fatalf("workers=%d: %d results for %d sets", workers, len(got), len(sets))
			}
			for i, s := range sets {
				if got[i].Flows != ds.Support(s, false) {
					t.Fatalf("workers=%d set %v: flows %d, oracle %d", workers, s, got[i].Flows, ds.Support(s, false))
				}
				if got[i].Packets != ds.Support(s, true) {
					t.Fatalf("workers=%d set %v: packets %d, oracle %d", workers, s, got[i].Packets, ds.Support(s, true))
				}
			}
		}
	}
}

func TestSupportAllEmpty(t *testing.T) {
	ds := FromTxs(nil)
	if got := ds.SupportAll([]Set{NewSet(NewItem(flow.FeatDstPort, 80))}, 0); got[0] != (DualSupport{}) {
		t.Fatalf("empty dataset support = %v", got[0])
	}
	ds = FromTxs(randomTxs(1, 10))
	if got := ds.SupportAll(nil, 0); len(got) != 0 {
		t.Fatalf("no sets must yield no results, got %v", got)
	}
}

// coverageOracle is the serial reference the sharded Coverage must match.
func coverageOracle(ds *Dataset, sets []Set, byPackets bool) float64 {
	total := ds.Total(byPackets)
	if total == 0 {
		return 1
	}
	if len(sets) == 0 {
		return 0
	}
	var covered uint64
	for i := 0; i < ds.Len(); i++ {
		tx := ds.Tx(i)
		for _, s := range sets {
			if Match(&tx.Items, s) {
				covered += tx.Weight(byPackets)
				break
			}
		}
	}
	return float64(covered) / float64(total)
}

func TestCoverageMatchesOracle(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		txs := randomTxs(seed, 700)
		ds := FromTxs(txs)
		sets := randomSets(seed+200, txs, 8)
		for _, byPackets := range []bool{false, true} {
			want := coverageOracle(ds, sets, byPackets)
			for _, workers := range []int{0, 1, 4, 32} {
				// Shard sums are uint64 and the division is exact on the
				// same operands, so equality is exact — no tolerance.
				if got := ds.Coverage(sets, byPackets, workers); got != want {
					t.Fatalf("seed=%d byPackets=%v workers=%d: coverage %v, oracle %v",
						seed, byPackets, workers, got, want)
				}
			}
		}
	}
	ds := FromTxs(nil)
	if got := ds.Coverage(nil, false, 0); got != 1 {
		t.Fatalf("empty dataset coverage = %v, want 1", got)
	}
	ds = FromTxs(randomTxs(9, 10))
	if got := ds.Coverage(nil, false, 0); got != 0 {
		t.Fatalf("no-sets coverage = %v, want 0", got)
	}
}

func TestShardBoundsPartition(t *testing.T) {
	for _, tc := range []struct{ n, txs int }{{1, 10}, {3, 10}, {8, 7}, {4, 100}, {7, 101}} {
		prev := 0
		for i := 0; i < tc.n; i++ {
			lo, hi := shardBounds(i, tc.n, tc.txs)
			if lo != prev {
				t.Fatalf("n=%d txs=%d shard %d: lo=%d, want %d", tc.n, tc.txs, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d txs=%d shard %d: hi %d < lo %d", tc.n, tc.txs, i, hi, lo)
			}
			prev = hi
		}
		if prev != tc.txs {
			t.Fatalf("n=%d txs=%d: shards cover %d, want %d", tc.n, tc.txs, prev, tc.txs)
		}
	}
}

// benchDataset builds a >=100k-transaction dataset with distinct tuples
// (ports spread wide so aggregation keeps them apart).
func benchDataset(n int) (*Dataset, []Set) {
	rng := stats.NewRNG(42)
	txs := make([]Tx, n)
	for i := range txs {
		r := flow.Record{
			SrcIP:   flow.IP(rng.Intn(1 << 16)),
			DstIP:   flow.IP(rng.Intn(256)),
			SrcPort: uint16(i),
			DstPort: uint16(rng.Intn(1024)),
			Proto:   flow.ProtoTCP,
		}
		txs[i] = Tx{Items: ItemsOf(&r), Flows: 1 + uint64(rng.Intn(5)), Packets: uint64(rng.Intn(500))}
	}
	ds := FromTxs(txs)
	sets := randomSets(7, txs, 20)
	return ds, sets
}

// BenchmarkSupportCounting compares the serial support pass against the
// sharded parallel one on a 100k-transaction dataset — the tentpole's
// claimed speedup. Run with -bench SupportCounting -benchtime to compare.
func BenchmarkSupportCounting(b *testing.B) {
	ds, sets := benchDataset(100_000)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"sharded", 0}} {
		b.Run(fmt.Sprintf("%s/tx=100k/sets=%d", bc.name, len(sets)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got := ds.SupportAll(sets, bc.workers)
				if len(got) != len(sets) {
					b.Fatal("wrong result size")
				}
			}
		})
	}
}

// BenchmarkCoverage compares serial and sharded coverage on the same
// dataset.
func BenchmarkCoverage(b *testing.B) {
	ds, sets := benchDataset(100_000)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"sharded", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c := ds.Coverage(sets, true, bc.workers); c < 0 || c > 1 {
					b.Fatalf("coverage %v out of range", c)
				}
			}
		})
	}
}
