package itemset

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/stats"
)

func randomRecords(seed uint64, n int) []flow.Record {
	rng := stats.NewRNG(seed)
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}
	recs := make([]flow.Record, n)
	for i := range recs {
		pk := uint64(rng.Intn(50) + 1)
		recs[i] = flow.Record{
			Start:   1,
			SrcIP:   flow.IP(rng.Intn(8)),
			DstIP:   flow.IP(rng.Intn(8)),
			SrcPort: uint16(rng.Intn(6)),
			DstPort: uint16(rng.Intn(6)),
			Proto:   protos[rng.Intn(3)],
			Packets: pk,
			Bytes:   pk * 40,
		}
	}
	return recs
}

// TestBuilderMatchesFromRecords pins the streaming builder to the batch
// aggregator: same transactions, same weights, same totals, same
// supports.
func TestBuilderMatchesFromRecords(t *testing.T) {
	recs := randomRecords(3, 2000)
	want := FromRecords(recs)

	b := NewBuilder()
	for i := range recs {
		b.Add(&recs[i])
	}
	if b.Flows() != uint64(len(recs)) {
		t.Fatalf("Flows() = %d, want %d", b.Flows(), len(recs))
	}
	if b.Len() != want.Len() {
		t.Fatalf("Len() = %d, want %d", b.Len(), want.Len())
	}
	got := b.Dataset()
	if got.TotalFlows() != want.TotalFlows() || got.TotalPackets() != want.TotalPackets() {
		t.Fatalf("totals (%d,%d) != (%d,%d)",
			got.TotalFlows(), got.TotalPackets(), want.TotalFlows(), want.TotalPackets())
	}
	if got.Len() != want.Len() {
		t.Fatalf("tx count %d != %d", got.Len(), want.Len())
	}
	// Transactions arrive in first-seen order in both paths.
	for i := 0; i < got.Len(); i++ {
		g, w := got.Tx(i), want.Tx(i)
		if g.Items != w.Items || g.Flows != w.Flows || g.Packets != w.Packets {
			t.Fatalf("tx %d: %+v != %+v", i, g, w)
		}
	}
}

func TestBuilderReset(t *testing.T) {
	recs := randomRecords(5, 300)
	b := NewBuilder()
	for i := range recs {
		b.Add(&recs[i])
	}
	b.Reset()
	if b.Flows() != 0 || b.Len() != 0 {
		t.Fatalf("after Reset: flows=%d len=%d", b.Flows(), b.Len())
	}
	// Rebuild after reset must equal a fresh build.
	for i := range recs {
		b.Add(&recs[i])
	}
	got := b.Dataset()
	want := FromRecords(recs)
	if got.Len() != want.Len() || got.TotalFlows() != want.TotalFlows() || got.TotalPackets() != want.TotalPackets() {
		t.Fatalf("rebuild after Reset diverged: (%d,%d,%d) vs (%d,%d,%d)",
			got.Len(), got.TotalFlows(), got.TotalPackets(),
			want.Len(), want.TotalFlows(), want.TotalPackets())
	}
}

func TestBuilderEmpty(t *testing.T) {
	ds := NewBuilder().Dataset()
	if ds.Len() != 0 || ds.TotalFlows() != 0 || ds.TotalPackets() != 0 {
		t.Fatalf("empty builder dataset not empty: %d/%d/%d", ds.Len(), ds.TotalFlows(), ds.TotalPackets())
	}
}

// maximalOnlyAllPairs is the pre-bucketing implementation, kept as the
// benchmark baseline and correctness oracle for MaximalOnly.
func maximalOnlyAllPairs(fs []Frequent) []Frequent {
	out := make([]Frequent, 0, len(fs))
	for i := range fs {
		maximal := true
		for j := range fs {
			if i == j {
				continue
			}
			if len(fs[j].Items) > len(fs[i].Items) && fs[i].Items.SubsetOf(fs[j].Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, fs[i])
		}
	}
	SortFrequent(out)
	return out
}

// randomFrequent builds n mining-result-shaped itemsets (mixed lengths,
// many subset relations).
func randomFrequent(seed uint64, n int) []Frequent {
	rng := stats.NewRNG(seed)
	txs := randomTxs(seed, n)
	fs := make([]Frequent, n)
	for i := range fs {
		tx := txs[rng.Intn(len(txs))]
		l := 1 + rng.Intn(flow.NumFeatures)
		items := make([]Item, 0, l)
		for j := 0; j < l; j++ {
			items = append(items, tx.Items[rng.Intn(flow.NumFeatures)])
		}
		fs[i] = Frequent{Items: NewSet(items...), Support: uint64(rng.Intn(1000))}
	}
	return fs
}

func TestMaximalOnlyMatchesAllPairs(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		fs := randomFrequent(seed, 400)
		want := maximalOnlyAllPairs(fs)
		got := MaximalOnly(fs)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d vs %d maximal itemsets", seed, len(got), len(want))
		}
		for i := range want {
			if !got[i].Items.Equal(want[i].Items) || got[i].Support != want[i].Support {
				t.Fatalf("seed %d row %d: %v vs %v", seed, i, got[i], want[i])
			}
		}
	}
	if got := MaximalOnly(nil); len(got) != 0 {
		t.Fatalf("MaximalOnly(nil) = %v", got)
	}
}

// BenchmarkMaximalOnly proves the length-bucketed pass beats the
// all-pairs scan on a ~1k-itemset mining result.
func BenchmarkMaximalOnly(b *testing.B) {
	fs := randomFrequent(11, 1000)
	b.Run("bucketed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := MaximalOnly(fs); len(got) == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("allpairs-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := maximalOnlyAllPairs(fs); len(got) == 0 {
				b.Fatal("empty result")
			}
		}
	})
}
