package itemset

import (
	"runtime"
	"sync"
)

// Support counting and the engine's coverage loop are embarrassingly
// parallel over transactions: the dataset is sharded into contiguous
// transaction ranges, a bounded worker pool accumulates per-shard
// partial sums, and the partials merge by addition. Results are exactly
// the serial ones — uint64 addition is associative — so the parallel
// paths need no tolerance in tests.

// maxShardWorkers caps the automatic worker count: the per-shard work is
// pure CPU (array scans and feature-indexed compares), and past a
// handful of workers the merge and scheduling overhead dominates on the
// small datasets extraction usually sees.
const maxShardWorkers = 8

// shardSerialWork is the transaction×set work below which the automatic
// worker choice stays serial: spawning goroutines for a few thousand
// containment checks costs more than the checks themselves. An explicit
// workers count always wins.
const shardSerialWork = 1 << 14

// resolveShardWorkers turns a requested worker count into the effective
// one for a pass over nsets itemsets: 0 picks min(GOMAXPROCS,
// maxShardWorkers) but stays serial below shardSerialWork (an explicit
// count always wins), and the result never exceeds one worker per
// transaction.
func (ds *Dataset) resolveShardWorkers(workers, nsets int) int {
	if workers <= 0 {
		if len(ds.txs)*nsets < shardSerialWork {
			return 1
		}
		workers = min(runtime.GOMAXPROCS(0), maxShardWorkers)
	}
	if workers > len(ds.txs) {
		workers = len(ds.txs)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runShards executes fn once per shard, concurrently, and waits for all
// of them. Shard w receives its contiguous transaction range.
func (ds *Dataset) runShards(workers int, fn func(w int, txs []Tx)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := shardBounds(w, workers, len(ds.txs))
		wg.Add(1)
		go func(w int, txs []Tx) {
			defer wg.Done()
			fn(w, txs)
		}(w, ds.txs[lo:hi])
	}
	wg.Wait()
}

// shardBounds returns the half-open transaction range of shard i of n
// over txs transactions, splitting as evenly as possible.
func shardBounds(i, n, txs int) (lo, hi int) {
	lo = i * txs / n
	hi = (i + 1) * txs / n
	return lo, hi
}

// DualSupport is an itemset's support in both mining dimensions.
type DualSupport struct {
	Flows   uint64
	Packets uint64
}

// SupportAll computes the flow and packet support of every given itemset
// with one sharded parallel pass over the dataset (workers <= 0 picks
// min(GOMAXPROCS, 8)). It returns one DualSupport per input set, in
// input order, and equals calling Support twice per set.
func (ds *Dataset) SupportAll(sets []Set, workers int) []DualSupport {
	out := make([]DualSupport, len(sets))
	if len(sets) == 0 || len(ds.txs) == 0 {
		return out
	}
	workers = ds.resolveShardWorkers(workers, len(sets))
	if workers == 1 {
		supportShard(ds.txs, sets, out)
		return out
	}
	partials := make([][]DualSupport, workers)
	ds.runShards(workers, func(w int, txs []Tx) {
		acc := make([]DualSupport, len(sets))
		supportShard(txs, sets, acc)
		partials[w] = acc
	})
	for _, acc := range partials {
		for i := range out {
			out[i].Flows += acc[i].Flows
			out[i].Packets += acc[i].Packets
		}
	}
	return out
}

// supportShard accumulates both supports of every set over one
// transaction range.
func supportShard(txs []Tx, sets []Set, acc []DualSupport) {
	for t := range txs {
		tx := &txs[t]
		for i, s := range sets {
			if txContains(&tx.Items, s) {
				acc[i].Flows += tx.Flows
				acc[i].Packets += tx.Packets
			}
		}
	}
}

// Coverage returns the fraction of dataset traffic (in the chosen
// dimension) covered by the union of the itemsets: a transaction counts
// once even when several itemsets match it. The scan fans out over the
// same sharded worker pool as SupportAll. An empty dataset is fully
// covered by definition; a non-empty dataset with no sets is uncovered.
func (ds *Dataset) Coverage(sets []Set, byPackets bool, workers int) float64 {
	total := ds.Total(byPackets)
	if total == 0 {
		return 1
	}
	if len(sets) == 0 {
		return 0
	}
	workers = ds.resolveShardWorkers(workers, len(sets))
	if workers == 1 {
		return float64(coverageShard(ds.txs, sets, byPackets)) / float64(total)
	}
	partials := make([]uint64, workers)
	ds.runShards(workers, func(w int, txs []Tx) {
		partials[w] = coverageShard(txs, sets, byPackets)
	})
	var covered uint64
	for _, c := range partials {
		covered += c
	}
	return float64(covered) / float64(total)
}

// coverageShard sums the covered weight of one transaction range.
func coverageShard(txs []Tx, sets []Set, byPackets bool) uint64 {
	var covered uint64
	for t := range txs {
		tx := &txs[t]
		for _, s := range sets {
			if txContains(&tx.Items, s) {
				covered += tx.Weight(byPackets)
				break
			}
		}
	}
	return covered
}
