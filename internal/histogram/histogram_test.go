package histogram

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

// buildTrace writes nBins bins of steady background traffic into a fresh
// store, optionally injecting a port scan into bin scanBin (-1 disables).
// Background: 400 flows per bin with stable Zipf-ish addresses and ports.
// Scan: one srcIP hitting one dstIP on 800 distinct ports.
func buildTrace(t *testing.T, nBins, scanBin int) (*nfstore.Store, flow.Interval) {
	t.Helper()
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	rng := stats.NewRNG(42)
	zipAddr := stats.MustZipf(200, 1.1)
	ports := []uint16{80, 443, 53, 25, 110, 8080}
	base := uint32(1_000_000_200) // divisible by 300 so trace bins align to store bins
	for b := 0; b < nBins; b++ {
		start := base + uint32(b)*300
		for i := 0; i < 400; i++ {
			r := flow.Record{
				Start:   start + uint32(rng.Intn(300)),
				SrcIP:   flow.IPFromOctets(10, 0, byte(zipAddr.Rank(rng)/256), byte(zipAddr.Rank(rng)%256)),
				DstIP:   flow.IPFromOctets(192, 0, 2, byte(zipAddr.Rank(rng)%200)),
				SrcPort: uint16(1024 + rng.Intn(60000)),
				DstPort: ports[rng.Intn(len(ports))],
				Proto:   flow.ProtoTCP,
				Packets: uint64(rng.Intn(20) + 1),
			}
			r.Bytes = r.Packets * 500
			if err := store.Add(&r); err != nil {
				t.Fatal(err)
			}
		}
		if b == scanBin {
			scanner := flow.MustParseIP("10.99.99.99")
			victim := flow.MustParseIP("192.0.2.250")
			for p := 0; p < 800; p++ {
				r := flow.Record{
					Start:   start + uint32(rng.Intn(300)),
					SrcIP:   scanner,
					DstIP:   victim,
					SrcPort: 55548,
					DstPort: uint16(1 + p),
					Proto:   flow.ProtoTCP,
					Packets: 1,
					Bytes:   40,
					Anno:    1,
				}
				if err := store.Add(&r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	return store, flow.Interval{Start: base, End: base + uint32(nBins)*300}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bins: 1, TrainBins: 5, Alpha: 0.2, K: 3},
		{Bins: 64, TrainBins: 1, Alpha: 0.2, K: 3},
		{Bins: 64, TrainBins: 5, Alpha: 0, K: 3},
		{Bins: 64, TrainBins: 5, Alpha: 2, K: 3},
		{Bins: 64, TrainBins: 5, Alpha: 0.2, K: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestQuietTraceRaisesNoAlarms(t *testing.T) {
	store, span := buildTrace(t, 24, -1)
	d := MustNew(DefaultConfig())
	alarms, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	// A 3-sigma threshold over ~12 post-training bins × 4 features can
	// produce the occasional statistical false positive, but a quiet trace
	// must stay near zero.
	if len(alarms) > 1 {
		t.Fatalf("quiet trace produced %d alarms: %v", len(alarms), alarms)
	}
}

func TestScanDetectedWithMeta(t *testing.T) {
	const scanBin = 18
	store, span := buildTrace(t, 24, scanBin)
	d := MustNew(DefaultConfig())
	alarms, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 {
		t.Fatal("scan bin produced no alarm")
	}
	scanStart := uint32(1_000_000_200) + scanBin*300
	var hit *detector.Alarm
	for i := range alarms {
		if alarms[i].Interval.Start == scanStart {
			hit = &alarms[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no alarm on the scan bin; alarms: %v", alarms)
	}
	if hit.Score <= 0 {
		t.Fatal("alarm score must be positive KL distance")
	}
	// Meta must include the scanner or the victim address.
	scanner := uint32(flow.MustParseIP("10.99.99.99"))
	victim := uint32(flow.MustParseIP("192.0.2.250"))
	found := false
	for _, m := range hit.Meta {
		if (m.Feature == flow.FeatSrcIP && m.Value == scanner) ||
			(m.Feature == flow.FeatDstIP && m.Value == victim) {
			found = true
		}
	}
	if !found {
		t.Fatalf("meta %v does not identify the scan endpoints", hit.Meta)
	}
}

func TestTrainingPrefixSilent(t *testing.T) {
	// A scan inside the training prefix must not alarm.
	store, span := buildTrace(t, 16, 5)
	cfg := DefaultConfig()
	cfg.TrainBins = 12
	d := MustNew(cfg)
	alarms, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	scanStart := uint32(1_000_000_200) + 5*300
	for _, a := range alarms {
		if a.Interval.Start == scanStart {
			t.Fatal("alarm raised inside the training prefix")
		}
	}
}

func TestDetectDeterministic(t *testing.T) {
	store, span := buildTrace(t, 20, 15)
	d := MustNew(DefaultConfig())
	a1, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("non-deterministic alarm count: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Interval != a2[i].Interval || a1[i].Score != a2[i].Score {
			t.Fatal("non-deterministic alarms")
		}
	}
}

func TestHashBinStability(t *testing.T) {
	for _, v := range []uint32{0, 1, 80, 0xffffffff} {
		b1 := hashBin(v, 256)
		b2 := hashBin(v, 256)
		if b1 != b2 {
			t.Fatal("hashBin must be deterministic")
		}
		if b1 >= 256 {
			t.Fatalf("hashBin out of range: %d", b1)
		}
	}
}

func TestName(t *testing.T) {
	if MustNew(DefaultConfig()).Name() != "histogram-kl" {
		t.Fatal("detector name")
	}
}
