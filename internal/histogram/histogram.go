package histogram

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

// Config parameterizes the detector. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// Features to monitor; defaults to the four entropy features.
	Features []flow.Feature
	// Bins is the histogram width (values are hashed into Bins buckets).
	Bins int
	// TrainBins is the number of leading measurement bins used purely for
	// training the reference and the KL statistics; no alarms are raised
	// inside the training prefix.
	TrainBins int
	// Alpha is the EWMA factor for the reference histogram update.
	Alpha float64
	// K is the alarm threshold in standard deviations above the trailing
	// mean KL distance.
	K float64
	// TopBins is how many top-contributing histogram bins are drilled into
	// for meta-data; TopValues how many values are reported per bin.
	TopBins   int
	TopValues int
	// Weight selects the histogram weighting (flows or packets).
	Weight nfstore.Weight
}

// DefaultConfig returns the configuration used throughout the evaluation:
// 256 hash bins, 12 training bins (one hour of 5-minute bins), EWMA 0.2,
// 3-sigma thresholding, flow weighting.
func DefaultConfig() Config {
	return Config{
		Features:  flow.EntropyFeatures(),
		Bins:      256,
		TrainBins: 12,
		Alpha:     0.2,
		K:         3,
		TopBins:   3,
		TopValues: 3,
		Weight:    nfstore.ByFlows,
	}
}

// Detector is the histogram/KL detector. Create with New; safe for
// repeated Detect calls (state is rebuilt per call, so runs are
// independent and deterministic).
type Detector struct {
	cfg Config
}

// New validates the configuration and returns a Detector.
func New(cfg Config) (*Detector, error) {
	if len(cfg.Features) == 0 {
		cfg.Features = flow.EntropyFeatures()
	}
	if cfg.Bins < 2 {
		return nil, fmt.Errorf("histogram: Bins must be >= 2, got %d", cfg.Bins)
	}
	if cfg.TrainBins < 2 {
		return nil, fmt.Errorf("histogram: TrainBins must be >= 2, got %d", cfg.TrainBins)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("histogram: Alpha must be in (0,1], got %v", cfg.Alpha)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("histogram: K must be > 0, got %v", cfg.K)
	}
	if cfg.TopBins <= 0 {
		cfg.TopBins = 3
	}
	if cfg.TopValues <= 0 {
		cfg.TopValues = 3
	}
	return &Detector{cfg: cfg}, nil
}

// init registers the detector under its public name; the factory accepts
// a histogram.Config (or nil for defaults).
func init() {
	detector.MustRegister("histogram", func(cfg any) (detector.Detector, error) {
		c, err := detector.CoerceConfig(cfg, DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("histogram: %w", err)
		}
		return New(c)
	})
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "histogram-kl" }

// hashBin maps a feature value to a histogram bin.
func hashBin(value uint32, bins int) uint32 {
	x := uint64(value) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return uint32(x % uint64(bins))
}

// featState is the rolling per-feature detector state.
type featState struct {
	ref *stats.Dist // EWMA reference histogram over bins
	kl  stats.Welford
}

// Detect implements detector.Detector. It walks the store's measurement
// bins inside span in time order, maintaining reference histograms, and
// returns one alarm per (bin, feature) whose KL distance exceeds the
// adaptive threshold.
func (d *Detector) Detect(ctx context.Context, store nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	bins, err := store.Bins()
	if err != nil {
		return nil, err
	}
	state := make(map[flow.Feature]*featState, len(d.cfg.Features))
	for _, f := range d.cfg.Features {
		state[f] = &featState{ref: stats.NewDist()}
	}
	var alarms []detector.Alarm
	seen := 0
	for _, bin := range bins {
		iv := flow.Interval{Start: bin, End: bin + store.BinSeconds()}
		if !iv.Overlaps(span) {
			continue
		}
		// One store pass builds all feature histograms plus the raw value
		// distributions used for meta-data drill-down.
		hists := make(map[flow.Feature]*stats.Dist, len(d.cfg.Features))
		values := make(map[flow.Feature]map[uint32]*stats.Dist, len(d.cfg.Features))
		for _, f := range d.cfg.Features {
			hists[f] = stats.NewDist()
			values[f] = make(map[uint32]*stats.Dist)
		}
		err := store.Query(ctx, iv, nil, func(r *flow.Record) error {
			w := float64(d.cfg.Weight.Of(r))
			for _, f := range d.cfg.Features {
				v := f.Value(r)
				b := hashBin(v, d.cfg.Bins)
				hists[f].Add(b, w)
				vd := values[f][b]
				if vd == nil {
					vd = stats.NewDist()
					values[f][b] = vd
				}
				vd.Add(v, w)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		seen++
		// Features alarming in the same measurement bin describe one
		// traffic event; merge them into a single alarm whose meta-data
		// spans all deviating features, as the paper's detectors do.
		var binAlarm *detector.Alarm
		for _, f := range d.cfg.Features {
			st := state[f]
			cur := hists[f]
			if !st.refPrimed() {
				st.ref.Merge(cur, 1)
				continue
			}
			kl := cur.KL(st.ref, 1e-6)
			training := seen <= d.cfg.TrainBins
			alarm := false
			if !training && st.kl.N() >= 2 {
				thresh := st.kl.Mean() + d.cfg.K*st.kl.Std()
				alarm = kl > thresh
			}
			if alarm {
				meta := d.drillDown(f, cur, st.ref, values[f])
				if binAlarm == nil {
					binAlarm = &detector.Alarm{
						Detector: d.Name(),
						Interval: iv,
						Kind:     detector.KindUnknown,
					}
				}
				if kl > binAlarm.Score {
					binAlarm.Score = kl
				}
				binAlarm.Meta = append(binAlarm.Meta, meta...)
				// Anomalous bins do not update the reference or the KL
				// statistics: poisoning the baseline would mask repeats.
				continue
			}
			st.kl.Add(kl)
			// EWMA reference update with the clean histogram.
			st.ref.Scale(1 - d.cfg.Alpha)
			st.ref.Merge(cur, d.cfg.Alpha)
		}
		if binAlarm != nil {
			alarms = append(alarms, *binAlarm)
		}
	}
	return alarms, nil
}

// refPrimed reports whether the reference has absorbed at least one bin.
func (s *featState) refPrimed() bool { return s.ref.Total() > 0 }

// binContribution is a histogram bin with its share of the KL divergence.
type binContribution struct {
	bin  uint32
	cont float64
}

// drillDown identifies the histogram bins contributing most to the
// divergence and maps them back to the dominant concrete values, producing
// alarm meta-data for feature f.
func (d *Detector) drillDown(f flow.Feature, cur, ref *stats.Dist, values map[uint32]*stats.Dist) []detector.MetaItem {
	// Per-bin KL contribution: p*log2(p/q) with the same smoothing KL uses.
	const eps = 1e-6
	var conts []binContribution
	cur.Values(func(bin uint32, w float64) {
		p := (w + eps) / (cur.Total() + eps)
		q := (ref.Weight(bin) + eps) / (ref.Total() + eps)
		c := p * math.Log2(p/q)
		if c > 0 {
			conts = append(conts, binContribution{bin: bin, cont: c})
		}
	})
	sort.Slice(conts, func(i, j int) bool {
		if conts[i].cont != conts[j].cont {
			return conts[i].cont > conts[j].cont
		}
		return conts[i].bin < conts[j].bin
	})
	if len(conts) > d.cfg.TopBins {
		conts = conts[:d.cfg.TopBins]
	}
	var meta []detector.MetaItem
	for _, c := range conts {
		vd := values[c.bin]
		if vd == nil {
			continue
		}
		for _, vw := range vd.Top(d.cfg.TopValues) {
			meta = append(meta, detector.MetaItem{Feature: f, Value: vw.Value})
		}
	}
	return meta
}
