// Package histogram implements the histogram-based traffic anomaly
// detector of Kind, Stoecklin & Dimitropoulos ("Histogram-based traffic
// anomaly detection", IEEE TNSM 2009) — the detector the paper's first
// evaluation (SWITCH, unsampled traces, IMC'09) pairs with Apriori.
//
// Per measurement bin and per traffic feature the detector builds a
// histogram of the feature's value distribution over hashed bins, tracks
// an exponentially weighted reference histogram, and raises an alarm when
// the Kullback-Leibler distance between the current histogram and the
// reference exceeds an adaptive threshold (mean + k·stddev of the trailing
// KL series). Alarm meta-data comes from histogram bins contributing most
// to the divergence: the detector maps those bins back to the concrete
// feature values (addresses, ports) that dominate them, which is exactly
// the "initial, but possibly incomplete, meta-data" the extraction step
// starts from.
package histogram
