package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At wrong")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatal("Row view wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestColMeansAndCenter(t *testing.T) {
	m := NewMatrix(3, 2)
	vals := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	for r, row := range vals {
		for c, v := range row {
			m.Set(r, c, v)
		}
	}
	means := m.ColMeans()
	if means[0] != 2 || means[1] != 20 {
		t.Fatalf("ColMeans = %v", means)
	}
	removed := m.CenterColumns()
	if removed[0] != 2 || removed[1] != 20 {
		t.Fatalf("CenterColumns returned %v", removed)
	}
	after := m.ColMeans()
	if math.Abs(after[0]) > 1e-12 || math.Abs(after[1]) > 1e-12 {
		t.Fatalf("columns not centered: %v", after)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns: cov = [[1,1],[1,1]] after centering
	// for data {(−1,−1),(0,0),(1,1)} scaled: sample var of {-1,0,1} is 1.
	m := NewMatrix(3, 2)
	for r, v := range []float64{-1, 0, 1} {
		m.Set(r, 0, v)
		m.Set(r, 1, v)
	}
	cov := m.Covariance()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(cov.At(i, j)-1) > 1e-12 {
				t.Fatalf("cov(%d,%d) = %v, want 1", i, j, cov.At(i, j))
			}
		}
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	eig, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(eig.Values[i]-w) > 1e-10 {
			t.Fatalf("eigenvalues = %v, want %v", eig.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1)/√2 and
	// (1,-1)/√2.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	eig, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-10 || math.Abs(eig.Values[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v", eig.Values)
	}
	// Eigenvector of 3 is ±(1,1)/√2.
	v0, v1 := eig.Vectors.At(0, 0), eig.Vectors.At(1, 0)
	if math.Abs(math.Abs(v0)-1/math.Sqrt2) > 1e-10 || math.Abs(v0-v1) > 1e-10 {
		t.Fatalf("first eigenvector = (%v, %v)", v0, v1)
	}
}

func TestSymEigenRejectsNonSquareAndAsymmetric(t *testing.T) {
	if _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square must be rejected")
	}
	m := NewMatrix(2, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 2)
	if _, err := SymEigen(m); err == nil {
		t.Fatal("asymmetric must be rejected")
	}
}

// randomSymmetric builds a random symmetric matrix via A = B + Bᵀ.
func randomSymmetric(rng *stats.RNG, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Norm(0, 1)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestSymEigenReconstruction(t *testing.T) {
	// A = V diag(λ) Vᵀ must reconstruct the input, and V must be
	// orthonormal — checked over random symmetric matrices.
	rng := stats.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		eig, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Orthonormality.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dot := 0.0
				for r := 0; r < n; r++ {
					dot += eig.Vectors.At(r, i) * eig.Vectors.At(r, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("trial %d: V not orthonormal at (%d,%d): %v", trial, i, j, dot)
				}
			}
		}
		// Reconstruction.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += eig.Values[k] * eig.Vectors.At(i, k) * eig.Vectors.At(j, k)
				}
				if math.Abs(sum-a.At(i, j)) > 1e-7 {
					t.Fatalf("trial %d: reconstruction off at (%d,%d): %v vs %v",
						trial, i, j, sum, a.At(i, j))
				}
			}
		}
		// Eigenvalues descending.
		for k := 1; k < n; k++ {
			if eig.Values[k] > eig.Values[k-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", eig.Values)
			}
		}
	}
}

func TestProjectResidual(t *testing.T) {
	// Basis = identity: projecting onto first p axes zeroes them out.
	basis := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		basis.Set(i, i, 1)
	}
	y := []float64{1, 2, 3}
	res := ProjectResidual(basis, 2, y)
	if math.Abs(res[0]) > 1e-12 || math.Abs(res[1]) > 1e-12 || math.Abs(res[2]-3) > 1e-12 {
		t.Fatalf("residual = %v", res)
	}
	if y[0] != 1 {
		t.Fatal("input vector must not be modified")
	}
	// p beyond basis columns is clamped: full projection, zero residual.
	res = ProjectResidual(basis, 10, y)
	if Norm2(res) > 1e-20 {
		t.Fatalf("full projection residual = %v", res)
	}
}

func TestNorm2(t *testing.T) {
	if Norm2([]float64{3, 4}) != 25 {
		t.Fatal("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) must be 0")
	}
}

func TestResidualOrthogonalProperty(t *testing.T) {
	// The residual must be orthogonal to every basis vector used.
	rng := stats.NewRNG(5)
	f := func(seed uint64) bool {
		r := rng.Fork(seed)
		n := 4
		a := randomSymmetric(r, n)
		eig, err := SymEigen(a)
		if err != nil {
			return false
		}
		y := make([]float64, n)
		for i := range y {
			y[i] = r.Norm(0, 2)
		}
		res := ProjectResidual(eig.Vectors, 2, y)
		for k := 0; k < 2; k++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += res[i] * eig.Vectors.At(i, k)
			}
			if math.Abs(dot) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
