package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ColMeans returns the mean of each column.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			means[c] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for c := range means {
		means[c] *= inv
	}
	return means
}

// CenterColumns subtracts each column's mean in place and returns the
// means that were removed.
func (m *Matrix) CenterColumns() []float64 {
	means := m.ColMeans()
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] -= means[c]
		}
	}
	return means
}

// Covariance returns the sample covariance matrix (Cols×Cols) of the
// rows of m, which must already be column-centered. For fewer than two
// rows the result is all zeros.
func (m *Matrix) Covariance() *Matrix {
	cov := NewMatrix(m.Cols, m.Cols)
	if m.Rows < 2 {
		return cov
	}
	inv := 1 / float64(m.Rows-1)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := 0; i < m.Cols; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			base := i * m.Cols
			for j := i; j < m.Cols; j++ {
				cov.Data[base+j] += vi * row[j]
			}
		}
	}
	for i := 0; i < m.Cols; i++ {
		for j := i; j < m.Cols; j++ {
			v := cov.Data[i*m.Cols+j] * inv
			cov.Data[i*m.Cols+j] = v
			cov.Data[j*m.Cols+i] = v
		}
	}
	return cov
}

// Eigen holds a symmetric eigendecomposition with eigenvalues in
// descending order; Vectors' column k is the unit eigenvector of
// Values[k].
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration; convergence for the
// matrix sizes used here is typically reached in well under 20 sweeps.
const maxJacobiSweeps = 100

// SymEigen computes the eigendecomposition of a symmetric matrix by the
// cyclic Jacobi method. It returns an error when the matrix is not square
// or not (numerically) symmetric.
func SymEigen(a *Matrix) (*Eigen, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: SymEigen needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	const symTol = 1e-8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := math.Abs(a.At(i, j) - a.At(j, i)); d > symTol*(1+math.Abs(a.At(i, j))) {
				return nil, fmt.Errorf("linalg: matrix not symmetric at (%d,%d): %g vs %g", i, j, a.At(i, j), a.At(j, i))
			}
		}
	}
	w := a.Clone() // working copy, becomes diagonal
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	eig := &Eigen{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return w.At(order[i], order[i]) > w.At(order[j], order[j]) })
	for k, idx := range order {
		eig.Values[k] = w.At(idx, idx)
		for r := 0; r < n; r++ {
			eig.Vectors.Set(r, k, v.At(r, idx))
		}
	}
	return eig, nil
}

// rotate applies the Jacobi rotation (p, q, c, s) to w and accumulates it
// into the eigenvector matrix v.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for i := 0; i < n; i++ {
		wpi, wqi := w.At(p, i), w.At(q, i)
		w.Set(p, i, c*wpi-s*wqi)
		w.Set(q, i, s*wpi+c*wqi)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// ProjectResidual computes the residual of row vector y after projection
// onto the subspace spanned by the first p columns of basis (assumed
// orthonormal): r = y - B_p B_p^T y. The returned slice is newly
// allocated.
func ProjectResidual(basis *Matrix, p int, y []float64) []float64 {
	n := len(y)
	if basis.Rows != n {
		panic(fmt.Sprintf("linalg: basis rows %d != vector length %d", basis.Rows, n))
	}
	if p > basis.Cols {
		p = basis.Cols
	}
	res := make([]float64, n)
	copy(res, y)
	for k := 0; k < p; k++ {
		// dot = b_k · y
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += basis.At(i, k) * y[i]
		}
		for i := 0; i < n; i++ {
			res[i] -= dot * basis.At(i, k)
		}
	}
	return res
}

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}
