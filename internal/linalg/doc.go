// Package linalg provides the small dense linear algebra kernel the PCA
// subspace detector needs: row-major matrices, column statistics,
// covariance, and a cyclic-Jacobi eigendecomposition for symmetric
// matrices. Stdlib-only by project constraint; the matrix sizes involved
// (tens of columns — PoPs × features) keep Jacobi comfortably fast.
package linalg
