package sampling

import (
	"math"
	"testing"

	"repro/internal/flow"
	"repro/internal/stats"
)

func mkRecord(packets uint64) flow.Record {
	return flow.Record{
		Start: 100, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4,
		Proto: flow.ProtoUDP, Packets: packets, Bytes: packets * 100,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("rate 0 must be rejected")
	}
	if s := MustNew(1, nil); s.Rate() != 1 {
		t.Fatal("rate 1 sampler")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) must panic")
		}
	}()
	MustNew(0, nil)
}

func TestRateOnePassthrough(t *testing.T) {
	s := MustNew(1, stats.NewRNG(1))
	r := mkRecord(7)
	out, ok := s.Apply(&r)
	if !ok || out != r {
		t.Fatalf("rate-1 sampling must be identity, got %+v ok=%v", out, ok)
	}
}

func TestInputNotModified(t *testing.T) {
	s := MustNew(100, stats.NewRNG(2))
	r := mkRecord(1000)
	orig := r
	s.Apply(&r)
	if r != orig {
		t.Fatal("Apply must not modify its input")
	}
}

func TestVolumePreservedInExpectation(t *testing.T) {
	// Horvitz-Thompson renormalization: expected packet total is preserved.
	s := MustNew(100, stats.NewRNG(3))
	const trials = 5000
	const pkts = 500
	var total float64
	for i := 0; i < trials; i++ {
		r := mkRecord(pkts)
		out, ok := s.Apply(&r)
		if ok {
			total += float64(out.Packets)
		}
	}
	mean := total / trials
	if math.Abs(mean-pkts) > pkts*0.05 {
		t.Fatalf("renormalized packet mean = %v, want ≈ %v", mean, float64(pkts))
	}
}

func TestSmallFlowsVanishLargeFlowsSurvive(t *testing.T) {
	s := MustNew(100, stats.NewRNG(4))
	// 1-packet flows survive with p = 1/100.
	survived := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		r := mkRecord(1)
		if _, ok := s.Apply(&r); ok {
			survived++
		}
	}
	rate := float64(survived) / trials
	if math.Abs(rate-0.01) > 0.003 {
		t.Fatalf("1-packet survival = %v, want ≈ 0.01", rate)
	}
	// A 1M-packet flood flow effectively always survives.
	r := mkRecord(1_000_000)
	if _, ok := s.Apply(&r); !ok {
		t.Fatal("flood flow vanished under sampling (prob ≈ 0)")
	}
}

func TestSurvivalProb(t *testing.T) {
	s := MustNew(100, nil)
	if got := s.SurvivalProb(1); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("SurvivalProb(1) = %v", got)
	}
	// 1-(0.99)^100 ≈ 0.634.
	if got := s.SurvivalProb(100); math.Abs(got-0.6340) > 0.001 {
		t.Fatalf("SurvivalProb(100) = %v", got)
	}
	if got := s.SurvivalProb(1_000_000); got < 0.999999 {
		t.Fatalf("SurvivalProb(1M) = %v", got)
	}
	if got := MustNew(1, nil).SurvivalProb(1); got != 1 {
		t.Fatalf("rate-1 survival = %v", got)
	}
}

func TestApplyAll(t *testing.T) {
	s := MustNew(100, stats.NewRNG(5))
	in := make([]flow.Record, 0, 3000)
	for i := 0; i < 3000; i++ {
		in = append(in, mkRecord(1))
	}
	out := s.ApplyAll(in)
	// ≈1% of 3000 = 30; allow generous noise.
	if len(out) < 10 || len(out) > 70 {
		t.Fatalf("ApplyAll kept %d of 3000 one-packet flows, want ≈ 30", len(out))
	}
	for i := range out {
		if err := out[i].Validate(); err != nil {
			t.Fatalf("sampled record invalid: %v", err)
		}
		if out[i].Packets%100 != 0 {
			t.Fatalf("renormalized packets %d not a multiple of the rate", out[i].Packets)
		}
	}
}

func TestBytesScaleWithPackets(t *testing.T) {
	s := MustNew(10, stats.NewRNG(6))
	r := mkRecord(10000) // avg packet size 100
	out, ok := s.Apply(&r)
	if !ok {
		t.Fatal("large flow must survive")
	}
	avg := float64(out.Bytes) / float64(out.Packets)
	if math.Abs(avg-100) > 1 {
		t.Fatalf("renormalized average packet size = %v, want ≈ 100", avg)
	}
}
