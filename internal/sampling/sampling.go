package sampling

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/stats"
)

// Sampler thins flow records by simulated 1-in-N packet sampling.
type Sampler struct {
	rate uint32 // N; 1 means no sampling
	rng  *stats.RNG
}

// New returns a Sampler with the given rate ("1 in rate" packets kept),
// drawing from the given RNG. rate 0 is rejected; rate 1 passes traffic
// unchanged.
func New(rate uint32, rng *stats.RNG) (*Sampler, error) {
	if rate == 0 {
		return nil, fmt.Errorf("sampling: rate must be >= 1, got 0")
	}
	if rng == nil {
		rng = stats.NewRNG(1)
	}
	return &Sampler{rate: rate, rng: rng}, nil
}

// MustNew is New that panics on invalid rate.
func MustNew(rate uint32, rng *stats.RNG) *Sampler {
	s, err := New(rate, rng)
	if err != nil {
		panic(err)
	}
	return s
}

// Rate returns the sampling denominator N.
func (s *Sampler) Rate() uint32 { return s.rate }

// Apply samples one record. It returns the thinned-and-renormalized record
// and true when at least one packet survived, or a zero record and false
// when the flow vanished. The input record is not modified.
func (s *Sampler) Apply(r *flow.Record) (flow.Record, bool) {
	if s.rate == 1 {
		return *r, true
	}
	p := 1 / float64(s.rate)
	kept := s.rng.Binomial(r.Packets, p)
	if kept == 0 {
		return flow.Record{}, false
	}
	out := *r
	// Renormalize: the collector multiplies sampled counters by N.
	out.Packets = kept * uint64(s.rate)
	// Bytes scale with the same survival ratio, preserving the record's
	// average packet size.
	avg := float64(r.Bytes) / float64(r.Packets)
	out.Bytes = uint64(avg*float64(kept)) * uint64(s.rate)
	if out.Bytes < out.Packets {
		out.Bytes = out.Packets // keep the store's validity invariant
	}
	return out, true
}

// ApplyAll samples a batch, returning only the surviving records.
func (s *Sampler) ApplyAll(rs []flow.Record) []flow.Record {
	out := make([]flow.Record, 0, len(rs)/int(s.rate)+1)
	for i := range rs {
		if sampled, ok := s.Apply(&rs[i]); ok {
			out = append(out, sampled)
		}
	}
	return out
}

// SurvivalProb returns the probability that a flow with the given packet
// count survives 1-in-N sampling: 1 - (1 - 1/N)^packets. Useful for
// analytical assertions in tests and for the EXPERIMENTS.md narrative.
func (s *Sampler) SurvivalProb(packets uint64) float64 {
	if s.rate == 1 {
		return 1
	}
	q := 1 - 1/float64(s.rate)
	prob := 1.0
	// pow by squaring on the integer exponent.
	base := q
	e := packets
	for e > 0 {
		if e&1 == 1 {
			prob *= base
		}
		base *= base
		e >>= 1
	}
	return 1 - prob
}
