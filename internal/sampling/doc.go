// Package sampling models random packet sampling as deployed on the GEANT
// routers the paper evaluates on (Sampled NetFlow, 1-in-100).
//
// Sampling operates on packets, not flows: each packet of a flow survives
// independently with probability 1/N, so a flow record with p packets
// yields Binomial(p, 1/N) sampled packets and disappears entirely when the
// draw is zero. Surviving records are renormalized by the inverse sampling
// probability (the standard Horvitz-Thompson estimator NetFlow collectors
// apply), which restores volume totals in expectation but cannot restore
// the flows that vanished — precisely the distortion that motivates the
// paper's packet-based itemset support: a point-to-point UDP flood keeps
// its enormous packet count under sampling even though it contributes
// almost no flow records.
package sampling
