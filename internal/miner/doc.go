// Package miner defines the pluggable frequent-itemset-mining seam of the
// extraction engine: a Miner interface over flow-transaction datasets and
// a named factory registry mirroring internal/detector.
//
// The paper's system mines with Apriori; FP-Growth (Han, Pei & Yin,
// SIGMOD'00) is the natural alternative on dense transaction databases.
// Both built-ins self-register from their packages' init functions under
// the names "apriori" and "fpgrowth", and both are pinned — by property
// tests over random weighted datasets — to emit byte-identical canonical
// results, so the extraction engine can swap miners without changing a
// single reported itemset. External miners plug in through Register and
// become selectable everywhere a miner name is accepted: core.Options,
// rootcause.WithMiner, the -miner CLI flags, and rcad's HTTP API.
package miner
