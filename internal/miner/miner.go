package miner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/itemset"
)

// Defaults inherited by the zero values of the statistical pre-filter
// knobs (see Options.Significance and Options.MinLift).
const (
	// DefaultSignificance is the one-sided z-score an item must clear
	// against the uniform null to survive the fda pre-filter: two standard
	// deviations, the conventional ~97.7% one-sided confidence cut.
	DefaultSignificance = 2.0
	// DefaultMinLift keeps itemsets at least as frequent as independence
	// of their items would predict (lift >= 1).
	DefaultMinLift = 1.0
)

// Options configures one mining run. It is the shared configuration
// contract every registered miner honors identically.
type Options struct {
	// MinSupport is the absolute minimum support in the chosen dimension.
	// Itemsets whose support is >= MinSupport are frequent. Must be >= 1.
	MinSupport uint64
	// ByPackets selects the support dimension: false counts flows (classic
	// Apriori over flow transactions, as in the IMC'09 paper), true counts
	// packets (the extension this paper adds for low-flow floods).
	ByPackets bool
	// MaxLen bounds the itemset length; 0 means no bound (i.e. up to
	// flow.NumFeatures).
	MaxLen int
	// Prefilter enables per-item statistical pruning in miners that
	// implement it (the FDA-style "fda" miner drops items whose weight is
	// indistinguishable from a uniform spread over their feature before
	// enumerating itemsets, then cuts mined sets below MinLift). Miners
	// without a pre-filter ignore it. With Prefilter false every
	// registered miner produces identical canonical output for equal
	// inputs; with it true the fda output is a subset with equal supports.
	Prefilter bool
	// Significance is the pre-filter's one-sided z-score threshold: an
	// item survives when its observed weight exceeds the uniform
	// expectation over its feature by at least Significance standard
	// deviations. Zero inherits DefaultSignificance; negative or NaN
	// values are rejected. Ignored unless Prefilter is set.
	Significance float64
	// MinLift is the minimum lift (observed support over the independence
	// expectation of the itemset's items) a mined itemset must reach.
	// Zero inherits DefaultMinLift; negative or NaN values are rejected.
	// Ignored unless Prefilter is set.
	MinLift float64
}

// ErrZeroSupport is returned when Options.MinSupport is 0, which would
// declare every possible itemset frequent.
var ErrZeroSupport = errors.New("miner: MinSupport must be >= 1")

// Validate normalizes o under the zero-inherits-default contract and
// rejects explicitly invalid values. Every registered miner calls it at
// the top of Mine, so the contract holds no matter which surface built
// the options.
func (o *Options) Validate() error {
	if o.MinSupport == 0 {
		return ErrZeroSupport
	}
	positive := func(v float64) bool { return v > 0 }
	if err := FloatOption("miner", "Significance", &o.Significance, DefaultSignificance, positive, "> 0"); err != nil {
		return err
	}
	return FloatOption("miner", "MinLift", &o.MinLift, DefaultMinLift, positive, "> 0")
}

// IntOption normalizes one non-negative integer option under the shared
// zero-inherits-default contract: a negative value is an explicit error,
// zero inherits def, anything else is kept. pkg and field name the option
// in the error ("core: MinItemsets must be >= 0, got -1").
func IntOption(pkg, field string, v *int, def int) error {
	if *v < 0 {
		return fmt.Errorf("%s: %s must be >= 0, got %d", pkg, field, *v)
	}
	if *v == 0 {
		*v = def
	}
	return nil
}

// FloatOption normalizes one float option under the same contract: zero
// inherits def, and the resulting value must satisfy valid. Write valid
// in positive form (v > 0, not !(v <= 0)) so NaN — which compares false
// to everything — fails it too; want describes the accepted range for
// the error message.
func FloatOption(pkg, field string, v *float64, def float64, valid func(float64) bool, want string) error {
	if *v == 0 {
		*v = def
	}
	if !valid(*v) {
		return fmt.Errorf("%s: %s must be %s, got %v", pkg, field, want, *v)
	}
	return nil
}

// Miner mines frequent itemsets from a flow-transaction dataset. All
// implementations must produce identical canonical output ([]Frequent in
// itemset.SortFrequent order with equal supports) for equal inputs when
// Options.Prefilter is off; the cross-miner property tests enforce this
// for every registered miner. With Prefilter on, a filtering miner may
// return a subset of that output (same supports, same canonical order).
type Miner interface {
	// Mine returns all itemsets with support >= opts.MinSupport in the
	// chosen dimension, canonically sorted. Cancelling ctx aborts mining
	// promptly with ctx.Err().
	Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error)
	// MineMaximal mines and reduces the result to maximal itemsets, the
	// form the paper reports to operators.
	MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error)
}

// Factory builds a miner instance. Miners are stateless between runs, so
// factories typically return a shared value.
type Factory func() Miner

// DefaultName is the miner used when no name is given: the paper's
// extended Apriori.
const DefaultName = "apriori"

// registry holds the named miner factories. Built-in miners self-register
// from their packages' init functions.
var registry = struct {
	mu        sync.RWMutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register adds a named miner factory. The name must be non-empty and not
// already taken.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("miner: register with empty name")
	}
	if f == nil {
		return fmt.Errorf("miner: register %q with nil factory", name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("miner: %q already registered", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register that panics on error; for package init use.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Names lists the registered miner names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the named miner ("" selects DefaultName).
func New(name string) (Miner, error) {
	if name == "" {
		name = DefaultName
	}
	registry.mu.RLock()
	f, ok := registry.factories[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("miner: unknown miner %q (have %v)", name, Names())
	}
	return f(), nil
}
