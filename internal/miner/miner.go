package miner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/itemset"
)

// Options configures one mining run. It is the shared configuration
// contract every registered miner honors identically.
type Options struct {
	// MinSupport is the absolute minimum support in the chosen dimension.
	// Itemsets whose support is >= MinSupport are frequent. Must be >= 1.
	MinSupport uint64
	// ByPackets selects the support dimension: false counts flows (classic
	// Apriori over flow transactions, as in the IMC'09 paper), true counts
	// packets (the extension this paper adds for low-flow floods).
	ByPackets bool
	// MaxLen bounds the itemset length; 0 means no bound (i.e. up to
	// flow.NumFeatures).
	MaxLen int
}

// ErrZeroSupport is returned when Options.MinSupport is 0, which would
// declare every possible itemset frequent.
var ErrZeroSupport = errors.New("miner: MinSupport must be >= 1")

// Miner mines frequent itemsets from a flow-transaction dataset. All
// implementations must produce identical canonical output ([]Frequent in
// itemset.SortFrequent order with equal supports) for equal inputs; the
// cross-miner property tests enforce this for every registered miner.
type Miner interface {
	// Mine returns all itemsets with support >= opts.MinSupport in the
	// chosen dimension, canonically sorted. Cancelling ctx aborts mining
	// promptly with ctx.Err().
	Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error)
	// MineMaximal mines and reduces the result to maximal itemsets, the
	// form the paper reports to operators.
	MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error)
}

// Factory builds a miner instance. Miners are stateless between runs, so
// factories typically return a shared value.
type Factory func() Miner

// DefaultName is the miner used when no name is given: the paper's
// extended Apriori.
const DefaultName = "apriori"

// registry holds the named miner factories. Built-in miners self-register
// from their packages' init functions.
var registry = struct {
	mu        sync.RWMutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register adds a named miner factory. The name must be non-empty and not
// already taken.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("miner: register with empty name")
	}
	if f == nil {
		return fmt.Errorf("miner: register %q with nil factory", name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("miner: %q already registered", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register that panics on error; for package init use.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Names lists the registered miner names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the named miner ("" selects DefaultName).
func New(name string) (Miner, error) {
	if name == "" {
		name = DefaultName
	}
	registry.mu.RLock()
	f, ok := registry.factories[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("miner: unknown miner %q (have %v)", name, Names())
	}
	return f(), nil
}
