package miner_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/miner"
	"repro/internal/stats"

	// Built-in miners self-register.
	_ "repro/internal/apriori"
	_ "repro/internal/fda"
	_ "repro/internal/fpgrowth"
)

func TestRegistryBuiltins(t *testing.T) {
	names := miner.Names()
	want := map[string]bool{"apriori": false, "fda": false, "fpgrowth": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("built-in miner %q not registered (have %v)", n, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	if err := miner.Register("", func() miner.Miner { return nil }); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := miner.Register("nilfactory", nil); err == nil {
		t.Error("nil factory must be rejected")
	}
	if err := miner.Register("apriori", func() miner.Miner { return nil }); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if _, err := miner.New("no-such-miner"); err == nil {
		t.Error("unknown miner must be rejected")
	}
}

func TestDefaultNameResolves(t *testing.T) {
	m, err := miner.New("")
	if err != nil {
		t.Fatalf("default miner: %v", err)
	}
	if m == nil {
		t.Fatal("default miner is nil")
	}
}

func TestZeroSupportRejectedByAll(t *testing.T) {
	ds := randomWeightedDataset(1, 10)
	for _, name := range miner.Names() {
		m, err := miner.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Mine(t.Context(), ds, miner.Options{}); !errors.Is(err, miner.ErrZeroSupport) {
			t.Errorf("%s: got %v, want ErrZeroSupport", name, err)
		}
	}
}

// randomWeightedDataset builds a transaction database directly (FromTxs,
// not record aggregation) with adversarial weights: zero-flow and
// zero-packet transactions, heavy packet skew, and a small value alphabet
// so itemsets overlap densely.
func randomWeightedDataset(seed uint64, n int) *itemset.Dataset {
	rng := stats.NewRNG(seed)
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}
	txs := make([]itemset.Tx, n)
	for i := range txs {
		r := flow.Record{
			SrcIP:   flow.IP(rng.Intn(5)),
			DstIP:   flow.IP(rng.Intn(5)),
			SrcPort: uint16(rng.Intn(4)),
			DstPort: uint16(rng.Intn(4)),
			Proto:   protos[rng.Intn(3)],
		}
		var flows, packets uint64
		switch rng.Intn(4) {
		case 0: // light
			flows, packets = uint64(rng.Intn(3)), uint64(rng.Intn(10))
		case 1: // heavy packet skew (the UDP-flood shape)
			flows, packets = 1+uint64(rng.Intn(2)), uint64(1_000+rng.Intn(100_000))
		case 2: // heavy flow skew (the scan shape)
			flows, packets = uint64(100+rng.Intn(1_000)), uint64(100+rng.Intn(1_000))
		default:
			flows, packets = uint64(rng.Intn(20)), uint64(rng.Intn(50))
		}
		txs[i] = itemset.Tx{Items: itemset.ItemsOf(&r), Flows: flows, Packets: packets}
	}
	return itemset.FromTxs(txs)
}

// assertIdentical requires two canonical mining results to be
// byte-identical: same length, same order, same itemsets, same supports.
func assertIdentical(t *testing.T, label string, want, got []itemset.Frequent) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d itemsets", label, len(want), len(got))
	}
	for i := range want {
		if !want[i].Items.Equal(got[i].Items) || want[i].Support != got[i].Support {
			t.Fatalf("%s: row %d differs: %v vs %v", label, i, want[i], got[i])
		}
	}
}

// TestCrossMinerProperty pins every registered miner to identical
// canonical output — both the full frequent set and the maximal
// reduction, in both support dimensions, across MaxLen bounds — on 120
// random weighted datasets.
func TestCrossMinerProperty(t *testing.T) {
	names := miner.Names()
	if len(names) < 2 {
		t.Fatalf("need at least two registered miners, have %v", names)
	}
	miners := make([]miner.Miner, len(names))
	for i, n := range names {
		m, err := miner.New(n)
		if err != nil {
			t.Fatal(err)
		}
		miners[i] = m
	}

	const datasets = 120
	for seed := uint64(1); seed <= datasets; seed++ {
		rng := stats.NewRNG(seed * 7919)
		ds := randomWeightedDataset(seed, 5+rng.Intn(120))
		byPackets := seed%2 == 0
		minSup := uint64(1 + rng.Intn(40))
		if byPackets {
			minSup *= 25
		}
		maxLen := rng.Intn(flow.NumFeatures + 1) // 0 = unbounded
		opts := miner.Options{MinSupport: minSup, ByPackets: byPackets, MaxLen: maxLen}
		label := fmt.Sprintf("seed=%d opts=%+v", seed, opts)

		ref, err := miners[0].Mine(t.Context(), ds, opts)
		if err != nil {
			t.Fatalf("%s: %s: %v", names[0], label, err)
		}
		refMax, err := miners[0].MineMaximal(t.Context(), ds, opts)
		if err != nil {
			t.Fatalf("%s: %s: %v", names[0], label, err)
		}
		// Oracle check: supports in the reference result match a full
		// dataset scan.
		for _, fr := range refMax {
			if got := ds.Support(fr.Items, byPackets); got != fr.Support {
				t.Fatalf("%s: %s: support(%v) = %d, oracle %d", names[0], label, fr.Items, fr.Support, got)
			}
		}
		for i := 1; i < len(miners); i++ {
			got, err := miners[i].Mine(t.Context(), ds, opts)
			if err != nil {
				t.Fatalf("%s: %s: %v", names[i], label, err)
			}
			assertIdentical(t, fmt.Sprintf("%s vs %s Mine (%s)", names[0], names[i], label), ref, got)
			gotMax, err := miners[i].MineMaximal(t.Context(), ds, opts)
			if err != nil {
				t.Fatalf("%s: %s: %v", names[i], label, err)
			}
			assertIdentical(t, fmt.Sprintf("%s vs %s MineMaximal (%s)", names[0], names[i], label), refMax, gotMax)
		}
	}
}

// TestOptionsValidate is the table-driven contract test for the shared
// option validator: zero inherits the default, explicit invalid values
// (negative, NaN) error, explicit valid values are kept untouched.
func TestOptionsValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		opts    miner.Options
		wantErr string  // substring; empty = must validate
		sig     float64 // expected normalized Significance
		lift    float64 // expected normalized MinLift
	}{
		{name: "zero support", opts: miner.Options{}, wantErr: "MinSupport"},
		{name: "zeros inherit defaults", opts: miner.Options{MinSupport: 1},
			sig: miner.DefaultSignificance, lift: miner.DefaultMinLift},
		{name: "explicit values kept", opts: miner.Options{MinSupport: 1, Significance: 3.5, MinLift: 1.2},
			sig: 3.5, lift: 1.2},
		{name: "negative significance", opts: miner.Options{MinSupport: 1, Significance: -1},
			wantErr: "Significance"},
		{name: "NaN significance", opts: miner.Options{MinSupport: 1, Significance: nan},
			wantErr: "Significance"},
		{name: "negative lift", opts: miner.Options{MinSupport: 1, MinLift: -0.5},
			wantErr: "MinLift"},
		{name: "NaN lift", opts: miner.Options{MinSupport: 1, MinLift: nan},
			wantErr: "MinLift"},
		{name: "tiny positive lift valid", opts: miner.Options{MinSupport: 1, MinLift: 0.01},
			sig: miner.DefaultSignificance, lift: 0.01},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			err := opts.Validate()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if opts.Significance != tc.sig || opts.MinLift != tc.lift {
				t.Fatalf("normalized to Significance=%v MinLift=%v, want %v/%v",
					opts.Significance, opts.MinLift, tc.sig, tc.lift)
			}
		})
	}
}

// TestSharedValidators covers the exported helpers core's validate is
// built on.
func TestSharedValidators(t *testing.T) {
	v := 0
	if err := miner.IntOption("pkg", "F", &v, 7); err != nil || v != 7 {
		t.Fatalf("IntOption zero: v=%d err=%v, want 7/nil", v, err)
	}
	v = -1
	if err := miner.IntOption("pkg", "F", &v, 7); err == nil {
		t.Fatal("IntOption negative: want error")
	}
	v = 3
	if err := miner.IntOption("pkg", "F", &v, 7); err != nil || v != 3 {
		t.Fatalf("IntOption explicit: v=%d err=%v, want 3/nil", v, err)
	}
	in01 := func(x float64) bool { return x > 0 && x <= 1 }
	f := 0.0
	if err := miner.FloatOption("pkg", "F", &f, 0.5, in01, "in (0,1]"); err != nil || f != 0.5 {
		t.Fatalf("FloatOption zero: f=%v err=%v, want 0.5/nil", f, err)
	}
	f = 2.0
	if err := miner.FloatOption("pkg", "F", &f, 0.5, in01, "in (0,1]"); err == nil {
		t.Fatal("FloatOption out of range: want error")
	}
	f = math.NaN()
	if err := miner.FloatOption("pkg", "F", &f, 0.5, in01, "in (0,1]"); err == nil {
		t.Fatal("FloatOption NaN: want error (positive-form predicate)")
	}
}

// TestPrefilterSubset pins the fda filtering contract: with Prefilter on,
// its result is a subset of the unfiltered canonical result with
// identical supports, still in canonical order, and single-feature
// anomaly concentrations (the shapes extraction feeds it) survive the
// filter.
func TestPrefilterSubset(t *testing.T) {
	m, err := miner.New("fda")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := miner.New("fpgrowth")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 40; seed++ {
		rng := stats.NewRNG(seed * 104729)
		ds := randomWeightedDataset(seed+500, 10+rng.Intn(150))
		opts := miner.Options{
			MinSupport: uint64(1 + rng.Intn(30)),
			ByPackets:  seed%2 == 0,
		}
		full, err := ref.Mine(t.Context(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Prefilter = true
		opts.Significance = 0.5 + rng.Float64()*3
		opts.MinLift = 0.5 + rng.Float64()
		filtered, err := m.Mine(t.Context(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(filtered) > len(full) {
			t.Fatalf("seed %d: filtered result larger than unfiltered (%d > %d)", seed, len(filtered), len(full))
		}
		// Subset with equal supports, order preserved: advance through the
		// canonical full list and match each filtered row in turn.
		j := 0
		for _, fr := range filtered {
			for j < len(full) && !(full[j].Items.Equal(fr.Items) && full[j].Support == fr.Support) {
				j++
			}
			if j == len(full) {
				t.Fatalf("seed %d: filtered itemset %v (support %d) not in unfiltered result in canonical order",
					seed, fr.Items, fr.Support)
			}
			j++
		}
	}
}

// TestCrossMinerCancellation pins every miner to prompt ctx.Err()
// propagation.
func TestCrossMinerCancellation(t *testing.T) {
	ds := randomWeightedDataset(99, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range miner.Names() {
		m, err := miner.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.MineMaximal(ctx, ds, miner.Options{MinSupport: 1}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: got %v, want context.Canceled", name, err)
		}
	}
}
