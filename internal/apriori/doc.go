// Package apriori implements the Apriori frequent itemset mining algorithm
// (Agrawal & Srikant, VLDB'94) over flow-transaction datasets — the miner
// the paper builds its anomaly extraction on.
//
// The flow setting bounds the problem pleasantly: every transaction has
// exactly one item per traffic feature, so itemsets contain at most
// flow.NumFeatures items, no itemset holds two values of the same feature,
// and each level-k scan enumerates at most C(5, k) subsets per transaction.
// Candidate generation exploits both facts.
package apriori
