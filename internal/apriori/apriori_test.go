package apriori

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/stats"
)

// mkRecord builds a record whose feature values are drawn from tiny
// alphabets so that itemsets overlap heavily.
func mkRecord(src, dst, sport, dport, proto uint8, pkts uint64) flow.Record {
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}
	return flow.Record{
		Start:   1,
		SrcIP:   flow.IP(src % 4),
		DstIP:   flow.IP(dst % 4),
		SrcPort: uint16(sport % 4),
		DstPort: uint16(dport % 4),
		Proto:   protos[int(proto)%len(protos)],
		Packets: pkts%50 + 1,
		Bytes:   (pkts%50 + 1) * 40,
	}
}

// randomDataset builds a deterministic pseudo-random dataset.
func randomDataset(seed uint64, n int) *itemset.Dataset {
	rng := stats.NewRNG(seed)
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = mkRecord(
			uint8(rng.Intn(4)), uint8(rng.Intn(4)), uint8(rng.Intn(4)),
			uint8(rng.Intn(4)), uint8(rng.Intn(3)), rng.Uint64(),
		)
	}
	return itemset.FromRecords(recs)
}

// bruteForce enumerates every subset (sizes 1..5) of every distinct
// transaction and reports those with support >= minSupport — the oracle
// both miners must match.
func bruteForce(ds *itemset.Dataset, minSupport uint64, byPackets bool, maxLen int) map[string]uint64 {
	if maxLen <= 0 || maxLen > flow.NumFeatures {
		maxLen = flow.NumFeatures
	}
	seen := make(map[string]itemset.Set)
	for i := 0; i < ds.Len(); i++ {
		items := ds.Tx(i).Items
		for mask := 1; mask < 1<<flow.NumFeatures; mask++ {
			var s itemset.Set
			for b := 0; b < flow.NumFeatures; b++ {
				if mask&(1<<b) != 0 {
					s = append(s, items[b])
				}
			}
			if len(s) > maxLen {
				continue
			}
			seen[s.Key()] = s
		}
	}
	out := make(map[string]uint64)
	for key, s := range seen {
		if sup := ds.Support(s, byPackets); sup >= minSupport {
			out[key] = sup
		}
	}
	return out
}

func assertMatchesOracle(t *testing.T, got []itemset.Frequent, oracle map[string]uint64) {
	t.Helper()
	if len(got) != len(oracle) {
		t.Fatalf("miner found %d itemsets, oracle %d", len(got), len(oracle))
	}
	for _, fr := range got {
		want, ok := oracle[fr.Items.Key()]
		if !ok {
			t.Fatalf("miner reported non-frequent itemset %v", fr)
		}
		if want != fr.Support {
			t.Fatalf("itemset %v: support %d, oracle %d", fr.Items, fr.Support, want)
		}
	}
}

func TestMineMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ds := randomDataset(seed, 200)
		for _, minSup := range []uint64{1, 5, 20, 60} {
			got, err := Mine(t.Context(), ds, Options{MinSupport: minSup})
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesOracle(t, got, bruteForce(ds, minSup, false, 0))
		}
	}
}

func TestMineByPacketsMatchesBruteForce(t *testing.T) {
	for seed := uint64(10); seed <= 12; seed++ {
		ds := randomDataset(seed, 150)
		for _, minSup := range []uint64{10, 200, 1000} {
			got, err := Mine(t.Context(), ds, Options{MinSupport: minSup, ByPackets: true})
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesOracle(t, got, bruteForce(ds, minSup, true, 0))
		}
	}
}

func TestMaxLen(t *testing.T) {
	ds := randomDataset(3, 100)
	for maxLen := 1; maxLen <= 5; maxLen++ {
		got, err := Mine(t.Context(), ds, Options{MinSupport: 5, MaxLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range got {
			if fr.Items.Len() > maxLen {
				t.Fatalf("MaxLen=%d violated by %v", maxLen, fr)
			}
		}
		assertMatchesOracle(t, got, bruteForce(ds, 5, false, maxLen))
	}
}

func TestZeroSupportRejected(t *testing.T) {
	ds := randomDataset(1, 10)
	if _, err := Mine(t.Context(), ds, Options{MinSupport: 0}); err != ErrZeroSupport {
		t.Fatalf("got %v, want ErrZeroSupport", err)
	}
}

func TestEmptyDataset(t *testing.T) {
	ds := itemset.FromRecords(nil)
	got, err := Mine(t.Context(), ds, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty dataset yielded %d itemsets", len(got))
	}
}

func TestDeterminism(t *testing.T) {
	ds := randomDataset(7, 300)
	a, err := Mine(t.Context(), ds, Options{MinSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(t.Context(), ds, Options{MinSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
			t.Fatalf("result %d differs between runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAnomalyScenario(t *testing.T) {
	// A port scan (one srcIP, one dstIP, many dstPorts) over background
	// noise must yield the (srcIP, dstIP) pair as a high-support itemset.
	rng := stats.NewRNG(99)
	var recs []flow.Record
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("192.0.2.77")
	for p := 0; p < 500; p++ {
		recs = append(recs, flow.Record{
			Start: 1, SrcIP: scanner, DstIP: victim,
			SrcPort: 55548, DstPort: uint16(p + 1),
			Proto: flow.ProtoTCP, Packets: 1, Bytes: 40,
		})
	}
	for i := 0; i < 300; i++ {
		recs = append(recs, flow.Record{
			Start: 1,
			SrcIP: flow.IP(rng.Uint32()), DstIP: flow.IP(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65535) + 1), DstPort: 80,
			Proto: flow.ProtoTCP, Packets: 3, Bytes: 120,
		})
	}
	ds := itemset.FromRecords(recs)
	got, err := MineMaximal(t.Context(), ds, Options{MinSupport: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("scan itemset not found")
	}
	top := got[0]
	wantSrc := itemset.NewItem(flow.FeatSrcIP, uint32(scanner))
	wantDst := itemset.NewItem(flow.FeatDstIP, uint32(victim))
	if !top.Items.Contains(wantSrc) || !top.Items.Contains(wantDst) {
		t.Fatalf("top itemset %v does not identify the scan pair", top)
	}
	if top.Support != 500 {
		t.Fatalf("scan support = %d, want 500", top.Support)
	}
}

func TestMaximalReduction(t *testing.T) {
	ds := randomDataset(5, 200)
	all, err := Mine(t.Context(), ds, Options{MinSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	max, err := MineMaximal(t.Context(), ds, Options{MinSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(max) > len(all) {
		t.Fatal("maximal set larger than full set")
	}
	// No maximal itemset is a subset of another.
	for i := range max {
		for j := range max {
			if i != j && max[i].Items.SubsetOf(max[j].Items) {
				t.Fatalf("%v is a subset of %v", max[i].Items, max[j].Items)
			}
		}
	}
}

func TestSupportMonotonicityProperty(t *testing.T) {
	// Apriori property: support of a superset never exceeds support of a
	// subset. Verified over the miner's own output.
	ds := randomDataset(13, 250)
	got, err := Mine(t.Context(), ds, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[string]uint64{}
	for _, fr := range got {
		bySize[fr.Items.Key()] = fr.Support
	}
	for _, fr := range got {
		if fr.Items.Len() < 2 {
			continue
		}
		for drop := 0; drop < fr.Items.Len(); drop++ {
			sub := make(itemset.Set, 0, fr.Items.Len()-1)
			for i, it := range fr.Items {
				if i != drop {
					sub = append(sub, it)
				}
			}
			subSup, ok := bySize[sub.Key()]
			if !ok {
				t.Fatalf("subset %v of frequent %v missing from result", sub, fr.Items)
			}
			if subSup < fr.Support {
				t.Fatalf("monotonicity violated: %v sup %d < superset sup %d", sub, subSup, fr.Support)
			}
		}
	}
}

func TestQuickRandomDatasets(t *testing.T) {
	// Property test across random datasets: miner output == brute force.
	f := func(seed uint64, sizeRaw uint8, supRaw uint8) bool {
		size := int(sizeRaw%60) + 5
		minSup := uint64(supRaw%10) + 1
		ds := randomDataset(seed, size)
		got, err := Mine(t.Context(), ds, Options{MinSupport: minSup})
		if err != nil {
			return false
		}
		oracle := bruteForce(ds, minSup, false, 0)
		if len(got) != len(oracle) {
			return false
		}
		for _, fr := range got {
			if oracle[fr.Items.Key()] != fr.Support {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMineCancelled(t *testing.T) {
	ds := randomDataset(3, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Mine(ctx, ds, Options{MinSupport: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Mine err = %v, want context.Canceled", err)
	}
	if _, err := MineMaximal(ctx, ds, Options{MinSupport: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineMaximal err = %v, want context.Canceled", err)
	}
}
