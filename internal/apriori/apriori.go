package apriori

import (
	"context"
	"sort"

	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/miner"
)

// Options is the shared miner configuration (see miner.Options).
type Options = miner.Options

// ErrZeroSupport is returned when Options.MinSupport is 0, which would
// declare every possible itemset frequent.
var ErrZeroSupport = miner.ErrZeroSupport

// Miner is the registry adapter: package-level Mine/MineMaximal behind
// the miner.Miner interface. Registered as "apriori" (the default).
type Miner struct{}

// Mine implements miner.Miner.
func (Miner) Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	return Mine(ctx, ds, opts)
}

// MineMaximal implements miner.Miner.
func (Miner) MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	return MineMaximal(ctx, ds, opts)
}

func init() {
	miner.MustRegister("apriori", func() miner.Miner { return Miner{} })
}

// Mine returns all itemsets with support >= opts.MinSupport in the chosen
// dimension, canonically sorted (descending support, then descending
// length). The empty itemset is never reported. Cancelling ctx aborts
// mining between dataset scan strides and returns ctx.Err().
func Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	maxLen := opts.MaxLen
	if maxLen <= 0 || maxLen > flow.NumFeatures {
		maxLen = flow.NumFeatures
	}

	var result []itemset.Frequent

	// Level 1: count every item with one scan.
	counts := make(map[itemset.Item]uint64)
	for i := 0; i < ds.Len(); i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tx := ds.Tx(i)
		w := tx.Weight(opts.ByPackets)
		for _, it := range tx.Items {
			counts[it] += w
		}
	}
	frequent := make(map[itemset.Item]bool, len(counts))
	var level []itemset.Set // L_k, each sorted
	for it, c := range counts {
		if c >= opts.MinSupport {
			frequent[it] = true
			result = append(result, itemset.Frequent{Items: itemset.Set{it}, Support: c})
			level = append(level, itemset.Set{it})
		}
	}
	sortSets(level)

	// Levels 2..maxLen: generate candidates from the previous level, count
	// with one scan, keep the frequent ones.
	for k := 2; k <= maxLen && len(level) >= 2; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		candidates := generateCandidates(level, k)
		if len(candidates) == 0 {
			break
		}
		supports, err := countCandidates(ctx, ds, candidates, frequent, k, opts.ByPackets)
		if err != nil {
			return nil, err
		}
		var next []itemset.Set
		for key, sup := range supports {
			if sup >= opts.MinSupport {
				set := candidates[key]
				result = append(result, itemset.Frequent{Items: set, Support: sup})
				next = append(next, set)
			}
		}
		sortSets(next)
		level = next
	}

	itemset.SortFrequent(result)
	return result, nil
}

// MineMaximal runs Mine and reduces the result to maximal itemsets, the
// form the paper reports to operators.
func MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	all, err := Mine(ctx, ds, opts)
	if err != nil {
		return nil, err
	}
	return itemset.MaximalOnly(all), nil
}

// ctxCheckStride is how many transactions a dataset scan processes between
// context checks.
const ctxCheckStride = 1024

// sortSets orders itemsets lexicographically so candidate generation can
// join sets sharing a (k-2)-prefix by scanning neighbours.
func sortSets(sets []itemset.Set) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// generateCandidates produces the level-k candidate map (keyed by Set.Key)
// from the lexicographically sorted frequent (k-1)-sets, using the classic
// prefix join followed by the Apriori prune, plus the domain prune: items
// of the same traffic feature never combine.
func generateCandidates(level []itemset.Set, k int) map[string]itemset.Set {
	candidates := make(map[string]itemset.Set)
	// Index of (k-1)-set keys for the prune step.
	prev := make(map[string]bool, len(level))
	for _, s := range level {
		prev[s.Key()] = true
	}
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b) {
				// Sorted order: once prefixes diverge, no later j matches.
				break
			}
			last1, last2 := a[len(a)-1], b[len(b)-1]
			if last1.Feature() == last2.Feature() {
				// A flow has exactly one value per feature: a candidate
				// holding two srcIPs can never be contained in any
				// transaction. Skip, but keep scanning j (later sets can
				// carry other features).
				continue
			}
			cand := a.Union(itemset.Set{last2})
			if len(cand) != k {
				continue
			}
			if !allSubsetsFrequent(cand, prev) {
				continue
			}
			candidates[cand.Key()] = cand
		}
	}
	return candidates
}

// samePrefix reports whether two equal-length sorted sets agree on all but
// the last item.
func samePrefix(a, b itemset.Set) bool {
	for k := 0; k < len(a)-1; k++ {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori property: every (k-1)-subset of a
// candidate must itself be frequent.
func allSubsetsFrequent(cand itemset.Set, prev map[string]bool) bool {
	sub := make(itemset.Set, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != drop {
				sub = append(sub, it)
			}
		}
		if !prev[sub.Key()] {
			return false
		}
	}
	return true
}

// countCandidates scans the dataset once, enumerating each transaction's
// k-subsets over frequent items and accumulating support for those that
// are candidates.
func countCandidates(ctx context.Context, ds *itemset.Dataset, candidates map[string]itemset.Set, frequentItem map[itemset.Item]bool, k int, byPackets bool) (map[string]uint64, error) {
	supports := make(map[string]uint64, len(candidates))
	var buf itemset.Set      // scratch subset
	var items []itemset.Item // frequent items of the current transaction
	for i := 0; i < ds.Len(); i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tx := ds.Tx(i)
		items = items[:0]
		for _, it := range tx.Items {
			if frequentItem[it] {
				items = append(items, it)
			}
		}
		if len(items) < k {
			continue
		}
		w := tx.Weight(byPackets)
		enumerateSubsets(items, k, &buf, func(sub itemset.Set) {
			key := sub.Key()
			if _, ok := candidates[key]; ok {
				supports[key] += w
			}
		})
	}
	return supports, nil
}

// enumerateSubsets calls fn for every k-subset of items (which is sorted),
// reusing buf as scratch. With at most flow.NumFeatures items the subset
// count is bounded by C(5,k) <= 10.
func enumerateSubsets(items []itemset.Item, k int, buf *itemset.Set, fn func(itemset.Set)) {
	*buf = (*buf)[:0]
	var rec func(start int)
	rec = func(start int) {
		if len(*buf) == k {
			fn(*buf)
			return
		}
		// Not enough items left to fill the subset?
		need := k - len(*buf)
		for i := start; i+need <= len(items)+0; i++ {
			if len(items)-i < need {
				break
			}
			*buf = append(*buf, items[i])
			rec(i + 1)
			*buf = (*buf)[:len(*buf)-1]
		}
	}
	rec(0)
}
