package netreflex

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
	"repro/internal/pca"
)

// Config tunes the classification heuristics.
type Config struct {
	// PCA configures the underlying subspace detector; zero value means
	// pca.DefaultConfig.
	PCA *pca.Config
	// ScanPorts is the minimum number of distinct destination ports the
	// dominant host pair must touch to classify as a port scan.
	ScanPorts int
	// ScanHosts is the minimum number of distinct destination hosts a
	// single source must touch (on a dominant port) to classify as a
	// network scan.
	ScanHosts int
	// DDoSSources is the minimum number of distinct sources hitting one
	// destination (on a dominant port) to classify as a distributed DoS.
	DDoSSources int
	// FloodPackets is the minimum renormalized packet count of the
	// dominant host pair to classify as a (point-to-point) flood.
	FloodPackets uint64
	// DominantShare is the traffic share a signature must hold among the
	// interval's flows for its endpoints to be reported as meta-data.
	DominantShare float64
	// ChangeFactor is how much a signature's volume must exceed its own
	// volume in the preceding bin to classify. Popular background servers
	// permanently have many distinct clients; an anomaly is a CHANGE, so
	// classification is relative to the baseline bin.
	ChangeFactor float64
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		ScanPorts:     100,
		ScanHosts:     100,
		DDoSSources:   50,
		FloodPackets:  500_000,
		DominantShare: 0.05,
		ChangeFactor:  5,
	}
}

// Detector is the simulated NetReflex.
type Detector struct {
	cfg Config
	pca *pca.Detector
}

// New builds the detector.
func New(cfg Config) (*Detector, error) {
	if cfg.ScanPorts <= 0 {
		cfg.ScanPorts = 100
	}
	if cfg.ScanHosts <= 0 {
		cfg.ScanHosts = 100
	}
	if cfg.DDoSSources <= 0 {
		cfg.DDoSSources = 50
	}
	if cfg.FloodPackets == 0 {
		cfg.FloodPackets = 500_000
	}
	if cfg.DominantShare <= 0 || cfg.DominantShare > 1 {
		cfg.DominantShare = 0.05
	}
	if cfg.ChangeFactor <= 1 {
		cfg.ChangeFactor = 5
	}
	pcfg := pca.DefaultConfig()
	if cfg.PCA != nil {
		pcfg = *cfg.PCA
	}
	inner, err := pca.New(pcfg)
	if err != nil {
		return nil, fmt.Errorf("netreflex: %w", err)
	}
	return &Detector{cfg: cfg, pca: inner}, nil
}

// init registers the detector under its public name; the factory accepts
// a netreflex.Config (or nil for defaults).
func init() {
	detector.MustRegister("netreflex", func(cfg any) (detector.Detector, error) {
		c, err := detector.CoerceConfig(cfg, DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("netreflex: %w", err)
		}
		return New(c)
	})
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "netreflex" }

// Detect implements detector.Detector: run the subspace detector, then
// classify each alarm and replace its meta-data with the dominant
// signature's fine-grained items.
func (d *Detector) Detect(ctx context.Context, store nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	raw, err := d.pca.Detect(ctx, store, span)
	if err != nil {
		return nil, err
	}
	out := make([]detector.Alarm, 0, len(raw))
	for _, a := range raw {
		kind, meta, err := d.classify(ctx, store, a.Interval)
		if err != nil {
			return nil, err
		}
		a.Detector = d.Name()
		a.Kind = kind
		if len(meta) > 0 {
			a.Meta = meta
		}
		out = append(out, a)
	}
	return out, nil
}

// pairKey identifies a (srcIP, dstIP) pair.
type pairKey struct {
	src, dst flow.IP
}

// intervalStats aggregates the structure of one interval's flows.
type intervalStats struct {
	totalFlows uint64

	pairFlows   map[pairKey]uint64
	pairPackets map[pairKey]uint64
	pairPorts   map[pairKey]map[uint16]struct{}  // distinct dstPorts per pair
	pairSrcPort map[pairKey]map[uint16]uint64    // srcPort flow counts per pair
	pairProto   map[pairKey]flow.Protocol        // last proto seen per pair
	srcDsts     map[flow.IP]map[flow.IP]struct{} // distinct dstIPs per src
	srcFlows    map[flow.IP]uint64
	srcDstPort  map[flow.IP]map[uint16]uint64    // dstPort flow counts per src
	dstSrcs     map[flow.IP]map[flow.IP]struct{} // distinct srcIPs per dst
	dstFlows    map[flow.IP]uint64
	dstDstPort  map[flow.IP]map[uint16]uint64 // dstPort flow counts per dst
}

// gatherStats aggregates the structure of one interval's flows.
func gatherStats(ctx context.Context, store nfstore.Engine, iv flow.Interval) (*intervalStats, error) {
	st := &intervalStats{
		pairFlows:   map[pairKey]uint64{},
		pairPackets: map[pairKey]uint64{},
		pairPorts:   map[pairKey]map[uint16]struct{}{},
		pairSrcPort: map[pairKey]map[uint16]uint64{},
		pairProto:   map[pairKey]flow.Protocol{},
		srcDsts:     map[flow.IP]map[flow.IP]struct{}{},
		srcFlows:    map[flow.IP]uint64{},
		srcDstPort:  map[flow.IP]map[uint16]uint64{},
		dstSrcs:     map[flow.IP]map[flow.IP]struct{}{},
		dstFlows:    map[flow.IP]uint64{},
		dstDstPort:  map[flow.IP]map[uint16]uint64{},
	}
	err := store.Query(ctx, iv, nil, func(r *flow.Record) error {
		st.totalFlows++
		pk := pairKey{src: r.SrcIP, dst: r.DstIP}
		st.pairFlows[pk]++
		st.pairPackets[pk] += r.Packets
		st.pairProto[pk] = r.Proto
		addSet16(st.pairPorts, pk, r.DstPort)
		addCount16(st.pairSrcPort, pk, r.SrcPort)
		addSetIP(st.srcDsts, r.SrcIP, r.DstIP)
		st.srcFlows[r.SrcIP]++
		addCountIP16(st.srcDstPort, r.SrcIP, r.DstPort)
		addSetIP(st.dstSrcs, r.DstIP, r.SrcIP)
		st.dstFlows[r.DstIP]++
		addCountIP16(st.dstDstPort, r.DstIP, r.DstPort)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// classify inspects the flows of the flagged interval — relative to the
// preceding baseline bin — and derives the anomaly kind plus the dominant
// signature's meta-data.
func (d *Detector) classify(ctx context.Context, store nfstore.Engine, iv flow.Interval) (detector.Kind, []detector.MetaItem, error) {
	st, err := gatherStats(ctx, store, iv)
	if err != nil {
		return detector.KindUnknown, nil, err
	}
	if st.totalFlows == 0 {
		return detector.KindUnknown, nil, nil
	}
	// Baseline: the preceding bin (zero stats when the alarm is the first
	// bin on disk — every signature then counts as new).
	span := iv.End - iv.Start
	base := &intervalStats{}
	if iv.Start >= span {
		base, err = gatherStats(ctx, store, flow.Interval{Start: iv.Start - span, End: iv.Start})
		if err != nil {
			return detector.KindUnknown, nil, err
		}
	}
	spiked := func(now, before uint64) bool {
		return float64(now) >= d.cfg.ChangeFactor*float64(before)
	}

	// 1. Port scan: the dominant pair touches many distinct destination
	// ports. Meta mirrors the paper's example: srcIP, dstIP and (when one
	// source port dominates) srcPort — dstPort is wildcarded.
	if pk, ok := topPairByFlows(st); ok {
		ports := len(st.pairPorts[pk])
		if ports >= d.cfg.ScanPorts && d.dominant(st.pairFlows[pk], st.totalFlows) &&
			spiked(st.pairFlows[pk], base.pairFlows[pk]) {
			meta := []detector.MetaItem{
				{Feature: flow.FeatSrcIP, Value: uint32(pk.src)},
				{Feature: flow.FeatDstIP, Value: uint32(pk.dst)},
			}
			if sp, ok := dominantKey16(st.pairSrcPort[pk], st.pairFlows[pk]); ok {
				meta = append(meta, detector.MetaItem{Feature: flow.FeatSrcPort, Value: uint32(sp)})
			}
			return detector.KindPortScan, meta, nil
		}
	}

	// 2. Network scan: one source touches many destinations on a dominant
	// port.
	if src, ok := topKeyByCount(st.srcFlows); ok {
		if len(st.srcDsts[src]) >= d.cfg.ScanHosts && d.dominant(st.srcFlows[src], st.totalFlows) &&
			spiked(st.srcFlows[src], base.srcFlows[src]) {
			meta := []detector.MetaItem{{Feature: flow.FeatSrcIP, Value: uint32(src)}}
			if dp, ok := dominantKey16(st.srcDstPort[src], st.srcFlows[src]); ok {
				meta = append(meta, detector.MetaItem{Feature: flow.FeatDstPort, Value: uint32(dp)})
			}
			return detector.KindNetScan, meta, nil
		}
	}

	// 3. DDoS: one destination is hit by many sources on a dominant port.
	if dst, ok := topKeyByCount(st.dstFlows); ok {
		if len(st.dstSrcs[dst]) >= d.cfg.DDoSSources && d.dominant(st.dstFlows[dst], st.totalFlows) &&
			spiked(st.dstFlows[dst], base.dstFlows[dst]) {
			meta := []detector.MetaItem{{Feature: flow.FeatDstIP, Value: uint32(dst)}}
			if dp, ok := dominantKey16(st.dstDstPort[dst], st.dstFlows[dst]); ok {
				meta = append(meta, detector.MetaItem{Feature: flow.FeatDstPort, Value: uint32(dp)})
			}
			return detector.KindDDoS, meta, nil
		}
	}

	// 4. Point-to-point flood: the dominant pair by packets moves flood-
	// scale packet volume. UDP floods are the class the paper calls out
	// as frequent in GEANT.
	if pk, ok := topPairByPackets(st); ok {
		if st.pairPackets[pk] >= d.cfg.FloodPackets &&
			spiked(st.pairPackets[pk], base.pairPackets[pk]) {
			meta := []detector.MetaItem{
				{Feature: flow.FeatSrcIP, Value: uint32(pk.src)},
				{Feature: flow.FeatDstIP, Value: uint32(pk.dst)},
			}
			kind := detector.KindDoS
			if st.pairProto[pk] == flow.ProtoUDP {
				kind = detector.KindUDPFlood
			}
			return kind, meta, nil
		}
	}

	return detector.KindUnknown, nil, nil
}

// dominant reports whether count is a dominant share of total.
func (d *Detector) dominant(count, total uint64) bool {
	return float64(count) >= d.cfg.DominantShare*float64(total)
}

// ---- small aggregation helpers (deterministic tie-breaks throughout) ----

func addSet16(m map[pairKey]map[uint16]struct{}, k pairKey, v uint16) {
	s := m[k]
	if s == nil {
		s = map[uint16]struct{}{}
		m[k] = s
	}
	s[v] = struct{}{}
}

func addCount16(m map[pairKey]map[uint16]uint64, k pairKey, v uint16) {
	s := m[k]
	if s == nil {
		s = map[uint16]uint64{}
		m[k] = s
	}
	s[v]++
}

func addSetIP(m map[flow.IP]map[flow.IP]struct{}, k, v flow.IP) {
	s := m[k]
	if s == nil {
		s = map[flow.IP]struct{}{}
		m[k] = s
	}
	s[v] = struct{}{}
}

func addCountIP16(m map[flow.IP]map[uint16]uint64, k flow.IP, v uint16) {
	s := m[k]
	if s == nil {
		s = map[uint16]uint64{}
		m[k] = s
	}
	s[v]++
}

func topPairByFlows(st *intervalStats) (pairKey, bool) {
	return topPair(st.pairFlows)
}

func topPairByPackets(st *intervalStats) (pairKey, bool) {
	return topPair(st.pairPackets)
}

func topPair(m map[pairKey]uint64) (pairKey, bool) {
	var best pairKey
	var bestCount uint64
	found := false
	keys := make([]pairKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	for _, k := range keys {
		if m[k] > bestCount {
			best, bestCount, found = k, m[k], true
		}
	}
	return best, found
}

func topKeyByCount(m map[flow.IP]uint64) (flow.IP, bool) {
	var best flow.IP
	var bestCount uint64
	found := false
	keys := make([]flow.IP, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if m[k] > bestCount {
			best, bestCount, found = k, m[k], true
		}
	}
	return best, found
}

// dominantKey16 returns the key holding at least 60% of total, if any.
func dominantKey16(m map[uint16]uint64, total uint64) (uint16, bool) {
	if total == 0 {
		return 0, false
	}
	keys := make([]uint16, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if float64(m[k]) >= 0.6*float64(total) {
			return k, true
		}
	}
	return 0, false
}
