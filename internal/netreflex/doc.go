// Package netreflex simulates the commercial anomaly detection system of
// the paper's GEANT deployment (NetReflex by Guavus). The paper describes
// it as a detector "based on a well-known anomaly detector [Lakhina'05]
// using Principal Component Analysis" that flags anomalies "on the basis
// of volume and IP features entropy variations" and "provides fine-grained
// meta-data often at the level of individual IPs and port numbers".
//
// Accordingly, this package wraps the PCA subspace detector
// (internal/pca) and adds the two behaviours the paper attributes to
// NetReflex:
//
//   - classification: each alarm is labeled port scan / network scan /
//     (D)DoS / UDP flood by inspecting the structure of the flows in the
//     flagged interval; and
//
//   - fine-grained but DELIBERATELY NARROW meta-data: only the single
//     dominant traffic signature is reported (e.g. one scanner's srcIP,
//     dstIP and srcPort). The paper's Table 1 and its 26-28% statistics
//     hinge on exactly this behaviour — a concurrent second scanner or
//     DDoS on the same target is NOT included in the meta-data, and it is
//     the frequent-itemset extraction step that recovers it.
package netreflex
