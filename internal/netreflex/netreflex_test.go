package netreflex

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
	"repro/internal/pca"
)

const nrBase = uint32(1_200_000_000)

// runScenario generates a scenario and runs the simulated NetReflex.
func runScenario(t *testing.T, placements []gen.Placement, seed uint64) ([]detector.Alarm, *gen.Truth) {
	t.Helper()
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 4, FlowsPerBin: 250, Hosts: 1000, Servers: 200},
		Bins:       30, StartTime: nrBase, Seed: seed,
		Placements: placements,
	}
	truth, err := s.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	d := MustNew(DefaultConfig())
	alarms, err := d.Detect(t.Context(), store, truth.Span)
	if err != nil {
		t.Fatal(err)
	}
	return alarms, truth
}

func findAlarm(alarms []detector.Alarm, iv flow.Interval) *detector.Alarm {
	for i := range alarms {
		if alarms[i].Interval == iv {
			return &alarms[i]
		}
	}
	return nil
}

func hasMeta(a *detector.Alarm, f flow.Feature, v uint32) bool {
	for _, m := range a.Meta {
		if m.Feature == f && m.Value == v {
			return true
		}
	}
	return false
}

func TestPortScanClassified(t *testing.T) {
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.18.137.129")
	alarms, truth := runScenario(t, []gen.Placement{
		{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548, Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 20},
	}, 1)
	a := findAlarm(alarms, truth.Entries[0].Interval)
	if a == nil {
		t.Fatalf("scan not detected; alarms: %v", alarms)
	}
	if a.Kind != detector.KindPortScan {
		t.Fatalf("kind = %v, want port scan", a.Kind)
	}
	if a.Detector != "netreflex" {
		t.Fatalf("detector name = %q", a.Detector)
	}
	if !hasMeta(a, flow.FeatSrcIP, uint32(scanner)) || !hasMeta(a, flow.FeatDstIP, uint32(victim)) {
		t.Fatalf("meta %v missing scan endpoints", a.Meta)
	}
	if !hasMeta(a, flow.FeatSrcPort, 55548) {
		t.Fatalf("meta %v missing the dominant source port (paper's example)", a.Meta)
	}
}

func TestNarrowMetaOnConcurrentAnomalies(t *testing.T) {
	// The Table 1 situation: a dominant scanner, a second scanner on the
	// same target and a DDoS on port 80 — all in the same bin. NetReflex
	// must flag the bin but report ONLY the dominant scanner's signature.
	scannerA := flow.MustParseIP("10.191.64.165")
	scannerB := flow.MustParseIP("10.22.33.44")
	victim := flow.MustParseIP("198.18.137.129")
	alarms, truth := runScenario(t, []gen.Placement{
		{Anomaly: gen.PortScan{Scanner: scannerA, Victim: victim, SrcPort: 55548, Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 18},
		{Anomaly: gen.PortScan{Scanner: scannerB, Victim: victim, SrcPort: 55548, Ports: 1300, FlowsPerPort: 2, Router: 1}, Bin: 18},
		{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 200, SourceNet: flow.MustParsePrefix("172.16.0.0/12"), FlowsPerSource: 2, Router: 2}, Bin: 18},
	}, 2)
	a := findAlarm(alarms, truth.Entries[0].Interval)
	if a == nil {
		t.Fatalf("bin not flagged; alarms: %v", alarms)
	}
	if a.Kind != detector.KindPortScan {
		t.Fatalf("kind = %v, want port scan (dominant signature)", a.Kind)
	}
	if !hasMeta(a, flow.FeatSrcIP, uint32(scannerA)) {
		t.Fatalf("meta %v must name the dominant scanner", a.Meta)
	}
	if hasMeta(a, flow.FeatSrcIP, uint32(scannerB)) {
		t.Fatalf("meta %v must NOT name the second scanner — extraction's job", a.Meta)
	}
}

func TestUDPFloodClassified(t *testing.T) {
	src := flow.MustParseIP("10.55.55.55")
	dst := flow.MustParseIP("198.18.0.77")
	alarms, truth := runScenario(t, []gen.Placement{
		{Anomaly: gen.UDPFlood{Src: src, Dst: dst, DstPort: 9999, Flows: 4, PacketsPerFlow: 2_000_000, Router: 2}, Bin: 22},
	}, 3)
	a := findAlarm(alarms, truth.Entries[0].Interval)
	if a == nil {
		t.Fatalf("flood not detected; alarms: %v", alarms)
	}
	if a.Kind != detector.KindUDPFlood {
		t.Fatalf("kind = %v, want udp flood", a.Kind)
	}
	if !hasMeta(a, flow.FeatSrcIP, uint32(src)) || !hasMeta(a, flow.FeatDstIP, uint32(dst)) {
		t.Fatalf("meta %v missing flood endpoints", a.Meta)
	}
}

func TestDDoSClassified(t *testing.T) {
	victim := flow.MustParseIP("198.18.0.80")
	alarms, truth := runScenario(t, []gen.Placement{
		{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 600, SourceNet: flow.MustParsePrefix("172.16.0.0/12"), FlowsPerSource: 3, Router: 0}, Bin: 25},
	}, 4)
	a := findAlarm(alarms, truth.Entries[0].Interval)
	if a == nil {
		t.Fatalf("ddos not detected; alarms: %v", alarms)
	}
	if a.Kind != detector.KindDDoS {
		t.Fatalf("kind = %v, want ddos", a.Kind)
	}
	if !hasMeta(a, flow.FeatDstIP, uint32(victim)) || !hasMeta(a, flow.FeatDstPort, 80) {
		t.Fatalf("meta %v missing victim/port", a.Meta)
	}
}

func TestConfigDefaults(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.ScanPorts != 100 || d.cfg.FloodPackets != 500_000 {
		t.Fatal("defaults not applied")
	}
	if d.Name() != "netreflex" {
		t.Fatal("name")
	}
}

func TestBadPCAConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	p := pca.DefaultConfig()
	p.Alpha = 0.9 // invalid: must be < 0.5
	cfg.PCA = &p
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid PCA config must be rejected")
	}
}
