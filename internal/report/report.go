package report

import (
	"strings"
)

// Table is a simple rows-and-headers table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table with aligned columns and a rule under the
// header.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", w[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, x := range w {
		total += x
	}
	b.WriteString(strings.Repeat("-", total+2*(len(w)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**" + t.Title + "**\n\n")
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
