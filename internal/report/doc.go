// Package report renders aligned ASCII and markdown tables — the output
// format of the extraction CLI, the experiment harness and the benchmark
// reports (mirroring the row/column shape of the paper's Table 1).
package report
