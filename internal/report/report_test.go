package report

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tbl := New("title", "a", "longheader")
	tbl.AddRow("x", "1")
	tbl.AddRow("longervalue", "2")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Fatalf("first line = %q", lines[0])
	}
	// Header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("%d lines: %q", len(lines), lines)
	}
	// All data lines must align: the second column starts at the same
	// offset in every row.
	idx := strings.Index(lines[1], "longheader")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[3][idx:], "1") {
		t.Fatalf("row 1 misaligned: %q", lines[3])
	}
	if !strings.HasPrefix(lines[4][idx:], "2") {
		t.Fatalf("row 2 misaligned: %q", lines[4])
	}
}

func TestShortRowsPadded(t *testing.T) {
	tbl := New("", "a", "b", "c")
	tbl.AddRow("only")
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Fatal("row lost")
	}
	// Must not panic and must keep 3 columns in the header.
	if !strings.Contains(out, "a") || !strings.Contains(out, "c") {
		t.Fatal("headers lost")
	}
}

func TestNoTitle(t *testing.T) {
	tbl := New("", "h")
	tbl.AddRow("v")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Fatal("empty title must not emit a blank first line")
	}
}

func TestMarkdown(t *testing.T) {
	tbl := New("T", "x", "y")
	tbl.AddRow("1", "2")
	md := tbl.Markdown()
	for _, want := range []string{"**T**", "| x | y |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := New("t", "h1", "h2")
	out := tbl.String()
	if !strings.Contains(out, "h1") || !strings.Contains(out, "h2") {
		t.Fatal("empty table must still render headers")
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| h1 | h2 |") {
		t.Fatal("empty markdown table must render headers")
	}
}
