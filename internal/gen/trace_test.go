package gen

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

// traceRecords is a small fixed valid trace for the format tests.
func traceRecords() []flow.Record {
	return []flow.Record{
		{Start: 900_000_000, Dur: 1500, SrcIP: flow.MustParseIP("10.0.0.1"), DstIP: flow.MustParseIP("198.18.0.1"),
			SrcPort: 40000, DstPort: 80, Proto: flow.ProtoTCP, Flags: 0x1b, Router: 1, Packets: 12, Bytes: 9000},
		{Start: 900_000_000, SrcIP: flow.MustParseIP("10.0.0.2"), DstIP: flow.MustParseIP("198.18.0.1"),
			SrcPort: 40001, DstPort: 53, Proto: flow.ProtoUDP, Packets: 2, Bytes: 256},
		{Start: 900_000_007, SrcIP: flow.MustParseIP("10.0.0.3"), DstIP: flow.MustParseIP("198.18.0.9"),
			SrcPort: 1, DstPort: 1, Proto: flow.ProtoICMP, Packets: 1, Bytes: 64},
	}
}

// TestTraceRoundTrip pins both encoders against the reader: encode →
// parse must reproduce the records (modulo the forced background
// annotation) in both formats.
func TestTraceRoundTrip(t *testing.T) {
	recs := traceRecords()
	for _, tc := range []struct {
		format string
		data   []byte
	}{
		{"binary", EncodeTraceBinary(recs)},
		{"csv", EncodeTraceCSV(recs)},
	} {
		tr, err := ReadTrace(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: ReadTrace: %v", tc.format, err)
		}
		if len(tr.Records) != len(recs) {
			t.Fatalf("%s: %d records, want %d", tc.format, len(tr.Records), len(recs))
		}
		for i, want := range recs {
			got := tr.Records[i]
			want.Anno = flow.AnnoBackground
			if got != want {
				t.Errorf("%s: record %d = %+v, want %+v", tc.format, i, got, want)
			}
		}
		span := tr.Span()
		if span.Start != 900_000_000 || span.End != 900_000_008 {
			t.Errorf("%s: span = %v", tc.format, span)
		}
	}
}

// TestTraceReaderErrors drives the malformed-input contract: every
// corruption errors descriptively, never panics.
func TestTraceReaderErrors(t *testing.T) {
	recs := traceRecords()
	bin := EncodeTraceBinary(recs)
	nonMonotonic := traceRecords()
	nonMonotonic[2].Start = 899_999_999
	cases := []struct {
		name string
		data []byte
		want string // error substring; empty = any error
	}{
		{"empty input", nil, ""},
		{"truncated binary header", bin[:6], "truncated header"},
		{"binary header only", bin[:traceHeaderSize], "no records"},
		{"truncated binary record", bin[:len(bin)-7], "truncated"},
		{"bad binary version", append([]byte("NFTR\x09\x00\x00\x00"), bin[traceHeaderSize:]...), "version"},
		{"binary non-monotonic", EncodeTraceBinary(nonMonotonic), "non-monotonic"},
		{"binary zero timestamp", EncodeTraceBinary([]flow.Record{{SrcIP: 1, DstIP: 2, Proto: flow.ProtoTCP, Packets: 1, Bytes: 64}}), "zero timestamp"},
		{"binary zero packets", EncodeTraceBinary([]flow.Record{{Start: 1000, SrcIP: 1, DstIP: 2, Proto: flow.ProtoTCP}}), "record 0"},
		{"csv header only", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n"), "no records"},
		{"csv missing column", []byte("ts,sa,da,sp,dp,pr,ipkt\n1000,1.2.3.4,5.6.7.8,1,2,6,3\n"), "missing \"ibyt\""},
		{"csv bad timestamp", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\nnever,1.2.3.4,5.6.7.8,1,2,6,3,300\n"), "timestamp"},
		{"csv zero timestamp", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n0,1.2.3.4,5.6.7.8,1,2,6,3,300\n"), "out of range"},
		{"csv non-monotonic", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n2000,1.2.3.4,5.6.7.8,1,2,6,3,300\n1999,1.2.3.4,5.6.7.8,1,2,6,3,300\n"), "non-monotonic"},
		{"csv bad ip", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n1000,nope,5.6.7.8,1,2,6,3,300\n"), "srcip"},
		{"csv bad port", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n1000,1.2.3.4,5.6.7.8,99999,2,6,3,300\n"), "srcport"},
		{"csv bytes below packets", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n1000,1.2.3.4,5.6.7.8,1,2,6,300,3\n"), ""},
		{"csv ragged row", []byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n1000,1.2.3.4\n"), ""},
		{"garbage", []byte("\x00\x01\x02\x03garbage"), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n"))); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("header-only CSV: got %v, want ErrEmptyTrace", err)
	}
}

// TestTraceReplayRebasesClock pins the replay path: a trace anchored in
// 1998 generates a scenario anchored at the catalog clock, record counts
// survive exactly, overflow records are dropped and counted, and
// injected anomalies ride on top.
func TestTraceReplayRebasesClock(t *testing.T) {
	recs := SynthTraceRecords(stats.NewRNG(42), 6, 300, 120)
	if len(recs) == 0 {
		t.Fatal("SynthTraceRecords produced nothing")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("synth trace not sorted at %d", i)
		}
	}

	def, ok := Lookup("portscan")
	if !ok {
		t.Fatal("portscan not in catalog")
	}
	s := def.Scenario(7)
	s.Bins = 4 // shorter than the 6-bin trace: the tail must be dropped
	s.Placements = def.Placements(7, 2)
	s.Trace = EncodeTraceCSV(recs)

	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := s.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	if truth.TraceDropped == 0 {
		t.Error("no trace records dropped despite trace outliving the span")
	}
	if truth.BackgroundFlows+truth.TraceDropped != uint64(len(recs)) {
		t.Errorf("stored %d + dropped %d != trace %d records",
			truth.BackgroundFlows, truth.TraceDropped, len(recs))
	}
	// Every stored background record must sit inside the rebased span.
	n := 0
	anomalous := 0
	for r, err := range store.Iter(t.Context(), truth.Span, nil) {
		if err != nil {
			t.Fatal(err)
		}
		if !truth.Span.Contains(r.Start) {
			t.Fatalf("record at %d outside span %v", r.Start, truth.Span)
		}
		if r.IsAnomalous() {
			anomalous++
		}
		n++
	}
	if uint64(n) < truth.BackgroundFlows {
		t.Fatalf("store holds %d records, background truth says %d", n, truth.BackgroundFlows)
	}
	if anomalous == 0 {
		t.Error("no injected anomaly records on top of the replayed trace")
	}
}

// TestTraceCatalogDeterminism pins the replayed-trace catalog entries:
// same def + seed → byte-identical trace bytes, and generation succeeds
// in both formats.
func TestTraceCatalogDeterminism(t *testing.T) {
	for _, name := range []string{"trace-ddos", "trace-portscan"} {
		def, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not in catalog", name)
		}
		if def.Trace == nil {
			t.Fatalf("%s has no trace hook", name)
		}
		a := def.Scenario(5)
		b := def.Scenario(5)
		if !bytes.Equal(a.Trace, b.Trace) {
			t.Fatalf("%s: trace bytes differ between same-seed instantiations", name)
		}
		c := def.Scenario(6)
		if bytes.Equal(a.Trace, c.Trace) {
			t.Fatalf("%s: trace bytes identical across different seeds", name)
		}
		store, err := nfstore.Create(t.TempDir(), 300)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := a.Generate(store)
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		if truth.BackgroundFlows == 0 {
			t.Fatalf("%s: no background stored from replayed trace", name)
		}
		if len(truth.Entries) == 0 || truth.Entries[0].StoredFlows == 0 {
			t.Fatalf("%s: no anomaly records injected on top of the trace", name)
		}
	}
}

// FuzzTraceReader drives the trace parser with corrupted dumps: whatever
// the bytes, it must either error cleanly or return records that honor
// the whole-trace invariants (nonzero monotone clock, per-record
// validity) — never panic.
func FuzzTraceReader(f *testing.F) {
	recs := traceRecords()
	f.Add(EncodeTraceBinary(recs))
	f.Add(EncodeTraceCSV(recs))
	f.Add(EncodeTraceBinary(SynthTraceRecords(stats.NewRNG(1), 2, 300, 40)))
	f.Add(EncodeTraceCSV(SynthTraceRecords(stats.NewRNG(2), 2, 300, 40)))
	f.Add([]byte{})
	f.Add([]byte("NFTR"))
	f.Add([]byte("NFTR\x01\x00\x00\x00"))
	f.Add(EncodeTraceBinary(recs)[:traceHeaderSize+traceRecordSize-3]) // truncated record
	f.Add([]byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n"))
	f.Add([]byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n1000,1.2.3.4,5.6.7.8,1,2,6,3,300\n"))
	f.Add([]byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n2000,1.2.3.4,5.6.7.8,1,2,6,3,300\n1999,1.2.3.4,5.6.7.8,1,2,6,3,300\n"))
	f.Add([]byte("ts,sa,da,sp,dp,pr,ipkt,ibyt\n0,1.2.3.4,5.6.7.8,1,2,6,3,300\n"))
	f.Add([]byte("first,duration,srcaddr,dstaddr,srcport,dstport,prot,packets,bytes\n2011-03-13 06:30:00,0.5,1.2.3.4,5.6.7.8,1,2,17,3,300\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(tr.Records) == 0 {
			t.Fatal("nil error but empty trace (ErrEmptyTrace contract)")
		}
		for i := range tr.Records {
			r := &tr.Records[i]
			if r.Start == 0 {
				t.Fatalf("record %d has zero timestamp", i)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("record %d invalid: %v", i, err)
			}
			if r.Anno != flow.AnnoBackground {
				t.Fatalf("record %d not annotated background", i)
			}
			if i > 0 && r.Start < tr.Records[i-1].Start {
				t.Fatalf("non-monotonic records %d/%d survived parsing", i-1, i)
			}
		}
	})
}
