package gen

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/stats"
)

// This file holds the extended scenario-catalog injectors beyond the
// anomaly classes of the paper's own evaluation: reflection/amplification
// DDoS, ICMP floods, coordinated botnet scans, link outages (the only
// subtractive anomaly — see BackgroundSuppressor), routing shifts and
// spam campaigns. docs/scenarios.md catalogs the traffic shape and the
// expected Table-1-style itemset of each.

// AmplificationFlood models a DNS/NTP reflection-amplification DDoS: many
// reflector hosts answer spoofed queries with large UDP responses from
// the service port (53 or 123) toward the victim. The mineable signature
// is the victim address plus the constant *source* port — the reflected
// service — with destination ports scattered over the ephemeral range the
// spoofed queries used.
type AmplificationFlood struct {
	Victim flow.IP
	// Service is the reflected UDP service port: 53 (DNS) or 123 (NTP).
	Service uint16
	// Reflectors is the number of distinct reflector addresses, drawn
	// from ReflectorNet.
	Reflectors   int
	ReflectorNet flow.Prefix
	// FlowsPerReflector is the response-flow count per reflector.
	FlowsPerReflector int
	// PacketsPerFlow sizes each response flow (amplified payloads).
	PacketsPerFlow uint64
	Router         uint16
}

// Kind implements Anomaly.
func (a AmplificationFlood) Kind() detector.Kind { return detector.KindAmplification }

// Describe implements Anomaly.
func (a AmplificationFlood) Describe() string {
	svc := "dns"
	if a.Service == 123 {
		svc = "ntp"
	}
	return fmt.Sprintf("%s amplification -> %s", svc, a.Victim)
}

// Signature implements Anomaly: victim plus the reflected service port on
// the source side.
func (a AmplificationFlood) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstIP, Value: uint32(a.Victim)},
		{Feature: flow.FeatSrcPort, Value: uint32(a.Service)},
		{Feature: flow.FeatProto, Value: uint32(flow.ProtoUDP)},
	}
}

// Emit implements Anomaly.
func (a AmplificationFlood) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	reflectors := a.Reflectors
	if reflectors <= 0 {
		reflectors = 500
	}
	per := a.FlowsPerReflector
	if per <= 0 {
		per = 4
	}
	pkts := a.PacketsPerFlow
	if pkts == 0 {
		pkts = 200
	}
	for s := 0; s < reflectors; s++ {
		src := randIPIn(rng, a.ReflectorNet)
		for i := 0; i < per; i++ {
			r := flow.Record{
				Start: startIn(rng, iv),
				SrcIP: src, DstIP: a.Victim,
				SrcPort: a.Service, DstPort: uint16(1024 + rng.Intn(64511)),
				Proto:  flow.ProtoUDP,
				Router: a.Router, Anno: anno,
				// Amplified responses: large packets (~1.4 KB average).
				Packets: pkts, Bytes: pkts * uint64(1000+rng.Intn(460)),
			}
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// ICMPFlood models a (distributed) ICMP echo flood: many sources pinging
// one victim at high packet rates. Ports are zero for ICMP, so the
// mineable signature is the victim plus the protocol itself.
type ICMPFlood struct {
	Victim flow.IP
	// Sources is the number of flooding source addresses from SourceNet.
	Sources   int
	SourceNet flow.Prefix
	// FlowsPerSource / PacketsPerFlow size the flood.
	FlowsPerSource int
	PacketsPerFlow uint64
	Router         uint16
}

// Kind implements Anomaly.
func (a ICMPFlood) Kind() detector.Kind { return detector.KindICMPFlood }

// Describe implements Anomaly.
func (a ICMPFlood) Describe() string { return "icmp flood -> " + a.Victim.String() }

// Signature implements Anomaly.
func (a ICMPFlood) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstIP, Value: uint32(a.Victim)},
		{Feature: flow.FeatProto, Value: uint32(flow.ProtoICMP)},
	}
}

// Emit implements Anomaly.
func (a ICMPFlood) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	sources := a.Sources
	if sources <= 0 {
		sources = 200
	}
	per := a.FlowsPerSource
	if per <= 0 {
		per = 5
	}
	pkts := a.PacketsPerFlow
	if pkts == 0 {
		pkts = 500
	}
	for s := 0; s < sources; s++ {
		src := randIPIn(rng, a.SourceNet)
		for i := 0; i < per; i++ {
			r := flow.Record{
				Start: startIn(rng, iv),
				SrcIP: src, DstIP: a.Victim,
				Proto:  flow.ProtoICMP,
				Router: a.Router, Anno: anno,
				Packets: pkts, Bytes: pkts * 64,
			}
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// BotnetScan models a coordinated multi-source scan: a botnet sweeping a
// target prefix for one vulnerable service, each bot covering a slice of
// the address space. No single source dominates — the mineable signature
// is the shared destination port, not a scanner address.
type BotnetScan struct {
	// Bots is the number of scanning sources, drawn from BotNet.
	Bots   int
	BotNet flow.Prefix
	// Prefix is the swept target network; HostsPerBot the per-bot probe
	// count.
	Prefix      flow.Prefix
	HostsPerBot int
	DstPort     uint16
	Router      uint16
}

// Kind implements Anomaly.
func (a BotnetScan) Kind() detector.Kind { return detector.KindBotnetScan }

// Describe implements Anomaly.
func (a BotnetScan) Describe() string {
	return fmt.Sprintf("botnet scan (%d bots) -> %s port %d", a.Bots, a.Prefix, a.DstPort)
}

// Signature implements Anomaly: the swept service port (the bots are many
// and individually below any support threshold).
func (a BotnetScan) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstPort, Value: uint32(a.DstPort)},
		{Feature: flow.FeatProto, Value: uint32(flow.ProtoTCP)},
	}
}

// Emit implements Anomaly.
func (a BotnetScan) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	bots := a.Bots
	if bots <= 0 {
		bots = 100
	}
	per := a.HostsPerBot
	if per <= 0 {
		per = 50
	}
	for b := 0; b < bots; b++ {
		src := randIPIn(rng, a.BotNet)
		for i := 0; i < per; i++ {
			dst := randIPIn(rng, a.Prefix)
			r := flow.Record{
				Start: startIn(rng, iv),
				SrcIP: src, DstIP: dst,
				SrcPort: uint16(1024 + rng.Intn(64511)), DstPort: a.DstPort,
				Proto: flow.ProtoTCP, Flags: flow.TCPSyn,
				Router: a.Router, Anno: anno,
				Packets: 1, Bytes: 40,
			}
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// LinkOutage models a dead link or blackholed service: background traffic
// toward the affected destination prefix disappears for the bin
// (BackgroundSuppressor), while clients hammer the primary service with
// failed SYN retries. The additive half (the retry storm) is what the
// flow archive — and therefore the miner — can see; the subtractive half
// is what volume detectors alarm on.
type LinkOutage struct {
	// Prefix is the blackholed destination network.
	Prefix flow.Prefix
	// Service is the primary service host inside Prefix that clients
	// retry against, on Port.
	Service flow.IP
	Port    uint16
	// Clients is the number of retrying client addresses; Retries the
	// SYN attempts each makes per bin.
	Clients int
	Retries int
	Router  uint16
}

// Kind implements Anomaly.
func (a LinkOutage) Kind() detector.Kind { return detector.KindOutage }

// Describe implements Anomaly.
func (a LinkOutage) Describe() string {
	return fmt.Sprintf("link outage %s (retry storm -> %s:%d)", a.Prefix, a.Service, a.Port)
}

// Signature implements Anomaly: the unreachable service endpoint the
// retries converge on.
func (a LinkOutage) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstIP, Value: uint32(a.Service)},
		{Feature: flow.FeatDstPort, Value: uint32(a.Port)},
		{Feature: flow.FeatProto, Value: uint32(flow.ProtoTCP)},
	}
}

// SuppressBackground implements BackgroundSuppressor: during the outage
// bin no background flow toward the blackholed prefix reaches the
// archive.
func (a LinkOutage) SuppressBackground(r *flow.Record) bool {
	return a.Prefix.Contains(r.DstIP)
}

// Emit implements Anomaly: the retry storm. SYN-only single-packet flows,
// several per client — failed handshakes have no response flows.
func (a LinkOutage) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	clients := a.Clients
	if clients <= 0 {
		clients = 400
	}
	retries := a.Retries
	if retries <= 0 {
		retries = 6
	}
	for c := 0; c < clients; c++ {
		src := flow.IPFromOctets(10, byte(c%4), byte(c>>8), byte(c))
		for i := 0; i < retries; i++ {
			r := flow.Record{
				Start: startIn(rng, iv),
				SrcIP: src, DstIP: a.Service,
				SrcPort: uint16(1024 + rng.Intn(64511)), DstPort: a.Port,
				Proto: flow.ProtoTCP, Flags: flow.TCPSyn,
				Router: a.Router, Anno: anno,
				Packets: uint64(1 + rng.Intn(2)),
			}
			r.Bytes = r.Packets * 40
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrefixMigration models a routing shift: a popular service's prefix is
// re-announced and its traffic abruptly enters through a different PoP,
// with the established client population re-connecting at once. The
// volume spike plus ingress change is what detectors see; the mineable
// signature is the migrated service endpoint.
type PrefixMigration struct {
	// Service is the migrated service host and port.
	Service flow.IP
	Port    uint16
	// Clients is the size of the re-connecting client population;
	// FlowsPerClient the re-established sessions each.
	Clients        int
	FlowsPerClient int
	// OldRouter/NewRouter are the ingress PoPs before/after the shift;
	// emitted flows carry NewRouter.
	OldRouter, NewRouter uint16
}

// Kind implements Anomaly.
func (a PrefixMigration) Kind() detector.Kind { return detector.KindRoutingShift }

// Describe implements Anomaly.
func (a PrefixMigration) Describe() string {
	return fmt.Sprintf("prefix migration %s:%d PoP %d -> %d", a.Service, a.Port, a.OldRouter, a.NewRouter)
}

// Signature implements Anomaly.
func (a PrefixMigration) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstIP, Value: uint32(a.Service)},
		{Feature: flow.FeatDstPort, Value: uint32(a.Port)},
		{Feature: flow.FeatProto, Value: uint32(flow.ProtoTCP)},
	}
}

// Emit implements Anomaly: the synchronized re-connection surge through
// the new ingress. Sessions are short full handshakes (SYN|ACK|PSH|FIN)
// — unlike a SYN flood — but land in one bin instead of spreading out.
func (a PrefixMigration) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	clients := a.Clients
	if clients <= 0 {
		clients = 800
	}
	per := a.FlowsPerClient
	if per <= 0 {
		per = 3
	}
	for c := 0; c < clients; c++ {
		src := flow.IPFromOctets(172, 20, byte(c>>8), byte(c))
		for i := 0; i < per; i++ {
			pkts := uint64(4 + rng.Intn(12))
			r := flow.Record{
				Start: startIn(rng, iv), Dur: uint32(rng.Exp(2000)),
				SrcIP: src, DstIP: a.Service,
				SrcPort: uint16(1024 + rng.Intn(64511)), DstPort: a.Port,
				Proto: flow.ProtoTCP, Flags: flow.TCPSyn | flow.TCPAck | flow.TCPPsh | flow.TCPFin,
				Router: a.NewRouter, Anno: anno,
				Packets: pkts, Bytes: pkts * uint64(100+rng.Intn(500)),
			}
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// SpamCampaign models a distributed spam run: a botnet delivering mail to
// many MX hosts at once. Sources and destinations are both spread out, so
// the only stable signature is the SMTP port itself.
type SpamCampaign struct {
	// Bots is the number of sending sources from BotNet; MXHosts the
	// number of distinct mail servers targeted (drawn from MXNet).
	Bots    int
	BotNet  flow.Prefix
	MXHosts int
	MXNet   flow.Prefix
	// FlowsPerBot is the delivery-attempt count per bot.
	FlowsPerBot int
	Router      uint16
}

// Kind implements Anomaly.
func (a SpamCampaign) Kind() detector.Kind { return detector.KindSpam }

// Describe implements Anomaly.
func (a SpamCampaign) Describe() string {
	return fmt.Sprintf("spam campaign (%d bots -> %d MXes)", a.Bots, a.MXHosts)
}

// Signature implements Anomaly.
func (a SpamCampaign) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstPort, Value: 25},
		{Feature: flow.FeatProto, Value: uint32(flow.ProtoTCP)},
	}
}

// Emit implements Anomaly.
func (a SpamCampaign) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	bots := a.Bots
	if bots <= 0 {
		bots = 300
	}
	mxHosts := a.MXHosts
	if mxHosts <= 0 {
		mxHosts = 50
	}
	per := a.FlowsPerBot
	if per <= 0 {
		per = 8
	}
	for b := 0; b < bots; b++ {
		src := randIPIn(rng, a.BotNet)
		for i := 0; i < per; i++ {
			mx := flow.IP(uint32(a.MXNet.Addr) + uint32(rng.Intn(mxHosts)) + 1)
			pkts := uint64(6 + rng.Intn(20))
			r := flow.Record{
				Start: startIn(rng, iv), Dur: uint32(rng.Exp(4000)),
				SrcIP: src, DstIP: mx,
				SrcPort: uint16(1024 + rng.Intn(64511)), DstPort: 25,
				Proto: flow.ProtoTCP, Flags: flow.TCPSyn | flow.TCPAck | flow.TCPPsh | flow.TCPFin,
				Router: a.Router, Anno: anno,
				Packets: pkts, Bytes: pkts * uint64(200+rng.Intn(800)),
			}
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}
