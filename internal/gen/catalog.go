package gen

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/flow"
	"repro/internal/stats"
)

// Def is one entry of the scenario catalog: a named, seeded, composable
// trace specification. A Def is declarative — geometry, background model
// and a placement builder — and Scenario(seed) turns it into a concrete
// generator run. The same Def and seed always produce the identical
// trace (the determinism contract of DESIGN.md §7).
type Def struct {
	// Name is the catalog key ("portscan", "dns-amplification", ...).
	Name string
	// Summary is the one-line operator description used by docs and CLI
	// listings.
	Summary string
	// ExpectFail marks scenarios whose extraction is expected to produce
	// no meaningful itemsets (stealthy anomalies, quiet traces) — the
	// paper's 6% failure class.
	ExpectFail bool
	// Bins and AnomalyBin define the geometry; zero values inherit 12
	// bins with the anomaly placed at bin 6 — enough baseline history
	// for every registered detector (the PCA subspace method needs at
	// least 8 bins).
	Bins       int
	AnomalyBin int
	// Background overrides the catalog default background (nil keeps
	// it: 3 PoPs, 300 flows/bin, suite-sized pools).
	Background *Background
	// Place builds the anomaly set for one run. Anomalies are placed in
	// AnomalyBin, staggered by BinOffsets; nil means a quiet trace. The
	// rng is forked from the run seed, keeping placements deterministic
	// per (Def, seed).
	Place func(rng *stats.RNG) []Anomaly
	// BinOffsets staggers the placed anomalies relative to AnomalyBin:
	// anomaly i lands in AnomalyBin+BinOffsets[i] (missing entries = 0,
	// i.e. the composition-in-one-bin default). A composite cascade —
	// recon one bin before the attack — is offsets {0, 1}.
	BinOffsets []int
	// Composite marks the placed anomalies as phases of one event: the
	// incident layer should correlate them into a single incident, and
	// incident-mode evaluation scores their truth entries jointly.
	Composite bool
	// Trace, when set, replaces the synthetic background with a replayed
	// flow trace: the hook returns raw trace bytes in a ReadTrace format
	// (NFTR binary or CSV), deterministic per rng, fed into
	// Scenario.Trace. Anomalies still inject on top of the replayed
	// traffic, so the replayed-trace scenarios exercise the full trace
	// reader inside the eval matrix.
	Trace func(rng *stats.RNG) []byte
}

// catalogStart is the fixed trace start of catalog scenarios, aligned to
// the 300 s measurement bin.
const catalogStart = 1_300_000_200

// Scenario instantiates the Def for a seed.
func (d Def) Scenario(seed uint64) *Scenario {
	bins := d.Bins
	if bins <= 0 {
		bins = 12
	}
	bin := d.AnomalyBin
	if bin <= 0 || bin >= bins {
		bin = bins / 2
	}
	bg := DefaultBackground()
	bg.NumPoPs = 3
	bg.FlowsPerBin = 300
	if d.Background != nil {
		bg = *d.Background
	}
	s := &Scenario{
		Background: bg,
		Bins:       bins,
		StartTime:  catalogStart,
		Seed:       seed,
		Placements: d.Placements(seed, bin),
		Composite:  d.Composite,
	}
	if d.Trace != nil {
		s.Trace = d.Trace(stats.NewRNG(seed).Fork(0x7ace))
	}
	return s
}

// Placements builds the Def's anomaly placements for a seed, placed in
// the given bin — the seam for embedding catalog anomalies in custom
// scenario geometry (cmd/flowgen).
func (d Def) Placements(seed uint64, bin int) []Placement {
	if d.Place == nil {
		return nil
	}
	var placements []Placement
	for i, a := range d.Place(stats.NewRNG(seed).Fork(0xca7a)) {
		offset := 0
		if i < len(d.BinOffsets) {
			offset = d.BinOffsets[i]
		}
		placements = append(placements, Placement{Anomaly: a, Bin: bin + offset})
	}
	return placements
}

var (
	catalogMu sync.RWMutex
	catalog   = make(map[string]Def)
)

// Register adds a scenario definition to the catalog. Registering an
// empty name or a duplicate is an error.
func Register(d Def) error {
	if d.Name == "" {
		return fmt.Errorf("gen: scenario definition needs a name")
	}
	catalogMu.Lock()
	defer catalogMu.Unlock()
	if _, dup := catalog[d.Name]; dup {
		return fmt.Errorf("gen: scenario %q already registered", d.Name)
	}
	catalog[d.Name] = d
	return nil
}

// mustRegister registers the built-in catalog; a failure is a programming
// error.
func mustRegister(d Def) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Lookup returns the named catalog entry.
func Lookup(name string) (Def, bool) {
	catalogMu.RLock()
	defer catalogMu.RUnlock()
	d, ok := catalog[name]
	return d, ok
}

// Names lists the catalog in sorted order.
func Names() []string {
	catalogMu.RLock()
	defer catalogMu.RUnlock()
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Catalog returns all entries, name-sorted.
func Catalog() []Def {
	names := Names()
	defs := make([]Def, 0, len(names))
	catalogMu.RLock()
	defer catalogMu.RUnlock()
	for _, n := range names {
		defs = append(defs, catalog[n])
	}
	return defs
}

// Built-in catalog addresses: victims/services in the 198.19.0.0/16
// benchmark space, scanners in 10.200.0.0/16, botnets and client pools in
// 172.16.0.0/12, reflector fleets in 100.64.0.0/10 (CGN space).
var (
	catVictim    = flow.MustParseIP("198.19.7.7")
	catService   = flow.MustParseIP("198.19.40.10")
	catScanner   = flow.MustParseIP("10.200.3.3")
	catBotNet    = flow.MustParsePrefix("172.16.0.0/12")
	catReflector = flow.MustParsePrefix("100.64.0.0/10")
	catTarget    = flow.MustParsePrefix("198.19.64.0/18")
	catMXNet     = flow.MustParsePrefix("198.19.32.0/24")
	catOutage    = flow.MustParsePrefix("198.19.40.0/24")
)

func init() {
	mustRegister(Def{
		Name:       "quiet",
		Summary:    "background traffic only — the detector-false-positive baseline",
		ExpectFail: true,
	})
	mustRegister(Def{
		Name:    "portscan",
		Summary: "one scanner sweeping a victim's ports from a fixed source port (the paper's Table 1 anomaly)",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{PortScan{
				Scanner: catScanner, Victim: catVictim, SrcPort: 55548,
				Ports: 8000 + rng.Intn(4000), FlowsPerPort: 3, Router: 1,
			}}
		},
	})
	mustRegister(Def{
		Name:    "netscan",
		Summary: "one scanner probing a /18 for a single vulnerable port",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{NetworkScan{
				Scanner: catScanner, Prefix: catTarget,
				Hosts: 8000 + rng.Intn(4000), DstPort: 445, Router: 1,
			}}
		},
	})
	mustRegister(Def{
		Name:    "ddos-syn",
		Summary: "distributed TCP SYN flood: thousands of sources against one web service",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{SYNFlood{
				Victim: catVictim, DstPort: 80, Sources: 4000 + rng.Intn(2000),
				FlowsPerSource: 4, SourceNet: catBotNet, Router: 2,
			}}
		},
	})
	mustRegister(Def{
		Name:    "dos-syn",
		Summary: "single-source TCP SYN flood",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{SYNFlood{
				Victim: catVictim, DstPort: 80, Sources: 1,
				FlowsPerSource: 9000 + rng.Intn(3000), SourceNet: catBotNet, Router: 2,
			}}
		},
	})
	mustRegister(Def{
		Name:    "udpflood",
		Summary: "point-to-point UDP flood: a handful of flows carrying millions of packets (needs packet support)",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{UDPFlood{
				Src: catScanner, Dst: catVictim, DstPort: 9999,
				Flows: 3 + rng.Intn(5), PacketsPerFlow: uint64(1_500_000 + rng.Intn(2_000_000)),
				Router: 1,
			}}
		},
	})
	mustRegister(Def{
		Name:    "flashcrowd",
		Summary: "legitimate flash event: thousands of real clients rushing one service",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{FlashCrowd{
				Server: catService, Port: 80, Clients: 3000 + rng.Intn(1000),
				FlowsPerClient: 4, Router: 0,
			}}
		},
	})
	mustRegister(Def{
		Name:       "stealthy",
		Summary:    "low-rate randomized scan below the miner's reach (the paper's 6% failure class)",
		ExpectFail: true,
		Place: func(rng *stats.RNG) []Anomaly {
			// The victim is a popular background server and the probe
			// count sits below the miner's absolute support floor, so
			// the scan drowns in legitimate traffic: itemsets covering
			// it are impure, and no pure sub-itemset is frequent enough
			// to report.
			return []Anomaly{Stealthy{
				Scanner: catScanner, Victim: flow.MustParseIP("198.18.0.2"),
				Flows: 6 + rng.Intn(3), Router: 0,
			}}
		},
	})
	mustRegister(Def{
		Name:    "dns-amplification",
		Summary: "DNS reflection-amplification DDoS: many reflectors answering from source port 53",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{AmplificationFlood{
				Victim: catVictim, Service: 53,
				Reflectors: 1200 + rng.Intn(600), ReflectorNet: catReflector,
				FlowsPerReflector: 3, PacketsPerFlow: uint64(150 + rng.Intn(150)), Router: 1,
			}}
		},
	})
	mustRegister(Def{
		Name:    "ntp-amplification",
		Summary: "NTP monlist amplification DDoS: reflectors answering from source port 123",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{AmplificationFlood{
				Victim: catVictim, Service: 123,
				Reflectors: 900 + rng.Intn(400), ReflectorNet: catReflector,
				FlowsPerReflector: 4, PacketsPerFlow: uint64(300 + rng.Intn(300)), Router: 2,
			}}
		},
	})
	mustRegister(Def{
		Name:    "icmp-flood",
		Summary: "distributed ICMP echo flood against one victim",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{ICMPFlood{
				Victim: catVictim, Sources: 800 + rng.Intn(400), SourceNet: catBotNet,
				FlowsPerSource: 5, PacketsPerFlow: uint64(400 + rng.Intn(400)), Router: 0,
			}}
		},
	})
	mustRegister(Def{
		Name:    "botnet-scan",
		Summary: "coordinated multi-source scan: a botnet sweeping a /18 for one service",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{BotnetScan{
				Bots: 300 + rng.Intn(100), BotNet: catBotNet,
				Prefix: catTarget, HostsPerBot: 40 + rng.Intn(20), DstPort: 5060, Router: 1,
			}}
		},
	})
	mustRegister(Def{
		Name:    "link-outage",
		Summary: "blackholed prefix: background traffic to it vanishes while clients retry the primary service",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{LinkOutage{
				Prefix: catOutage, Service: catService, Port: 443,
				Clients: 1500 + rng.Intn(500), Retries: 6, Router: 0,
			}}
		},
	})
	mustRegister(Def{
		Name:    "prefix-migration",
		Summary: "routing shift: a popular service re-announced through a new PoP, clients reconnecting at once",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{PrefixMigration{
				Service: catService, Port: 443,
				Clients: 2500 + rng.Intn(800), FlowsPerClient: 3,
				OldRouter: 0, NewRouter: 2,
			}}
		},
	})
	mustRegister(Def{
		Name:    "spam-campaign",
		Summary: "botnet spam run: hundreds of bots delivering to many MX hosts on port 25",
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{SpamCampaign{
				Bots: 700 + rng.Intn(300), BotNet: catBotNet,
				MXHosts: 60, MXNet: catMXNet, FlowsPerBot: 8, Router: 2,
			}}
		},
	})
	mustRegister(Def{
		Name:    "portscan-ddos",
		Summary: "composite cascade: a port scan, then a SYN DDoS on the same victim one bin later (the Table-1 situation)",
		// The scan precedes the flood by one bin — the cascade the
		// incident layer's lead-lag chain must order.
		BinOffsets: []int{0, 1},
		Composite:  true,
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{
				PortScan{
					Scanner: catScanner, Victim: catVictim, SrcPort: 55548,
					Ports: 8000 + rng.Intn(4000), FlowsPerPort: 3, Router: 1,
				},
				SYNFlood{
					Victim: catVictim, DstPort: 80, Sources: 3000 + rng.Intn(1000),
					FlowsPerSource: 4, SourceNet: catBotNet, Router: 2,
				},
			}
		},
	})
	// Replayed-trace scenarios: the background is a heavy-tailed trace
	// dump fed through the trace reader (one per supported format)
	// instead of live synthesis, so the eval matrix exercises the full
	// replay path — parse, clock rebase, injection on top. 12 bins of
	// 300 s at 300 flows/bin/PoP match the synthetic catalog volume.
	mustRegister(Def{
		Name:    "trace-ddos",
		Summary: "replayed CSV flow trace as background with a distributed SYN flood injected on top",
		Trace: func(rng *stats.RNG) []byte {
			return EncodeTraceCSV(SynthTraceRecords(rng, 12, 300, 300))
		},
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{SYNFlood{
				Victim: catVictim, DstPort: 80, Sources: 4000 + rng.Intn(2000),
				FlowsPerSource: 4, SourceNet: catBotNet, Router: 2,
			}}
		},
	})
	mustRegister(Def{
		Name:    "trace-portscan",
		Summary: "replayed nfcapd-style binary flow trace as background with a port scan injected on top",
		Trace: func(rng *stats.RNG) []byte {
			return EncodeTraceBinary(SynthTraceRecords(rng, 12, 300, 300))
		},
		Place: func(rng *stats.RNG) []Anomaly {
			return []Anomaly{PortScan{
				Scanner: catScanner, Victim: catVictim, SrcPort: 55548,
				Ports: 8000 + rng.Intn(4000), FlowsPerPort: 3, Router: 1,
			}}
		},
	})
}
