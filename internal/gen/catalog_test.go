package gen

import (
	"reflect"
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/stats"
)

// TestCatalogComplete pins the catalog surface: every entry has a
// summary, builds a valid scenario, and every placed anomaly carries a
// kind, a description and a non-empty root-cause signature.
func TestCatalogComplete(t *testing.T) {
	names := Names()
	if len(names) < 14 {
		t.Fatalf("catalog has %d entries, want >= 14", len(names))
	}
	for _, name := range names {
		def, ok := Lookup(name)
		if !ok {
			t.Fatalf("Names lists %q but Lookup misses it", name)
		}
		if def.Summary == "" {
			t.Errorf("%s: empty summary", name)
		}
		sc := def.Scenario(1)
		if sc.Bins <= 0 {
			t.Errorf("%s: scenario has no bins", name)
		}
		if name == "quiet" {
			if len(sc.Placements) != 0 {
				t.Errorf("quiet scenario has placements")
			}
			continue
		}
		if len(sc.Placements) == 0 {
			t.Errorf("%s: no placements", name)
		}
		for _, p := range sc.Placements {
			if p.Anomaly.Kind() == detector.KindUnknown {
				t.Errorf("%s: anomaly kind unknown", name)
			}
			if p.Anomaly.Describe() == "" {
				t.Errorf("%s: empty description", name)
			}
			if len(p.Anomaly.Signature()) == 0 {
				t.Errorf("%s: empty signature", name)
			}
			if p.Bin < 0 || p.Bin >= sc.Bins {
				t.Errorf("%s: placement bin %d outside [0,%d)", name, p.Bin, sc.Bins)
			}
		}
	}
}

// TestCatalogNewKinds pins that the catalog covers the six extended
// anomaly classes beyond the paper's own evaluation set.
func TestCatalogNewKinds(t *testing.T) {
	covered := make(map[detector.Kind]bool)
	for _, def := range Catalog() {
		for _, p := range def.Scenario(1).Placements {
			covered[p.Anomaly.Kind()] = true
		}
	}
	for _, kind := range []detector.Kind{
		detector.KindAmplification, detector.KindICMPFlood, detector.KindBotnetScan,
		detector.KindOutage, detector.KindRoutingShift, detector.KindSpam,
	} {
		if !covered[kind] {
			t.Errorf("catalog covers no %q scenario", kind)
		}
	}
}

// TestCatalogDeterminism pins the seeding contract: the same Def and seed
// produce identical scenarios and identical generated truth.
func TestCatalogDeterminism(t *testing.T) {
	for _, name := range []string{"dns-amplification", "link-outage", "portscan-ddos"} {
		def, _ := Lookup(name)
		s1, s2 := def.Scenario(99), def.Scenario(99)
		if !reflect.DeepEqual(s1.Placements, s2.Placements) {
			t.Errorf("%s: placements differ across builds with the same seed", name)
		}
		_, truth1 := generate(t, *s1)
		_, truth2 := generate(t, *s2)
		if !reflect.DeepEqual(truth1, truth2) {
			t.Errorf("%s: generated truth differs across runs with the same seed", name)
		}
		if reflect.DeepEqual(def.Scenario(99).Placements, def.Scenario(100).Placements) {
			t.Errorf("%s: different seeds produced identical placements", name)
		}
	}
}

// TestRegisterValidation pins catalog registration errors.
func TestRegisterValidation(t *testing.T) {
	if err := Register(Def{}); err == nil {
		t.Error("registering a nameless Def must fail")
	}
	if err := Register(Def{Name: "portscan"}); err == nil {
		t.Error("registering a duplicate name must fail")
	}
}

// collect drains an injector's emissions without a store.
func collect(t *testing.T, a Anomaly) []flow.Record {
	t.Helper()
	var out []flow.Record
	iv := flow.Interval{Start: genBase, End: genBase + 300}
	err := a.Emit(stats.NewRNG(7), iv, 1, func(r *flow.Record) error {
		out = append(out, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("%T emitted nothing", a)
	}
	for i, r := range out {
		if r.Anno != 1 {
			t.Fatalf("%T record %d misses the annotation", a, i)
		}
		if !iv.Contains(r.Start) {
			t.Fatalf("%T record %d starts outside the bin", a, i)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("%T record %d invalid: %v", a, i, err)
		}
	}
	return out
}

func TestAmplificationFloodShape(t *testing.T) {
	victim := flow.MustParseIP("198.19.1.1")
	a := AmplificationFlood{
		Victim: victim, Service: 53, Reflectors: 50,
		ReflectorNet:      flow.MustParsePrefix("100.64.0.0/10"),
		FlowsPerReflector: 2, PacketsPerFlow: 100, Router: 1,
	}
	recs := collect(t, a)
	if len(recs) != 100 {
		t.Fatalf("%d flows, want 50 reflectors x 2", len(recs))
	}
	srcs := make(map[flow.IP]bool)
	for _, r := range recs {
		if r.Proto != flow.ProtoUDP || r.SrcPort != 53 || r.DstIP != victim {
			t.Fatalf("unexpected reflection record %+v", r)
		}
		if r.Packets != 100 {
			t.Fatalf("packets %d, want the amplified 100", r.Packets)
		}
		srcs[r.SrcIP] = true
	}
	if len(srcs) < 40 {
		t.Fatalf("only %d distinct reflectors", len(srcs))
	}
}

func TestICMPFloodShape(t *testing.T) {
	victim := flow.MustParseIP("198.19.1.2")
	recs := collect(t, ICMPFlood{
		Victim: victim, Sources: 30, SourceNet: flow.MustParsePrefix("172.16.0.0/12"),
		FlowsPerSource: 3, PacketsPerFlow: 50,
	})
	if len(recs) != 90 {
		t.Fatalf("%d flows, want 30 sources x 3", len(recs))
	}
	for _, r := range recs {
		if r.Proto != flow.ProtoICMP || r.SrcPort != 0 || r.DstPort != 0 || r.DstIP != victim {
			t.Fatalf("unexpected icmp record %+v", r)
		}
	}
}

func TestBotnetScanShape(t *testing.T) {
	target := flow.MustParsePrefix("198.19.64.0/18")
	recs := collect(t, BotnetScan{
		Bots: 20, BotNet: flow.MustParsePrefix("172.16.0.0/12"),
		Prefix: target, HostsPerBot: 10, DstPort: 5060,
	})
	if len(recs) != 200 {
		t.Fatalf("%d flows, want 20 bots x 10", len(recs))
	}
	bots := make(map[flow.IP]bool)
	for _, r := range recs {
		if r.DstPort != 5060 || r.Proto != flow.ProtoTCP || r.Flags != flow.TCPSyn {
			t.Fatalf("unexpected probe %+v", r)
		}
		if !target.Contains(r.DstIP) {
			t.Fatalf("probe outside the swept prefix: %+v", r)
		}
		bots[r.SrcIP] = true
	}
	if len(bots) < 15 {
		t.Fatalf("only %d distinct bots", len(bots))
	}
}

func TestLinkOutageSuppression(t *testing.T) {
	outage := LinkOutage{
		Prefix:  flow.MustParsePrefix("198.18.0.0/24"),
		Service: flow.MustParseIP("198.18.0.10"), Port: 443,
		Clients: 100, Retries: 3,
	}
	s := Scenario{
		Background: Background{NumPoPs: 2, FlowsPerBin: 300, Hosts: 500, Servers: 64},
		Bins:       4, StartTime: genBase, Seed: 5,
		Placements: []Placement{{Anomaly: outage, Bin: 2}},
	}
	store, truth := generate(t, s)
	entry := truth.Entry(1)
	if entry.SuppressedFlows == 0 {
		t.Fatal("outage suppressed no background flows")
	}
	if entry.StoredFlows != 300 {
		t.Fatalf("retry storm stored %d flows, want 100 clients x 3", entry.StoredFlows)
	}
	// The outage bin must hold no background traffic into the blackholed
	// prefix; neighboring bins must.
	filter := nffilter.FromNode(&nffilter.NetMatch{Dir: nffilter.DirDst, Prefix: outage.Prefix})
	count := func(iv flow.Interval) uint64 {
		n := uint64(0)
		err := store.Query(t.Context(), iv, filter, func(r *flow.Record) error {
			if !r.IsAnomalous() {
				n++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count(entry.Interval); n != 0 {
		t.Fatalf("outage bin still holds %d background flows to the dead prefix", n)
	}
	before := flow.Interval{Start: entry.Interval.Start - 300, End: entry.Interval.Start}
	if n := count(before); n == 0 {
		t.Fatal("no background traffic to the prefix before the outage — scenario proves nothing")
	}
}

func TestPrefixMigrationShape(t *testing.T) {
	svc := flow.MustParseIP("198.19.40.10")
	recs := collect(t, PrefixMigration{
		Service: svc, Port: 443, Clients: 50, FlowsPerClient: 2, OldRouter: 0, NewRouter: 2,
	})
	if len(recs) != 100 {
		t.Fatalf("%d flows, want 50 clients x 2", len(recs))
	}
	for _, r := range recs {
		if r.DstIP != svc || r.DstPort != 443 || r.Router != 2 {
			t.Fatalf("reconnect flow not through the new PoP: %+v", r)
		}
		if r.Flags&flow.TCPFin == 0 {
			t.Fatalf("reconnect flow is not a complete session: %+v", r)
		}
	}
}

func TestSpamCampaignShape(t *testing.T) {
	recs := collect(t, SpamCampaign{
		Bots: 40, BotNet: flow.MustParsePrefix("172.16.0.0/12"),
		MXHosts: 10, MXNet: flow.MustParsePrefix("198.19.32.0/24"), FlowsPerBot: 5,
	})
	if len(recs) != 200 {
		t.Fatalf("%d flows, want 40 bots x 5", len(recs))
	}
	mxes := make(map[flow.IP]bool)
	for _, r := range recs {
		if r.DstPort != 25 || r.Proto != flow.ProtoTCP {
			t.Fatalf("unexpected delivery %+v", r)
		}
		mxes[r.DstIP] = true
	}
	if len(mxes) < 5 {
		t.Fatalf("only %d distinct MX hosts", len(mxes))
	}
}
