package gen

import (
	"bytes"
	"fmt"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Placement schedules one anomaly into a scenario bin. The Annotation is
// assigned by Generate (1 + placement index).
type Placement struct {
	Anomaly Anomaly
	// Bin is the zero-based measurement bin index the anomaly occupies.
	Bin int
}

// Scenario is a complete synthetic trace specification.
type Scenario struct {
	Background Background
	// Bins is the number of measurement bins to generate.
	Bins int
	// StartTime is the Unix-seconds start, aligned down to the store's
	// bin width at generation time.
	StartTime uint32
	// Seed drives all randomness.
	Seed uint64
	// SampleRate, when > 1, applies 1-in-N packet sampling to every
	// record before storage (the GEANT condition; SWITCH traces were
	// unsampled, i.e. 1).
	SampleRate uint32
	Placements []Placement
	// Composite marks the placements as phases of one event (see
	// Def.Composite); carried into the Truth for joint scoring.
	Composite bool
	// Trace, when non-empty, replaces the synthetic background with a
	// replayed flow trace in either ReadTrace format (NFTR binary or
	// CSV). The records are rebased under the scenario clock: the first
	// record lands at the aligned StartTime and every later record shifts
	// by the same offset; rebased records falling past the generated span
	// are dropped and counted in Truth.TraceDropped. Sampling, background
	// suppressors and anomaly placements apply exactly as over a
	// synthetic background, so anomalies inject on top of the replayed
	// traffic.
	Trace []byte
}

// TruthEntry records the ground truth of one placed anomaly.
type TruthEntry struct {
	Anno     flow.Annotation
	Kind     detector.Kind
	Describe string
	Interval flow.Interval
	// Signature is the anomaly's expected root-cause itemset (the
	// Table-1-style conjunction an ideal extraction reports).
	Signature []ExpectedItem
	// Injected counts the anomaly's records before sampling; Stored after
	// sampling (what the store and therefore the miner can see).
	InjectedFlows uint64
	InjectedPkts  uint64
	StoredFlows   uint64
	StoredPkts    uint64
	// SuppressedFlows counts background records a BackgroundSuppressor
	// anomaly (link outage, blackout) removed from its bin.
	SuppressedFlows uint64
}

// Truth is the scenario ground truth: one entry per placement, in
// placement order, plus totals.
type Truth struct {
	Entries []TruthEntry
	// Span is the full generated interval.
	Span flow.Interval
	// BackgroundFlows counts stored background records.
	BackgroundFlows uint64
	// TraceDropped counts replayed trace records that fell outside the
	// generated span after rebasing (trace longer than the scenario).
	TraceDropped uint64
	// Composite marks the entries as phases of one event: incident-mode
	// evaluation scores them jointly (one extraction must recover every
	// entry) instead of entry-by-entry.
	Composite bool
}

// Entry returns the truth entry with the given annotation, or nil.
func (t *Truth) Entry(anno flow.Annotation) *TruthEntry {
	i := int(anno) - 1
	if i < 0 || i >= len(t.Entries) {
		return nil
	}
	return &t.Entries[i]
}

// Generate writes the scenario into store and returns the ground truth.
// The store's bin width defines the measurement bin; StartTime is aligned
// down to it.
func (s *Scenario) Generate(store nfstore.Engine) (*Truth, error) {
	if s.Bins <= 0 {
		return nil, fmt.Errorf("gen: scenario needs Bins > 0")
	}
	if err := s.Background.validate(); err != nil {
		return nil, err
	}
	for i, p := range s.Placements {
		if p.Anomaly == nil {
			return nil, fmt.Errorf("gen: placement %d has nil anomaly", i)
		}
		if p.Bin < 0 || p.Bin >= s.Bins {
			return nil, fmt.Errorf("gen: placement %d bin %d outside [0,%d)", i, p.Bin, s.Bins)
		}
	}
	binSec := store.BinSeconds()
	start := s.StartTime - s.StartTime%binSec
	truth := &Truth{
		Span:      flow.Interval{Start: start, End: start + uint32(s.Bins)*binSec},
		Composite: s.Composite,
	}

	rng := stats.NewRNG(s.Seed)
	var sampler *sampling.Sampler
	if s.SampleRate > 1 {
		var err error
		sampler, err = sampling.New(s.SampleRate, rng.Fork(0xface))
		if err != nil {
			return nil, err
		}
	}

	// store-side emit with optional sampling; counters per current sink.
	var storedFlows, storedPkts *uint64
	emit := func(r *flow.Record) error {
		if sampler != nil {
			sampled, ok := sampler.Apply(r)
			if !ok {
				return nil
			}
			r = &sampled
		}
		if storedFlows != nil {
			*storedFlows++
			*storedPkts += r.Packets
		}
		return store.Add(r)
	}

	// Truth entries are created up front so subtractive anomalies
	// (BackgroundSuppressor) can count their drops while the background is
	// generated.
	for i, p := range s.Placements {
		iv := flow.Interval{Start: start + uint32(p.Bin)*binSec, End: start + uint32(p.Bin+1)*binSec}
		truth.Entries = append(truth.Entries, TruthEntry{
			Anno:      flow.Annotation(i + 1),
			Kind:      p.Anomaly.Kind(),
			Describe:  p.Anomaly.Describe(),
			Interval:  iv,
			Signature: p.Anomaly.Signature(),
		})
	}

	// Per-bin suppressors: placements that remove background traffic from
	// their bin (link outages, blackouts).
	type suppressor struct {
		entry *TruthEntry
		s     BackgroundSuppressor
	}
	suppressorsIn := make(map[int][]suppressor)
	for i, p := range s.Placements {
		if bs, ok := p.Anomaly.(BackgroundSuppressor); ok {
			suppressorsIn[p.Bin] = append(suppressorsIn[p.Bin], suppressor{&truth.Entries[i], bs})
		}
	}

	// suppressedEmit routes one background record through the bin's
	// suppressors (if any) before the store-side emit.
	suppressedEmit := func(bin int, r *flow.Record) error {
		for _, sup := range suppressorsIn[bin] {
			if sup.s.SuppressBackground(r) {
				sup.entry.SuppressedFlows++
				return nil
			}
		}
		return emit(r)
	}

	if len(s.Trace) > 0 {
		// Replayed background: rebase the trace under the scenario clock
		// so its first record lands at the aligned start.
		tr, err := ReadTrace(bytes.NewReader(s.Trace))
		if err != nil {
			return nil, err
		}
		offset := int64(start) - int64(tr.Records[0].Start)
		storedFlows, storedPkts = &truth.BackgroundFlows, new(uint64)
		for i := range tr.Records {
			r := tr.Records[i]
			rebased := int64(r.Start) + offset
			if rebased < int64(start) || rebased >= int64(truth.Span.End) {
				truth.TraceDropped++
				continue
			}
			r.Start = uint32(rebased)
			r.Anno = flow.AnnoBackground
			if err := suppressedEmit(int((r.Start-start)/binSec), &r); err != nil {
				return nil, err
			}
		}
	} else {
		bg := newBackgroundGen(s.Background)
		for b := 0; b < s.Bins; b++ {
			iv := flow.Interval{Start: start + uint32(b)*binSec, End: start + uint32(b+1)*binSec}
			binEmit := func(r *flow.Record) error { return suppressedEmit(b, r) }
			for pop := 0; pop < s.Background.NumPoPs; pop++ {
				storedFlows, storedPkts = &truth.BackgroundFlows, new(uint64)
				binRng := rng.Fork(uint64(b)<<16 | uint64(pop))
				if err := bg.emitBin(binRng, iv, pop, b, binEmit); err != nil {
					return nil, err
				}
			}
		}
	}

	for i, p := range s.Placements {
		entry := &truth.Entries[i]
		storedFlows, storedPkts = &entry.StoredFlows, &entry.StoredPkts
		countingEmit := func(r *flow.Record) error {
			entry.InjectedFlows++
			entry.InjectedPkts += r.Packets
			return emit(r)
		}
		anomalyRng := rng.Fork(0xa0000 | uint64(i))
		if err := p.Anomaly.Emit(anomalyRng, entry.Interval, entry.Anno, countingEmit); err != nil {
			return nil, err
		}
	}
	if err := store.Flush(); err != nil {
		return nil, err
	}
	return truth, nil
}
