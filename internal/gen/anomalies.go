package gen

import (
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/stats"
)

// ExpectedItem is one feature=value pair of an anomaly's ground-truth
// root-cause signature: the item an ideal extraction would report for it
// (the Table-1-style conjunction identifying the anomalous traffic).
type ExpectedItem struct {
	Feature flow.Feature
	Value   uint32
}

// String renders the item as "feature=value" the way reports print it.
func (e ExpectedItem) String() string {
	return e.Feature.String() + "=" + e.Feature.FormatValue(e.Value)
}

// Anomaly injects one anomaly's flows into a measurement bin. Injectors
// are pure parameter structs: the same injector placed in two scenarios
// with the same seed produces identical flows.
type Anomaly interface {
	// Kind is the ground-truth anomaly class.
	Kind() detector.Kind
	// Describe returns a short operator-readable parameter summary.
	Describe() string
	// Signature is the expected root-cause itemset: the feature=value
	// conjunction an ideal extraction reports for this anomaly. Suites
	// synthesize detector meta-data from it and score ranked itemsets
	// against it.
	Signature() []ExpectedItem
	// Emit generates the anomaly's flow records across the interval.
	Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error
}

// BackgroundSuppressor is implemented by anomalies that remove traffic
// rather than (or in addition to) adding it — link outages and traffic
// blackouts. While such a placement's bin is being generated, every
// background record for which SuppressBackground returns true is dropped
// before storage; Truth records the drop count.
type BackgroundSuppressor interface {
	SuppressBackground(r *flow.Record) bool
}

// randIPIn draws a uniformly random address inside the prefix. The span
// shift is guarded so /0 and /1 prefixes do not overflow uint32.
func randIPIn(rng *stats.RNG, p flow.Prefix) flow.IP {
	hostBits := 32 - p.Bits
	span := uint32(1) << uint(hostBits)
	if hostBits >= 31 {
		span = 1 << 31
	}
	return flow.IP(uint32(p.Addr) + rng.Uint32()%span)
}

// startIn picks a uniformly random start second inside iv.
func startIn(rng *stats.RNG, iv flow.Interval) uint32 {
	span := int(iv.End - iv.Start)
	if span <= 0 {
		return iv.Start
	}
	return iv.Start + uint32(rng.Intn(span))
}

// PortScan models a horizontal port scan: one scanner probing one target
// host across many destination ports from a fixed source port — the
// anomaly of the paper's Table 1 (srcPort 55548, dstPort *).
type PortScan struct {
	Scanner flow.IP
	Victim  flow.IP
	SrcPort uint16
	// Ports is the number of distinct destination ports probed.
	Ports int
	// FlowsPerPort is how many probe flows hit each port (Table 1 shows
	// ~312K flows for the main scanner: repeated SYN probes per port).
	FlowsPerPort int
	// Router is the ingress PoP.
	Router uint16
}

// Kind implements Anomaly.
func (a PortScan) Kind() detector.Kind { return detector.KindPortScan }

// Describe implements Anomaly.
func (a PortScan) Describe() string {
	return "port scan " + a.Scanner.String() + " -> " + a.Victim.String()
}

// Signature implements Anomaly: the paper's Table-1 row shape for a port
// scan — scanner, victim and the fixed source port, destination port
// wildcarded.
func (a PortScan) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatSrcIP, Value: uint32(a.Scanner)},
		{Feature: flow.FeatDstIP, Value: uint32(a.Victim)},
		{Feature: flow.FeatSrcPort, Value: uint32(a.SrcPort)},
	}
}

// Emit implements Anomaly.
func (a PortScan) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	ports := a.Ports
	if ports <= 0 {
		ports = 1000
	}
	per := a.FlowsPerPort
	if per <= 0 {
		per = 1
	}
	for p := 0; p < ports; p++ {
		dstPort := uint16(1 + p%65535)
		for i := 0; i < per; i++ {
			r := flow.Record{
				Start: startIn(rng, iv), Dur: 0,
				SrcIP: a.Scanner, DstIP: a.Victim,
				SrcPort: a.SrcPort, DstPort: dstPort,
				Proto: flow.ProtoTCP, Flags: flow.TCPSyn,
				Router: a.Router, Anno: anno,
				Packets: 1, Bytes: 40,
			}
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// NetworkScan models a horizontal network scan: one scanner probing one
// destination port across many hosts of a target prefix.
type NetworkScan struct {
	Scanner flow.IP
	// Prefix is the scanned target network; hosts are probed in sequence.
	Prefix flow.Prefix
	// Hosts is the number of target hosts probed.
	Hosts   int
	DstPort uint16
	Router  uint16
}

// Kind implements Anomaly.
func (a NetworkScan) Kind() detector.Kind { return detector.KindNetScan }

// Describe implements Anomaly.
func (a NetworkScan) Describe() string {
	return "network scan " + a.Scanner.String() + " -> " + a.Prefix.String()
}

// Signature implements Anomaly: the scanner and the single probed port.
func (a NetworkScan) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatSrcIP, Value: uint32(a.Scanner)},
		{Feature: flow.FeatDstPort, Value: uint32(a.DstPort)},
	}
}

// Emit implements Anomaly.
func (a NetworkScan) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	hosts := a.Hosts
	if hosts <= 0 {
		hosts = 1000
	}
	for h := 0; h < hosts; h++ {
		dst := flow.IP(uint32(a.Prefix.Addr) + uint32(h+1))
		r := flow.Record{
			Start: startIn(rng, iv),
			SrcIP: a.Scanner, DstIP: dst,
			SrcPort: uint16(1024 + rng.Intn(64511)), DstPort: a.DstPort,
			Proto: flow.ProtoTCP, Flags: flow.TCPSyn,
			Router: a.Router, Anno: anno,
			Packets: 1, Bytes: 40,
		}
		if err := emit(&r); err != nil {
			return err
		}
	}
	return nil
}

// SYNFlood models a (distributed) TCP SYN flood: many sources sending
// small SYN-only flows to one victim service. With Sources == 1 it is a
// plain DoS; the paper's Table 1 shows two concurrent DDoS itemsets
// against port 80.
type SYNFlood struct {
	Victim  flow.IP
	DstPort uint16
	// Sources is the number of (spoofed or bot) source addresses, drawn
	// from SourceNet.
	Sources   int
	SourceNet flow.Prefix
	// FlowsPerSource is the number of flood flows per source.
	FlowsPerSource int
	// SrcPort, when non-zero, fixes the flood's source port: scripted
	// floods often use a constant source port (the paper's Table 1 shows
	// two DDoS itemsets with srcPort 3072 and 1024). Zero draws ephemeral
	// ports.
	SrcPort uint16
	Router  uint16
}

// Kind implements Anomaly.
func (a SYNFlood) Kind() detector.Kind {
	if a.Sources > 1 {
		return detector.KindDDoS
	}
	return detector.KindDoS
}

// Describe implements Anomaly.
func (a SYNFlood) Describe() string {
	return "syn flood -> " + a.Victim.String()
}

// Signature implements Anomaly: the flooded service endpoint (sources are
// many/spoofed and not part of the root cause).
func (a SYNFlood) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstIP, Value: uint32(a.Victim)},
		{Feature: flow.FeatDstPort, Value: uint32(a.DstPort)},
	}
}

// Emit implements Anomaly.
func (a SYNFlood) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	sources := a.Sources
	if sources <= 0 {
		sources = 100
	}
	per := a.FlowsPerSource
	if per <= 0 {
		per = 10
	}
	for s := 0; s < sources; s++ {
		src := randIPIn(rng, a.SourceNet)
		for i := 0; i < per; i++ {
			srcPort := a.SrcPort
			if srcPort == 0 {
				srcPort = uint16(1024 + rng.Intn(64511))
			}
			r := flow.Record{
				Start: startIn(rng, iv),
				SrcIP: src, DstIP: a.Victim,
				SrcPort: srcPort, DstPort: a.DstPort,
				Proto: flow.ProtoTCP, Flags: flow.TCPSyn,
				Router: a.Router, Anno: anno,
				Packets: uint64(1 + rng.Intn(3)),
			}
			r.Bytes = r.Packets * 40
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// UDPFlood models the point-to-point UDP flood the paper highlights as
// frequent in GEANT: very few flows between one source and one target
// carrying an enormous packet count — invisible to flow-count support,
// extractable with packet support.
type UDPFlood struct {
	Src, Dst flow.IP
	DstPort  uint16
	// Flows is the number of exported flow records (few); PacketsPerFlow
	// their packet counts (huge).
	Flows          int
	PacketsPerFlow uint64
	Router         uint16
}

// Kind implements Anomaly.
func (a UDPFlood) Kind() detector.Kind { return detector.KindUDPFlood }

// Describe implements Anomaly.
func (a UDPFlood) Describe() string {
	return "udp flood " + a.Src.String() + " -> " + a.Dst.String()
}

// Signature implements Anomaly: the point-to-point pair.
func (a UDPFlood) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatSrcIP, Value: uint32(a.Src)},
		{Feature: flow.FeatDstIP, Value: uint32(a.Dst)},
	}
}

// Emit implements Anomaly.
func (a UDPFlood) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	flows := a.Flows
	if flows <= 0 {
		flows = 4
	}
	per := a.PacketsPerFlow
	if per == 0 {
		per = 1_000_000
	}
	for i := 0; i < flows; i++ {
		r := flow.Record{
			Start: startIn(rng, iv),
			SrcIP: a.Src, DstIP: a.Dst,
			SrcPort: uint16(10000 + i), DstPort: a.DstPort,
			Proto:  flow.ProtoUDP,
			Router: a.Router, Anno: anno,
			Packets: per, Bytes: per * 60,
		}
		if err := emit(&r); err != nil {
			return err
		}
	}
	return nil
}

// FlashCrowd models a legitimate flash event: many distinct clients
// suddenly fetching one service. Structurally close to a DDoS but with
// complete TCP handshakes and realistic flow sizes; suites use it as a
// detector false-positive generator.
type FlashCrowd struct {
	Server  flow.IP
	Port    uint16
	Clients int
	// FlowsPerClient is the number of fetches per client.
	FlowsPerClient int
	Router         uint16
}

// Kind implements Anomaly.
func (a FlashCrowd) Kind() detector.Kind { return detector.KindFlashEvnt }

// Describe implements Anomaly.
func (a FlashCrowd) Describe() string {
	return "flash crowd -> " + a.Server.String()
}

// Signature implements Anomaly: the rushed service endpoint.
func (a FlashCrowd) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstIP, Value: uint32(a.Server)},
		{Feature: flow.FeatDstPort, Value: uint32(a.Port)},
	}
}

// Emit implements Anomaly.
func (a FlashCrowd) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	clients := a.Clients
	if clients <= 0 {
		clients = 500
	}
	per := a.FlowsPerClient
	if per <= 0 {
		per = 3
	}
	for c := 0; c < clients; c++ {
		src := flow.IPFromOctets(172, 16, byte(c>>8), byte(c))
		for i := 0; i < per; i++ {
			pkts := uint64(5 + rng.Intn(50))
			r := flow.Record{
				Start: startIn(rng, iv), Dur: uint32(rng.Exp(3000)),
				SrcIP: src, DstIP: a.Server,
				SrcPort: uint16(1024 + rng.Intn(64511)), DstPort: a.Port,
				Proto: flow.ProtoTCP, Flags: flow.TCPSyn | flow.TCPAck | flow.TCPPsh | flow.TCPFin,
				Router: a.Router, Anno: anno,
				Packets: pkts, Bytes: pkts * uint64(200+rng.Intn(1200)),
			}
			if err := emit(&r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stealthy models an anomaly below the extraction technique's reach: a
// low-rate scan spreading few probe flows across randomized source ports
// and timing. The paper reports 6% of GEANT alarms where "we were not
// able to extract meaningful flows, which could be due to a stealthy
// anomaly not captured by our extraction technique"; suites include this
// injector to reproduce that failure mode.
type Stealthy struct {
	Scanner flow.IP
	Victim  flow.IP
	// Flows is the total probe count — deliberately tiny.
	Flows  int
	Router uint16
}

// Kind implements Anomaly.
func (a Stealthy) Kind() detector.Kind { return detector.KindPortScan }

// Describe implements Anomaly.
func (a Stealthy) Describe() string {
	return "stealthy scan " + a.Scanner.String() + " -> " + a.Victim.String()
}

// Signature implements Anomaly: only the victim — a stealthy scan leaves
// no mineable fixed port, which is exactly why extraction is expected to
// fail on it.
func (a Stealthy) Signature() []ExpectedItem {
	return []ExpectedItem{
		{Feature: flow.FeatDstIP, Value: uint32(a.Victim)},
	}
}

// Emit implements Anomaly.
func (a Stealthy) Emit(rng *stats.RNG, iv flow.Interval, anno flow.Annotation, emit func(*flow.Record) error) error {
	flows := a.Flows
	if flows <= 0 {
		flows = 20
	}
	for i := 0; i < flows; i++ {
		r := flow.Record{
			Start: startIn(rng, iv),
			SrcIP: a.Scanner, DstIP: a.Victim,
			SrcPort: uint16(1024 + rng.Intn(64511)),
			DstPort: uint16(1 + rng.Intn(65535)),
			Proto:   flow.ProtoTCP, Flags: flow.TCPSyn,
			Router: a.Router, Anno: anno,
			Packets: 1, Bytes: 40,
		}
		if err := emit(&r); err != nil {
			return err
		}
	}
	return nil
}
