package gen

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/stats"
)

// Real-trace replay: a reader for flow dumps in two formats — a
// simplified nfcapd-style binary framing ("NFTR") and nfdump-style CSV —
// mapping trace records into flow.Record so a captured trace can stand
// in for the synthetic background of a scenario (Scenario.Trace). The
// reader is strict: truncated records, bad timestamps, a non-monotonic
// clock or invalid counters are errors, never panics and never silently
// skipped records, because a replayed trace is ground truth for the eval
// matrix and must not degrade quietly.

// Binary trace framing: an 8-byte header (4-byte magic "NFTR", uint16
// little-endian version, uint16 reserved) followed by fixed 40-byte
// little-endian records.
const (
	traceMagic        = "NFTR"
	traceVersion      = 1
	traceHeaderSize   = 8
	traceRecordSize   = 40
	maxTraceRecords   = 1 << 24 // ~16M records; a corrupt length cannot OOM the reader
	csvTimeLayout     = "2006-01-02 15:04:05"
	csvTimeLayoutFrac = "2006-01-02 15:04:05.000"
)

// ErrEmptyTrace is returned for a structurally valid trace holding no
// records: replay rebases the scenario clock onto the first record, so
// an empty trace has no meaning.
var ErrEmptyTrace = errors.New("gen: trace holds no records")

// Trace is a parsed flow trace ready for replay: records ordered by
// non-decreasing start time, each individually valid.
type Trace struct {
	Records []flow.Record
}

// Span is the half-open interval covered by the trace records' start
// times.
func (t *Trace) Span() flow.Interval {
	if len(t.Records) == 0 {
		return flow.Interval{}
	}
	return flow.Interval{
		Start: t.Records[0].Start,
		End:   t.Records[len(t.Records)-1].Start + 1,
	}
}

// ReadTraceFile reads and parses a trace dump from disk.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gen: trace: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// ReadTrace parses a flow dump, sniffing the format from the leading
// bytes: the "NFTR" magic selects the binary format, anything else is
// parsed as CSV with an nfdump-style header row. Every record must carry
// a nonzero timestamp, satisfy flow.Record.Validate, and start no
// earlier than its predecessor (flow dumps are written in capture
// order); any violation is a descriptive error. Replayed records are
// annotated flow.AnnoBackground regardless of input — a trace carries no
// synthetic ground truth.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(traceMagic))
	if err == nil && string(head) == traceMagic {
		return readTraceBinary(br)
	}
	return readTraceCSV(br)
}

// readTraceBinary parses the NFTR framing. Record layout (all
// little-endian): start u32, dur u32, srcIP u32, dstIP u32, srcPort u16,
// dstPort u16, proto u8, flags u8, router u16, packets u64, bytes u64.
func readTraceBinary(r io.Reader) (*Trace, error) {
	var header [traceHeaderSize]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("gen: trace: truncated header: %w", err)
	}
	if version := binary.LittleEndian.Uint16(header[4:6]); version != traceVersion {
		return nil, fmt.Errorf("gen: trace: unsupported binary trace version %d (want %d)", version, traceVersion)
	}
	t := &Trace{}
	var buf [traceRecordSize]byte
	for i := 0; ; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("gen: trace: record %d truncated: %w", i, err)
		}
		if i >= maxTraceRecords {
			return nil, fmt.Errorf("gen: trace: more than %d records", maxTraceRecords)
		}
		rec := flow.Record{
			Start:   binary.LittleEndian.Uint32(buf[0:4]),
			Dur:     binary.LittleEndian.Uint32(buf[4:8]),
			SrcIP:   flow.IP(binary.LittleEndian.Uint32(buf[8:12])),
			DstIP:   flow.IP(binary.LittleEndian.Uint32(buf[12:16])),
			SrcPort: binary.LittleEndian.Uint16(buf[16:18]),
			DstPort: binary.LittleEndian.Uint16(buf[18:20]),
			Proto:   flow.Protocol(buf[20]),
			Flags:   buf[21],
			Router:  binary.LittleEndian.Uint16(buf[22:24]),
			Packets: binary.LittleEndian.Uint64(buf[24:32]),
			Bytes:   binary.LittleEndian.Uint64(buf[32:40]),
		}
		if err := appendTraceRecord(t, i, &rec); err != nil {
			return nil, err
		}
	}
	if len(t.Records) == 0 {
		return nil, ErrEmptyTrace
	}
	return t, nil
}

// csv column roles, resolved from the header row by alias.
const (
	colTS = iota
	colSrcIP
	colDstIP
	colSrcPort
	colDstPort
	colProto
	colFlags
	colDur
	colRouter
	colPackets
	colBytes
	numCols
)

// csvAliases maps nfdump-style header names (lowercased) to column
// roles; unknown columns are ignored.
var csvAliases = map[string]int{
	"ts": colTS, "tstart": colTS, "start": colTS, "first": colTS,
	"sa": colSrcIP, "srcip": colSrcIP, "srcaddr": colSrcIP,
	"da": colDstIP, "dstip": colDstIP, "dstaddr": colDstIP,
	"sp": colSrcPort, "srcport": colSrcPort,
	"dp": colDstPort, "dstport": colDstPort,
	"pr": colProto, "proto": colProto, "prot": colProto,
	"flg": colFlags, "flags": colFlags,
	"td": colDur, "dur": colDur, "duration": colDur,
	"rtr": colRouter, "router": colRouter, "in": colRouter,
	"ipkt": colPackets, "pkt": colPackets, "packets": colPackets,
	"ibyt": colBytes, "byt": colBytes, "bytes": colBytes,
}

// csvRequired are the roles a CSV header must bind (the rest are
// optional and default to zero).
var csvRequired = []struct {
	role int
	name string
}{
	{colTS, "ts"}, {colSrcIP, "sa"}, {colDstIP, "da"},
	{colSrcPort, "sp"}, {colDstPort, "dp"}, {colProto, "pr"},
	{colPackets, "ipkt"}, {colBytes, "ibyt"},
}

// readTraceCSV parses the nfdump-style CSV format: a header row naming
// the columns (see csvAliases), then one record per row.
func readTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		if err == io.EOF {
			return nil, ErrEmptyTrace
		}
		return nil, fmt.Errorf("gen: trace: csv header: %w", err)
	}
	cols := make([]int, numCols)
	for i := range cols {
		cols[i] = -1
	}
	for idx, name := range header {
		if role, ok := csvAliases[strings.ToLower(strings.TrimSpace(name))]; ok && cols[role] < 0 {
			cols[role] = idx
		}
	}
	for _, req := range csvRequired {
		if cols[req.role] < 0 {
			return nil, fmt.Errorf("gen: trace: csv header missing %q column (have %v)", req.name, header)
		}
	}

	t := &Trace{}
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gen: trace: csv row %d: %w", i+1, err)
		}
		if i >= maxTraceRecords {
			return nil, fmt.Errorf("gen: trace: more than %d records", maxTraceRecords)
		}
		rec, err := parseCSVRecord(row, cols)
		if err != nil {
			return nil, fmt.Errorf("gen: trace: csv row %d: %w", i+1, err)
		}
		if err := appendTraceRecord(t, i, rec); err != nil {
			return nil, err
		}
	}
	if len(t.Records) == 0 {
		return nil, ErrEmptyTrace
	}
	return t, nil
}

// parseCSVRecord maps one CSV row into a flow.Record using the resolved
// column bindings.
func parseCSVRecord(row []string, cols []int) (*flow.Record, error) {
	field := func(role int) string {
		idx := cols[role]
		if idx < 0 || idx >= len(row) {
			return ""
		}
		return strings.TrimSpace(row[idx])
	}
	start, err := parseTraceTime(field(colTS))
	if err != nil {
		return nil, err
	}
	srcIP, err := flow.ParseIP(field(colSrcIP))
	if err != nil {
		return nil, fmt.Errorf("srcip: %w", err)
	}
	dstIP, err := flow.ParseIP(field(colDstIP))
	if err != nil {
		return nil, fmt.Errorf("dstip: %w", err)
	}
	srcPort, err := parseUintField("srcport", field(colSrcPort), math.MaxUint16)
	if err != nil {
		return nil, err
	}
	dstPort, err := parseUintField("dstport", field(colDstPort), math.MaxUint16)
	if err != nil {
		return nil, err
	}
	proto, err := flow.ParseProtocol(field(colProto))
	if err != nil {
		return nil, err
	}
	packets, err := parseUintField("packets", field(colPackets), math.MaxUint64)
	if err != nil {
		return nil, err
	}
	bytesV, err := parseUintField("bytes", field(colBytes), math.MaxUint64)
	if err != nil {
		return nil, err
	}
	rec := &flow.Record{
		Start:   start,
		SrcIP:   srcIP,
		DstIP:   dstIP,
		SrcPort: uint16(srcPort),
		DstPort: uint16(dstPort),
		Proto:   proto,
		Packets: packets,
		Bytes:   bytesV,
	}
	if s := field(colFlags); s != "" {
		v, err := parseUintField("flags", s, math.MaxUint8)
		if err != nil {
			return nil, err
		}
		rec.Flags = uint8(v)
	}
	if s := field(colDur); s != "" {
		d, err := strconv.ParseFloat(s, 64)
		if !(err == nil && d >= 0 && d <= math.MaxUint32) {
			return nil, fmt.Errorf("duration %q not a non-negative number of seconds", s)
		}
		rec.Dur = uint32(d * 1000) // nfdump reports seconds; Record.Dur is ms
	}
	if s := field(colRouter); s != "" {
		v, err := parseUintField("router", s, math.MaxUint16)
		if err != nil {
			return nil, err
		}
		rec.Router = uint16(v)
	}
	return rec, nil
}

// parseTraceTime accepts unix seconds or nfdump's wall-clock layouts
// (with or without fractional seconds), both interpreted as UTC.
func parseTraceTime(s string) (uint32, error) {
	if s == "" {
		return 0, errors.New("empty timestamp")
	}
	if secs, err := strconv.ParseUint(s, 10, 64); err == nil {
		if secs == 0 || secs > math.MaxUint32 {
			return 0, fmt.Errorf("timestamp %q out of range", s)
		}
		return uint32(secs), nil
	}
	for _, layout := range []string{csvTimeLayout, csvTimeLayoutFrac} {
		if ts, err := time.Parse(layout, s); err == nil {
			secs := ts.Unix()
			if secs <= 0 || secs > math.MaxUint32 {
				return 0, fmt.Errorf("timestamp %q out of range", s)
			}
			return uint32(secs), nil
		}
	}
	return 0, fmt.Errorf("timestamp %q not unix seconds or %q", s, csvTimeLayout)
}

// parseUintField parses one bounded unsigned CSV field.
func parseUintField(name, s string, maxVal uint64) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v > maxVal {
		return 0, fmt.Errorf("%s %q not an unsigned integer <= %d", name, s, maxVal)
	}
	return v, nil
}

// appendTraceRecord validates one parsed record and appends it, holding
// the whole-trace invariants (nonzero monotone clock, per-record
// validity).
func appendTraceRecord(t *Trace, i int, rec *flow.Record) error {
	if rec.Start == 0 {
		return fmt.Errorf("gen: trace: record %d has zero timestamp", i)
	}
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("gen: trace: record %d: %w", i, err)
	}
	if n := len(t.Records); n > 0 && rec.Start < t.Records[n-1].Start {
		return fmt.Errorf("gen: trace: record %d starts at %d, before record %d at %d (non-monotonic clock)",
			i, rec.Start, n-1, t.Records[n-1].Start)
	}
	rec.Anno = flow.AnnoBackground
	t.Records = append(t.Records, *rec)
	return nil
}

// EncodeTraceBinary serializes records into the NFTR binary trace
// format (the inverse of the binary reader).
func EncodeTraceBinary(recs []flow.Record) []byte {
	var b bytes.Buffer
	b.WriteString(traceMagic)
	var header [4]byte
	binary.LittleEndian.PutUint16(header[0:2], traceVersion)
	b.Write(header[:])
	var buf [traceRecordSize]byte
	for i := range recs {
		r := &recs[i]
		binary.LittleEndian.PutUint32(buf[0:4], r.Start)
		binary.LittleEndian.PutUint32(buf[4:8], r.Dur)
		binary.LittleEndian.PutUint32(buf[8:12], uint32(r.SrcIP))
		binary.LittleEndian.PutUint32(buf[12:16], uint32(r.DstIP))
		binary.LittleEndian.PutUint16(buf[16:18], r.SrcPort)
		binary.LittleEndian.PutUint16(buf[18:20], r.DstPort)
		buf[20] = uint8(r.Proto)
		buf[21] = r.Flags
		binary.LittleEndian.PutUint16(buf[22:24], r.Router)
		binary.LittleEndian.PutUint64(buf[24:32], r.Packets)
		binary.LittleEndian.PutUint64(buf[32:40], r.Bytes)
		b.Write(buf[:])
	}
	return b.Bytes()
}

// EncodeTraceCSV serializes records into the CSV trace format with the
// canonical nfdump-style header.
func EncodeTraceCSV(recs []flow.Record) []byte {
	var b bytes.Buffer
	b.WriteString("ts,td,sa,da,sp,dp,pr,flg,rtr,ipkt,ibyt\n")
	for i := range recs {
		r := &recs[i]
		fmt.Fprintf(&b, "%d,%.3f,%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
			r.Start, float64(r.Dur)/1000, r.SrcIP, r.DstIP,
			r.SrcPort, r.DstPort, uint8(r.Proto), r.Flags, r.Router,
			r.Packets, r.Bytes)
	}
	return b.Bytes()
}

// SynthTraceRecords generates a heavy-tailed replay trace with the
// background model's traffic shape (Zipf host/server/port popularity,
// Pareto flow sizes): the stand-in for a captured backbone trace in the
// replayed-trace catalog scenarios and the trace-format tests. The
// records start at a deliberately historic origin — far from any
// scenario clock — so replay only works if the rebasing does.
func SynthTraceRecords(rng *stats.RNG, bins int, binSec uint32, flowsPerBin int) []flow.Record {
	cfg := Background{NumPoPs: 3, FlowsPerBin: flowsPerBin}
	if err := cfg.validate(); err != nil {
		panic(err) // only reachable with NumPoPs > 64
	}
	g := newBackgroundGen(cfg)
	const origin = 900_000_000 // 1998-07-09, long before any catalog clock
	var recs []flow.Record
	for b := 0; b < bins; b++ {
		iv := flow.Interval{
			Start: origin + uint32(b)*binSec,
			End:   origin + uint32(b+1)*binSec,
		}
		for pop := 0; pop < cfg.NumPoPs; pop++ {
			emit := func(r *flow.Record) error {
				recs = append(recs, *r)
				return nil
			}
			if err := g.emitBin(rng.Fork(uint64(b)<<16|uint64(pop)), iv, pop, b, emit); err != nil {
				panic(err) // emit never fails
			}
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	return recs
}
