package gen

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

const genBase = uint32(1_200_000_000)

func generate(t *testing.T, s Scenario) (*nfstore.Store, *Truth) {
	t.Helper()
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	truth, err := s.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	return store, truth
}

func TestBackgroundVolume(t *testing.T) {
	s := Scenario{
		Background: Background{NumPoPs: 2, FlowsPerBin: 100, Hosts: 500, Servers: 100},
		Bins:       10, StartTime: genBase, Seed: 1,
	}
	store, truth := generate(t, s)
	flows, _, _, err := store.Count(t.Context(), truth.Span, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 10 bins × 2 PoPs × Poisson(100) ≈ 2000.
	if flows < 1700 || flows > 2300 {
		t.Fatalf("background volume %d, want ≈ 2000", flows)
	}
	if truth.BackgroundFlows != flows {
		t.Fatalf("truth.BackgroundFlows %d != stored %d", truth.BackgroundFlows, flows)
	}
}

func TestDeterminism(t *testing.T) {
	s := Scenario{
		Background: Background{NumPoPs: 2, FlowsPerBin: 50},
		Bins:       5, StartTime: genBase, Seed: 42,
		Placements: []Placement{
			{Anomaly: PortScan{Scanner: flow.MustParseIP("10.9.9.9"), Victim: flow.MustParseIP("198.18.0.1"), SrcPort: 55548, Ports: 200}, Bin: 3},
		},
	}
	store1, truth1 := generate(t, s)
	store2, truth2 := generate(t, s)
	r1, err := store1.Records(t.Context(), truth1.Span, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := store2.Records(t.Context(), truth2.Span, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d differs between identical scenarios", i)
		}
	}
}

func TestAnnotationsAndTruth(t *testing.T) {
	scan := PortScan{
		Scanner: flow.MustParseIP("10.9.9.9"), Victim: flow.MustParseIP("198.18.0.1"),
		SrcPort: 55548, Ports: 300, FlowsPerPort: 2, Router: 1,
	}
	flood := UDPFlood{
		Src: flow.MustParseIP("10.8.8.8"), Dst: flow.MustParseIP("198.18.0.2"),
		DstPort: 9999, Flows: 4, PacketsPerFlow: 1_000_000, Router: 0,
	}
	s := Scenario{
		Background: Background{NumPoPs: 2, FlowsPerBin: 50},
		Bins:       6, StartTime: genBase, Seed: 7,
		Placements: []Placement{
			{Anomaly: scan, Bin: 2},
			{Anomaly: flood, Bin: 4},
		},
	}
	store, truth := generate(t, s)
	if len(truth.Entries) != 2 {
		t.Fatalf("truth has %d entries", len(truth.Entries))
	}
	e1 := truth.Entry(1)
	if e1 == nil || e1.Kind != detector.KindPortScan {
		t.Fatalf("entry 1 = %+v", e1)
	}
	if e1.InjectedFlows != 600 {
		t.Fatalf("scan injected %d flows, want 600", e1.InjectedFlows)
	}
	if e1.StoredFlows != 600 {
		t.Fatalf("unsampled scan stored %d flows, want 600", e1.StoredFlows)
	}
	e2 := truth.Entry(2)
	if e2 == nil || e2.Kind != detector.KindUDPFlood {
		t.Fatalf("entry 2 = %+v", e2)
	}
	if e2.InjectedPkts != 4_000_000 {
		t.Fatalf("flood injected %d packets", e2.InjectedPkts)
	}
	if truth.Entry(0) != nil || truth.Entry(9) != nil {
		t.Fatal("out-of-range Entry must return nil")
	}

	// Stored annotations must round-trip: every anno-1 record is a scan
	// flow in bin 2.
	annoFlows := 0
	err := store.Query(t.Context(), truth.Span, nil, func(r *flow.Record) error {
		if r.Anno == 1 {
			annoFlows++
			if !e1.Interval.Contains(r.Start) {
				t.Fatal("annotated record outside its anomaly interval")
			}
			if r.SrcIP != scan.Scanner {
				t.Fatal("annotated record has wrong source")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(annoFlows) != e1.StoredFlows {
		t.Fatalf("annotated flows %d != truth %d", annoFlows, e1.StoredFlows)
	}
}

func TestSamplingReducesFlows(t *testing.T) {
	scan := PortScan{
		Scanner: flow.MustParseIP("10.9.9.9"), Victim: flow.MustParseIP("198.18.0.1"),
		SrcPort: 55548, Ports: 2000, FlowsPerPort: 1, Router: 0,
	}
	flood := UDPFlood{
		Src: flow.MustParseIP("10.8.8.8"), Dst: flow.MustParseIP("198.18.0.2"),
		DstPort: 9999, Flows: 4, PacketsPerFlow: 1_000_000,
	}
	s := Scenario{
		Background: Background{NumPoPs: 1, FlowsPerBin: 100},
		Bins:       4, StartTime: genBase, Seed: 11, SampleRate: 100,
		Placements: []Placement{
			{Anomaly: scan, Bin: 1},
			{Anomaly: flood, Bin: 2},
		},
	}
	_, truth := generate(t, s)
	e1 := truth.Entry(1)
	// 1-packet probes survive with p=0.01: of 2000, expect ≈ 20.
	if e1.StoredFlows > 80 || e1.StoredFlows == 0 {
		t.Fatalf("sampled scan stored %d flows, want ≈ 20", e1.StoredFlows)
	}
	if e1.InjectedFlows != 2000 {
		t.Fatalf("injected %d", e1.InjectedFlows)
	}
	// Flood flows all survive; packets renormalize to ≈ 4M.
	e2 := truth.Entry(2)
	if e2.StoredFlows != 4 {
		t.Fatalf("flood stored %d flows, want 4", e2.StoredFlows)
	}
	if e2.StoredPkts < 3_000_000 || e2.StoredPkts > 5_000_000 {
		t.Fatalf("flood stored %d packets, want ≈ 4M", e2.StoredPkts)
	}
}

func TestAllInjectorsEmitValidRecords(t *testing.T) {
	anomalies := []Anomaly{
		PortScan{Scanner: 1, Victim: 2, SrcPort: 55548, Ports: 50, Router: 0},
		NetworkScan{Scanner: 1, Prefix: flow.MustParsePrefix("198.18.0.0/24"), Hosts: 50, DstPort: 445},
		SYNFlood{Victim: 2, DstPort: 80, Sources: 20, SourceNet: flow.MustParsePrefix("172.16.0.0/16"), FlowsPerSource: 5},
		UDPFlood{Src: 1, Dst: 2, DstPort: 9999, Flows: 3, PacketsPerFlow: 100},
		FlashCrowd{Server: 2, Port: 80, Clients: 30, FlowsPerClient: 2},
		Stealthy{Scanner: 1, Victim: 2, Flows: 10},
	}
	iv := flow.Interval{Start: 1000, End: 1300}
	for _, a := range anomalies {
		rng := stats.NewRNG(3)
		n := 0
		err := a.Emit(rng, iv, 5, func(r *flow.Record) error {
			n++
			if err := r.Validate(); err != nil {
				t.Fatalf("%s emitted invalid record: %v", a.Describe(), err)
			}
			if r.Anno != 5 {
				t.Fatalf("%s lost the annotation", a.Describe())
			}
			if !iv.Contains(r.Start) {
				t.Fatalf("%s emitted outside interval", a.Describe())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("%s emitted nothing", a.Describe())
		}
		if a.Kind() == "" || a.Describe() == "" {
			t.Fatalf("empty kind or description")
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	bad := []Scenario{
		{Bins: 0},
		{Bins: 5, Placements: []Placement{{Anomaly: nil, Bin: 0}}},
		{Bins: 5, Placements: []Placement{{Anomaly: Stealthy{}, Bin: 9}}},
		{Bins: 5, Background: Background{NumPoPs: 100}},
	}
	for i, s := range bad {
		if _, err := s.Generate(store); err == nil {
			t.Errorf("scenario %d must be rejected", i)
		}
	}
}

func TestSYNFloodKinds(t *testing.T) {
	if (SYNFlood{Sources: 1}).Kind() != detector.KindDoS {
		t.Error("single-source flood must be DoS")
	}
	if (SYNFlood{Sources: 50}).Kind() != detector.KindDDoS {
		t.Error("multi-source flood must be DDoS")
	}
}

func TestDiurnalModulation(t *testing.T) {
	// With diurnal on, per-bin volumes across a day must vary by more
	// than Poisson noise alone.
	s := Scenario{
		Background: Background{NumPoPs: 1, FlowsPerBin: 200, Diurnal: true},
		Bins:       288, StartTime: genBase, Seed: 5,
	}
	store, truth := generate(t, s)
	sums, err := store.Summaries(t.Context(), truth.Span, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi uint64 = 1 << 62, 0
	for _, bs := range sums {
		if bs.Flows < lo {
			lo = bs.Flows
		}
		if bs.Flows > hi {
			hi = bs.Flows
		}
	}
	// ±30% modulation: max/min should exceed 1.5×.
	if float64(hi) < 1.5*float64(lo) {
		t.Fatalf("diurnal range too flat: [%d, %d]", lo, hi)
	}
}

func TestBackgroundProtocolMix(t *testing.T) {
	s := Scenario{
		Background: Background{NumPoPs: 1, FlowsPerBin: 2000},
		Bins:       2, StartTime: genBase, Seed: 13,
	}
	store, truth := generate(t, s)
	tcp, _, _, _ := store.Count(t.Context(), truth.Span, nffilter.MustParse("proto tcp"))
	udp, _, _, _ := store.Count(t.Context(), truth.Span, nffilter.MustParse("proto udp"))
	icmp, _, _, _ := store.Count(t.Context(), truth.Span, nffilter.MustParse("proto icmp"))
	total := tcp + udp + icmp
	if total == 0 {
		t.Fatal("no traffic")
	}
	if float64(tcp)/float64(total) < 0.6 {
		t.Fatalf("TCP share %v too low", float64(tcp)/float64(total))
	}
	if udp == 0 || icmp == 0 {
		t.Fatal("UDP and ICMP must both appear in the mix")
	}
}
