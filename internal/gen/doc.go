// Package gen generates the synthetic labeled NetFlow traces that stand in
// for the proprietary GEANT and SWITCH traces of the paper's evaluation
// (see the trace-generation row of DESIGN.md §1 for the substitution
// argument).
//
// A Scenario combines a Background traffic model — Zipf-popular hosts and
// services, heavy-tailed (Pareto) flow sizes, Poisson per-bin flow counts,
// optional diurnal modulation, traffic spread over the configured
// points-of-presence — with anomaly Placements: injectors for the anomaly
// classes the paper's evaluations cover (port scans, network scans, TCP
// SYN DDoS, point-to-point UDP floods, flash events, and deliberately
// stealthy variants) plus the extended catalog classes (DNS/NTP
// reflection-amplification DDoS, ICMP floods, coordinated botnet scans,
// link outages / traffic blackouts, routing shifts and spam campaigns).
// Every injected record carries a ground-truth Annotation, which real
// traces lack, and every Anomaly declares its root-cause Signature — the
// Table-1-style itemset an ideal extraction reports — which the
// evaluation harness scores ranked results against. Anomalies that
// remove traffic instead of adding it (link outages) implement
// BackgroundSuppressor and drop matching background records from their
// bin.
//
// The scenario catalog (Register/Lookup/Catalog) names composable,
// seeded scenario definitions; docs/scenarios.md documents every entry
// and DESIGN.md §7 specifies the determinism contract. Everything is
// deterministic under an explicit seed.
package gen
