package gen

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/stats"
)

// Background models the benign traffic mix of one backbone network.
type Background struct {
	// NumPoPs is the number of ingress points-of-presence traffic is
	// spread over (GEANT: 18).
	NumPoPs int
	// FlowsPerBin is the mean number of background flows per measurement
	// bin per PoP (Poisson distributed).
	FlowsPerBin int
	// Hosts is the client address pool size; Servers the server pool size.
	// Popularity within both pools is Zipfian.
	Hosts   int
	Servers int
	// Diurnal, when true, modulates per-bin volume with a ±30% sinusoidal
	// daily pattern (bins are 300 s).
	Diurnal bool
}

// DefaultBackground returns the background model used by the evaluation
// suites: a medium aggregation level that keeps suite runtimes reasonable
// while preserving heavy-tailed structure.
func DefaultBackground() Background {
	return Background{
		NumPoPs:     4,
		FlowsPerBin: 400,
		Hosts:       2000,
		Servers:     300,
	}
}

// validate applies defaults and sanity-checks.
func (b *Background) validate() error {
	if b.NumPoPs <= 0 {
		b.NumPoPs = 1
	}
	if b.NumPoPs > 64 {
		return fmt.Errorf("gen: NumPoPs %d too large (max 64)", b.NumPoPs)
	}
	if b.FlowsPerBin <= 0 {
		b.FlowsPerBin = 400
	}
	if b.Hosts <= 0 {
		b.Hosts = 2000
	}
	if b.Servers <= 0 {
		b.Servers = 300
	}
	return nil
}

// servicePorts is the well-known service mix of the background, most
// popular first (Zipf-weighted).
var servicePorts = []uint16{80, 443, 53, 25, 993, 22, 110, 123, 8080, 3389, 445, 21}

// backgroundGen holds the samplers for one generation run.
type backgroundGen struct {
	cfg      Background
	hostZipf *stats.Zipf
	srvZipf  *stats.Zipf
	portZipf *stats.Zipf
}

func newBackgroundGen(cfg Background) *backgroundGen {
	return &backgroundGen{
		cfg:      cfg,
		hostZipf: stats.MustZipf(cfg.Hosts, 1.1),
		srvZipf:  stats.MustZipf(cfg.Servers, 1.0),
		portZipf: stats.MustZipf(len(servicePorts), 1.2),
	}
}

// hostIP maps a client pool rank to a stable address in 10.0.0.0/8,
// encoding the PoP in the second octet so per-PoP distributions are
// structured like a real topology.
func hostIP(pop, rank int) flow.IP {
	return flow.IPFromOctets(10, byte(pop), byte(rank>>8), byte(rank))
}

// serverIP maps a server pool rank to a stable address in 198.18.0.0/15
// (benchmark space).
func serverIP(rank int) flow.IP {
	return flow.IPFromOctets(198, 18, byte(rank>>8), byte(rank))
}

// emitBin generates one bin's background flows for one PoP.
func (g *backgroundGen) emitBin(rng *stats.RNG, iv flow.Interval, pop int, binIndex int, emit func(*flow.Record) error) error {
	mean := float64(g.cfg.FlowsPerBin)
	if g.cfg.Diurnal {
		// 288 five-minute bins per day.
		phase := float64(binIndex%288) / 288
		mean *= 1 + 0.3*math.Sin(2*math.Pi*phase)
	}
	n := rng.Poisson(mean)
	span := iv.End - iv.Start
	if span == 0 {
		span = 1
	}
	for i := 0; i < n; i++ {
		var r flow.Record
		host := hostIP(pop, g.hostZipf.Rank(rng))
		server := serverIP(g.srvZipf.Rank(rng))
		service := servicePorts[g.portZipf.Rank(rng)]
		ephemeral := uint16(1024 + rng.Intn(64511))

		// ~85% client->server, 15% reverse direction (server responses
		// exported as separate flows).
		if rng.Bool(0.85) {
			r.SrcIP, r.DstIP = host, server
			r.SrcPort, r.DstPort = ephemeral, service
		} else {
			r.SrcIP, r.DstIP = server, host
			r.SrcPort, r.DstPort = service, ephemeral
		}
		switch {
		case service == 53 || service == 123:
			r.Proto = flow.ProtoUDP
		case rng.Bool(0.03):
			r.Proto = flow.ProtoICMP
			r.SrcPort, r.DstPort = 0, 0
		default:
			r.Proto = flow.ProtoTCP
			r.Flags = flow.TCPSyn | flow.TCPAck
			if rng.Bool(0.8) {
				r.Flags |= flow.TCPPsh | flow.TCPFin
			}
		}
		// Heavy-tailed flow sizes: Pareto(1.3) packets, capped so a single
		// background flow never looks like a flood.
		pkts := uint64(rng.Pareto(1.3, 1))
		if pkts < 1 {
			pkts = 1
		}
		if pkts > 20000 {
			pkts = 20000
		}
		r.Packets = pkts
		pktSize := 40 + rng.Intn(1460)
		r.Bytes = pkts * uint64(pktSize)
		r.Start = iv.Start + uint32(rng.Intn(int(span)))
		r.Dur = uint32(rng.Exp(5000))
		r.Router = uint16(pop)
		r.Anno = flow.AnnoBackground
		if err := emit(&r); err != nil {
			return err
		}
	}
	return nil
}
