package pca

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

const (
	testBase  = uint32(1_000_000_200) // 300-aligned
	testPoPs  = 4
	testNBins = 30
)

// anomalySpec injects an anomaly into one bin.
type anomalySpec struct {
	bin  int
	kind string // "scan" or "flood"
}

// buildTrace writes a multi-PoP background trace with optional anomalies.
func buildTrace(t *testing.T, anomalies []anomalySpec) (*nfstore.Store, flow.Interval) {
	t.Helper()
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	rng := stats.NewRNG(7)
	zip := stats.MustZipf(300, 1.1)
	ports := []uint16{80, 443, 53, 25, 110, 8080, 123, 22}
	for b := 0; b < testNBins; b++ {
		start := testBase + uint32(b)*300
		for pop := 0; pop < testPoPs; pop++ {
			for i := 0; i < 250; i++ {
				r := flow.Record{
					Start:   start + uint32(rng.Intn(300)),
					SrcIP:   flow.IPFromOctets(10, byte(pop), byte(zip.Rank(rng)/250), byte(zip.Rank(rng)%250)),
					DstIP:   flow.IPFromOctets(192, 0, 2, byte(zip.Rank(rng)%250)),
					SrcPort: uint16(1024 + rng.Intn(60000)),
					DstPort: ports[rng.Intn(len(ports))],
					Proto:   flow.ProtoTCP,
					Router:  uint16(pop),
					Packets: uint64(rng.Intn(20) + 1),
				}
				r.Bytes = r.Packets * 500
				if err := store.Add(&r); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, a := range anomalies {
			if a.bin != b {
				continue
			}
			switch a.kind {
			case "scan":
				scanner := flow.MustParseIP("10.77.77.77")
				victim := flow.MustParseIP("192.0.2.199")
				for p := 0; p < 1200; p++ {
					r := flow.Record{
						Start: start + uint32(rng.Intn(300)), SrcIP: scanner, DstIP: victim,
						SrcPort: 55548, DstPort: uint16(1 + p), Proto: flow.ProtoTCP,
						Router: 1, Packets: 1, Bytes: 40, Anno: 1,
					}
					if err := store.Add(&r); err != nil {
						t.Fatal(err)
					}
				}
			case "flood":
				// Point-to-point UDP flood: 4 flows, 2M packets each.
				src := flow.MustParseIP("10.66.66.66")
				dst := flow.MustParseIP("192.0.2.200")
				for i := 0; i < 4; i++ {
					r := flow.Record{
						Start: start + uint32(rng.Intn(300)), SrcIP: src, DstIP: dst,
						SrcPort: uint16(20000 + i), DstPort: 9999, Proto: flow.ProtoUDP,
						Router: 2, Packets: 2_000_000, Bytes: 2_000_000 * 100, Anno: 2,
					}
					if err := store.Add(&r); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	return store, flow.Interval{Start: testBase, End: testBase + testNBins*300}
}

func alarmOnBin(alarms []detector.Alarm, bin int) *detector.Alarm {
	start := testBase + uint32(bin)*300
	for i := range alarms {
		if alarms[i].Interval.Start == start {
			return &alarms[i]
		}
	}
	return nil
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Alpha: 0.6}); err == nil {
		t.Error("Alpha >= 0.5 must be rejected")
	}
	if _, err := New(Config{Alpha: -1}); err == nil {
		t.Error("negative Alpha must be rejected")
	}
	if _, err := New(Config{NumPoPs: -1, Alpha: 0.001}); err == nil {
		t.Error("negative NumPoPs must be rejected")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestTooFewBins(t *testing.T) {
	store, _ := buildTrace(t, nil)
	d := MustNew(DefaultConfig())
	_, err := d.Detect(t.Context(), store, flow.Interval{Start: testBase, End: testBase + 3*300})
	if err == nil {
		t.Fatal("detection over 3 bins must fail (MinBins)")
	}
}

func TestQuietTraceFewAlarms(t *testing.T) {
	store, span := buildTrace(t, nil)
	d := MustNew(DefaultConfig())
	alarms, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) > 2 {
		t.Fatalf("quiet trace produced %d alarms", len(alarms))
	}
}

func TestScanDetected(t *testing.T) {
	store, span := buildTrace(t, []anomalySpec{{bin: 20, kind: "scan"}})
	d := MustNew(DefaultConfig())
	alarms, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	hit := alarmOnBin(alarms, 20)
	if hit == nil {
		t.Fatalf("scan bin not flagged; alarms: %v", alarms)
	}
	if hit.Score <= 1 {
		t.Fatalf("alarm score (SPE/Q) = %v, want > 1", hit.Score)
	}
	// Meta should name the scanner or victim.
	scanner := uint32(flow.MustParseIP("10.77.77.77"))
	victim := uint32(flow.MustParseIP("192.0.2.199"))
	ok := false
	for _, m := range hit.Meta {
		if m.Value == scanner || m.Value == victim {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("meta %v does not identify scan endpoints", hit.Meta)
	}
}

func TestVolumeFloodDetectedOnlyWithVolumeChannels(t *testing.T) {
	store, span := buildTrace(t, []anomalySpec{{bin: 22, kind: "flood"}})

	// With volume channels: detected.
	d := MustNew(DefaultConfig())
	alarms, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	hit := alarmOnBin(alarms, 22)
	if hit == nil {
		t.Fatalf("flood not detected with volume channels; alarms: %v", alarms)
	}
	// Meta should name the flood endpoints.
	src := uint32(flow.MustParseIP("10.66.66.66"))
	dst := uint32(flow.MustParseIP("192.0.2.200"))
	named := false
	for _, m := range hit.Meta {
		if m.Value == src || m.Value == dst {
			named = true
		}
	}
	if !named {
		t.Fatalf("flood meta %v does not identify endpoints", hit.Meta)
	}

	// Without volume channels a 4-flow flood has only a faint entropy
	// footprint; the volume-channel signal must dwarf the entropy-only
	// signal by an order of magnitude (this asymmetry is the paper's
	// motivation for packet-based support downstream).
	cfg := DefaultConfig()
	cfg.IncludeVolume = false
	d2 := MustNew(cfg)
	alarms2, err := d2.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	entropyScore := 0.0
	if a := alarmOnBin(alarms2, 22); a != nil {
		entropyScore = a.Score
	}
	if hit.Score < 10*entropyScore {
		t.Fatalf("volume score %v must dwarf entropy-only score %v", hit.Score, entropyScore)
	}
}

func TestBothAnomaliesDetected(t *testing.T) {
	store, span := buildTrace(t, []anomalySpec{
		{bin: 18, kind: "scan"},
		{bin: 24, kind: "flood"},
	})
	d := MustNew(DefaultConfig())
	alarms, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	if alarmOnBin(alarms, 18) == nil {
		t.Error("scan bin not flagged")
	}
	if alarmOnBin(alarms, 24) == nil {
		t.Error("flood bin not flagged")
	}
}

func TestDeterministic(t *testing.T) {
	store, span := buildTrace(t, []anomalySpec{{bin: 15, kind: "scan"}})
	d := MustNew(DefaultConfig())
	a1, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.Detect(t.Context(), store, span)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatal("non-deterministic alarm count")
	}
	for i := range a1 {
		if a1[i].Interval != a2[i].Interval || a1[i].Score != a2[i].Score {
			t.Fatal("non-deterministic alarms")
		}
	}
}

func TestChannelString(t *testing.T) {
	c := channel{pop: 3, feature: flow.FeatDstPort}
	if c.String() != "pop3/dstPort" {
		t.Fatalf("channel string = %q", c.String())
	}
	v := channel{pop: 1, volume: true, packets: true}
	if v.String() != "pop1/packets" {
		t.Fatalf("volume channel string = %q", v.String())
	}
}

func TestName(t *testing.T) {
	if MustNew(DefaultConfig()).Name() != "pca-subspace" {
		t.Fatal("name")
	}
}
