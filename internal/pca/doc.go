// Package pca implements the PCA subspace anomaly detector of Lakhina,
// Crovella & Diot ("Mining anomalies using traffic feature distributions",
// SIGCOMM 2005) — the published method underlying NetReflex, the
// commercial detector of the paper's GEANT deployment, which the paper
// describes as detecting "on the basis of volume and IP features entropy
// variations [4]".
//
// Per measurement bin and per ingress point-of-presence the detector
// computes the normalized entropy of the four traffic feature
// distributions plus (optionally) volume counters, assembling the
// bins × (PoPs·channels) measurement matrix. PCA on the standardized
// matrix splits the space into a principal (normal) subspace and a
// residual subspace; a bin whose squared prediction error in the residual
// subspace exceeds the Jackson-Mudholkar Q-statistic threshold is flagged,
// and the columns dominating the residual identify the PoP and traffic
// feature involved. Meta-data then comes from drilling into the store:
// the concrete feature values whose share of traffic grew most against
// the preceding clean bin.
package pca
