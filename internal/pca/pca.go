package pca

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/linalg"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

// Config parameterizes the detector; use DefaultConfig as a base.
type Config struct {
	// Features are the entropy channels per PoP (default: the four
	// Lakhina features).
	Features []flow.Feature
	// IncludeVolume adds flow-count and packet-count channels per PoP, as
	// in volume-PCA; without them entropy-neutral anomalies (point-to-point
	// floods) are invisible, with them NetReflex-style detection of both
	// classes works.
	IncludeVolume bool
	// NumPoPs fixes the PoP count; 0 discovers it from the data
	// (max Router index + 1).
	NumPoPs int
	// VarianceFraction selects the principal subspace dimension: the
	// smallest p whose components capture at least this fraction of total
	// variance. Clamped to [0.5, 0.999].
	VarianceFraction float64
	// MaxComponents caps p (default 10).
	MaxComponents int
	// Alpha is the Q-statistic false-alarm rate (default 0.001).
	Alpha float64
	// QMargin multiplies the Q threshold before alarming (default 2).
	// The Jackson-Mudholkar threshold assumes Gaussian residuals; SPE under
	// the trimmed robust fit is heavier-tailed, and real anomalies exceed Q
	// by orders of magnitude, so a small margin suppresses borderline
	// statistical false alarms at no recall cost.
	QMargin float64
	// MinBins is the minimum number of measurement bins required to fit
	// the subspace (default 8).
	MinBins int
	// TrimFraction is the fraction of the most extreme bins excluded from
	// the subspace fit (default 0.1). A single strongly anomalous bin can
	// otherwise rotate the principal subspace toward itself and hide from
	// the residual — the contamination problem documented for subspace
	// detectors (Ringberg et al., SIGMETRICS'07). Trimmed bins are still
	// scored against the clean model.
	TrimFraction float64
	// TopColumns is how many residual-dominating columns are attributed
	// per alarm; TopValues how many concrete values are reported per
	// attributed column.
	TopColumns int
	TopValues  int
	// MinMetaGain is the minimum traffic-share gain (in absolute share,
	// 0..1) a value must show to be reported as meta-data from an entropy
	// column; MinMetaShare is the minimum share a top endpoint must hold
	// to be reported from a volume column. Both default conservatively
	// (0.1 and 0.3): detectors report few, high-confidence meta items and
	// leave completing the picture to the extraction step — exactly the
	// division of labour the paper describes.
	MinMetaGain  float64
	MinMetaShare float64
	// Weight selects distribution weighting for the entropy channels.
	Weight nfstore.Weight
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Features:         flow.EntropyFeatures(),
		IncludeVolume:    true,
		VarianceFraction: 0.92,
		MaxComponents:    10,
		Alpha:            0.001,
		QMargin:          2,
		MinBins:          8,
		TrimFraction:     0.1,
		TopColumns:       4,
		TopValues:        3,
		MinMetaGain:      0.1,
		MinMetaShare:     0.3,
		Weight:           nfstore.ByFlows,
	}
}

// Detector is the PCA subspace detector.
type Detector struct {
	cfg Config
}

// New validates cfg and returns a Detector.
func New(cfg Config) (*Detector, error) {
	if len(cfg.Features) == 0 {
		cfg.Features = flow.EntropyFeatures()
	}
	if cfg.VarianceFraction <= 0 {
		cfg.VarianceFraction = 0.92
	}
	if cfg.VarianceFraction < 0.5 {
		cfg.VarianceFraction = 0.5
	}
	if cfg.VarianceFraction > 0.999 {
		cfg.VarianceFraction = 0.999
	}
	if cfg.MaxComponents <= 0 {
		cfg.MaxComponents = 10
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 0.5 {
		return nil, fmt.Errorf("pca: Alpha must be in (0, 0.5), got %v", cfg.Alpha)
	}
	if cfg.MinBins < 4 {
		cfg.MinBins = 8
	}
	if cfg.TopColumns <= 0 {
		cfg.TopColumns = 2
	}
	if cfg.TopValues <= 0 {
		cfg.TopValues = 3
	}
	if cfg.NumPoPs < 0 {
		return nil, fmt.Errorf("pca: NumPoPs must be >= 0, got %d", cfg.NumPoPs)
	}
	if cfg.TrimFraction < 0 || cfg.TrimFraction >= 0.5 {
		return nil, fmt.Errorf("pca: TrimFraction must be in [0, 0.5), got %v", cfg.TrimFraction)
	}
	if cfg.QMargin <= 0 {
		cfg.QMargin = 2
	}
	if cfg.MinMetaGain <= 0 {
		cfg.MinMetaGain = 0.1
	}
	if cfg.MinMetaShare <= 0 {
		cfg.MinMetaShare = 0.3
	}
	return &Detector{cfg: cfg}, nil
}

// init registers the detector under its public name; the factory accepts
// a pca.Config (or nil for defaults).
func init() {
	detector.MustRegister("pca", func(cfg any) (detector.Detector, error) {
		c, err := detector.CoerceConfig(cfg, DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("pca: %w", err)
		}
		return New(c)
	})
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "pca-subspace" }

// channel identifies one matrix column's meaning.
type channel struct {
	pop     int
	feature flow.Feature // valid when !volume
	volume  bool
	packets bool // volume channel: packets (true) or flows (false)
}

func (c channel) String() string {
	if c.volume {
		if c.packets {
			return fmt.Sprintf("pop%d/packets", c.pop)
		}
		return fmt.Sprintf("pop%d/flows", c.pop)
	}
	return fmt.Sprintf("pop%d/%s", c.pop, c.feature)
}

// binData is the per-bin measurement state used for both the matrix and
// the drill-down.
type binData struct {
	iv    flow.Interval
	dists []map[flow.Feature]*stats.Dist // per PoP, weighted per cfg.Weight
	// pktSrc/pktDst are packet-weighted endpoint distributions used to
	// drill into packet-volume alarms: a point-to-point flood dominates
	// packets while contributing almost no flows.
	pktSrc []*stats.Dist // per PoP
	pktDst []*stats.Dist // per PoP
	flows  []float64     // per PoP
	pkts   []float64     // per PoP
}

// Detect implements detector.Detector.
func (d *Detector) Detect(ctx context.Context, store nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	bins, data, numPoPs, err := d.collect(ctx, store, span)
	if err != nil {
		return nil, err
	}
	if len(bins) < d.cfg.MinBins {
		return nil, fmt.Errorf("pca: span covers %d bins, need at least %d", len(bins), d.cfg.MinBins)
	}
	channels := d.channels(numPoPs)
	raw := d.matrix(data, channels)

	// Robust fit: a strongly anomalous bin included in the fit rotates the
	// principal subspace toward itself and then hides from the residual
	// (Ringberg et al.). Pass 1 ranks bins by standardized magnitude and
	// trims the most extreme TrimFraction; pass 2 fits centering, scaling
	// and the subspace on the clean bins only. All bins — including the
	// trimmed ones — are then scored against the clean model.
	keep := d.cleanRows(raw)
	means, stds := fitScaling(raw, keep)
	y := applyScaling(raw, means, stds)

	cov := covarianceOfRows(y, keep)
	eig, err := linalg.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}
	p := d.subspaceDim(eig.Values)
	q := qThreshold(eig.Values, p, d.cfg.Alpha)
	if math.IsNaN(q) || q <= 0 {
		// No residual variance at all: nothing can be anomalous.
		return nil, nil
	}
	limit := q * d.cfg.QMargin

	var alarms []detector.Alarm
	for i := range data {
		row := y.Row(i)
		res := linalg.ProjectResidual(eig.Vectors, p, row)
		spe := linalg.Norm2(res)
		if spe <= limit {
			continue
		}
		// Attribution uses the standardized deviations of the flagged row,
		// not the residual vector: projection spreads a large outlier's
		// energy across unrelated columns, while the z-scores point
		// directly at the deviating (PoP, channel) pairs.
		cols := topDeviantColumns(row, d.cfg.TopColumns)
		meta := d.drillDown(data, i, cols, channels)
		alarms = append(alarms, detector.Alarm{
			Detector: d.Name(),
			Interval: data[i].iv,
			Kind:     detector.KindUnknown,
			Score:    spe / limit,
			Meta:     meta,
		})
	}
	return alarms, nil
}

// cleanRows returns the boolean keep-mask of rows used for fitting: all
// rows except the ceil(TrimFraction·n) with the largest standardized
// magnitude (preliminary scaling over all rows).
func (d *Detector) cleanRows(raw *linalg.Matrix) []bool {
	n := raw.Rows
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	trim := int(math.Ceil(d.cfg.TrimFraction * float64(n)))
	if trim == 0 || n-trim < d.cfg.MinBins {
		return keep
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	means, stds := fitScaling(raw, all)
	pre := applyScaling(raw, means, stds)
	type rowNorm struct {
		row  int
		norm float64
	}
	norms := make([]rowNorm, n)
	for i := 0; i < n; i++ {
		norms[i] = rowNorm{row: i, norm: linalg.Norm2(pre.Row(i))}
	}
	sort.Slice(norms, func(a, b int) bool {
		if norms[a].norm != norms[b].norm {
			return norms[a].norm > norms[b].norm
		}
		return norms[a].row < norms[b].row
	})
	for _, rn := range norms[:trim] {
		keep[rn.row] = false
	}
	return keep
}

// fitScaling computes per-column mean and std over the kept rows.
func fitScaling(m *linalg.Matrix, keep []bool) (means, stds []float64) {
	means = make([]float64, m.Cols)
	stds = make([]float64, m.Cols)
	for c := 0; c < m.Cols; c++ {
		var w stats.Welford
		for r := 0; r < m.Rows; r++ {
			if keep[r] {
				w.Add(m.At(r, c))
			}
		}
		means[c] = w.Mean()
		stds[c] = w.Std()
	}
	return means, stds
}

// applyScaling returns a new matrix with columns centered by means and
// scaled by stds (columns with ~zero std are left centered only).
func applyScaling(m *linalg.Matrix, means, stds []float64) *linalg.Matrix {
	out := linalg.NewMatrix(m.Rows, m.Cols)
	for c := 0; c < m.Cols; c++ {
		inv := 0.0
		if stds[c] > 1e-12 {
			inv = 1 / stds[c]
		}
		for r := 0; r < m.Rows; r++ {
			v := m.At(r, c) - means[c]
			if inv != 0 {
				v *= inv
			}
			out.Set(r, c, v)
		}
	}
	return out
}

// covarianceOfRows computes the sample covariance over the kept rows of
// the (already scaled) matrix.
func covarianceOfRows(m *linalg.Matrix, keep []bool) *linalg.Matrix {
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	sub := linalg.NewMatrix(kept, m.Cols)
	i := 0
	for r := 0; r < m.Rows; r++ {
		if keep[r] {
			copy(sub.Row(i), m.Row(r))
			i++
		}
	}
	// Rows are centered with the kept-row means already; Covariance
	// assumes centered input.
	return sub.Covariance()
}

// collect performs the single store pass building per-bin, per-PoP
// distributions and volume counters.
func (d *Detector) collect(ctx context.Context, store nfstore.Engine, span flow.Interval) ([]uint32, []binData, int, error) {
	all, err := store.Bins()
	if err != nil {
		return nil, nil, 0, err
	}
	numPoPs := d.cfg.NumPoPs
	var bins []uint32
	var data []binData
	for _, bin := range all {
		iv := flow.Interval{Start: bin, End: bin + store.BinSeconds()}
		if !iv.Overlaps(span) {
			continue
		}
		bd := binData{iv: iv}
		grow := func(pop int) {
			for len(bd.dists) <= pop {
				m := make(map[flow.Feature]*stats.Dist, len(d.cfg.Features))
				for _, f := range d.cfg.Features {
					m[f] = stats.NewDist()
				}
				bd.dists = append(bd.dists, m)
				bd.pktSrc = append(bd.pktSrc, stats.NewDist())
				bd.pktDst = append(bd.pktDst, stats.NewDist())
				bd.flows = append(bd.flows, 0)
				bd.pkts = append(bd.pkts, 0)
			}
		}
		if numPoPs > 0 {
			grow(numPoPs - 1)
		}
		err := store.Query(ctx, iv, nil, func(r *flow.Record) error {
			pop := int(r.Router)
			if d.cfg.NumPoPs > 0 && pop >= d.cfg.NumPoPs {
				pop = d.cfg.NumPoPs - 1 // clamp stray indexes
			}
			grow(pop)
			w := float64(d.cfg.Weight.Of(r))
			for _, f := range d.cfg.Features {
				bd.dists[pop][f].Add(f.Value(r), w)
			}
			bd.pktSrc[pop].Add(uint32(r.SrcIP), float64(r.Packets))
			bd.pktDst[pop].Add(uint32(r.DstIP), float64(r.Packets))
			bd.flows[pop]++
			bd.pkts[pop] += float64(r.Packets)
			return nil
		})
		if err != nil {
			return nil, nil, 0, err
		}
		if len(bd.dists) > numPoPs {
			numPoPs = len(bd.dists)
		}
		bins = append(bins, bin)
		data = append(data, bd)
	}
	if numPoPs == 0 {
		numPoPs = 1
	}
	// Normalize slice lengths now that the PoP count is known.
	for i := range data {
		for len(data[i].dists) < numPoPs {
			m := make(map[flow.Feature]*stats.Dist, len(d.cfg.Features))
			for _, f := range d.cfg.Features {
				m[f] = stats.NewDist()
			}
			data[i].dists = append(data[i].dists, m)
			data[i].pktSrc = append(data[i].pktSrc, stats.NewDist())
			data[i].pktDst = append(data[i].pktDst, stats.NewDist())
			data[i].flows = append(data[i].flows, 0)
			data[i].pkts = append(data[i].pkts, 0)
		}
	}
	return bins, data, numPoPs, nil
}

// channels enumerates matrix columns for the PoP count.
func (d *Detector) channels(numPoPs int) []channel {
	var chans []channel
	for pop := 0; pop < numPoPs; pop++ {
		for _, f := range d.cfg.Features {
			chans = append(chans, channel{pop: pop, feature: f})
		}
		if d.cfg.IncludeVolume {
			chans = append(chans, channel{pop: pop, volume: true, packets: false})
			chans = append(chans, channel{pop: pop, volume: true, packets: true})
		}
	}
	return chans
}

// matrix assembles the bins × channels measurement matrix.
func (d *Detector) matrix(data []binData, channels []channel) *linalg.Matrix {
	y := linalg.NewMatrix(len(data), len(channels))
	for i := range data {
		for j, ch := range channels {
			var v float64
			switch {
			case ch.volume && ch.packets:
				v = math.Log1p(data[i].pkts[ch.pop])
			case ch.volume:
				v = math.Log1p(data[i].flows[ch.pop])
			default:
				v = data[i].dists[ch.pop][ch.feature].NormEntropy()
			}
			y.Set(i, j, v)
		}
	}
	return y
}

// subspaceDim picks the principal subspace dimension.
func (d *Detector) subspaceDim(eigvals []float64) int {
	total := 0.0
	for _, v := range eigvals {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return 1
	}
	cum := 0.0
	for i, v := range eigvals {
		if v > 0 {
			cum += v
		}
		if cum/total >= d.cfg.VarianceFraction || i+1 >= d.cfg.MaxComponents {
			return i + 1
		}
	}
	return len(eigvals)
}

// qThreshold computes the Jackson-Mudholkar Q-statistic threshold at
// false-alarm rate alpha from the residual-subspace eigenvalues.
func qThreshold(eigvals []float64, p int, alpha float64) float64 {
	var th1, th2, th3 float64
	for _, l := range eigvals[min(p, len(eigvals)):] {
		if l < 0 {
			l = 0 // numerical noise on rank-deficient covariances
		}
		th1 += l
		th2 += l * l
		th3 += l * l * l
	}
	if th1 <= 0 || th2 <= 0 {
		return math.NaN()
	}
	h0 := 1 - 2*th1*th3/(3*th2*th2)
	if h0 < 0.001 {
		h0 = 0.001
	}
	ca := stats.NormQuantile(1 - alpha)
	term := ca*math.Sqrt(2*th2*h0*h0)/th1 + 1 + th2*h0*(h0-1)/(th1*th1)
	if term <= 0 {
		return math.NaN()
	}
	return th1 * math.Pow(term, 1/h0)
}

// topDeviantColumns returns the indexes of the k largest |standardized
// deviation| entries, descending.
func topDeviantColumns(res []float64, k int) []int {
	idx := make([]int, len(res))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := math.Abs(res[idx[a]]), math.Abs(res[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	return idx
}

// drillDown turns attributed columns into concrete meta-data by comparing
// the flagged bin's value distribution against the preceding bin's: the
// values whose traffic share grew most are reported.
func (d *Detector) drillDown(data []binData, row int, cols []int, channels []channel) []detector.MetaItem {
	var meta []detector.MetaItem
	seen := make(map[detector.MetaItem]bool)
	add := func(m detector.MetaItem) {
		if !seen[m] {
			seen[m] = true
			meta = append(meta, m)
		}
	}
	for _, col := range cols {
		ch := channels[col]
		if ch.volume {
			// Volume channel: report the dominating endpoints at this PoP.
			// Packet-volume alarms rank by packets (a point-to-point flood
			// owns the packet distribution while adding almost no flows);
			// flow-volume alarms rank by the flow-weighted distributions.
			var srcDist, dstDist *stats.Dist
			if ch.packets {
				srcDist = data[row].pktSrc[ch.pop]
				dstDist = data[row].pktDst[ch.pop]
			} else {
				srcDist = data[row].dists[ch.pop][flow.FeatSrcIP]
				dstDist = data[row].dists[ch.pop][flow.FeatDstIP]
			}
			if srcDist != nil && srcDist.Total() > 0 {
				for _, vw := range srcDist.Top(1) {
					if vw.Weight/srcDist.Total() >= d.cfg.MinMetaShare {
						add(detector.MetaItem{Feature: flow.FeatSrcIP, Value: vw.Value})
					}
				}
			}
			if dstDist != nil && dstDist.Total() > 0 {
				for _, vw := range dstDist.Top(1) {
					if vw.Weight/dstDist.Total() >= d.cfg.MinMetaShare {
						add(detector.MetaItem{Feature: flow.FeatDstIP, Value: vw.Value})
					}
				}
			}
			continue
		}
		cur := data[row].dists[ch.pop][ch.feature]
		var ref *stats.Dist
		if row > 0 {
			ref = data[row-1].dists[ch.pop][ch.feature]
		}
		for _, g := range topGainers(cur, ref, d.cfg.TopValues) {
			if g.gain >= d.cfg.MinMetaGain {
				add(detector.MetaItem{Feature: ch.feature, Value: g.value})
			}
		}
	}
	return meta
}

// shareGain is a feature value with its traffic-share gain against the
// reference bin.
type shareGain struct {
	value uint32
	gain  float64
}

// topGainers returns up to k values of cur ranked by traffic-share gain
// over ref (which may be nil or empty, in which case plain share ranks).
func topGainers(cur, ref *stats.Dist, k int) []shareGain {
	var gains []shareGain
	cur.Values(func(v uint32, w float64) {
		share := w / cur.Total()
		refShare := 0.0
		if ref != nil && ref.Total() > 0 {
			refShare = ref.Weight(v) / ref.Total()
		}
		gains = append(gains, shareGain{value: v, gain: share - refShare})
	})
	sort.Slice(gains, func(i, j int) bool {
		if gains[i].gain != gains[j].gain {
			return gains[i].gain > gains[j].gain
		}
		return gains[i].value < gains[j].value
	})
	if len(gains) > k {
		gains = gains[:k]
	}
	return gains
}
