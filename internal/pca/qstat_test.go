package pca

import (
	"math"
	"testing"
)

func TestQThresholdBasics(t *testing.T) {
	// Residual eigenvalues all equal: threshold is finite, positive, and
	// grows as alpha shrinks (stricter false-alarm rate = higher bar).
	eig := []float64{10, 5, 1, 1, 1, 1}
	q1 := qThreshold(eig, 2, 0.01)
	q2 := qThreshold(eig, 2, 0.001)
	if math.IsNaN(q1) || q1 <= 0 {
		t.Fatalf("q(0.01) = %v", q1)
	}
	if q2 <= q1 {
		t.Fatalf("stricter alpha must raise the threshold: %v <= %v", q2, q1)
	}
	// Threshold exceeds the residual energy mean (theta1).
	if q1 <= 4 {
		t.Fatalf("q = %v should exceed the residual variance sum", q1)
	}
}

func TestQThresholdDegenerate(t *testing.T) {
	// No residual subspace at all -> NaN (caller treats as "no alarms").
	if q := qThreshold([]float64{5, 3}, 2, 0.001); !math.IsNaN(q) {
		t.Fatalf("empty residual must be NaN, got %v", q)
	}
	// Negative eigenvalues (numerical noise) are clamped, not propagated.
	q := qThreshold([]float64{5, 3, 1e-12, -1e-13}, 2, 0.001)
	if math.IsNaN(q) || q < 0 {
		t.Fatalf("noise eigenvalues broke the threshold: %v", q)
	}
}

func TestSubspaceDim(t *testing.T) {
	d := MustNew(DefaultConfig())
	// 95% of variance in the first two components (10/10.5).
	eig := []float64{7, 3, 0.3, 0.2}
	p := d.subspaceDim(eig)
	if p != 2 {
		t.Fatalf("subspaceDim = %d, want 2 (0.92 fraction)", p)
	}
	// All-zero eigenvalues degenerate to 1.
	if got := d.subspaceDim([]float64{0, 0}); got != 1 {
		t.Fatalf("zero-variance dim = %d", got)
	}
	// MaxComponents caps the dimension.
	cfg := DefaultConfig()
	cfg.MaxComponents = 1
	d2 := MustNew(cfg)
	if got := d2.subspaceDim(eig); got != 1 {
		t.Fatalf("cap ignored: %d", got)
	}
}

func TestTopDeviantColumns(t *testing.T) {
	res := []float64{1, -5, 3, 0}
	cols := topDeviantColumns(res, 2)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Fatalf("topDeviantColumns = %v", cols)
	}
	// k beyond length returns everything.
	if got := topDeviantColumns(res, 10); len(got) != 4 {
		t.Fatalf("unbounded k = %v", got)
	}
}
