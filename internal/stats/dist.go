package stats

import (
	"math"
	"sort"
)

// Dist is an empirical distribution over discrete uint32 values (addresses,
// ports, protocol numbers) with float64 weights. Both entropy detectors
// build one Dist per traffic feature per time bin; weights are flow counts
// (Lakhina'05 style) or packet counts.
type Dist struct {
	w     map[uint32]float64
	total float64
}

// NewDist returns an empty distribution.
func NewDist() *Dist {
	return &Dist{w: make(map[uint32]float64)}
}

// Add accumulates weight for a value. Negative weights are ignored: the
// detectors only ever add counts, and silently absorbing a bad weight is
// preferable to corrupting the entropy of an entire bin.
func (d *Dist) Add(value uint32, weight float64) {
	if weight <= 0 {
		return
	}
	d.w[value] += weight
	d.total += weight
}

// Total returns the summed weight.
func (d *Dist) Total() float64 { return d.total }

// Support returns the number of distinct values observed.
func (d *Dist) Support() int { return len(d.w) }

// Weight returns the accumulated weight of a value.
func (d *Dist) Weight(value uint32) float64 { return d.w[value] }

// Prob returns the empirical probability of a value.
func (d *Dist) Prob(value uint32) float64 {
	if d.total == 0 {
		return 0
	}
	return d.w[value] / d.total
}

// Entropy returns the Shannon entropy H = -Σ p log2 p in bits.
// An empty distribution has zero entropy. Summation runs in sorted value
// order so the result is bit-for-bit reproducible across runs (map
// iteration order would otherwise reorder the floating-point sum).
func (d *Dist) Entropy() float64 {
	if d.total == 0 {
		return 0
	}
	h := 0.0
	for _, v := range d.sortedValues() {
		p := d.w[v] / d.total
		h -= p * math.Log2(p)
	}
	return h
}

// sortedValues returns the support in ascending value order.
func (d *Dist) sortedValues() []uint32 {
	vals := make([]uint32, 0, len(d.w))
	for v := range d.w {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// NormEntropy returns the entropy normalized to [0, 1] by log2 of the
// support size, the form Lakhina et al. feed to the subspace method so that
// features with different alphabet sizes are comparable. A distribution
// with a single value has normalized entropy 0.
func (d *Dist) NormEntropy() float64 {
	n := len(d.w)
	if n <= 1 {
		return 0
	}
	return d.Entropy() / math.Log2(float64(n))
}

// ValueWeight pairs a value with its accumulated weight, as returned by Top.
type ValueWeight struct {
	Value  uint32
	Weight float64
}

// Top returns the k heaviest values in descending weight order (ties broken
// by ascending value for determinism). It is used for meta-data drill-down:
// "which addresses dominate the bins that moved".
func (d *Dist) Top(k int) []ValueWeight {
	if k <= 0 {
		return nil
	}
	all := make([]ValueWeight, 0, len(d.w))
	for v, w := range d.w {
		all = append(all, ValueWeight{Value: v, Weight: w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Weight != all[j].Weight {
			return all[i].Weight > all[j].Weight
		}
		return all[i].Value < all[j].Value
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// KL returns the Kullback-Leibler divergence D(d || ref) in bits, with
// additive smoothing so that values present in d but absent from ref do not
// produce infinities. This is the distance the histogram detector (Kind et
// al., TNSM'09) thresholds: eps is the smoothing pseudo-weight given to
// every value in the union of supports.
func (d *Dist) KL(ref *Dist, eps float64) float64 {
	if d.total == 0 {
		return 0
	}
	if eps <= 0 {
		eps = 1e-9
	}
	// Union of supports, iterated in sorted order for reproducible sums.
	union := make(map[uint32]struct{}, len(d.w)+len(ref.w))
	for v := range d.w {
		union[v] = struct{}{}
	}
	for v := range ref.w {
		union[v] = struct{}{}
	}
	vals := make([]uint32, 0, len(union))
	for v := range union {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	n := float64(len(union))
	dTot := d.total + eps*n
	rTot := ref.total + eps*n
	kl := 0.0
	for _, v := range vals {
		p := (d.w[v] + eps) / dTot
		q := (ref.w[v] + eps) / rTot
		kl += p * math.Log2(p/q)
	}
	if kl < 0 {
		// Smoothing can introduce tiny negative rounding; clamp.
		kl = 0
	}
	return kl
}

// Merge adds every value of other into d with a multiplier. The histogram
// detector uses Merge with fractional multipliers to maintain an EWMA
// reference distribution.
func (d *Dist) Merge(other *Dist, mult float64) {
	if mult <= 0 {
		return
	}
	for v, w := range other.w {
		d.Add(v, w*mult)
	}
}

// Scale multiplies every weight by mult (> 0).
func (d *Dist) Scale(mult float64) {
	if mult <= 0 {
		return
	}
	for v := range d.w {
		d.w[v] *= mult
	}
	d.total *= mult
}

// Clone returns a deep copy.
func (d *Dist) Clone() *Dist {
	c := &Dist{w: make(map[uint32]float64, len(d.w)), total: d.total}
	for v, w := range d.w {
		c.w[v] = w
	}
	return c
}

// Values iterates over all (value, weight) pairs in unspecified order.
func (d *Dist) Values(fn func(value uint32, weight float64)) {
	for v, w := range d.w {
		fn(v, w)
	}
}
