package stats

import (
	"math"
	"sort"
)

// Welford is a streaming mean/variance estimator (Welford's algorithm).
// Detector thresholds of the form μ + kσ over training windows use it, as
// does the Q-statistic computation in the PCA detector.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha forgets faster.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor. alpha outside
// (0, 1] is clamped into range.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Add feeds one observation; the first observation primes the average.
func (e *EWMA) Add(x float64) {
	if !e.primed {
		e.value = x
		e.primed = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before priming).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one observation has been fed.
func (e *EWMA) Primed() bool { return e.primed }

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation on a sorted copy. It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanStd returns the mean and sample standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.Std()
}
