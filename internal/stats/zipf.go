package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^s.
// Address and port popularity in backbone traffic is classically Zipfian;
// the generator draws client/server addresses and service ports from
// bounded Zipf distributions.
//
// The implementation precomputes the cumulative distribution and samples by
// binary search: exact, allocation-free per draw, and O(log N) — the
// population sizes used by the generator (≤ a few hundred thousand) make
// the precomputed table cheap.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i+1)
}

// NewZipf builds a bounded Zipf sampler over n ranks with exponent s.
// It returns an error when n < 1 or s < 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: Zipf needs n >= 1, got %d", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("stats: Zipf needs s >= 0, got %v", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}, nil
}

// MustZipf is NewZipf that panics on invalid parameters; for use with
// compile-time-constant parameters in generators and tests.
func MustZipf(n int, s float64) *Zipf {
	z, err := NewZipf(n, s)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws a rank in [0, N), rank 0 being the most popular.
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of rank i (0-based).
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
