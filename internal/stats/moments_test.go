package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford must be usable and zero")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		directVar := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-directVar) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Fatal("fresh EWMA must not be primed")
	}
	e.Add(10)
	if !e.Primed() || e.Value() != 10 {
		t.Fatalf("first Add must prime: %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA(0.5) after 10,20 = %v, want 15", e.Value())
	}
	// Clamping.
	if NewEWMA(-1).alpha <= 0 || NewEWMA(5).alpha > 1 {
		t.Fatal("alpha must be clamped into (0,1]")
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("EWMA of constant stream = %v", e.Value())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty slice must be NaN")
	}
	// Out-of-range q is clamped.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Error("q must clamp to [0,1]")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile must not sort the caller's slice")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("MeanStd = %v, %v", mean, std)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.999, 3.090232},
		{0.025, -1.959964},
		{0.84134, 0.99998}, // ≈ Φ(1)
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("edge quantiles must be infinite")
	}
	if !math.IsInf(NormQuantile(math.NaN()), -1) {
		t.Error("NaN input must map to -Inf")
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	// Φ(Φ⁻¹(p)) ≈ p via erf-based CDF.
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
		if got := cdf(NormQuantile(p)); math.Abs(got-p) > 1e-6 {
			t.Errorf("round trip at p=%v: %v", p, got)
		}
	}
}
