// Package stats provides the deterministic random sampling and
// distribution/entropy machinery shared by the trace generator and the
// anomaly detectors: a seedable RNG with independent substreams, bounded
// Zipf and Pareto samplers (heavy-tailed backbone traffic), empirical
// distributions, Shannon entropy and Kullback-Leibler divergence, and
// streaming moment estimators.
//
// Everything here is purposely deterministic: the paper's evaluation is
// re-run as a benchmark suite, and bit-for-bit reproducibility of the
// synthetic GEANT/SWITCH stand-in traces is what makes the reported
// numbers auditable.
package stats
