package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	d := NewDist()
	if d.Entropy() != 0 || d.Total() != 0 || d.Support() != 0 {
		t.Fatal("empty distribution must be all zeros")
	}
	d.Add(1, 2)
	d.Add(2, 2)
	if d.Total() != 4 || d.Support() != 2 {
		t.Fatalf("Total=%v Support=%v", d.Total(), d.Support())
	}
	if math.Abs(d.Entropy()-1) > 1e-12 {
		t.Fatalf("uniform over 2 values must have entropy 1 bit, got %v", d.Entropy())
	}
	if math.Abs(d.Prob(1)-0.5) > 1e-12 {
		t.Fatalf("Prob(1) = %v", d.Prob(1))
	}
	d.Add(3, -5) // ignored
	if d.Total() != 4 {
		t.Fatal("negative weights must be ignored")
	}
}

func TestEntropyBounds(t *testing.T) {
	// Entropy of n uniform values is log2(n); normalized entropy is 1.
	for _, n := range []int{2, 4, 16, 100} {
		d := NewDist()
		for i := 0; i < n; i++ {
			d.Add(uint32(i), 1)
		}
		if math.Abs(d.Entropy()-math.Log2(float64(n))) > 1e-9 {
			t.Fatalf("uniform(%d) entropy = %v", n, d.Entropy())
		}
		if math.Abs(d.NormEntropy()-1) > 1e-9 {
			t.Fatalf("uniform(%d) normalized entropy = %v", n, d.NormEntropy())
		}
	}
	// Point mass has zero entropy.
	d := NewDist()
	d.Add(42, 100)
	if d.Entropy() != 0 || d.NormEntropy() != 0 {
		t.Fatal("point mass must have zero entropy")
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	f := func(values []uint32, weights []uint8) bool {
		d := NewDist()
		for i, v := range values {
			w := 1.0
			if i < len(weights) {
				w = float64(weights[i]) + 1
			}
			d.Add(v, w)
		}
		h := d.Entropy()
		hn := d.NormEntropy()
		return h >= 0 && hn >= -1e-12 && hn <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKLProperties(t *testing.T) {
	p := NewDist()
	q := NewDist()
	for i := uint32(0); i < 10; i++ {
		p.Add(i, float64(i+1))
		q.Add(i, float64(i+1))
	}
	if kl := p.KL(q, 1e-6); kl > 1e-6 {
		t.Fatalf("KL(p||p) = %v, want ≈ 0", kl)
	}
	// Diverging distributions have positive KL, growing with divergence.
	q2 := q.Clone()
	q2.Add(99, 50)
	kl1 := q2.KL(q, 1e-6)
	if kl1 <= 0 {
		t.Fatalf("KL after shift = %v, want > 0", kl1)
	}
	q3 := q.Clone()
	q3.Add(99, 500)
	kl2 := q3.KL(q, 1e-6)
	if kl2 <= kl1 {
		t.Fatalf("bigger shift must give bigger KL: %v <= %v", kl2, kl1)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		p, q := NewDist(), NewDist()
		for _, v := range a {
			p.Add(uint32(v%16), 1)
		}
		for _, v := range b {
			q.Add(uint32(v%16), 1)
		}
		return p.KL(q, 1e-6) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTop(t *testing.T) {
	d := NewDist()
	d.Add(10, 5)
	d.Add(20, 50)
	d.Add(30, 20)
	d.Add(40, 50) // tie with 20 — ascending value breaks the tie
	top := d.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d", len(top))
	}
	if top[0].Value != 20 || top[1].Value != 40 || top[2].Value != 30 {
		t.Fatalf("Top order = %+v", top)
	}
	if got := d.Top(0); got != nil {
		t.Fatal("Top(0) must be nil")
	}
	if got := d.Top(99); len(got) != 4 {
		t.Fatalf("Top(99) = %d entries, want all 4", len(got))
	}
}

func TestMergeScaleClone(t *testing.T) {
	a := NewDist()
	a.Add(1, 10)
	b := NewDist()
	b.Add(1, 10)
	b.Add(2, 20)
	a.Merge(b, 0.5)
	if math.Abs(a.Weight(1)-15) > 1e-12 || math.Abs(a.Weight(2)-10) > 1e-12 {
		t.Fatalf("Merge result: w(1)=%v w(2)=%v", a.Weight(1), a.Weight(2))
	}
	c := a.Clone()
	c.Scale(2)
	if math.Abs(c.Total()-2*a.Total()) > 1e-9 {
		t.Fatalf("Scale total = %v", c.Total())
	}
	if a.Weight(1) != 15 {
		t.Fatal("Clone must not alias parent")
	}
	// Entropy is scale-invariant.
	if math.Abs(c.Entropy()-a.Entropy()) > 1e-9 {
		t.Fatal("entropy must be invariant under scaling")
	}
}

func TestValuesIteration(t *testing.T) {
	d := NewDist()
	d.Add(5, 1)
	d.Add(6, 2)
	sum := 0.0
	d.Values(func(v uint32, w float64) { sum += w })
	if sum != 3 {
		t.Fatalf("Values iterated total %v", sum)
	}
}
