package stats

import (
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative s must error")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NaN s must error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustZipf must panic on bad input")
		}
	}()
	MustZipf(0, 1)
}

func TestZipfRankDistribution(t *testing.T) {
	z := MustZipf(100, 1.0)
	r := NewRNG(11)
	counts := make([]int, 100)
	const n = 300000
	for i := 0; i < n; i++ {
		rank := z.Rank(r)
		if rank < 0 || rank >= 100 {
			t.Fatalf("rank out of bounds: %d", rank)
		}
		counts[rank]++
	}
	// Empirical frequencies should match Prob within sampling noise for the
	// popular ranks.
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / n
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d frequency %v, want ≈ %v", i, got, want)
		}
	}
	// Rank 0 must dominate rank 99 decisively for s=1.
	if counts[0] < counts[99]*10 {
		t.Fatalf("rank 0 (%d) should dwarf rank 99 (%d)", counts[0], counts[99])
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := MustZipf(1000, 1.2)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Fatal("out-of-range Prob must be 0")
	}
}

func TestZipfUniformSpecialCase(t *testing.T) {
	// s=0 degenerates to uniform.
	z := MustZipf(50, 0)
	for i := 0; i < 50; i++ {
		if math.Abs(z.Prob(i)-0.02) > 1e-9 {
			t.Fatalf("s=0 Prob(%d) = %v, want 0.02", i, z.Prob(i))
		}
	}
}
