package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds coincided %d times in 1000 draws", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different labels must differ")
	}
	// Forking must not consume parent state.
	before := NewRNG(7).Uint64()
	r2 := NewRNG(7)
	_ = r2.Fork(99)
	if r2.Uint64() != before {
		t.Fatal("Fork must not advance the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("Intn(10) never produced %d in 10000 draws", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp(5) sample mean = %v", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(3)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Norm(10, 2))
	}
	if math.Abs(w.Mean()-10) > 0.05 {
		t.Fatalf("Norm mean = %v", w.Mean())
	}
	if math.Abs(w.Std()-2) > 0.05 {
		t.Fatalf("Norm std = %v", w.Std())
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(4)
	const n = 100000
	const alpha, xm = 1.5, 1.0
	exceed := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v > 10 {
			exceed++
		}
	}
	// P(X > 10) = (xm/10)^alpha ≈ 0.0316.
	got := float64(exceed) / n
	if math.Abs(got-0.0316) > 0.005 {
		t.Fatalf("Pareto tail P(X>10) = %v, want ≈ 0.0316", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(5)
	for _, mean := range []float64{0.5, 4, 32, 200} {
		var w Welford
		for i := 0; i < 50000; i++ {
			w.Add(float64(r.Poisson(mean)))
		}
		if math.Abs(w.Mean()-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, w.Mean())
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestBinomialMeanAndBounds(t *testing.T) {
	r := NewRNG(6)
	cases := []struct {
		n uint64
		p float64
	}{
		{100, 0.5},      // exact path
		{1000, 0.01},    // Poisson path
		{1000000, 0.01}, // normal path (sampling 1/100 of a flood flow)
	}
	for _, c := range cases {
		var w Welford
		for i := 0; i < 20000; i++ {
			k := r.Binomial(c.n, c.p)
			if k > c.n {
				t.Fatalf("Binomial(%d,%v) = %d exceeds n", c.n, c.p, k)
			}
			w.Add(float64(k))
		}
		want := float64(c.n) * c.p
		if math.Abs(w.Mean()-want) > want*0.05+0.1 {
			t.Fatalf("Binomial(%d,%v) mean = %v, want ≈ %v", c.n, c.p, w.Mean(), want)
		}
	}
	if r.Binomial(0, 0.5) != 0 || r.Binomial(10, 0) != 0 {
		t.Fatal("degenerate binomials must be 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("p=1 must return n")
	}
}
