package stats

import "math"

// RNG is a small, fast, seedable pseudo-random generator (SplitMix64).
// It is NOT cryptographically secure; it exists so that every synthetic
// trace and every experiment is reproducible from an explicit seed, and so
// that substreams (per anomaly, per PoP) can be forked without correlation.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent substream labeled by label. Records drawn
// from a fork do not correlate with the parent stream, so injectors can be
// added or removed without perturbing background traffic.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the label through one SplitMix64 round of a copy of the state.
	x := r.state + 0x9e3779b97f4a7c15*(label+1)
	x = mix64(x)
	return &RNG{state: x}
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint32 returns 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed value (Box-Muller) with the given
// mean and standard deviation.
func (r *RNG) Norm(mean, sd float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + sd*z
}

// Pareto returns a Pareto(shape alpha, scale xm) value: the canonical
// heavy-tailed model for flow sizes in backbone traffic. alpha <= 1 yields
// infinite mean; the generator uses alpha in (1, 2) so totals stay finite
// while the tail still produces elephant flows.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 64 (the
// generator only needs per-bin flow counts, where the approximation error
// is far below the background noise).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := r.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial returns a Binomial(n, p) count. Packet sampling thins each
// flow's packet count binomially; n can reach millions for flood flows, so
// a normal approximation kicks in when n*p(1-p) is large enough.
func (r *RNG) Binomial(n uint64, p float64) uint64 {
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	nf := float64(n)
	if v := nf * p * (1 - p); v >= 25 {
		// Normal approximation with continuity correction.
		g := r.Norm(nf*p, math.Sqrt(v))
		if g < 0 {
			return 0
		}
		if g > nf {
			return n
		}
		return uint64(g + 0.5)
	}
	if nf*p < 25 && p < 0.1 {
		// Poisson approximation for rare events keeps this O(np).
		k := uint64(r.Poisson(nf * p))
		if k > n {
			return n
		}
		return k
	}
	var k uint64
	for i := uint64(0); i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}
