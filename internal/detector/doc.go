// Package detector defines the contract between anomaly detectors and the
// extraction system: an Alarm names a time interval, a coarse label, and
// fine-grained meta-data (feature/value pairs such as the affected IPs and
// ports). The paper's architecture (Figure 1) keeps detectors pluggable —
// "our system ... can be integrated with any anomaly detection system that
// provides these data" — and this package is that seam: the histogram/KL
// detector, the PCA subspace detector and the simulated NetReflex all emit
// the same Alarm type, and the extraction engine consumes nothing else.
package detector
