package detector

import (
	"strings"
	"testing"

	"repro/internal/flow"
)

func TestMetaItemString(t *testing.T) {
	m := MetaItem{Feature: flow.FeatSrcIP, Value: uint32(flow.MustParseIP("10.191.64.165"))}
	if m.String() != "srcIP=10.191.64.165" {
		t.Fatalf("MetaItem.String = %q", m.String())
	}
}

func TestMetaItemNodeMatchesCorrectSide(t *testing.T) {
	r := &flow.Record{
		SrcIP: flow.MustParseIP("10.0.0.1"), DstIP: flow.MustParseIP("10.0.0.2"),
		SrcPort: 1000, DstPort: 80, Proto: flow.ProtoTCP, Packets: 1, Bytes: 40,
	}
	cases := []struct {
		m    MetaItem
		want bool
	}{
		{MetaItem{flow.FeatSrcIP, uint32(r.SrcIP)}, true},
		{MetaItem{flow.FeatSrcIP, uint32(r.DstIP)}, false}, // src-qualified
		{MetaItem{flow.FeatDstIP, uint32(r.DstIP)}, true},
		{MetaItem{flow.FeatSrcPort, 1000}, true},
		{MetaItem{flow.FeatSrcPort, 80}, false},
		{MetaItem{flow.FeatDstPort, 80}, true},
		{MetaItem{flow.FeatProto, uint32(flow.ProtoTCP)}, true},
		{MetaItem{flow.FeatProto, uint32(flow.ProtoUDP)}, false},
	}
	for _, c := range cases {
		if got := c.m.Node().Eval(r); got != c.want {
			t.Errorf("%v matched=%v, want %v", c.m, got, c.want)
		}
	}
}

func TestMetaFilterUnion(t *testing.T) {
	a := Alarm{
		Meta: []MetaItem{
			{flow.FeatSrcIP, uint32(flow.MustParseIP("10.0.0.1"))},
			{flow.FeatDstPort, 80},
		},
	}
	f := a.MetaFilter()
	if f == nil {
		t.Fatal("MetaFilter must not be nil with meta present")
	}
	// Record matching only the second item must pass (union semantics).
	r := &flow.Record{
		SrcIP: flow.MustParseIP("99.9.9.9"), DstIP: flow.MustParseIP("10.0.0.2"),
		DstPort: 80, Proto: flow.ProtoTCP, Packets: 1, Bytes: 40,
	}
	if !f.Match(r) {
		t.Fatal("union filter must match on any meta item")
	}
	r2 := &flow.Record{
		SrcIP: flow.MustParseIP("99.9.9.9"), DstIP: flow.MustParseIP("10.0.0.2"),
		DstPort: 443, Proto: flow.ProtoTCP, Packets: 1, Bytes: 40,
	}
	if f.Match(r2) {
		t.Fatal("filter must reject records matching no meta item")
	}
	var empty Alarm
	if empty.MetaFilter() != nil {
		t.Fatal("empty meta must produce nil filter")
	}
}

func TestAlarmString(t *testing.T) {
	a := Alarm{
		Detector: "netreflex",
		Kind:     KindPortScan,
		Interval: flow.Interval{Start: 0, End: 300},
		Score:    12.5,
		Meta:     []MetaItem{{flow.FeatDstPort, 80}},
	}
	s := a.String()
	for _, want := range []string{"netreflex", "port scan", "dstPort=80", "12.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Alarm.String %q missing %q", s, want)
		}
	}
}
