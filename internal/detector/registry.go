package detector

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a detector from an optional configuration value. A nil
// cfg asks for the detector's defaults; otherwise the factory
// type-asserts its own Config type (netreflex.Config, histogram.Config,
// pca.Config, ...) and rejects anything else. This keeps the registry
// free of per-detector knowledge — the paper's pluggability seam.
type Factory func(cfg any) (Detector, error)

// registry holds the named detector factories. Built-in detectors
// self-register from their packages' init functions; external detectors
// register through rootcause.RegisterDetector.
var registry = struct {
	mu        sync.RWMutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register adds a named detector factory. The name must be non-empty and
// not already taken.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("detector: register with empty name")
	}
	if f == nil {
		return fmt.Errorf("detector: register %q with nil factory", name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("detector: %q already registered", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register that panics on error; for package init use.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Names lists the registered detector names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the named detector, passing cfg to its factory (nil = the
// detector's defaults).
func New(name string, cfg any) (Detector, error) {
	registry.mu.RLock()
	f, ok := registry.factories[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("detector: unknown detector %q (have %v)", name, Names())
	}
	return f(cfg)
}

// CoerceConfig resolves a factory's untyped cfg argument to the
// detector's own Config type: nil yields def, a T or *T is used as-is,
// anything else is an error. The shared shape of every built-in
// factory.
func CoerceConfig[T any](cfg any, def T) (T, error) {
	switch v := cfg.(type) {
	case nil:
		return def, nil
	case T:
		return v, nil
	case *T:
		return *v, nil
	default:
		var zero T
		return zero, fmt.Errorf("bad config type %T (want %T)", cfg, zero)
	}
}
