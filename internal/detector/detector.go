package detector

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// MetaItem is one feature/value pair of alarm meta-data, e.g.
// "srcIP=X.191.64.165" or "dstPort=80".
type MetaItem struct {
	Feature flow.Feature
	Value   uint32
}

// String renders the meta item as "feature=value".
func (m MetaItem) String() string {
	return m.Feature.String() + "=" + m.Feature.FormatValue(m.Value)
}

// Node returns the filter predicate matching flows that carry this
// feature value (src/dst qualified for addresses and ports).
func (m MetaItem) Node() nffilter.Node {
	switch m.Feature {
	case flow.FeatSrcIP:
		return &nffilter.IPMatch{Dir: nffilter.DirSrc, Addr: flow.IP(m.Value)}
	case flow.FeatDstIP:
		return &nffilter.IPMatch{Dir: nffilter.DirDst, Addr: flow.IP(m.Value)}
	case flow.FeatSrcPort:
		return &nffilter.PortMatch{Dir: nffilter.DirSrc, Op: nffilter.CmpEq, Port: uint16(m.Value)}
	case flow.FeatDstPort:
		return &nffilter.PortMatch{Dir: nffilter.DirDst, Op: nffilter.CmpEq, Port: uint16(m.Value)}
	case flow.FeatProto:
		return &nffilter.ProtoMatch{Proto: flow.Protocol(m.Value)}
	default:
		return nffilter.Any{}
	}
}

// Kind is the detector's coarse classification of an alarm. Values mirror
// the anomaly classes discussed in the paper's GEANT evaluation.
type Kind string

// Alarm kinds. The first block mirrors the anomaly classes of the paper's
// GEANT evaluation; the second covers the extended scenario catalog
// (internal/gen, docs/scenarios.md).
const (
	KindUnknown   Kind = "unknown"
	KindPortScan  Kind = "port scan"
	KindNetScan   Kind = "network scan"
	KindDoS       Kind = "dos"
	KindDDoS      Kind = "ddos"
	KindUDPFlood  Kind = "udp flood"
	KindFlashEvnt Kind = "flash event"

	KindAmplification Kind = "amplification ddos"
	KindICMPFlood     Kind = "icmp flood"
	KindBotnetScan    Kind = "botnet scan"
	KindOutage        Kind = "link outage"
	KindRoutingShift  Kind = "routing shift"
	KindSpam          Kind = "spam campaign"
)

// Alarm is one detector alarm: the flagged measurement interval, the
// detector's classification and score, and the meta-data the extraction
// system starts from.
type Alarm struct {
	// ID is assigned by the alarm database; empty until stored.
	ID string
	// Detector names the detector that raised the alarm.
	Detector string
	// Interval is the flagged measurement bin (or a union of bins).
	Interval flow.Interval
	// Kind is the detector's coarse label.
	Kind Kind
	// Score is a detector-specific magnitude (KL distance, SPE, ...);
	// larger means more anomalous. Scores are not comparable across
	// detectors.
	Score float64
	// Meta is the fine-grained meta-data, possibly incomplete (the paper's
	// premise is exactly that detectors under-report meta-data).
	Meta []MetaItem
}

// MetaFilter returns the candidate pre-filter implied by the alarm's
// meta-data: the union (OR) of all meta items, per the paper's GUI, which
// "starts from the meta-data provided by the anomaly detection tool" and
// considers flows matching any of the signaled feature values. A nil
// return means no meta-data — callers should fall back to the full
// interval.
func (a *Alarm) MetaFilter() *nffilter.Filter {
	if len(a.Meta) == 0 {
		return nil
	}
	kids := make([]nffilter.Node, len(a.Meta))
	for i, m := range a.Meta {
		kids[i] = m.Node()
	}
	return nffilter.FromNode(&nffilter.Or{Kids: kids})
}

// MetaSignature returns the filter matching exactly the flows the
// detector's meta-data describes: values of the same feature are OR-ed,
// different features AND-ed ("(srcIP=a or srcIP=b) and dstPort=80").
// This is "the flows provided by the detector" — the paper's
// additional-evidence statistic counts anomalous flows outside it.
// A nil return means no meta-data.
func (a *Alarm) MetaSignature() *nffilter.Filter {
	if len(a.Meta) == 0 {
		return nil
	}
	byFeature := make(map[flow.Feature][]nffilter.Node)
	var order []flow.Feature
	for _, m := range a.Meta {
		if _, seen := byFeature[m.Feature]; !seen {
			order = append(order, m.Feature)
		}
		byFeature[m.Feature] = append(byFeature[m.Feature], m.Node())
	}
	kids := make([]nffilter.Node, 0, len(order))
	for _, f := range order {
		nodes := byFeature[f]
		if len(nodes) == 1 {
			kids = append(kids, nodes[0])
		} else {
			kids = append(kids, &nffilter.Or{Kids: nodes})
		}
	}
	return nffilter.FromNode(&nffilter.And{Kids: kids})
}

// String renders a one-line operator summary of the alarm.
func (a *Alarm) String() string {
	metas := make([]string, len(a.Meta))
	for i, m := range a.Meta {
		metas[i] = m.String()
	}
	return fmt.Sprintf("[%s] %s %s score=%.3f meta={%s}",
		a.Detector, a.Kind, a.Interval, a.Score, strings.Join(metas, ", "))
}

// Detector is an anomaly detector running over a flow store.
type Detector interface {
	// Name identifies the detector in alarms it raises.
	Name() string
	// Detect scans the span (aligned to store bins) and returns alarms in
	// time order. Implementations must not mutate the store and must
	// honor ctx cancellation, returning ctx.Err() promptly.
	Detect(ctx context.Context, store nfstore.Engine, span flow.Interval) ([]Alarm, error)
}
