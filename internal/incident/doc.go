// Package incident is the layer between detection and extraction: it
// collapses alarm storms into incidents so the mining engine runs once
// per event instead of once per alarm.
//
// At production alert volume one event — a DDoS, a link outage — raises
// alarms across many measurement bins and detectors, and the bottleneck
// shifts from mining speed to alarm volume. The package follows the
// observer shape (CUSUM → stable-Bloom dedup → temporal correlators):
//
//	alarms ──▶ Deduper (stable Bloom) ──▶ TimeCluster ──▶ Incidents
//	                                          │
//	                                      LeadLag chain
//
// Deduper is a stable Bloom filter keyed on (detector, kind,
// signature-ish meta fields, time bucket): repeated alarms from the
// same event collapse probabilistically in bounded memory, with old
// entries decaying so the filter never saturates on an unbounded
// stream. Correlate then clusters the survivors by temporal proximity
// (alarms within ClusterGap of each other join one Incident) and builds
// per-incident lead-lag chains from lag histograms over detector-kind
// pairs ("port scan leads ddos by ~1 bin, confidence 0.9").
//
// ExtractionAlarm merges an incident's member alarms into the single
// alarm its one extraction job runs on: the representative member's
// identity, the union of member intervals, and the union of member
// meta-data — so a composite event (the catalog's portscan-ddos bin)
// is mined once and both causes surface in one ranked list.
//
// Everything is deterministic for a fixed Options: the deduper's decay
// uses a seeded xorshift generator and correlation sorts its input, so
// the same alarms always produce the same incidents (the contract the
// correlator tests pin).
package incident
