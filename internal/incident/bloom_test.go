package incident

import (
	"fmt"
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
)

func TestDeduperTestAndSet(t *testing.T) {
	d, err := NewDeduper(DedupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Seen("a") {
		t.Fatal("fresh key reported seen")
	}
	if !d.Seen("a") {
		t.Fatal("repeated key reported unseen")
	}
	if d.Seen("b") {
		t.Fatal("distinct key reported seen")
	}
	ins, dup := d.Stats()
	if ins != 3 || dup != 1 {
		t.Fatalf("stats = (%d, %d), want (3, 1)", ins, dup)
	}
}

func TestDeduperDeterministic(t *testing.T) {
	run := func() []bool {
		d, err := NewDeduper(DedupConfig{Cells: 1 << 10, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 0, 2000)
		for i := 0; i < 2000; i++ {
			out = append(out, d.Seen(fmt.Sprintf("key-%d", i%700)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("answer %d differs between identical runs", i)
		}
	}
}

// TestDeduperFalsePositiveBound pins the stable-Bloom false-positive
// rate: streaming thousands of distinct keys through the default-sized
// filter, the fraction misreported as already-seen stays under 2%.
func TestDeduperFalsePositiveBound(t *testing.T) {
	d, err := NewDeduper(DedupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	fp := 0
	for i := 0; i < n; i++ {
		if d.Seen(fmt.Sprintf("unique-key-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / n; rate > 0.02 {
		t.Fatalf("false-positive rate %.4f exceeds the 2%% bound (%d/%d)", rate, fp, n)
	}
}

// TestDeduperDecay pins the "stable" property: old entries fade as the
// stream flows, so an idle key is eventually forgotten instead of the
// filter saturating.
func TestDeduperDecay(t *testing.T) {
	d, err := NewDeduper(DedupConfig{Cells: 1 << 8, Decays: 16})
	if err != nil {
		t.Fatal(err)
	}
	d.Seen("old")
	for i := 0; i < 10000; i++ {
		d.Seen(fmt.Sprintf("churn-%d", i))
	}
	if d.Seen("old") {
		t.Fatal("idle key still remembered after heavy churn — filter does not decay")
	}
}

func TestDedupKey(t *testing.T) {
	a := detector.Alarm{
		Detector: "histogram",
		Kind:     detector.KindPortScan,
		Interval: flow.Interval{Start: 1000, End: 1300},
		Meta: []detector.MetaItem{
			{Feature: flow.FeatDstPort, Value: 80},
			{Feature: flow.FeatSrcIP, Value: 42},
		},
	}
	b := a
	// Meta order must not split keys.
	b.Meta = []detector.MetaItem{a.Meta[1], a.Meta[0]}
	// Same bucket (window 300): 1000/300 == 1150/300.
	b.Interval = flow.Interval{Start: 1150, End: 1300}
	if DedupKey(&a, 300) != DedupKey(&b, 300) {
		t.Fatalf("keys differ for same-event alarms:\n%s\n%s", DedupKey(&a, 300), DedupKey(&b, 300))
	}
	c := a
	c.Interval.Start = 1400 // next bucket
	if DedupKey(&a, 300) == DedupKey(&c, 300) {
		t.Fatal("keys collide across time buckets")
	}
	d := a
	d.Detector = "pca"
	if DedupKey(&a, 300) == DedupKey(&d, 300) {
		t.Fatal("keys collide across detectors")
	}
}
