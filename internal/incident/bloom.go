package incident

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/detector"
)

// DedupConfig sizes the stable Bloom deduper. Zero values inherit
// defaults; explicit invalid values error at construction.
type DedupConfig struct {
	// Cells is the number of counter cells (default 1<<15). More cells
	// lower the false-positive rate for the same stream.
	Cells int
	// Hashes is the number of cells one key occupies (default 3).
	Hashes int
	// Max is the value a fresh insert sets its cells to (default 3).
	// Together with Decays it bounds how long an idle key stays
	// remembered: every insert decays Decays random cells by one, so
	// old entries fade instead of saturating the filter.
	Max uint8
	// Decays is how many random cells each insert decrements (default
	// 8). Higher values forget faster.
	Decays int
	// Seed drives the decay cell selection, making a deduper run
	// deterministic (default 0x5b10f17e).
	Seed uint64
}

// Defaults for DedupConfig zero values.
const (
	DefaultDedupCells  = 1 << 15
	DefaultDedupHashes = 3
	DefaultDedupMax    = 3
	DefaultDedupDecays = 8
	defaultDedupSeed   = 0x5b10f17e
)

func (c *DedupConfig) fill() error {
	if c.Cells == 0 {
		c.Cells = DefaultDedupCells
	}
	if c.Hashes == 0 {
		c.Hashes = DefaultDedupHashes
	}
	if c.Max == 0 {
		c.Max = DefaultDedupMax
	}
	if c.Decays == 0 {
		c.Decays = DefaultDedupDecays
	}
	if c.Seed == 0 {
		c.Seed = defaultDedupSeed
	}
	if c.Cells < 0 || c.Hashes < 0 || c.Decays < 0 {
		return fmt.Errorf("incident: negative dedup sizing %+v", *c)
	}
	return nil
}

// Deduper is a stable Bloom filter: a set membership sketch over an
// unbounded stream whose old entries probabilistically decay, so memory
// stays fixed and the false-positive rate converges to a stable bound
// instead of climbing to one. Not safe for concurrent use; callers
// serialize (the correlator runs it over a sorted batch).
type Deduper struct {
	cells   []uint8
	hashes  int
	max     uint8
	decays  int
	rng     uint64 // xorshift64 state for decay cell selection
	inserts uint64
	hits    uint64
}

// NewDeduper builds a deduper from cfg (zero values inherit defaults).
func NewDeduper(cfg DedupConfig) (*Deduper, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Deduper{
		cells:  make([]uint8, cfg.Cells),
		hashes: cfg.Hashes,
		max:    cfg.Max,
		decays: cfg.Decays,
		rng:    cfg.Seed,
	}, nil
}

// next advances the decay RNG (xorshift64).
func (d *Deduper) next() uint64 {
	x := d.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rng = x
	return x
}

// Seen tests-and-inserts one key: it reports whether the key was
// (probably) already present, then refreshes it. The stable-Bloom
// update order matters: decay first, then test, then set — a key
// decayed to zero by its own insert would otherwise misreport.
func (d *Deduper) Seen(key string) bool {
	d.inserts++
	// Decay: forget a little of everything on every insert.
	for i := 0; i < d.decays; i++ {
		c := d.next() % uint64(len(d.cells))
		if d.cells[c] > 0 {
			d.cells[c]--
		}
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	// Double hashing: derive the k cell indexes from two base hashes.
	// The FNV sum is finalized with a strong mixer first — cell counts
	// are powers of two, and raw FNV low bits make the probe stride an
	// affine function of the base index, inflating the false-positive
	// rate several-fold.
	h1 := mix64(h.Sum64())
	h2 := (h1 >> 32) | 1
	seen := true
	for i := 0; i < d.hashes; i++ {
		c := (h1 + uint64(i)*h2) % uint64(len(d.cells))
		if d.cells[c] == 0 {
			seen = false
		}
		d.cells[c] = d.max
	}
	if seen {
		d.hits++
	}
	return seen
}

// mix64 is the 64-bit murmur3 finalizer: a bijective avalanche so every
// output bit depends on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Stats reports inserts processed and how many were suppressed as
// duplicates.
func (d *Deduper) Stats() (inserts, duplicates uint64) {
	return d.inserts, d.hits
}

// DedupKey builds the deduper key of one alarm: the detector, its kind
// classification, the signature-ish meta fields (sorted, so detector
// reporting order does not split keys), and the alarm's start bucketed
// to window seconds. Two alarms share a key exactly when the same
// detector re-reports the same event within one bucket.
func DedupKey(a *detector.Alarm, window uint32) string {
	if window == 0 {
		window = 1
	}
	metas := make([]string, len(a.Meta))
	for i, m := range a.Meta {
		metas[i] = m.String()
	}
	sort.Strings(metas)
	var b strings.Builder
	b.WriteString(a.Detector)
	b.WriteByte('|')
	b.WriteString(string(a.Kind))
	b.WriteByte('|')
	b.WriteString(strings.Join(metas, ","))
	fmt.Fprintf(&b, "|%d", a.Interval.Start/window)
	return b.String()
}
