package incident

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/detector"
	"repro/internal/flow"
)

// Options tunes the dedup + correlation pipeline. Zero values inherit
// defaults (which match the 300 s measurement bins of the paper's
// deployments).
type Options struct {
	// DedupWindow buckets alarm start times for the dedup key, in
	// seconds: repeated alarms from one detector for the same signature
	// within one window collapse to one survivor (default 300, one
	// bin).
	DedupWindow uint32
	// ClusterGap is the TimeCluster joining distance in seconds: an
	// alarm within ClusterGap of a cluster's interval joins it
	// (default 600, two bins — recon one bin before the attack still
	// correlates).
	ClusterGap uint32
	// LagBucket quantizes lead-lag histograms, in seconds (default
	// 300: lags are measured in bins).
	LagBucket uint32
	// MaxLagBuckets bounds the lag considered for one pair (default 8
	// buckets; larger separations are clustering's job, not causality).
	MaxLagBuckets int
	// MinConfidence is the lead-lag confidence floor: a link is
	// reported only when its modal lag bucket holds at least this
	// fraction of the pair's observations (default 0.5).
	MinConfidence float64
	// Dedup sizes the stable Bloom deduper.
	Dedup DedupConfig
}

// Defaults for Options zero values.
const (
	DefaultDedupWindow   = 300
	DefaultClusterGap    = 600
	DefaultLagBucket     = 300
	DefaultMaxLagBuckets = 8
	DefaultMinConfidence = 0.5
)

func (o *Options) fill() error {
	if o.DedupWindow == 0 {
		o.DedupWindow = DefaultDedupWindow
	}
	if o.ClusterGap == 0 {
		o.ClusterGap = DefaultClusterGap
	}
	if o.LagBucket == 0 {
		o.LagBucket = DefaultLagBucket
	}
	if o.MaxLagBuckets == 0 {
		o.MaxLagBuckets = DefaultMaxLagBuckets
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = DefaultMinConfidence
	}
	if o.MinConfidence < 0 || o.MinConfidence > 1 || math.IsNaN(o.MinConfidence) {
		return fmt.Errorf("incident: MinConfidence %v outside [0,1]", o.MinConfidence)
	}
	return nil
}

// Link is one edge of an incident's lead-lag chain: alarms of kind From
// precede alarms of kind To by about LagSeconds.
type Link struct {
	From detector.Kind `json:"from"`
	To   detector.Kind `json:"to"`
	// LagSeconds is the modal lead, quantized to Options.LagBucket.
	LagSeconds uint32 `json:"lag_seconds"`
	// Confidence is the fraction of (From, To) alarm pairs in the modal
	// lag bucket.
	Confidence float64 `json:"confidence"`
	// Pairs is the number of alarm pairs the histogram was built from.
	Pairs int `json:"pairs"`
}

// String renders the link the way an operator reads it.
func (l Link) String() string {
	return fmt.Sprintf("%s leads %s by ~%ds (%.0f%% of %d pairs)",
		l.From, l.To, l.LagSeconds, 100*l.Confidence, l.Pairs)
}

// Incident is one correlated event: the alarms a single root cause
// raised across bins and detectors, with the lead-lag chain ordering
// its phases.
type Incident struct {
	// ID is assigned by the alarm database; empty until stored.
	ID string `json:"id"`
	// Interval is the union of the member alarms' intervals.
	Interval flow.Interval `json:"interval"`
	// Kinds lists the distinct member kinds in order of first
	// appearance (the event's phases in time order).
	Kinds []detector.Kind `json:"kinds"`
	// AlarmIDs are the member alarms — dedup survivors first (in time
	// order), then the duplicates they suppressed.
	AlarmIDs []string `json:"alarm_ids"`
	// Representative is the member alarm the incident's one extraction
	// represents: the highest-scoring survivor.
	Representative string `json:"representative"`
	// Score is the maximum member score.
	Score float64 `json:"score"`
	// Suppressed counts member alarms the deduper collapsed.
	Suppressed int `json:"suppressed"`
	// Chain is the lead-lag chain over the member kinds, strongest
	// links first.
	Chain []Link `json:"chain,omitempty"`
}

// Leads reports whether the chain orders kind a before kind b.
func (inc *Incident) Leads(a, b detector.Kind) bool {
	for _, l := range inc.Chain {
		if l.From == a && l.To == b {
			return true
		}
	}
	return false
}

// Correlation is the outcome of one Correlate run.
type Correlation struct {
	// AlarmsIn counts the alarms considered (the storm size).
	AlarmsIn int
	// Survivors counts alarms left after stable-Bloom dedup — the
	// inputs to clustering.
	Survivors int
	// Incidents are the correlated events, in time order.
	Incidents []Incident
}

// Correlate collapses an alarm storm into incidents: stable-Bloom dedup
// over (detector, kind, signature, time bucket), TimeCluster grouping
// of the survivors, and a per-incident lead-lag chain. Alarms must
// carry their database IDs. The result is deterministic for fixed
// (alarms, opts): input order does not matter, alarms are sorted
// internally.
func Correlate(alarms []detector.Alarm, opts Options) (*Correlation, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	sorted := make([]*detector.Alarm, 0, len(alarms))
	for i := range alarms {
		sorted = append(sorted, &alarms[i])
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Interval.Start != b.Interval.Start {
			return a.Interval.Start < b.Interval.Start
		}
		ai, _ := strconv.Atoi(a.ID)
		bi, _ := strconv.Atoi(b.ID)
		if ai != bi {
			return ai < bi
		}
		return a.ID < b.ID
	})

	// Layer 1.5: dedup. Survivors drive clustering; duplicates stay
	// linked to their survivor so incident membership is complete.
	ded, err := NewDeduper(opts.Dedup)
	if err != nil {
		return nil, err
	}
	var survivors []*member
	// bySurvivorKey attributes duplicates exactly within this batch;
	// the Bloom filter remains the bounded-memory membership gate.
	bySurvivorKey := make(map[string]*member)
	out := &Correlation{AlarmsIn: len(sorted)}
	for _, a := range sorted {
		key := DedupKey(a, opts.DedupWindow)
		if ded.Seen(key) {
			if m, ok := bySurvivorKey[key]; ok {
				m.duplicates = append(m.duplicates, a)
				continue
			}
			// Bloom false positive with no exact owner: keep the alarm
			// as a survivor rather than dropping a unique signal.
		}
		m := &member{alarm: a}
		survivors = append(survivors, m)
		bySurvivorKey[key] = m
	}
	out.Survivors = len(survivors)

	// Layer 2a: TimeCluster. Survivors are in time order; one joins the
	// open cluster while its start is within ClusterGap of the
	// cluster's running interval end (or overlaps it).
	var clusters [][]*member
	var cur []*member
	var curEnd uint32
	for _, m := range survivors {
		start := m.alarm.Interval.Start
		if len(cur) > 0 && start <= curEnd+opts.ClusterGap {
			cur = append(cur, m)
		} else {
			if len(cur) > 0 {
				clusters = append(clusters, cur)
			}
			cur = []*member{m}
			curEnd = 0
		}
		if end := m.alarm.Interval.End; end > curEnd {
			curEnd = end
		}
	}
	if len(cur) > 0 {
		clusters = append(clusters, cur)
	}

	// Layer 2b: one Incident per cluster, with its lead-lag chain.
	for _, cl := range clusters {
		out.Incidents = append(out.Incidents, buildIncident(cl, opts))
	}
	return out, nil
}

// buildIncident assembles one cluster's Incident record.
func buildIncident(cl []*member, opts Options) Incident {
	inc := Incident{}
	seenKind := map[detector.Kind]bool{}
	var rep *detector.Alarm
	var survivorAlarms []*detector.Alarm
	for _, m := range cl {
		a := m.alarm
		survivorAlarms = append(survivorAlarms, a)
		if inc.Interval == (flow.Interval{}) {
			inc.Interval = a.Interval
		} else {
			if a.Interval.Start < inc.Interval.Start {
				inc.Interval.Start = a.Interval.Start
			}
			if a.Interval.End > inc.Interval.End {
				inc.Interval.End = a.Interval.End
			}
		}
		if !seenKind[a.Kind] {
			seenKind[a.Kind] = true
			inc.Kinds = append(inc.Kinds, a.Kind)
		}
		inc.AlarmIDs = append(inc.AlarmIDs, a.ID)
		if a.Score > inc.Score {
			inc.Score = a.Score
		}
		// Representative: highest score, earliest on ties (members are
		// already in time order, so strict > keeps the first).
		if rep == nil || a.Score > rep.Score {
			rep = a
		}
	}
	for _, m := range cl {
		for _, d := range m.duplicates {
			inc.AlarmIDs = append(inc.AlarmIDs, d.ID)
			inc.Suppressed++
		}
	}
	if rep != nil {
		inc.Representative = rep.ID
	}
	inc.Chain = leadLag(survivorAlarms, opts)
	return inc
}

// member is one dedup survivor with the duplicates it suppressed.
type member struct {
	alarm      *detector.Alarm
	duplicates []*detector.Alarm
}

// leadLag builds the lead-lag chain over one incident's surviving
// alarms: for every unordered pair of distinct kinds it histograms the
// signed start-time lags (quantized to LagBucket), and the modal bucket
// — when strictly leading and confident enough — becomes a Link.
func leadLag(alarms []*detector.Alarm, opts Options) []Link {
	byKind := map[detector.Kind][]*detector.Alarm{}
	var kinds []detector.Kind
	for _, a := range alarms {
		if len(byKind[a.Kind]) == 0 {
			kinds = append(kinds, a.Kind)
		}
		byKind[a.Kind] = append(byKind[a.Kind], a)
	}
	var links []Link
	for i := 0; i < len(kinds); i++ {
		for j := i + 1; j < len(kinds); j++ {
			a, b := kinds[i], kinds[j]
			if l, ok := pairLink(a, b, byKind[a], byKind[b], opts); ok {
				links = append(links, l)
			}
		}
	}
	// Strongest evidence first; deterministic tie-break on the names.
	sort.Slice(links, func(i, j int) bool {
		if links[i].Confidence != links[j].Confidence {
			return links[i].Confidence > links[j].Confidence
		}
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return links
}

// pairLink histograms the signed lags from kind a to kind b and turns
// the modal bucket into a Link when it leads strictly and clears the
// confidence floor. A negative modal lag is the mirrored direction.
func pairLink(a, b detector.Kind, as, bs []*detector.Alarm, opts Options) (Link, bool) {
	hist := map[int]int{}
	pairs := 0
	maxLag := int64(opts.MaxLagBuckets) * int64(opts.LagBucket)
	for _, x := range as {
		for _, y := range bs {
			lag := int64(y.Interval.Start) - int64(x.Interval.Start)
			if lag > maxLag || lag < -maxLag {
				continue
			}
			// Round to the nearest bucket so jitter within half a
			// bucket does not split the mode.
			bucket := int(math.Round(float64(lag) / float64(opts.LagBucket)))
			hist[bucket]++
			pairs++
		}
	}
	if pairs == 0 {
		return Link{}, false
	}
	mode, modeCount := 0, -1
	for bucket, n := range hist {
		// Deterministic mode: higher count wins, smaller |bucket| then
		// smaller bucket break ties.
		if n > modeCount ||
			(n == modeCount && (abs(bucket) < abs(mode) || (abs(bucket) == abs(mode) && bucket < mode))) {
			mode, modeCount = bucket, n
		}
	}
	if mode == 0 {
		return Link{}, false // simultaneous, not causal
	}
	conf := float64(modeCount) / float64(pairs)
	if conf < opts.MinConfidence {
		return Link{}, false
	}
	l := Link{From: a, To: b, LagSeconds: uint32(mode) * opts.LagBucket, Confidence: conf, Pairs: pairs}
	if mode < 0 {
		l.From, l.To = b, a
		l.LagSeconds = uint32(-mode) * opts.LagBucket
	}
	return l, true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ExtractionAlarm merges an incident's member alarms into the single
// alarm its extraction job runs on: the representative member's
// identity (ID, detector, kind, score), the union of member intervals,
// and the deduplicated union of member meta-data (sorted by feature
// then value, so member order never changes the mining input). One
// extraction over this alarm covers every phase of the event — the
// per-incident replacement for one extraction per alarm.
func ExtractionAlarm(inc *Incident, members []detector.Alarm) (detector.Alarm, error) {
	if len(members) == 0 {
		return detector.Alarm{}, fmt.Errorf("incident: %s has no member alarms", inc.ID)
	}
	var rep *detector.Alarm
	for i := range members {
		if members[i].ID == inc.Representative {
			rep = &members[i]
			break
		}
	}
	if rep == nil {
		rep = &members[0]
	}
	merged := detector.Alarm{
		ID:       rep.ID,
		Detector: rep.Detector,
		Interval: inc.Interval,
		Kind:     rep.Kind,
		Score:    inc.Score,
	}
	seen := map[detector.MetaItem]bool{}
	for _, m := range members {
		for _, it := range m.Meta {
			if !seen[it] {
				seen[it] = true
				merged.Meta = append(merged.Meta, it)
			}
		}
	}
	sort.Slice(merged.Meta, func(i, j int) bool {
		a, b := merged.Meta[i], merged.Meta[j]
		if a.Feature != b.Feature {
			return a.Feature < b.Feature
		}
		return a.Value < b.Value
	})
	return merged, nil
}

// Describe renders a one-line operator summary of the incident.
func (inc *Incident) Describe() string {
	kinds := make([]string, len(inc.Kinds))
	for i, k := range inc.Kinds {
		kinds[i] = string(k)
	}
	s := fmt.Sprintf("incident %s %s kinds=[%s] alarms=%d (%d suppressed)",
		inc.ID, inc.Interval, strings.Join(kinds, ", "), len(inc.AlarmIDs), inc.Suppressed)
	if len(inc.Chain) > 0 {
		s += " chain: " + inc.Chain[0].String()
	}
	return s
}
