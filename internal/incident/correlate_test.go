package incident

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
)

// mkAlarm builds a stored-looking alarm (ID set) for correlator tests.
func mkAlarm(id int, det string, kind detector.Kind, start uint32, meta ...detector.MetaItem) detector.Alarm {
	return detector.Alarm{
		ID:       strconv.Itoa(id),
		Detector: det,
		Kind:     kind,
		Interval: flow.Interval{Start: start, End: start + 300},
		Score:    float64(id),
		Meta:     meta,
	}
}

// storm builds the canonical test storm: a port scan at t0 and a DDoS
// one bin later, each reported by three detectors with three duplicate
// reports per detector — 18 alarms for one event.
func storm(t0 uint32) []detector.Alarm {
	scanMeta := detector.MetaItem{Feature: flow.FeatSrcIP, Value: 7}
	ddosMeta := detector.MetaItem{Feature: flow.FeatDstPort, Value: 80}
	var alarms []detector.Alarm
	id := 1
	for _, det := range []string{"histogram", "netreflex", "pca"} {
		for d := 0; d < 3; d++ {
			// Jitter below half the dedup window: same bucket.
			alarms = append(alarms, mkAlarm(id, det, detector.KindPortScan, t0+uint32(d*40), scanMeta))
			id++
			alarms = append(alarms, mkAlarm(id, det, detector.KindDDoS, t0+300+uint32(d*40), ddosMeta))
			id++
		}
	}
	return alarms
}

func TestCorrelateStorm(t *testing.T) {
	alarms := storm(1_300_000_200)
	c, err := Correlate(alarms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.AlarmsIn != 18 {
		t.Fatalf("AlarmsIn = %d, want 18", c.AlarmsIn)
	}
	// One survivor per (detector, kind) bucket: 3 detectors x 2 kinds.
	if c.Survivors != 6 {
		t.Fatalf("Survivors = %d, want 6", c.Survivors)
	}
	if len(c.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1 (gap 600 spans the one-bin stagger)", len(c.Incidents))
	}
	inc := c.Incidents[0]
	if len(inc.AlarmIDs) != 18 {
		t.Fatalf("member alarms = %d, want all 18 (duplicates stay linked)", len(inc.AlarmIDs))
	}
	if inc.Suppressed != 12 {
		t.Fatalf("Suppressed = %d, want 12", inc.Suppressed)
	}
	if !reflect.DeepEqual(inc.Kinds, []detector.Kind{detector.KindPortScan, detector.KindDDoS}) {
		t.Fatalf("Kinds = %v, want [port scan, ddos] in time order", inc.Kinds)
	}
	if !inc.Leads(detector.KindPortScan, detector.KindDDoS) {
		t.Fatalf("chain %v does not order port scan before ddos", inc.Chain)
	}
	for _, l := range inc.Chain {
		if l.From == detector.KindPortScan && l.To == detector.KindDDoS {
			if l.LagSeconds != 300 {
				t.Fatalf("lag = %ds, want 300 (one bin)", l.LagSeconds)
			}
			if l.Confidence < 0.5 {
				t.Fatalf("confidence = %.2f, want >= 0.5", l.Confidence)
			}
		}
	}
	// Representative: the highest-scoring survivor.
	if inc.Representative == "" {
		t.Fatal("no representative")
	}
}

// TestCorrelateDeterministic pins the seeded-determinism contract: the
// same alarms, in any order, always produce identical incidents.
func TestCorrelateDeterministic(t *testing.T) {
	alarms := storm(1_300_000_200)
	a, err := Correlate(alarms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the input order.
	rev := make([]detector.Alarm, len(alarms))
	for i, al := range alarms {
		rev[len(alarms)-1-i] = al
	}
	b, err := Correlate(rev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("correlation differs across input orders:\n%+v\n%+v", a, b)
	}
}

func TestCorrelateClusterGap(t *testing.T) {
	alarms := []detector.Alarm{
		mkAlarm(1, "histogram", detector.KindDoS, 1000),
		// 2000 seconds after the first interval ends: outside the
		// default 600 s gap.
		mkAlarm(2, "histogram", detector.KindDoS, 3300),
	}
	c, err := Correlate(alarms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Incidents) != 2 {
		t.Fatalf("incidents = %d, want 2 (far apart)", len(c.Incidents))
	}
	// A wide gap merges them.
	c, err = Correlate(alarms, Options{ClusterGap: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1 with ClusterGap 3000", len(c.Incidents))
	}
}

// TestLeadLagCascade pins the lead-lag confidence on a synthetic
// cascading scenario: scans consistently one bucket before floods, with
// one contrarian observation that must not flip the link.
func TestLeadLagCascade(t *testing.T) {
	var alarms []detector.Alarm
	id := 1
	// Distinct detectors so dedup keeps every alarm.
	for i := 0; i < 4; i++ {
		alarms = append(alarms, mkAlarm(id, "d"+strconv.Itoa(id), detector.KindNetScan, 1000+uint32(i)*20))
		id++
		alarms = append(alarms, mkAlarm(id, "d"+strconv.Itoa(id), detector.KindUDPFlood, 1300+uint32(i)*20))
		id++
	}
	// Contrarian: one flood before every scan.
	alarms = append(alarms, mkAlarm(id, "d-contrarian", detector.KindUDPFlood, 700))
	c, err := Correlate(alarms, Options{ClusterGap: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1", len(c.Incidents))
	}
	inc := c.Incidents[0]
	if !inc.Leads(detector.KindNetScan, detector.KindUDPFlood) {
		t.Fatalf("chain %v: scan must lead flood", inc.Chain)
	}
	link := inc.Chain[0]
	// 16 of 20 pairs sit in the +1 bucket (4 scans x 4 on-pattern
	// floods); 4 pairs involve the contrarian.
	if link.Pairs != 20 {
		t.Fatalf("pairs = %d, want 20", link.Pairs)
	}
	if link.Confidence < 0.75 {
		t.Fatalf("confidence = %.2f, want >= 0.75", link.Confidence)
	}
	// A floor above the achievable confidence suppresses the link.
	c, err = Correlate(alarms, Options{ClusterGap: 2000, MinConfidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Incidents[0].Chain) != 0 {
		t.Fatalf("chain %v survived a 0.95 confidence floor", c.Incidents[0].Chain)
	}
}

func TestExtractionAlarm(t *testing.T) {
	members := []detector.Alarm{
		mkAlarm(1, "netreflex", detector.KindPortScan, 1000,
			detector.MetaItem{Feature: flow.FeatSrcIP, Value: 9}),
		mkAlarm(2, "histogram", detector.KindDDoS, 1300,
			detector.MetaItem{Feature: flow.FeatDstPort, Value: 80},
			detector.MetaItem{Feature: flow.FeatSrcIP, Value: 9}), // shared item dedupes
	}
	inc := &Incident{
		ID:             "i1",
		Interval:       flow.Interval{Start: 1000, End: 1600},
		Representative: "2",
		Score:          2,
		AlarmIDs:       []string{"1", "2"},
	}
	merged, err := ExtractionAlarm(inc, members)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ID != "2" || merged.Detector != "histogram" || merged.Kind != detector.KindDDoS {
		t.Fatalf("representative identity not carried: %+v", merged)
	}
	if merged.Interval != inc.Interval {
		t.Fatalf("interval = %v, want the incident union %v", merged.Interval, inc.Interval)
	}
	if len(merged.Meta) != 2 {
		t.Fatalf("meta = %v, want the 2-item deduplicated union", merged.Meta)
	}
	// Member order must not change the merged alarm.
	merged2, err := ExtractionAlarm(inc, []detector.Alarm{members[1], members[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Meta, merged2.Meta) {
		t.Fatalf("merged meta depends on member order: %v vs %v", merged.Meta, merged2.Meta)
	}
	if _, err := ExtractionAlarm(&Incident{ID: "ix"}, nil); err == nil {
		t.Fatal("no members must error")
	}
}
