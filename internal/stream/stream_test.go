package stream

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"

	// Registers a batch-only detector so BuildDetectors' rejection path
	// is exercised against a real registry entry.
	_ "repro/internal/netreflex"
)

// rec builds a minimal record at time start with the given endpoints.
func rec(start uint32, src, dst byte, packets uint64) flow.Record {
	return flow.Record{
		Start:   start,
		SrcIP:   flow.IPFromOctets(10, 0, 0, src),
		DstIP:   flow.IPFromOctets(192, 0, 2, dst),
		SrcPort: 40000,
		DstPort: 80,
		Proto:   flow.ProtoTCP,
		Router:  1,
		Packets: packets,
		Bytes:   packets * 40,
	}
}

func TestWindowerStepTo(t *testing.T) {
	w := windower{width: 60}
	var closed []uint32
	note := func(s uint32) { closed = append(closed, s) }

	w.stepTo(10, note) // first record: no completed window yet
	if len(closed) != 0 {
		t.Fatalf("first step closed %v", closed)
	}
	w.stepTo(59, note) // same window
	w.stepTo(185, note)
	if len(closed) != 3 || closed[0] != 0 || closed[1] != 60 || closed[2] != 120 {
		t.Fatalf("jump closed %v, want [0 60 120]", closed)
	}
	closed = nil
	w.stepTo(100, note) // late record: window unchanged
	if len(closed) != 0 || w.cur != 180 {
		t.Fatalf("late record closed %v, cur=%d", closed, w.cur)
	}
}

func TestWindowerAdvanceShutdownSweep(t *testing.T) {
	w := windower{width: 60}
	var closed []uint32
	w.advance(^uint32(0), func(s uint32) { closed = append(closed, s) })
	if len(closed) != 0 {
		t.Fatalf("unstarted windower closed %v", closed)
	}
	w.stepTo(130, func(uint32) {})
	// The shutdown sweep must close the current window exactly once and
	// terminate despite now being the uint32 maximum.
	w.advance(^uint32(0), func(s uint32) { closed = append(closed, s) })
	if len(closed) != 1 || closed[0] != 120 {
		t.Fatalf("shutdown sweep closed %v, want [120]", closed)
	}
}

// TestCUSUMDetectsVolumeShift feeds a stable baseline then a 10x flood
// window and requires exactly that window to alarm, with the interval
// widened to its enclosing 300 s bin.
func TestCUSUMDetectsVolumeShift(t *testing.T) {
	c, err := NewCUSUM(CUSUMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var alarms []detector.Alarm
	feed := func(window uint32, n int) {
		for i := 0; i < n; i++ {
			r := rec(window*60, byte(i), byte(i%7), 2)
			alarms = append(alarms, c.Observe(&r)...)
		}
	}
	for w := uint32(0); w < 10; w++ {
		feed(w, 100) // baseline: 100 flows per minute
	}
	if len(alarms) != 0 {
		t.Fatalf("baseline raised %d alarms", len(alarms))
	}
	feed(10, 1000) // the flood window
	alarms = append(alarms, c.Advance(11*60)...)
	if len(alarms) != 1 {
		t.Fatalf("flood raised %d alarms, want 1", len(alarms))
	}
	a := alarms[0]
	if a.Detector != CUSUMName || a.Kind != detector.KindUnknown || len(a.Meta) != 0 {
		t.Fatalf("alarm = %+v; want unattributed cusum alarm without meta", a)
	}
	if a.Interval != (flow.Interval{Start: 600, End: 900}) {
		t.Fatalf("alarm interval %v not aligned to the 300 s bin", a.Interval)
	}
	if a.Score <= 6 {
		t.Fatalf("flood score %f not above the threshold", a.Score)
	}

	// Baseline non-contamination: a second flood window still alarms
	// against the pre-change mean.
	feed(11, 1000)
	post := c.Advance(12 * 60)
	if len(post) != 1 {
		t.Fatalf("sustained flood raised %d alarms in its second window, want 1", len(post))
	}
}

// TestCUSUMWarmup pins that no alarm fires before MinWindows baseline
// windows, however extreme the deviation.
func TestCUSUMWarmup(t *testing.T) {
	c, err := NewCUSUM(CUSUMConfig{MinWindows: 8})
	if err != nil {
		t.Fatal(err)
	}
	var alarms []detector.Alarm
	for w := uint32(0); w < 8; w++ {
		n := 10
		if w >= 4 {
			n = 10000 // wild swings inside the warm-up
		}
		for i := 0; i < n; i++ {
			r := rec(w*60, 1, 1, 1)
			alarms = append(alarms, c.Observe(&r)...)
		}
	}
	alarms = append(alarms, c.Advance(8*60)...)
	if len(alarms) != 0 {
		t.Fatalf("warm-up raised %d alarms", len(alarms))
	}
}

func TestCMSketchEstimates(t *testing.T) {
	s := newCMSketch(4, 64)
	for i := 0; i < 100; i++ {
		s.add(7, 3)
	}
	if got := s.estimate(7); got < 300 {
		t.Fatalf("estimate(7) = %d, want >= 300 (count-min never undercounts)", got)
	}
	if got := s.estimate(99999); got > 300 {
		t.Fatalf("estimate of an unseen key = %d; collision across all 4 rows is implausible", got)
	}
	s.reset()
	if got := s.estimate(7); got != 0 {
		t.Fatalf("estimate after reset = %d", got)
	}
}

// TestSketchHeavyHitter pins both dimensions: a destination absorbing
// most of the window's flows from distinct sources is a DoS target; a
// single source fanning out to distinct destinations is a scanner.
func TestSketchHeavyHitter(t *testing.T) {
	for _, tc := range []struct {
		name     string
		fanIn    bool // many sources -> one dst (vs one src -> many dsts)
		wantKind detector.Kind
		wantFeat flow.Feature
	}{
		{"dos-target", true, detector.KindDoS, flow.FeatDstIP},
		{"scanner", false, detector.KindNetScan, flow.FeatSrcIP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sk, err := NewSketch(SketchConfig{WindowSeconds: 60})
			if err != nil {
				t.Fatal(err)
			}
			var alarms []detector.Alarm
			// 300 heavy flows + 100 background flows in window 0. Heavy
			// endpoints use the .250 octet; background spreads 10.0.0.x
			// to 192.0.2.x so no background key nears the 25% ratio.
			for i := 0; i < 300; i++ {
				var r flow.Record
				if tc.fanIn {
					r = rec(uint32(i%60), byte(i%200), 250, 2)
				} else {
					r = flow.Record{
						Start: uint32(i % 60), Proto: flow.ProtoTCP, Packets: 2, Bytes: 80,
						SrcIP: flow.IPFromOctets(10, 0, 0, 250),
						DstIP: flow.IPFromOctets(192, 0, byte(i/200), byte(i%200)),
					}
				}
				alarms = append(alarms, sk.Observe(&r)...)
			}
			for i := 0; i < 100; i++ {
				r := rec(uint32(i%60), byte(i%50), byte(i%50), 2)
				alarms = append(alarms, sk.Observe(&r)...)
			}
			alarms = append(alarms, sk.Advance(60)...)
			if len(alarms) != 1 {
				t.Fatalf("window raised %d alarms, want exactly the heavy hitter: %+v", len(alarms), alarms)
			}
			a := alarms[0]
			if a.Kind != tc.wantKind {
				t.Fatalf("kind = %v, want %v", a.Kind, tc.wantKind)
			}
			if len(a.Meta) != 1 || a.Meta[0].Feature != tc.wantFeat {
				t.Fatalf("meta = %+v, want one %v item", a.Meta, tc.wantFeat)
			}
			if a.Score < 0.5 || a.Score > 1 {
				t.Fatalf("share = %f, want ~0.75", a.Score)
			}
			if a.Interval != (flow.Interval{Start: 0, End: 300}) {
				t.Fatalf("interval %v not bin-aligned", a.Interval)
			}
		})
	}
}

// TestSketchQuietWindow pins the MinFlows gate: a sparse window raises
// nothing even when one key owns all of it.
func TestSketchQuietWindow(t *testing.T) {
	sk, err := NewSketch(SketchConfig{WindowSeconds: 60, MinFlows: 100})
	if err != nil {
		t.Fatal(err)
	}
	var alarms []detector.Alarm
	for i := 0; i < 99; i++ {
		r := rec(uint32(i%60), 1, 250, 2)
		alarms = append(alarms, sk.Observe(&r)...)
	}
	alarms = append(alarms, sk.Advance(60)...)
	if len(alarms) != 0 {
		t.Fatalf("sparse window raised %d alarms", len(alarms))
	}
}

func TestBuildDetectors(t *testing.T) {
	dets, err := BuildDetectors(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 || dets[0].Name() != CUSUMName || dets[1].Name() != SketchName {
		t.Fatalf("default online set = %v", dets)
	}
	if _, err := BuildDetectors([]string{"no-such-detector"}); err == nil {
		t.Fatal("unknown detector accepted")
	}
	// netreflex is registered but batch-only.
	if _, err := BuildDetectors([]string{"netreflex"}); err == nil {
		t.Fatal("batch-only detector accepted as online")
	}
}
