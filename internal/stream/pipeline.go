package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
)

// DefaultBuffer is the ingest channel capacity when Config.Buffer is 0.
const DefaultBuffer = 4096

// ErrClosed rejects ingest into a pipeline that has shut down.
var ErrClosed = errors.New("stream: pipeline closed")

// Config assembles a Pipeline.
type Config struct {
	// Store receives every ingested record. When it also implements
	// nfstore.Sealer (single and local sharded stores do), bins are
	// sealed individually as the clock passes them; otherwise each bin
	// boundary degrades to a whole-store Flush.
	Store nfstore.Engine
	// Detectors are the online detectors fed per record. The pipeline
	// worker owns them exclusively.
	Detectors []Online
	// Buffer bounds the ingest channel (default DefaultBuffer). A full
	// channel blocks Ingest (backpressure) and drops TryIngest.
	Buffer int
	// SealLag delays sealing this many seconds past a bin's end so
	// slightly out-of-order records still land in their bin (default 0:
	// seal as soon as the clock crosses the boundary).
	SealLag uint32
	// OnSealed, when set, runs on the worker goroutine after each bin
	// seals, with the bin interval and the online alarms whose windows
	// closed inside it — the watcher seam. Keep it fast or hand off.
	OnSealed func(bin flow.Interval, alarms []detector.Alarm)
}

// Stats is a point-in-time census of the pipeline, surfaced through the
// facade and rcad's /api/health.
type Stats struct {
	// Ingested counts records accepted and appended to the store.
	Ingested uint64 `json:"ingested"`
	// Dropped counts TryIngest rejections on a full buffer.
	Dropped uint64 `json:"dropped"`
	// AddErrors counts records the store rejected (validation).
	AddErrors uint64 `json:"add_errors"`
	// Alarms counts online-detector alarms delivered with sealed bins.
	Alarms uint64 `json:"alarms"`
	// SealedBins counts bins sealed since start.
	SealedBins uint64 `json:"sealed_bins"`
	// SealErrors counts failed seal/flush attempts.
	SealErrors uint64 `json:"seal_errors"`
	// OpenBins lists bins with ingested records not yet sealed, ascending.
	OpenBins []uint32 `json:"open_bins,omitempty"`
	// Clock is the stream clock — the latest record start seen.
	Clock uint32 `json:"clock"`
	// QueueLen/QueueCap describe the ingest buffer's current pressure.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// RatePerSec is the mean ingest rate since the first record.
	RatePerSec float64 `json:"rate_per_sec"`
}

// Pipeline is the live ingest loop: a bounded channel in front of one
// worker goroutine that stores records, feeds the online detectors,
// advances the stream clock, and seals bins behind it. Construction
// starts the worker; Close drains and stops it.
type Pipeline struct {
	cfg        Config
	binSeconds uint32
	sealer     nfstore.Sealer // nil: store cannot seal, Flush instead

	in   chan flow.Record
	done chan struct{}

	closeMu sync.RWMutex // guards closed against in-flight sends
	closed  bool

	ingested   atomic.Uint64
	dropped    atomic.Uint64
	addErrs    atomic.Uint64
	alarmCount atomic.Uint64
	sealedBins atomic.Uint64
	sealErrs   atomic.Uint64
	clock      atomic.Uint32
	firstNanos atomic.Int64 // wall time of the first accepted record

	binMu    sync.Mutex
	openBins map[uint32]bool

	pending []detector.Alarm // worker-owned: alarms awaiting their bin's seal
}

// New assembles and starts a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Store == nil {
		return nil, errors.New("stream: Config.Store is required")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	p := &Pipeline{
		cfg:        cfg,
		binSeconds: cfg.Store.BinSeconds(),
		in:         make(chan flow.Record, cfg.Buffer),
		done:       make(chan struct{}),
		openBins:   map[uint32]bool{},
	}
	p.sealer, _ = cfg.Store.(nfstore.Sealer)
	go p.run()
	return p, nil
}

// Ingest submits one record, blocking while the buffer is full — the
// backpressure path: a slow consumer propagates delay to producers
// instead of losing data. ctx bounds the wait.
func (p *Pipeline) Ingest(ctx context.Context, r *flow.Record) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.in <- *r:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryIngest submits one record without blocking: a full buffer drops the
// record, counts the drop, and returns false — the load-shedding path
// for producers that must never stall (a capture loop).
func (p *Pipeline) TryIngest(r *flow.Record) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		p.dropped.Add(1)
		return false
	}
	select {
	case p.in <- *r:
		return true
	default:
		p.dropped.Add(1)
		return false
	}
}

// Close stops ingest, drains the buffer, closes every open detector
// window, seals every open bin (delivering their alarms), and waits for
// the worker to exit. Idempotent.
func (p *Pipeline) Close() error {
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.in)
	}
	p.closeMu.Unlock()
	<-p.done
	return nil
}

// Stats returns the current census.
func (p *Pipeline) Stats() Stats {
	st := Stats{
		Ingested:   p.ingested.Load(),
		Dropped:    p.dropped.Load(),
		AddErrors:  p.addErrs.Load(),
		Alarms:     p.alarmCount.Load(),
		SealedBins: p.sealedBins.Load(),
		SealErrors: p.sealErrs.Load(),
		Clock:      p.clock.Load(),
		QueueLen:   len(p.in),
		QueueCap:   cap(p.in),
	}
	p.binMu.Lock()
	for b := range p.openBins {
		st.OpenBins = append(st.OpenBins, b)
	}
	p.binMu.Unlock()
	sort.Slice(st.OpenBins, func(i, j int) bool { return st.OpenBins[i] < st.OpenBins[j] })
	if first := p.firstNanos.Load(); first > 0 && st.Ingested > 0 {
		if secs := time.Since(time.Unix(0, first)).Seconds(); secs > 0 {
			st.RatePerSec = float64(st.Ingested) / secs
		}
	}
	return st
}

// run is the worker loop.
func (p *Pipeline) run() {
	defer close(p.done)
	for r := range p.in {
		p.consume(&r)
	}
	p.finish()
}

// consume handles one record: store, observe, advance the clock, seal
// bins the clock has passed.
func (p *Pipeline) consume(r *flow.Record) {
	if err := p.cfg.Store.Add(r); err != nil {
		p.addErrs.Add(1)
		return
	}
	if p.ingested.Add(1) == 1 {
		p.firstNanos.Store(time.Now().UnixNano())
	}
	for _, d := range p.cfg.Detectors {
		if as := d.Observe(r); len(as) > 0 {
			p.pending = append(p.pending, as...)
		}
	}
	bin := r.Start - r.Start%p.binSeconds
	p.binMu.Lock()
	p.openBins[bin] = true
	p.binMu.Unlock()
	if r.Start > p.clock.Load() {
		p.clock.Store(r.Start)
	}
	p.sealBehind(p.clock.Load())
}

// sealBehind seals every open bin whose grace window the clock has fully
// passed, oldest first.
func (p *Pipeline) sealBehind(now uint32) {
	var ready []uint32
	p.binMu.Lock()
	for b := range p.openBins {
		if uint64(b)+uint64(p.binSeconds)+uint64(p.cfg.SealLag) <= uint64(now) {
			ready = append(ready, b)
		}
	}
	for _, b := range ready {
		delete(p.openBins, b)
	}
	p.binMu.Unlock()
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, b := range ready {
		p.sealBin(b)
	}
}

// sealBin commits one bin: detectors close windows up to the bin end,
// the store seals the segment (or flushes), and the bin's alarms go to
// the OnSealed hook.
func (p *Pipeline) sealBin(b uint32) {
	iv := flow.Interval{Start: b, End: b + p.binSeconds}
	for _, d := range p.cfg.Detectors {
		if as := d.Advance(iv.End); len(as) > 0 {
			p.pending = append(p.pending, as...)
		}
	}
	var err error
	if p.sealer != nil {
		err = p.sealer.Seal(b)
	} else {
		err = p.cfg.Store.Flush()
	}
	if err != nil {
		p.sealErrs.Add(1)
	}
	p.sealedBins.Add(1)
	p.deliver(iv, iv.End)
}

// deliver hands every pending alarm concluded by upTo to OnSealed under
// the given bin interval, keeping later ones pending.
func (p *Pipeline) deliver(bin flow.Interval, upTo uint32) {
	var ship, keep []detector.Alarm
	for _, a := range p.pending {
		if a.Interval.End <= upTo {
			ship = append(ship, a)
		} else {
			keep = append(keep, a)
		}
	}
	p.pending = keep
	if len(ship) == 0 {
		return
	}
	p.alarmCount.Add(uint64(len(ship)))
	if p.cfg.OnSealed != nil {
		p.cfg.OnSealed(bin, ship)
	}
}

// finish runs at shutdown: seal every remaining bin in order, then force
// the detectors' last windows closed and deliver what falls out.
func (p *Pipeline) finish() {
	p.binMu.Lock()
	var bins []uint32
	for b := range p.openBins {
		bins = append(bins, b)
	}
	clear(p.openBins)
	p.binMu.Unlock()
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	for _, b := range bins {
		p.sealBin(b)
	}
	var last flow.Interval
	if n := len(bins); n > 0 {
		last = flow.Interval{Start: bins[n-1], End: bins[n-1] + p.binSeconds}
	}
	for _, d := range p.cfg.Detectors {
		if as := d.Advance(EndOfStream); len(as) > 0 {
			p.pending = append(p.pending, as...)
		}
	}
	p.deliver(last, EndOfStream)
}

// BuildDetectors resolves online detector names through the detector
// registry, rejecting registered detectors that are not stream-capable.
// An empty list selects the built-in online set (cusum, sketch).
func BuildDetectors(names []string) ([]Online, error) {
	if len(names) == 0 {
		names = []string{CUSUMName, SketchName}
	}
	out := make([]Online, 0, len(names))
	for _, name := range names {
		d, err := detector.New(name, nil)
		if err != nil {
			return nil, err
		}
		od, ok := d.(Online)
		if !ok {
			return nil, fmt.Errorf("stream: detector %q is not an online detector", name)
		}
		out = append(out, od)
	}
	return out, nil
}
