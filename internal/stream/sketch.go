package stream

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
)

// SketchName is the registry name of the online heavy-hitter detector.
const SketchName = "sketch"

// SketchConfig tunes the count-min heavy-hitter detector.
type SketchConfig struct {
	// WindowSeconds is the sketch window (default 300, one measurement
	// bin); counts reset at every window boundary. Share thresholds need
	// enough flows to be meaningful: sub-bin windows over moderate links
	// get lumpy (a single busy client-server session can own half of one
	// minute), so the default matches the bin width and sub-bin windows
	// are an explicit opt-in for high-rate links.
	WindowSeconds uint32
	// AlignSeconds widens alarm intervals to enclosing bins (default 300).
	AlignSeconds uint32
	// Rows and Cols size each count-min sketch (defaults 4 × 2048; Cols
	// rounds up to a power of two). Four sketches per detector: src/dst
	// dimension × flow/packet weight.
	Rows, Cols int
	// Ratio is the heavy-hitter fraction (default 0.25): a key owning at
	// least this share of the window's flows or packets alarms. The
	// default sits above the ~15% share the most popular background
	// server naturally draws (Zipf s=1.0 over 300 servers) at bin
	// granularity.
	Ratio float64
	// MinFlows gates alarming on window volume (default 100): a nearly
	// empty window has no meaningful shares.
	MinFlows uint64
	// MaxAlarms caps per-window alarms per dimension (default 4),
	// strongest shares first.
	MaxAlarms int
}

// DefaultSketchConfig returns the detector defaults.
func DefaultSketchConfig() SketchConfig {
	return SketchConfig{
		WindowSeconds: 300,
		AlignSeconds:  300,
		Rows:          4,
		Cols:          2048,
		Ratio:         0.25,
		MinFlows:      100,
		MaxAlarms:     4,
	}
}

func (c *SketchConfig) validate() error {
	if c.WindowSeconds == 0 {
		c.WindowSeconds = 300
	}
	if c.AlignSeconds == 0 {
		c.AlignSeconds = 300
	}
	if c.Rows <= 0 {
		c.Rows = 4
	}
	if c.Cols <= 0 {
		c.Cols = 2048
	}
	// Round Cols up to a power of two so row indexing is a mask.
	n := 1
	for n < c.Cols {
		n <<= 1
	}
	c.Cols = n
	if c.Ratio <= 0 || c.Ratio > 1 {
		c.Ratio = 0.25
	}
	if c.MinFlows == 0 {
		c.MinFlows = 100
	}
	if c.MaxAlarms <= 0 {
		c.MaxAlarms = 4
	}
	if c.AlignSeconds < c.WindowSeconds {
		return fmt.Errorf("sketch: AlignSeconds %d < WindowSeconds %d", c.AlignSeconds, c.WindowSeconds)
	}
	return nil
}

// mix64 is the SplitMix64 finalizer (the same mixer FiveTuple.FastHash
// uses) — full-avalanche, so one 64-bit hash sliced per row indexes a
// count-min sketch without a murmur dependency.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// cmSketch is a count-min sketch over uint32 keys with uint64 weights.
type cmSketch struct {
	rows int
	mask uint64
	cnt  []uint64 // rows × cols, row-major
}

func newCMSketch(rows, cols int) *cmSketch {
	return &cmSketch{rows: rows, mask: uint64(cols - 1), cnt: make([]uint64, rows*cols)}
}

// add folds weight w into the key's counters and returns the updated
// point estimate (the minimum across rows — the classic CM bound).
func (s *cmSketch) add(key uint32, w uint64) uint64 {
	cols := int(s.mask) + 1
	est := ^uint64(0)
	for r := 0; r < s.rows; r++ {
		h := mix64(uint64(key) ^ (uint64(r+1) * 0x9e3779b97f4a7c15))
		c := &s.cnt[r*cols+int(h&s.mask)]
		*c += w
		if *c < est {
			est = *c
		}
	}
	return est
}

// estimate returns the key's point estimate without updating.
func (s *cmSketch) estimate(key uint32) uint64 {
	cols := int(s.mask) + 1
	est := ^uint64(0)
	for r := 0; r < s.rows; r++ {
		h := mix64(uint64(key) ^ (uint64(r+1) * 0x9e3779b97f4a7c15))
		if c := s.cnt[r*cols+int(h&s.mask)]; c < est {
			est = c
		}
	}
	return est
}

// reset zeroes the counters for the next window.
func (s *cmSketch) reset() {
	clear(s.cnt)
}

// sketchDim is one monitored dimension (source or destination address):
// two sketches (flow- and packet-weighted) plus the candidate set of
// keys whose running estimate ever crossed the heavy-hitter ratio.
type sketchDim struct {
	feature    flow.Feature
	kind       detector.Kind
	byFlows    *cmSketch
	byPackets  *cmSketch
	candidates map[uint32]bool
}

// Sketch is the online large-flow detector: per window it maintains
// count-min sketches of flow and packet volume by source and by
// destination address, and alarms on keys owning at least Ratio of the
// window's total — a destination-heavy key labeled as a DoS target, a
// source-heavy key as a scanner. Memory is fixed (Rows × Cols counters
// per sketch) regardless of key cardinality; the point estimates
// overcount only under hash collisions, and the final share check uses
// the window's exact totals.
type Sketch struct {
	cfg SketchConfig
	win windower

	totalFlows, totalPackets uint64
	dims                     [2]sketchDim
}

// NewSketch builds the detector; zero config fields take defaults.
func NewSketch(cfg SketchConfig) (*Sketch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sketch{cfg: cfg, win: windower{width: cfg.WindowSeconds}}
	s.dims[0] = sketchDim{
		feature:    flow.FeatSrcIP,
		kind:       detector.KindNetScan,
		byFlows:    newCMSketch(cfg.Rows, cfg.Cols),
		byPackets:  newCMSketch(cfg.Rows, cfg.Cols),
		candidates: map[uint32]bool{},
	}
	s.dims[1] = sketchDim{
		feature:    flow.FeatDstIP,
		kind:       detector.KindDoS,
		byFlows:    newCMSketch(cfg.Rows, cfg.Cols),
		byPackets:  newCMSketch(cfg.Rows, cfg.Cols),
		candidates: map[uint32]bool{},
	}
	return s, nil
}

// Name implements detector.Detector.
func (s *Sketch) Name() string { return SketchName }

// Observe implements Online.
func (s *Sketch) Observe(r *flow.Record) []detector.Alarm {
	var out []detector.Alarm
	s.win.stepTo(r.Start, func(start uint32) {
		out = append(out, s.closeWindow(start)...)
	})
	s.totalFlows++
	s.totalPackets += r.Packets
	keys := [2]uint32{uint32(r.SrcIP), uint32(r.DstIP)}
	for i := range s.dims {
		d := &s.dims[i]
		ef := d.byFlows.add(keys[i], 1)
		ep := d.byPackets.add(keys[i], r.Packets)
		// Track a candidate once its running share crosses the ratio; the
		// window close re-checks against the final totals, so an early
		// over-trigger costs a map entry, not a false alarm.
		if s.totalFlows >= 32 &&
			(float64(ef) >= s.cfg.Ratio*float64(s.totalFlows) ||
				float64(ep) >= s.cfg.Ratio*float64(s.totalPackets)) {
			d.candidates[keys[i]] = true
		}
	}
	return out
}

// Advance implements Online.
func (s *Sketch) Advance(now uint32) []detector.Alarm {
	var out []detector.Alarm
	s.win.advance(now, func(start uint32) {
		out = append(out, s.closeWindow(start)...)
	})
	return out
}

// closeWindow re-checks every candidate against the window's final
// totals, emits the surviving heavy hitters (strongest share first,
// capped at MaxAlarms per dimension), and resets for the next window.
func (s *Sketch) closeWindow(start uint32) []detector.Alarm {
	var out []detector.Alarm
	if s.totalFlows >= s.cfg.MinFlows {
		for i := range s.dims {
			out = append(out, s.dimAlarms(&s.dims[i], start)...)
		}
	}
	s.totalFlows, s.totalPackets = 0, 0
	for i := range s.dims {
		s.dims[i].byFlows.reset()
		s.dims[i].byPackets.reset()
		clear(s.dims[i].candidates)
	}
	return out
}

// dimAlarms scores one dimension's candidates for a closing window.
func (s *Sketch) dimAlarms(d *sketchDim, start uint32) []detector.Alarm {
	type hh struct {
		key   uint32
		share float64
	}
	var hits []hh
	for key := range d.candidates {
		fShare := float64(d.byFlows.estimate(key)) / float64(s.totalFlows)
		var pShare float64
		if s.totalPackets > 0 {
			pShare = float64(d.byPackets.estimate(key)) / float64(s.totalPackets)
		}
		if share := max(fShare, pShare); share >= s.cfg.Ratio {
			hits = append(hits, hh{key, share})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].share != hits[j].share {
			return hits[i].share > hits[j].share
		}
		return hits[i].key < hits[j].key
	})
	if len(hits) > s.cfg.MaxAlarms {
		hits = hits[:s.cfg.MaxAlarms]
	}
	out := make([]detector.Alarm, 0, len(hits))
	for _, h := range hits {
		out = append(out, detector.Alarm{
			Detector: SketchName,
			Interval: alignedInterval(start, s.cfg.AlignSeconds),
			Kind:     d.kind,
			Score:    h.share,
			Meta:     []detector.MetaItem{{Feature: d.feature, Value: h.key}},
		})
	}
	return out
}

// Detect implements detector.Detector by replaying the span through a
// fresh instance (see CUSUM.Detect).
func (s *Sketch) Detect(ctx context.Context, store nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	fresh, err := NewSketch(s.cfg)
	if err != nil {
		return nil, err
	}
	return replayDetect(ctx, fresh, store, span)
}

func init() {
	detector.MustRegister(SketchName, func(cfg any) (detector.Detector, error) {
		c, err := detector.CoerceConfig(cfg, DefaultSketchConfig())
		if err != nil {
			return nil, fmt.Errorf("sketch: %w", err)
		}
		return NewSketch(c)
	})
}
