package stream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
)

// sealLog collects store OnSeal notifications under a lock — the hook
// runs on the pipeline worker while the test goroutine reads.
type sealLog struct {
	mu   sync.Mutex
	bins []uint32
}

func (sl *sealLog) hook(bin uint32) {
	sl.mu.Lock()
	sl.bins = append(sl.bins, bin)
	sl.mu.Unlock()
}

func (sl *sealLog) snapshot() []uint32 {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return append([]uint32(nil), sl.bins...)
}

// sealRecorder collects OnSealed alarm deliveries.
type sealRecorder struct {
	mu     sync.Mutex
	bins   []flow.Interval
	alarms [][]detector.Alarm
}

func (sr *sealRecorder) hook(bin flow.Interval, alarms []detector.Alarm) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.bins = append(sr.bins, bin)
	sr.alarms = append(sr.alarms, alarms)
}

// waitIngested blocks until the pipeline worker has consumed n records.
func waitIngested(t *testing.T, p *Pipeline, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Ingested < n {
		if time.Now().After(deadline) {
			t.Fatalf("worker stuck at %d/%d records", p.Stats().Ingested, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipelineSealsBehindClock drives records through three bins and
// pins the sealing contract: a bin seals (durable, store hook fired)
// once the clock passes its end, and Close seals whatever remains.
func TestPipelineSealsBehindClock(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	var sl sealLog
	store.OnSeal(sl.hook)
	p, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, start := range []uint32{10, 100, 310, 320, 615} {
		r := rec(start, 1, 1, 2)
		if err := p.Ingest(ctx, &r); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Bins 0 and 300 sealed when the clock crossed them; 600 at Close.
	if got := sl.snapshot(); len(got) != 3 || got[0] != 0 || got[1] != 300 || got[2] != 600 {
		t.Fatalf("store sealed %v, want [0 300 600]", got)
	}
	st := p.Stats()
	if st.Ingested != 5 || st.Dropped != 0 || st.SealedBins != 3 || len(st.OpenBins) != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Clock != 615 {
		t.Fatalf("clock = %d, want 615", st.Clock)
	}

	// Everything is durable without any explicit Flush.
	recs, err := store.Records(ctx, flow.Interval{Start: 0, End: 900}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("store holds %d records, want 5", len(recs))
	}

	// The pipeline rejects ingest after Close.
	r := rec(700, 1, 1, 2)
	if err := p.Ingest(ctx, &r); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Ingest err = %v, want ErrClosed", err)
	}
	if p.TryIngest(&r) {
		t.Fatal("post-close TryIngest accepted a record")
	}
	if got := p.Stats().Dropped; got != 1 {
		t.Fatalf("post-close TryIngest counted %d drops, want 1", got)
	}
}

// TestPipelineSealLag pins the straggler grace: with SealLag 60 a bin
// only seals once the clock is 60 s past its end, so slightly late
// records still land in their (open) bin.
func TestPipelineSealLag(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var sl sealLog
	store.OnSeal(sl.hook)
	p, err := New(Config{Store: store, SealLag: 60})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ingest := func(start uint32) {
		r := rec(start, 1, 1, 2)
		if err := p.Ingest(ctx, &r); err != nil {
			t.Fatal(err)
		}
	}
	ingest(10)
	ingest(330) // clock 330 < 300+60: bin 0 stays open
	ingest(290) // straggler lands in the still-open bin 0
	waitIngested(t, p, 3)
	if got := sl.snapshot(); len(got) != 0 {
		t.Fatalf("bins sealed during the grace window: %v", got)
	}
	ingest(360) // clock 360 >= 360: bin 0 seals now
	waitIngested(t, p, 4)
	if got := sl.snapshot(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("sealed %v after the grace expired, want [0]", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := store.Records(ctx, flow.Interval{Start: 0, End: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("bin 0 holds %d records, want 2 (incl. the straggler)", len(recs))
	}
}

// blockingStore wraps an Engine so Add blocks until released — the lever
// for making backpressure deterministic.
type blockingStore struct {
	nfstore.Engine
	entered chan struct{} // closed when the first Add is reached
	release chan struct{} // Adds wait on this
	once    sync.Once
}

func (b *blockingStore) Add(r *flow.Record) error {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return b.Engine.Add(r)
}

// TestPipelineBackpressure pins the two producer paths against a full
// buffer: TryIngest drops and counts, Ingest blocks until its context
// cancels.
func TestPipelineBackpressure(t *testing.T) {
	bs := &blockingStore{
		Engine:  NewCollector(300),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	p, err := New(Config{Store: bs, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r1 := rec(10, 1, 1, 2)
	if err := p.Ingest(ctx, &r1); err != nil {
		t.Fatal(err)
	}
	<-bs.entered // the worker is now stuck inside Add
	r2 := rec(20, 1, 1, 2)
	if err := p.Ingest(ctx, &r2); err != nil { // fills the 1-slot buffer
		t.Fatal(err)
	}
	r3 := rec(30, 1, 1, 2)
	if p.TryIngest(&r3) {
		t.Fatal("TryIngest succeeded on a full buffer")
	}
	if got := p.Stats().Dropped; got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := p.Ingest(cctx, &r3); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked Ingest err = %v, want context.Canceled", err)
	}
	close(bs.release)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Ingested; got != 2 {
		t.Fatalf("ingested = %d, want 2", got)
	}
}

// TestPipelineDeliversOnlineAlarms runs the pipeline with a real sketch
// detector over a flood and pins that the alarms arrive through OnSealed
// attached to their bin.
func TestPipelineDeliversOnlineAlarms(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	dets, err := BuildDetectors([]string{SketchName})
	if err != nil {
		t.Fatal(err)
	}
	var sr sealRecorder
	p, err := New(Config{Store: store, Detectors: dets, OnSealed: sr.hook})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Bin 0: a fan-in flood — every record targets one victim dst, dense
	// enough (240 flows in the first minute) to clear the MinFlows gate.
	for i := 0; i < 400; i++ {
		r := rec(uint32(i/4), byte(i%200), 250, 2)
		if err := p.Ingest(ctx, &r); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sr.bins) == 0 {
		t.Fatal("no sealed-bin delivery")
	}
	var got []detector.Alarm
	for _, batch := range sr.alarms {
		got = append(got, batch...)
	}
	if len(got) == 0 {
		t.Fatal("flood raised no online alarms")
	}
	for _, a := range got {
		if a.Detector != SketchName || a.Kind != detector.KindDoS {
			t.Fatalf("unexpected alarm %+v", a)
		}
		if a.Interval != (flow.Interval{Start: 0, End: 300}) {
			t.Fatalf("alarm interval %v, want the sealed bin", a.Interval)
		}
	}
	if st := p.Stats(); st.Alarms != uint64(len(got)) {
		t.Fatalf("stats.Alarms = %d, want %d", st.Alarms, len(got))
	}
}

// TestOnlineBatchParity pins that an online detector replayed through
// its batch Detect over the sealed store reproduces the live alarm
// sequence exactly, given a clock-ordered stream.
func TestOnlineBatchParity(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := SketchConfig{MinFlows: 50}
	sk, err := NewSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live, _ := NewSketch(cfg)
	var liveAlarms []detector.Alarm
	for i := 0; i < 400; i++ {
		r := rec(uint32(i*3/4), byte(i%200), 250, 2) // clock-ordered fan-in
		if err := store.Add(&r); err != nil {
			t.Fatal(err)
		}
		liveAlarms = append(liveAlarms, live.Observe(&r)...)
	}
	liveAlarms = append(liveAlarms, live.Advance(300)...)
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(liveAlarms) == 0 {
		t.Fatal("live pass raised no alarms")
	}
	batch, err := sk.Detect(context.Background(), store, flow.Interval{Start: 0, End: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(liveAlarms) {
		t.Fatalf("batch replay found %d alarms, live %d", len(batch), len(liveAlarms))
	}
	for i := range batch {
		if batch[i].Kind != liveAlarms[i].Kind || batch[i].Interval != liveAlarms[i].Interval ||
			batch[i].Score != liveAlarms[i].Score || len(batch[i].Meta) != 1 ||
			batch[i].Meta[0] != liveAlarms[i].Meta[0] {
			t.Fatalf("alarm %d differs: live %+v batch %+v", i, liveAlarms[i], batch[i])
		}
	}
}
