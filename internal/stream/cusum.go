package stream

import (
	"context"
	"fmt"
	"math"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

// CUSUMName is the registry name of the online change-point detector.
const CUSUMName = "cusum"

// CUSUMConfig tunes the online CUSUM change-point detector.
type CUSUMConfig struct {
	// WindowSeconds is the volume-accumulation window (default 60 — five
	// observations per standard 300 s bin, so a change surfaces well
	// before the bin seals).
	WindowSeconds uint32
	// AlignSeconds widens alarm intervals to enclosing bins (default
	// 300) so extraction mines the whole bin, like batch detectors.
	AlignSeconds uint32
	// Drift is the CUSUM slack k in baseline standard deviations
	// (default 0.5): deviations below mean + k·σ never accumulate.
	Drift float64
	// Threshold is the decision threshold h in baseline standard
	// deviations (default 6): an alarm fires when the cumulative sum
	// exceeds h·σ.
	Threshold float64
	// MinWindows is the baseline warm-up (default 8): no alarms until
	// this many windows seeded the mean/variance estimate.
	MinWindows int
}

// DefaultCUSUMConfig returns the detector defaults.
func DefaultCUSUMConfig() CUSUMConfig {
	return CUSUMConfig{
		WindowSeconds: 60,
		AlignSeconds:  300,
		Drift:         0.5,
		Threshold:     6,
		MinWindows:    8,
	}
}

func (c *CUSUMConfig) validate() error {
	if c.WindowSeconds == 0 {
		c.WindowSeconds = 60
	}
	if c.AlignSeconds == 0 {
		c.AlignSeconds = 300
	}
	if c.Drift <= 0 {
		c.Drift = 0.5
	}
	if c.Threshold <= 0 {
		c.Threshold = 6
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 8
	}
	if c.AlignSeconds < c.WindowSeconds {
		return fmt.Errorf("cusum: AlignSeconds %d < WindowSeconds %d", c.AlignSeconds, c.WindowSeconds)
	}
	return nil
}

// cusumChannel is one one-sided CUSUM accumulator over a volume series.
type cusumChannel struct {
	base stats.Welford
	sum  float64
}

// step folds one closed window's volume x into the channel: it returns
// the alarm score (cumulative deviation in σ units) when the sum crosses
// the threshold. Alarmed windows do not contaminate the baseline — a
// sustained anomaly keeps alarming against the pre-change mean instead
// of teaching the detector that floods are normal — and the sum resets
// after an alarm so each window re-earns the threshold.
func (c *cusumChannel) step(x float64, cfg *CUSUMConfig) (score float64, alarmed bool) {
	if c.base.N() >= cfg.MinWindows {
		std := c.base.Std()
		// Variance floor: Poisson-ish counts have σ ≈ √mean; a freakishly
		// stable warm-up must not make every later window an alarm.
		if f := math.Sqrt(math.Abs(c.base.Mean())); std < f {
			std = f
		}
		if std < 1 {
			std = 1
		}
		c.sum += x - c.base.Mean() - cfg.Drift*std
		if c.sum < 0 {
			c.sum = 0
		}
		if c.sum > cfg.Threshold*std {
			score = c.sum / std
			c.sum = 0
			return score, true
		}
	}
	c.base.Add(x)
	return 0, false
}

// CUSUM is the online change-point detector: per-window flow and packet
// volumes each feed a one-sided CUSUM accumulator against a Welford
// baseline, and a window whose cumulative deviation crosses the
// threshold raises one alarm for its enclosing bin. It carries no
// meta-data — exactly the under-reporting the paper's extraction engine
// exists to repair.
type CUSUM struct {
	cfg CUSUMConfig
	win windower

	flows, packets float64 // current-window accumulation
	chFlows        cusumChannel
	chPackets      cusumChannel
}

// NewCUSUM builds the detector; zero config fields take defaults.
func NewCUSUM(cfg CUSUMConfig) (*CUSUM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &CUSUM{cfg: cfg, win: windower{width: cfg.WindowSeconds}}, nil
}

// Name implements detector.Detector.
func (c *CUSUM) Name() string { return CUSUMName }

// Observe implements Online.
func (c *CUSUM) Observe(r *flow.Record) []detector.Alarm {
	var out []detector.Alarm
	c.win.stepTo(r.Start, func(start uint32) {
		out = append(out, c.closeWindow(start)...)
	})
	c.flows++
	c.packets += float64(r.Packets)
	return out
}

// Advance implements Online.
func (c *CUSUM) Advance(now uint32) []detector.Alarm {
	var out []detector.Alarm
	c.win.advance(now, func(start uint32) {
		out = append(out, c.closeWindow(start)...)
	})
	return out
}

// closeWindow steps both channels with the closed window's volumes and
// emits at most one alarm (the stronger channel's score).
func (c *CUSUM) closeWindow(start uint32) []detector.Alarm {
	fScore, fAlarm := c.chFlows.step(c.flows, &c.cfg)
	pScore, pAlarm := c.chPackets.step(c.packets, &c.cfg)
	c.flows, c.packets = 0, 0
	if !fAlarm && !pAlarm {
		return nil
	}
	score := math.Max(fScore, pScore)
	return []detector.Alarm{{
		Detector: CUSUMName,
		Interval: alignedInterval(start, c.cfg.AlignSeconds),
		Kind:     detector.KindUnknown,
		Score:    score,
	}}
}

// Detect implements detector.Detector by replaying the span through a
// fresh instance, so a streaming CUSUM can also be invoked batch-style
// over sealed bins without disturbing its live window state.
func (c *CUSUM) Detect(ctx context.Context, store nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	fresh, err := NewCUSUM(c.cfg)
	if err != nil {
		return nil, err
	}
	return replayDetect(ctx, fresh, store, span)
}

func init() {
	detector.MustRegister(CUSUMName, func(cfg any) (detector.Detector, error) {
		c, err := detector.CoerceConfig(cfg, DefaultCUSUMConfig())
		if err != nil {
			return nil, fmt.Errorf("cusum: %w", err)
		}
		return NewCUSUM(c)
	})
}
