package stream

import (
	"context"
	"errors"
	"iter"
	"sort"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// errCollectorWriteOnly rejects reads on a Collector — it captures a
// record stream, it does not serve queries.
var errCollectorWriteOnly = errors.New("stream: collector is write-only")

// Compile-time check: the collector is a full (write-only) Engine.
var _ nfstore.Engine = (*Collector)(nil)

// Collector is a minimal write-only nfstore.Engine that captures every
// added record in memory. It adapts the scenario generator — which
// writes into a store — into a record stream for live replay: generate
// into a Collector, then feed Sorted() through Ingest in clock order.
// Used by the live-mode tests, flowgen -live, and the streaming bench.
type Collector struct {
	binSeconds uint32
	// Captured holds the captured records in Add order.
	Captured []flow.Record
}

// NewCollector returns a collector with the given bin width (which only
// affects BinSeconds; capture is unbinned). Zero takes the standard
// 300 s measurement bin.
func NewCollector(binSeconds uint32) *Collector {
	if binSeconds == 0 {
		binSeconds = 300
	}
	return &Collector{binSeconds: binSeconds}
}

// Sorted returns the captured records in stream-clock order (stable by
// Start, so equal-start records keep generation order).
func (c *Collector) Sorted() []flow.Record {
	out := make([]flow.Record, len(c.Captured))
	copy(out, c.Captured)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// BinSeconds implements nfstore.Engine.
func (c *Collector) BinSeconds() uint32 { return c.binSeconds }

// Bin implements nfstore.Engine.
func (c *Collector) Bin(t uint32) flow.Interval {
	start := t - t%c.binSeconds
	return flow.Interval{Start: start, End: start + c.binSeconds}
}

// Bins implements nfstore.Engine.
func (c *Collector) Bins() ([]uint32, error) { return nil, errCollectorWriteOnly }

// Span returns the captured extent.
func (c *Collector) Span() (flow.Interval, bool, error) {
	if len(c.Captured) == 0 {
		return flow.Interval{}, false, nil
	}
	iv := flow.Interval{Start: c.Captured[0].Start, End: c.Captured[0].Start}
	for i := range c.Captured {
		iv.Start = min(iv.Start, c.Captured[i].Start)
		iv.End = max(iv.End, c.Captured[i].Start)
	}
	iv.End = iv.End - iv.End%c.binSeconds + c.binSeconds
	return iv, true, nil
}

// Add implements nfstore.Engine.
func (c *Collector) Add(r *flow.Record) error {
	c.Captured = append(c.Captured, *r)
	return nil
}

// AddAll implements nfstore.Engine.
func (c *Collector) AddAll(rs []flow.Record) error {
	c.Captured = append(c.Captured, rs...)
	return nil
}

// Flush implements nfstore.Engine (a no-op: capture is in memory).
func (c *Collector) Flush() error { return nil }

// Close implements nfstore.Engine.
func (c *Collector) Close() error { return nil }

// Query implements nfstore.Engine (unsupported).
func (c *Collector) Query(context.Context, flow.Interval, *nffilter.Filter, func(*flow.Record) error) error {
	return errCollectorWriteOnly
}

// Iter implements nfstore.Engine (unsupported).
func (c *Collector) Iter(context.Context, flow.Interval, *nffilter.Filter) iter.Seq2[*flow.Record, error] {
	return func(yield func(*flow.Record, error) bool) {
		yield(nil, errCollectorWriteOnly)
	}
}

// Records implements nfstore.Engine (unsupported; the captured slice is
// the exported Captured field).
func (c *Collector) Records(context.Context, flow.Interval, *nffilter.Filter) ([]flow.Record, error) {
	return nil, errCollectorWriteOnly
}

// Count implements nfstore.Engine (unsupported).
func (c *Collector) Count(context.Context, flow.Interval, *nffilter.Filter) (uint64, uint64, uint64, error) {
	return 0, 0, 0, errCollectorWriteOnly
}

// Summaries implements nfstore.Engine (unsupported).
func (c *Collector) Summaries(context.Context, flow.Interval, *nffilter.Filter) ([]nfstore.BinSummary, error) {
	return nil, errCollectorWriteOnly
}

// TopN implements nfstore.Engine (unsupported).
func (c *Collector) TopN(context.Context, flow.Interval, *nffilter.Filter, flow.Feature, nfstore.Weight, int) ([]nfstore.KeyCount, error) {
	return nil, errCollectorWriteOnly
}

// Stats implements nfstore.Engine.
func (c *Collector) Stats() nfstore.Stats { return nfstore.Stats{} }

// ResetStats implements nfstore.Engine.
func (c *Collector) ResetStats() {}

// SetParallelism implements nfstore.Engine.
func (c *Collector) SetParallelism(int) {}

// Parallelism implements nfstore.Engine.
func (c *Collector) Parallelism() int { return 1 }

// SegmentFormat implements nfstore.Engine.
func (c *Collector) SegmentFormat() uint16 { return 0 }

// SegmentFormats implements nfstore.Engine.
func (c *Collector) SegmentFormats() (map[uint16]int, error) { return nil, errCollectorWriteOnly }
