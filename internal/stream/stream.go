// Package stream is the live ingest subsystem: records arrive one at a
// time instead of in pre-built bins, online detectors observe them as
// they pass, and measurement bins seal themselves when the stream clock
// crosses a bin boundary — converting the offline detect-then-mine
// pipeline of the paper into an always-on service.
//
// The pieces:
//
//	producers ──▶ bounded channel ──▶ Pipeline worker ──▶ nfstore (Seal per bin)
//	                                      │
//	                          online detectors (Observe)
//	                                      │
//	                         OnSealed(bin, alarms) ──▶ watcher (facade)
//
// A Pipeline owns one consumer goroutine fed by a bounded channel:
// Ingest blocks for space (backpressure, bounded by the caller's
// context), TryIngest drops instead and counts the drop. The worker
// appends each record to the store, feeds it to every online detector,
// and advances the stream clock; once the clock passes a bin's end (plus
// the configured lag for stragglers) the bin is sealed through the
// store's optional nfstore.Sealer and the detectors' closed-window
// alarms for the bin are handed to the OnSealed hook — the seam the
// facade's incident watcher consumes.
//
// Online detectors implement Online: per-record Observe plus Advance to
// force windows closed at bin boundaries and shutdown. The built-ins —
// "cusum" (change-point detection over per-window volume) and "sketch"
// (count-min heavy hitters per window) — also register ordinary batch
// factories in the detector registry, replaying stored bins through a
// fresh instance, so the same implementations serve System.Detect.
package stream

import (
	"context"
	"sort"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
)

// Online is an anomaly detector that consumes the stream record by
// record instead of scanning sealed bins. Implementations are NOT safe
// for concurrent use — the pipeline's single worker goroutine owns them.
type Online interface {
	detector.Detector

	// Observe accounts one record and returns any alarms whose windows
	// this observation closed (usually nil).
	Observe(r *flow.Record) []detector.Alarm

	// Advance force-closes every window ending at or before now and
	// returns the alarms those windows raised. The pipeline calls it at
	// bin seals, and with EndOfStream at shutdown so no window is left
	// dangling.
	Advance(now uint32) []detector.Alarm
}

// EndOfStream is the Advance sentinel for shutdown: it closes the one
// in-progress window and stops, instead of walking (and feeding zero
// volumes for) every empty window between the last record and the end
// of uint32 time.
const EndOfStream = ^uint32(0)

// windower tracks the current aligned time window of an online detector.
type windower struct {
	width   uint32
	cur     uint32 // current window start
	started bool
}

// stepTo makes the window containing t current, invoking closeFn once
// per completed window start (ascending) on the way. Records earlier
// than the current window (late stragglers) keep the window unchanged —
// they are accounted into the current window by the caller.
func (w *windower) stepTo(t uint32, closeFn func(start uint32)) {
	nw := t - t%w.width
	if !w.started {
		w.cur, w.started = nw, true
		return
	}
	for w.cur < nw {
		closeFn(w.cur)
		w.cur += w.width
	}
}

// advance closes every window ending at or before now; the EndOfStream
// sentinel closes exactly the in-progress window. Arithmetic is widened
// so a now near the uint32 maximum cannot overflow.
func (w *windower) advance(now uint32, closeFn func(start uint32)) {
	if !w.started {
		return
	}
	if now == EndOfStream {
		closeFn(w.cur)
		w.cur += w.width
		w.started = false
		return
	}
	for uint64(w.cur)+uint64(w.width) <= uint64(now) {
		closeFn(w.cur)
		w.cur += w.width
	}
}

// alignedInterval widens a window start to its enclosing align-sized
// interval — online alarms are reported against full measurement bins so
// extraction mines the whole bin's flows, like every batch detector.
func alignedInterval(winStart, align uint32) flow.Interval {
	a := winStart - winStart%align
	return flow.Interval{Start: a, End: a + align}
}

// replayDetect adapts an online detector to the batch Detector contract:
// the span's records stream out of the store bin by bin, each bin sorted
// into clock order (segments store records in arrival order), through
// Observe, with a final Advance at the span end. The caller passes a
// fresh detector instance — replay mutates its window state.
func replayDetect(ctx context.Context, d Online, store nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	binSec := store.BinSeconds()
	var (
		out     []detector.Alarm
		buf     []flow.Record
		curBin  uint32
		started bool
	)
	flushBin := func() {
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].Start < buf[j].Start })
		for i := range buf {
			out = append(out, d.Observe(&buf[i])...)
		}
		buf = buf[:0]
	}
	err := store.Query(ctx, span, nil, func(r *flow.Record) error {
		b := r.Start - r.Start%binSec
		if !started {
			curBin, started = b, true
		}
		if b != curBin {
			flushBin()
			curBin = b
		}
		buf = append(buf, *r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	flushBin()
	out = append(out, d.Advance(span.End)...)
	return out, nil
}
