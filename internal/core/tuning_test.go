package core

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/stats"
)

// tinyExtractor builds an extractor over a throwaway store (mineTuned
// only touches the dataset, not the store).
func tinyExtractor(t *testing.T, opts Options) *Extractor {
	t.Helper()
	store, _ := buildScenario(t, gen.Scenario{Bins: 1, StartTime: coreBase, Seed: 1,
		Background: gen.Background{NumPoPs: 1, FlowsPerBin: 10}})
	ex, err := New(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// uniformDataset builds n distinct single-flow transactions (every
// itemset is weak) — the shape that exhausts tuning rounds.
func uniformDataset(seed uint64, n int) *itemset.Dataset {
	rng := stats.NewRNG(seed)
	txs := make([]itemset.Tx, n)
	for i := range txs {
		r := flow.Record{
			SrcIP:   flow.IP(rng.Intn(1 << 20)),
			DstIP:   flow.IP(rng.Intn(1 << 20)),
			SrcPort: uint16(i),
			DstPort: uint16(rng.Intn(1 << 14)),
			Proto:   flow.ProtoTCP,
		}
		txs[i] = itemset.Tx{Items: itemset.ItemsOf(&r), Flows: 1, Packets: 10}
	}
	return itemset.FromTxs(txs)
}

// dominantDataset is one transaction carrying all the weight: a single
// maximal itemset covers 100% of the traffic.
func dominantDataset(totalFlows uint64) *itemset.Dataset {
	r := flow.Record{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: flow.ProtoTCP}
	return itemset.FromTxs([]itemset.Tx{
		{Items: itemset.ItemsOf(&r), Flows: totalFlows, Packets: totalFlows * 10},
	})
}

// TestTuningFloorReachedRoundOne: when the initial support already sits
// at the floor, the loop must record exactly one round and stop.
func TestTuningFloorReachedRoundOne(t *testing.T) {
	opts := DefaultOptions()
	opts.SupportFloor = 10
	opts.InitialSupportFraction = 0.2
	ex := tinyExtractor(t, opts)

	// 20 flows: 0.2 × 20 = 4 < floor 10, so InitialMin clamps to the floor.
	ds := uniformDataset(1, 20)
	_, tuning, err := ex.mineTuned(t.Context(), ds, false)
	if err != nil {
		t.Fatal(err)
	}
	if tuning.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1 (floor reached immediately)", tuning.Rounds)
	}
	if tuning.InitialMin != opts.SupportFloor || tuning.FinalMin != opts.SupportFloor {
		t.Fatalf("trajectory %d -> %d, want pinned at floor %d",
			tuning.InitialMin, tuning.FinalMin, opts.SupportFloor)
	}
}

// TestTuningCoverageSatisfiedButBandNot: one dominant itemset covers all
// traffic (CoverageTarget satisfied from round 1) but the MinItemsets
// band is not — the loop must keep halving all the way to the floor
// rather than stop at "coverage explained".
func TestTuningCoverageSatisfiedButBandNot(t *testing.T) {
	opts := DefaultOptions()
	opts.SupportFloor = 1
	opts.InitialSupportFraction = 0.5
	opts.MinItemsets = 2
	opts.MaxTuningRounds = 20
	ex := tinyExtractor(t, opts)

	ds := dominantDataset(1024)
	res, tuning, err := ex.mineTuned(t.Context(), ds, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Coverage([]itemset.Set{res[0].Items}, false, 0); got < opts.CoverageTarget {
		t.Fatalf("test premise broken: coverage %v < target %v", got, opts.CoverageTarget)
	}
	if tuning.ItemsetsSeen >= opts.MinItemsets {
		t.Fatalf("test premise broken: %d itemsets reached the band", tuning.ItemsetsSeen)
	}
	// InitialMin 512 halves to the floor: rounds 0..9 mine at
	// 512,256,...,1 — ten rounds, final support 1.
	if tuning.InitialMin != 512 {
		t.Fatalf("InitialMin = %d, want 512", tuning.InitialMin)
	}
	if tuning.FinalMin != 1 {
		t.Fatalf("FinalMin = %d, want 1 (halved to the floor)", tuning.FinalMin)
	}
	if tuning.Rounds != 10 {
		t.Fatalf("Rounds = %d, want 10", tuning.Rounds)
	}
}

// TestTuningMaxRoundsExhaustion: a uniform dataset never reaches the
// band, so the loop must stop at MaxTuningRounds with the support halved
// exactly Rounds-1 times.
func TestTuningMaxRoundsExhaustion(t *testing.T) {
	opts := DefaultOptions()
	opts.SupportFloor = 1
	opts.InitialSupportFraction = 1
	opts.MaxTuningRounds = 3
	ex := tinyExtractor(t, opts)

	ds := uniformDataset(2, 4096)
	_, tuning, err := ex.mineTuned(t.Context(), ds, false)
	if err != nil {
		t.Fatal(err)
	}
	if tuning.Rounds != opts.MaxTuningRounds {
		t.Fatalf("Rounds = %d, want %d (exhaustion)", tuning.Rounds, opts.MaxTuningRounds)
	}
	if tuning.InitialMin != 4096 {
		t.Fatalf("InitialMin = %d, want 4096", tuning.InitialMin)
	}
	// No stop condition is ever met, so the support halves after every
	// round (4096 -> 2048 -> 1024 -> 512): FinalMin records the support a
	// fourth round would have mined at.
	if tuning.FinalMin != 512 {
		t.Fatalf("FinalMin = %d, want 512 after three halvings", tuning.FinalMin)
	}
}

func TestShareGuardsZeroTotal(t *testing.T) {
	if got := share(5, 0); got != 0 {
		t.Fatalf("share(5,0) = %v, want 0 (not NaN/Inf)", got)
	}
	if got := share(0, 0); got != 0 {
		t.Fatalf("share(0,0) = %v, want 0", got)
	}
	if got := share(3, 4); got != 0.75 {
		t.Fatalf("share(3,4) = %v, want 0.75", got)
	}
}

// TestScoresNeverNaN runs a full extraction and asserts the ranking
// never produces NaN scores (the latent pShare division bug).
func TestScoresNeverNaN(t *testing.T) {
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.9")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: coreBase, Seed: 33,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 800, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	res, err := ex.Extract(t.Context(), &detector.Alarm{Interval: truth.Entries[0].Interval})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Itemsets {
		if math.IsNaN(rep.Score) || math.IsInf(rep.Score, 0) {
			t.Fatalf("itemset %v has score %v", rep.Items, rep.Score)
		}
	}
}

// TestExtractMinerEquivalence runs the same extraction through every
// registered miner and requires identical results — the engine-level
// restatement of the cross-miner property tests.
func TestExtractMinerEquivalence(t *testing.T) {
	scannerA := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.18.137.129")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: coreBase, Seed: 44,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scannerA, Victim: victim, SrcPort: 55548,
				Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 2},
			{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 400,
				SourceNet: flow.MustParsePrefix("172.16.0.0/12"), FlowsPerSource: 2, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	alarm := &detector.Alarm{Interval: truth.Entries[0].Interval}

	apOpts := DefaultOptions()
	apOpts.Miner = "apriori"
	apRes, err := MustNew(store, apOpts).Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if len(apRes.Itemsets) == 0 {
		t.Fatal("no itemsets extracted")
	}

	fpOpts := DefaultOptions()
	fpOpts.Miner = "fpgrowth"
	fpRes, err := MustNew(store, fpOpts).Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if len(apRes.Itemsets) != len(fpRes.Itemsets) {
		t.Fatalf("apriori found %d itemsets, fpgrowth %d", len(apRes.Itemsets), len(fpRes.Itemsets))
	}
	for i := range apRes.Itemsets {
		a, f := &apRes.Itemsets[i], &fpRes.Itemsets[i]
		if !a.Items.Equal(f.Items) || a.FlowSupport != f.FlowSupport ||
			a.PacketSupport != f.PacketSupport || a.Score != f.Score {
			t.Fatalf("row %d differs: %v vs %v", i, a, f)
		}
	}
}
