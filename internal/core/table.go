package core

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/report"
)

// Table renders the extraction result in the shape of the paper's
// Table 1: one row per itemset, one column per traffic feature (absent
// features shown as "*", exactly like the paper's wildcards), plus the
// flow and packet supports.
func (r *Result) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Itemsets for alarm %s (%s, %s)", r.Alarm.ID, r.Alarm.Kind, r.Alarm.Interval),
		"srcIP", "dstIP", "srcPort", "dstPort", "proto", "#flows", "#packets",
	)
	for i := range r.Itemsets {
		rep := &r.Itemsets[i]
		row := make([]string, 0, 7)
		for _, f := range flow.Features() {
			if v, ok := rep.Items.Feature(f); ok {
				row = append(row, f.FormatValue(v))
			} else {
				row = append(row, "*")
			}
		}
		row = append(row, humanCount(rep.FlowSupport), humanCount(rep.PacketSupport))
		t.AddRow(row...)
	}
	return t
}

// humanCount renders counts the way the paper's Table 1 does: "312.59K"
// style suffixes above 10,000, plain integers below.
func humanCount(v uint64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.2fK", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
