package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/nfstore"
)

const coreBase = uint32(1_200_000_000)

// buildScenario generates a trace and returns store + truth.
func buildScenario(t *testing.T, s gen.Scenario) (*nfstore.Store, *gen.Truth) {
	t.Helper()
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	truth, err := s.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	return store, truth
}

// hasItem reports whether any reported itemset contains the item.
func hasItem(res *Result, f flow.Feature, v uint32) bool {
	want := itemset.NewItem(f, v)
	for _, r := range res.Itemsets {
		if r.Items.Contains(want) {
			return true
		}
	}
	return false
}

func TestOptionsValidation(t *testing.T) {
	store, _ := buildScenario(t, gen.Scenario{Bins: 1, StartTime: coreBase, Seed: 1,
		Background: gen.Background{NumPoPs: 1, FlowsPerBin: 10}})
	// Explicitly invalid values are errors, uniformly across fields.
	bad := []Options{
		{MinItemsets: 5, MaxItemsets: 2},
		{InitialSupportFraction: 2},
		{InitialSupportFraction: -0.5},
		{PacketCoverageMin: 2},
		{PacketCoverageMin: -1},
		{MinItemsets: -1},
		{MaxItemsets: -1},
		{MaxTuningRounds: -1},
		{MinCandidates: -3},
		{CoverageTarget: 1.5},
		{CoverageTarget: -0.1},
		{BaselineRatio: 0.5},
		{MaxLen: -1},
		{Miner: "no-such-miner"},
		{InitialSupportFraction: math.NaN()},
		{CoverageTarget: math.NaN()},
		{PacketCoverageMin: math.NaN()},
		{BaselineRatio: math.NaN()},
	}
	for i, o := range bad {
		if _, err := New(store, o); err == nil {
			t.Errorf("options %d (%+v) must be rejected", i, o)
		}
	}
	if _, err := New(nil, DefaultOptions()); err == nil {
		t.Error("nil store must be rejected")
	}
	if _, err := New(store, DefaultOptions()); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

func TestOptionsZeroValuesInheritDefaults(t *testing.T) {
	// The zero value of every field inherits the default (never an
	// error, never a surprising rewrite of an explicit value).
	var o Options
	if err := o.validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
	def := DefaultOptions()
	if o.MinItemsets != def.MinItemsets || o.MaxItemsets != def.MaxItemsets {
		t.Errorf("band = [%d,%d], want [%d,%d]", o.MinItemsets, o.MaxItemsets, def.MinItemsets, def.MaxItemsets)
	}
	if o.InitialSupportFraction != def.InitialSupportFraction {
		t.Errorf("InitialSupportFraction = %v, want %v", o.InitialSupportFraction, def.InitialSupportFraction)
	}
	if o.SupportFloor != def.SupportFloor {
		t.Errorf("SupportFloor = %d, want %d", o.SupportFloor, def.SupportFloor)
	}
	if o.MaxTuningRounds != def.MaxTuningRounds {
		t.Errorf("MaxTuningRounds = %d, want %d", o.MaxTuningRounds, def.MaxTuningRounds)
	}
	if o.MinCandidates != def.MinCandidates {
		t.Errorf("MinCandidates = %d, want %d", o.MinCandidates, def.MinCandidates)
	}
	if o.CoverageTarget != def.CoverageTarget {
		t.Errorf("CoverageTarget = %v, want %v", o.CoverageTarget, def.CoverageTarget)
	}
	if o.BaselineRatio != def.BaselineRatio {
		t.Errorf("BaselineRatio = %v, want %v", o.BaselineRatio, def.BaselineRatio)
	}

	// Explicit valid boundary values survive untouched (the old validate
	// silently rewrote BaselineRatio <= 1 and out-of-range CoverageTarget).
	o = DefaultOptions()
	o.BaselineRatio = 1
	o.CoverageTarget = 1
	if err := o.validate(); err != nil {
		t.Fatalf("boundary values must validate: %v", err)
	}
	if o.BaselineRatio != 1 || o.CoverageTarget != 1 {
		t.Errorf("boundary values rewritten: ratio=%v target=%v", o.BaselineRatio, o.CoverageTarget)
	}
}

func TestExtractPortScan(t *testing.T) {
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.18.137.129")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: coreBase, Seed: 5,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548, Ports: 2000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	alarm := &detector.Alarm{
		Detector: "netreflex", Kind: detector.KindPortScan,
		Interval: truth.Entries[0].Interval,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
			{Feature: flow.FeatDstIP, Value: uint32(victim)},
		},
	}
	res, err := ex.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) == 0 {
		t.Fatal("no itemsets extracted")
	}
	top := res.Itemsets[0]
	if !top.Items.Contains(itemset.NewItem(flow.FeatSrcIP, uint32(scanner))) {
		t.Fatalf("top itemset %v does not name the scanner", top.Items)
	}
	if !top.Items.Contains(itemset.NewItem(flow.FeatSrcPort, 55548)) {
		t.Fatalf("top itemset %v does not pin the scan source port", top.Items)
	}
	if top.FlowSupport != 2000 {
		t.Fatalf("scan flow support = %d, want 2000", top.FlowSupport)
	}
	if !res.Prefiltered {
		t.Fatal("meta pre-filter should have been applied")
	}
}

func TestExtractFindsCoOccurringAnomalies(t *testing.T) {
	// Table 1 situation: detector meta names only scanner A; extraction
	// must also surface scanner B and the DDoS itemsets against the same
	// target.
	scannerA := flow.MustParseIP("10.191.64.165")
	scannerB := flow.MustParseIP("10.22.33.44")
	victim := flow.MustParseIP("198.18.137.129")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: coreBase, Seed: 6,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scannerA, Victim: victim, SrcPort: 55548, Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 2},
			{Anomaly: gen.PortScan{Scanner: scannerB, Victim: victim, SrcPort: 55548, Ports: 1300, FlowsPerPort: 2, Router: 1}, Bin: 2},
			{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 400, SourceNet: flow.MustParsePrefix("172.16.0.0/12"), FlowsPerSource: 2, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	// NetReflex-style narrow meta: scanner A only.
	alarm := &detector.Alarm{
		Interval: truth.Entries[0].Interval,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scannerA)},
			{Feature: flow.FeatDstIP, Value: uint32(victim)},
			{Feature: flow.FeatSrcPort, Value: 55548},
		},
	}
	res, err := ex.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if !hasItem(res, flow.FeatSrcIP, uint32(scannerA)) {
		t.Fatal("flagged scanner missing from extraction")
	}
	if !hasItem(res, flow.FeatSrcIP, uint32(scannerB)) {
		t.Fatalf("second scanner not discovered; itemsets: %v", res.Itemsets)
	}
	if !hasItem(res, flow.FeatDstPort, 80) {
		t.Fatalf("DDoS on port 80 not discovered; itemsets: %v", res.Itemsets)
	}
}

func TestExtractUDPFloodNeedsPacketSupport(t *testing.T) {
	src := flow.MustParseIP("10.55.55.55")
	dst := flow.MustParseIP("198.18.0.77")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 400},
		Bins:       4, StartTime: coreBase, Seed: 7,
		Placements: []gen.Placement{
			{Anomaly: gen.UDPFlood{Src: src, Dst: dst, DstPort: 9999, Flows: 4, PacketsPerFlow: 2_000_000, Router: 1}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)

	// With dual support (default): the flood itemset must surface.
	ex := MustNew(store, DefaultOptions())
	alarm := &detector.Alarm{Interval: truth.Entries[0].Interval}
	res, err := ex.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if !hasItem(res, flow.FeatSrcIP, uint32(src)) {
		t.Fatalf("flood source not extracted; itemsets: %v", res.Itemsets)
	}
	// The flood itemset must have been found via packet support.
	foundViaPackets := false
	for _, r := range res.Itemsets {
		if r.Items.Contains(itemset.NewItem(flow.FeatSrcIP, uint32(src))) {
			for _, d := range r.Dimensions {
				if d == nfstore.ByPackets {
					foundViaPackets = true
				}
			}
		}
	}
	if !foundViaPackets {
		t.Fatal("flood itemset should carry the packets dimension")
	}

	// Flow-support only (classic Apriori): the 4-flow flood is invisible.
	opts := DefaultOptions()
	opts.PacketCoverageMin = 0 // never trigger the packet pass
	exFlow := MustNew(store, opts)
	resFlow, err := exFlow.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if hasItem(resFlow, flow.FeatSrcIP, uint32(src)) {
		t.Fatal("4-flow flood should be invisible to flow-only support (the paper's motivation)")
	}
}

func TestSelfTuningLowersSupport(t *testing.T) {
	// A weak anomaly: the initial 20% support is far above its footprint,
	// so the tuning loop must halve down until itemsets appear.
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.18.0.50")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 400},
		Bins:       4, StartTime: coreBase, Seed: 8,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 40000, Ports: 120, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	opts := DefaultOptions()
	opts.UsePrefilter = false
	ex := MustNew(store, opts)
	res, err := ex.Extract(t.Context(), &detector.Alarm{Interval: truth.Entries[0].Interval})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuning) == 0 {
		t.Fatal("no tuning recorded")
	}
	ft := res.Tuning[0]
	if ft.Rounds < 2 {
		t.Fatalf("expected multiple tuning rounds, got %d", ft.Rounds)
	}
	if ft.FinalMin >= ft.InitialMin {
		t.Fatalf("support must have been lowered: %d -> %d", ft.InitialMin, ft.FinalMin)
	}
	if !hasItem(res, flow.FeatSrcIP, uint32(scanner)) {
		t.Fatalf("weak scan not extracted; itemsets: %v", res.Itemsets)
	}
}

func TestBaselineFilterSuppressesPopularServices(t *testing.T) {
	// No anomaly at all: everything frequent in the alarm bin is equally
	// frequent in the baseline bin, so the baseline filter must drop
	// (most of) it.
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 400},
		Bins:       4, StartTime: coreBase, Seed: 9,
	}
	store, truth := buildScenario(t, s)
	iv := flow.Interval{Start: truth.Span.Start + 2*300, End: truth.Span.Start + 3*300}

	withFilter := MustNew(store, DefaultOptions())
	resWith, err := withFilter.Extract(t.Context(), &detector.Alarm{Interval: iv})
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.BaselineFilter = false
	without := MustNew(store, opts)
	resWithout, err := without.Extract(t.Context(), &detector.Alarm{Interval: iv})
	if err != nil {
		t.Fatal(err)
	}
	if len(resWith.Itemsets) >= len(resWithout.Itemsets) && resWith.BaselineDropped == 0 {
		t.Fatalf("baseline filter dropped nothing on a quiet bin (with=%d without=%d)",
			len(resWith.Itemsets), len(resWithout.Itemsets))
	}
}

func TestExtractNoCandidates(t *testing.T) {
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 1, FlowsPerBin: 10},
		Bins:       2, StartTime: coreBase, Seed: 10,
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	empty := flow.Interval{Start: truth.Span.End + 3000, End: truth.Span.End + 3300}
	if _, err := ex.Extract(t.Context(), &detector.Alarm{Interval: empty}); err != ErrNoCandidates {
		t.Fatalf("got %v, want ErrNoCandidates", err)
	}
}

func TestFilterForRoundTrip(t *testing.T) {
	set := itemset.NewSet(
		itemset.NewItem(flow.FeatSrcIP, uint32(flow.MustParseIP("10.1.2.3"))),
		itemset.NewItem(flow.FeatDstPort, 80),
		itemset.NewItem(flow.FeatProto, uint32(flow.ProtoTCP)),
	)
	f := FilterFor(set)
	match := &flow.Record{
		SrcIP: flow.MustParseIP("10.1.2.3"), DstIP: flow.MustParseIP("9.9.9.9"),
		SrcPort: 1234, DstPort: 80, Proto: flow.ProtoTCP, Packets: 1, Bytes: 40,
	}
	if !f.Match(match) {
		t.Fatal("filter must match itemset flows")
	}
	mismatch := *match
	mismatch.DstPort = 443
	if f.Match(&mismatch) {
		t.Fatal("filter must reject non-matching flows")
	}
}

func TestResultTable(t *testing.T) {
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.18.137.129")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: coreBase, Seed: 11,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548, Ports: 1000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	res, err := ex.Extract(t.Context(), &detector.Alarm{Interval: truth.Entries[0].Interval})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table().String()
	for _, want := range []string{"srcIP", "dstPort", "#flows", "10.191.64.165", "*"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table output missing %q:\n%s", want, tbl)
		}
	}
	md := res.Table().Markdown()
	if !strings.Contains(md, "| srcIP |") {
		t.Fatalf("markdown table malformed:\n%s", md)
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{312590, "312.59K"}, {37190, "37.19K"}, {9999, "9999"},
		{2_500_000, "2.50M"}, {3_000_000_000, "3.00G"},
	}
	for _, c := range cases {
		if got := humanCount(c.in); got != c.want {
			t.Errorf("humanCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDeterministicExtraction(t *testing.T) {
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: coreBase, Seed: 12,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: 111, Victim: 222, SrcPort: 1, Ports: 500, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	alarm := &detector.Alarm{Interval: truth.Entries[0].Interval}
	r1, err := ex.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Itemsets) != len(r2.Itemsets) {
		t.Fatal("non-deterministic itemset count")
	}
	for i := range r1.Itemsets {
		if !r1.Itemsets[i].Items.Equal(r2.Itemsets[i].Items) {
			t.Fatal("non-deterministic itemset order")
		}
	}
}

// TestRankingModesDeterministic pins the ranking determinism contract:
// for every ranking mode, two extractions over the same store return the
// identical ranked list, and the list obeys the pinned tie-break (score
// desc, longer itemsets first, then canonical key) — the comparator must
// not change across modes.
func TestRankingModesDeterministic(t *testing.T) {
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: coreBase, Seed: 19,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: 111, Victim: 222, SrcPort: 1, Ports: 500, Router: 0}, Bin: 2},
			{Anomaly: gen.SYNFlood{Victim: 222, DstPort: 80, Sources: 800, FlowsPerSource: 3,
				SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: 1}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	alarm := &detector.Alarm{Interval: truth.Entries[0].Interval}
	for _, mode := range []string{RankSupport, RankLift, RankWeighted} {
		opts := DefaultOptions()
		opts.Ranking = mode
		ex := MustNew(store, opts)
		r1, err := ex.Extract(t.Context(), alarm)
		if err != nil {
			t.Fatalf("ranking %q: %v", mode, err)
		}
		r2, err := ex.Extract(t.Context(), alarm)
		if err != nil {
			t.Fatalf("ranking %q: %v", mode, err)
		}
		if len(r1.Itemsets) != len(r2.Itemsets) {
			t.Fatalf("ranking %q: non-deterministic itemset count", mode)
		}
		for i := range r1.Itemsets {
			a, b := r1.Itemsets[i], r2.Itemsets[i]
			if !a.Items.Equal(b.Items) || a.Score != b.Score {
				t.Fatalf("ranking %q: rank %d differs between runs", mode, i+1)
			}
			if math.IsNaN(a.Score) || math.IsInf(a.Score, 0) || a.Score < 0 {
				t.Errorf("ranking %q: rank %d score %v not a finite non-negative number", mode, i+1, a.Score)
			}
			if i == 0 {
				continue
			}
			prev := r1.Itemsets[i-1]
			switch {
			case prev.Score > a.Score:
			case prev.Score == a.Score && len(prev.Items) > len(a.Items):
			case prev.Score == a.Score && len(prev.Items) == len(a.Items) && prev.Items.Key() < a.Items.Key():
			default:
				t.Errorf("ranking %q: ranks %d-%d violate the pinned tie-break", mode, i, i+1)
			}
		}
	}
}
