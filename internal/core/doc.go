// Package core implements the paper's primary contribution: the extended
// Apriori anomaly-extraction engine that turns a detector alarm plus a
// flow archive into a short, ranked list of itemsets summarizing the
// anomalous flows.
//
// Relative to classic Apriori over flow transactions (Brauckhoff et al.,
// IMC'09), the engine adds the two extensions this paper describes:
//
//  1. Dual support. Itemset support is computed in flows AND in packets.
//     Anomalies "not characterized by a significant volume of flows" —
//     the point-to-point UDP floods frequent in GEANT — are invisible to
//     flow support but dominate packet support, so the engine mines both
//     dimensions and merges the results.
//
//  2. Self-tuning configuration. The minimum support starts at a fraction
//     of the candidate traffic and halves itself until the number of
//     maximal itemsets lands in an operator-friendly band, so the
//     extraction works across anomalies of very different intensities
//     without manual parameter fiddling.
//
// The engine also applies the workflow around the miner that the paper's
// system implements: meta-data pre-filtering of candidate flows (with
// fallback to the full interval), maximal-itemset reduction,
// baseline-popularity false-positive suppression, and itemset→filter
// drill-down so an operator can inspect the raw flows behind any row.
//
// The miner itself is pluggable (Options.Miner selects a name from the
// internal/miner registry; "apriori" is the default and "fpgrowth" the
// built-in alternative — both emit identical canonical results), the
// candidate dataset is built by streaming the store's record iterator
// through an itemset.Builder (the raw candidate records are never
// materialized as a slice), and support counting plus the coverage loop
// fan out over the dataset's sharded worker pool.
package core
