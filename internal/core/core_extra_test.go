package core

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/itemset"
)

func TestMaxLenBoundsItemsets(t *testing.T) {
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.9")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: coreBase, Seed: 21,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1000, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	opts := DefaultOptions()
	opts.MaxLen = 2
	ex := MustNew(store, opts)
	res, err := ex.Extract(t.Context(), &detector.Alarm{Interval: truth.Entries[0].Interval})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Itemsets {
		if rep.Items.Len() > 2 {
			t.Fatalf("MaxLen=2 violated: %v", rep.Items)
		}
	}
}

func TestPrefilterFallbackOnThinMeta(t *testing.T) {
	// Meta pointing at an address with almost no traffic must fall back
	// to the full interval rather than mining a near-empty candidate set.
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.9")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: coreBase, Seed: 22,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1500, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	// Meta names an address that appears in no flow at all.
	alarm := &detector.Alarm{
		Interval: truth.Entries[0].Interval,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(flow.MustParseIP("203.0.113.99"))},
		},
	}
	res, err := ex.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefiltered {
		t.Fatal("thin meta must trigger the full-interval fallback")
	}
	// Extraction still finds the scan (full-interval mining).
	want := itemset.NewItem(flow.FeatSrcIP, uint32(scanner))
	found := false
	for _, rep := range res.Itemsets {
		if rep.Items.Contains(want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallback mining missed the scan; itemsets: %v", res.Itemsets)
	}
}

func TestDimensionsRecorded(t *testing.T) {
	// A scan frequent in both dimensions should carry both markers after
	// the dual pass.
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.9")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 100},
		Bins:       4, StartTime: coreBase, Seed: 23,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 3000, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)
	ex := MustNew(store, DefaultOptions())
	res, err := ex.Extract(t.Context(), &detector.Alarm{Interval: truth.Entries[0].Interval})
	if err != nil {
		t.Fatal(err)
	}
	want := itemset.NewItem(flow.FeatSrcIP, uint32(scanner))
	for _, rep := range res.Itemsets {
		if rep.Items.Contains(want) {
			if len(rep.Dimensions) != 2 {
				t.Fatalf("scan itemset dimensions = %v, want both", rep.Dimensions)
			}
			return
		}
	}
	t.Fatal("scan itemset missing")
}

func TestExtractReportString(t *testing.T) {
	rep := ItemsetReport{
		Items:       itemset.NewSet(itemset.NewItem(flow.FeatDstPort, 80)),
		FlowSupport: 5, PacketSupport: 10,
	}
	if rep.String() != "dstPort=80 flows=5 packets=10" {
		t.Fatalf("String = %q", rep.String())
	}
}
