package core

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
)

// TestExtractReportsProgress: a full extraction with an observer
// attached reports the phases in engine order, the mining phases carry
// tuning rounds, and the reported values match the final result.
func TestExtractReportsProgress(t *testing.T) {
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.18.137.129")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: coreBase, Seed: 5,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548, Ports: 2000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	store, truth := buildScenario(t, s)

	var samples []Progress
	opts := DefaultOptions()
	opts.Progress = func(p Progress) { samples = append(samples, p) }
	ex := MustNew(store, opts)
	alarm := &detector.Alarm{
		Detector: "netreflex", Kind: detector.KindPortScan,
		Interval: truth.Entries[0].Interval,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	}
	res, err := ex.Extract(t.Context(), alarm)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no progress reported")
	}

	// Phase order: candidates strictly before mining, mining before the
	// supports pass, supports before rank.
	first := map[string]int{}
	for i, p := range samples {
		if _, ok := first[p.Phase]; !ok {
			first[p.Phase] = i
		}
	}
	for _, want := range []string{PhaseCandidates, PhaseMineFlows, PhaseSupports, PhaseRank} {
		if _, ok := first[want]; !ok {
			t.Fatalf("phase %q never reported (phases %v)", want, first)
		}
	}
	if !(first[PhaseCandidates] < first[PhaseMineFlows] &&
		first[PhaseMineFlows] < first[PhaseSupports] &&
		first[PhaseSupports] < first[PhaseRank]) {
		t.Fatalf("phases out of order: %v", first)
	}

	// Mining samples carry 1-based tuning rounds matching the recorded
	// trajectory.
	maxRound := 0
	for _, p := range samples {
		if p.Phase == PhaseMineFlows && p.TuningRound > maxRound {
			maxRound = p.TuningRound
		}
	}
	if maxRound != res.Tuning[0].Rounds {
		t.Fatalf("max reported round = %d, tuning recorded %d", maxRound, res.Tuning[0].Rounds)
	}
}

// TestProgressNilIsFree: extraction without an observer behaves exactly
// as before (the seam is a nil check, not a behavior change).
func TestProgressNilIsFree(t *testing.T) {
	store, truth := buildScenario(t, gen.Scenario{
		Background: gen.Background{NumPoPs: 1, FlowsPerBin: 200},
		Bins:       2, StartTime: coreBase, Seed: 9,
	})
	ex := MustNew(store, DefaultOptions())
	alarm := &detector.Alarm{Detector: "t", Interval: truth.Span}
	if _, err := ex.Extract(t.Context(), alarm); err != nil {
		t.Fatal(err)
	}
}

// TestFillSamplesEveryStride: a streaming phase over more than
// progressStride records reports intermediate candidate counts.
func TestFillSamplesEveryStride(t *testing.T) {
	store, truth := buildScenario(t, gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: progressStride + 2048},
		Bins:       2, StartTime: coreBase, Seed: 11,
	})
	var streamed []uint64
	opts := DefaultOptions()
	opts.UsePrefilter = false
	opts.BaselineFilter = false
	opts.Progress = func(p Progress) {
		if p.Phase == PhaseCandidates && p.CandidateFlows > 0 {
			streamed = append(streamed, p.CandidateFlows)
		}
	}
	ex := MustNew(store, opts)
	alarm := &detector.Alarm{Detector: "t", Interval: truth.Span}
	if _, err := ex.Extract(t.Context(), alarm); err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 {
		t.Fatalf("no sampled candidate counts over a %d-record scan", 2*(progressStride+2048))
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i] < streamed[i-1] {
			t.Fatalf("candidate counts must be non-decreasing: %v", streamed)
		}
	}
}
