package core

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

// benchStore writes ~n records into a fresh store (one bin) and returns
// it with the covering interval.
func benchStore(b *testing.B, n int) (*nfstore.Store, flow.Interval) {
	b.Helper()
	store, err := nfstore.Create(b.TempDir(), 300)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	rng := stats.NewRNG(7)
	base := uint32(1_300_000_200)
	recs := make([]flow.Record, 0, 4096)
	for i := 0; i < n; i++ {
		pk := uint64(rng.Intn(40) + 1)
		recs = append(recs, flow.Record{
			Start:   base + uint32(i%300),
			SrcIP:   flow.IP(rng.Intn(5000)),
			DstIP:   flow.IP(rng.Intn(200)),
			SrcPort: uint16(rng.Intn(60000)),
			DstPort: uint16(rng.Intn(1024)),
			Proto:   flow.ProtoTCP,
			Packets: pk,
			Bytes:   pk * 40,
		})
		if len(recs) == cap(recs) {
			if err := store.AddAll(recs); err != nil {
				b.Fatal(err)
			}
			recs = recs[:0]
		}
	}
	if err := store.AddAll(recs); err != nil {
		b.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	return store, flow.Interval{Start: base, End: base + 300}
}

// BenchmarkCandidateSelection contrasts the streaming candidate path (the
// record iterator feeding itemset.Builder — no []flow.Record is ever
// allocated for the candidate set) against the old materialize-then-
// aggregate path. Compare B/op: the materialized path's growing record
// slice dominates its footprint; the streaming path's allocations are the
// aggregated transactions only. SetParallelism(1) keeps the query engine
// off its batching workers so the slices measured are the candidate
// path's own.
func BenchmarkCandidateSelection(b *testing.B) {
	const n = 100_000
	store, iv := benchStore(b, n)
	store.SetParallelism(1)
	ex := MustNew(store, DefaultOptions())
	alarm := &detector.Alarm{Interval: iv}

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ds, _, err := ex.candidates(b.Context(), alarm)
			if err != nil {
				b.Fatal(err)
			}
			if ds.TotalFlows() != n {
				b.Fatalf("streamed %d flows, want %d", ds.TotalFlows(), n)
			}
		}
	})
	b.Run("materialized-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			records, err := store.Records(b.Context(), iv, nil)
			if err != nil {
				b.Fatal(err)
			}
			ds := itemset.FromRecords(records)
			if ds.TotalFlows() != n {
				b.Fatalf("materialized %d flows, want %d", ds.TotalFlows(), n)
			}
		}
	})
}
