package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/miner"
	"repro/internal/nffilter"
	"repro/internal/nfstore"

	// Built-in miners self-register into the miner registry.
	_ "repro/internal/apriori"
	_ "repro/internal/fda"
	_ "repro/internal/fpgrowth"
)

// Extraction phases reported through the Progress seam, in the order
// the engine enters them.
const (
	PhaseCandidates  = "candidates"   // streaming candidate flows into the dataset
	PhaseMineFlows   = "mine-flows"   // self-tuning mining, flow-support dimension
	PhaseMinePackets = "mine-packets" // self-tuning mining, packet-support dimension
	PhaseSupports    = "supports"     // batch dual-support pass over merged itemsets
	PhaseBaseline    = "baseline"     // baseline-bin scan + false-positive filter
	PhaseRank        = "rank"         // scoring, sorting and cutting the final list
)

// Progress is one sampled progress observation of a running extraction.
type Progress struct {
	// Phase is the engine stage (one of the Phase* constants).
	Phase string
	// TuningRound is the 1-based self-tuning round within a mining phase
	// (0 outside mining).
	TuningRound int
	// CandidateFlows counts flows aggregated so far in a streaming phase.
	CandidateFlows uint64
	// Itemsets counts maximal itemsets mined so far in a mining phase.
	Itemsets int
}

// ProgressFunc observes extraction progress. It is called from the
// extraction goroutine, sampled (every progressStride records in
// streaming phases, once per tuning round while mining) so the hot
// loops pay nothing beyond a nil check — implementations should still
// return quickly.
type ProgressFunc func(Progress)

// progressStride is how many streamed records pass between progress
// samples: big enough that the callback is noise even on million-flow
// candidate sets, small enough for live feedback.
const progressStride = 8192

// Ranking modes for Options.Ranking. All modes share the same pinned
// tie-break (score desc, then longer itemsets first, then Set.Key asc),
// so equal-score rows order identically whichever mode scored them.
const (
	// RankSupport scores each itemset by the larger of its flow and
	// packet share of the candidate traffic — the paper's ranking and the
	// default.
	RankSupport = "support"
	// RankLift scores by lift: observed share over the independence
	// expectation of the itemset's items. Lift is inverse-support
	// weighted by construction — a conjunction of rare items that still
	// captures the alarm traffic outranks an equally-supported
	// conjunction of popular ones.
	RankLift = "lift"
	// RankWeighted blends the two: share × log2(1+lift), i.e. the
	// paper's support score damped or boosted by how surprising the
	// combination is (the FDA scoring shape).
	RankWeighted = "weighted"
)

// Options configures the extraction engine. Zero values of the numeric
// fields inherit the corresponding defaults and explicitly invalid values
// are rejected by New; note that the boolean switches (UsePrefilter,
// BaselineFilter) and PacketCoverageMin treat their zero value as
// "disabled", so a hand-rolled Options turns those paper features off —
// start from DefaultOptions.
type Options struct {
	// Miner selects the frequent-itemset miner by registry name
	// ("apriori", "fpgrowth", or an externally registered one). Empty
	// selects the default miner (apriori, as in the paper).
	Miner string
	// MinItemsets..MaxItemsets is the target band for the number of
	// reported maximal itemsets. Self-tuning lowers the support until at
	// least MinItemsets appear (or the floor is hit); the ranked list is
	// then cut at MaxItemsets.
	MinItemsets int
	MaxItemsets int
	// InitialSupportFraction is the starting minimum support as a
	// fraction of the candidate total (flows or packets, per dimension).
	// Must be in (0,1]; zero inherits the default.
	InitialSupportFraction float64
	// SupportFloor is the absolute lower bound the self-tuning loop will
	// not cross: itemsets below it are noise regardless of band. Zero
	// inherits the default (10); use 1 for an explicit "no floor".
	SupportFloor uint64
	// MaxTuningRounds bounds the halving loop per dimension.
	MaxTuningRounds int
	// UsePrefilter selects whether the alarm meta-data pre-filters the
	// candidate flows (the paper's workflow). When the pre-filter matches
	// fewer than MinCandidates flows the engine falls back to the full
	// interval.
	UsePrefilter  bool
	MinCandidates int
	// PacketCoverageMin triggers the packet-support pass: when the
	// flow-mined itemsets cover less than this fraction of candidate
	// packets, the engine re-mines by packets. The default (1.0) always
	// mines both dimensions, which is what the paper's extended Apriori
	// does ("compute the support of an itemset in terms of packets in
	// addition to flows"); 0 disables the packet pass entirely and
	// reproduces classic flow-only Apriori for ablations.
	PacketCoverageMin float64
	// CoverageTarget drives the self-tuning loop beyond the MinItemsets
	// band: as long as the mined itemsets cover (in the mining dimension)
	// less than this fraction of the candidate traffic and fewer than
	// MaxItemsets were found, the minimum support keeps halving. This is
	// what lets extraction surface co-occurring anomalies weaker than the
	// dominant one (the paper's Table 1 DDoS rows). Must be in (0,1];
	// zero inherits the default.
	CoverageTarget float64
	// BaselineFilter drops itemsets that are (proportionally) just as
	// frequent in the preceding baseline bin — the "popular port / popular
	// server" false positives the paper says operators filter trivially.
	// BaselineRatio is the share ratio below which an itemset is dropped:
	// an itemset is kept only if share(alarm) >= BaselineRatio ×
	// share(baseline). Must be >= 1; zero inherits the default.
	BaselineFilter bool
	BaselineRatio  float64
	// MaxLen bounds itemset length (0 = up to all five features).
	MaxLen int
	// Ranking selects how the final itemset list is scored: RankSupport
	// (the paper's share score, the default), RankLift or RankWeighted.
	// Empty inherits RankSupport; unknown modes are rejected.
	Ranking string
	// MinerPrefilter enables per-item significance pre-filtering in miners
	// that implement it (the fda miner); apriori and fpgrowth ignore it.
	// Like the other boolean switches its zero value means "off" — start
	// from DefaultOptions, which enables it.
	MinerPrefilter bool
	// Significance and MinLift are the fda pre-filter thresholds,
	// forwarded into miner.Options; zero inherits the miner defaults
	// (miner.DefaultSignificance, miner.DefaultMinLift), negative or NaN
	// values are rejected.
	Significance float64
	MinLift      float64
	// Progress, when non-nil, receives sampled progress observations
	// (phase transitions, tuning rounds, streamed-flow counts). It is
	// exempt from validation; nil disables reporting entirely.
	Progress ProgressFunc
}

// DefaultOptions returns the configuration used by the paper-reproduction
// experiments.
func DefaultOptions() Options {
	return Options{
		Miner:                  miner.DefaultName,
		MinItemsets:            2,
		MaxItemsets:            10,
		InitialSupportFraction: 0.2,
		SupportFloor:           10,
		MaxTuningRounds:        12,
		UsePrefilter:           true,
		MinCandidates:          50,
		PacketCoverageMin:      1,
		CoverageTarget:         0.9,
		BaselineFilter:         true,
		BaselineRatio:          3,
		MaxLen:                 0,
		Ranking:                RankSupport,
		MinerPrefilter:         true,
	}
}

// validate normalizes and checks options through the shared validators in
// the miner package (miner.IntOption / miner.FloatOption). The contract
// is uniform across the numeric fields: a zero value inherits the
// default, any other invalid value is an error — never a silent rewrite.
// (PacketCoverageMin is exempt: 0 is the meaningful "flow-only ablation"
// setting; MaxLen is exempt: 0 is the meaningful "unbounded" setting.
// Their checks are written in positive form so NaN — never ==, <, or >=
// anything — fails them too instead of slipping through, the same rule
// the shared float validator applies.)
func (o *Options) validate() error {
	in01 := func(v float64) bool { return v > 0 && v <= 1 }
	geOne := func(v float64) bool { return v >= 1 }
	positive := func(v float64) bool { return v > 0 }
	if err := miner.IntOption("core", "MinItemsets", &o.MinItemsets, 2); err != nil {
		return err
	}
	if err := miner.IntOption("core", "MaxItemsets", &o.MaxItemsets, 10); err != nil {
		return err
	}
	if o.MaxItemsets < o.MinItemsets {
		return fmt.Errorf("core: MaxItemsets %d < MinItemsets %d", o.MaxItemsets, o.MinItemsets)
	}
	if err := miner.FloatOption("core", "InitialSupportFraction", &o.InitialSupportFraction, 0.2, in01, "in (0,1]"); err != nil {
		return err
	}
	if o.SupportFloor == 0 {
		o.SupportFloor = 10
	}
	if err := miner.IntOption("core", "MaxTuningRounds", &o.MaxTuningRounds, 12); err != nil {
		return err
	}
	if err := miner.IntOption("core", "MinCandidates", &o.MinCandidates, 50); err != nil {
		return err
	}
	if !(o.PacketCoverageMin >= 0 && o.PacketCoverageMin <= 1) {
		return fmt.Errorf("core: PacketCoverageMin must be in [0,1], got %v", o.PacketCoverageMin)
	}
	if err := miner.FloatOption("core", "CoverageTarget", &o.CoverageTarget, 0.9, in01, "in (0,1]"); err != nil {
		return err
	}
	if err := miner.FloatOption("core", "BaselineRatio", &o.BaselineRatio, 3, geOne, ">= 1"); err != nil {
		return err
	}
	if o.MaxLen < 0 {
		return fmt.Errorf("core: MaxLen must be >= 0, got %d", o.MaxLen)
	}
	if o.Ranking == "" {
		o.Ranking = RankSupport
	}
	switch o.Ranking {
	case RankSupport, RankLift, RankWeighted:
	default:
		return fmt.Errorf("core: unknown ranking %q (have %q, %q, %q)",
			o.Ranking, RankSupport, RankLift, RankWeighted)
	}
	if err := miner.FloatOption("core", "Significance", &o.Significance, miner.DefaultSignificance, positive, "> 0"); err != nil {
		return err
	}
	return miner.FloatOption("core", "MinLift", &o.MinLift, miner.DefaultMinLift, positive, "> 0")
}

// ItemsetReport is one ranked row of an extraction result — one line of
// the paper's Table 1.
type ItemsetReport struct {
	Items itemset.Set
	// FlowSupport and PacketSupport are the itemset's supports over the
	// candidate flows in both dimensions, whatever dimension mined it.
	FlowSupport   uint64
	PacketSupport uint64
	// Dimensions lists the support dimension(s) in which the itemset was
	// frequent ("flows", "packets" or both).
	Dimensions []nfstore.Weight
	// Score is the ranking key under the configured Options.Ranking mode:
	// for RankSupport (the default) the larger of the itemset's flow
	// share and packet share of the candidate traffic; for RankLift the
	// itemset's lift; for RankWeighted share × log2(1+lift).
	Score float64
}

// Filter returns the drill-down filter matching exactly the flows the
// itemset summarizes.
func (r *ItemsetReport) Filter() *nffilter.Filter {
	return FilterFor(r.Items)
}

// String renders the report row compactly.
func (r *ItemsetReport) String() string {
	return fmt.Sprintf("%s flows=%d packets=%d", r.Items, r.FlowSupport, r.PacketSupport)
}

// FilterFor builds the conjunction filter matching an itemset's flows.
func FilterFor(s itemset.Set) *nffilter.Filter {
	kids := make([]nffilter.Node, 0, len(s))
	for _, it := range s {
		m := detector.MetaItem{Feature: it.Feature(), Value: it.Value()}
		kids = append(kids, m.Node())
	}
	return nffilter.FromNode(&nffilter.And{Kids: kids})
}

// DimensionTuning records the self-tuning trajectory of one dimension.
type DimensionTuning struct {
	Dimension    nfstore.Weight
	InitialMin   uint64
	FinalMin     uint64
	Rounds       int
	ItemsetsSeen int
}

// Result is a full extraction outcome.
type Result struct {
	// Alarm is the input alarm.
	Alarm detector.Alarm
	// Prefiltered reports whether the meta pre-filter was applied (false
	// means full-interval fallback).
	Prefiltered bool
	// CandidateFlows / CandidatePackets describe the mined candidate set.
	CandidateFlows   uint64
	CandidatePackets uint64
	// Itemsets is the ranked final list.
	Itemsets []ItemsetReport
	// Tuning records the per-dimension self-tuning trajectories.
	Tuning []DimensionTuning
	// BaselineDropped counts itemsets suppressed by the baseline filter.
	BaselineDropped int
}

// Extractor runs anomaly extraction against a flow store.
type Extractor struct {
	store nfstore.Engine
	opts  Options
	m     miner.Miner
}

// New builds an Extractor. The options are validated once here, and the
// configured miner is resolved from the registry (an unknown name is an
// error listing the registered ones).
func New(store nfstore.Engine, opts Options) (*Extractor, error) {
	if store == nil {
		return nil, errors.New("core: nil store")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	m, err := miner.New(opts.Miner)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Extractor{store: store, opts: opts, m: m}, nil
}

// MustNew is New that panics on error.
func MustNew(store nfstore.Engine, opts Options) *Extractor {
	e, err := New(store, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// ErrNoCandidates is returned when the alarm interval holds no flows.
var ErrNoCandidates = errors.New("core: alarm interval contains no flows")

// Extract runs the full extended-Apriori extraction for one alarm.
// Cancelling ctx aborts the candidate scan, the mining passes and the
// baseline pass promptly, returning ctx.Err().
//
// The candidate and baseline scans ride the store's pruned parallel query
// engine: the meta pre-filter is exactly the kind of selective filter
// whose zone-map pruning skips every segment outside the anomaly, so the
// prefiltered pass typically opens only the alarm interval's own bins.
// Records stream straight into the dataset builder — the candidate set is
// aggregated incrementally, never held as a raw record slice.
func (e *Extractor) Extract(ctx context.Context, alarm *detector.Alarm) (*Result, error) {
	res := &Result{Alarm: *alarm}

	e.report(Progress{Phase: PhaseCandidates})
	ds, prefiltered, err := e.candidates(ctx, alarm)
	if err != nil {
		return nil, err
	}
	res.Prefiltered = prefiltered
	if ds.TotalFlows() == 0 {
		return nil, ErrNoCandidates
	}
	res.CandidateFlows = ds.TotalFlows()
	res.CandidatePackets = ds.TotalPackets()

	// Dimension 1: flow support (the classic IMC'09 miner).
	flowSets, flowTuning, err := e.mineTuned(ctx, ds, false)
	if err != nil {
		return nil, err
	}
	res.Tuning = append(res.Tuning, flowTuning)

	merged := make(map[string]*ItemsetReport)
	var order []*ItemsetReport // deterministic report order for counting
	addAll(merged, &order, flowSets, nfstore.ByFlows)

	// Extension 1: packet support when flow-mined itemsets leave most of
	// the candidate packet volume unexplained. PacketCoverageMin of 1
	// (the default) runs the packet pass unconditionally — flow-mined
	// itemsets covering 100% of packets through a broad set like
	// "proto=udp" must not mask a flood's specific itemsets.
	if e.opts.PacketCoverageMin > 0 &&
		(e.opts.PacketCoverageMin >= 1 || ds.Coverage(setsOf(flowSets), true, 0) < e.opts.PacketCoverageMin) {
		pktSets, pktTuning, err := e.mineTuned(ctx, ds, true)
		if err != nil {
			return nil, err
		}
		res.Tuning = append(res.Tuning, pktTuning)
		addAll(merged, &order, pktSets, nfstore.ByPackets)
	}

	// One sharded parallel pass computes both supports of every merged
	// itemset over the candidate dataset.
	e.report(Progress{Phase: PhaseSupports, Itemsets: len(order)})
	for i, sup := range ds.SupportAll(reportSets(order), 0) {
		order[i].FlowSupport = sup.Flows
		order[i].PacketSupport = sup.Packets
	}

	// Baseline false-positive suppression.
	list := order
	if e.opts.BaselineFilter {
		e.report(Progress{Phase: PhaseBaseline, Itemsets: len(list)})
		kept, dropped, err := e.baselineFilter(ctx, alarm.Interval, ds, list)
		if err != nil {
			return nil, err
		}
		list = kept
		res.BaselineDropped = dropped
	}

	// Rank under the configured mode, cut at MaxItemsets. The tie-break
	// below is pinned across ranking modes (determinism tests depend on
	// it): score desc, longer itemsets first, then canonical key.
	e.report(Progress{Phase: PhaseRank, Itemsets: len(list)})
	e.score(ds, res, list)
	sort.Slice(list, func(i, j int) bool {
		if list[i].Score != list[j].Score {
			return list[i].Score > list[j].Score
		}
		if len(list[i].Items) != len(list[j].Items) {
			return len(list[i].Items) > len(list[j].Items)
		}
		return list[i].Items.Key() < list[j].Items.Key()
	})
	if len(list) > e.opts.MaxItemsets {
		list = list[:e.opts.MaxItemsets]
	}
	res.Itemsets = make([]ItemsetReport, len(list))
	for i, r := range list {
		res.Itemsets[i] = *r
	}
	return res, nil
}

// candidates streams the alarm interval's records into a dataset builder:
// the meta pre-filtered pass first (when enabled), with full-interval
// fallback when it aggregates fewer than MinCandidates flows.
func (e *Extractor) candidates(ctx context.Context, alarm *detector.Alarm) (ds *itemset.Dataset, prefiltered bool, err error) {
	b := itemset.NewBuilder()
	if e.opts.UsePrefilter {
		if mf := alarm.MetaFilter(); mf != nil {
			if err := e.fill(ctx, b, alarm.Interval, mf, PhaseCandidates); err != nil {
				return nil, false, err
			}
			prefiltered = true
		}
	}
	if b.Flows() < uint64(e.opts.MinCandidates) {
		b.Reset()
		if err := e.fill(ctx, b, alarm.Interval, nil, PhaseCandidates); err != nil {
			return nil, false, err
		}
		prefiltered = false
	}
	return b.Dataset(), prefiltered, nil
}

// fill streams one interval scan into the builder, sampling progress
// every progressStride records (the nil check is all the hot loop pays
// when no observer is attached).
func (e *Extractor) fill(ctx context.Context, b *itemset.Builder, iv flow.Interval, f *nffilter.Filter, phase string) error {
	n := 0
	for r, err := range e.store.Iter(ctx, iv, f) {
		if err != nil {
			return err
		}
		b.Add(r)
		if n++; e.opts.Progress != nil && n%progressStride == 0 {
			e.opts.Progress(Progress{Phase: phase, CandidateFlows: b.Flows()})
		}
	}
	return nil
}

// report emits one progress observation when an observer is attached.
func (e *Extractor) report(p Progress) {
	if e.opts.Progress != nil {
		e.opts.Progress(p)
	}
}

// share returns part/total, or 0 for an empty total (never NaN).
func share(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// score fills each report's Score under the configured ranking mode. The
// support score needs nothing beyond the supports already on the rows;
// the lift modes additionally need the candidate share of every single
// item appearing in the reported sets, computed in one batch SupportAll
// pass over the dataset (share guards all the zero-total cases, so no
// mode can produce NaN and poison the sort).
func (e *Extractor) score(ds *itemset.Dataset, res *Result, list []*ItemsetReport) {
	for _, r := range list {
		fShare := share(r.FlowSupport, res.CandidateFlows)
		pShare := share(r.PacketSupport, res.CandidatePackets)
		r.Score = max(fShare, pShare)
	}
	if e.opts.Ranking == RankSupport {
		return
	}

	var items []itemset.Item
	seen := make(map[itemset.Item]bool)
	for _, r := range list {
		for _, it := range r.Items {
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
	}
	sets := make([]itemset.Set, len(items))
	for i, it := range items {
		sets[i] = itemset.Set{it}
	}
	fShares := make(map[itemset.Item]float64, len(items))
	pShares := make(map[itemset.Item]float64, len(items))
	for i, sup := range ds.SupportAll(sets, 0) {
		fShares[items[i]] = share(sup.Flows, res.CandidateFlows)
		pShares[items[i]] = share(sup.Packets, res.CandidatePackets)
	}

	for _, r := range list {
		lift := max(
			liftOf(share(r.FlowSupport, res.CandidateFlows), r.Items, fShares),
			liftOf(share(r.PacketSupport, res.CandidatePackets), r.Items, pShares),
		)
		switch e.opts.Ranking {
		case RankLift:
			r.Score = lift
		case RankWeighted:
			r.Score *= math.Log2(1 + lift)
		}
	}
}

// liftOf returns observed / expected share, where the expectation assumes
// the itemset's items occur independently (the product of their
// single-item shares). An item share of zero — only possible when the
// whole dimension carries no weight — makes the expectation meaningless,
// so the lift degrades to 0 and the other dimension decides.
func liftOf(observed float64, s itemset.Set, itemShare map[itemset.Item]float64) float64 {
	if observed == 0 {
		return 0
	}
	expected := 1.0
	for _, it := range s {
		sh := itemShare[it]
		if sh == 0 {
			return 0
		}
		expected *= sh
	}
	return observed / expected
}

// mineTuned runs the self-tuning mining loop in one dimension: start at
// InitialSupportFraction of the total, halve until the maximal-itemset
// count reaches MinItemsets (or the floor / round bound stops us).
func (e *Extractor) mineTuned(ctx context.Context, ds *itemset.Dataset, byPackets bool) ([]itemset.Frequent, DimensionTuning, error) {
	total := ds.Total(byPackets)
	dim := nfstore.ByFlows
	if byPackets {
		dim = nfstore.ByPackets
	}
	phase := PhaseMineFlows
	if byPackets {
		phase = PhaseMinePackets
	}
	tuning := DimensionTuning{Dimension: dim}
	minSup := uint64(float64(total) * e.opts.InitialSupportFraction)
	if minSup < e.opts.SupportFloor {
		minSup = e.opts.SupportFloor
	}
	tuning.InitialMin = minSup

	var result []itemset.Frequent
	for round := 0; round < e.opts.MaxTuningRounds; round++ {
		tuning.Rounds = round + 1
		e.report(Progress{Phase: phase, TuningRound: round + 1, Itemsets: len(result)})
		var err error
		result, err = e.m.MineMaximal(ctx, ds, miner.Options{
			MinSupport:   minSup,
			ByPackets:    byPackets,
			MaxLen:       e.opts.MaxLen,
			Prefilter:    e.opts.MinerPrefilter,
			Significance: e.opts.Significance,
			MinLift:      e.opts.MinLift,
		})
		if err != nil {
			return nil, tuning, err
		}
		if minSup <= e.opts.SupportFloor {
			break
		}
		enough := len(result) >= e.opts.MinItemsets
		explained := ds.Coverage(setsOf(result), byPackets, 0) >= e.opts.CoverageTarget ||
			len(result) >= e.opts.MaxItemsets
		if enough && explained {
			break
		}
		minSup /= 2
		if minSup < e.opts.SupportFloor {
			minSup = e.opts.SupportFloor
		}
	}
	tuning.FinalMin = minSup
	tuning.ItemsetsSeen = len(result)
	return result, tuning, nil
}

// setsOf projects mined itemsets to their Set slices (the shape the
// sharded coverage and support passes consume).
func setsOf(fs []itemset.Frequent) []itemset.Set {
	sets := make([]itemset.Set, len(fs))
	for i := range fs {
		sets[i] = fs[i].Items
	}
	return sets
}

// reportSets is setsOf for report rows.
func reportSets(list []*ItemsetReport) []itemset.Set {
	sets := make([]itemset.Set, len(list))
	for i, r := range list {
		sets[i] = r.Items
	}
	return sets
}

// addAll merges mined itemsets into the report map, recording the mining
// dimension; supports are filled in afterwards by one batch SupportAll
// pass. order preserves first-insertion order so the batch pass and the
// final ranking are deterministic.
func addAll(merged map[string]*ItemsetReport, order *[]*ItemsetReport, sets []itemset.Frequent, dim nfstore.Weight) {
	for _, fr := range sets {
		key := fr.Items.Key()
		r, ok := merged[key]
		if !ok {
			r = &ItemsetReport{Items: fr.Items}
			merged[key] = r
			*order = append(*order, r)
		}
		r.Dimensions = append(r.Dimensions, dim)
	}
}

// baselineFilter drops itemsets whose traffic share in the preceding
// (baseline) bin is comparable to their share in the alarm bin: such
// itemsets describe normal traffic structure (popular servers, busy
// services), not the anomaly. The baseline records stream into a builder
// exactly like the candidate scan, and the per-itemset baseline supports
// come from one sharded SupportAll pass.
func (e *Extractor) baselineFilter(ctx context.Context, iv flow.Interval, ds *itemset.Dataset, list []*ItemsetReport) (kept []*ItemsetReport, dropped int, err error) {
	span := iv.End - iv.Start
	if span == 0 || iv.Start < span {
		return list, 0, nil
	}
	baseIv := flow.Interval{Start: iv.Start - span, End: iv.Start}
	b := itemset.NewBuilder()
	if err := e.fill(ctx, b, baseIv, nil, PhaseBaseline); err != nil {
		return nil, 0, err
	}
	baseDs := b.Dataset()
	if baseDs.TotalFlows() == 0 {
		return list, 0, nil
	}
	baseSups := baseDs.SupportAll(reportSets(list), 0)
	// The packet dimension only gets a vote when both datasets carry
	// packet weight: with a zero total on either side its shares are
	// trivially 0 >= ratio×0 and would exempt every itemset from the
	// flow-dimension verdict.
	packetsVote := ds.TotalPackets() > 0 && baseDs.TotalPackets() > 0
	for i, r := range list {
		alarmShare := share(r.FlowSupport, ds.TotalFlows())
		baseShare := share(baseSups[i].Flows, baseDs.TotalFlows())
		// Keep when EITHER dimension shows a genuine surge.
		keep := alarmShare >= e.opts.BaselineRatio*baseShare
		if !keep && packetsVote {
			pAlarmShare := share(r.PacketSupport, ds.TotalPackets())
			pBaseShare := share(baseSups[i].Packets, baseDs.TotalPackets())
			keep = pAlarmShare >= e.opts.BaselineRatio*pBaseShare
		}
		if keep {
			kept = append(kept, r)
		} else {
			dropped++
		}
	}
	return kept, dropped, nil
}
