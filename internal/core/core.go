// Package core implements the paper's primary contribution: the extended
// Apriori anomaly-extraction engine that turns a detector alarm plus a
// flow archive into a short, ranked list of itemsets summarizing the
// anomalous flows.
//
// Relative to classic Apriori over flow transactions (Brauckhoff et al.,
// IMC'09), the engine adds the two extensions this paper describes:
//
//  1. Dual support. Itemset support is computed in flows AND in packets.
//     Anomalies "not characterized by a significant volume of flows" —
//     the point-to-point UDP floods frequent in GEANT — are invisible to
//     flow support but dominate packet support, so the engine mines both
//     dimensions and merges the results.
//
//  2. Self-tuning configuration. The minimum support starts at a fraction
//     of the candidate traffic and halves itself until the number of
//     maximal itemsets lands in an operator-friendly band, so the
//     extraction works across anomalies of very different intensities
//     without manual parameter fiddling.
//
// The engine also applies the workflow around the miner that the paper's
// system implements: meta-data pre-filtering of candidate flows (with
// fallback to the full interval), maximal-itemset reduction,
// baseline-popularity false-positive suppression, and itemset→filter
// drill-down so an operator can inspect the raw flows behind any row.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/apriori"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// Options configures the extraction engine. The zero value is not valid;
// start from DefaultOptions.
type Options struct {
	// MinItemsets..MaxItemsets is the target band for the number of
	// reported maximal itemsets. Self-tuning lowers the support until at
	// least MinItemsets appear (or the floor is hit); the ranked list is
	// then cut at MaxItemsets.
	MinItemsets int
	MaxItemsets int
	// InitialSupportFraction is the starting minimum support as a
	// fraction of the candidate total (flows or packets, per dimension).
	InitialSupportFraction float64
	// SupportFloor is the absolute lower bound the self-tuning loop will
	// not cross: itemsets below it are noise regardless of band.
	SupportFloor uint64
	// MaxTuningRounds bounds the halving loop per dimension.
	MaxTuningRounds int
	// UsePrefilter selects whether the alarm meta-data pre-filters the
	// candidate flows (the paper's workflow). When the pre-filter matches
	// fewer than MinCandidates flows the engine falls back to the full
	// interval.
	UsePrefilter  bool
	MinCandidates int
	// PacketCoverageMin triggers the packet-support pass: when the
	// flow-mined itemsets cover less than this fraction of candidate
	// packets, the engine re-mines by packets. The default (1.0) always
	// mines both dimensions, which is what the paper's extended Apriori
	// does ("compute the support of an itemset in terms of packets in
	// addition to flows"); 0 disables the packet pass entirely and
	// reproduces classic flow-only Apriori for ablations.
	PacketCoverageMin float64
	// CoverageTarget drives the self-tuning loop beyond the MinItemsets
	// band: as long as the mined itemsets cover (in the mining dimension)
	// less than this fraction of the candidate traffic and fewer than
	// MaxItemsets were found, the minimum support keeps halving. This is
	// what lets extraction surface co-occurring anomalies weaker than the
	// dominant one (the paper's Table 1 DDoS rows).
	CoverageTarget float64
	// BaselineFilter drops itemsets that are (proportionally) just as
	// frequent in the preceding baseline bin — the "popular port / popular
	// server" false positives the paper says operators filter trivially.
	// BaselineRatio is the share ratio below which an itemset is dropped:
	// an itemset is kept only if share(alarm) >= BaselineRatio ×
	// share(baseline).
	BaselineFilter bool
	BaselineRatio  float64
	// MaxLen bounds itemset length (0 = up to all five features).
	MaxLen int
}

// DefaultOptions returns the configuration used by the paper-reproduction
// experiments.
func DefaultOptions() Options {
	return Options{
		MinItemsets:            2,
		MaxItemsets:            10,
		InitialSupportFraction: 0.2,
		SupportFloor:           10,
		MaxTuningRounds:        12,
		UsePrefilter:           true,
		MinCandidates:          50,
		PacketCoverageMin:      1,
		CoverageTarget:         0.9,
		BaselineFilter:         true,
		BaselineRatio:          3,
		MaxLen:                 0,
	}
}

// validate normalizes and checks options.
func (o *Options) validate() error {
	if o.MinItemsets <= 0 {
		o.MinItemsets = 2
	}
	if o.MaxItemsets < o.MinItemsets {
		return fmt.Errorf("core: MaxItemsets %d < MinItemsets %d", o.MaxItemsets, o.MinItemsets)
	}
	if o.InitialSupportFraction <= 0 || o.InitialSupportFraction > 1 {
		return fmt.Errorf("core: InitialSupportFraction must be in (0,1], got %v", o.InitialSupportFraction)
	}
	if o.SupportFloor == 0 {
		o.SupportFloor = 1
	}
	if o.MaxTuningRounds <= 0 {
		o.MaxTuningRounds = 12
	}
	if o.MinCandidates <= 0 {
		o.MinCandidates = 50
	}
	if o.PacketCoverageMin < 0 || o.PacketCoverageMin > 1 {
		return fmt.Errorf("core: PacketCoverageMin must be in [0,1], got %v", o.PacketCoverageMin)
	}
	if o.CoverageTarget <= 0 || o.CoverageTarget > 1 {
		o.CoverageTarget = 0.9
	}
	if o.BaselineRatio <= 1 {
		o.BaselineRatio = 3
	}
	return nil
}

// ItemsetReport is one ranked row of an extraction result — one line of
// the paper's Table 1.
type ItemsetReport struct {
	Items itemset.Set
	// FlowSupport and PacketSupport are the itemset's supports over the
	// candidate flows in both dimensions, whatever dimension mined it.
	FlowSupport   uint64
	PacketSupport uint64
	// Dimensions lists the support dimension(s) in which the itemset was
	// frequent ("flows", "packets" or both).
	Dimensions []nfstore.Weight
	// Score is the ranking key: the larger of the itemset's flow share
	// and packet share of the candidate traffic.
	Score float64
}

// Filter returns the drill-down filter matching exactly the flows the
// itemset summarizes.
func (r *ItemsetReport) Filter() *nffilter.Filter {
	return FilterFor(r.Items)
}

// String renders the report row compactly.
func (r *ItemsetReport) String() string {
	return fmt.Sprintf("%s flows=%d packets=%d", r.Items, r.FlowSupport, r.PacketSupport)
}

// FilterFor builds the conjunction filter matching an itemset's flows.
func FilterFor(s itemset.Set) *nffilter.Filter {
	kids := make([]nffilter.Node, 0, len(s))
	for _, it := range s {
		m := detector.MetaItem{Feature: it.Feature(), Value: it.Value()}
		kids = append(kids, m.Node())
	}
	return nffilter.FromNode(&nffilter.And{Kids: kids})
}

// DimensionTuning records the self-tuning trajectory of one dimension.
type DimensionTuning struct {
	Dimension    nfstore.Weight
	InitialMin   uint64
	FinalMin     uint64
	Rounds       int
	ItemsetsSeen int
}

// Result is a full extraction outcome.
type Result struct {
	// Alarm is the input alarm.
	Alarm detector.Alarm
	// Prefiltered reports whether the meta pre-filter was applied (false
	// means full-interval fallback).
	Prefiltered bool
	// CandidateFlows / CandidatePackets describe the mined candidate set.
	CandidateFlows   uint64
	CandidatePackets uint64
	// Itemsets is the ranked final list.
	Itemsets []ItemsetReport
	// Tuning records the per-dimension self-tuning trajectories.
	Tuning []DimensionTuning
	// BaselineDropped counts itemsets suppressed by the baseline filter.
	BaselineDropped int
}

// Extractor runs anomaly extraction against a flow store.
type Extractor struct {
	store *nfstore.Store
	opts  Options
}

// New builds an Extractor. The options are validated once here.
func New(store *nfstore.Store, opts Options) (*Extractor, error) {
	if store == nil {
		return nil, errors.New("core: nil store")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Extractor{store: store, opts: opts}, nil
}

// MustNew is New that panics on error.
func MustNew(store *nfstore.Store, opts Options) *Extractor {
	e, err := New(store, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// ErrNoCandidates is returned when the alarm interval holds no flows.
var ErrNoCandidates = errors.New("core: alarm interval contains no flows")

// Extract runs the full extended-Apriori extraction for one alarm.
// Cancelling ctx aborts the candidate scan, the mining passes and the
// baseline pass promptly, returning ctx.Err().
//
// The candidate and baseline scans ride the store's pruned parallel query
// engine: the meta pre-filter is exactly the kind of selective filter
// whose zone-map pruning skips every segment outside the anomaly, so the
// prefiltered pass typically opens only the alarm interval's own bins.
func (e *Extractor) Extract(ctx context.Context, alarm *detector.Alarm) (*Result, error) {
	res := &Result{Alarm: *alarm}

	// Candidate selection: meta pre-filter with full-interval fallback.
	var records []flow.Record
	var err error
	if e.opts.UsePrefilter {
		if mf := alarm.MetaFilter(); mf != nil {
			records, err = e.store.Records(ctx, alarm.Interval, mf)
			if err != nil {
				return nil, err
			}
			res.Prefiltered = true
		}
	}
	if len(records) < e.opts.MinCandidates {
		records, err = e.store.Records(ctx, alarm.Interval, nil)
		if err != nil {
			return nil, err
		}
		res.Prefiltered = false
	}
	if len(records) == 0 {
		return nil, ErrNoCandidates
	}
	ds := itemset.FromRecords(records)
	res.CandidateFlows = ds.TotalFlows()
	res.CandidatePackets = ds.TotalPackets()

	// Dimension 1: flow support (the classic IMC'09 miner).
	flowSets, flowTuning, err := e.mineTuned(ctx, ds, false)
	if err != nil {
		return nil, err
	}
	res.Tuning = append(res.Tuning, flowTuning)

	merged := make(map[string]*ItemsetReport)
	addAll(merged, ds, flowSets, nfstore.ByFlows)

	// Extension 1: packet support when flow-mined itemsets leave most of
	// the candidate packet volume unexplained. PacketCoverageMin of 1
	// (the default) runs the packet pass unconditionally — flow-mined
	// itemsets covering 100% of packets through a broad set like
	// "proto=udp" must not mask a flood's specific itemsets.
	if e.opts.PacketCoverageMin > 0 &&
		(e.opts.PacketCoverageMin >= 1 || coverage(ds, flowSets, true) < e.opts.PacketCoverageMin) {
		pktSets, pktTuning, err := e.mineTuned(ctx, ds, true)
		if err != nil {
			return nil, err
		}
		res.Tuning = append(res.Tuning, pktTuning)
		addAll(merged, ds, pktSets, nfstore.ByPackets)
	}

	// Baseline false-positive suppression.
	list := make([]*ItemsetReport, 0, len(merged))
	for _, r := range merged {
		list = append(list, r)
	}
	if e.opts.BaselineFilter {
		kept, dropped, err := e.baselineFilter(ctx, alarm.Interval, ds, list)
		if err != nil {
			return nil, err
		}
		list = kept
		res.BaselineDropped = dropped
	}

	// Rank by share score, cut at MaxItemsets.
	for _, r := range list {
		fShare := float64(r.FlowSupport) / float64(res.CandidateFlows)
		pShare := float64(r.PacketSupport) / float64(res.CandidatePackets)
		r.Score = fShare
		if pShare > fShare {
			r.Score = pShare
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Score != list[j].Score {
			return list[i].Score > list[j].Score
		}
		if len(list[i].Items) != len(list[j].Items) {
			return len(list[i].Items) > len(list[j].Items)
		}
		return list[i].Items.Key() < list[j].Items.Key()
	})
	if len(list) > e.opts.MaxItemsets {
		list = list[:e.opts.MaxItemsets]
	}
	res.Itemsets = make([]ItemsetReport, len(list))
	for i, r := range list {
		res.Itemsets[i] = *r
	}
	return res, nil
}

// mineTuned runs the self-tuning mining loop in one dimension: start at
// InitialSupportFraction of the total, halve until the maximal-itemset
// count reaches MinItemsets (or the floor / round bound stops us).
func (e *Extractor) mineTuned(ctx context.Context, ds *itemset.Dataset, byPackets bool) ([]itemset.Frequent, DimensionTuning, error) {
	total := ds.Total(byPackets)
	dim := nfstore.ByFlows
	if byPackets {
		dim = nfstore.ByPackets
	}
	tuning := DimensionTuning{Dimension: dim}
	minSup := uint64(float64(total) * e.opts.InitialSupportFraction)
	if minSup < e.opts.SupportFloor {
		minSup = e.opts.SupportFloor
	}
	tuning.InitialMin = minSup

	var result []itemset.Frequent
	for round := 0; round < e.opts.MaxTuningRounds; round++ {
		tuning.Rounds = round + 1
		var err error
		result, err = apriori.MineMaximal(ctx, ds, apriori.Options{
			MinSupport: minSup,
			ByPackets:  byPackets,
			MaxLen:     e.opts.MaxLen,
		})
		if err != nil {
			return nil, tuning, err
		}
		if minSup <= e.opts.SupportFloor {
			break
		}
		enough := len(result) >= e.opts.MinItemsets
		explained := coverage(ds, result, byPackets) >= e.opts.CoverageTarget ||
			len(result) >= e.opts.MaxItemsets
		if enough && explained {
			break
		}
		minSup /= 2
		if minSup < e.opts.SupportFloor {
			minSup = e.opts.SupportFloor
		}
	}
	tuning.FinalMin = minSup
	tuning.ItemsetsSeen = len(result)
	return result, tuning, nil
}

// addAll merges mined itemsets into the report map, computing both
// supports for each and recording the mining dimension.
func addAll(merged map[string]*ItemsetReport, ds *itemset.Dataset, sets []itemset.Frequent, dim nfstore.Weight) {
	for _, fr := range sets {
		key := fr.Items.Key()
		r, ok := merged[key]
		if !ok {
			r = &ItemsetReport{
				Items:         fr.Items,
				FlowSupport:   ds.Support(fr.Items, false),
				PacketSupport: ds.Support(fr.Items, true),
			}
			merged[key] = r
		}
		r.Dimensions = append(r.Dimensions, dim)
	}
}

// coverage returns the fraction of candidate traffic (in the chosen
// dimension) covered by the union of the itemsets: a transaction counts
// once even when several itemsets match it.
func coverage(ds *itemset.Dataset, sets []itemset.Frequent, byPackets bool) float64 {
	total := ds.Total(byPackets)
	if total == 0 {
		return 1
	}
	if len(sets) == 0 {
		return 0
	}
	var covered uint64
	for i := 0; i < ds.Len(); i++ {
		tx := ds.Tx(i)
		for _, fr := range sets {
			if itemset.Match(&tx.Items, fr.Items) {
				covered += tx.Weight(byPackets)
				break
			}
		}
	}
	return float64(covered) / float64(total)
}

// baselineFilter drops itemsets whose traffic share in the preceding
// (baseline) bin is comparable to their share in the alarm bin: such
// itemsets describe normal traffic structure (popular servers, busy
// services), not the anomaly.
func (e *Extractor) baselineFilter(ctx context.Context, iv flow.Interval, ds *itemset.Dataset, list []*ItemsetReport) (kept []*ItemsetReport, dropped int, err error) {
	span := iv.End - iv.Start
	if span == 0 || iv.Start < span {
		return list, 0, nil
	}
	baseIv := flow.Interval{Start: iv.Start - span, End: iv.Start}
	baseRecords, err := e.store.Records(ctx, baseIv, nil)
	if err != nil {
		return nil, 0, err
	}
	if len(baseRecords) == 0 {
		return list, 0, nil
	}
	baseDs := itemset.FromRecords(baseRecords)
	for _, r := range list {
		alarmShare := float64(r.FlowSupport) / float64(ds.TotalFlows())
		baseShare := float64(baseDs.Support(r.Items, false)) / float64(baseDs.TotalFlows())
		pAlarmShare := float64(r.PacketSupport) / float64(ds.TotalPackets())
		pBaseShare := float64(baseDs.Support(r.Items, true)) / float64(baseDs.TotalPackets())
		// Keep when EITHER dimension shows a genuine surge.
		if alarmShare >= e.opts.BaselineRatio*baseShare || pAlarmShare >= e.opts.BaselineRatio*pBaseShare {
			kept = append(kept, r)
		} else {
			dropped++
		}
	}
	return kept, dropped, nil
}
