// Package fda implements an FDA-style frequent-itemset miner, after
// Facebook's "Fast Dimensional Analysis": per-item statistical
// pre-filtering before any itemset enumeration, FP-growth with the
// top-level conditional trees mined in parallel, and a lift cut on the
// mined itemsets. Registered as "fda".
//
// With Options.Prefilter unset both the pre-filter and the lift cut are
// off and the output is element-for-element equal to apriori/fpgrowth on
// the same input (the cross-miner conformance battery pins this). With
// Prefilter set the output is a subset of that result with identical
// supports and the same canonical order: items whose weight is
// statistically indistinguishable from a uniform spread over their
// feature are dropped before the tree is built, and mined itemsets whose
// lift falls below Options.MinLift are dropped after.
package fda

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/miner"
)

// Options is the shared miner configuration (see miner.Options); the
// Prefilter, Significance and MinLift fields drive this miner.
type Options = miner.Options

// Miner is the registry adapter: package-level Mine/MineMaximal behind
// the miner.Miner interface. Registered as "fda".
type Miner struct{}

// Mine implements miner.Miner.
func (Miner) Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	return Mine(ctx, ds, opts)
}

// MineMaximal implements miner.Miner.
func (Miner) MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	return MineMaximal(ctx, ds, opts)
}

func init() {
	miner.MustRegister("fda", func() miner.Miner { return Miner{} })
}

// maxWorkers bounds the top-level mining fan-out; alarm datasets carry at
// most a few hundred header items, so more workers only add scheduling
// overhead.
const maxWorkers = 8

// Mine returns the frequent itemsets of ds with support >= opts.MinSupport
// in the chosen dimension, canonically sorted. Without opts.Prefilter the
// result equals fpgrowth.Mine; with it, the significance pre-filter and
// the lift cut reduce the result to a subset with equal supports.
// Cancelling ctx aborts mining promptly with ctx.Err().
func Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	maxLen := opts.MaxLen
	if maxLen <= 0 || maxLen > flow.NumFeatures {
		maxLen = flow.NumFeatures
	}

	// Pass 1: global item supports in the mining dimension.
	support := make(map[itemset.Item]uint64)
	for i := 0; i < ds.Len(); i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tx := ds.Tx(i)
		w := tx.Weight(opts.ByPackets)
		for _, it := range tx.Items {
			support[it] += w
		}
	}
	total := ds.Total(opts.ByPackets)

	// Pre-filter, then the global item order over the surviving frequent
	// items: descending support, ties by item value — the same canonical
	// order fpgrowth uses, so the filtered run mines a sub-tree of the
	// unfiltered one.
	kept := support
	if opts.Prefilter {
		kept = significantItems(support, total, opts.Significance)
	}
	order := make(map[itemset.Item]int, len(kept))
	{
		items := make([]itemset.Item, 0, len(kept))
		for it := range kept {
			if support[it] >= opts.MinSupport {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if support[items[i]] != support[items[j]] {
				return support[items[i]] > support[items[j]]
			}
			return items[i] < items[j]
		})
		for rank, it := range items {
			order[it] = rank
		}
	}

	// Pass 2: build the FP-tree over the surviving items.
	t := newTree()
	var path []itemset.Item
	for i := 0; i < ds.Len(); i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tx := ds.Tx(i)
		path = path[:0]
		for _, it := range tx.Items {
			if _, ok := order[it]; ok {
				path = append(path, it)
			}
		}
		if len(path) == 0 {
			continue
		}
		sort.Slice(path, func(a, b int) bool { return order[path[a]] < order[path[b]] })
		t.insert(path, tx.Weight(opts.ByPackets))
	}

	result, err := mineParallel(ctx, t, opts.MinSupport, maxLen)
	if err != nil {
		return nil, err
	}
	if opts.Prefilter {
		result = liftCut(result, support, total, opts.MinLift)
	}
	itemset.SortFrequent(result)
	return result, nil
}

// MineMaximal mines (pre-filter and lift cut included) and reduces to
// maximal itemsets.
func MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	all, err := Mine(ctx, ds, opts)
	if err != nil {
		return nil, err
	}
	return itemset.MaximalOnly(all), nil
}

// significantItems applies the per-item pre-filter. The null model
// spreads a feature's weight uniformly over its k observed values (share
// p0 = 1/k); an item survives when its observed weight w clears the
// one-sided z-test against the Binomial(total, p0) null:
//
//	z = (w − total·p0) / sqrt(total·p0·(1−p0)) >= sig
//
// Features with a single observed value carry nothing to test and always
// survive, as does everything when the dataset has no weight at all.
func significantItems(support map[itemset.Item]uint64, total uint64, sig float64) map[itemset.Item]uint64 {
	if total == 0 {
		return support
	}
	valuesPerFeature := make(map[flow.Feature]int)
	for it := range support {
		valuesPerFeature[it.Feature()]++
	}
	kept := make(map[itemset.Item]uint64, len(support))
	for it, w := range support {
		k := valuesPerFeature[it.Feature()]
		if k <= 1 {
			kept[it] = w
			continue
		}
		p0 := 1 / float64(k)
		mean := float64(total) * p0
		sd := math.Sqrt(float64(total) * p0 * (1 - p0))
		if (float64(w)-mean)/sd >= sig {
			kept[it] = w
		}
	}
	return kept
}

// liftCut drops mined itemsets whose lift — observed support share over
// the independence expectation of their items' shares — falls below
// minLift. A single item's lift is exactly 1 (its observation is its own
// expectation), so level-1 sets survive any minLift <= 1.
func liftCut(sets []itemset.Frequent, support map[itemset.Item]uint64, total uint64, minLift float64) []itemset.Frequent {
	if total == 0 {
		return sets
	}
	out := sets[:0]
	for _, fr := range sets {
		obs := float64(fr.Support) / float64(total)
		expect := 1.0
		for _, it := range fr.Items {
			// Item support >= set support >= MinSupport >= 1, so the
			// expectation is always positive.
			expect *= float64(support[it]) / float64(total)
		}
		if obs/expect >= minLift {
			out = append(out, fr)
		}
	}
	return out
}

// mineParallel fans the top level of the FP-growth recursion out over a
// bounded worker pool: each frequent header item is emitted and its
// conditional tree mined independently (the tree is read-only by then),
// and the per-item slices concatenate in header order before the final
// canonical sort makes the merge order irrelevant.
func mineParallel(ctx context.Context, t *tree, minSupport uint64, maxLen int) ([]itemset.Frequent, error) {
	items := make([]itemset.Item, 0, len(t.heads))
	for it := range t.heads {
		if t.counts[it] >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	if len(items) == 0 {
		return nil, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > len(items) {
		workers = len(items)
	}

	parts := make([][]itemset.Frequent, len(items))
	errs := make([]error, workers)
	var next int64 = -1
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		next++
		if next >= int64(len(items)) {
			return -1
		}
		return int(next)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx := take()
				if idx < 0 {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				it := items[idx]
				set := itemset.Set{it}
				out := []itemset.Frequent{{Items: set, Support: t.counts[it]}}
				if maxLen > 1 {
					cond := conditionalTree(t, it)
					if len(cond.heads) > 0 {
						if err := mineTree(ctx, cond, set, minSupport, maxLen, &out); err != nil {
							errs[w] = err
							return
						}
					}
				}
				parts[idx] = out
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var result []itemset.Frequent
	for _, part := range parts {
		result = append(result, part...)
	}
	return result, nil
}
