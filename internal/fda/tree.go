package fda

import (
	"context"
	"sort"

	"repro/internal/itemset"
)

// The FP-tree machinery mirrors internal/fpgrowth node for node: the
// conformance battery pins this miner byte-equal to fpgrowth when the
// pre-filter is off, so any semantic drift between the two copies shows
// up as a test failure, not silent divergence. The only structural
// difference lives in mineParallel (fda.go), which replaces the serial
// top level of the recursion.

// node is one FP-tree node.
type node struct {
	item     itemset.Item
	count    uint64
	parent   *node
	children map[itemset.Item]*node
	next     *node // header-table chain of nodes holding the same item
}

// tree is an FP-tree with its header table.
type tree struct {
	root   *node
	heads  map[itemset.Item]*node  // first node per item
	counts map[itemset.Item]uint64 // total support per item
}

func newTree() *tree {
	return &tree{
		root:   &node{children: make(map[itemset.Item]*node)},
		heads:  make(map[itemset.Item]*node),
		counts: make(map[itemset.Item]uint64),
	}
}

// insert adds one (sorted-by-order) item path with the given weight.
func (t *tree) insert(items []itemset.Item, weight uint64) {
	cur := t.root
	for _, it := range items {
		child, ok := cur.children[it]
		if !ok {
			child = &node{item: it, parent: cur, children: make(map[itemset.Item]*node)}
			cur.children[it] = child
			child.next = t.heads[it]
			t.heads[it] = child
		}
		child.count += weight
		t.counts[it] += weight
		cur = child
	}
}

// mineTree recursively mines t, emitting each frequent item of t extended
// with the current suffix, then recursing on the item's conditional tree.
func mineTree(ctx context.Context, t *tree, suffix itemset.Set, minSupport uint64, maxLen int, out *[]itemset.Frequent) error {
	if len(suffix) >= maxLen {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Deterministic iteration order over header items.
	items := make([]itemset.Item, 0, len(t.heads))
	for it := range t.heads {
		if t.counts[it] >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	for _, it := range items {
		newSet := suffix.Union(itemset.Set{it})
		*out = append(*out, itemset.Frequent{Items: newSet, Support: t.counts[it]})
		if len(newSet) >= maxLen {
			continue
		}
		cond := conditionalTree(t, it)
		if len(cond.heads) > 0 {
			if err := mineTree(ctx, cond, newSet, minSupport, maxLen, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// conditionalTree builds the conditional FP-tree of item: the tree of
// prefix paths leading to nodes holding the item, weighted by those nodes'
// counts.
func conditionalTree(t *tree, it itemset.Item) *tree {
	cond := newTree()
	var prefix []itemset.Item
	for n := t.heads[it]; n != nil; n = n.next {
		prefix = prefix[:0]
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			prefix = append(prefix, p.item)
		}
		if len(prefix) == 0 {
			continue
		}
		// prefix was collected leaf→root; reverse to root→leaf so the
		// conditional tree shares structure the same way.
		for i, j := 0, len(prefix)-1; i < j; i, j = i+1, j-1 {
			prefix[i], prefix[j] = prefix[j], prefix[i]
		}
		cond.insert(prefix, n.count)
	}
	return cond
}
