package eval

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
	"repro/internal/shardstore"
)

// Shard scatter-gather benchmark: the scan-format workloads and filter
// (see scan.go), timed against a single store and against the same trace
// hash-partitioned into 1/2/4/8 shards, plus the 4-shard store served
// over loopback HTTP through the remote-peer client. Every cell reports
// two numbers:
//
//   - the measured throughput of one end-to-end pass on this host, and
//   - the modeled cluster throughput: each shard is scanned standalone
//     and the pass is charged the SLOWEST shard's time — exactly the
//     wall-clock an N-node cluster sees when every node scans its own
//     shard concurrently. On a multi-core host the in-process
//     scatter-gather approaches this number; on a single-core host it
//     cannot (there is no parallelism to exploit), which is why the two
//     are reported separately instead of pretending one is the other.
//
// Matched-flow counts are asserted identical across every mode — a
// sharded scan that dropped or duplicated rows would fail the benchmark,
// not just skew it.

// ShardRow is one measured cell of the shard benchmark.
type ShardRow struct {
	Op       string `json:"op"`       // "query" or "count"
	Workload string `json:"workload"` // "clustered" or "uniform"
	Mode     string `json:"mode"`     // "single", "sharded" or "http"
	Shards   int    `json:"shards"`   // 1 for single
	Matched  uint64 `json:"matched_flows"`
	// MrecPerS is the measured end-to-end throughput on this host.
	MrecPerS float64 `json:"mrec_per_s"`
	// ClusterMrecPerS is the modeled cluster throughput (slowest-shard
	// charging; see the package comment). Zero for http rows — HTTP adds
	// coordinator-side work the model would hide.
	ClusterMrecPerS float64 `json:"cluster_mrec_per_s,omitempty"`
	// Speedup and ClusterSpeedup are relative to the single-store row of
	// the same op and workload (single = 1.0).
	Speedup        float64 `json:"speedup_vs_single"`
	ClusterSpeedup float64 `json:"cluster_speedup_vs_single,omitempty"`
}

// ShardBenchShardCounts are the shard counts the benchmark sweeps.
var ShardBenchShardCounts = []int{1, 2, 4, 8}

// ShardBenchHTTPShards is the shard count served over loopback HTTP for
// the peer-overhead rows.
const ShardBenchHTTPShards = 4

// RunShardBench builds the scan workloads as a single store and as
// hash-partitioned sharded stores, times the filtered Query and Count
// paths on each (plus the HTTP-peer path at 4 shards), and returns one
// row per cell with single-store-relative speedups filled in. It reuses
// ScanBenchConfig: same trace sizes, same measurement floor.
func RunShardBench(workDir string, cfg ScanBenchConfig) ([]ShardRow, error) {
	cfg = cfg.withDefaults()
	filter, err := nffilter.Parse(ScanFilter)
	if err != nil {
		return nil, err
	}
	iv := flow.Interval{Start: 0, End: uint32(cfg.Bins * 300)}
	ops := []string{"query", "count"}
	var rows []ShardRow
	for _, workload := range []string{"clustered", "uniform"} {
		clustered := workload == "clustered"
		base := make(map[string]ShardRow) // op -> single-store row

		// Single-store baseline, serial scan (parallelism 1): the honest
		// one-node reference every speedup is relative to.
		dir := fmt.Sprintf("%s/shardbench-%s-single", workDir, workload)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		single, err := nfstore.CreateFormat(dir, 300, nfstore.FormatV2)
		if err != nil {
			return nil, err
		}
		err = FillScanStore(single, clustered, cfg.Records, cfg.Bins, cfg.Seed)
		if err == nil {
			single.SetParallelism(1)
			for _, op := range ops {
				var row ScanRow
				row, err = measureScan(single, op, filter, iv, cfg)
				if err != nil {
					break
				}
				sr := ShardRow{
					Op: op, Workload: workload, Mode: "single", Shards: 1,
					Matched: row.Matched, MrecPerS: row.MrecPerS,
					ClusterMrecPerS: row.MrecPerS, Speedup: 1, ClusterSpeedup: 1,
				}
				base[op] = sr
				rows = append(rows, sr)
			}
		}
		single.Close()
		if err != nil {
			return nil, err
		}

		// The 1-shard rows measure pure manifest/fan-out overhead: same
		// data, same serial scan, one layer of indirection more.
		for _, n := range ShardBenchShardCounts {
			dir := fmt.Sprintf("%s/shardbench-%s-s%d", workDir, workload, n)
			sharded, err := shardstore.Create(dir, 300, n, shardstore.PartitionHash, nfstore.FormatV2)
			if err != nil {
				return nil, err
			}
			if err := FillScanStore(sharded, clustered, cfg.Records, cfg.Bins, cfg.Seed); err != nil {
				sharded.Close()
				return nil, err
			}
			for _, st := range sharded.LocalStores() {
				st.SetParallelism(1) // one node = one serial scanner
			}
			sharded.SetParallelism(n) // fan out one worker per shard
			for _, op := range ops {
				row, err := measureScan(sharded, op, filter, iv, cfg)
				if err != nil {
					sharded.Close()
					return nil, err
				}
				if row.Matched != base[op].Matched {
					sharded.Close()
					return nil, fmt.Errorf("shard bench: %s/%s at %d shards matched %d flows, single store matched %d",
						workload, op, n, row.Matched, base[op].Matched)
				}
				clusterM, err := measureCluster(sharded.LocalStores(), op, filter, iv, cfg)
				if err != nil {
					sharded.Close()
					return nil, err
				}
				sr := ShardRow{
					Op: op, Workload: workload, Mode: "sharded", Shards: n,
					Matched: row.Matched, MrecPerS: row.MrecPerS,
					ClusterMrecPerS: clusterM,
				}
				if b := base[op]; b.MrecPerS > 0 {
					sr.Speedup = sr.MrecPerS / b.MrecPerS
					sr.ClusterSpeedup = sr.ClusterMrecPerS / b.MrecPerS
				}
				rows = append(rows, sr)
			}
			if err := sharded.Close(); err != nil {
				return nil, err
			}

			if n != ShardBenchHTTPShards {
				continue
			}
			// HTTP-peer overhead: the same shards behind loopback HTTP
			// servers, read through the remote client — framed record
			// streams for query, JSON merges for count.
			httpRows, err := measureHTTP(dir, n, workload, ops, filter, iv, cfg, base)
			if err != nil {
				return nil, err
			}
			rows = append(rows, httpRows...)
		}
	}
	return rows, nil
}

// measureCluster times op over each shard's local store standalone and
// charges every pass the slowest shard's time — the modeled wall-clock
// of an N-node cluster scanning concurrently.
func measureCluster(locals []*nfstore.Store, op string, filter *nffilter.Filter, iv flow.Interval, cfg ScanBenchConfig) (float64, error) {
	ctx := context.Background()
	pass := func() (time.Duration, error) {
		var worst time.Duration
		for _, s := range locals {
			t0 := time.Now()
			var err error
			if op == "count" {
				_, _, _, err = s.Count(ctx, iv, filter)
			} else {
				err = s.Query(ctx, iv, filter, func(*flow.Record) error { return nil })
			}
			if err != nil {
				return 0, err
			}
			if d := time.Since(t0); d > worst {
				worst = d
			}
		}
		return worst, nil
	}
	if _, err := pass(); err != nil { // warmup
		return 0, err
	}
	var clusterTime time.Duration
	passes := 0
	t0 := time.Now()
	for passes == 0 || time.Since(t0) < cfg.MinTime {
		d, err := pass()
		if err != nil {
			return 0, err
		}
		clusterTime += d
		passes++
	}
	return float64(cfg.Records) * float64(passes) / clusterTime.Seconds() / 1e6, nil
}

// measureHTTP serves the sharded store at dir over loopback HTTP and
// times the ops through the remote-peer client.
func measureHTTP(dir string, n int, workload string, ops []string, filter *nffilter.Filter, iv flow.Interval, cfg ScanBenchConfig, base map[string]ShardRow) ([]ShardRow, error) {
	peers, stopPeers, err := ServeShardDirs(dir)
	if err != nil {
		return nil, err
	}
	defer stopPeers()
	remote, err := shardstore.OpenRemote(context.Background(), peers, shardstore.RemoteOptions{})
	if err != nil {
		return nil, err
	}
	defer remote.Close()
	remote.SetParallelism(n)
	var rows []ShardRow
	for _, op := range ops {
		row, err := measureScan(remote, op, filter, iv, cfg)
		if err != nil {
			return nil, err
		}
		if row.Matched != base[op].Matched {
			return nil, fmt.Errorf("shard bench: %s/%s over http matched %d flows, single store matched %d",
				workload, op, row.Matched, base[op].Matched)
		}
		sr := ShardRow{
			Op: op, Workload: workload, Mode: "http", Shards: n,
			Matched: row.Matched, MrecPerS: row.MrecPerS,
		}
		if b := base[op]; b.MrecPerS > 0 {
			sr.Speedup = sr.MrecPerS / b.MrecPerS
		}
		rows = append(rows, sr)
	}
	return rows, nil
}
