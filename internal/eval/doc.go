// Package eval is the experiment harness: it scores extraction results
// against the generator's ground-truth annotations and runs the paper's
// evaluation suites (the 40-alarm GEANT evaluation with 1/100 sampling,
// the 31-anomaly SWITCH evaluation with the histogram/KL detector, the
// Table 1 scenario, the flow-vs-packet support sweep and the self-tuning
// ablation). EXPERIMENTS.md records paper-vs-measured for each.
//
// On top of the paper's suites, RunMatrix drives the reproducible
// evaluation pipeline: every scenario-catalog entry (internal/gen) is
// generated once, alarm-sourced per configured detector (with
// ground-truth synthesis as the SynthesizedSource pseudo-detector and as
// fallback), and extracted per registered miner — all through the public
// rootcause API, optionally via the job manager. Results are scored with
// ScoreTruth (itemset precision, anomaly recall, rank of the true cause)
// and aggregated into a MatrixReport, the payload of BENCH_eval.json
// that cmd/benchreport writes and CI tracks PR-over-PR (see
// docs/evaluation.md and DESIGN.md §7).
package eval
