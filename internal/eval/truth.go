package eval

import (
	"context"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
)

// EntryAttribution records how one injected anomaly fared in a ranked
// extraction result.
type EntryAttribution struct {
	Anno     flow.Annotation
	Kind     detector.Kind
	Describe string
	// Attributed reports whether some reported itemset's traffic is
	// dominated by this anomaly; Rank is the 1-based rank of the first
	// such itemset (0 when unattributed).
	Attributed bool
	Rank       int
}

// TruthScore is the ground-truth scoring of one ranked extraction result
// against the generator's annotations: itemset precision, anomaly recall
// and the rank of the true cause.
type TruthScore struct {
	// ReportedItemsets / CorrectItemsets count the ranked list and the
	// subset whose matched traffic is dominated (>= UsefulPurity, in
	// flows or packets) by a single injected anomaly.
	ReportedItemsets int
	CorrectItemsets  int
	// Precision is CorrectItemsets/ReportedItemsets (0 when nothing was
	// reported).
	Precision float64
	// Recall is the fraction of injected anomalies attributed by at
	// least one correct itemset.
	Recall float64
	// Rank is the 1-based rank of the first itemset attributed to the
	// primary anomaly (annotation 1); 0 means the true cause never
	// appeared.
	Rank    int
	Entries []EntryAttribution
}

// ScoreTruth evaluates a ranked extraction result against the scenario's
// ground truth. Each reported itemset is matched against the stored flows
// of the alarm interval; an itemset is correct when a single injected
// anomaly dominates its traffic (>= opts.UsefulPurity of matched flows or
// packets), and that anomaly is then attributed at the itemset's rank.
// A nil res scores zero (no candidates / nothing mined).
func ScoreTruth(store nfstore.Engine, iv flow.Interval, res *core.Result, truth *gen.Truth, opts ScoreOptions) (*TruthScore, error) {
	if opts.UsefulPurity <= 0 {
		opts.UsefulPurity = 0.8
	}
	ts := &TruthScore{}
	for _, e := range truth.Entries {
		ts.Entries = append(ts.Entries, EntryAttribution{
			Anno: e.Anno, Kind: e.Kind, Describe: e.Describe,
		})
	}
	if res == nil {
		return ts, nil
	}
	ts.ReportedItemsets = len(res.Itemsets)
	for rank := range res.Itemsets {
		filter := res.Itemsets[rank].Filter()
		var matchedFlows, matchedPkts uint64
		annoFlows := make(map[flow.Annotation]uint64)
		annoPkts := make(map[flow.Annotation]uint64)
		err := store.Query(context.Background(), iv, filter, func(r *flow.Record) error {
			matchedFlows++
			matchedPkts += r.Packets
			if r.IsAnomalous() {
				annoFlows[r.Anno]++
				annoPkts[r.Anno] += r.Packets
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if matchedFlows == 0 {
			continue
		}
		// The dominant anomaly: best share in either support dimension,
		// mirroring the engine's dual flow/packet mining.
		var best flow.Annotation
		var bestShare float64
		for anno, f := range annoFlows {
			share := float64(f) / float64(matchedFlows)
			if matchedPkts > 0 {
				if ps := float64(annoPkts[anno]) / float64(matchedPkts); ps > share {
					share = ps
				}
			}
			if share > bestShare {
				best, bestShare = anno, share
			}
		}
		if best == flow.AnnoBackground || bestShare < opts.UsefulPurity {
			continue
		}
		ts.CorrectItemsets++
		if e := int(best) - 1; e >= 0 && e < len(ts.Entries) && !ts.Entries[e].Attributed {
			ts.Entries[e].Attributed = true
			ts.Entries[e].Rank = rank + 1
		}
	}
	if ts.ReportedItemsets > 0 {
		ts.Precision = float64(ts.CorrectItemsets) / float64(ts.ReportedItemsets)
	}
	if len(ts.Entries) > 0 {
		attributed := 0
		for _, e := range ts.Entries {
			if e.Attributed {
				attributed++
			}
		}
		ts.Recall = float64(attributed) / float64(len(ts.Entries))
		ts.Rank = ts.Entries[0].Rank
	}
	return ts, nil
}
