package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	// Built-in detectors register themselves for detectAlarm's lookup.
	_ "repro/internal/histogram"
	"repro/internal/miner"
	_ "repro/internal/netreflex"
	"repro/internal/nfstore"
	"repro/internal/stats"
)

// ScenarioSpec is one suite scenario: its placements (the first placement
// is the primary anomaly the alarm points at), and whether extraction is
// expected to fail (stealthy anomalies and detector false positives — the
// paper's 6%).
type ScenarioSpec struct {
	Name       string
	Placements []gen.Placement
	// ExpectFail marks scenarios whose alarm should yield no useful
	// itemsets.
	ExpectFail bool
	// FalsePositive marks a detector false positive: an alarm on a quiet
	// bin with no injected anomaly at all.
	FalsePositive bool
	// Catalog, when non-empty, names a gen catalog entry: the scenario is
	// instantiated from the Def's own geometry, background and (for the
	// trace-* entries) replayed flow trace instead of Placements, so the
	// suite runs the exact scenarios operators get from flowgen.
	Catalog string
}

// CatalogSpecs returns one spec per registered gen catalog entry — the
// full scenario catalog, including the replayed-trace entries, as a
// suite. Quiet defs (ExpectFail without placements) become detector
// false positives.
func CatalogSpecs() []ScenarioSpec {
	var specs []ScenarioSpec
	for _, d := range gen.Catalog() {
		specs = append(specs, ScenarioSpec{
			Name:          d.Name,
			Catalog:       d.Name,
			ExpectFail:    d.ExpectFail,
			FalsePositive: d.ExpectFail && d.Place == nil,
		})
	}
	return specs
}

// SuiteConfig parameterizes a suite run.
type SuiteConfig struct {
	// WorkDir hosts the per-scenario stores; "" uses a temp directory
	// that is removed afterwards.
	WorkDir string
	// SeedBase seeds scenario generation (scenario i uses SeedBase+i).
	SeedBase uint64
	// SampleRate applies 1-in-N packet sampling (GEANT: 100; SWITCH: 1).
	SampleRate uint32
	// UseDetector runs the suite's detector for alarms, falling back to
	// synthesized ground-truth alarms for missed bins. When false, all
	// alarms are synthesized (the paper's evaluations also start from a
	// given alarm set, not from detector recall).
	UseDetector bool
	// Detector selects "netreflex" or "histogram" when UseDetector.
	Detector string
	// Bins / AnomalyBin override the scenario geometry (0 = defaults).
	Bins       int
	AnomalyBin int
	// Background overrides the default background model (nil = default).
	Background *gen.Background
	// Extraction overrides core.DefaultOptions (nil = default).
	Extraction *core.Options
	// Miner selects the frequent-itemset miner by registry name; it wins
	// over Extraction.Miner ("" keeps it).
	Miner string
}

// ScenarioEval is the outcome of one suite scenario.
type ScenarioEval struct {
	Index       int
	Name        string
	Kind        detector.Kind
	ExpectFail  bool
	AlarmSource string // "detector" or "synthesized"
	Score       AlarmScore
	// ItemsetCount is the number of reported itemsets.
	ItemsetCount int
	// Truth scores the ranked result against the generator's ground
	// truth (itemset precision, anomaly recall, true-cause rank); nil
	// for false-positive scenarios, which have no injected anomalies.
	Truth *TruthScore
}

// SuiteResult aggregates a suite run.
type SuiteResult struct {
	Name  string
	Evals []ScenarioEval
}

// Useful counts scenarios whose extraction produced useful itemsets.
func (s *SuiteResult) Useful() int {
	n := 0
	for _, e := range s.Evals {
		if e.Score.Useful {
			n++
		}
	}
	return n
}

// Additional counts scenarios where extraction evidenced flows beyond the
// alarm meta-data.
func (s *SuiteResult) Additional() int {
	n := 0
	for _, e := range s.Evals {
		if e.Score.Additional {
			n++
		}
	}
	return n
}

// UsefulFraction returns Useful()/len.
func (s *SuiteResult) UsefulFraction() float64 {
	if len(s.Evals) == 0 {
		return 0
	}
	return float64(s.Useful()) / float64(len(s.Evals))
}

// AdditionalFraction returns Additional()/Useful() — the paper reports the
// 28% relative to the alarms with useful itemsets.
func (s *SuiteResult) AdditionalFraction() float64 {
	u := s.Useful()
	if u == 0 {
		return 0
	}
	return float64(s.Additional()) / float64(u)
}

// GEANTSpecs returns the 40-scenario suite mirroring the GEANT evaluation:
// the anomaly-class mix reported for the network (scans, SYN DDoS and the
// frequent point-to-point UDP floods), ten scenarios with a co-occurring
// secondary anomaly on the same target (the paper's Table 1 situation,
// feeding the 26-28% additional-evidence statistic), one stealthy anomaly
// and one detector false positive (the 6% failures).
func GEANTSpecs(seed uint64) []ScenarioSpec {
	rng := stats.NewRNG(seed)
	var specs []ScenarioSpec
	victim := func(i int) flow.IP { return flow.IPFromOctets(198, 19, byte(i), byte(rng.Intn(250))) }
	scanner := func(i int) flow.IP { return flow.IPFromOctets(10, 200, byte(i), byte(rng.Intn(250))) }

	// 11 port scans; the first 3 carry a second scanner, the next 2 a
	// co-occurring DDoS (Table 1's exact situation).
	for i := 0; i < 11; i++ {
		v := victim(i)
		sp := uint16(50000 + rng.Intn(10000))
		primary := gen.PortScan{
			Scanner: scanner(i), Victim: v, SrcPort: sp,
			Ports: 8000 + rng.Intn(4000), FlowsPerPort: 3, Router: uint16(rng.Intn(3)),
		}
		spec := ScenarioSpec{Name: fmt.Sprintf("port-scan-%d", i),
			Placements: []gen.Placement{{Anomaly: primary, Bin: 3}}}
		switch {
		case i < 3:
			spec.Placements = append(spec.Placements, gen.Placement{Anomaly: gen.PortScan{
				Scanner: scanner(100 + i), Victim: v, SrcPort: sp,
				Ports: 7000 + rng.Intn(3000), FlowsPerPort: 3, Router: uint16(rng.Intn(3)),
			}, Bin: 3})
		case i < 5:
			spec.Placements = append(spec.Placements, gen.Placement{Anomaly: gen.SYNFlood{
				Victim: v, DstPort: 80, Sources: 3000, FlowsPerSource: 4,
				SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: uint16(rng.Intn(3)),
			}, Bin: 3})
		}
		specs = append(specs, spec)
	}

	// 7 network scans; the first has a second scanner on the same port.
	for i := 0; i < 7; i++ {
		port := []uint16{445, 22, 3389, 23, 1433, 5900, 8080}[i]
		primary := gen.NetworkScan{
			Scanner: scanner(20 + i), Prefix: flow.MustParsePrefix("198.19.64.0/18"),
			Hosts: 8000 + rng.Intn(4000), DstPort: port, Router: uint16(rng.Intn(3)),
		}
		spec := ScenarioSpec{Name: fmt.Sprintf("net-scan-%d", i),
			Placements: []gen.Placement{{Anomaly: primary, Bin: 3}}}
		if i == 0 {
			spec.Placements = append(spec.Placements, gen.Placement{Anomaly: gen.NetworkScan{
				Scanner: scanner(120), Prefix: flow.MustParsePrefix("198.19.128.0/18"),
				Hosts: 6000, DstPort: port, Router: uint16(rng.Intn(3)),
			}, Bin: 3})
		}
		specs = append(specs, spec)
	}

	// 9 SYN-flood DDoS; the first 3 carry a second DDoS on another port of
	// the same victim.
	for i := 0; i < 9; i++ {
		v := victim(40 + i)
		primary := gen.SYNFlood{
			Victim: v, DstPort: 80, Sources: 4000 + rng.Intn(2000), FlowsPerSource: 4,
			SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: uint16(rng.Intn(3)),
		}
		spec := ScenarioSpec{Name: fmt.Sprintf("ddos-%d", i),
			Placements: []gen.Placement{{Anomaly: primary, Bin: 3}}}
		if i < 3 {
			spec.Placements = append(spec.Placements, gen.Placement{Anomaly: gen.SYNFlood{
				Victim: v, DstPort: 443, Sources: 3000, FlowsPerSource: 4,
				SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: uint16(rng.Intn(3)),
			}, Bin: 3})
		}
		specs = append(specs, spec)
	}

	// 9 point-to-point UDP floods; the first carries a second flood source
	// against the same target.
	for i := 0; i < 9; i++ {
		dst := victim(60 + i)
		primary := gen.UDPFlood{
			Src: scanner(60 + i), Dst: dst, DstPort: uint16(1024 + rng.Intn(60000)),
			Flows: 2 + rng.Intn(6), PacketsPerFlow: uint64(1_000_000 + rng.Intn(4_000_000)),
			Router: uint16(rng.Intn(3)),
		}
		spec := ScenarioSpec{Name: fmt.Sprintf("udp-flood-%d", i),
			Placements: []gen.Placement{{Anomaly: primary, Bin: 3}}}
		if i == 0 {
			spec.Placements = append(spec.Placements, gen.Placement{Anomaly: gen.UDPFlood{
				Src: scanner(160), Dst: dst, DstPort: primary.DstPort,
				Flows: 3, PacketsPerFlow: 2_000_000, Router: uint16(rng.Intn(3)),
			}, Bin: 3})
		}
		specs = append(specs, spec)
	}

	// 2 flash events (legitimate surges NetReflex still flags; extraction
	// summarizes them cleanly, so they count as useful).
	for i := 0; i < 2; i++ {
		specs = append(specs, ScenarioSpec{Name: fmt.Sprintf("flash-%d", i),
			Placements: []gen.Placement{{Anomaly: gen.FlashCrowd{
				Server: victim(80 + i), Port: 80, Clients: 3000, FlowsPerClient: 4,
				Router: uint16(rng.Intn(3)),
			}, Bin: 3}}})
	}

	// 1 stealthy anomaly: too few flows to mine (paper: "stealthy anomaly
	// not captured by our extraction technique").
	specs = append(specs, ScenarioSpec{Name: "stealthy", ExpectFail: true,
		Placements: []gen.Placement{{Anomaly: gen.Stealthy{
			Scanner: scanner(90), Victim: victim(90), Flows: 25, Router: 0,
		}, Bin: 3}}})

	// 1 detector false positive: an alarm with nothing behind it.
	specs = append(specs, ScenarioSpec{Name: "false-positive", ExpectFail: true, FalsePositive: true})

	return specs
}

// SWITCHSpecs returns the 31-scenario suite mirroring the SWITCH/IMC'09
// evaluation: unsampled traces, anomaly classes dominated by scans and
// floods, no stealthy cases (the IMC'09 labeled set was extractable in
// all 31 cases).
func SWITCHSpecs(seed uint64) []ScenarioSpec {
	rng := stats.NewRNG(seed)
	var specs []ScenarioSpec
	victim := func(i int) flow.IP { return flow.IPFromOctets(198, 19, byte(i), byte(rng.Intn(250))) }
	scanner := func(i int) flow.IP { return flow.IPFromOctets(10, 210, byte(i), byte(rng.Intn(250))) }

	for i := 0; i < 12; i++ {
		specs = append(specs, ScenarioSpec{Name: fmt.Sprintf("port-scan-%d", i),
			Placements: []gen.Placement{{Anomaly: gen.PortScan{
				Scanner: scanner(i), Victim: victim(i), SrcPort: uint16(40000 + rng.Intn(20000)),
				Ports: 1500 + rng.Intn(2500), FlowsPerPort: 1, Router: uint16(rng.Intn(2)),
			}, Bin: 14}}})
	}
	for i := 0; i < 8; i++ {
		specs = append(specs, ScenarioSpec{Name: fmt.Sprintf("net-scan-%d", i),
			Placements: []gen.Placement{{Anomaly: gen.NetworkScan{
				Scanner: scanner(20 + i), Prefix: flow.MustParsePrefix("198.19.64.0/18"),
				Hosts: 1500 + rng.Intn(2500), DstPort: []uint16{445, 22, 135, 23, 1433, 3389, 5900, 8080}[i],
				Router: uint16(rng.Intn(2)),
			}, Bin: 14}}})
	}
	for i := 0; i < 6; i++ {
		specs = append(specs, ScenarioSpec{Name: fmt.Sprintf("ddos-%d", i),
			Placements: []gen.Placement{{Anomaly: gen.SYNFlood{
				Victim: victim(40 + i), DstPort: 80, Sources: 600 + rng.Intn(600), FlowsPerSource: 3,
				SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: uint16(rng.Intn(2)),
			}, Bin: 14}}})
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, ScenarioSpec{Name: fmt.Sprintf("dos-%d", i),
			Placements: []gen.Placement{{Anomaly: gen.SYNFlood{
				Victim: victim(50 + i), DstPort: 80, Sources: 1, FlowsPerSource: 3000,
				SourceNet: flow.MustParsePrefix("172.20.0.0/16"), Router: uint16(rng.Intn(2)),
			}, Bin: 14}}})
	}
	for i := 0; i < 2; i++ {
		specs = append(specs, ScenarioSpec{Name: fmt.Sprintf("udp-flood-%d", i),
			Placements: []gen.Placement{{Anomaly: gen.UDPFlood{
				Src: scanner(60 + i), Dst: victim(60 + i), DstPort: uint16(1024 + rng.Intn(60000)),
				Flows: 3 + rng.Intn(4), PacketsPerFlow: 2_000_000, Router: uint16(rng.Intn(2)),
			}, Bin: 14}}})
	}
	return specs
}

// RunSuite evaluates every scenario of a suite and aggregates the result.
func RunSuite(name string, specs []ScenarioSpec, cfg SuiteConfig) (*SuiteResult, error) {
	workDir := cfg.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "eval-suite-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}
	bins := cfg.Bins
	if bins <= 0 {
		bins = 6
		if cfg.UseDetector {
			bins = 18
		}
	}
	anomalyBin := cfg.AnomalyBin
	if anomalyBin <= 0 || anomalyBin >= bins {
		anomalyBin = bins - 3
	}
	background := gen.DefaultBackground()
	background.NumPoPs = 3
	background.FlowsPerBin = 300
	if cfg.Background != nil {
		background = *cfg.Background
	}
	exOpts := core.DefaultOptions()
	if cfg.Extraction != nil {
		exOpts = *cfg.Extraction
	}
	if cfg.Miner != "" {
		exOpts.Miner = cfg.Miner
	}

	result := &SuiteResult{Name: name}
	for i, spec := range specs {
		eval, err := runScenario(i, spec, cfg, workDir, bins, anomalyBin, background, exOpts)
		if err != nil {
			return nil, fmt.Errorf("eval: scenario %d (%s): %w", i, spec.Name, err)
		}
		result.Evals = append(result.Evals, *eval)
	}
	return result, nil
}

// MinerRun is one miner's outcome of a head-to-head suite comparison.
type MinerRun struct {
	Miner  string
	Result *SuiteResult
}

// RunMinerComparison runs the same suite once per miner (defaulting to
// every registered miner) with identical scenario seeds, so the runs are
// directly comparable row by row: registered miners are pinned to
// identical canonical mining results, so per-scenario usefulness and
// itemset counts must agree — the eval-level cross-check of the
// miner-registry property tests, and the harness for timing miners
// head-to-head on realistic extraction workloads.
func RunMinerComparison(name string, specs []ScenarioSpec, cfg SuiteConfig, miners []string) ([]MinerRun, error) {
	if len(miners) == 0 {
		miners = miner.Names()
	}
	runs := make([]MinerRun, 0, len(miners))
	for _, m := range miners {
		mcfg := cfg
		mcfg.Miner = m
		if cfg.WorkDir != "" {
			// Per-miner store directories: scenario stores must not collide
			// across runs.
			mcfg.WorkDir = filepath.Join(cfg.WorkDir, m)
		}
		res, err := RunSuite(fmt.Sprintf("%s[%s]", name, m), specs, mcfg)
		if err != nil {
			return nil, fmt.Errorf("eval: miner %s: %w", m, err)
		}
		runs = append(runs, MinerRun{Miner: m, Result: res})
	}
	return runs, nil
}

// runScenario generates, detects (optionally), extracts and scores one
// scenario.
func runScenario(i int, spec ScenarioSpec, cfg SuiteConfig, workDir string, bins, anomalyBin int, background gen.Background, exOpts core.Options) (*ScenarioEval, error) {
	dir := filepath.Join(workDir, fmt.Sprintf("scenario-%03d", i))
	store, err := nfstore.Create(dir, nfstore.DefaultBinSeconds)
	if err != nil {
		return nil, err
	}
	defer store.Close()

	seed := cfg.SeedBase + uint64(i)*7919
	var scenario *gen.Scenario
	if spec.Catalog != "" {
		def, ok := gen.Lookup(spec.Catalog)
		if !ok {
			return nil, fmt.Errorf("eval: unknown catalog scenario %q", spec.Catalog)
		}
		scenario = def.Scenario(seed)
		scenario.SampleRate = cfg.SampleRate
		bins = scenario.Bins
		anomalyBin = bins / 2
		if len(scenario.Placements) > 0 {
			anomalyBin = scenario.Placements[0].Bin
		}
	} else {
		placements := make([]gen.Placement, len(spec.Placements))
		for j, p := range spec.Placements {
			placements[j] = gen.Placement{Anomaly: p.Anomaly, Bin: anomalyBin}
		}
		scenario = &gen.Scenario{
			Background: background,
			Bins:       bins,
			StartTime:  1_300_000_200,
			Seed:       seed,
			SampleRate: cfg.SampleRate,
			Placements: placements,
		}
	}
	truth, err := scenario.Generate(store)
	if err != nil {
		return nil, err
	}

	// Alarm sourcing.
	alarmBin := flow.Interval{
		Start: truth.Span.Start + uint32(anomalyBin)*store.BinSeconds(),
		End:   truth.Span.Start + uint32(anomalyBin+1)*store.BinSeconds(),
	}
	if len(truth.Entries) > 0 {
		alarmBin = truth.Entries[0].Interval
	}
	var alarm detector.Alarm
	source := "synthesized"
	if spec.FalsePositive {
		// A detector false positive: plausible-looking meta on a quiet bin.
		alarm = detector.Alarm{
			Detector: "netreflex", Interval: alarmBin, Kind: detector.KindDDoS, Score: 1.1,
			Meta: []detector.MetaItem{
				{Feature: flow.FeatDstIP, Value: uint32(flow.IPFromOctets(198, 18, 0, 0))},
				{Feature: flow.FeatDstPort, Value: 80},
			},
		}
	} else {
		if cfg.UseDetector {
			if a, ok, err := detectAlarm(cfg.Detector, store, truth.Span, alarmBin); err != nil {
				return nil, err
			} else if ok {
				alarm = a
				source = "detector"
			}
		}
		if source == "synthesized" {
			alarm = SynthesizeAlarm(truth.Entry(1))
		}
	}

	ex, err := core.New(store, exOpts)
	if err != nil {
		return nil, err
	}
	var score *AlarmScore
	res, err := ex.Extract(context.Background(), &alarm)
	switch {
	case err == core.ErrNoCandidates:
		score = &AlarmScore{}
		res = nil
	case err != nil:
		return nil, err
	default:
		score, err = ScoreResult(store, &alarm, res, DefaultScoreOptions())
		if err != nil {
			return nil, err
		}
	}
	var truthScore *TruthScore
	if len(truth.Entries) > 0 {
		truthScore, err = ScoreTruth(store, alarm.Interval, res, truth, DefaultScoreOptions())
		if err != nil {
			return nil, err
		}
	}
	itemsets := 0
	if res != nil {
		itemsets = len(res.Itemsets)
	}
	kind := detector.KindUnknown
	if len(scenario.Placements) > 0 {
		kind = scenario.Placements[0].Anomaly.Kind()
	}
	return &ScenarioEval{
		Index: i, Name: spec.Name, Kind: kind,
		ExpectFail: spec.ExpectFail, AlarmSource: source,
		Score: *score, ItemsetCount: itemsets, Truth: truthScore,
	}, nil
}

// detectAlarm runs the named detector (from the registry, with default
// configuration; "" selects netreflex) and returns the alarm overlapping
// the anomaly bin, if any.
func detectAlarm(name string, store nfstore.Engine, span, alarmBin flow.Interval) (detector.Alarm, bool, error) {
	if name == "" {
		name = "netreflex"
	}
	det, err := detector.New(name, nil)
	if err != nil {
		return detector.Alarm{}, false, err
	}
	alarms, err := det.Detect(context.Background(), store, span)
	if err != nil {
		return detector.Alarm{}, false, err
	}
	for _, a := range alarms {
		if a.Interval.Overlaps(alarmBin) {
			return a, true, nil
		}
	}
	return detector.Alarm{}, false, nil
}
