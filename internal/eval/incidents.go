package eval

import (
	"context"
	"fmt"
	"time"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/gen"
)

// stormJitters are the per-duplicate start offsets of the synthesized
// alarm storm, all within half a dedup window so the copies share one
// dedup bucket (catalog scenarios start bin-aligned).
var stormJitters = [...]uint32{0, 40, 80, 120}

// IncidentScore is the incident-mode outcome of one scenario: the
// synthesized alarm storm, its correlation, and the joint ground-truth
// score of the per-incident extractions.
type IncidentScore struct {
	Scenario   string `json:"scenario"`
	Composite  bool   `json:"composite,omitempty"`
	ExpectFail bool   `json:"expect_fail,omitempty"`
	// AlarmsIn is the synthesized storm size; AlarmsKept the dedup
	// survivors; Incidents the correlated event count. Reduction is
	// AlarmsIn/Incidents — the volume collapse the layer exists for.
	AlarmsIn   int     `json:"alarms_in"`
	AlarmsKept int     `json:"alarms_kept"`
	Incidents  int     `json:"incidents"`
	Reduction  float64 `json:"reduction,omitempty"`
	// Jobs counts extraction jobs submitted — exactly one per incident.
	Jobs int `json:"jobs"`
	// Precision/Recall/WorstRank score ALL per-incident extractions
	// jointly against ALL truth entries: recall 1 means every injected
	// anomaly was attributed by some incident's extraction, WorstRank is
	// the deepest rank any attributed cause needed (0 = some cause
	// missed).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	WorstRank int     `json:"worst_rank"`
	// ChainOK reports (composite scenarios only) that one incident
	// covered every phase and its lead-lag chain ordered the first truth
	// entry's kind before the second's.
	ChainOK bool `json:"chain_ok,omitempty"`
	// Pass is the verdict: expect-fail scenarios must attribute nothing;
	// composites must recover every cause top-3 from one incident with
	// the chain in order; single-anomaly scenarios must attribute their
	// cause.
	Pass   bool    `json:"pass"`
	WallMS float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// runScenarioIncidents evaluates the incident layer for one scenario: a
// deterministic alarm storm (every registered detector re-reporting
// every truth entry stormJitters times) is correlated and each incident
// extracted through one job, then the combined ranked lists are scored
// jointly against the full ground truth.
func runScenarioIncidents(def gen.Def, sys *rootcause.System, truth *gen.Truth) IncidentScore {
	t0 := time.Now()
	ctx := context.Background()
	score := IncidentScore{Scenario: def.Name, Composite: truth.Composite, ExpectFail: def.ExpectFail}
	fail := func(err error) IncidentScore {
		score.Error = err.Error()
		score.WallMS = float64(time.Since(t0).Microseconds()) / 1000
		return score
	}

	// Synthesize the storm.
	detectors := detector.Names()
	for i := range truth.Entries {
		base := SynthesizeAlarm(&truth.Entries[i])
		for _, det := range detectors {
			for _, jitter := range stormJitters {
				a := base
				a.Detector = det
				a.Interval.Start += jitter
				sys.FileAlarm(a)
				score.AlarmsIn++
			}
		}
	}

	sum, err := sys.Correlate(ctx, truth.Span)
	if err != nil {
		return fail(err)
	}
	score.AlarmsKept = sum.AlarmsKept
	score.Incidents = len(sum.IncidentIDs)
	if score.Incidents > 0 {
		score.Reduction = float64(score.AlarmsIn) / float64(score.Incidents)
	}

	// One extraction job per incident, via the job manager.
	attributed := make([]int, len(truth.Entries)) // best rank per entry, 0 = missed
	var reported, correct int
	chainOK := false
	for _, id := range sum.IncidentIDs {
		entry, err := sys.Incident(id)
		if err != nil {
			return fail(err)
		}
		jobID, err := sys.Submit(rootcause.JobRequest{IncidentID: id}, rootcause.WithTransientJob())
		if err != nil {
			return fail(err)
		}
		score.Jobs++
		jr, err := sys.Wait(ctx, jobID)
		if err != nil {
			return fail(err)
		}
		ts, err := ScoreTruth(sys.Store(), entry.Incident.Interval, jr.Result, truth, DefaultScoreOptions())
		if err != nil {
			return fail(err)
		}
		reported += ts.ReportedItemsets
		correct += ts.CorrectItemsets
		for i, e := range ts.Entries {
			if e.Attributed && (attributed[i] == 0 || e.Rank < attributed[i]) {
				attributed[i] = e.Rank
			}
		}
		if truth.Composite && len(truth.Entries) >= 2 &&
			entry.Incident.Leads(truth.Entries[0].Kind, truth.Entries[1].Kind) {
			chainOK = true
		}
	}

	// Joint score over all incidents.
	if reported > 0 {
		score.Precision = float64(correct) / float64(reported)
	}
	recovered := 0
	for _, rank := range attributed {
		if rank > 0 {
			recovered++
			if rank > score.WorstRank {
				score.WorstRank = rank
			}
		}
	}
	if recovered < len(truth.Entries) {
		score.WorstRank = 0 // some cause was missed entirely
	}
	if len(truth.Entries) > 0 {
		score.Recall = float64(recovered) / float64(len(truth.Entries))
	}
	score.ChainOK = chainOK

	switch {
	case def.ExpectFail:
		// A stealthy or quiet scenario must not produce attributed causes.
		score.Pass = correct == 0
	case truth.Composite:
		// The composite event: one incident, every cause in the top 3,
		// phases ordered by the chain.
		score.Pass = score.Incidents == 1 && score.Recall == 1 &&
			score.WorstRank >= 1 && score.WorstRank <= 3 && chainOK
	default:
		score.Pass = score.Recall == 1 && score.WorstRank >= 1
	}
	score.WallMS = float64(time.Since(t0).Microseconds()) / 1000
	return score
}

// incidentTotalsLine summarizes the incident column for the Markdown
// report header.
func incidentTotalsLine(scores []IncidentScore) string {
	if len(scores) == 0 {
		return ""
	}
	pass, alarms, incidents := 0, 0, 0
	for _, s := range scores {
		if s.Pass {
			pass++
		}
		alarms += s.AlarmsIn
		incidents += s.Incidents
	}
	red := 0.0
	if incidents > 0 {
		red = float64(alarms) / float64(incidents)
	}
	return fmt.Sprintf("%d/%d scenarios pass · %d alarms → %d incidents (%.1fx reduction)",
		pass, len(scores), alarms, incidents, red)
}
