package eval

import (
	"context"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
)

// ScoreOptions tunes the scoring of one extraction result.
type ScoreOptions struct {
	// UsefulPurity is the minimum anomalous fraction (in flows or in
	// packets) of an itemset's matched traffic for the itemset to count
	// as useful evidence.
	UsefulPurity float64
	// AdditionalFraction is the minimum fraction of a useful itemset's
	// anomalous flows that must fall OUTSIDE the alarm's meta-data filter
	// for the itemset to count as additional evidence the detector did
	// not provide.
	AdditionalFraction float64
}

// DefaultScoreOptions returns the scoring used by EXPERIMENTS.md.
func DefaultScoreOptions() ScoreOptions {
	return ScoreOptions{UsefulPurity: 0.8, AdditionalFraction: 0.5}
}

// ItemsetScore is the ground-truth evaluation of one reported itemset.
type ItemsetScore struct {
	Report core.ItemsetReport
	// Matched/Anomalous count flows (and packets) the itemset's filter
	// matches inside the alarm interval.
	MatchedFlows  uint64
	AnomalousFlws uint64
	MatchedPkts   uint64
	AnomalousPkts uint64
	// FlowPurity/PktPurity are the anomalous fractions.
	FlowPurity float64
	PktPurity  float64
	// Useful reports whether either purity clears the threshold.
	Useful bool
	// Additional reports whether this useful itemset mostly evidences
	// flows the alarm meta-data did not cover.
	Additional bool
}

// AlarmScore is the ground-truth evaluation of one alarm's extraction.
type AlarmScore struct {
	// Useful: at least one reported itemset is useful evidence.
	Useful bool
	// Additional: at least one useful itemset evidences flows beyond the
	// detector's meta-data (the paper's 26-28% statistic).
	Additional bool
	// FlowRecall / PktRecall: fraction of the interval's anomalous
	// traffic covered by the union of useful itemsets.
	FlowRecall float64
	PktRecall  float64
	Itemsets   []ItemsetScore
}

// ScoreResult evaluates an extraction result against the annotations
// stored in the trace.
func ScoreResult(store nfstore.Engine, alarm *detector.Alarm, res *core.Result, opts ScoreOptions) (*AlarmScore, error) {
	if opts.UsefulPurity <= 0 {
		opts.UsefulPurity = 0.8
	}
	if opts.AdditionalFraction <= 0 {
		opts.AdditionalFraction = 0.5
	}
	score := &AlarmScore{}
	// The meta signature (conjunction) is what the detector actually
	// reported; anomalous flows outside it are "flows not provided by the
	// anomaly detector" (the paper's additional-evidence statistic).
	metaSig := alarm.MetaSignature()

	// Total anomalous traffic in the interval (recall denominator).
	var totalAnoFlows, totalAnoPkts uint64
	err := store.Query(context.Background(), alarm.Interval, nil, func(r *flow.Record) error {
		if r.IsAnomalous() {
			totalAnoFlows++
			totalAnoPkts += r.Packets
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Per-itemset matching; union coverage for recall.
	usefulFilters := make([]*core.ItemsetReport, 0, len(res.Itemsets))
	for i := range res.Itemsets {
		rep := res.Itemsets[i]
		is := ItemsetScore{Report: rep}
		filter := rep.Filter()
		var outsideMetaAno uint64
		err := store.Query(context.Background(), alarm.Interval, filter, func(r *flow.Record) error {
			is.MatchedFlows++
			is.MatchedPkts += r.Packets
			if r.IsAnomalous() {
				is.AnomalousFlws++
				is.AnomalousPkts += r.Packets
				if metaSig != nil && !metaSig.Match(r) {
					outsideMetaAno++
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if is.MatchedFlows > 0 {
			is.FlowPurity = float64(is.AnomalousFlws) / float64(is.MatchedFlows)
		}
		if is.MatchedPkts > 0 {
			is.PktPurity = float64(is.AnomalousPkts) / float64(is.MatchedPkts)
		}
		is.Useful = is.FlowPurity >= opts.UsefulPurity || is.PktPurity >= opts.UsefulPurity
		if is.Useful {
			score.Useful = true
			usefulFilters = append(usefulFilters, &res.Itemsets[i])
			if is.AnomalousFlws > 0 && metaSig != nil &&
				float64(outsideMetaAno) >= opts.AdditionalFraction*float64(is.AnomalousFlws) {
				is.Additional = true
				score.Additional = true
			}
		}
		score.Itemsets = append(score.Itemsets, is)
	}

	// Recall: anomalous traffic covered by the union of useful itemsets.
	if totalAnoFlows > 0 && len(usefulFilters) > 0 {
		var covFlows, covPkts uint64
		err := store.Query(context.Background(), alarm.Interval, nil, func(r *flow.Record) error {
			if !r.IsAnomalous() {
				return nil
			}
			for _, rep := range usefulFilters {
				if rep.Filter().Match(r) {
					covFlows++
					covPkts += r.Packets
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		score.FlowRecall = float64(covFlows) / float64(totalAnoFlows)
		if totalAnoPkts > 0 {
			score.PktRecall = float64(covPkts) / float64(totalAnoPkts)
		}
	}
	return score, nil
}

// SynthesizeAlarm builds the NetReflex-style narrow alarm for a placed
// anomaly directly from ground truth: the anomaly's interval plus the
// fine-grained meta-data of its root-cause signature (Anomaly.Signature).
// Suites use it when the detector under test did not flag the anomaly's
// bin, so that every scenario still contributes one alarm — the paper's
// evaluations also start from a fixed set of alarms, not from detector
// recall.
func SynthesizeAlarm(entry *gen.TruthEntry) detector.Alarm {
	a := detector.Alarm{
		Detector: "synthesized",
		Interval: entry.Interval,
		Kind:     entry.Kind,
		Score:    1,
	}
	for _, it := range entry.Signature {
		a.Meta = append(a.Meta, detector.MetaItem{Feature: it.Feature, Value: it.Value})
	}
	return a
}
