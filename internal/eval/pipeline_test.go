package eval

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/gen"
)

// TestMatrixAprioriFloors pins precision/recall floors for the built-in
// apriori path over the whole scenario catalog with synthesized
// ground-truth alarms: every non-expect-fail scenario must extract a
// useful, truth-attributed itemset list, the true cause must rank in the
// top 3, and the aggregate precision/recall must hold their floors. This
// is the quality trajectory BENCH_eval.json tracks across PRs.
func TestMatrixAprioriFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	report, err := RunMatrix(PipelineConfig{
		Detectors: []string{SynthesizedSource},
		Miners:    []string{"apriori"},
		Seed:      7,
		WorkDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Scenarios) != len(gen.Names()) {
		t.Fatalf("matrix covered %d scenarios, want the whole catalog (%d)",
			len(report.Scenarios), len(gen.Names()))
	}
	for _, c := range report.Combos {
		t.Logf("%-18s useful=%-5v itemsets=%-3d precision=%.2f recall=%.2f rank=%d pass=%v err=%q",
			c.Scenario, c.Useful, c.Itemsets, c.Precision, c.Recall, c.RankOfTrueCause, c.Pass, c.Error)
		if c.Error != "" {
			t.Errorf("%s: extraction error: %s", c.Scenario, c.Error)
			continue
		}
		if c.ExpectFail {
			if c.Useful {
				t.Errorf("%s: expect-fail scenario produced useful itemsets", c.Scenario)
			}
			continue
		}
		if !c.Pass {
			t.Errorf("%s: did not pass (useful=%v rank=%d)", c.Scenario, c.Useful, c.RankOfTrueCause)
		}
		if c.RankOfTrueCause < 1 || c.RankOfTrueCause > 3 {
			t.Errorf("%s: true cause ranked %d, want top 3", c.Scenario, c.RankOfTrueCause)
		}
		// The self-tuning engine deliberately reports a minimum-length
		// ranked list, so single-anomaly scenarios carry background tail
		// itemsets: the per-scenario floor is low, the aggregate floors
		// below carry the trajectory.
		if c.Precision < 0.3 {
			t.Errorf("%s: precision %.2f below per-scenario floor 0.3", c.Scenario, c.Precision)
		}
	}
	if report.Totals.MeanPrecision < 0.8 {
		t.Errorf("mean precision %.3f below floor 0.8", report.Totals.MeanPrecision)
	}
	if report.Totals.MeanRecall < 0.9 {
		t.Errorf("mean recall %.3f below floor 0.9", report.Totals.MeanRecall)
	}
	if report.Totals.MeanReciprocalRank < 0.9 {
		t.Errorf("MRR %.3f below floor 0.9", report.Totals.MeanReciprocalRank)
	}
}

// TestMatrixJobPathParity pins the job-manager extraction path to the
// synchronous path: same scenario, same seed, same scores.
func TestMatrixJobPathParity(t *testing.T) {
	base := PipelineConfig{
		Scenarios: []string{"dns-amplification", "link-outage"},
		Detectors: []string{SynthesizedSource},
		Miners:    []string{"apriori"},
		Seed:      11,
	}
	sync := base
	sync.WorkDir = t.TempDir()
	async := base
	async.WorkDir = t.TempDir()
	async.UseJobs = true

	syncRep, err := RunMatrix(sync)
	if err != nil {
		t.Fatal(err)
	}
	asyncRep, err := RunMatrix(async)
	if err != nil {
		t.Fatal(err)
	}
	if len(syncRep.Combos) != len(asyncRep.Combos) {
		t.Fatalf("cell counts differ: %d vs %d", len(syncRep.Combos), len(asyncRep.Combos))
	}
	for i := range syncRep.Combos {
		s, a := syncRep.Combos[i], asyncRep.Combos[i]
		s.WallMS, a.WallMS = 0, 0
		if s != a {
			t.Errorf("cell %d differs between sync and job path:\nsync:  %+v\njobs:  %+v", i, s, a)
		}
	}
}

// TestMatrixDeterminism pins the determinism contract: two runs with the
// same config produce identical reports (modulo wall-clock), for every
// ranking mode — the ranking score must not introduce map-order or
// float-tie nondeterminism.
func TestMatrixDeterminism(t *testing.T) {
	for _, ranking := range []string{"", "lift", "weighted"} {
		cfg := PipelineConfig{
			Scenarios: []string{"icmp-flood", "spam-campaign"},
			Detectors: []string{SynthesizedSource},
			Miners:    nil, // every registered miner
			Seed:      3,
			Ranking:   ranking,
		}
		run := func(dir string) string {
			c := cfg
			c.WorkDir = dir
			rep, err := RunMatrix(c)
			if err != nil {
				t.Fatal(err)
			}
			rep.WallMS = 0
			rep.Totals.WallMS = 0
			for i := range rep.PerMiner {
				rep.PerMiner[i].WallMS = 0
			}
			for i := range rep.Combos {
				rep.Combos[i].WallMS = 0
			}
			buf, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			return string(buf)
		}
		a, b := run(t.TempDir()), run(t.TempDir())
		if a != b {
			t.Errorf("ranking %q: matrix runs differ:\n%s\n%s", ranking, a, b)
		}
	}
}

// TestMatrixUnknownScenario pins the error path: unknown names must list
// the catalog instead of failing deep in generation.
func TestMatrixUnknownScenario(t *testing.T) {
	_, err := RunMatrix(PipelineConfig{Scenarios: []string{"no-such"}, WorkDir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("want unknown-scenario error, got %v", err)
	}
}

// TestMatrixMarkdown sanity-checks the human-readable rendering.
func TestMatrixMarkdown(t *testing.T) {
	rep := &MatrixReport{
		Version: MatrixReportVersion, Seed: 1,
		Scenarios: []string{"portscan"}, Detectors: []string{SynthesizedSource},
		Miners: []string{"apriori"},
		Combos: []ComboScore{{
			Scenario: "portscan", Kind: "port scan", Detector: SynthesizedSource,
			AlarmSource: SynthesizedSource, Miner: "apriori", Itemsets: 2,
			Useful: true, Precision: 1, Recall: 1, RankOfTrueCause: 1, Pass: true,
		}},
		PerMiner: []MinerTotals{{Miner: "apriori"}},
	}
	md := rep.Markdown()
	for _, want := range []string{"# Evaluation matrix", "## Totals", "## Per miner", "| portscan |", "apriori"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
