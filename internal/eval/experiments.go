package eval

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/nfstore"
)

// Table1Scenario reproduces the exact situation behind the paper's
// Table 1: a port-scan alarm flagged by NetReflex naming only scanner A,
// while the same interval also carries a second scanner hitting the same
// target and two simultaneous TCP SYN DDoS against its port 80 (each from
// a scripted constant source port, 3072 and 1024, as in the paper's
// rows). Flow counts are sized to land on the paper's figures: 312.59K,
// 270.74K, 37.19K and 37.28K flows.
type Table1Scenario struct {
	ScannerA, ScannerB flow.IP
	Victim             flow.IP
	SrcPort            uint16
}

// DefaultTable1 returns the scenario with the paper's (anonymized)
// addresses mapped into documentation/benchmark ranges.
func DefaultTable1() Table1Scenario {
	return Table1Scenario{
		ScannerA: flow.MustParseIP("10.191.64.165"), // paper: X.191.64.165
		ScannerB: flow.MustParseIP("10.22.180.9"),
		Victim:   flow.MustParseIP("198.19.137.129"), // paper: Y.13.137.129
		SrcPort:  55548,
	}
}

// RunTable1 generates the Table 1 trace into dir, runs extraction with
// the NetReflex-style narrow alarm (scanner A only) and returns the
// result whose Table() reproduces the paper's Table 1.
func RunTable1(dir string, cfg Table1Scenario) (*core.Result, error) {
	store, err := nfstore.Create(dir, nfstore.DefaultBinSeconds)
	if err != nil {
		return nil, err
	}
	defer store.Close()

	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 3, FlowsPerBin: 400, Hosts: 2000, Servers: 300},
		Bins:       4,
		StartTime:  1_300_000_200,
		Seed:       1001,
		Placements: []gen.Placement{
			// 62518 ports × 5 probes = 312,590 flows (paper: 312.59K).
			{Anomaly: gen.PortScan{Scanner: cfg.ScannerA, Victim: cfg.Victim, SrcPort: cfg.SrcPort,
				Ports: 62518, FlowsPerPort: 5, Router: 1}, Bin: 2},
			// 54148 ports × 5 probes = 270,740 flows (paper: 270.74K).
			{Anomaly: gen.PortScan{Scanner: cfg.ScannerB, Victim: cfg.Victim, SrcPort: cfg.SrcPort,
				Ports: 54148, FlowsPerPort: 5, Router: 2}, Bin: 2},
			// 18595 sources × 2 flows = 37,190 flows (paper: 37.19K),
			// scripted source port 3072.
			{Anomaly: gen.SYNFlood{Victim: cfg.Victim, DstPort: 80, Sources: 18595, FlowsPerSource: 2,
				SrcPort: 3072, SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: 0}, Bin: 2},
			// 18640 sources × 2 flows = 37,280 flows (paper: 37.28K),
			// scripted source port 1024.
			{Anomaly: gen.SYNFlood{Victim: cfg.Victim, DstPort: 80, Sources: 18640, FlowsPerSource: 2,
				SrcPort: 1024, SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(store)
	if err != nil {
		return nil, err
	}

	// The NetReflex meta-data of the paper's example: scanner A's srcIP,
	// the victim's dstIP and srcPort 55548, dstPort wildcarded.
	alarm := detector.Alarm{
		Detector: "netreflex",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Score:    1,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(cfg.ScannerA)},
			{Feature: flow.FeatDstIP, Value: uint32(cfg.Victim)},
			{Feature: flow.FeatSrcPort, Value: uint32(cfg.SrcPort)},
		},
	}
	opts := core.DefaultOptions()
	// Operator-tuned parameters (the paper's GUI lets the analyst "tune
	// the extraction parameters if needed"): requiring at least four
	// itemsets drives the support below the two DDoS components' 37K
	// flows, splitting them into the paper's srcPort-pinned rows instead
	// of one merged (dstIP, dstPort 80) itemset.
	opts.MinItemsets = 4
	opts.MaxItemsets = 6
	ex, err := core.New(store, opts)
	if err != nil {
		return nil, err
	}
	return ex.Extract(context.Background(), &alarm)
}

// SweepRow is one row of the flow-vs-packet support sweep (E5).
type SweepRow struct {
	FloodFlows     int
	PacketsPerFlow uint64
	// FlowOnlyFound / DualFound report whether the flood's source address
	// appeared in any extracted itemset under flow-only and dual support.
	FlowOnlyFound bool
	DualFound     bool
}

// RunUDPFloodSweep runs experiment E5: a point-to-point UDP flood of
// varying flow count over a fixed background, extracted with classic
// flow-only Apriori and with the paper's dual-support extension.
func RunUDPFloodSweep(workDir string, floodFlows []int, packetsPerFlow uint64, seed uint64) ([]SweepRow, error) {
	if len(floodFlows) == 0 {
		floodFlows = []int{2, 4, 8, 16, 32, 64}
	}
	src := flow.MustParseIP("10.55.55.55")
	dst := flow.MustParseIP("198.19.0.77")
	var rows []SweepRow
	for i, nf := range floodFlows {
		dir := fmt.Sprintf("%s/sweep-%03d", workDir, i)
		store, err := nfstore.Create(dir, nfstore.DefaultBinSeconds)
		if err != nil {
			return nil, err
		}
		scenario := gen.Scenario{
			Background: gen.Background{NumPoPs: 2, FlowsPerBin: 400},
			Bins:       4, StartTime: 1_300_000_200, Seed: seed + uint64(i),
			Placements: []gen.Placement{
				{Anomaly: gen.UDPFlood{Src: src, Dst: dst, DstPort: 9999,
					Flows: nf, PacketsPerFlow: packetsPerFlow, Router: 1}, Bin: 2},
			},
		}
		truth, err := scenario.Generate(store)
		if err != nil {
			store.Close()
			return nil, err
		}
		alarm := &detector.Alarm{Interval: truth.Entries[0].Interval}

		row := SweepRow{FloodFlows: nf, PacketsPerFlow: packetsPerFlow}
		srcItem := itemset.NewItem(flow.FeatSrcIP, uint32(src))

		flowOnly := core.DefaultOptions()
		flowOnly.PacketCoverageMin = 0 // classic Apriori: no packet pass
		exFlow, err := core.New(store, flowOnly)
		if err != nil {
			store.Close()
			return nil, err
		}
		if res, err := exFlow.Extract(context.Background(), alarm); err == nil {
			row.FlowOnlyFound = containsItem(res, srcItem)
		} else if err != core.ErrNoCandidates {
			store.Close()
			return nil, err
		}

		exDual, err := core.New(store, core.DefaultOptions())
		if err != nil {
			store.Close()
			return nil, err
		}
		if res, err := exDual.Extract(context.Background(), alarm); err == nil {
			row.DualFound = containsItem(res, srcItem)
		} else if err != core.ErrNoCandidates {
			store.Close()
			return nil, err
		}
		store.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// containsItem reports whether any reported itemset contains the item.
func containsItem(res *core.Result, it itemset.Item) bool {
	for _, r := range res.Itemsets {
		if r.Items.Contains(it) {
			return true
		}
	}
	return false
}

// TuningRow is one row of the self-tuning ablation (E6).
type TuningRow struct {
	// Intensity scales the anomaly's flow count relative to the nominal
	// scenario.
	Intensity float64
	ScanFlows int
	// SelfTunedUseful / FixedUseful report extraction success with the
	// self-adjusting minimum support vs a single fixed threshold.
	SelfTunedUseful bool
	FixedUseful     bool
	// SelfTunedRounds is the number of halvings the tuner needed.
	SelfTunedRounds int
}

// RunTuningAblation runs experiment E6: the same port-scan anomaly at
// varying intensity, extracted once with the paper's self-adjusting
// support and once with the initial support held fixed.
func RunTuningAblation(workDir string, intensities []float64, seed uint64) ([]TuningRow, error) {
	if len(intensities) == 0 {
		intensities = []float64{0.02, 0.05, 0.1, 0.25, 1, 2}
	}
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.50")
	var rows []TuningRow
	for i, m := range intensities {
		ports := int(4000 * m)
		if ports < 10 {
			ports = 10
		}
		dir := fmt.Sprintf("%s/tuning-%03d", workDir, i)
		store, err := nfstore.Create(dir, nfstore.DefaultBinSeconds)
		if err != nil {
			return nil, err
		}
		scenario := gen.Scenario{
			Background: gen.Background{NumPoPs: 2, FlowsPerBin: 400},
			Bins:       4, StartTime: 1_300_000_200, Seed: seed + uint64(i),
			Placements: []gen.Placement{
				{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 44444,
					Ports: ports, FlowsPerPort: 1, Router: 0}, Bin: 2},
			},
		}
		truth, err := scenario.Generate(store)
		if err != nil {
			store.Close()
			return nil, err
		}
		alarm := &detector.Alarm{Interval: truth.Entries[0].Interval}
		row := TuningRow{Intensity: m, ScanFlows: ports}
		srcItem := itemset.NewItem(flow.FeatSrcIP, uint32(scanner))

		tuned := core.DefaultOptions()
		tuned.UsePrefilter = false
		exTuned, err := core.New(store, tuned)
		if err != nil {
			store.Close()
			return nil, err
		}
		if res, err := exTuned.Extract(context.Background(), alarm); err == nil {
			row.SelfTunedUseful = containsItem(res, srcItem)
			for _, tr := range res.Tuning {
				if tr.Rounds > row.SelfTunedRounds {
					row.SelfTunedRounds = tr.Rounds
				}
			}
		} else if err != core.ErrNoCandidates {
			store.Close()
			return nil, err
		}

		fixed := tuned
		fixed.MaxTuningRounds = 1 // no halving: the initial support is final
		exFixed, err := core.New(store, fixed)
		if err != nil {
			store.Close()
			return nil, err
		}
		if res, err := exFixed.Extract(context.Background(), alarm); err == nil {
			row.FixedUseful = containsItem(res, srcItem)
		} else if err != core.ErrNoCandidates {
			store.Close()
			return nil, err
		}
		store.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// TempWorkDir creates a disposable work directory for experiment runs,
// returning the path and a cleanup function.
func TempWorkDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "rcad-exp-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}
