package eval

import (
	"testing"
	"time"
)

// TestRunShardBench smoke-runs the shard benchmark on a small trace: the
// matched-flow parity assertions inside RunShardBench are the real
// check (a sharded scan that drops or duplicates rows fails the run);
// here we verify the row layout and that every mode produced data.
func TestRunShardBench(t *testing.T) {
	rows, err := RunShardBench(t.TempDir(), ScanBenchConfig{
		Records: 20_000, Bins: 4, MinTime: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]int{}
	shardCounts := map[int]bool{}
	for _, r := range rows {
		modes[r.Mode]++
		shardCounts[r.Shards] = true
		if r.Matched == 0 {
			t.Errorf("row %+v matched nothing", r)
		}
		if r.MrecPerS <= 0 {
			t.Errorf("row %+v has no throughput", r)
		}
		if r.Mode != "http" && r.ClusterMrecPerS <= 0 {
			t.Errorf("row %+v has no cluster throughput", r)
		}
	}
	// 2 workloads × 2 ops × (1 single + 4 shard counts + 1 http) = 24.
	if len(rows) != 24 {
		t.Fatalf("got %d rows, want 24", len(rows))
	}
	for _, m := range []string{"single", "sharded", "http"} {
		if modes[m] == 0 {
			t.Errorf("no %q rows", m)
		}
	}
	for _, n := range ShardBenchShardCounts {
		if !shardCounts[n] {
			t.Errorf("no rows at %d shards", n)
		}
	}
}
