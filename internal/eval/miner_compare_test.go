package eval

import (
	"testing"
)

// TestRunMinerComparison runs a small GEANT subset head-to-head through
// both built-in miners. Because registered miners are pinned to
// identical canonical mining output, the suites must agree scenario by
// scenario — usefulness, additional evidence, and itemset counts.
func TestRunMinerComparison(t *testing.T) {
	all := GEANTSpecs(3)
	// A scan, a scan with co-occurring DDoS, a DDoS and a UDP flood.
	subset := []ScenarioSpec{all[0], all[3], all[18], all[27]}
	runs, err := RunMinerComparison("geant-subset", subset, SuiteConfig{
		SeedBase: 901, SampleRate: 100, WorkDir: t.TempDir(),
	}, []string{"apriori", "fpgrowth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs, want 2", len(runs))
	}
	ap, fp := runs[0], runs[1]
	if ap.Miner != "apriori" || fp.Miner != "fpgrowth" {
		t.Fatalf("miners = %s, %s", ap.Miner, fp.Miner)
	}
	if ap.Result.Useful() == 0 {
		t.Fatal("no useful extractions in the comparison subset")
	}
	if len(ap.Result.Evals) != len(fp.Result.Evals) {
		t.Fatalf("eval counts differ: %d vs %d", len(ap.Result.Evals), len(fp.Result.Evals))
	}
	for i := range ap.Result.Evals {
		a, f := ap.Result.Evals[i], fp.Result.Evals[i]
		if a.Score.Useful != f.Score.Useful ||
			a.Score.Additional != f.Score.Additional ||
			a.ItemsetCount != f.ItemsetCount {
			t.Errorf("scenario %d (%s): apriori %+v vs fpgrowth %+v", i, a.Name, a.Score, f.Score)
		}
	}
}

// TestRunMinerComparisonDefaultsToRegistry: passing no miner list runs
// every registered miner.
func TestRunMinerComparisonDefaultsToRegistry(t *testing.T) {
	all := SWITCHSpecs(5)
	subset := []ScenarioSpec{all[0]}
	runs, err := RunMinerComparison("switch-one", subset, SuiteConfig{
		SeedBase: 905, SampleRate: 1, WorkDir: t.TempDir(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 2 {
		t.Fatalf("%d runs, want every registered miner (>= 2)", len(runs))
	}
	seen := map[string]bool{}
	for _, r := range runs {
		seen[r.Miner] = true
	}
	if !seen["apriori"] || !seen["fpgrowth"] {
		t.Fatalf("runs missing a built-in miner: %v", seen)
	}
}

// TestRunMinerComparisonUnknownMiner surfaces the registry error.
func TestRunMinerComparisonUnknownMiner(t *testing.T) {
	all := SWITCHSpecs(5)
	_, err := RunMinerComparison("bad", []ScenarioSpec{all[0]}, SuiteConfig{
		SeedBase: 906, SampleRate: 1, WorkDir: t.TempDir(),
	}, []string{"frobnicator"})
	if err == nil {
		t.Fatal("unknown miner must fail the comparison")
	}
}
