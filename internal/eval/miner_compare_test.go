package eval

import (
	"testing"
)

// TestRunMinerComparison runs a small GEANT subset head-to-head through
// both built-in miners. Because registered miners are pinned to
// identical canonical mining output, the suites must agree scenario by
// scenario — usefulness, additional evidence, and itemset counts.
func TestRunMinerComparison(t *testing.T) {
	all := GEANTSpecs(3)
	// A scan, a scan with co-occurring DDoS, a DDoS and a UDP flood.
	subset := []ScenarioSpec{all[0], all[3], all[18], all[27]}
	runs, err := RunMinerComparison("geant-subset", subset, SuiteConfig{
		SeedBase: 901, SampleRate: 100, WorkDir: t.TempDir(),
	}, []string{"apriori", "fpgrowth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs, want 2", len(runs))
	}
	ap, fp := runs[0], runs[1]
	if ap.Miner != "apriori" || fp.Miner != "fpgrowth" {
		t.Fatalf("miners = %s, %s", ap.Miner, fp.Miner)
	}
	if ap.Result.Useful() == 0 {
		t.Fatal("no useful extractions in the comparison subset")
	}
	if len(ap.Result.Evals) != len(fp.Result.Evals) {
		t.Fatalf("eval counts differ: %d vs %d", len(ap.Result.Evals), len(fp.Result.Evals))
	}
	for i := range ap.Result.Evals {
		a, f := ap.Result.Evals[i], fp.Result.Evals[i]
		if a.Score.Useful != f.Score.Useful ||
			a.Score.Additional != f.Score.Additional ||
			a.ItemsetCount != f.ItemsetCount {
			t.Errorf("scenario %d (%s): apriori %+v vs fpgrowth %+v", i, a.Name, a.Score, f.Score)
		}
	}
}

// TestRunMinerComparisonDefaultsToRegistry: passing no miner list runs
// every registered miner.
func TestRunMinerComparisonDefaultsToRegistry(t *testing.T) {
	all := SWITCHSpecs(5)
	subset := []ScenarioSpec{all[0]}
	runs, err := RunMinerComparison("switch-one", subset, SuiteConfig{
		SeedBase: 905, SampleRate: 1, WorkDir: t.TempDir(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 2 {
		t.Fatalf("%d runs, want every registered miner (>= 2)", len(runs))
	}
	seen := map[string]bool{}
	for _, r := range runs {
		seen[r.Miner] = true
	}
	if !seen["apriori"] || !seen["fpgrowth"] {
		t.Fatalf("runs missing a built-in miner: %v", seen)
	}
}

// TestRunMinerComparisonUnknownMiner surfaces the registry error.
func TestRunMinerComparisonUnknownMiner(t *testing.T) {
	all := SWITCHSpecs(5)
	_, err := RunMinerComparison("bad", []ScenarioSpec{all[0]}, SuiteConfig{
		SeedBase: 906, SampleRate: 1, WorkDir: t.TempDir(),
	}, []string{"frobnicator"})
	if err == nil {
		t.Fatal("unknown miner must fail the comparison")
	}
}

// TestMinerComparisonCatalog runs the full scenario catalog — including
// the replayed-trace entries — through every registered miner and holds
// the three-way comparison to the acceptance floors: on scenarios that
// are expected to extract, mean itemset precision >= 0.8, mean anomaly
// recall >= 0.9 and mean true-cause rank <= 3 per miner, and fda's
// pre-filtering never pushes the true cause below fpgrowth's rank.
func TestMinerComparisonCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog comparison is slow")
	}
	specs := CatalogSpecs()
	traces := 0
	for _, s := range specs {
		if s.Name == "trace-ddos" || s.Name == "trace-portscan" {
			traces++
		}
	}
	if traces < 2 {
		t.Fatalf("catalog has %d replayed-trace scenarios, want >= 2", traces)
	}
	runs, err := RunMinerComparison("catalog", specs, SuiteConfig{
		SeedBase: 911, SampleRate: 1, WorkDir: t.TempDir(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byMiner := map[string]*SuiteResult{}
	for _, r := range runs {
		byMiner[r.Miner] = r.Result
	}
	for _, m := range []string{"apriori", "fpgrowth", "fda"} {
		res := byMiner[m]
		if res == nil {
			t.Fatalf("comparison missing miner %s", m)
		}
		var prec, rec, rank float64
		n := 0
		for _, e := range res.Evals {
			if e.ExpectFail || e.Truth == nil {
				continue
			}
			if e.Truth.Rank == 0 {
				t.Errorf("%s/%s: true cause never attributed", m, e.Name)
				continue
			}
			prec += e.Truth.Precision
			rec += e.Truth.Recall
			rank += float64(e.Truth.Rank)
			n++
		}
		if n == 0 {
			t.Fatalf("%s: no scoreable scenarios", m)
		}
		prec, rec, rank = prec/float64(n), rec/float64(n), rank/float64(n)
		t.Logf("%s: %d scenarios, mean precision %.3f recall %.3f rank %.2f", m, n, prec, rec, rank)
		if prec < 0.8 {
			t.Errorf("%s: mean precision %.3f < 0.8", m, prec)
		}
		if rec < 0.9 {
			t.Errorf("%s: mean recall %.3f < 0.9", m, rec)
		}
		if rank > 3 {
			t.Errorf("%s: mean true-cause rank %.2f > 3", m, rank)
		}
	}
	// fda's significance pre-filter may only drop itemsets; it must never
	// degrade the true-cause rank relative to the exhaustive miners.
	fp, fda := byMiner["fpgrowth"], byMiner["fda"]
	for i := range fp.Evals {
		f, d := fp.Evals[i], fda.Evals[i]
		if f.Truth == nil || d.Truth == nil || f.Truth.Rank == 0 {
			continue
		}
		if d.Truth.Rank == 0 || d.Truth.Rank > f.Truth.Rank {
			t.Errorf("%s: fda rank %d degrades fpgrowth rank %d", f.Name, d.Truth.Rank, f.Truth.Rank)
		}
	}
}
