package eval

import (
	"fmt"
	"strings"
)

// Markdown renders the matrix report as the human-readable companion of
// BENCH_eval.json: run configuration, aggregate scores, a per-miner
// comparison and the full per-cell table. docs/evaluation.md explains how
// to read it.
func (r *MatrixReport) Markdown() string {
	var b strings.Builder
	b.WriteString("# Evaluation matrix\n\n")
	fmt.Fprintf(&b, "Seed %d · sample rate %s · extraction via %s · %d scenarios × %d detectors × %d miners = %d cells · %.0f ms total\n\n",
		r.Seed, sampleRateLabel(r.SampleRate), extractionPathLabel(r.JobPath),
		len(r.Scenarios), len(r.Detectors), len(r.Miners), len(r.Combos), r.WallMS)

	b.WriteString("## Totals\n\n")
	b.WriteString("| cells | pass | mean precision | mean recall | MRR | peak itemsets | extraction ms |\n")
	b.WriteString("|---:|---:|---:|---:|---:|---:|---:|\n")
	writeTotalsRow(&b, "", r.Totals)

	b.WriteString("\n## Per miner\n\n")
	b.WriteString("| miner | cells | pass | mean precision | mean recall | MRR | peak itemsets | extraction ms |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, m := range r.PerMiner {
		writeTotalsRow(&b, m.Miner, m.MatrixTotals)
	}

	b.WriteString("\n## Cells\n\n")
	b.WriteString("Rank is the 1-based position of the true cause in the ranked itemset list (0 = missed; expect-fail scenarios pass by staying non-useful).\n\n")
	b.WriteString("| scenario | detector | alarm source | miner | itemsets | useful | precision | recall | rank | pass | ms |\n")
	b.WriteString("|---|---|---|---|---:|:---:|---:|---:|---:|:---:|---:|\n")
	for _, c := range r.Combos {
		name := c.Scenario
		if c.ExpectFail {
			name += " (expect-fail)"
		}
		status := mark(c.Pass)
		if c.Error != "" {
			status = "error"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %d | %s | %.2f | %.2f | %d | %s | %.0f |\n",
			name, c.Detector, c.AlarmSource, c.Miner, c.Itemsets, mark(c.Useful),
			c.Precision, c.Recall, c.RankOfTrueCause, status, c.WallMS)
	}

	if len(r.Incidents) > 0 {
		b.WriteString("\n## Incident mode\n\n")
		b.WriteString("Per scenario: a synthesized alarm storm is deduplicated and correlated\n")
		b.WriteString("into incidents, each extracted through ONE job, scored jointly against\n")
		b.WriteString("the full ground truth. Worst rank is the deepest rank any recovered\n")
		b.WriteString("cause needed (0 = a cause was missed). ")
		b.WriteString(incidentTotalsLine(r.Incidents))
		b.WriteString("\n\n")
		b.WriteString("| scenario | alarms | kept | incidents | reduction | jobs | precision | recall | worst rank | chain | pass | ms |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|:---:|:---:|---:|\n")
		for _, s := range r.Incidents {
			name := s.Scenario
			if s.Composite {
				name += " (composite)"
			}
			if s.ExpectFail {
				name += " (expect-fail)"
			}
			status := mark(s.Pass)
			if s.Error != "" {
				status = "error"
			}
			chain := "-"
			if s.Composite {
				chain = mark(s.ChainOK)
			}
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %.1fx | %d | %.2f | %.2f | %d | %s | %s | %.0f |\n",
				name, s.AlarmsIn, s.AlarmsKept, s.Incidents, s.Reduction, s.Jobs,
				s.Precision, s.Recall, s.WorstRank, chain, status, s.WallMS)
		}
	}
	return b.String()
}

func writeTotalsRow(b *strings.Builder, label string, t MatrixTotals) {
	if label != "" {
		fmt.Fprintf(b, "| %s ", label)
	}
	fmt.Fprintf(b, "| %d | %d | %.3f | %.3f | %.3f | %d | %.0f |\n",
		t.Combos, t.Pass, t.MeanPrecision, t.MeanRecall, t.MeanReciprocalRank,
		t.PeakItemsets, t.WallMS)
}

func sampleRateLabel(rate uint32) string {
	if rate <= 1 {
		return "unsampled"
	}
	return fmt.Sprintf("1/%d", rate)
}

func extractionPathLabel(jobPath bool) string {
	if jobPath {
		return "job manager"
	}
	return "synchronous API"
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
