// Streaming-pipeline benchmark: replay a catalog scenario through the
// live ingest path and measure the two numbers that size a deployment —
// sustained ingest throughput, and how long the automation takes to turn
// a sealed bin into an incident and a finished extraction.
package eval

import (
	"context"
	"fmt"
	"time"

	rootcause "repro"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
	"repro/internal/stream"
)

// StreamBenchConfig sizes the replayed trace.
type StreamBenchConfig struct {
	// Scenario is a catalog name (default ddos-syn).
	Scenario string
	// Bins and FlowsPerBin size the background (defaults 10 and 400).
	Bins, FlowsPerBin int
	// Seed fixes the trace (default 42).
	Seed uint64
}

// StreamBenchRow is one measured mode of the live pipeline over the
// same replayed trace.
type StreamBenchRow struct {
	// Mode is "detect-only" (auto-extraction disabled: ingest + online
	// detection + correlation) or "auto-extract" (the full loop).
	Mode string
	// Records replayed and ingest-loop throughput.
	Records  int
	RecsPerS float64
	// DrainMS is the shutdown cost: sealing the tail bins and waiting
	// out the watcher and in-flight extractions.
	DrainMS float64
	// SealedBins and Incidents/Extracted summarize the automation.
	SealedBins           uint64
	Incidents, Extracted int
	// MeanIncidentMS/MaxIncidentMS measure seal-to-incident latency:
	// from the stream clock passing a bin's end to the watcher
	// publishing that bin's incident (correlation + job submission).
	// MeanExtractMS adds the extraction itself.
	MeanIncidentMS, MaxIncidentMS float64
	MeanExtractMS                 float64
	// TruthRank is the ground-truth rank of the top itemset extracted
	// for the injected anomaly's incident (1 = top-ranked, 0 = absent
	// or not applicable in detect-only mode).
	TruthRank int
}

// RunStreamBench generates the scenario once, then replays it flat-out
// through a live system in each mode.
func RunStreamBench(workDir string, cfg StreamBenchConfig) ([]StreamBenchRow, error) {
	if cfg.Scenario == "" {
		cfg.Scenario = "ddos-syn"
	}
	if cfg.Bins == 0 {
		cfg.Bins = 10
	}
	if cfg.FlowsPerBin == 0 {
		cfg.FlowsPerBin = 400
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	def, ok := gen.Lookup(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("stream bench: unknown scenario %q", cfg.Scenario)
	}
	col := stream.NewCollector(nfstore.DefaultBinSeconds)
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 4, FlowsPerBin: cfg.FlowsPerBin,
			Hosts: 2000, Servers: 300},
		Bins: cfg.Bins, StartTime: 1_300_000_200, Seed: cfg.Seed,
		Placements: def.Placements(cfg.Seed, cfg.Bins*2/3),
	}
	truth, err := scenario.Generate(col)
	if err != nil {
		return nil, err
	}
	recs := col.Sorted()

	var rows []StreamBenchRow
	for _, mode := range []struct {
		name string
		auto bool
	}{
		{"detect-only", false},
		{"auto-extract", true},
	} {
		row, err := runStreamOnce(workDir+"/"+mode.name, mode.name, recs, truth, mode.auto)
		if err != nil {
			return nil, fmt.Errorf("stream bench %s: %w", mode.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runStreamOnce replays recs through one fresh live system.
func runStreamOnce(dir, mode string, recs []flow.Record, truth *gen.Truth, auto bool) (StreamBenchRow, error) {
	row := StreamBenchRow{Mode: mode, Records: len(recs)}
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    dir + "/flows",
		AlarmDBPath: dir + "/alarms.json",
	}, rootcause.WithLive(rootcause.LiveConfig{
		DisableAutoExtract: !auto,
		Buffer:             4096,
	}))
	if err != nil {
		return row, err
	}
	defer sys.Close()

	var events []rootcause.StreamEvent
	done := make(chan struct{})
	if auto {
		ch, cancel, err := sys.TailIncidents()
		if err != nil {
			return row, err
		}
		defer cancel()
		go func() {
			defer close(done)
			for ev := range ch {
				events = append(events, ev)
			}
		}()
	} else {
		close(done)
	}

	// Replay flat out, stamping when the stream clock first passes each
	// bin's end — the moment the pipeline may seal it. Incident latency
	// is measured from that stamp, so it covers the whole automation:
	// online-window close, alarm filing, correlation, job submission.
	ctx := context.Background()
	binSec := uint32(nfstore.DefaultBinSeconds)
	crossed := make(map[uint32]time.Time)
	open := make(map[uint32]bool)
	var clock uint32
	t0 := time.Now()
	for i := range recs {
		if err := sys.Ingest(ctx, &recs[i]); err != nil {
			return row, err
		}
		r := &recs[i]
		open[r.Start-r.Start%binSec] = true
		if r.Start > clock {
			clock = r.Start
			for b := range open {
				if b+binSec <= clock {
					crossed[b] = time.Now()
					delete(open, b)
				}
			}
		}
	}
	ingestSecs := time.Since(t0).Seconds()
	if ingestSecs > 0 {
		row.RecsPerS = float64(len(recs)) / ingestSecs
	}

	// Drain seals the tail bins; their clock never passed the end.
	drainStart := time.Now()
	for b := range open {
		crossed[b] = drainStart
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	if err := sys.DrainLive(dctx); err != nil {
		return row, err
	}
	row.DrainMS = float64(time.Since(drainStart).Microseconds()) / 1000
	<-done

	if st := sys.StreamStats(); st != nil {
		row.SealedBins = st.SealedBins
	}

	var incSum, extSum float64
	var incN, extN int
	for _, ev := range events {
		at, ok := crossed[ev.Bin.Start]
		if !ok {
			continue
		}
		ms := float64(ev.Time.Sub(at).Microseconds()) / 1000
		switch ev.Type {
		case rootcause.StreamEventIncident:
			incSum += ms
			incN++
			if ms > row.MaxIncidentMS {
				row.MaxIncidentMS = ms
			}
		case rootcause.StreamEventExtracted:
			extSum += ms
			extN++
			if ev.Result != nil &&
				ev.Incident.Incident.Interval.Overlaps(truth.Entries[0].Interval) {
				ts, err := ScoreTruth(sys.Store(), ev.Incident.Incident.Interval,
					ev.Result, truth, DefaultScoreOptions())
				if err != nil {
					return row, err
				}
				row.TruthRank = ts.Rank
			}
		}
	}
	row.Incidents = incN
	row.Extracted = extN
	if incN > 0 {
		row.MeanIncidentMS = incSum / float64(incN)
	}
	if extN > 0 {
		row.MeanExtractMS = extSum / float64(extN)
	}
	return row, nil
}
