package eval

import (
	"encoding/json"
	"testing"
)

// TestMatrixShardedIdentity pins the sharding acceptance contract: the
// eval matrix run against a 4-shard scatter-gather store — in-process
// and again over loopback HTTP peers — is byte-identical to the
// single-store run, modulo wall-clock. Scores must not depend on how
// the flow archive is partitioned or where the shards live.
func TestMatrixShardedIdentity(t *testing.T) {
	base := PipelineConfig{
		Scenarios: []string{"dns-amplification", "icmp-flood"},
		Detectors: []string{SynthesizedSource},
		Miners:    []string{"apriori"},
		Seed:      19,
	}
	run := func(name string, shards int, httpPeers bool) string {
		cfg := base
		cfg.WorkDir = t.TempDir()
		cfg.Shards = shards
		cfg.HTTPPeers = httpPeers
		rep, err := RunMatrix(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep.WallMS = 0
		rep.Totals.WallMS = 0
		for i := range rep.PerMiner {
			rep.PerMiner[i].WallMS = 0
		}
		for i := range rep.Combos {
			rep.Combos[i].WallMS = 0
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}

	single := run("single", 0, false)
	sharded := run("sharded", 4, false)
	if single != sharded {
		t.Errorf("4-shard matrix differs from single store:\nsingle:  %s\nsharded: %s", single, sharded)
	}
	cluster := run("http", 4, true)
	if single != cluster {
		t.Errorf("HTTP-peer matrix differs from single store:\nsingle: %s\nhttp:   %s", single, cluster)
	}
}
