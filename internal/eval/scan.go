package eval

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/flow"
	"repro/internal/nffilter"
	"repro/internal/nfstore"
)

// Scan-format benchmark: the same selective two-column filter the
// root-cause loop issues ("proto udp and dst port 53"), timed against
// identical traces stored as v1 fixed rows and v2 column blocks. Two
// workloads bracket the formats: "clustered" places every matching flow
// in one anomaly burst (the paper's extraction shape — v2 skips the
// full decode of every background block), "uniform" spreads matches
// evenly (v2's worst case: every block decodes the filter columns and
// materializes survivors). bench_test.go's BenchmarkStoreScanFormats
// and `benchreport -exp scan` both run on this workload.

// ScanBenchConfig sizes the scan-format benchmark.
type ScanBenchConfig struct {
	Records int           // records per store (0 = 200 000)
	Bins    int           // 300 s segments per store (0 = 4)
	Seed    int64         // workload seed (0 = 1)
	MinTime time.Duration // minimum measurement time per cell (0 = 500 ms)
}

func (c ScanBenchConfig) withDefaults() ScanBenchConfig {
	if c.Records == 0 {
		c.Records = 200_000
	}
	if c.Bins == 0 {
		c.Bins = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinTime == 0 {
		c.MinTime = 500 * time.Millisecond
	}
	return c
}

// ScanFilter is the selective two-column filter every scan cell runs.
const ScanFilter = "proto udp and dst port 53"

// ScanRow is one measured cell of the scan-format benchmark.
type ScanRow struct {
	Op        string  `json:"op"`       // "query" or "count"
	Workload  string  `json:"workload"` // "clustered" or "uniform"
	Format    uint16  `json:"format"`
	Matched   uint64  `json:"matched_flows"` // flows the filter selects per pass
	MrecPerS  float64 `json:"mrec_per_s"`
	SpeedupV1 float64 `json:"speedup_vs_v1"` // same op+workload, v1 = 1.0
}

// FillScanStore populates s with the benchmark trace: a background mix
// across bins 300-second bins with ~4% UDP:53 traffic. clustered=true
// keeps UDP:53 out of the background and injects the same volume of
// matches as a single burst in the third bin instead, so only a couple
// of blocks contain matching rows. Routers draw from 64 values so the
// hash-partitioned shard benchmark balances at any shard count.
func FillScanStore(s nfstore.Engine, clustered bool, records, bins int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	span := bins * 300
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP, 47}
	ports := []uint16{22, 53, 80, 443, 8080}
	bgPorts := []uint16{22, 80, 443, 8080}
	n := records
	if clustered {
		n = records * 96 / 100
	}
	for i := 0; i < n; i++ {
		dst := ports[rng.Intn(len(ports))]
		if rng.Intn(6) == 0 {
			dst = uint16(rng.Intn(65536))
		}
		r := flow.Record{
			Start:   uint32(rng.Intn(span)),
			Dur:     uint32(rng.Intn(10_000)),
			SrcIP:   flow.IPFromOctets(10, 0, byte(rng.Intn(4)), byte(rng.Intn(40))),
			DstIP:   flow.IPFromOctets(192, 0, 2, byte(rng.Intn(40))),
			SrcPort: ports[rng.Intn(len(ports))],
			DstPort: dst,
			Proto:   protos[rng.Intn(len(protos))],
			Router:  uint16(rng.Intn(64)),
			Packets: uint64(1 + rng.Intn(1000)),
		}
		r.Bytes = r.Packets * uint64(40+rng.Intn(1400))
		if clustered && r.Proto == flow.ProtoUDP && r.DstPort == 53 {
			r.DstPort = bgPorts[rng.Intn(len(bgPorts))]
		}
		if err := s.Add(&r); err != nil {
			return err
		}
	}
	if clustered {
		for i := 0; i < records-n; i++ {
			r := flow.Record{
				Start:   2*300 + uint32(rng.Intn(40)),
				SrcIP:   flow.IPFromOctets(10, 0, 3, byte(rng.Intn(200))),
				DstIP:   flow.IPFromOctets(192, 0, 2, 7),
				SrcPort: uint16(1024 + rng.Intn(60000)),
				DstPort: 53,
				Proto:   flow.ProtoUDP,
				Router:  uint16(rng.Intn(64)),
				Packets: uint64(1 + rng.Intn(10)),
			}
			r.Bytes = r.Packets * 120
			if err := s.Add(&r); err != nil {
				return err
			}
		}
	}
	return s.Flush()
}

// RunScanBench builds v1 and v2 stores for both workloads and times the
// filtered Query and Count paths on each, returning one row per cell
// with v1-relative speedups filled in.
func RunScanBench(workDir string, cfg ScanBenchConfig) ([]ScanRow, error) {
	cfg = cfg.withDefaults()
	filter, err := nffilter.Parse(ScanFilter)
	if err != nil {
		return nil, err
	}
	iv := flow.Interval{Start: 0, End: uint32(cfg.Bins * 300)}
	var rows []ScanRow
	for _, workload := range []string{"clustered", "uniform"} {
		base := make(map[string]float64) // op -> v1 Mrec/s
		for _, format := range []uint16{nfstore.FormatV1, nfstore.FormatV2} {
			dir := fmt.Sprintf("%s/scan-%s-v%d", workDir, workload, format)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			s, err := nfstore.CreateFormat(dir, 300, format)
			if err != nil {
				return nil, err
			}
			err = FillScanStore(s, workload == "clustered", cfg.Records, cfg.Bins, cfg.Seed)
			if err != nil {
				s.Close()
				return nil, err
			}
			for _, op := range []string{"query", "count"} {
				row, err := measureScan(s, op, filter, iv, cfg)
				if err != nil {
					s.Close()
					return nil, err
				}
				row.Workload = workload
				row.Format = format
				if format == nfstore.FormatV1 {
					base[op] = row.MrecPerS
					row.SpeedupV1 = 1
				} else if base[op] > 0 {
					row.SpeedupV1 = row.MrecPerS / base[op]
				}
				rows = append(rows, row)
			}
			if err := s.Close(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// measureScan times one op against one store until MinTime has elapsed
// (always at least two passes: the first doubles as warmup for the OS
// page cache and the zone-map cache).
func measureScan(s nfstore.Engine, op string, filter *nffilter.Filter, iv flow.Interval, cfg ScanBenchConfig) (ScanRow, error) {
	ctx := context.Background()
	pass := func() (uint64, error) {
		if op == "count" {
			flows, _, _, err := s.Count(ctx, iv, filter)
			return flows, err
		}
		var n uint64
		err := s.Query(ctx, iv, filter, func(*flow.Record) error {
			n++
			return nil
		})
		return n, err
	}
	matched, err := pass()
	if err != nil {
		return ScanRow{}, err
	}
	if matched == 0 {
		return ScanRow{}, fmt.Errorf("scan bench: %q matched nothing", ScanFilter)
	}
	var passes int
	t0 := time.Now()
	for elapsed := time.Duration(0); passes == 0 || elapsed < cfg.MinTime; elapsed = time.Since(t0) {
		if _, err := pass(); err != nil {
			return ScanRow{}, err
		}
		passes++
	}
	secs := time.Since(t0).Seconds()
	return ScanRow{
		Op:       op,
		Matched:  matched,
		MrecPerS: float64(cfg.Records) * float64(passes) / secs / 1e6,
	}, nil
}
