package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/nfstore"
)

func TestScoreResultPurityAndRecall(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.9")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: 1_300_000_200, Seed: 3,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 2000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	truth, err := s.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	alarm := SynthesizeAlarm(truth.Entry(1))
	ex := core.MustNew(store, core.DefaultOptions())
	res, err := ex.Extract(t.Context(), &alarm)
	if err != nil {
		t.Fatal(err)
	}
	score, err := ScoreResult(store, &alarm, res, DefaultScoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !score.Useful {
		t.Fatalf("clean scan must score useful; itemsets: %+v", score.Itemsets)
	}
	if score.FlowRecall < 0.9 {
		t.Fatalf("scan recall %v, want > 0.9", score.FlowRecall)
	}
	// Alarm meta covers the scan completely: no additional evidence.
	if score.Additional {
		t.Fatal("single-anomaly scenario must not report additional evidence")
	}
}

func TestScoreAdditionalEvidence(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	scannerA := flow.MustParseIP("10.9.9.9")
	scannerB := flow.MustParseIP("10.8.8.8")
	victim := flow.MustParseIP("198.19.0.9")
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 300},
		Bins:       4, StartTime: 1_300_000_200, Seed: 4,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scannerA, Victim: victim, SrcPort: 55548,
				Ports: 2000, FlowsPerPort: 1, Router: 1}, Bin: 2},
			{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 800,
				FlowsPerSource: 2, SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: 0}, Bin: 2},
		},
	}
	truth, err := s.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	// Narrow meta: scanner A only (srcIP), so the SYN flood's flows fall
	// outside the meta but share the victim.
	alarm := detector.Alarm{
		Interval: truth.Entry(1).Interval,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scannerA)},
			{Feature: flow.FeatDstIP, Value: uint32(victim)},
		},
	}
	_ = scannerB
	ex := core.MustNew(store, core.DefaultOptions())
	res, err := ex.Extract(t.Context(), &alarm)
	if err != nil {
		t.Fatal(err)
	}
	score, err := ScoreResult(store, &alarm, res, DefaultScoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !score.Useful {
		t.Fatal("extraction must be useful")
	}
	if !score.Additional {
		t.Fatalf("DDoS beyond the meta must count as additional evidence; itemsets: %+v", score.Itemsets)
	}
}

func TestSynthesizeAlarmShapes(t *testing.T) {
	cases := []struct {
		anomaly  gen.Anomaly
		wantMeta int
	}{
		{gen.PortScan{Scanner: 1, Victim: 2, SrcPort: 3}, 3},
		{gen.NetworkScan{Scanner: 1, DstPort: 445}, 2},
		{gen.SYNFlood{Victim: 2, DstPort: 80}, 2},
		{gen.UDPFlood{Src: 1, Dst: 2}, 2},
		{gen.FlashCrowd{Server: 2, Port: 80}, 2},
		{gen.Stealthy{Scanner: 1, Victim: 2}, 1},
		{gen.AmplificationFlood{Victim: 2, Service: 53}, 3},
		{gen.ICMPFlood{Victim: 2}, 2},
		{gen.BotnetScan{DstPort: 5060}, 2},
		{gen.LinkOutage{Service: 2, Port: 443}, 3},
		{gen.PrefixMigration{Service: 2, Port: 443}, 3},
		{gen.SpamCampaign{}, 2},
	}
	for i, c := range cases {
		entry := &gen.TruthEntry{Kind: c.anomaly.Kind(),
			Interval:  flow.Interval{Start: 0, End: 300},
			Signature: c.anomaly.Signature()}
		a := SynthesizeAlarm(entry)
		if len(a.Meta) != c.wantMeta {
			t.Errorf("case %d: %d meta items, want %d", i, len(a.Meta), c.wantMeta)
		}
		if a.Interval != entry.Interval {
			t.Errorf("case %d: interval not propagated", i)
		}
		if a.Kind != c.anomaly.Kind() {
			t.Errorf("case %d: kind %q not propagated", i, a.Kind)
		}
	}
}

func TestGEANTSpecsShape(t *testing.T) {
	specs := GEANTSpecs(1)
	if len(specs) != 40 {
		t.Fatalf("GEANT suite has %d scenarios, want 40", len(specs))
	}
	fails, secondaries, fps := 0, 0, 0
	for _, s := range specs {
		if s.ExpectFail {
			fails++
		}
		if s.FalsePositive {
			fps++
		}
		if len(s.Placements) > 1 {
			secondaries++
		}
	}
	if fails != 2 || fps != 1 {
		t.Fatalf("fails=%d fps=%d, want 2 and 1", fails, fps)
	}
	if secondaries != 10 {
		t.Fatalf("secondary-anomaly scenarios = %d, want 10", secondaries)
	}
}

func TestSWITCHSpecsShape(t *testing.T) {
	specs := SWITCHSpecs(1)
	if len(specs) != 31 {
		t.Fatalf("SWITCH suite has %d scenarios, want 31", len(specs))
	}
	for _, s := range specs {
		if s.ExpectFail || s.FalsePositive {
			t.Fatalf("SWITCH suite must not contain expected failures: %+v", s)
		}
	}
}

func TestRunSuiteSubset(t *testing.T) {
	// A fast subset: first scan (with secondary), one UDP flood, the
	// stealthy case and the false positive — exercising all paths of the
	// runner without the full 40-scenario cost.
	all := GEANTSpecs(1)
	subset := []ScenarioSpec{all[0], all[27], all[38], all[39]}
	if !subset[2].ExpectFail || !subset[3].FalsePositive {
		t.Fatalf("subset selection wrong: %+v", subset[2:])
	}
	res, err := RunSuite("geant-subset", subset, SuiteConfig{
		SeedBase:   77,
		SampleRate: 100,
		WorkDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != 4 {
		t.Fatalf("%d evals", len(res.Evals))
	}
	// Scan with secondary: useful + additional.
	if !res.Evals[0].Score.Useful {
		t.Errorf("scan scenario not useful: %+v", res.Evals[0])
	}
	if !res.Evals[0].Score.Additional {
		t.Errorf("scan scenario with secondary must show additional evidence")
	}
	// UDP flood: useful under sampling thanks to packet support.
	if !res.Evals[1].Score.Useful {
		t.Errorf("udp flood scenario not useful: %+v", res.Evals[1])
	}
	// Stealthy and FP: not useful.
	if res.Evals[2].Score.Useful {
		t.Errorf("stealthy scenario must fail extraction")
	}
	if res.Evals[3].Score.Useful {
		t.Errorf("false-positive scenario must fail extraction")
	}
	if res.Useful() != 2 || res.UsefulFraction() != 0.5 {
		t.Errorf("aggregation wrong: useful=%d frac=%v", res.Useful(), res.UsefulFraction())
	}
}

func TestRunTable1SmallScale(t *testing.T) {
	// The full Table 1 runs ~660K anomaly flows; tests use a scaled-down
	// variant through the same code path by checking the real scenario's
	// structure on the first rows only — the full-size run is executed by
	// the benchmark suite. Here: verify the helper wiring end to end on
	// the default config but trimmed via RunUDPFloodSweep-style smoke.
	rows, err := RunUDPFloodSweep(t.TempDir(), []int{4}, 1_000_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].FlowOnlyFound {
		t.Error("4-flow flood must be invisible to flow-only support")
	}
	if !rows[0].DualFound {
		t.Error("4-flow flood must be found with dual support")
	}
}

func TestRunTuningAblation(t *testing.T) {
	rows, err := RunTuningAblation(t.TempDir(), []float64{0.02, 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	weak, strong := rows[0], rows[1]
	if !weak.SelfTunedUseful {
		t.Errorf("self-tuning must find the weak scan: %+v", weak)
	}
	if weak.FixedUseful {
		t.Errorf("fixed support should miss the weak scan: %+v", weak)
	}
	if !strong.SelfTunedUseful || !strong.FixedUseful {
		t.Errorf("both modes must find the strong scan: %+v", strong)
	}
	if weak.SelfTunedRounds < 2 {
		t.Errorf("tuner must have adapted on the weak scan: rounds=%d", weak.SelfTunedRounds)
	}
}

func TestContainsItem(t *testing.T) {
	it := itemset.NewItem(flow.FeatDstPort, 80)
	res := &core.Result{Itemsets: []core.ItemsetReport{
		{Items: itemset.NewSet(it)},
	}}
	if !containsItem(res, it) {
		t.Fatal("containsItem false negative")
	}
	if containsItem(res, itemset.NewItem(flow.FeatDstPort, 443)) {
		t.Fatal("containsItem false positive")
	}
}
